package insightnotes_test

import (
	"context"
	"fmt"
	"log"

	"insightnotes"
)

// Example shows the core flow: define a summary instance, annotate, query,
// and zoom in.
func Example() {
	db, err := insightnotes.Open(insightnotes.Config{})
	if err != nil {
		log.Fatal(err)
	}
	must := func(stmt string) *insightnotes.Result {
		res, err := db.Exec(context.Background(), stmt)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	must(`CREATE TABLE birds (id INT, name TEXT)`)
	must(`INSERT INTO birds VALUES (1, 'Swan Goose')`)
	must(`CREATE SUMMARY INSTANCE ClassBird TYPE Classifier LABELS ('Behavior', 'Disease')`)
	must(`TRAIN SUMMARY ClassBird
		('feeding foraging stonewort', 'Behavior'),
		('influenza infection lesions', 'Disease')`)
	must(`LINK SUMMARY ClassBird TO birds`)
	must(`ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1`)
	must(`ADD ANNOTATION 'influenza lesions on the bill' ON birds WHERE id = 1`)

	res, err := db.Query(context.Background(), `SELECT id, name FROM birds`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows[0].Env.Render())

	zoom := must(fmt.Sprintf(`ZOOMIN REFERENCE QID %d ON ClassBird INDEX 2`, res.QID))
	fmt.Println(zoom.ZoomAnnotations[0].Annotations[0].Text)
	// Output:
	// ClassBird [(Behavior, 1), (Disease, 1)]
	// influenza lesions on the bill
}

// ExampleDB_Query shows summary-based predicates: filtering tuples by
// their annotation summaries.
func ExampleDB_Query() {
	db := insightnotes.MustOpen(insightnotes.Config{})
	stmts := []string{
		`CREATE TABLE genes (gid INT, symbol TEXT)`,
		`INSERT INTO genes VALUES (1, 'BRCA2'), (2, 'TP53')`,
		`CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Comment', 'Provenance')`,
		`TRAIN SUMMARY C ('wrong check verify', 'Comment'), ('imported genbank source', 'Provenance')`,
		`LINK SUMMARY C TO genes`,
		`ADD ANNOTATION 'value looks wrong, please verify' ON genes WHERE gid = 1`,
		`ADD ANNOTATION 'second comment: still wrong' ON genes WHERE gid = 1`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(context.Background(), s); err != nil {
			log.Fatal(err)
		}
	}
	res, err := db.Query(context.Background(),
		`SELECT symbol FROM genes WHERE SUMMARY_COUNT(C, 'Comment') >= 2`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row.Tuple[0])
	}
	// Output:
	// BRCA2
}

// ExampleDB_SaveFile shows snapshot persistence.
func ExampleDB_SaveFile() {
	db := insightnotes.MustOpen(insightnotes.Config{})
	db.Exec(context.Background(), `CREATE TABLE t (a INT)`)
	db.Exec(context.Background(), `INSERT INTO t VALUES (42)`)
	path := "/tmp/insightnotes-example.json"
	if err := db.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	back, err := insightnotes.LoadFile(path, insightnotes.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, _ := back.Query(context.Background(), `SELECT a FROM t`)
	fmt.Println(res.Rows[0].Tuple[0])
	// Output:
	// 42
}
