// Quickstart: the minimal InsightNotes flow — create a table, define and
// train a classifier summary instance, link it, annotate tuples, run a
// query that reports summary objects instead of raw annotations, and zoom
// in on one summary element to retrieve the raw annotations behind it.
package main

import (
	"context"
	"fmt"
	"log"

	"insightnotes"
)

func main() {
	ctx := context.Background()
	db, err := insightnotes.Open(insightnotes.Config{})
	if err != nil {
		log.Fatal(err)
	}

	must := func(stmt string) *insightnotes.Result {
		res, err := db.Exec(ctx, stmt)
		if err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
		return res
	}

	// 1. A plain relational table.
	must(`CREATE TABLE birds (id INT, name TEXT, wingspan FLOAT)`)
	must(`INSERT INTO birds VALUES
		(1, 'Swan Goose', 1.8),
		(2, 'Mute Swan', 2.2),
		(3, 'Whooper Swan', 2.3)`)

	// 2. A summary instance: a four-class Naive Bayes classifier, trained
	// with a few labeled examples and linked to the table.
	must(`CREATE SUMMARY INSTANCE ClassBird1 TYPE Classifier
		LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')`)
	must(`TRAIN SUMMARY ClassBird1
		('found eating stonewort near the shore', 'Behavior'),
		('observed feeding at dawn in flocks', 'Behavior'),
		('signs of avian influenza infection', 'Disease'),
		('lesions suggest avian pox virus', 'Disease'),
		('wingspan measured at 1.8 meters', 'Anatomy'),
		('large body with long neck', 'Anatomy'),
		('photo attached from trail camera', 'Other'),
		('duplicate of an earlier record', 'Other')`)
	must(`LINK SUMMARY ClassBird1 TO birds`)

	// 3. Annotations stream in; summaries update incrementally.
	for _, text := range []string{
		"observed eating stonewort and grasses",
		"aggressive display toward other geese",
		"bird appears lethargic, influenza suspected",
		"wingspan looks larger than the recorded value",
	} {
		must(fmt.Sprintf(`ADD ANNOTATION '%s' AUTHOR 'watcher1' ON birds WHERE id = 1`, text))
	}

	// 4. Query: each result tuple carries its summary objects.
	res, err := db.Query(ctx, `SELECT id, name, wingspan FROM birds WHERE id = 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query result:")
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row.Tuple)
		if row.Env != nil {
			fmt.Printf("    summaries: %s\n", row.Env.Render())
		}
	}
	fmt.Printf("  (QID = %d)\n\n", res.QID)

	// 5. Zoom in: expand the Behavior label (index 1) back into the raw
	// annotations.
	zoom := must(fmt.Sprintf(
		`ZOOMIN REFERENCE QID %d WHERE id = 1 ON ClassBird1 INDEX 1`, res.QID))
	fmt.Println("zoom-in on Behavior annotations:")
	for _, zr := range zoom.ZoomAnnotations {
		for _, a := range zr.Annotations {
			fmt.Printf("  A%d [%s]: %s\n", a.ID, a.Author, a.Text)
		}
	}
}
