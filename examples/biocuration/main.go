// Biocuration: the paper's second domain (§2.3) — a biological gene
// database whose annotations classify into FunctionPrediction / Provenance
// / Comment rather than ornithological classes. The example demonstrates
// the extensibility hierarchy (domain-specific instances), multi-tuple
// annotations with the summarize-once optimization, runtime LINK/UNLINK,
// and rebuilding summaries after classifier retraining.
package main

import (
	"context"
	"fmt"
	"log"

	"insightnotes"
)

func main() {
	ctx := context.Background()
	db, err := insightnotes.Open(insightnotes.Config{})
	if err != nil {
		log.Fatal(err)
	}
	must := func(stmt string) *insightnotes.Result {
		res, err := db.Exec(ctx, stmt)
		if err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
		return res
	}

	must(`CREATE TABLE genes (gid INT, symbol TEXT, organism TEXT)`)
	must(`INSERT INTO genes VALUES
		(1, 'BRCA2', 'H. sapiens'),
		(2, 'TP53',  'H. sapiens'),
		(3, 'rad51', 'S. cerevisiae')`)

	// A domain-specific classifier instance — the §2.3 gene labels.
	must(`CREATE SUMMARY INSTANCE GeneClass TYPE Classifier
		LABELS ('FunctionPrediction', 'Provenance', 'Comment')`)
	must(`TRAIN SUMMARY GeneClass
		('predicted to regulate dna repair pathway binding', 'FunctionPrediction'),
		('homolog domain suggests kinase function expression', 'FunctionPrediction'),
		('imported from genbank release pipeline source', 'Provenance'),
		('record derived from the 2014 curation dataset', 'Provenance'),
		('please double check this entry for typos', 'Comment'),
		('value looks wrong, needs verification', 'Comment')`)
	must(`LINK SUMMARY GeneClass TO genes`)

	// A provenance note attached to ALL tuples at once: with both invariant
	// properties true the engine classifies it exactly once (summarize-once).
	res := must(`ADD ANNOTATION 'imported from genbank release 42 by the curation pipeline'
		AUTHOR 'curation-bot' ON genes`)
	fmt.Printf("bulk provenance note: %s\n", res.Message)

	// Per-gene annotations.
	must(`ADD ANNOTATION 'predicted to regulate homologous dna repair'
		ON genes WHERE symbol = 'BRCA2'`)
	must(`ADD ANNOTATION 'expression value looks wrong, please verify'
		ON genes (symbol) WHERE symbol = 'BRCA2'`)

	fmt.Println("\n=== gene summaries ===")
	q, err := db.Query(ctx, `SELECT gid, symbol, organism FROM genes ORDER BY gid`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range q.Rows {
		fmt.Printf("%v\n", row.Tuple)
		if row.Env != nil {
			fmt.Printf("    %s\n", row.Env.Render())
		}
	}

	// Zoom in on BRCA2's comments (GeneClass label index 3).
	fmt.Println("\n=== zoom-in: comments on BRCA2 ===")
	zoom := must(fmt.Sprintf(
		`ZOOMIN REFERENCE QID %d WHERE symbol = 'BRCA2' ON GeneClass INDEX 3`, q.QID))
	for _, zr := range zoom.ZoomAnnotations {
		for _, a := range zr.Annotations {
			fmt.Printf("  A%d: %s\n", a.ID, a.Text)
		}
	}

	// Extensibility at runtime: link a second, cluster-type instance — its
	// objects appear for existing annotations (backfill) — then unlink it.
	fmt.Println("\n=== runtime LINK/UNLINK ===")
	must(`CREATE SUMMARY INSTANCE GeneCluster TYPE Cluster WITH (threshold = 0.3)`)
	must(`LINK SUMMARY GeneCluster TO genes`)
	q2, _ := db.Query(ctx, `SELECT gid, symbol FROM genes WHERE gid = 1`)
	fmt.Printf("after LINK:\n    %s\n", q2.Rows[0].Env.Render())
	must(`UNLINK SUMMARY GeneCluster FROM genes`)
	q3, _ := db.Query(ctx, `SELECT gid, symbol FROM genes WHERE gid = 1`)
	fmt.Printf("after UNLINK:\n    %s\n", q3.Rows[0].Env.Render())

	// Retrain the classifier, then rebuild the summaries so existing
	// objects reflect the refined model.
	fmt.Println("\n=== retrain + rebuild ===")
	must(`TRAIN SUMMARY GeneClass
		('curation pipeline import batch job', 'Provenance'),
		('double check verify wrong suspicious', 'Comment')`)
	if _, err := db.RebuildSummaries("genes"); err != nil {
		log.Fatal(err)
	}
	q4, _ := db.Query(ctx, `SELECT gid, symbol FROM genes WHERE gid = 1`)
	fmt.Printf("rebuilt:\n    %s\n", q4.Rows[0].Env.Render())
}
