// Middleware: InsightNotes as standalone annotation-management middleware —
// the deployment style of the paper's prototype, which fronted a modified
// PostgreSQL. The example starts an engine server in-process, connects two
// clients over TCP, and drives the full annotate → query → zoom-in cycle
// through the wire protocol.
package main

import (
	"context"
	"fmt"
	"log"

	"insightnotes"
	"insightnotes/internal/types"
)

func main() {
	ctx := context.Background()
	db, err := insightnotes.Open(insightnotes.Config{})
	if err != nil {
		log.Fatal(err)
	}
	srv, addr, err := insightnotes.Serve(db, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("engine serving on %s\n\n", addr)

	// Client 1: an administrator sets up the schema and summary instances.
	admin, err := insightnotes.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	for _, stmt := range []string{
		`CREATE TABLE birds (id INT, name TEXT)`,
		`INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan')`,
		`CREATE SUMMARY INSTANCE ClassBird TYPE Classifier LABELS ('Behavior', 'Disease', 'Other')`,
		`TRAIN SUMMARY ClassBird
			('feeding foraging stonewort flock', 'Behavior'),
			('influenza infection lesions sick', 'Disease'),
			('photo camera record duplicate', 'Other')`,
		`LINK SUMMARY ClassBird TO birds`,
	} {
		resp, err := admin.Do(ctx, stmt)
		if err != nil {
			log.Fatal(err)
		}
		if !resp.OK {
			log.Fatalf("%s: %s", stmt, resp.Error)
		}
	}
	fmt.Println("admin: schema and ClassBird instance installed")

	// Client 2: a bird watcher annotates and queries.
	watcher, err := insightnotes.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer watcher.Close()
	for _, text := range []string{
		"observed feeding on stonewort at dawn",
		"large flock foraging near the shore",
		"lesions on the bill, influenza suspected",
	} {
		resp, err := watcher.Do(ctx, fmt.Sprintf(
			`ADD ANNOTATION '%s' AUTHOR 'watcher7' ON birds WHERE id = 1`, text))
		if err != nil || !resp.OK {
			log.Fatalf("annotate: %v %v", err, resp)
		}
	}
	fmt.Println("watcher: 3 annotations added over the wire")

	// Queries go through a prepared statement: the template is parsed and
	// its plan cached server-side once; each Exec binds $1 to a value.
	byID, err := watcher.Prepare(ctx, `SELECT id, name FROM birds WHERE id = $1`)
	if err != nil {
		log.Fatalf("prepare: %v", err)
	}
	resp, err := byID.Exec(ctx, types.NewInt(1))
	if err != nil || !resp.OK {
		log.Fatalf("query: %v %+v", err, resp)
	}
	row := resp.Rows[0]
	fmt.Printf("\nquery result: %v %v\n", row.Values[0], row.Values[1])
	fmt.Printf("  summaries: %s\n", row.Summaries["ClassBird"])
	fmt.Printf("  zoomable:  %v\n", row.ZoomLabels["ClassBird"])

	// Zoom in on the Disease label (index 2).
	zoom, err := watcher.Do(ctx, fmt.Sprintf(
		`ZOOMIN REFERENCE QID %d ON ClassBird INDEX 2`, resp.QID))
	if err != nil || !zoom.OK {
		log.Fatalf("zoom: %v %+v", err, zoom)
	}
	fmt.Println("\nzoom-in on Disease annotations:")
	for _, r := range zoom.Rows {
		fmt.Printf("  A%v [%v]: %v\n", r.Values[0], r.Values[1], r.Values[3])
	}
}
