// Zoomcache: the §2.2 demonstration of zoom-in query processing over the
// limited disk-based materialization cache. The example runs the same
// skewed zoom-in reference stream under the paper's RCO policy and the LRU
// baseline, printing hit rates and latencies, and shows a transparent
// cache-miss re-execution.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"insightnotes"
)

func main() {
	ctx := context.Background()
	fmt.Println("=== zoom-in cache: RCO vs LRU under a skewed reference stream ===")
	for _, policy := range []insightnotes.CachePolicy{insightnotes.RCO(), insightnotes.LRU()} {
		hit, mean := run(policy, 10<<10)
		fmt.Printf("%-4s: hit rate %4.0f%%, mean zoom latency %v\n",
			policyName(policy), hit*100, mean.Round(10*time.Microsecond))
	}

	fmt.Println("\n=== cache miss transparently re-executes the query ===")
	db := setup(insightnotes.RCO(), 1) // 1-byte budget: nothing is admitted
	res, err := db.Query(ctx, `SELECT id, name FROM birds WHERE id = 1`)
	if err != nil {
		log.Fatal(err)
	}
	zres, err := db.Exec(ctx, fmt.Sprintf(
		`ZOOMIN REFERENCE QID %d ON ClassBird INDEX 1`, res.QID))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(zres.Message) // reports "(re-executed)"
}

func policyName(p insightnotes.CachePolicy) string { return p.Name() }

// setup builds a small annotated database with the given cache policy and
// byte budget.
func setup(policy insightnotes.CachePolicy, budget int64) *insightnotes.DB {
	ctx := context.Background()
	db, err := insightnotes.Open(insightnotes.Config{
		CachePolicy: policy, CacheBudget: budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	must := func(stmt string) {
		if _, err := db.Exec(ctx, stmt); err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
	}
	must(`CREATE TABLE birds (id INT, name TEXT)`)
	for i := 1; i <= 8; i++ {
		must(fmt.Sprintf(`INSERT INTO birds VALUES (%d, 'bird %d')`, i, i))
	}
	must(`CREATE TABLE sightings (sid INT, bird_id INT, cnt INT)`)
	for i := 0; i < 16; i++ {
		must(fmt.Sprintf(`INSERT INTO sightings VALUES (%d, %d, %d)`, i+1, i%8+1, i*3))
	}
	must(`CREATE SUMMARY INSTANCE ClassBird TYPE Classifier LABELS ('Behavior', 'Other')`)
	must(`TRAIN SUMMARY ClassBird ('feeding foraging flock stonewort', 'Behavior'),
		('photo record duplicate camera', 'Other')`)
	must(`LINK SUMMARY ClassBird TO birds`)
	for i := 1; i <= 8; i++ {
		for k := 0; k < 6; k++ {
			text := "feeding and foraging near the stonewort beds"
			if k%3 == 2 {
				text = "photo record from the camera archive"
			}
			must(fmt.Sprintf(`ADD ANNOTATION '%s (obs %d)' ON birds WHERE id = %d`, text, k, i))
		}
	}
	return db
}

// run replays a reference stream that re-visits expensive join results
// while bursts of fresh cheap queries compete for the cache.
func run(policy insightnotes.CachePolicy, budget int64) (hitRate float64, mean time.Duration) {
	ctx := context.Background()
	db := setup(policy, budget)
	// Expensive working set.
	var expensive []int
	for i := 0; i < 3; i++ {
		res, err := db.Query(ctx, fmt.Sprintf(
			`SELECT b.name, s.cnt FROM birds b, sightings s WHERE b.id = s.bird_id AND b.id <= %d`,
			4+i*2))
		if err != nil {
			log.Fatal(err)
		}
		expensive = append(expensive, res.QID)
	}
	zoom := func(qid int) {
		if _, _, err := db.ZoomIn(ctx, insightnotes.ZoomInRequest{
			QID: qid, Instance: "ClassBird", Index: 1,
		}); err != nil {
			log.Fatal(err)
		}
	}
	for _, q := range expensive { // warm up reference counts
		zoom(q)
		zoom(q)
	}
	db.Cache().ResetStats()
	start := time.Now()
	const ops = 120
	for i := 0; i < ops; i++ {
		// Bursts of three fresh cheap queries (zoomed once, never again)
		// interleave with runs of working-set re-references.
		if i%8 < 3 {
			res, err := db.Query(ctx, fmt.Sprintf(
				`SELECT id, name FROM birds WHERE id <= %d`, i%6+2))
			if err != nil {
				log.Fatal(err)
			}
			zoom(res.QID)
			continue
		}
		zoom(expensive[i%len(expensive)])
	}
	st := db.Cache().Stats()
	total := st.Hits + st.Misses
	if total > 0 {
		hitRate = float64(st.Hits) / float64(total)
	}
	return hitRate, time.Since(start) / ops
}
