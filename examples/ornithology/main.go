// Ornithology: the paper's demonstration scenario — an AKN-style annotated
// bird database where watcher observations pile up two orders of magnitude
// faster than base records. The example builds a small flock of birds with
// class-skewed annotations and attached field reports, then walks the
// demo's features: summary visualization, a join query with pipelined
// summary propagation, the under-the-hood per-operator trace (Figure 5),
// and cluster/snippet zoom-ins.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"insightnotes"
)

var birds = []struct {
	id       int
	name     string
	sciName  string
	wingspan float64
}{
	{1, "Swan Goose", "Anser cygnoides", 1.8},
	{2, "Mute Swan", "Cygnus olor", 2.2},
	{3, "Whooper Swan", "Cygnus cygnus", 2.3},
	{4, "Canada Goose", "Branta canadensis", 1.7},
}

// observations per class, cycled over the birds.
var observations = map[string][]string{
	"Behavior": {
		"found eating stonewort near the shore at dawn",
		"large flock foraging in the shallow lake",
		"territorial display toward intruding geese observed",
		"feeding on stonewort beds with juveniles nearby",
	},
	"Disease": {
		"specimen lethargic, signs of avian influenza infection",
		"lesions near the bill suggest avian pox virus",
	},
	"Anatomy": {
		"wingspan measured at nearly two meters",
		"plumage white with black wing tips, long neck",
	},
	"Other": {
		"photo uploaded from the trail camera archive",
		"duplicate of an earlier checklist record",
	},
}

func main() {
	ctx := context.Background()
	db, err := insightnotes.Open(insightnotes.Config{})
	if err != nil {
		log.Fatal(err)
	}
	must := func(stmt string) *insightnotes.Result {
		res, err := db.Exec(ctx, stmt)
		if err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
		return res
	}

	// Base data: birds and a sightings fact table.
	must(`CREATE TABLE birds (id INT, name TEXT, sci_name TEXT, wingspan FLOAT)`)
	for _, b := range birds {
		must(fmt.Sprintf(`INSERT INTO birds VALUES (%d, '%s', '%s', %.1f)`,
			b.id, b.name, b.sciName, b.wingspan))
	}
	must(`CREATE TABLE sightings (sid INT, bird_id INT, region TEXT, cnt INT)`)
	regions := []string{"great lakes", "northeast", "gulf coast"}
	for i := 0; i < 12; i++ {
		must(fmt.Sprintf(`INSERT INTO sightings VALUES (%d, %d, '%s', %d)`,
			i+1, i%4+1, regions[i%3], (i*7)%40+1))
	}

	// The three demo summary instances.
	must(`CREATE SUMMARY INSTANCE ClassBird1 TYPE Classifier
		LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')`)
	must(`TRAIN SUMMARY ClassBird1
		('found eating stonewort shore flock foraging feeding', 'Behavior'),
		('territorial display observed at dawn', 'Behavior'),
		('influenza infection lesions virus lethargic sick', 'Disease'),
		('wingspan plumage neck bill measured meters', 'Anatomy'),
		('photo camera duplicate record checklist archive', 'Other')`)
	must(`CREATE SUMMARY INSTANCE SimCluster TYPE Cluster WITH (threshold = 0.25)`)
	must(`CREATE SUMMARY INSTANCE TextSummary1 TYPE Snippet WITH (sentences = 2)`)
	for _, inst := range []string{"ClassBird1", "SimCluster", "TextSummary1"} {
		must(fmt.Sprintf(`LINK SUMMARY %s TO birds`, inst))
	}

	// Stream in the watcher annotations (several rounds so counts build up
	// the way Figure 1 shows).
	for round := 0; round < 3; round++ {
		for class, texts := range observations {
			for i, text := range texts {
				bird := (i+round)%4 + 1
				must(fmt.Sprintf(`ADD ANNOTATION '%s (%s obs %d)' AUTHOR 'watcher%02d'
					ON birds WHERE id = %d`, text, strings.ToLower(class), round, i, bird))
			}
		}
	}
	// One attached field report (a document the Snippet instance condenses).
	must(`ADD ANNOTATION 'full field report attached'
		TITLE 'Field report: Swan Goose spring survey'
		DOCUMENT 'Swan geese gathered on the stonewort beds every morning. Counts peaked at forty-one birds near the north shore. Two juveniles showed feeding behavior identical to the adults. Weather stayed mild for the whole survey week. One adult carried a leg band from the 2013 season.'
		ON birds WHERE id = 1`)

	// --- Feature 1: querying and visualizing summaries ---
	fmt.Println("=== summaries on the Swan Goose tuple ===")
	res, err := db.Query(ctx, `SELECT id, name FROM birds WHERE id = 1`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%v\n%s\n", row.Tuple, indent(row.Env.Render()))
	}

	// --- Feature 2: summary propagation through a join + aggregation ---
	fmt.Println("\n=== summaries propagate through a join ===")
	joinRes, err := db.Query(ctx, `SELECT b.name, s.region, s.cnt FROM birds b, sightings s
		WHERE b.id = s.bird_id AND s.cnt > 20 ORDER BY s.cnt DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range joinRes.Rows {
		fmt.Printf("%v\n", row.Tuple)
		if row.Env != nil {
			fmt.Println(indent(row.Env.Render()))
		}
	}

	// --- Feature 3: under-the-hood execution (Figure 5) ---
	fmt.Println("\n=== under-the-hood: summaries at each operator ===")
	traced, err := db.Query(ctx, `SELECT b.name, s.region FROM birds b, sightings s
		WHERE b.id = s.bird_id AND b.id = 1 LIMIT 2`, insightnotes.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	lastStage := ""
	for _, e := range traced.Trace {
		if e.Stage != lastStage {
			fmt.Printf("[%s]\n", e.Stage)
			lastStage = e.Stage
		}
		fmt.Printf("  %v", e.Tuple)
		if e.Summary != "" {
			first := strings.SplitN(e.Summary, "\n", 2)[0]
			fmt.Printf("   « %s …", first)
		}
		fmt.Println()
	}

	// --- Feature 4: zoom-in ---
	fmt.Println("\n=== zoom-in: disease annotations on the Swan Goose ===")
	zoom := must(fmt.Sprintf(
		`ZOOMIN REFERENCE QID %d WHERE id = 1 ON ClassBird1 INDEX 2`, res.QID))
	for _, zr := range zoom.ZoomAnnotations {
		for _, a := range zr.Annotations {
			fmt.Printf("  A%d [%s] %s\n", a.ID, a.Author, a.Text)
		}
	}
	fmt.Println("\n=== zoom-in: the attached field report (snippet index 1) ===")
	zoomDoc := must(fmt.Sprintf(
		`ZOOMIN REFERENCE QID %d WHERE id = 1 ON TextSummary1 INDEX 1`, res.QID))
	for _, zr := range zoomDoc.ZoomAnnotations {
		for _, a := range zr.Annotations {
			fmt.Printf("  %s\n  %s\n", a.Title, a.Document)
		}
	}
	st := db.Cache().Stats()
	fmt.Printf("\nzoom-in cache: %d hits, %d misses (%s policy)\n",
		st.Hits, st.Misses, db.Cache().PolicyName())
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n")
}
