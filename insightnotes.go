// Package insightnotes is a summary-based annotation management engine
// over relational data — a from-scratch Go reproduction of the InsightNotes
// system (Xiao, Bashllari, Menard, Eltabakh: "Even Metadata is Getting Big:
// Annotation Summarization using InsightNotes", SIGMOD 2015, and the
// companion SIGMOD 2014 research paper).
//
// Instead of propagating raw annotations through queries, InsightNotes
// mines them into compact per-tuple summary objects — Classifier label
// counts, Cluster groups with elected representatives, and Snippet extracts
// of attached documents — and extends every relational operator to curate
// and merge those objects inside the pipeline. Users interactively
// "zoom in" on reported summaries to retrieve the raw annotations behind
// them, served by a disk-based materialization cache under the RCO
// replacement policy.
//
// # Quick start
//
// The statement API is context-first: every entry point takes a
// context.Context and optional per-statement options (WithTrace,
// WithParallelism, WithBatchSize, WithPlanOptions).
//
//	db, err := insightnotes.Open(insightnotes.Config{})
//	ctx := context.Background()
//	// CREATE TABLE / INSERT as usual:
//	db.Exec(ctx, `CREATE TABLE birds (id INT, name TEXT)`)
//	db.Exec(ctx, `INSERT INTO birds VALUES (1, 'Swan Goose')`)
//	// Define and link summary instances:
//	db.Exec(ctx, `CREATE SUMMARY INSTANCE ClassBird1 TYPE Classifier
//	         LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')`)
//	db.Exec(ctx, `TRAIN SUMMARY ClassBird1 ('found eating stonewort', 'Behavior')`)
//	db.Exec(ctx, `LINK SUMMARY ClassBird1 TO birds`)
//	// Annotate:
//	db.Exec(ctx, `ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id = 1`)
//	// Query — results carry summary objects and a QID:
//	res, _ := db.Query(ctx, `SELECT id, name FROM birds`)
//	// Zoom in on a summary element to get the raw annotations back:
//	db.Exec(ctx, fmt.Sprintf(
//	    `ZOOMIN REFERENCE QID %d ON ClassBird1 INDEX 1`, res.QID))
//
// The full statement grammar, architecture notes, and the experiment
// reproduction index live in README.md, DESIGN.md, and EXPERIMENTS.md.
package insightnotes

import (
	"insightnotes/internal/annotation"
	"insightnotes/internal/engine"
	"insightnotes/internal/server"
	"insightnotes/internal/zoomin"
)

// Core engine types, re-exported as the public API surface.
type (
	// DB is an InsightNotes database instance.
	DB = engine.DB
	// Config tunes a DB (buffer pool size, zoom-in cache, plan options).
	Config = engine.Config
	// Result is the outcome of one executed statement.
	Result = engine.Result
	// StatementStats is the per-statement runtime summary attached to
	// SELECT and EXPLAIN ANALYZE results.
	StatementStats = engine.StatementStats
	// AnnotationRequest describes a programmatic annotation ingestion.
	AnnotationRequest = engine.AnnotationRequest
	// TargetSpec scopes one attachment of a multi-target annotation.
	TargetSpec = engine.TargetSpec
	// ZoomInRequest is the programmatic form of the ZOOMIN command.
	ZoomInRequest = engine.ZoomInRequest
	// ZoomRowResult is one zoom-in expansion: a result tuple and the raw
	// annotations behind the addressed summary element.
	ZoomRowResult = engine.ZoomRowResult
	// CachePolicy selects the zoom-in cache replacement policy.
	CachePolicy = zoomin.Policy
	// CacheStats reports zoom-in cache effectiveness.
	CacheStats = zoomin.CacheStats
	// Annotation is one raw annotation (text, optional titled document,
	// author, creation time).
	Annotation = annotation.Annotation
	// AnnotationID identifies a stored annotation.
	AnnotationID = annotation.ID
	// ColSet is a bitmask of covered column ordinals on a tuple.
	ColSet = annotation.ColSet
	// StatementOption tunes one statement execution on the context-first
	// Query/Exec/ExecScript entry points.
	StatementOption = engine.StatementOption
)

// Per-statement options for the context-first statement API.
var (
	// WithTrace enables the under-the-hood operator log (Result.Trace).
	WithTrace = engine.WithTrace
	// WithPlanOptions substitutes ablation plan options for one statement;
	// such SELECTs are not QID-registered and skip the zoom-in cache.
	WithPlanOptions = engine.WithPlanOptions
	// WithParallelism overrides the morsel-parallel scan worker count.
	WithParallelism = engine.WithParallelism
	// WithBatchSize overrides the executor's rows-per-batch granularity.
	WithBatchSize = engine.WithBatchSize
)

// Open creates a database instance with the given configuration. The zero
// Config yields an in-memory engine with a temp-directory zoom-in cache
// managed by the RCO policy.
func Open(cfg Config) (*DB, error) { return engine.Open(cfg) }

// MustOpen is Open that panics on error, for examples and tests.
func MustOpen(cfg Config) *DB { return engine.MustOpen(cfg) }

// LoadFile restores a database from a snapshot file written by
// DB.SaveFile. Summary objects are rebuilt by replaying the persisted raw
// annotations through incremental maintenance.
func LoadFile(path string, cfg Config) (*DB, error) { return engine.LoadFile(path, cfg) }

// RCO returns the paper's Recency-Complexity-Overhead cache replacement
// policy (the default).
func RCO() CachePolicy { return zoomin.RCO{} }

// LRU returns the baseline least-recently-used policy, provided for
// comparison benchmarks.
func LRU() CachePolicy { return zoomin.LRU{} }

// Network middleware types (see internal/server for the wire protocol).
type (
	// Server serves a DB over TCP with a newline-delimited JSON protocol.
	Server = server.Server
	// Client connects to a Server. Statements run through the
	// context-first Client.Do with functional CallOptions.
	Client = server.Client
	// ClientStmt is a prepared statement handle from Client.Prepare.
	ClientStmt = server.Stmt
	// CallOption configures one Client.Do call (WithClientArgs,
	// WithClientTrace, WithClientRetry, WithClientMutation).
	CallOption = server.CallOption
	// ServerResponse is one reply from a Server.
	ServerResponse = server.Response
)

// Client call options, re-exported under Client-prefixed names (the bare
// names collide with the engine's statement options above).
var (
	WithClientArgs     = server.WithArgs
	WithClientTrace    = server.WithTrace
	WithClientRetry    = server.WithRetry
	WithClientMutation = server.WithMutation
)

// Serve wraps db in a Server and starts listening on addr (use ":0" for an
// ephemeral port). It returns the server and the bound address.
func Serve(db *DB, addr string) (*Server, string, error) {
	srv := server.New(db)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// DialServer connects a client to a running Server.
func DialServer(addr string) (*Client, error) { return server.Dial(addr) }
