package insightnotes

// One testing.B benchmark per experiment in DESIGN.md's index (E1-E8),
// sharing fixtures with the sweep harness in internal/bench, plus
// micro-benchmarks of the core summary operations. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/inbench runs the corresponding full parameter sweeps and prints the
// paper-style tables captured in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"insightnotes/internal/annotation"
	"insightnotes/internal/bench"
	"insightnotes/internal/engine"
	"insightnotes/internal/plan"
	"insightnotes/internal/sql"
	"insightnotes/internal/summary"
	"insightnotes/internal/textmining"
	"insightnotes/internal/types"
	"insightnotes/internal/workload"
	"insightnotes/internal/workload/populate"
)

// newBirdWorld builds the standard annotated fixture.
func newBirdWorld(b *testing.B, tuples, annsPerTuple int) *engine.DB {
	b.Helper()
	db, err := engine.Open(engine.Config{CacheDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	g := workload.New(1)
	if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
		Tuples:              tuples,
		AnnotationsPerTuple: annsPerTuple,
		DocumentFraction:    0.02,
		TrainPerClass:       8,
	}); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkE1SummaryCompression measures the cost basis of E1: maintaining
// all three summary types for one incoming annotation.
func BenchmarkE1SummaryCompression(b *testing.B) {
	db := newBirdWorld(b, 8, 10)
	g := workload.New(2)
	texts := make([]string, 64)
	for i := range texts {
		texts[i] = g.ClassText(workload.BirdClasses[i%4])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := db.Annotate(engine.AnnotationRequest{
			Text: texts[i%len(texts)], Table: "birds",
			Where: eqID(i%8 + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2SPJPropagation measures the Figure 2 pipeline at two
// annotation volumes.
func BenchmarkE2SPJPropagation(b *testing.B) {
	for _, apt := range []int{8, 64} {
		b.Run(fmt.Sprintf("annsPerTuple=%d", apt), func(b *testing.B) {
			w, err := bench.NewSPJWorld(b.TempDir(), 8, apt, 0.02)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.DB.Query(context.Background(), w.Query, engine.WithPlanOptions(plan.Options{})); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3CurateBeforeMerge compares the curated plan against the
// pushdown-disabled ablation.
func BenchmarkE3CurateBeforeMerge(b *testing.B) {
	w, err := bench.NewSPJWorld(b.TempDir(), 8, 16, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	for name, opts := range map[string]plan.Options{
		"curated":    {},
		"noPushdown": {DisableProjectionPushdown: true},
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.DB.Query(context.Background(), w.Query, engine.WithPlanOptions(opts)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4IncrementalVsRecompute contrasts one incremental maintenance
// step with a full summary rebuild.
func BenchmarkE4IncrementalVsRecompute(b *testing.B) {
	b.Run("incrementalInsert", func(b *testing.B) {
		db := newBirdWorld(b, 8, 20)
		g := workload.New(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Annotate(engine.AnnotationRequest{
				Text: g.ClassText("Behavior"), Table: "birds", Where: eqID(i%8 + 1),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullRebuild", func(b *testing.B) {
		db := newBirdWorld(b, 8, 20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.RebuildSummaries("birds"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5InvariantOptimization measures a multi-tuple annotation ingest
// with and without summarize-once.
func BenchmarkE5InvariantOptimization(b *testing.B) {
	for name, disable := range map[string]bool{"summarizeOnce": false, "ablated": true} {
		b.Run(name, func(b *testing.B) {
			db, err := engine.Open(engine.Config{CacheDir: b.TempDir(), DisableSummarizeOnce: disable})
			if err != nil {
				b.Fatal(err)
			}
			g := workload.New(4)
			if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
				Tuples: 32, AnnotationsPerTuple: 0, TrainPerClass: 8,
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One annotation attached to all 32 tuples.
				if _, _, err := db.Annotate(engine.AnnotationRequest{
					Text: g.ClassText("Behavior"), Table: "birds",
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6ZoomInRCO measures zoom-in service time on a cache hit and on
// a forced miss (query re-execution).
func BenchmarkE6ZoomInRCO(b *testing.B) {
	run := func(b *testing.B, budget int64) {
		db, err := engine.Open(engine.Config{CacheDir: b.TempDir(), CacheBudget: budget})
		if err != nil {
			b.Fatal(err)
		}
		g := workload.New(5)
		if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
			Tuples: 8, AnnotationsPerTuple: 10, TrainPerClass: 8,
		}); err != nil {
			b.Fatal(err)
		}
		res, err := db.Query(context.Background(), "SELECT id, name FROM birds")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.ZoomIn(context.Background(), engine.ZoomInRequest{
				QID: res.QID, Instance: "ClassBird1", Index: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("hit", func(b *testing.B) { run(b, 16<<20) })
	b.Run("missReexecute", func(b *testing.B) { run(b, 1) })
}

// BenchmarkE7InstanceScalability measures maintenance cost against the
// number of linked instances.
func BenchmarkE7InstanceScalability(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("instances=%d", k), func(b *testing.B) {
			db, err := engine.Open(engine.Config{CacheDir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			g := workload.New(6)
			if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
				Tuples: 8, AnnotationsPerTuple: 0, SkipInstances: true,
			}); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < k; i++ {
				name := fmt.Sprintf("C%02d", i)
				if _, err := db.Exec(context.Background(), fmt.Sprintf(
					"CREATE SUMMARY INSTANCE %s TYPE Cluster WITH (threshold = 0.3)", name)); err != nil {
					b.Fatal(err)
				}
				if _, err := db.Exec(context.Background(), fmt.Sprintf("LINK SUMMARY %s TO birds", name)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Annotate(engine.AnnotationRequest{
					Text: g.ClassText("Behavior"), Table: "birds", Where: eqID(i%8 + 1),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8SummaryVsRaw contrasts the summary engine with raw-annotation
// propagation on the same SPJ query and data.
func BenchmarkE8SummaryVsRaw(b *testing.B) {
	for _, apt := range []int{8, 64} {
		w, err := bench.NewSPJWorld(b.TempDir(), 8, apt, 0.02)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("summary/annsPerTuple=%d", apt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.DB.Query(context.Background(), w.Query, engine.WithPlanOptions(plan.Options{})); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("raw/annsPerTuple=%d", apt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunRawSPJ(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- core micro-benchmarks ----

// BenchmarkClassifySummarize measures one Naive Bayes classification, the
// unit cost of classifier maintenance.
func BenchmarkClassifySummarize(b *testing.B) {
	nb, err := textmining.NewNaiveBayes(workload.BirdClasses)
	if err != nil {
		b.Fatal(err)
	}
	g := workload.New(7)
	for _, s := range g.TrainingSet(workload.BirdClasses, 8) {
		nb.Learn(s[0], s[1])
	}
	in, err := summary.NewClassifierInstance("C", nb)
	if err != nil {
		b.Fatal(err)
	}
	texts := make([]annotation.Annotation, 64)
	for i := range texts {
		texts[i] = annotation.Annotation{ID: annotation.ID(i + 1), Text: g.ClassText("Behavior")}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Summarize(texts[i%len(texts)])
	}
}

// BenchmarkEnvelopeMerge measures the join-time merge of two populated
// envelopes, the inner loop of summary propagation.
func BenchmarkEnvelopeMerge(b *testing.B) {
	in, err := summary.NewClusterInstance("S", summary.DefaultSimThreshold)
	if err != nil {
		b.Fatal(err)
	}
	g := workload.New(8)
	build := func(base int) *summary.Envelope {
		e := summary.NewEnvelope()
		for i := 0; i < 20; i++ {
			a := annotation.Annotation{ID: annotation.ID(base + i), Text: g.ClassText("Behavior")}
			e.Add(in, in.Summarize(a), annotation.WholeRow(4))
		}
		return e
	}
	left := build(0)
	right := build(10) // half the ids shared with left
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := left.Clone()
		l.Merge(right, 4)
	}
}

// BenchmarkEnvelopeProject measures projection curation of a populated
// envelope.
func BenchmarkEnvelopeProject(b *testing.B) {
	in, err := summary.NewClusterInstance("S", summary.DefaultSimThreshold)
	if err != nil {
		b.Fatal(err)
	}
	g := workload.New(9)
	base := summary.NewEnvelope()
	for i := 0; i < 30; i++ {
		a := annotation.Annotation{ID: annotation.ID(i + 1), Text: g.ClassText("Anatomy")}
		cols := annotation.Col(i % 4)
		base.Add(in, in.Summarize(a), cols)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := base.Clone()
		e.Project([]int{0, 1})
	}
}

// BenchmarkConcurrentReaders measures parallel SELECT throughput through
// the network server: N client goroutines, one connection each, sharing
// one engine. Reads take the engine's statement lock in shared mode, so
// throughput should scale with goroutines until CPU saturation — the
// scaling check recorded in EXPERIMENTS.md.
func BenchmarkConcurrentReaders(b *testing.B) {
	for _, gor := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			db := newBirdWorld(b, 16, 8)
			srv, addr, err := Serve(db, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			clients := make([]*Client, gor)
			for i := range clients {
				c, err := DialServer(addr)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				clients[i] = c
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < gor; i++ {
				n := b.N / gor
				if i < b.N%gor {
					n++
				}
				wg.Add(1)
				go func(c *Client, n int) {
					defer wg.Done()
					for j := 0; j < n; j++ {
						resp, err := c.Do(context.Background(), "SELECT id, name, wingspan FROM birds WHERE id <= 8")
						if err != nil {
							b.Error(err)
							return
						}
						if !resp.OK {
							b.Errorf("server error: %s", resp.Error)
							return
						}
					}
				}(clients[i], n)
			}
			wg.Wait()
		})
	}
}

// BenchmarkInstrumentationOverhead quantifies the metrics hot-path cost:
// the same scan-heavy query stream with the registry enabled (default) and
// disabled (Config.DisableMetrics). The on/off delta is the per-statement
// price of statement counters, latency histograms, per-operator folding,
// and sampled timing — recorded in EXPERIMENTS.md with a ≤5% budget.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	for name, disable := range map[string]bool{"metricsOn": false, "metricsOff": true} {
		b.Run(name, func(b *testing.B) {
			db, err := engine.Open(engine.Config{CacheDir: b.TempDir(), DisableMetrics: disable})
			if err != nil {
				b.Fatal(err)
			}
			g := workload.New(10)
			if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
				Tuples: 16, AnnotationsPerTuple: 8, TrainPerClass: 8,
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(context.Background(), "SELECT id, name, wingspan FROM birds WHERE id <= 8"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// eqID builds the predicate `id = n` for programmatic annotation targets.
func eqID(n int) sql.Expr {
	return &sql.BinaryExpr{
		Op: "=",
		L:  &sql.ColRef{Name: "id"},
		R:  &sql.Literal{Val: types.NewInt(int64(n))},
	}
}

// newScanWorld builds a birds table wide enough to span many morsels
// (DefaultMorselSize = 1024 rows), with summary instances linked and a
// slice of the rows annotated so parallel workers carry real envelope
// clone + curate work, not just tuple copies.
func newScanWorld(b *testing.B, tuples int) *engine.DB {
	b.Helper()
	db, err := engine.Open(engine.Config{CacheDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.Exec(ctx,
		"CREATE TABLE birds (id INT, name TEXT, sci_name TEXT, region TEXT, wingspan FLOAT)"); err != nil {
		b.Fatal(err)
	}
	g := workload.New(1)
	for lo := 0; lo < tuples; lo += 512 {
		hi := lo + 512
		if hi > tuples {
			hi = tuples
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO birds VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			common, sci := workload.Species(i)
			fmt.Fprintf(&sb, "(%d, '%s', '%s', '%s', %0.2f)",
				i+1, common, sci, g.Region(), 0.3+float64(g.Intn(250))/100)
		}
		if _, err := db.Exec(ctx, sb.String()); err != nil {
			b.Fatal(err)
		}
	}
	if err := populate.InstallBirdInstances(db, g, 6); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < tuples; i += 8 {
		if _, _, err := db.Annotate(engine.AnnotationRequest{
			Text: g.ClassText(workload.BirdClasses[i%4]), Author: g.AuthorName(),
			Table: "birds", Where: eqID(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkParallelScan measures E14a: morsel-driven scan scaling over the
// worker pool size. The query's filter and projection are absorbed into
// the workers, so the per-tuple summary path parallelizes. Speedup tracks
// physical cores: on a 1-CPU host all counts collapse to serial throughput.
func BenchmarkParallelScan(b *testing.B) {
	db := newScanWorld(b, 8192)
	const q = "SELECT id, name, wingspan FROM birds WHERE wingspan >= 0.4"
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(context.Background(), q,
					engine.WithPlanOptions(plan.Options{}), engine.WithParallelism(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchPipeline measures E14b: the vectorized batch protocol vs
// row-at-a-time execution (batch size 1) on the serial plan.
func BenchmarkBatchPipeline(b *testing.B) {
	db := newScanWorld(b, 8192)
	const q = "SELECT id, name, wingspan FROM birds WHERE wingspan >= 0.4"
	for _, c := range []struct {
		name string
		size int
	}{{"rowAtATime", 1}, {"batch=256", 256}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(context.Background(), q,
					engine.WithPlanOptions(plan.Options{}), engine.WithParallelism(1),
					engine.WithBatchSize(c.size)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
