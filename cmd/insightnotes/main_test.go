package main

import (
	"context"
	"strings"
	"testing"

	"insightnotes/internal/engine"
)

func replDB(t *testing.T) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecScript(context.Background(), `
		CREATE TABLE birds (id INT, name TEXT);
		INSERT INTO birds VALUES (1, 'Swan Goose');
		CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Behavior', 'Other');
		TRAIN SUMMARY C ('feeding stonewort', 'Behavior'), ('photo record', 'Other');
		LINK SUMMARY C TO birds;
		ADD ANNOTATION 'observed feeding' ON birds WHERE id = 1;
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPrintResultRendersTableAndSummaries(t *testing.T) {
	db := replDB(t)
	res, err := db.Query(context.Background(), "SELECT id, name FROM birds")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	printResult(&buf, res)
	out := buf.String()
	for _, want := range []string{
		"| id | name", "| 1 ", "Swan Goose",
		"~ C [(Behavior, 1), (Other, 0)]",
		"QID =",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintResultMessageOnly(t *testing.T) {
	db := replDB(t)
	res, err := db.Exec(context.Background(), "INSERT INTO birds VALUES (2, 'Mute Swan')")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	printResult(&buf, res)
	if !strings.Contains(buf.String(), "1 row(s) inserted") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestPrintResultTruncatesLongValues(t *testing.T) {
	db := replDB(t)
	long := strings.Repeat("x", 120)
	if _, err := db.Exec(context.Background(), "INSERT INTO birds VALUES (9, '"+long+"')"); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(context.Background(), "SELECT name FROM birds WHERE id = 9")
	var buf strings.Builder
	printResult(&buf, res)
	if strings.Contains(buf.String(), long) {
		t.Error("long value not truncated")
	}
	if !strings.Contains(buf.String(), "...") {
		t.Error("no ellipsis")
	}
}

func TestReplCommands(t *testing.T) {
	db := replDB(t)
	var buf strings.Builder
	if !replCommand(db, &buf, `\help`) {
		t.Error("\\help exited")
	}
	if !strings.Contains(buf.String(), "ZOOMIN") {
		t.Errorf("help output = %q", buf.String())
	}
	buf.Reset()
	replCommand(db, &buf, `\stats`)
	if !strings.Contains(buf.String(), "zoom-in cache [RCO]") {
		t.Errorf("stats output = %q", buf.String())
	}
	buf.Reset()
	replCommand(db, &buf, `\trace SELECT id FROM birds;`)
	if !strings.Contains(buf.String(), "under-the-hood") || !strings.Contains(buf.String(), "[project]") {
		t.Errorf("trace output = %q", buf.String())
	}
	buf.Reset()
	replCommand(db, &buf, `\nonsense`)
	if !strings.Contains(buf.String(), "unknown command") {
		t.Errorf("unknown output = %q", buf.String())
	}
	if replCommand(db, &buf, `\quit`) {
		t.Error("\\quit did not exit")
	}
	buf.Reset()
	replCommand(db, &buf, `\trace SELECT nope FROM birds;`)
	if !strings.Contains(buf.String(), "error:") {
		t.Errorf("trace error output = %q", buf.String())
	}
}
