// Command insightnotes is the interactive front end of the engine — the
// CLI counterpart of the paper's Excel-based InsightNotesGate (Figure 5).
// It accepts the full statement grammar (SQL plus the InsightNotes
// extensions), renders query results with their annotation summaries,
// supports zoom-in, and exposes the under-the-hood per-operator trace.
//
// Usage:
//
//	insightnotes [-demo] [-script file.sql] [-connect 127.0.0.1:7090]
//
// With -demo the REPL starts pre-loaded with the annotated ornithological
// dataset used throughout the paper's demonstration. With -connect the
// REPL speaks to a running insightnotesd over TCP instead of an
// in-process engine, retrying transient connection failures with capped
// exponential backoff.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"insightnotes/internal/bench"
	"insightnotes/internal/engine"
	"insightnotes/internal/server"
	"insightnotes/internal/workload"
	"insightnotes/internal/workload/populate"
)

func main() {
	demo := flag.Bool("demo", false, "preload the annotated ornithological demo dataset")
	script := flag.String("script", "", "execute a SQL script file before starting the REPL")
	connect := flag.String("connect", "", "address of a running insightnotesd to connect to (empty runs in-process)")
	flag.Parse()

	if *connect != "" {
		replRemote(*connect)
		return
	}

	db, err := engine.Open(engine.Config{})
	if err != nil {
		fatal(err)
	}
	if *demo {
		fmt.Println("loading ornithological demo dataset (16 birds × 30 annotations)...")
		g := workload.New(2015)
		if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
			Tuples: 16, AnnotationsPerTuple: 30, DocumentFraction: 0.05, TrainPerClass: 8,
		}); err != nil {
			fatal(err)
		}
		fmt.Println("loaded. Try: SELECT id, name FROM birds WHERE id <= 3;")
	}
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		results, err := db.ExecScript(context.Background(), string(data))
		for _, res := range results {
			printResult(os.Stdout, res)
		}
		if err != nil {
			fatal(err)
		}
	}
	repl(db)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insightnotes:", err)
	os.Exit(1)
}

// dialAttempts and dialBackoff shape the remote REPL's resilience: a
// handful of capped, jittered retries covers a server that is still
// binding or briefly restarting without hanging a dead address forever.
const dialAttempts = 6

var dialBackoff = server.Backoff{}

// replRemote is the REPL over a TCP connection to insightnotesd. A
// failed round trip (server restart, network blip) reconnects with
// backoff and retries the statement once before reporting the error.
func replRemote(addr string) {
	ctx := context.Background()
	c, err := server.DialRetry(ctx, addr, dialAttempts, dialBackoff)
	if err != nil {
		fatal(fmt.Errorf("connecting to %s: %w", addr, err))
	}
	defer func() { c.Close() }()
	fmt.Printf("connected to %s (type \\help)\n", addr)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("insightnotes> ")
		} else {
			fmt.Print("          ... ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if trimmed == `\q` || trimmed == `\quit` {
				return
			}
			fmt.Println(`remote mode supports \quit; statements end with ';'`)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			stmt := strings.TrimSpace(buf.String())
			buf.Reset()
			resp, err := c.Do(ctx, stmt)
			if err != nil {
				fmt.Println("connection lost:", err, "— reconnecting...")
				c.Close()
				c, err = server.DialRetry(ctx, addr, dialAttempts, dialBackoff)
				if err != nil {
					fatal(fmt.Errorf("reconnecting to %s: %w", addr, err))
				}
				resp, err = c.Do(ctx, stmt)
			}
			if err != nil {
				fmt.Println("error:", err)
			} else {
				printResponse(os.Stdout, resp)
			}
		}
		prompt()
	}
}

// printResponse renders a wire response in the same tabular style the
// in-process REPL uses for engine results.
func printResponse(w io.Writer, resp *server.Response) {
	if resp.Error != "" {
		fmt.Fprintln(w, "error:", resp.Error)
		return
	}
	if resp.Message != "" {
		fmt.Fprintln(w, resp.Message)
	}
	if len(resp.Columns) == 0 {
		return
	}
	widths := make([]int, len(resp.Columns))
	for i, c := range resp.Columns {
		widths[i] = len(c)
	}
	// EXPLAIN and SHOW TRACE output is a single "plan"/"trace" column whose
	// lines (operator descriptions, span trees) must not be truncated.
	planOutput := len(resp.Columns) == 1 &&
		(resp.Columns[0] == "plan" || resp.Columns[0] == "trace")
	cells := make([][]string, len(resp.Rows))
	for r, row := range resp.Rows {
		cells[r] = make([]string, len(resp.Columns))
		for i := range resp.Columns {
			s := ""
			if i < len(row.Values) {
				s = row.Values[i].String()
			}
			if len(s) > 40 && !planOutput {
				s = s[:37] + "..."
			}
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(w, "| "+strings.Join(parts, " | ")+" |")
	}
	line(resp.Columns)
	sep := make([]string, len(resp.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for r, row := range resp.Rows {
		line(cells[r])
		for _, name := range sortedKeys(row.Summaries) {
			for _, l := range strings.Split(row.Summaries[name], "\n") {
				fmt.Fprintf(w, "    ~ %s\n", l)
			}
		}
	}
	if resp.QID != 0 {
		fmt.Fprintf(w, "(%d row(s), QID = %d)\n", len(resp.Rows), resp.QID)
	} else {
		fmt.Fprintf(w, "(%d row(s))\n", len(resp.Rows))
	}
	if resp.Stats != "" {
		fmt.Fprintf(w, "-- %s\n", resp.Stats)
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

const help = `statements end with ';'. SQL: CREATE TABLE / CREATE INDEX / INSERT /
BULK INSERT (one WAL record and fsync for the whole batch) /
SELECT (joins, GROUP BY, HAVING, ORDER BY, DISTINCT, LIMIT) / DROP TABLE.
Prepared statements:
  PREPARE name AS SELECT .. WHERE id = $1;
  EXECUTE name USING 7;     EXECUTE name (7);
  DEALLOCATE name;
InsightNotes extensions:
  ADD ANNOTATION 'text' [TITLE '..'] [DOCUMENT '..'] [AUTHOR '..']
      ON table[(col, ..)] [WHERE cond];
  CREATE SUMMARY INSTANCE name TYPE Classifier|Cluster|Snippet
      [WITH (k = v, ..)] [LABELS ('a', ..)];
  TRAIN SUMMARY name ('sample', 'Label'), ..;
  LINK SUMMARY name TO table;   UNLINK SUMMARY name FROM table;
  ZOOMIN REFERENCE QID n [WHERE cond] ON instance INDEX k;
  SHOW TABLES; SHOW SUMMARIES; SHOW ANNOTATIONS ON table;
  SHOW METRICS [LIKE 'insightnotes_zoomin_%'];
REPL commands:
  \trace SELECT ...;   run a query with the per-operator summary trace
  \stats               zoom-in cache statistics
  \bench               run the quick experiment suite
  \help                this text
  \quit                exit`

func repl(db *engine.DB) {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Println(`InsightNotes — summary-based annotation management (type \help)`)
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("insightnotes> ")
		} else {
			fmt.Print("          ... ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !replCommand(db, os.Stdout, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			stmt := buf.String()
			buf.Reset()
			results, err := db.ExecScript(context.Background(), stmt)
			for _, res := range results {
				printResult(os.Stdout, res)
			}
			if err != nil {
				fmt.Println("error:", err)
			}
		}
		prompt()
	}
}

// replCommand handles backslash commands; it returns false to exit.
func replCommand(db *engine.DB, w io.Writer, cmd string) bool {
	switch {
	case cmd == `\q` || cmd == `\quit`:
		return false
	case cmd == `\help` || cmd == `\h`:
		fmt.Fprintln(w, help)
	case cmd == `\stats`:
		st := db.Cache().Stats()
		fmt.Fprintf(w, "zoom-in cache [%s]: %d entries, %d bytes, %d hits, %d misses, %d evictions\n",
			db.Cache().PolicyName(), st.Entries, st.UsedBytes, st.Hits, st.Misses, st.Evictions)
	case cmd == `\bench`:
		if _, err := bench.RunAll(w, bench.Quick); err != nil {
			fmt.Fprintln(w, "error:", err)
		}
	case strings.HasPrefix(cmd, `\trace `):
		q := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(cmd, `\trace `)), ";")
		res, err := db.Query(context.Background(), q, engine.WithTrace())
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		fmt.Fprintln(w, "-- under-the-hood execution --")
		for _, e := range res.Trace {
			fmt.Fprintf(w, "[%s] %s\n", e.Stage, e.Tuple)
			if e.Summary != "" {
				for _, line := range strings.Split(e.Summary, "\n") {
					fmt.Fprintf(w, "        %s\n", line)
				}
			}
		}
		printResult(w, res)
	default:
		fmt.Fprintln(w, `unknown command (try \help)`)
	}
	return true
}

func printResult(w io.Writer, res *engine.Result) {
	if res.Message != "" {
		fmt.Fprintln(w, res.Message)
	}
	if res.Schema.Len() == 0 {
		return
	}
	// Header.
	headers := make([]string, res.Schema.Len())
	widths := make([]int, res.Schema.Len())
	for i, c := range res.Schema.Columns {
		headers[i] = c.QualifiedName()
		widths[i] = len(headers[i])
	}
	// EXPLAIN and SHOW TRACE output is a single "plan"/"trace" column whose
	// lines (operator descriptions, span trees) must not be truncated.
	planOutput := res.Schema.Len() == 1 &&
		(res.Schema.Columns[0].Name == "plan" || res.Schema.Columns[0].Name == "trace")
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row.Tuple))
		for i, v := range row.Tuple {
			s := v.String()
			if len(s) > 40 && !planOutput {
				s = s[:37] + "..."
			}
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(w, "| "+strings.Join(parts, " | ")+" |")
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for r, row := range res.Rows {
		line(cells[r])
		if row.Env != nil && !row.Env.IsEmpty() {
			for _, l := range strings.Split(row.Env.Render(), "\n") {
				fmt.Fprintf(w, "    ~ %s\n", l)
			}
		}
	}
	if res.QID != 0 {
		fmt.Fprintf(w, "(%d row(s), QID = %d)\n", len(res.Rows), res.QID)
	} else {
		fmt.Fprintf(w, "(%d row(s))\n", len(res.Rows))
	}
	if res.Stats != nil {
		fmt.Fprintf(w, "-- %s\n", res.Stats)
	}
}
