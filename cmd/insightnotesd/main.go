// Command insightnotesd runs an InsightNotes engine as standalone network
// middleware: clients connect over TCP and speak the newline-delimited
// JSON protocol of internal/server (one request object per line, one
// response per line).
//
// Usage:
//
//	insightnotesd [-addr :7090] [-data-dir dir] [-snapshot db.json] [-demo]
//	              [-stmt-timeout 30s] [-drain-timeout 10s] [-checkpoint-bytes 8388608]
//	              [-metrics-addr 127.0.0.1:7091] [-slow-query-ms 250] [-slow-query-log slow.jsonl]
//	              [-admit-max 0] [-admit-queue 64] [-admit-timeout 1s] [-max-conns 0]
//	              [-max-frame-bytes 16777216] [-idle-timeout 0] [-write-timeout 0]
//	              [-maint-queue 1024] [-maint-latency-ms 0]
//	              [-page-file pages.db] [-pool-frames 256]
//	              [-replication-addr :7092] [-replicate-from host:7092] [-max-staleness 0]
//	              [-scrub-interval 0] [-scrub-rate 256] [-repair-from host:7092]
//
// With -data-dir the engine runs crash-safe: every mutation is written to
// a fsynced write-ahead log before it is acknowledged, startup recovers
// the latest snapshot plus the WAL tail, and checkpoints (the CHECKPOINT
// statement, the -checkpoint-bytes size trigger, and shutdown) rewrite
// the snapshot and rotate the log.
//
// With -snapshot (durability off) the server loads the file at startup
// (if it exists) and writes it back on SIGINT/SIGTERM shutdown. On
// shutdown in-flight statements drain for at most -drain-timeout before
// being cancelled. With -metrics-addr an HTTP sidecar serves Prometheus
// metrics at /metrics and the pprof suite under /debug/pprof/. With
// -slow-query-ms statements at or above the threshold are logged as JSON
// lines to -slow-query-log (stderr by default).
//
// Overload protection: -admit-max bounds concurrently executing statements
// (excess requests wait in a bounded, deadline-aware queue of -admit-queue,
// shed after -admit-timeout with a structured retryable error carrying a
// retry-after hint); -max-conns caps client connections (refused ones get
// one structured answer); -max-frame-bytes caps a request frame;
// -idle-timeout and -write-timeout bound silent and slow-reading
// connections. -maint-latency-ms degrades summary maintenance automatically
// when the per-statement maintenance latency average crosses it: raw
// annotations stay synchronous and durable while summary updates queue
// (bounded by -maint-queue) for the background catch-up worker.
//
// Replication (requires -data-dir on both sides): -replication-addr makes
// this process a primary that ships its WAL to connected replicas;
// -replicate-from makes it a read replica of that primary — it follows
// the stream continuously, serves SELECT/ZOOMIN/SHOW with an explicit
// staleness bound in every response, rejects mutations with a structured
// READ_ONLY error, and sheds reads with a structured STALE error once its
// lag exceeds -max-staleness (0 serves regardless of lag). On shutdown
// the replication streams drain under the same -drain-timeout as client
// statements.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/replication"
	"insightnotes/internal/server"
	"insightnotes/internal/workload"
	"insightnotes/internal/workload/populate"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7090", "listen address")
	dataDir := flag.String("data-dir", "", "durable data directory (snapshot + write-ahead log); empty runs in-memory")
	ckptBytes := flag.Int64("checkpoint-bytes", 0, "auto-checkpoint when the WAL reaches this size (0 = 8 MiB default, negative disables)")
	snapshot := flag.String("snapshot", "", "snapshot file to load at start and save at shutdown (ignored with -data-dir)")
	demo := flag.Bool("demo", false, "preload the annotated ornithological demo dataset")
	stmtTimeout := flag.Duration("stmt-timeout", 0, "per-statement execution deadline (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "shutdown bound on draining in-flight statements (0 waits without bound)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address serving /metrics and /debug/pprof (empty disables)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "slow-query threshold in milliseconds (0 disables the slow-query log)")
	slowQueryLog := flag.String("slow-query-log", "", "slow-query log file, JSON lines (default stderr)")
	admitMax := flag.Int("admit-max", 0, "max concurrently executing statements (0 disables admission control)")
	admitQueue := flag.Int("admit-queue", 0, "bounded admission wait queue depth (0 = 64 default)")
	admitTimeout := flag.Duration("admit-timeout", 0, "max time a statement waits queued before it is shed (0 = 1s default)")
	maxConns := flag.Int("max-conns", 0, "max concurrent client connections (0 = unlimited)")
	maxFrame := flag.Int("max-frame-bytes", 0, "max request frame size in bytes (0 = 16 MiB default)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle longer than this (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-response write deadline against slow readers (0 disables)")
	maintQueue := flag.Int("maint-queue", 0, "deferred summary-maintenance queue depth (0 = 1024 default)")
	maintLatencyMS := flag.Int("maint-latency-ms", 0, "auto-degrade summary maintenance when its latency average crosses this (0 disables)")
	execWorkers := flag.Int("exec-workers", 0, "morsel-parallel scan worker pool size (0 = GOMAXPROCS, 1 = serial)")
	batchSize := flag.Int("batch-size", 0, "executor rows-per-batch granularity (0 = built-in default)")
	planCache := flag.Int("plan-cache", 0, "engine plan cache capacity in entries (0 = 256 default, negative disables)")
	pageFile := flag.String("page-file", "", "file-backed page store path (default <data-dir>/pages.db with -data-dir, in-memory otherwise)")
	poolFrames := flag.Int("pool-frames", 0, "buffer-pool capacity in 8 KiB frames (0 = 256 default)")
	traceSample := flag.Float64("trace-sample", 0, "probability a statement gets detailed span collection and ordinary traces are retained (0 = 0.05 default, negative keeps only slow/errored shells)")
	traceCapacity := flag.Int("trace-capacity", 0, "retained-trace ring capacity (0 = 512 default)")
	noTracing := flag.Bool("no-tracing", false, "disable statement lifecycle tracing entirely")
	replAddr := flag.String("replication-addr", "", "WAL-shipping listener for read replicas (primary role; requires -data-dir)")
	replFrom := flag.String("replicate-from", "", "primary's replication address to follow (read-replica role; requires -data-dir)")
	maxStaleness := flag.Duration("max-staleness", 0, "shed replica reads with a structured STALE error once lag exceeds this (0 serves regardless of lag)")
	scrubInterval := flag.Duration("scrub-interval", 0, "background integrity scrub period (0 disables; CHECK TABLE still verifies on demand)")
	scrubRate := flag.Int("scrub-rate", 0, "background scrub budget in pages per second (0 = built-in default)")
	repairFrom := flag.String("repair-from", "", "replication address to fetch clean pages from when corruption is found (defaults to -replicate-from on replicas)")
	flag.Parse()

	if (*replAddr != "" || *replFrom != "") && *dataDir == "" {
		fatal(fmt.Errorf("-replication-addr and -replicate-from require -data-dir (replication ships the write-ahead log)"))
	}
	if *replAddr != "" && *replFrom != "" {
		fatal(fmt.Errorf("-replication-addr and -replicate-from are mutually exclusive (cascading replicas are not supported)"))
	}
	if *replFrom != "" && *demo {
		fatal(fmt.Errorf("-demo mutates the database and cannot run on a read replica"))
	}

	cfg := engine.Config{
		MaintenanceQueueDepth:       *maintQueue,
		MaintenanceLatencyThreshold: time.Duration(*maintLatencyMS) * time.Millisecond,
		ExecWorkers:                 *execWorkers,
		BatchSize:                   *batchSize,
		PlanCacheSize:               *planCache,
		PageFile:                    *pageFile,
		PoolFrames:                  *poolFrames,
		TraceSample:                 *traceSample,
		TraceCapacity:               *traceCapacity,
		DisableTracing:              *noTracing,
		ScrubInterval:               *scrubInterval,
		ScrubRate:                   *scrubRate,
	}
	if *slowQueryMS > 0 {
		cfg.SlowQueryThreshold = time.Duration(*slowQueryMS) * time.Millisecond
		sinkW := os.Stderr
		if *slowQueryLog != "" {
			f, err := os.OpenFile(*slowQueryLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(fmt.Errorf("opening slow-query log: %w", err))
			}
			defer f.Close()
			sinkW = f
		}
		cfg.SlowQueryLog = engine.NewJSONSlowQueryLog(sinkW)
	}

	var db *engine.DB
	var err error
	switch {
	case *dataDir != "":
		var info engine.RecoveryInfo
		db, info, err = engine.OpenDurable(cfg, engine.DurabilityOptions{
			Dir: *dataDir, AutoCheckpointBytes: *ckptBytes,
		})
		if err != nil {
			fatal(fmt.Errorf("opening data dir %s: %w", *dataDir, err))
		}
		fmt.Printf("%s: %s\n", *dataDir, info)
	case *snapshot != "":
		if _, statErr := os.Stat(*snapshot); statErr == nil {
			db, err = engine.LoadFile(*snapshot, cfg)
			if err != nil {
				fatal(fmt.Errorf("loading %s: %w", *snapshot, err))
			}
			fmt.Printf("loaded snapshot %s\n", *snapshot)
		}
	}
	if db == nil {
		db, err = engine.Open(cfg)
		if err != nil {
			fatal(err)
		}
	}
	if *demo {
		g := workload.New(2015)
		if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
			Tuples: 16, AnnotationsPerTuple: 30, DocumentFraction: 0.05, TrainPerClass: 8,
		}); err != nil {
			fatal(err)
		}
		fmt.Println("demo dataset loaded")
	}

	if *metricsAddr != "" {
		ms := &http.Server{Addr: *metricsAddr, Handler: server.NewDebugMux(db)}
		go func() {
			if err := ms.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "metrics sidecar:", err)
			}
		}()
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", *metricsAddr)
	}

	var sender *replication.Sender
	var receiver *replication.Receiver
	switch {
	case *replAddr != "":
		sender, err = replication.NewSender(db, replication.SenderConfig{})
		if err != nil {
			fatal(err)
		}
		rbound, err := sender.Listen(*replAddr)
		if err != nil {
			fatal(fmt.Errorf("replication listener: %w", err))
		}
		fmt.Printf("shipping WAL to replicas on %s\n", rbound)
	case *replFrom != "":
		receiver, err = replication.NewReceiver(db, replication.ReceiverConfig{
			PrimaryAddr: *replFrom, MaxStaleness: *maxStaleness,
		})
		if err != nil {
			fatal(err)
		}
		receiver.Start()
		fmt.Printf("following primary %s (max staleness %v)\n", *replFrom, *maxStaleness)
	}

	// Repair source: where the scrubber refetches heap pages whose only
	// clean copy is remote. Replicas default to their primary; a primary
	// (or standalone) repairs from -repair-from when given, otherwise
	// corrupt heap pages are quarantined and reads shed with CORRUPT.
	repairAddr := *repairFrom
	if repairAddr == "" {
		repairAddr = *replFrom
	}
	if repairAddr != "" {
		db.SetRepairSource(replication.SnapshotFetcher(repairAddr, 0))
		fmt.Printf("repairing corrupt pages from %s\n", repairAddr)
	}

	srv := server.New(db)
	if receiver != nil {
		srv.Replica = receiver
	}
	srv.StatementTimeout = *stmtTimeout
	srv.Admission = server.AdmissionConfig{
		MaxStatements: *admitMax, QueueDepth: *admitQueue, QueueTimeout: *admitTimeout,
	}
	srv.MaxConns = *maxConns
	srv.MaxFrameBytes = *maxFrame
	srv.IdleTimeout = *idleTimeout
	srv.WriteTimeout = *writeTimeout
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("insightnotesd listening on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	if err := srv.Shutdown(*drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
	}
	// Replication streams drain under the same bound as client statements:
	// a primary keeps shipping until connected replicas acknowledge
	// everything committed before shutdown; a replica finishes applying
	// its in-flight batch so the next start resumes exactly there.
	if sender != nil {
		if err := sender.Shutdown(*drainTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "replication shutdown:", err)
		}
	}
	if receiver != nil {
		if err := receiver.Shutdown(*drainTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "replication shutdown:", err)
		}
	}
	switch {
	case db.Durable():
		// Final checkpoint: the WAL alone would recover the state, but an
		// up-to-date snapshot makes the next startup replay nothing.
		if _, err := db.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "final checkpoint:", err)
		} else {
			fmt.Printf("final checkpoint written to %s\n", *dataDir)
		}
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "close:", err)
		}
	case *snapshot != "":
		if err := db.SaveFile(*snapshot); err != nil {
			fatal(fmt.Errorf("saving %s: %w", *snapshot, err))
		}
		fmt.Printf("snapshot saved to %s\n", *snapshot)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insightnotesd:", err)
	os.Exit(1)
}
