// Command insightnotesd runs an InsightNotes engine as standalone network
// middleware: clients connect over TCP and speak the newline-delimited
// JSON protocol of internal/server (one request object per line, one
// response per line).
//
// Usage:
//
//	insightnotesd [-addr :7090] [-snapshot db.json] [-demo] [-stmt-timeout 30s]
//
// With -snapshot the server loads the file at startup (if it exists) and
// writes it back on SIGINT/SIGTERM shutdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"insightnotes/internal/engine"
	"insightnotes/internal/server"
	"insightnotes/internal/workload"
	"insightnotes/internal/workload/populate"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7090", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file to load at start and save at shutdown")
	demo := flag.Bool("demo", false, "preload the annotated ornithological demo dataset")
	stmtTimeout := flag.Duration("stmt-timeout", 0, "per-statement execution deadline (0 disables)")
	flag.Parse()

	var db *engine.DB
	var err error
	if *snapshot != "" {
		if _, statErr := os.Stat(*snapshot); statErr == nil {
			db, err = engine.LoadFile(*snapshot, engine.Config{})
			if err != nil {
				fatal(fmt.Errorf("loading %s: %w", *snapshot, err))
			}
			fmt.Printf("loaded snapshot %s\n", *snapshot)
		}
	}
	if db == nil {
		db, err = engine.Open(engine.Config{})
		if err != nil {
			fatal(err)
		}
	}
	if *demo {
		g := workload.New(2015)
		if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
			Tuples: 16, AnnotationsPerTuple: 30, DocumentFraction: 0.05, TrainPerClass: 8,
		}); err != nil {
			fatal(err)
		}
		fmt.Println("demo dataset loaded")
	}

	srv := server.New(db)
	srv.StatementTimeout = *stmtTimeout
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("insightnotesd listening on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
	}
	if *snapshot != "" {
		if err := db.SaveFile(*snapshot); err != nil {
			fatal(fmt.Errorf("saving %s: %w", *snapshot, err))
		}
		fmt.Printf("snapshot saved to %s\n", *snapshot)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insightnotesd:", err)
	os.Exit(1)
}
