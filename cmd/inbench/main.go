// Command inbench runs the experiment harness — one experiment per figure
// or claim of the paper (see DESIGN.md's experiment index) — and prints the
// resulting tables. EXPERIMENTS.md records a captured run.
//
// Usage:
//
//	inbench [-scale quick|full] [-exp e1,e4,e8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"insightnotes/internal/bench"
)

func main() {
	scale := flag.String("scale", "full", "sweep scale: quick or full")
	exps := flag.String("exp", "", "comma-separated experiment ids to run (default all), e.g. e1,e6")
	flag.Parse()

	var sc bench.Scale
	switch strings.ToLower(*scale) {
	case "quick":
		sc = bench.Quick
	case "full":
		sc = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "inbench: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	spec := bench.SpecFor(sc)

	want := map[string]bool{}
	for _, e := range strings.Split(strings.ToLower(*exps), ",") {
		if e = strings.TrimSpace(e); e != "" {
			want[e] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[strings.ToLower(id)] }

	type step struct {
		id  string
		run func() (*bench.Table, error)
	}
	steps := []step{
		{"e1", func() (*bench.Table, error) { return bench.E1Compression(spec.E1Tuples, spec.E1Ratios) }},
		{"e2", func() (*bench.Table, error) {
			return bench.E2SPJPropagation(spec.E2Birds, spec.E2AnnsPerTuple, spec.E2Iters)
		}},
		{"e3", func() (*bench.Table, error) {
			return bench.E3CurateBeforeMerge(spec.E3Birds, spec.E3AnnsPerTuple, spec.E3Iters)
		}},
		{"e4", func() (*bench.Table, error) {
			return bench.E4IncrementalMaintenance(spec.E4Tuples, spec.E4Checkpoints)
		}},
		{"e5", func() (*bench.Table, error) { return bench.E5InvariantOptimization(spec.E5Multiplicity) }},
		{"e6", func() (*bench.Table, error) {
			return bench.E6ZoomInCache(spec.E6Budget, spec.E6Queries, spec.E6ZoomOps)
		}},
		{"e7", func() (*bench.Table, error) {
			return bench.E7InstanceScalability(spec.E7Instances, spec.E7AnnsPerRound)
		}},
		{"e8", func() (*bench.Table, error) {
			return bench.E8SummaryVsRaw(spec.E8Birds, spec.E8AnnsPerTuple, spec.E8Iters)
		}},
	}
	ran := 0
	for _, s := range steps {
		if !selected(s.id) {
			continue
		}
		t, err := s.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "inbench %s: %v\n", s.id, err)
			os.Exit(1)
		}
		t.Format(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "inbench: no experiments matched -exp")
		os.Exit(2)
	}
}
