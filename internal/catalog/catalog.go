package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"insightnotes/internal/storage"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// Catalog is the engine's metadata root: tables, summary instances, and
// instance↔relation links.
type Catalog struct {
	mu        sync.RWMutex
	pool      *storage.BufferPool
	tables    map[string]*Table            // lower(name) → table
	instances map[string]*summary.Instance // instance name → instance
	links     map[string]map[string]bool   // lower(table) → instance names
}

// New creates an empty catalog over pool.
func New(pool *storage.BufferPool) *Catalog {
	return &Catalog{
		pool:      pool,
		tables:    make(map[string]*Table),
		instances: make(map[string]*summary.Instance),
		links:     make(map[string]map[string]bool),
	}
}

// Pool returns the shared buffer pool.
func (c *Catalog) Pool() *storage.BufferPool { return c.pool }

func key(name string) string { return strings.ToLower(name) }

// CreateTable registers a new relation. Column Table qualifiers are forced
// to the relation name. Relations are limited to 64 columns (the ColSet
// width).
func (c *Catalog) CreateTable(name string, schema types.Schema) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: table name required")
	}
	if schema.Len() == 0 {
		return nil, fmt.Errorf("catalog: table %s needs at least one column", name)
	}
	if schema.Len() > 64 {
		return nil, fmt.Errorf("catalog: table %s has %d columns; the engine supports 64", name, schema.Len())
	}
	seen := map[string]bool{}
	for _, col := range schema.Columns {
		if col.Name == "" {
			return nil, fmt.Errorf("catalog: table %s has an unnamed column", name)
		}
		switch col.Kind {
		case types.KindInt, types.KindFloat, types.KindString, types.KindBool:
		default:
			return nil, fmt.Errorf("catalog: column %s.%s has invalid type %d", name, col.Name, col.Kind)
		}
		lc := key(col.Name)
		if seen[lc] {
			return nil, fmt.Errorf("catalog: duplicate column %s in table %s", col.Name, name)
		}
		seen[lc] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[key(name)]; dup {
		return nil, fmt.Errorf("catalog: table %s already exists", name)
	}
	tbl := newTable(name, schema.WithTable(name), storage.NewHeapFile(c.pool))
	c.tables[key(name)] = tbl
	return tbl, nil
}

// Table resolves a relation by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tbl, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return tbl, nil
}

// DropTable removes a relation and its links.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(name)]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, key(name))
	delete(c.links, key(name))
	return nil
}

// TableNames returns all relation names, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

// RegisterInstance adds a summary instance to the catalog.
func (c *Catalog) RegisterInstance(in *summary.Instance) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.instances[in.Name]; dup {
		return fmt.Errorf("catalog: summary instance %q already exists", in.Name)
	}
	c.instances[in.Name] = in
	return nil
}

// Instance resolves a summary instance by name.
func (c *Catalog) Instance(name string) (*summary.Instance, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	in, ok := c.instances[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no summary instance %q", name)
	}
	return in, nil
}

// DropInstance removes an instance and all its links.
func (c *Catalog) DropInstance(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.instances[name]; !ok {
		return fmt.Errorf("catalog: no summary instance %q", name)
	}
	delete(c.instances, name)
	for _, set := range c.links {
		delete(set, name)
	}
	return nil
}

// InstanceNames returns all instance names, sorted.
func (c *Catalog) InstanceNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.instances))
	for n := range c.instances {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Link attaches instance to table (many-to-many, Figure 4). Both must
// exist; duplicate links are errors so callers notice configuration drift.
func (c *Catalog) Link(instance, table string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.instances[instance]; !ok {
		return fmt.Errorf("catalog: no summary instance %q", instance)
	}
	if _, ok := c.tables[key(table)]; !ok {
		return fmt.Errorf("catalog: no table %q", table)
	}
	set, ok := c.links[key(table)]
	if !ok {
		set = make(map[string]bool)
		c.links[key(table)] = set
	}
	if set[instance] {
		return fmt.Errorf("catalog: instance %q already linked to %s", instance, table)
	}
	set[instance] = true
	return nil
}

// Unlink detaches instance from table.
func (c *Catalog) Unlink(instance, table string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.links[key(table)]
	if !set[instance] {
		return fmt.Errorf("catalog: instance %q is not linked to %s", instance, table)
	}
	delete(set, instance)
	return nil
}

// InstancesFor returns the instances linked to table, sorted by name.
func (c *Catalog) InstancesFor(table string) []*summary.Instance {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := c.links[key(table)]
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*summary.Instance, 0, len(names))
	for _, n := range names {
		out = append(out, c.instances[n])
	}
	return out
}

// TablesFor returns the table names an instance is linked to, sorted.
func (c *Catalog) TablesFor(instance string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for tbl, set := range c.links {
		if set[instance] {
			out = append(out, c.tables[tbl].name)
		}
	}
	sort.Strings(out)
	return out
}

// IsLinked reports whether instance is linked to table.
func (c *Catalog) IsLinked(instance, table string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.links[key(table)][instance]
}
