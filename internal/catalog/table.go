// Package catalog manages the engine's metadata and physical table access:
// relation schemas and their heap files, secondary B+tree indexes, the
// registry of summary instances (level 2 of the paper's hierarchy), and
// the many-to-many links between instances and relations (Figure 4).
package catalog

import (
	"encoding/binary"
	"fmt"
	"sync"

	"insightnotes/internal/failpoint"
	"insightnotes/internal/storage"
	"insightnotes/internal/types"
)

// Table is one user relation: a schema, a heap file of rows, a row-id
// allocator, and optional secondary indexes.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  types.Schema
	heap    *storage.HeapFile
	nextRow types.RowID
	byRow   map[types.RowID]storage.RID
	indexes map[string]*storage.BTree // column name → index
}

func newTable(name string, schema types.Schema, heap *storage.HeapFile) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		heap:    heap,
		nextRow: 1,
		byRow:   make(map[types.RowID]storage.RID),
		indexes: make(map[string]*storage.BTree),
	}
}

// Name returns the relation name.
func (t *Table) Name() string { return t.name }

// Schema returns the relation schema (columns qualified with the table
// name).
func (t *Table) Schema() types.Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byRow)
}

// encodeRow prefixes the tuple encoding with its row id.
func encodeRow(row types.RowID, tu types.Tuple) []byte {
	buf := binary.AppendUvarint(nil, uint64(row))
	return types.EncodeTuple(buf, tu)
}

// decodeRow splits a heap record into row id and tuple.
func decodeRow(data []byte) (types.RowID, types.Tuple, error) {
	id, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("catalog: corrupt row header")
	}
	tu, _, err := types.DecodeTuple(data[n:])
	if err != nil {
		return 0, nil, err
	}
	return types.RowID(id), tu, nil
}

// Validate checks a tuple against the schema without inserting it, so
// batch ingest can verify every row before mutating anything (BULK INSERT
// is all-or-nothing).
func (t *Table) Validate(tu types.Tuple) error { return t.validate(tu) }

// validate checks a tuple against the schema: arity and value kinds (NULL
// is admissible in any column).
func (t *Table) validate(tu types.Tuple) error {
	if len(tu) != t.schema.Len() {
		return fmt.Errorf("catalog: table %s expects %d values, got %d", t.name, t.schema.Len(), len(tu))
	}
	for i, v := range tu {
		if v.IsNull() {
			continue
		}
		want := t.schema.Columns[i].Kind
		if v.Kind() == want {
			continue
		}
		// INT is acceptable for FLOAT columns (widened on read paths).
		if want == types.KindFloat && v.Kind() == types.KindInt {
			continue
		}
		return fmt.Errorf("catalog: table %s column %s wants %s, got %s",
			t.name, t.schema.Columns[i].Name, want, v.Kind())
	}
	return nil
}

// Insert appends a row and returns its id.
func (t *Table) Insert(tu types.Tuple) (types.RowID, error) {
	if err := t.validate(tu); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.nextRow
	rid, err := t.heap.Insert(encodeRow(row, tu))
	if err != nil {
		return 0, err
	}
	t.byRow[row] = rid
	t.nextRow++
	// Crash window between the heap write and the index maintenance below:
	// the kill-and-recover suite proves recovery reconciles the two.
	if err := failpoint.Eval(failpoint.CatalogInsertIndex); err != nil {
		return 0, err
	}
	for col, idx := range t.indexes {
		ci, _ := t.schema.ColumnIndex(col)
		idx.Insert(storage.EncodeKey(nil, tu[ci]), uint64(row))
	}
	return row, nil
}

// InsertWithID restores a row under a specific id (snapshot load). The id
// must not be in use; the allocator advances past it.
func (t *Table) InsertWithID(row types.RowID, tu types.Tuple) error {
	if err := t.validate(tu); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.byRow[row]; dup {
		return fmt.Errorf("catalog: table %s already has row %d", t.name, row)
	}
	rid, err := t.heap.Insert(encodeRow(row, tu))
	if err != nil {
		return err
	}
	t.byRow[row] = rid
	if row >= t.nextRow {
		t.nextRow = row + 1
	}
	for col, idx := range t.indexes {
		ci, _ := t.schema.ColumnIndex(col)
		idx.Insert(storage.EncodeKey(nil, tu[ci]), uint64(row))
	}
	return nil
}

// NextRow exposes the row-id allocator position (snapshot persistence):
// the id the next Insert will assign.
func (t *Table) NextRow() types.RowID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nextRow
}

// EnsureNextRow advances the row-id allocator to at least next (snapshot
// restore). Ids are never reused even across a crash: without this, a
// table whose highest-id rows were deleted before the snapshot would
// re-assign their ids after recovery.
func (t *Table) EnsureNextRow(next types.RowID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if next > t.nextRow {
		t.nextRow = next
	}
}

// Get returns the tuple of row id.
func (t *Table) Get(row types.RowID) (types.Tuple, error) {
	t.mu.RLock()
	rid, ok := t.byRow[row]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: table %s has no row %d", t.name, row)
	}
	data, err := t.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	_, tu, err := decodeRow(data)
	return tu, err
}

// Update replaces the tuple of row id.
func (t *Table) Update(row types.RowID, tu types.Tuple) error {
	if err := t.validate(tu); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, ok := t.byRow[row]
	if !ok {
		return fmt.Errorf("catalog: table %s has no row %d", t.name, row)
	}
	old, err := t.heap.Get(rid)
	if err != nil {
		return err
	}
	_, oldTu, err := decodeRow(old)
	if err != nil {
		return err
	}
	nrid, err := t.heap.Update(rid, encodeRow(row, tu))
	if err != nil {
		return err
	}
	t.byRow[row] = nrid
	for col, idx := range t.indexes {
		ci, _ := t.schema.ColumnIndex(col)
		if !types.Equal(oldTu[ci], tu[ci]) {
			idx.Delete(storage.EncodeKey(nil, oldTu[ci]), uint64(row))
			idx.Insert(storage.EncodeKey(nil, tu[ci]), uint64(row))
		}
	}
	return nil
}

// Delete removes row id.
func (t *Table) Delete(row types.RowID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, ok := t.byRow[row]
	if !ok {
		return fmt.Errorf("catalog: table %s has no row %d", t.name, row)
	}
	data, err := t.heap.Get(rid)
	if err != nil {
		return err
	}
	_, tu, err := decodeRow(data)
	if err != nil {
		return err
	}
	if err := t.heap.Delete(rid); err != nil {
		return err
	}
	delete(t.byRow, row)
	for col, idx := range t.indexes {
		ci, _ := t.schema.ColumnIndex(col)
		idx.Delete(storage.EncodeKey(nil, tu[ci]), uint64(row))
	}
	return nil
}

// Scan calls fn for every row in heap order; fn returning false stops.
func (t *Table) Scan(fn func(row types.RowID, tu types.Tuple) bool) error {
	var decodeErr error
	err := t.heap.Scan(func(_ storage.RID, data []byte) bool {
		row, tu, err := decodeRow(data)
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(row, tu)
	})
	if err != nil {
		return err
	}
	return decodeErr
}

// CreateIndex builds a secondary index over column col, indexing existing
// rows. Creating an index that already exists is an error.
func (t *Table) CreateIndex(col string) error {
	ci, err := t.schema.ColumnIndex(col)
	if err != nil {
		return err
	}
	name := t.schema.Columns[ci].Name
	t.mu.Lock()
	if _, dup := t.indexes[name]; dup {
		t.mu.Unlock()
		return fmt.Errorf("catalog: index on %s.%s already exists", t.name, name)
	}
	idx := storage.NewBTree()
	t.indexes[name] = idx
	t.mu.Unlock()
	return t.Scan(func(row types.RowID, tu types.Tuple) bool {
		idx.Insert(storage.EncodeKey(nil, tu[ci]), uint64(row))
		return true
	})
}

// HeapPages returns the ids of the heap pages backing the table, in heap
// order — the scrubber's sweep list.
func (t *Table) HeapPages() []storage.PageID {
	return t.heap.Pages()
}

// VerifyPage checks heap page pid: the page's structural invariants, then
// for up to sample live records (sample <= 0 checks all) that the record
// decodes, that the row-id map points back at exactly this record, and
// that every secondary index contains the row under its key — the
// heap↔index agreement half of the scrub contract.
func (t *Table) VerifyPage(pid storage.PageID, sample int) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.ViewPage(pid, func(pg *storage.Page) error {
		if err := pg.Verify(); err != nil {
			return err
		}
		checked := 0
		var verr error
		rerr := pg.Records(func(slot uint16, data []byte) bool {
			if sample > 0 && checked >= sample {
				return false
			}
			checked++
			row, tu, err := decodeRow(data)
			if err != nil {
				verr = fmt.Errorf("catalog: table %s page %d slot %d: %w", t.name, pid, slot, err)
				return false
			}
			if rid, ok := t.byRow[row]; !ok || rid != (storage.RID{Page: pid, Slot: slot}) {
				verr = fmt.Errorf("catalog: table %s page %d slot %d: row %d not mapped to this record", t.name, pid, slot, row)
				return false
			}
			for col, idx := range t.indexes {
				ci, _ := t.schema.ColumnIndex(col)
				found := false
				for _, v := range idx.Seek(storage.EncodeKey(nil, tu[ci])) {
					if v == uint64(row) {
						found = true
						break
					}
				}
				if !found {
					verr = fmt.Errorf("catalog: index %s.%s missing row %d", t.name, col, row)
					return false
				}
			}
			return true
		})
		if rerr != nil {
			return rerr
		}
		return verr
	})
}

// VerifyIndexes checks every secondary index's structural invariants (key
// ordering, child fencing, leaf chain) and that its entry count matches
// the live row count — each row contributes exactly one entry per index.
func (t *Table) VerifyIndexes() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := len(t.byRow)
	for col, idx := range t.indexes {
		if err := idx.Verify(); err != nil {
			return fmt.Errorf("catalog: index %s.%s: %w", t.name, col, err)
		}
		if n := idx.Len(); n != rows {
			return fmt.Errorf("catalog: index %s.%s holds %d entries for %d rows", t.name, col, n, rows)
		}
	}
	return nil
}

// RebuildIndex rebuilds the secondary index on col from the heap and swaps
// it in — the repair for a corrupt or disagreeing index. The caller must
// hold the engine statement lock exclusively so no DML races the rebuild
// scan (the same discipline CreateIndex relies on).
func (t *Table) RebuildIndex(col string) error {
	_, name := types.SplitQualified(col)
	t.mu.RLock()
	_, exists := t.indexes[name]
	t.mu.RUnlock()
	if !exists {
		return fmt.Errorf("catalog: no index on %s.%s", t.name, name)
	}
	ci, err := t.schema.ColumnIndex(name)
	if err != nil {
		return err
	}
	idx := storage.NewBTree()
	if err := t.Scan(func(row types.RowID, tu types.Tuple) bool {
		idx.Insert(storage.EncodeKey(nil, tu[ci]), uint64(row))
		return true
	}); err != nil {
		return err
	}
	t.mu.Lock()
	t.indexes[name] = idx
	t.mu.Unlock()
	return nil
}

// RepairPage rebuilds heap page pid from logical row content: slot
// placement comes from the in-memory RID map, tuples from fetch (a replica
// snapshot, typically). Every row the map places on the page must be
// resolvable or the repair refuses — a partial page would trade corruption
// for silent data loss.
func (t *Table) RepairPage(pid storage.PageID, fetch func(row types.RowID) (types.Tuple, bool)) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var recs []storage.SlotRecord
	for row, rid := range t.byRow {
		if rid.Page != pid {
			continue
		}
		tu, ok := fetch(row)
		if !ok {
			return fmt.Errorf("catalog: table %s row %d on page %d has no clean source", t.name, row, pid)
		}
		recs = append(recs, storage.SlotRecord{Slot: rid.Slot, Data: encodeRow(row, tu)})
	}
	return t.heap.RepairPage(pid, recs)
}

// Index returns the index on column col, or nil.
func (t *Table) Index(col string) *storage.BTree {
	_, name := types.SplitQualified(col)
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[name]
}

// IndexedColumns returns the names of indexed columns.
func (t *Table) IndexedColumns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	return out
}

// rangeKeys builds the encoded B+tree scan bounds of a value range. Nil
// bounds stay nil (open); inclusivity applies to the corresponding non-nil
// bound.
func rangeKeys(lo, hi *types.Value, loInc, hiInc bool) (loKey, hiKey []byte) {
	if lo != nil {
		loKey = storage.EncodeKey(nil, *lo)
		if !loInc {
			// Exclusive lower bound: the smallest key strictly greater
			// than every encoding of *lo.
			loKey = storage.KeySuccessorExact(loKey)
		}
	}
	if hi != nil {
		hiKey = storage.EncodeKey(nil, *hi)
		if hiInc {
			hiKey = storage.KeySuccessorExact(hiKey)
		}
	}
	return loKey, hiKey
}

// LookupByIndexRange returns the row ids whose col lies in the given
// range, using the index. Nil bounds are open; inclusivity applies to the
// corresponding non-nil bound. Results come back in index (value) order.
func (t *Table) LookupByIndexRange(col string, lo, hi *types.Value, loInc, hiInc bool) ([]types.RowID, error) {
	idx := t.Index(col)
	if idx == nil {
		return nil, fmt.Errorf("catalog: no index on %s.%s", t.name, col)
	}
	loKey, hiKey := rangeKeys(lo, hi, loInc, hiInc)
	var out []types.RowID
	idx.Scan(loKey, hiKey, func(_ []byte, v uint64) bool {
		out = append(out, types.RowID(v))
		return true
	})
	return out, nil
}

// TableStats are the cardinality statistics the planner's cost model reads:
// live row count and heap page count. Both are maintained exactly (not
// sampled), so estimates for full scans are precise; index estimates come
// from capped B+tree dives (EstimateIndexEquality / EstimateIndexRange).
type TableStats struct {
	Rows  int
	Pages int
}

// Stats returns the table's current cardinality statistics.
func (t *Table) Stats() TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return TableStats{Rows: len(t.byRow), Pages: t.heap.NumPages()}
}

// EstimateIndexEquality estimates the number of rows whose col equals v by
// diving into the index and counting at most limit entries. capped reports
// that the dive hit the limit (the true count is >= the estimate); ok is
// false when col has no index.
func (t *Table) EstimateIndexEquality(col string, v types.Value, limit int) (est int, capped, ok bool) {
	idx := t.Index(col)
	if idx == nil {
		return 0, false, false
	}
	key := storage.EncodeKey(nil, v)
	est, capped = idx.CountRange(key, storage.KeySuccessorExact(key), limit)
	return est, capped, true
}

// EstimateIndexRange estimates the number of rows whose col lies in the
// given range via a capped index dive; see EstimateIndexEquality.
func (t *Table) EstimateIndexRange(col string, lo, hi *types.Value, loInc, hiInc bool, limit int) (est int, capped, ok bool) {
	idx := t.Index(col)
	if idx == nil {
		return 0, false, false
	}
	loKey, hiKey := rangeKeys(lo, hi, loInc, hiInc)
	est, capped = idx.CountRange(loKey, hiKey, limit)
	return est, capped, true
}

// LookupByIndex returns the row ids whose col equals v, using the index.
func (t *Table) LookupByIndex(col string, v types.Value) ([]types.RowID, error) {
	idx := t.Index(col)
	if idx == nil {
		return nil, fmt.Errorf("catalog: no index on %s.%s", t.name, col)
	}
	vals := idx.Seek(storage.EncodeKey(nil, v))
	out := make([]types.RowID, len(vals))
	for i, u := range vals {
		out[i] = types.RowID(u)
	}
	return out, nil
}
