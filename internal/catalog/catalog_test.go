package catalog

import (
	"fmt"
	"testing"

	"insightnotes/internal/storage"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

func newCatalog() *Catalog {
	return New(storage.NewBufferPool(storage.NewMemStore(), 128))
}

func birdSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "wingspan", Kind: types.KindFloat},
	)
}

func clusterInst(t *testing.T, name string) *summary.Instance {
	t.Helper()
	in, err := summary.NewClusterInstance(name, summary.DefaultSimThreshold)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCreateTableValidation(t *testing.T) {
	c := newCatalog()
	if _, err := c.CreateTable("", birdSchema()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := c.CreateTable("t", types.Schema{}); err == nil {
		t.Error("empty schema accepted")
	}
	dupCols := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "A", Kind: types.KindInt},
	)
	if _, err := c.CreateTable("t", dupCols); err == nil {
		t.Error("duplicate columns accepted")
	}
	wide := types.Schema{}
	for i := 0; i < 65; i++ {
		wide.Columns = append(wide.Columns, types.Column{Name: fmt.Sprintf("c%d", i), Kind: types.KindInt})
	}
	if _, err := c.CreateTable("t", wide); err == nil {
		t.Error("65-column table accepted")
	}
	if _, err := c.CreateTable("birds", birdSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("BIRDS", birdSchema()); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
}

func TestTableLookupAndDrop(t *testing.T) {
	c := newCatalog()
	c.CreateTable("birds", birdSchema())
	if _, err := c.Table("Birds"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table resolved")
	}
	if got := c.TableNames(); len(got) != 1 || got[0] != "birds" {
		t.Errorf("TableNames = %v", got)
	}
	if err := c.DropTable("birds"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("birds"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestTableInsertGetValidate(t *testing.T) {
	c := newCatalog()
	tbl, _ := c.CreateTable("birds", birdSchema())
	row, err := tbl.Insert(types.Tuple{types.NewInt(1), types.NewString("Swan Goose"), types.NewFloat(1.8)})
	if err != nil {
		t.Fatal(err)
	}
	tu, err := tbl.Get(row)
	if err != nil || tu[1].Str() != "Swan Goose" {
		t.Fatalf("Get = %v, %v", tu, err)
	}
	// INT into FLOAT column widens.
	if _, err := tbl.Insert(types.Tuple{types.NewInt(2), types.NewString("Mute Swan"), types.NewInt(2)}); err != nil {
		t.Errorf("INT into FLOAT rejected: %v", err)
	}
	// NULL anywhere is fine.
	if _, err := tbl.Insert(types.Tuple{types.NewInt(3), types.Null(), types.Null()}); err != nil {
		t.Errorf("NULLs rejected: %v", err)
	}
	// Arity and kind mismatches fail.
	if _, err := tbl.Insert(types.Tuple{types.NewInt(4)}); err == nil {
		t.Error("short tuple accepted")
	}
	if _, err := tbl.Insert(types.Tuple{types.NewString("x"), types.NewString("y"), types.NewFloat(1)}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestTableUpdateDelete(t *testing.T) {
	c := newCatalog()
	tbl, _ := c.CreateTable("birds", birdSchema())
	row, _ := tbl.Insert(types.Tuple{types.NewInt(1), types.NewString("a"), types.NewFloat(1)})
	if err := tbl.Update(row, types.Tuple{types.NewInt(1), types.NewString("b"), types.NewFloat(2)}); err != nil {
		t.Fatal(err)
	}
	tu, _ := tbl.Get(row)
	if tu[1].Str() != "b" {
		t.Errorf("after update: %v", tu)
	}
	if err := tbl.Delete(row); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(row); err == nil {
		t.Error("Get after delete succeeded")
	}
	if err := tbl.Update(row, tu); err == nil {
		t.Error("Update of deleted row succeeded")
	}
	if err := tbl.Delete(row); err == nil {
		t.Error("double Delete succeeded")
	}
}

func TestTableScanOrderAndStop(t *testing.T) {
	c := newCatalog()
	tbl, _ := c.CreateTable("birds", birdSchema())
	for i := 0; i < 50; i++ {
		tbl.Insert(types.Tuple{types.NewInt(int64(i)), types.NewString("x"), types.NewFloat(0)})
	}
	n := 0
	tbl.Scan(func(row types.RowID, tu types.Tuple) bool {
		n++
		return true
	})
	if n != 50 {
		t.Errorf("scan count = %d", n)
	}
	n = 0
	tbl.Scan(func(types.RowID, types.Tuple) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("early stop = %d", n)
	}
}

func TestTableIndexLifecycle(t *testing.T) {
	c := newCatalog()
	tbl, _ := c.CreateTable("birds", birdSchema())
	for i := 0; i < 20; i++ {
		tbl.Insert(types.Tuple{types.NewInt(int64(i % 5)), types.NewString(fmt.Sprintf("b%d", i)), types.NewFloat(0)})
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("id"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := tbl.CreateIndex("nope"); err == nil {
		t.Error("index on missing column accepted")
	}
	rows, err := tbl.LookupByIndex("id", types.NewInt(3))
	if err != nil || len(rows) != 4 {
		t.Fatalf("LookupByIndex = %v, %v", rows, err)
	}
	// Index maintained across insert/update/delete.
	row, _ := tbl.Insert(types.Tuple{types.NewInt(3), types.NewString("new"), types.NewFloat(0)})
	if rows, _ = tbl.LookupByIndex("id", types.NewInt(3)); len(rows) != 5 {
		t.Errorf("after insert: %d rows", len(rows))
	}
	tbl.Update(row, types.Tuple{types.NewInt(4), types.NewString("new"), types.NewFloat(0)})
	if rows, _ = tbl.LookupByIndex("id", types.NewInt(3)); len(rows) != 4 {
		t.Errorf("after update: %d rows", len(rows))
	}
	tbl.Delete(row)
	if rows, _ = tbl.LookupByIndex("id", types.NewInt(4)); len(rows) != 4 {
		t.Errorf("after delete: %d rows", len(rows))
	}
	if _, err := tbl.LookupByIndex("name", types.NewString("x")); err == nil {
		t.Error("lookup on unindexed column succeeded")
	}
	if got := tbl.IndexedColumns(); len(got) != 1 || got[0] != "id" {
		t.Errorf("IndexedColumns = %v", got)
	}
}

func TestInstanceRegistryAndLinks(t *testing.T) {
	c := newCatalog()
	c.CreateTable("birds", birdSchema())
	c.CreateTable("observations", birdSchema())
	in := clusterInst(t, "SimCluster")
	if err := c.RegisterInstance(in); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterInstance(in); err == nil {
		t.Error("duplicate instance accepted")
	}
	if _, err := c.Instance("SimCluster"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Instance("nope"); err == nil {
		t.Error("missing instance resolved")
	}
	// Many-to-many links.
	if err := c.Link("SimCluster", "birds"); err != nil {
		t.Fatal(err)
	}
	if err := c.Link("SimCluster", "observations"); err != nil {
		t.Fatal(err)
	}
	if err := c.Link("SimCluster", "birds"); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := c.Link("nope", "birds"); err == nil {
		t.Error("link of missing instance accepted")
	}
	if err := c.Link("SimCluster", "nope"); err == nil {
		t.Error("link to missing table accepted")
	}
	if !c.IsLinked("SimCluster", "birds") {
		t.Error("IsLinked = false")
	}
	if got := c.TablesFor("SimCluster"); len(got) != 2 {
		t.Errorf("TablesFor = %v", got)
	}
	if got := c.InstancesFor("birds"); len(got) != 1 || got[0].Name != "SimCluster" {
		t.Errorf("InstancesFor = %v", got)
	}
	if err := c.Unlink("SimCluster", "birds"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("SimCluster", "birds"); err == nil {
		t.Error("double unlink succeeded")
	}
	if c.IsLinked("SimCluster", "birds") {
		t.Error("still linked after Unlink")
	}
}

func TestDropInstanceRemovesLinks(t *testing.T) {
	c := newCatalog()
	c.CreateTable("birds", birdSchema())
	c.RegisterInstance(clusterInst(t, "A"))
	c.Link("A", "birds")
	if err := c.DropInstance("A"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropInstance("A"); err == nil {
		t.Error("double drop succeeded")
	}
	if c.IsLinked("A", "birds") {
		t.Error("link survived instance drop")
	}
	if got := c.InstanceNames(); len(got) != 0 {
		t.Errorf("InstanceNames = %v", got)
	}
}

func TestInstancesForSortedDeterministic(t *testing.T) {
	c := newCatalog()
	c.CreateTable("birds", birdSchema())
	for _, n := range []string{"zeta", "alpha", "mid"} {
		c.RegisterInstance(clusterInst(t, n))
		c.Link(n, "birds")
	}
	got := c.InstancesFor("birds")
	if len(got) != 3 || got[0].Name != "alpha" || got[2].Name != "zeta" {
		names := []string{}
		for _, in := range got {
			names = append(names, in.Name)
		}
		t.Errorf("InstancesFor order = %v", names)
	}
}

func TestTableLookupByIndexRange(t *testing.T) {
	c := newCatalog()
	tbl, _ := c.CreateTable("birds", birdSchema())
	for i := 0; i < 20; i++ {
		tbl.Insert(types.Tuple{types.NewInt(int64(i)), types.NewString("b"), types.NewFloat(0)})
	}
	if _, err := tbl.LookupByIndexRange("id", nil, nil, false, false); err == nil {
		t.Error("range lookup without index succeeded")
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	v := func(n int64) *types.Value { x := types.NewInt(n); return &x }
	cases := []struct {
		lo, hi       *types.Value
		loInc, hiInc bool
		want         int
	}{
		{v(5), v(10), true, true, 6},   // [5, 10]
		{v(5), v(10), false, false, 4}, // (5, 10)
		{v(5), v(10), true, false, 5},  // [5, 10)
		{v(5), v(10), false, true, 5},  // (5, 10]
		{nil, v(3), false, true, 4},    // <= 3
		{v(17), nil, false, false, 2},  // > 17
		{nil, nil, false, false, 20},   // full
		{v(30), nil, true, false, 0},   // empty
	}
	for i, cse := range cases {
		rows, err := tbl.LookupByIndexRange("id", cse.lo, cse.hi, cse.loInc, cse.hiInc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rows) != cse.want {
			t.Errorf("case %d: %d rows, want %d", i, len(rows), cse.want)
		}
		// Results come back in value order.
		for j := 1; j < len(rows); j++ {
			a, _ := tbl.Get(rows[j-1])
			b, _ := tbl.Get(rows[j])
			if types.Compare(a[0], b[0]) > 0 {
				t.Errorf("case %d: out of order", i)
			}
		}
	}
}
