package failpoint

// Every failpoint name the engine evaluates, declared once. The naming
// scheme is fp/<layer>/<point>; the scripts/check.sh lint rejects any
// fp/* string literal anywhere in the tree that is not declared in this
// file, so the failpoint catalog stays reviewable in one place (mirroring
// the metric-name lint over internal/metrics/names.go).
const (
	// WAL append path (internal/wal). Before: nothing has been written.
	// Partial: with a crash action, a prefix of the frame is written and
	// the log dies — the torn-record case recovery must truncate. Before
	// sync: the frame is fully written but not yet fsynced; the append is
	// rolled back by truncation, modeling bytes that never reached disk.
	WALAppendBefore     = "fp/wal/append_before"
	WALAppendPartial    = "fp/wal/append_partial"
	WALAppendBeforeSync = "fp/wal/append_before_sync"

	// Snapshot/checkpoint write path (internal/engine). SnapshotWrite
	// fails the temp-file write; BeforeRename crashes with the temp file
	// complete but the snapshot not yet published; AfterRename crashes
	// with the new snapshot published but the WAL not yet reset — the
	// case the LSN skip logic exists for.
	CheckpointSnapshotWrite = "fp/engine/checkpoint_snapshot_write"
	CheckpointBeforeRename  = "fp/engine/checkpoint_before_rename"
	CheckpointAfterRename   = "fp/engine/checkpoint_after_rename"

	// Degraded-mode maintenance worker (internal/engine), evaluated before
	// each deferred summary-maintenance task is applied. A crash action
	// simulates the process dying mid-catch-up: recovery must rebuild
	// summaries from the raw annotations in the WAL/snapshot and converge
	// to the same state a synchronous shadow replay produces.
	MaintenanceApply = "fp/engine/maintenance_apply"

	// Server statement execution (internal/server), evaluated at the top
	// of every request; the panic-isolation regression test enables it
	// with a panicking action.
	ServerExecPanic = "fp/server/exec_panic"

	// Replication link (internal/engine + internal/replication).
	// ReplicationApply is evaluated on the replica before each replicated
	// record is applied; a crash action kills the replica's local WAL and
	// stops the receiver — the process-dying-mid-stream case the LSN
	// resume protocol covers (mirroring TestCrashRecovery). ReplicationAck
	// is evaluated before the receiver acknowledges applied records; a
	// crash there models death after apply-and-log but before ack, forcing
	// the primary to resend records the replica deduplicates by LSN.
	ReplicationApply = "fp/replication/apply"
	ReplicationAck   = "fp/replication/ack"

	// Page-store I/O path (internal/storage). ReadBitrot flips a payload
	// byte after a FileStore page read, modeling silent bit rot that the
	// stamped CRC32-C must catch; FlushCorrupt garbles one byte of a page
	// flush after the checksum stamp, modeling a torn write that the next
	// read must detect. Both drive the bit-rot chaos soak (make soak-scrub).
	StorageReadBitrot   = "fp/storage/read_bitrot"
	StorageFlushCorrupt = "fp/storage/flush_corrupt"

	// Table insert path (internal/catalog), evaluated after the row is in
	// the heap but before secondary indexes are updated. A crash action
	// models the process dying between the two writes: the WAL never logged
	// the insert (logging happens after success), so recovery must converge
	// to a state where the row is absent and every index agrees with its
	// heap.
	CatalogInsertIndex = "fp/catalog/insert_index"
)
