// Package failpoint is a registry of named fault-injection points for
// deterministic crash and error testing. Production code evaluates a
// failpoint by name at the places where an injected fault is meaningful
// (a write about to hit disk, a rename about to publish a snapshot);
// tests enable an action — return an error, simulate a crash-stop, or
// panic — for the points they want to exercise.
//
// Every name is declared in names.go; scripts/check.sh lints that no
// undeclared fp/* literal exists in the tree.
//
// The disabled fast path is one atomic load, so leaving Eval calls in
// production code costs nothing measurable.
package failpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrCrash is the sentinel for crash-stop simulation: an action returning
// an error that wraps (or is) ErrCrash tells the instrumented write path
// to leave its in-progress write torn — as a killed process would — rather
// than rolling it back cleanly.
var ErrCrash = errors.New("failpoint: simulated crash")

// Action decides what an enabled failpoint does: return nil to pass
// through, an error (possibly wrapping ErrCrash) to inject a fault, or
// panic for panic-isolation tests.
type Action func() error

var (
	mu     sync.RWMutex
	active = map[string]Action{}
	// enabled counts active failpoints so the disabled fast path is a
	// single atomic load with no lock.
	enabled atomic.Int64
)

// Enable arms a failpoint with an action, replacing any previous action.
func Enable(name string, action Action) {
	if action == nil {
		panic("failpoint: Enable requires an action")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := active[name]; !ok {
		enabled.Add(1)
	}
	active[name] = action
}

// EnableError arms a failpoint to return err on every evaluation.
func EnableError(name string, err error) {
	Enable(name, func() error { return err })
}

// EnableAfter arms a failpoint to pass through n evaluations and then
// return err on every one after that — "crash on the Nth write".
func EnableAfter(name string, n int, err error) {
	var hits atomic.Int64
	Enable(name, func() error {
		if hits.Add(1) > int64(n) {
			return err
		}
		return nil
	})
}

// Disable disarms a failpoint. Disabling an inactive name is a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := active[name]; ok {
		delete(active, name)
		enabled.Add(-1)
	}
}

// Reset disarms every failpoint (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name := range active {
		delete(active, name)
	}
	enabled.Store(0)
}

// Eval evaluates a failpoint: nil when disabled (the common case, one
// atomic load), otherwise whatever the enabled action returns — and if
// the action panics, the panic propagates to the caller.
func Eval(name string) error {
	if enabled.Load() == 0 {
		return nil
	}
	mu.RLock()
	action, ok := active[name]
	mu.RUnlock()
	if !ok {
		return nil
	}
	return action()
}

// IsCrash reports whether err is an injected crash-stop (wraps ErrCrash).
func IsCrash(err error) bool { return errors.Is(err, ErrCrash) }

// CrashError returns an injectable error that IsCrash recognizes,
// annotated with the failpoint name for test diagnostics.
func CrashError(name string) error {
	return fmt.Errorf("%w at %s", ErrCrash, name)
}
