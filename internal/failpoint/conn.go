package failpoint

import (
	"fmt"
	"net"
	"time"
)

// FlakyConn wraps a net.Conn with deterministic fault injection for chaos
// and soak tests: slow reads (a client that drains responses sluggishly),
// partial writes (frames delivered to the kernel a few bytes at a time),
// and a mid-frame connection drop after a byte budget. All faults are
// configured explicitly — no randomness — so a failing run replays exactly.
//
// The zero value of every knob disables that fault; a FlakyConn with no
// knobs set behaves identically to the wrapped conn.
type FlakyConn struct {
	net.Conn

	// ReadDelay is slept before every Read, modeling a slow reader whose
	// responses back up in the server's write buffer.
	ReadDelay time.Duration
	// WriteChunk caps how many bytes each underlying Write sends, so one
	// logical frame arrives as several TCP segments with a pause between
	// them (exercises the server's frame reassembly and write deadlines).
	WriteChunk int
	// WriteDelay is slept between chunks when WriteChunk is set.
	WriteDelay time.Duration
	// DropAfter, when positive, closes the connection after that many
	// bytes have been written in total — a mid-frame drop. Later writes
	// fail with net.ErrClosed.
	DropAfter int

	written int
}

// Read delays, then reads from the wrapped conn.
func (c *FlakyConn) Read(p []byte) (int, error) {
	if c.ReadDelay > 0 {
		time.Sleep(c.ReadDelay)
	}
	return c.Conn.Read(p)
}

// Write sends p in WriteChunk-sized pieces, dropping the connection
// mid-frame once the DropAfter budget is spent.
func (c *FlakyConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if c.WriteChunk > 0 && n > c.WriteChunk {
			n = c.WriteChunk
		}
		if c.DropAfter > 0 && c.written+n >= c.DropAfter {
			// Send only up to the budget, then kill the conn mid-frame.
			n = c.DropAfter - c.written
			if n > 0 {
				w, err := c.Conn.Write(p[:n])
				total += w
				c.written += w
				if err != nil {
					return total, err
				}
			}
			c.Conn.Close()
			return total, fmt.Errorf("failpoint: connection dropped after %d bytes: %w", c.written, net.ErrClosed)
		}
		w, err := c.Conn.Write(p[:n])
		total += w
		c.written += w
		if err != nil {
			return total, err
		}
		p = p[n:]
		if c.WriteDelay > 0 && len(p) > 0 {
			time.Sleep(c.WriteDelay)
		}
	}
	return total, nil
}
