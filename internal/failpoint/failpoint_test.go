package failpoint

import (
	"errors"
	"testing"
)

func TestDisabledEvalIsNil(t *testing.T) {
	Reset()
	if err := Eval("fp/test/unarmed"); err != nil {
		t.Fatalf("disabled failpoint returned %v", err)
	}
}

func TestEnableDisable(t *testing.T) {
	Reset()
	boom := errors.New("boom")
	EnableError("fp/test/a", boom)
	if err := Eval("fp/test/a"); !errors.Is(err, boom) {
		t.Fatalf("enabled failpoint returned %v, want boom", err)
	}
	// Other names stay unaffected.
	if err := Eval("fp/test/b"); err != nil {
		t.Fatalf("unrelated failpoint returned %v", err)
	}
	Disable("fp/test/a")
	if err := Eval("fp/test/a"); err != nil {
		t.Fatalf("disabled failpoint returned %v", err)
	}
	// Double-disable must not corrupt the enabled count.
	Disable("fp/test/a")
	if enabled.Load() != 0 {
		t.Fatalf("enabled count = %d after full disable", enabled.Load())
	}
}

func TestEnableAfter(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	EnableAfter("fp/test/after", 2, boom)
	for i := 0; i < 2; i++ {
		if err := Eval("fp/test/after"); err != nil {
			t.Fatalf("evaluation %d fired early: %v", i+1, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := Eval("fp/test/after"); !errors.Is(err, boom) {
			t.Fatalf("evaluation %d after threshold returned %v", i+3, err)
		}
	}
}

func TestCrashSentinel(t *testing.T) {
	err := CrashError(WALAppendPartial)
	if !IsCrash(err) {
		t.Fatalf("CrashError not recognized by IsCrash: %v", err)
	}
	if IsCrash(errors.New("ordinary")) {
		t.Fatal("ordinary error classified as crash")
	}
}

func TestPanickingActionPropagates(t *testing.T) {
	Reset()
	defer Reset()
	Enable("fp/test/panic", func() error { panic("kaboom") })
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	_ = Eval("fp/test/panic")
}
