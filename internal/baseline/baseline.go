// Package baseline implements a raw-annotation propagation engine in the
// style of pre-InsightNotes annotation managers (DBNotes and successors,
// refs [6, 11, 20] of the paper): query operators carry the complete raw
// annotations — full text and attached documents — of every tuple through
// the pipeline. It exists as the comparator for experiment E8: the paper's
// motivating claim is that summary-based propagation stays cheap as
// annotations-per-tuple grows while raw propagation degrades linearly in
// annotation volume.
package baseline

import (
	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/types"
)

// Row is one pipeline element: the data tuple plus its full raw
// annotations and their column coverage.
type Row struct {
	Tuple types.Tuple
	Anns  []annotation.Annotation
	Cover map[annotation.ID]annotation.ColSet
}

// Bytes returns the raw-annotation payload carried by the row — the
// propagation cost the paper's motivation counts.
func (r *Row) Bytes() int64 {
	var n int64
	for _, a := range r.Anns {
		n += int64(len(a.Text) + len(a.Title) + len(a.Document))
	}
	return n
}

// Operator is the baseline Volcano iterator.
type Operator interface {
	Schema() types.Schema
	Open() error
	Next() (*Row, error)
	Close() error
}

// Scan reads a table and attaches every tuple's raw annotations, fetched
// in full from the store.
type Scan struct {
	table  *catalog.Table
	store  *annotation.Store
	schema types.Schema

	rows []*Row
	pos  int
}

// NewScan creates a raw-annotation scan of tbl under alias.
func NewScan(tbl *catalog.Table, alias string, store *annotation.Store) *Scan {
	if alias == "" {
		alias = tbl.Name()
	}
	return &Scan{table: tbl, store: store, schema: tbl.Schema().WithTable(alias)}
}

// Schema implements Operator.
func (s *Scan) Schema() types.Schema { return s.schema }

// Open implements Operator.
func (s *Scan) Open() error {
	s.rows = s.rows[:0]
	s.pos = 0
	var scanErr error
	err := s.table.Scan(func(rowID types.RowID, tu types.Tuple) bool {
		row := &Row{Tuple: tu.Clone()}
		refs := s.store.ForTuple(s.table.Name(), rowID)
		if len(refs) > 0 {
			row.Cover = make(map[annotation.ID]annotation.ColSet, len(refs))
			for _, ref := range refs {
				a, err := s.store.Get(ref.ID)
				if err != nil {
					scanErr = err
					return false
				}
				row.Anns = append(row.Anns, a)
				row.Cover[ref.ID] = ref.Columns
			}
		}
		s.rows = append(s.rows, row)
		return true
	})
	if err != nil {
		return err
	}
	return scanErr
}

// Next implements Operator.
func (s *Scan) Next() (*Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *Scan) Close() error {
	s.rows = nil
	return nil
}

// Filter passes rows satisfying pred (annotations unchanged).
type Filter struct {
	child Operator
	pred  func(types.Tuple) (bool, error)
}

// NewFilter wraps child with a predicate function.
func NewFilter(child Operator, pred func(types.Tuple) (bool, error)) *Filter {
	return &Filter{child: child, pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.child.Open() }

// Next implements Operator.
func (f *Filter) Next() (*Row, error) {
	for {
		row, err := f.child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		ok, err := f.pred(row.Tuple)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.child.Close() }

// Project keeps the input columns keep (in order), dropping annotations
// whose coverage misses every kept column and rebasing survivors.
type Project struct {
	child  Operator
	keep   []int
	schema types.Schema
}

// NewProject wraps child with a column projection.
func NewProject(child Operator, keep []int) *Project {
	return &Project{child: child, keep: keep, schema: child.Schema().Project(keep)}
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.child.Open() }

// Next implements Operator.
func (p *Project) Next() (*Row, error) {
	row, err := p.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := &Row{Tuple: row.Tuple.Project(p.keep)}
	if len(row.Anns) > 0 {
		out.Cover = make(map[annotation.ID]annotation.ColSet)
		for _, a := range row.Anns {
			nc := row.Cover[a.ID].Remap(p.keep)
			if nc.Empty() {
				continue
			}
			out.Anns = append(out.Anns, a)
			out.Cover[a.ID] = nc
		}
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.child.Close() }

// HashJoin equi-joins on single key columns, concatenating tuples and
// merging raw annotation lists with id-level deduplication.
type HashJoin struct {
	left, right       Operator
	leftKey, rightKey int
	schema            types.Schema

	build   map[uint64][]*Row
	cur     *Row
	pending []*Row
	pi      int
}

// NewHashJoin joins left and right on tuple positions leftKey = rightKey.
func NewHashJoin(left, right Operator, leftKey, rightKey int) *HashJoin {
	return &HashJoin{
		left: left, right: right,
		leftKey: leftKey, rightKey: rightKey,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() types.Schema { return j.schema }

// Open implements Operator.
func (j *HashJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.build = make(map[uint64][]*Row)
	for {
		row, err := j.right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		v := row.Tuple[j.rightKey]
		if v.IsNull() {
			continue
		}
		j.build[v.Hash()] = append(j.build[v.Hash()], row)
	}
	j.cur = nil
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next() (*Row, error) {
	leftWidth := j.left.Schema().Len()
	for {
		if j.cur != nil && j.pi < len(j.pending) {
			right := j.pending[j.pi]
			j.pi++
			if !types.Equal(j.cur.Tuple[j.leftKey], right.Tuple[j.rightKey]) {
				continue
			}
			out := &Row{Tuple: j.cur.Tuple.Concat(right.Tuple)}
			if len(j.cur.Anns)+len(right.Anns) > 0 {
				out.Cover = make(map[annotation.ID]annotation.ColSet)
				for _, a := range j.cur.Anns {
					out.Anns = append(out.Anns, a)
					out.Cover[a.ID] = j.cur.Cover[a.ID]
				}
				for _, a := range right.Anns {
					shifted := right.Cover[a.ID].Shift(leftWidth)
					if _, dup := out.Cover[a.ID]; dup {
						out.Cover[a.ID] = out.Cover[a.ID].Union(shifted)
						continue
					}
					out.Anns = append(out.Anns, a)
					out.Cover[a.ID] = shifted
				}
			}
			return out, nil
		}
		row, err := j.left.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, nil
		}
		v := row.Tuple[j.leftKey]
		if v.IsNull() {
			continue
		}
		j.cur = row
		j.pending = j.build[v.Hash()]
		j.pi = 0
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.build = nil
	if err := j.left.Close(); err != nil {
		j.right.Close()
		return err
	}
	return j.right.Close()
}

// Collect drains an operator, returning the rows and the total raw
// annotation bytes propagated to the output.
func Collect(op Operator) ([]*Row, int64, error) {
	if err := op.Open(); err != nil {
		return nil, 0, err
	}
	defer op.Close()
	var out []*Row
	var bytes int64
	for {
		row, err := op.Next()
		if err != nil {
			return nil, 0, err
		}
		if row == nil {
			return out, bytes, nil
		}
		out = append(out, row)
		bytes += row.Bytes()
	}
}
