package baseline

import (
	"strings"
	"testing"

	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/storage"
	"insightnotes/internal/types"
)

type bworld struct {
	cat   *catalog.Catalog
	store *annotation.Store
	r, s  *catalog.Table
}

func newBWorld(t *testing.T) *bworld {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemStore(), 128)
	cat := catalog.New(pool)
	r, err := cat.CreateTable("R", types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.CreateTable("S", types.NewSchema(
		types.Column{Name: "x", Kind: types.KindInt},
		types.Column{Name: "z", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	return &bworld{cat: cat, store: annotation.NewStore(pool), r: r, s: s}
}

func (w *bworld) annotate(t *testing.T, table string, row types.RowID, text string, cols annotation.ColSet) annotation.ID {
	t.Helper()
	id, err := w.store.Add(annotation.Annotation{Text: text},
		[]annotation.Target{{Table: table, Row: row, Columns: cols}})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestBaselineScanCarriesRawAnnotations(t *testing.T) {
	w := newBWorld(t)
	row, _ := w.r.Insert(types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("c")})
	w.annotate(t, "R", row, strings.Repeat("long raw text ", 10), annotation.WholeRow(3))
	rows, bytes, err := Collect(NewScan(w.r, "r", w.store))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Anns) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if bytes != rows[0].Bytes() || bytes < 100 {
		t.Errorf("bytes = %d", bytes)
	}
}

func TestBaselineProjectCurates(t *testing.T) {
	w := newBWorld(t)
	row, _ := w.r.Insert(types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("c")})
	keep := w.annotate(t, "R", row, "on a", annotation.Col(0))
	w.annotate(t, "R", row, "on c only", annotation.Col(2))
	rows, _, err := Collect(NewProject(NewScan(w.r, "r", w.store), []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0].Anns) != 1 || rows[0].Anns[0].ID != keep {
		t.Errorf("anns = %v", rows[0].Anns)
	}
	if rows[0].Cover[keep] != annotation.Col(0) {
		t.Errorf("cover = %v", rows[0].Cover[keep])
	}
	if rows[0].Tuple.EqualOn(types.Tuple{types.NewInt(1), types.NewInt(2)}, nil) == false {
		t.Errorf("tuple = %v", rows[0].Tuple)
	}
}

func TestBaselineFilterAndJoinDedup(t *testing.T) {
	w := newBWorld(t)
	r1, _ := w.r.Insert(types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("c")})
	r2, _ := w.r.Insert(types.Tuple{types.NewInt(9), types.NewInt(2), types.NewString("c")})
	s1, _ := w.s.Insert(types.Tuple{types.NewInt(1), types.NewString("z")})
	_ = r2
	// One annotation shared by both sides.
	shared, _ := w.store.Add(annotation.Annotation{Text: "shared"}, []annotation.Target{
		{Table: "R", Row: r1, Columns: annotation.WholeRow(3)},
		{Table: "S", Row: s1, Columns: annotation.WholeRow(2)},
	})
	w.annotate(t, "R", r1, "only r", annotation.Col(0))
	w.annotate(t, "S", s1, "only s", annotation.Col(1))

	left := NewFilter(NewScan(w.r, "r", w.store), func(tu types.Tuple) (bool, error) {
		return tu[1].Int() == 2 && tu[0].Int() == 1, nil
	})
	join := NewHashJoin(left, NewScan(w.s, "s", w.store), 0, 0)
	rows, bytes, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(rows[0].Anns) != 3 {
		t.Errorf("anns = %d, want 3 (shared deduplicated)", len(rows[0].Anns))
	}
	// Shared annotation covers both sides' columns.
	want := annotation.WholeRow(3).Union(annotation.WholeRow(2).Shift(3))
	if rows[0].Cover[shared] != want {
		t.Errorf("shared cover = %v, want %v", rows[0].Cover[shared], want)
	}
	if bytes <= 0 {
		t.Error("no bytes accounted")
	}
	if rows[0].Tuple[3].Int() != 1 || rows[0].Tuple[4].Str() != "z" {
		t.Errorf("joined tuple = %v", rows[0].Tuple)
	}
}

func TestBaselineJoinNullKeys(t *testing.T) {
	w := newBWorld(t)
	w.r.Insert(types.Tuple{types.Null(), types.NewInt(2), types.NewString("c")})
	w.s.Insert(types.Tuple{types.Null(), types.NewString("z")})
	rows, _, err := Collect(NewHashJoin(NewScan(w.r, "r", w.store), NewScan(w.s, "s", w.store), 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("NULL keys joined: %d", len(rows))
	}
}

func TestBaselinePropagatedBytesGrowWithAnnotations(t *testing.T) {
	// The motivating measurement: raw propagation cost scales with the
	// number of annotations per tuple.
	w := newBWorld(t)
	row, _ := w.r.Insert(types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("c")})
	var prev int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			w.annotate(t, "R", row, strings.Repeat("annotation text ", 5), annotation.WholeRow(3))
		}
		_, bytes, err := Collect(NewScan(w.r, "r", w.store))
		if err != nil {
			t.Fatal(err)
		}
		if bytes <= prev {
			t.Fatalf("round %d: bytes %d did not grow past %d", round, bytes, prev)
		}
		prev = bytes
	}
}
