package trace

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	id := ID(0xdeadbeef12345678)
	s := id.String()
	if !strings.HasPrefix(s, "t") || len(s) != 17 {
		t.Fatalf("canonical form %q: want t + 16 hex digits", s)
	}
	got, err := ParseID(s)
	if err != nil || got != id {
		t.Fatalf("ParseID(%q) = %v, %v; want %v", s, got, err, id)
	}
	// Bare hex (hand-typed, prefix dropped) parses too.
	got, err = ParseID("deadbeef12345678")
	if err != nil || got != id {
		t.Fatalf("ParseID bare hex = %v, %v; want %v", got, err, id)
	}
	if _, err := ParseID("not-a-trace"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestNilSafety(t *testing.T) {
	// Every builder method on nil receivers must be a no-op, not a panic:
	// this is the entire cost model of disabled tracing.
	var tr *Tracer
	at := tr.Start("SELECT 1")
	if at != nil {
		t.Fatal("nil tracer returned a non-nil Active")
	}
	if at.ID() != 0 {
		t.Fatal("nil Active has nonzero id")
	}
	sp := at.StartSpan(SpanParse, nil)
	if sp != nil {
		t.Fatal("nil Active returned a non-nil span")
	}
	sp.End()
	sp.Attr("k", "v")
	sp.AttrInt("n", 1)
	sp.Child(SpanPlan).End()
	sp.AddChild(SpanExec, time.Millisecond)
	at.Finish("select", nil)
	if _, ok := tr.Get(1); ok {
		t.Fatal("nil tracer Get returned ok")
	}
	if tr.Snapshot(10) != nil {
		t.Fatal("nil tracer Snapshot returned traces")
	}
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracer Stats = %+v", st)
	}
}

func TestTailRetention(t *testing.T) {
	// Sample 0: ordinary traces are dropped, slow and errored always kept.
	tr := New(Config{Sample: 0, SlowThreshold: 50 * time.Millisecond})

	ord := tr.Start("SELECT ordinary")
	ord.Finish("select", nil)
	if _, ok := tr.Get(ord.ID()); ok {
		t.Fatal("ordinary trace retained at sample 0")
	}

	errd := tr.Start("SELECT broken")
	errd.Finish("select", errors.New("boom"))
	got, ok := tr.Get(errd.ID())
	if !ok {
		t.Fatal("errored trace not retained")
	}
	if got.Err != "boom" {
		t.Fatalf("retained error %q", got.Err)
	}

	slow := tr.Start("SELECT slow")
	slow.t.Start = time.Now().Add(-time.Second) // age it past the threshold
	slow.Finish("select", nil)
	got, ok = tr.Get(slow.ID())
	if !ok {
		t.Fatal("slow trace not retained")
	}
	if !got.Slow {
		t.Fatal("slow trace not marked slow")
	}

	st := tr.Stats()
	if st.Started != 3 || st.Retained != 2 || st.SampledOut != 1 {
		t.Fatalf("stats %+v; want started=3 retained=2 sampled_out=1", st)
	}

	// Sample 1: everything is kept.
	tr = New(Config{Sample: 1})
	a := tr.Start("SELECT kept")
	a.Finish("select", nil)
	if _, ok := tr.Get(a.ID()); !ok {
		t.Fatal("trace not retained at sample 1")
	}
}

func TestFinishIdempotentAndClosesOpenSpans(t *testing.T) {
	tr := New(Config{Sample: 1})
	at := tr.Start("UPDATE t SET x = 1")
	sp := at.StartSpan(SpanExec, nil)
	_ = sp // deliberately never ended
	at.Finish("update", nil)
	at.Finish("update", errors.New("second finish must not rewrite")) // no-op
	got, ok := tr.Get(at.ID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if got.Err != "" {
		t.Fatal("second Finish mutated the published trace")
	}
	for i, s := range got.Spans {
		if s.Dur < 0 {
			t.Fatalf("span %d (%s) left open: dur %v", i, s.Name, s.Dur)
		}
	}
	// Post-Finish span operations are inert.
	if h := at.StartSpan(SpanPlan, nil); h != nil {
		t.Fatal("StartSpan after Finish returned a live handle")
	}
	sp.Attr("late", "write")
	if len(got.Spans[1].Attrs) != 0 {
		t.Fatal("attr written after Finish reached the published trace")
	}
}

func TestEvictionPrefersOrdinary(t *testing.T) {
	// Single-stripe-sized store: capacity 8 = 1 per stripe. Drive one
	// stripe directly so insertion order is fully controlled.
	s := newStore(24) // 3 per stripe
	stripeID := func(n uint64) ID { return ID(n*storeStripes + 1) } // all on stripe 1
	mk := func(n uint64, slow bool, errs string) *Trace {
		return &Trace{ID: stripeID(n), Start: time.Unix(int64(n), 0), Slow: slow, Err: errs}
	}
	s.Add(mk(1, true, ""))   // slow
	s.Add(mk(2, false, ""))  // ordinary — the eviction victim
	s.Add(mk(3, false, "x")) // errored
	s.Add(mk(4, false, ""))  // overflows the stripe
	if _, ok := s.Get(stripeID(2)); ok {
		t.Fatal("oldest ordinary trace survived eviction")
	}
	for _, n := range []uint64{1, 3, 4} {
		if _, ok := s.Get(stripeID(n)); !ok {
			t.Fatalf("trace %d evicted; oldest ordinary should go first", n)
		}
	}
	// Adding 5 evicts the remaining ordinary trace (4); adding 6 finds
	// nothing ordinary left, so the oldest slow/errored (1) is sacrificed.
	s.Add(mk(5, true, ""))
	s.Add(mk(6, true, ""))
	if _, ok := s.Get(stripeID(4)); ok {
		t.Fatal("ordinary trace 4 should be evicted before any slow/errored one")
	}
	if _, ok := s.Get(stripeID(1)); ok {
		t.Fatal("expected the oldest retained trace to fall once no ordinary remained")
	}
	if ev := s.stats().Evicted; ev != 3 {
		t.Fatalf("evicted = %d; want 3", ev)
	}
}

func TestSnapshotOrderAndLimit(t *testing.T) {
	tr := New(Config{Sample: 1})
	var ids []ID
	for i := 0; i < 5; i++ {
		a := tr.Start(fmt.Sprintf("SELECT %d", i))
		a.t.Start = time.Unix(int64(1000+i), 0)
		a.Finish("select", nil)
		ids = append(ids, a.ID())
	}
	snap := tr.Snapshot(3)
	if len(snap) != 3 {
		t.Fatalf("limit ignored: got %d traces", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Start.After(snap[i-1].Start) {
			t.Fatal("snapshot not most-recent-first")
		}
	}
	if snap[0].ID != ids[4] {
		t.Fatalf("most recent trace is %v; want %v", snap[0].ID, ids[4])
	}
}

func TestRenderTree(t *testing.T) {
	tr := New(Config{Sample: 1})
	at := tr.Start("UPDATE birds SET seen = 1 WHERE id = 7")
	p := at.StartSpan(SpanParse, nil)
	p.End()
	e := at.StartSpan(SpanExec, nil)
	pl := e.Child(SpanPlan)
	pl.Attr("path", "index_scan")
	pl.End()
	e.AddChild(OpSpan("scan"), time.Millisecond)
	e.End()
	at.Finish("update", nil)
	gotTrace, _ := tr.Get(at.ID())
	lines := RenderTree(gotTrace)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"trace " + at.ID().String(), "kind=update",
		"stmt: UPDATE birds SET seen = 1 WHERE id = 7",
		SpanParse, SpanExec, SpanPlan, "path=index_scan", "op.scan", "self ",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("render missing %q:\n%s", want, joined)
		}
	}
}

func TestJSONWireForm(t *testing.T) {
	tr := New(Config{Sample: 1})
	at := tr.Start("SELECT 1")
	at.StartSpan(SpanParse, nil).End()
	at.Finish("select", nil)
	got, _ := tr.Get(at.ID())
	j := got.JSON()
	if j.ID != at.ID().String() || j.Kind != "select" || len(j.Spans) != 2 {
		t.Fatalf("wire form %+v", j)
	}
	if j.Spans[0].Parent != -1 || j.Spans[1].Parent != 0 {
		t.Fatalf("wire parent links: %+v", j.Spans)
	}
}
