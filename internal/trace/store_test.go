package trace

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStoreHammer drives the retained-trace ring the way a loaded server
// does: many writer goroutines completing traces while readers snapshot
// and look up concurrently (SHOW TRACES / SHOW TRACE under load). Run
// under -race this is the contention proof for the lock-striped store.
func TestStoreHammer(t *testing.T) {
	tr := New(Config{Sample: 1, SlowThreshold: time.Hour, Capacity: 64})
	const (
		writers         = 8
		tracesPerWriter = 500
		readers         = 4
	)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := tr.Snapshot(20)
				if len(snap) > 20 {
					t.Error("snapshot ignored its limit")
					return
				}
				for i := 1; i < len(snap); i++ {
					if snap[i].Start.After(snap[i-1].Start) {
						t.Error("snapshot not most-recent-first under load")
						return
					}
				}
				// Re-fetch by id: every snapshotted trace must still render.
				for _, tc := range snap {
					if got, ok := tr.Get(tc.ID); ok {
						_ = RenderTree(got)
						_ = got.JSON()
					}
				}
				_ = tr.Stats()
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < tracesPerWriter; i++ {
				at := tr.Start(fmt.Sprintf("SELECT %d FROM w%d", i, w))
				sp := at.StartSpan(SpanExec, nil)
				sp.AttrInt("i", int64(i))
				sp.End()
				var err error
				if i%7 == 0 {
					err = errors.New("synthetic")
				}
				at.Finish("select", err)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	st := tr.Stats()
	if st.Started != writers*tracesPerWriter {
		t.Fatalf("started = %d; want %d", st.Started, writers*tracesPerWriter)
	}
	if st.Retained != st.Started {
		t.Fatalf("sample 1 retained %d of %d", st.Retained, st.Started)
	}
	if st.Resident > 64 {
		t.Fatalf("resident %d exceeds capacity 64", st.Resident)
	}
	if st.Retained-st.Evicted != uint64(st.Resident) {
		t.Fatalf("retained %d - evicted %d != resident %d", st.Retained, st.Evicted, st.Resident)
	}
}

// TestStoreCapacityFloor checks the per-stripe minimum: a capacity below
// the stripe count still retains one trace per stripe rather than zero.
func TestStoreCapacityFloor(t *testing.T) {
	s := newStore(1)
	for n := uint64(1); n <= 2*storeStripes; n++ {
		s.Add(&Trace{ID: ID(n), Start: time.Unix(int64(n), 0)})
	}
	st := s.stats()
	if st.Resident != storeStripes {
		t.Fatalf("resident = %d; want one per stripe (%d)", st.Resident, storeStripes)
	}
}
