package trace

import (
	"testing"
	"time"
)

// These microbenchmarks document the cost model behind the head/tail hybrid
// design (see the package doc and E16 in EXPERIMENTS.md): a single clock
// read is ~60ns on virtualized hosts, so a fully-spanned lifecycle — a
// dozen reads — costs more than some entire point statements. The shell
// path therefore performs no clock reads of its own (the engine shares its
// latency-accounting reads via StartAt/FinishAt) and defers span detail to
// the head-sampled few.

// BenchmarkClockRead is the floor everything else is priced against.
func BenchmarkClockRead(b *testing.B) {
	var sink time.Time
	for i := 0; i < b.N; i++ {
		sink = time.Now()
	}
	_ = sink
}

// BenchmarkLifecycleSkeleton is a bare statement lifecycle at the default
// sample rate: Start, three lifecycle child spans (no-ops on the unpromoted
// ~95%), Finish, and the id render every response carries.
func BenchmarkLifecycleSkeleton(b *testing.B) {
	tr := New(Config{Sample: 0.05, SlowThreshold: time.Hour, Capacity: 256})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := tr.Start("SELECT 1")
		p := at.Root().Child(SpanParse)
		p.End()
		pl := at.Root().Child(SpanPlan)
		pl.End()
		ex := at.Root().Child(SpanExec)
		ex.End()
		at.Finish("select", nil)
		_ = at.ID().String()
	}
}

// BenchmarkLifecycleShell is the same lifecycle via the engine's call shape
// (StartSpan against the builder rather than Child against the root).
func BenchmarkLifecycleShell(b *testing.B) {
	tr := New(Config{Sample: 0.05, SlowThreshold: time.Hour, Capacity: 512})
	b.ReportAllocs()
	var sink string
	for i := 0; i < b.N; i++ {
		at := tr.Start("SELECT 1")
		p := at.StartSpan(SpanParse, nil)
		p.End()
		pl := at.StartSpan(SpanPlan, nil)
		pl.End()
		ex := at.StartSpan(SpanExec, nil)
		ex.End()
		at.Finish("select", nil)
		sink = at.ID().String()
	}
	_ = sink
}
