package trace

import (
	"fmt"
	"strings"
	"time"
)

// RenderTree renders a completed trace as SHOW TRACE's span tree, one line
// per row: a header with the trace's identity and outcome, the statement
// text, then the spans indented by parent link. Each span shows its
// inclusive duration and — when it has children — its self-time (inclusive
// minus children), so the layer actually burning the time stands out.
func RenderTree(t *Trace) []string {
	head := fmt.Sprintf("trace %s  kind=%s  wall=%s", t.ID, t.Kind, round(t.Dur))
	if t.Slow {
		head += "  slow"
	}
	if t.Err != "" {
		head += fmt.Sprintf("  error=%q", t.Err)
	}
	lines := []string{head, "stmt: " + t.Statement}

	children := make([][]int, len(t.Spans))
	for i, sp := range t.Spans {
		if i == 0 {
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], i)
	}
	var walk func(idx int, prefix string, last bool)
	walk = func(idx int, prefix string, last bool) {
		sp := t.Spans[idx]
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		line := prefix + branch + sp.Name + " " + round(sp.Dur).String()
		if kids := children[idx]; len(kids) > 0 {
			self := sp.Dur
			for _, c := range kids {
				self -= t.Spans[c].Dur
			}
			if self < 0 {
				self = 0
			}
			line += fmt.Sprintf(" (self %s)", round(self))
		}
		if len(sp.Attrs) > 0 {
			pairs := make([]string, len(sp.Attrs))
			for i, a := range sp.Attrs {
				pairs[i] = a.Key + "=" + a.Value()
			}
			line += " [" + strings.Join(pairs, " ") + "]"
		}
		lines = append(lines, line)
		for i, c := range children[idx] {
			walk(c, childPrefix, i == len(children[idx])-1)
		}
	}
	if len(t.Spans) > 0 {
		walk(0, "", true)
	}
	return lines
}

// round trims durations to microsecond precision for display.
func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
