package trace

import (
	"encoding/binary"
	"math"
	"time"
)

// Retained traces are sealed: the span tree — the pointer-rich bulk of a
// trace — is flattened into one pointer-free byte buffer at Add time and
// decoded back into Spans only when a single trace is actually read
// (SHOW TRACE, /traces). A full ring of live traces would otherwise be
// tens of thousands of heap pointers the garbage collector re-marks every
// cycle; sealed, the ring is a handful of strings per trace plus noscan
// buffers, and the mark cost of retention disappears from the statement
// path. Encoding runs only for retained traces (the sampled few plus slow
// and errored), decoding only on the human-driven read path, so both sides
// are off the hot path by construction.
//
// Layout (all integers varint unless noted): span count, then per span:
// name (len-prefixed bytes), parent+1, start, dur, attr count, then per
// attr: key (len-prefixed), kind byte, and a kind-dependent payload —
// len-prefixed bytes for strings, zigzag varint for ints, 8 fixed
// little-endian bytes for floats.

// sealed is one retained trace in its GC-quiet resting form. The header
// fields SHOW TRACES lists stay directly readable; spans live in enc.
type sealed struct {
	id    ID
	start time.Time
	dur   time.Duration
	slow  bool
	kind  string
	stmt  string
	err   string
	enc   []byte
}

// sealSpans flattens a completed trace's spans.
func sealSpans(spans []Span) []byte {
	n := 16
	for _, sp := range spans {
		n += len(sp.Name) + 24
		for _, a := range sp.Attrs {
			n += len(a.Key) + len(a.s) + 16
		}
	}
	enc := make([]byte, 0, n)
	enc = binary.AppendUvarint(enc, uint64(len(spans)))
	for _, sp := range spans {
		enc = appendString(enc, sp.Name)
		enc = binary.AppendUvarint(enc, uint64(sp.Parent+1))
		enc = binary.AppendUvarint(enc, uint64(sp.Start))
		enc = binary.AppendUvarint(enc, uint64(sp.Dur))
		enc = binary.AppendUvarint(enc, uint64(len(sp.Attrs)))
		for _, a := range sp.Attrs {
			enc = appendString(enc, a.Key)
			enc = append(enc, byte(a.kind))
			switch a.kind {
			case attrInt:
				enc = binary.AppendVarint(enc, a.i)
			case attrFloat:
				enc = binary.LittleEndian.AppendUint64(enc, math.Float64bits(a.f))
			default:
				enc = appendString(enc, a.s)
			}
		}
	}
	return enc
}

// unseal reconstructs the full Trace. Every call returns a fresh copy, so
// readers can never alias each other or the (long recycled) builder.
func (s *sealed) unseal() *Trace {
	t := &Trace{
		ID:        s.id,
		Statement: s.stmt,
		Kind:      s.kind,
		Start:     s.start,
		Dur:       s.dur,
		Err:       s.err,
		Slow:      s.slow,
	}
	d := decoder{buf: s.enc}
	count := d.uvarint()
	if count > uint64(len(s.enc)) { // corrupt; impossible via seal, defensive
		return t
	}
	t.Spans = make([]Span, 0, count)
	for i := uint64(0); i < count && !d.bad; i++ {
		sp := Span{
			Name:   d.string(),
			Parent: int(d.uvarint()) - 1,
			Start:  time.Duration(d.uvarint()),
			Dur:    time.Duration(d.uvarint()),
		}
		nattr := d.uvarint()
		if nattr > 0 && nattr <= uint64(len(s.enc)) {
			sp.Attrs = make([]Attr, 0, nattr)
			for j := uint64(0); j < nattr && !d.bad; j++ {
				a := Attr{Key: d.string(), kind: attrKind(d.byte())}
				switch a.kind {
				case attrInt:
					a.i = d.varint()
				case attrFloat:
					a.f = math.Float64frombits(d.fixed64())
				default:
					a.s = d.string()
				}
				sp.Attrs = append(sp.Attrs, a)
			}
		}
		if d.bad {
			break
		}
		t.Spans = append(t.Spans, sp)
	}
	return t
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decoder is a cursor over a sealed buffer. A malformed buffer flips bad
// and every subsequent read returns zero values instead of panicking.
type decoder struct {
	buf []byte
	off int
	bad bool
}

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.off >= len(d.buf) {
		d.bad = true
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) fixed64() uint64 {
	if d.off+8 > len(d.buf) {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.bad || d.off+int(n) > len(d.buf) {
		d.bad = true
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
