package trace

// Every lifecycle span name the engine opens, declared once. The taxonomy
// is <layer>.<step> (dots separate levels); the scripts/check.sh span-name
// lint rejects inline span-name literals at StartSpan/Child/AddChild call
// sites outside this package and checks the names declared here against
// the scheme, so the span vocabulary stays reviewable in one file.
const (
	// SpanStatement is the root span of every traced statement: it covers
	// the statement from trace start (at the server, before admission) to
	// completion, so queue wait, parse, plan, exec, and WAL commit are all
	// inside it.
	SpanStatement = "stmt"
	// SpanQueueWait covers the admission-queue wait for an execution slot
	// (opened by the server front end; absent without admission control).
	SpanQueueWait = "server.queue_wait"
	// SpanParse covers statement text parsing.
	SpanParse = "stmt.parse"
	// SpanPlan covers plan construction, including access-path selection;
	// the scan-vs-index decision and its cost estimates are attributes.
	SpanPlan = "stmt.plan"
	// SpanExec covers plan execution (SELECT) or the locked mutation section
	// (writes). Executor operator spans nest under it.
	SpanExec = "stmt.exec"
	// SpanWALAppend covers staging the statement's redo record into the WAL
	// (under the exclusive statement lock).
	SpanWALAppend = "wal.append"
	// SpanWALCommit covers the group-commit fsync wait after the statement
	// lock is released — the durability tail of every mutating statement.
	SpanWALCommit = "wal.commit"
	// SpanZoomExpand covers a zoom-in expansion: cached-result lookup (the
	// cache hit/miss is an attribute), refinement, and raw-annotation
	// retrieval.
	SpanZoomExpand = "zoom.expand"
	// SpanReplApply covers one replicated-record batch applied on a
	// replica: redo through the recovery path plus the local WAL stage
	// and commit fsync. Batch bounds and size are attributes.
	SpanReplApply = "repl.apply"
	// SpanReplResync covers installing a full snapshot shipped by the
	// primary after the replica fell behind a rotated WAL.
	SpanReplResync = "repl.resync"
	// SpanScrubSweep covers one scrubber pass over the page set (background
	// sweep or a synchronous CHECK TABLE); pages scanned and faults found
	// are attributes.
	SpanScrubSweep = "scrub.sweep"
	// SpanScrubRepair covers one page repair attempt; the source used
	// (flush, rebuild, replica) or the refusal is an attribute.
	SpanScrubRepair = "scrub.repair"
)

// OpSpanPrefix prefixes the synthesized per-operator spans of an executed
// plan; the remainder is the operator's stable metric label (op.scan,
// op.index_scan, op.hash_join, ...).
const OpSpanPrefix = "op."

// OpSpan returns the span name of one executor operator.
func OpSpan(operator string) string { return OpSpanPrefix + operator }
