// Package trace is the statement lifecycle tracer: one Trace per executed
// statement, made of parent-linked spans covering every layer the
// statement crosses — admission-queue wait, parse, plan (with the
// scan-vs-index decision as attributes), executor operators, WAL
// append/commit, and zoom-in expansion.
//
// Collection is a head/tail hybrid. Every statement gets a shell trace —
// id, statement, kind, wall time, outcome — whose cost is two clock reads
// and no span detail. At Start, a head decision made with the configured
// sample probability promotes the statement to detailed collection: child
// spans (parse, plan, exec, WAL, operators) are recorded only then, which
// is what keeps default-rate tracing within a few percent of statement
// cost (a clock read alone is ~60ns on virtualized hosts, and full span
// detail needs a dozen of them). The retention decision stays at the tail:
// slow and errored traces are always kept — at whatever detail level was
// being collected — and ordinary traces are kept exactly when they were
// promoted, so ordinary retention probability equals the sample rate.
// Retained traces land in a bounded lock-striped ring (store.go) served by
// SHOW TRACES / SHOW TRACE and the /traces sidecar endpoint.
//
// Pre-measured sub-spans (AddChild) are exempt from the head gate: callers
// that already hold a measured duration — admission-queue wait, operator
// walls — can attach it to a shell for free, no clock read needed.
//
// Every builder method is nil-safe: a nil *Tracer, *Active, or *SpanHandle
// turns the corresponding call into a no-op, so disabled tracing costs a
// nil check per call site and nothing else.
package trace

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies one trace. The canonical textual form is "t" followed by
// 16 lowercase hex digits — the leading letter keeps the id lexable as a
// bare SQL identifier in SHOW TRACE <id>.
type ID uint64

const hexDigits = "0123456789abcdef"

// String renders the canonical textual form. Hand-rolled rather than
// fmt.Sprintf because every statement response carries a trace id.
func (id ID) String() string {
	var b [17]byte
	b[0] = 't'
	v := uint64(id)
	for i := 16; i >= 1; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ParseID parses the canonical form (a bare 16-digit hex string is also
// accepted, for hand-typed ids).
func ParseID(s string) (ID, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.TrimPrefix(s, "t")
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace id %q", s)
	}
	return ID(v), nil
}

// attrKind discriminates the lazily-formatted attribute payloads.
type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
)

// Attr is one key=value span attribute. Numeric values are stored raw and
// formatted lazily by Value(): attributes are written on every traced
// statement but read only for the retained few, so the strconv cost
// belongs on the read side.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// StringAttr builds a string-valued attribute (tests and renderers).
func StringAttr(key, value string) Attr { return Attr{Key: key, s: value} }

// Value renders the attribute value.
func (a Attr) Value() string {
	switch a.kind {
	case attrInt:
		return strconv.FormatInt(a.i, 10)
	case attrFloat:
		return strconv.FormatFloat(a.f, 'f', 1, 64)
	default:
		return a.s
	}
}

// spanOpen marks a span whose End has not run yet; Finish sweeps it to the
// trace end so error paths never leave negative durations behind.
const spanOpen = time.Duration(-1)

// Span is one node of a trace: a named interval with a parent link and
// attributes. Start is the offset from the trace start; Dur is inclusive
// of child spans (renderers derive self-time by subtracting children).
type Span struct {
	Name   string
	Parent int // index into Trace.Spans; -1 for the root
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Trace is one completed statement trace. Spans[0] is the root. A Trace
// reached through the Store is immutable — the builder publishes it only
// after Finish, when no further writes happen.
type Trace struct {
	ID        ID
	Statement string
	Kind      string
	Start     time.Time
	Dur       time.Duration
	Err       string
	Slow      bool
	Spans     []Span
}

// AttrJSON is one attribute on the wire.
type AttrJSON struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanJSON is one span on the wire (/traces sidecar endpoint).
type SpanJSON struct {
	Name        string     `json:"name"`
	Parent      int        `json:"parent"`
	StartMicros int64      `json:"start_us"`
	WallMicros  int64      `json:"wall_us"`
	Attrs       []AttrJSON `json:"attrs,omitempty"`
}

// TraceJSON is one trace on the wire.
type TraceJSON struct {
	ID         string     `json:"trace_id"`
	Statement  string     `json:"stmt"`
	Kind       string     `json:"kind"`
	TSMicros   int64      `json:"ts_us"`
	WallMicros int64      `json:"wall_us"`
	Slow       bool       `json:"slow,omitempty"`
	Error      string     `json:"error,omitempty"`
	Spans      []SpanJSON `json:"spans"`
}

// JSON converts the trace to its wire form.
func (t *Trace) JSON() TraceJSON {
	out := TraceJSON{
		ID:         t.ID.String(),
		Statement:  t.Statement,
		Kind:       t.Kind,
		TSMicros:   t.Start.UnixMicro(),
		WallMicros: t.Dur.Microseconds(),
		Slow:       t.Slow,
		Error:      t.Err,
	}
	for _, sp := range t.Spans {
		sj := SpanJSON{
			Name:        sp.Name,
			Parent:      sp.Parent,
			StartMicros: sp.Start.Microseconds(),
			WallMicros:  sp.Dur.Microseconds(),
		}
		for _, a := range sp.Attrs {
			sj.Attrs = append(sj.Attrs, AttrJSON{Key: a.Key, Value: a.Value()})
		}
		out.Spans = append(out.Spans, sj)
	}
	return out
}

// Config tunes a Tracer.
type Config struct {
	// Sample is the probability that a statement is promoted to detailed
	// span collection at Start, and therefore also the retention
	// probability for ordinary traces (slow and errored traces are always
	// retained, as shells when they were not promoted). 1 promotes every
	// statement.
	Sample float64
	// SlowThreshold marks traces at or above this duration as slow (always
	// retained). Zero disables the slow class.
	SlowThreshold time.Duration
	// Capacity bounds the retained-trace ring (default 512).
	Capacity int
}

// Tracer owns trace collection and the retained-trace store. A nil *Tracer
// is fully inert: Start returns nil and every downstream call no-ops.
type Tracer struct {
	cfg   Config
	store *Store

	seed atomic.Uint64

	started    atomic.Uint64
	retained   atomic.Uint64
	sampledOut atomic.Uint64

	// actives recycles trace builders (with their span and attribute
	// backing arrays) across statements. The store seals retained traces
	// into a flat buffer and keeps no reference to the spans, so a builder
	// recycles whether or not its trace was kept. Recycling is safe for
	// stale SpanHandles because handles carry the builder generation they
	// were dealt under (see SpanHandle); the handle arrays themselves are
	// never reused across generations.
	actives sync.Pool
}

// New builds a tracer with its bounded store.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	tr := &Tracer{cfg: cfg, store: newStore(cfg.Capacity)}
	tr.seed.Store(uint64(time.Now().UnixNano()) | 1)
	return tr
}

// rand64 is a splitmix64 step over the shared seed: cheap, lock-free, and
// good enough for ids and sampling decisions.
func (tr *Tracer) rand64() uint64 {
	z := tr.seed.Add(0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Start begins collecting one statement's trace. The root span opens now;
// Finish closes it and decides retention. Returns nil on a nil tracer.
func (tr *Tracer) Start(statement string) *Active {
	if tr == nil {
		return nil
	}
	return tr.StartAt(statement, time.Now())
}

// StartAt is Start with a caller-supplied begin time — statement drivers
// that read the clock at entry anyway (latency accounting) hand the same
// instant to the tracer, so a shell trace adds no clock reads of its own.
func (tr *Tracer) StartAt(statement string, now time.Time) *Active {
	if tr == nil {
		return nil
	}
	tr.started.Add(1)
	var id ID
	for id == 0 {
		id = ID(tr.rand64())
	}
	// Head decision: promote to detailed span collection with probability
	// Sample. The id doubles as the random draw — it came off the same
	// splitmix64 stream — so promotion costs no extra generator step.
	detailed := tr.cfg.Sample >= 1 ||
		(tr.cfg.Sample > 0 && float64(uint64(id)>>11)/(1<<53) < tr.cfg.Sample)
	a, _ := tr.actives.Get().(*Active)
	if a == nil {
		a = &Active{tr: tr}
	}
	// Opening a new generation invalidates every handle dealt under the
	// previous one; the span backing (and each slot's attribute backing)
	// carries over, the handle array never does.
	a.gen++
	spans := a.t.Spans[:0]
	if cap(spans) == 0 {
		spans = make([]Span, 0, 16)
	}
	a.t = Trace{ID: id, Statement: statement, Start: now, Spans: spans}
	a.done = false
	a.detailed = detailed
	a.root = nil
	a.handles = nil
	if detailed {
		a.handles = make([]SpanHandle, 0, handleArenaSize)
	}
	a.appendSpan(SpanStatement, -1, 0, spanOpen)
	return a
}

// Get returns a retained trace by id.
func (tr *Tracer) Get(id ID) (*Trace, bool) {
	if tr == nil {
		return nil, false
	}
	return tr.store.Get(id)
}

// Snapshot returns up to limit retained traces, most recent first.
func (tr *Tracer) Snapshot(limit int) []*Trace {
	if tr == nil {
		return nil
	}
	return tr.store.Snapshot(limit)
}

// Stats reports the tracer's cumulative collection counters plus the
// store's retention counters.
func (tr *Tracer) Stats() Stats {
	if tr == nil {
		return Stats{}
	}
	st := tr.store.stats()
	st.Started = tr.started.Load()
	st.Retained = tr.retained.Load()
	st.SampledOut = tr.sampledOut.Load()
	return st
}

// Stats are the tracer's cumulative counters.
type Stats struct {
	// Started counts traces begun (every statement while tracing is on).
	Started uint64
	// Retained counts completed traces admitted to the store.
	Retained uint64
	// SampledOut counts ordinary completed traces dropped by the sampler.
	SampledOut uint64
	// Evicted counts retained traces later evicted by the ring bound.
	Evicted uint64
	// Resident is the number of traces currently retained.
	Resident int
}

// Active is the single-statement trace builder. It belongs to the
// statement's goroutine: span starts/ends and Finish are not safe for
// concurrent use (parallel operators never touch it — their spans are
// synthesized after execution from operator stats). After Finish the
// builder is inert and the published *Trace is immutable.
type Active struct {
	tr *Tracer
	t  Trace
	// gen is the builder generation, bumped every Start. Handles record
	// the generation they were dealt under and go inert when it moves on,
	// so recycling this builder cannot let a stale handle write into a
	// later statement's trace.
	gen uint64
	// detailed is the head-sampling decision: when false the trace is a
	// shell — StartSpan/Child return nil so no child spans (and none of
	// their clock reads) happen; AddChild still works because its duration
	// was measured by the caller anyway.
	detailed bool
	done     bool
	// handles deals SpanHandles from one pre-sized array (allocated at
	// Start only for detailed traces — shells deal handles lazily, and
	// only if Root is asked for) so opening a span does not allocate.
	// The array is abandoned, never reused, when the generation turns:
	// a stale *SpanHandle must keep pointing at its own dead generation's
	// memory, not alias a slot re-dealt to a later statement.
	handles []SpanHandle
	root    *SpanHandle
}

// handleArenaSize covers the deepest statement lifecycle (queue, parse,
// plan, exec, WAL append/commit, zoom expansion, plus operator synthesis)
// without overflow in the common case.
const handleArenaSize = 12

// ID returns the trace id (zero on a nil builder).
func (a *Active) ID() ID {
	if a == nil {
		return 0
	}
	return a.t.ID
}

// Root returns the handle of the root span (nil once the trace finished).
func (a *Active) Root() *SpanHandle {
	if a == nil || a.done {
		return nil
	}
	if a.root == nil {
		a.root = a.handle(0)
	}
	return a.root
}

// now is the current offset from the trace start.
func (a *Active) now() time.Duration { return time.Since(a.t.Start) }

// appendSpan adds one span, reusing the recycled slot's attribute backing
// when the spans array has capacity from a previous build.
func (a *Active) appendSpan(name string, parent int, start, dur time.Duration) int {
	n := len(a.t.Spans)
	if n < cap(a.t.Spans) {
		a.t.Spans = a.t.Spans[:n+1]
		sp := &a.t.Spans[n]
		attrs := sp.Attrs[:0]
		*sp = Span{Name: name, Parent: parent, Start: start, Dur: dur, Attrs: attrs}
	} else {
		a.t.Spans = append(a.t.Spans, Span{Name: name, Parent: parent, Start: start, Dur: dur})
	}
	return n
}

// handle deals one SpanHandle for span idx from the arena.
func (a *Active) handle(idx int) *SpanHandle {
	n := len(a.handles)
	if n < cap(a.handles) {
		a.handles = a.handles[:n+1]
	} else {
		a.handles = append(a.handles, SpanHandle{})
	}
	h := &a.handles[n]
	*h = SpanHandle{a: a, idx: idx, gen: a.gen}
	return h
}

// StartSpan opens a child span under parent (nil parent means the root)
// starting now. End the returned handle when the step completes. Returns
// nil on a shell trace (head sampling did not promote the statement), so
// call sites pay a nil check instead of two clock reads.
func (a *Active) StartSpan(name string, parent *SpanHandle) *SpanHandle {
	if a == nil || a.done || !a.detailed {
		return nil
	}
	pidx := 0
	if parent != nil && parent.a == a && parent.gen == a.gen {
		pidx = parent.idx
	}
	return a.handle(a.appendSpan(name, pidx, a.now(), spanOpen))
}

// Finish completes the trace: the root span and any still-open spans close
// at the current offset, kind and error are recorded, and the tracer
// decides retention — errored and slow traces are always kept, ordinary
// ones with probability Config.Sample. Idempotent; nil-safe.
func (a *Active) Finish(kind string, err error) {
	if a == nil || a.done {
		return
	}
	a.finishAt(kind, err, time.Now())
}

// FinishAt is Finish with a caller-supplied completion time — statement
// drivers that just read the clock for their own latency accounting hand
// the same instant to the tracer, sparing every statement a second read.
func (a *Active) FinishAt(kind string, err error, now time.Time) {
	a.finishAt(kind, err, now)
}

func (a *Active) finishAt(kind string, err error, now time.Time) {
	if a == nil || a.done {
		return
	}
	a.done = true
	end := now.Sub(a.t.Start)
	if end < 0 {
		end = 0
	}
	a.t.Dur = end
	a.t.Kind = kind
	if err != nil {
		a.t.Err = err.Error()
	}
	for i := range a.t.Spans {
		if a.t.Spans[i].Dur == spanOpen {
			d := end - a.t.Spans[i].Start
			if d < 0 {
				d = 0
			}
			a.t.Spans[i].Dur = d
		}
	}
	tr := a.tr
	a.t.Slow = tr.cfg.SlowThreshold > 0 && end >= tr.cfg.SlowThreshold
	// Tail retention: slow and errored traces are always kept (as shells
	// when head sampling did not promote them); ordinary traces are kept
	// exactly when promoted, so their retention rate is the sample rate.
	keep := err != nil || a.t.Slow || a.detailed
	if !keep {
		tr.sampledOut.Add(1)
	} else {
		tr.retained.Add(1)
		// Add seals the spans into the store's flat form and keeps no
		// reference to them, so the builder recycles on this branch too.
		tr.store.Add(&a.t)
	}
	// Finish is the owner's last touch: the builder goes back to the pool
	// and the next Start opens a new generation over the same storage.
	// Reads like ID() stay valid until that Start happens; stale handles
	// are fenced by the generation check regardless.
	tr.actives.Put(a)
}

// SpanHandle addresses one span of an active trace. The zero of usefulness
// — a nil handle — ignores every method, so call sites need no guards. A
// handle held past the statement's Finish is fenced twice over: done stops
// writes before the builder is recycled, and the generation stamp stops
// them after — a recycled builder's new generation never matches a stale
// handle's, so the stale handle can only ever no-op, never write into
// another statement's trace.
type SpanHandle struct {
	a   *Active
	idx int
	gen uint64
}

// End closes the span at the current offset. Safe to call once per span;
// later calls (or calls after Finish) are ignored.
func (h *SpanHandle) End() {
	if h == nil || h.a == nil || h.a.done || h.gen != h.a.gen {
		return
	}
	sp := &h.a.t.Spans[h.idx]
	if sp.Dur != spanOpen {
		return
	}
	d := h.a.now() - sp.Start
	if d < 0 {
		d = 0
	}
	sp.Dur = d
}

// Attr records one key=value attribute on the span.
func (h *SpanHandle) Attr(key, value string) {
	if h == nil || h.a == nil || h.a.done || h.gen != h.a.gen {
		return
	}
	sp := &h.a.t.Spans[h.idx]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, s: value})
}

// AttrInt records one integer attribute on the span. The value is stored
// raw and formatted only if the trace is retained and read.
func (h *SpanHandle) AttrInt(key string, v int64) {
	if h == nil || h.a == nil || h.a.done || h.gen != h.a.gen {
		return
	}
	sp := &h.a.t.Spans[h.idx]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, kind: attrInt, i: v})
}

// AttrFloat records one float attribute on the span (rendered with one
// decimal — cost-model numbers). Stored raw, formatted lazily.
func (h *SpanHandle) AttrFloat(key string, v float64) {
	if h == nil || h.a == nil || h.a.done || h.gen != h.a.gen {
		return
	}
	sp := &h.a.t.Spans[h.idx]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, kind: attrFloat, f: v})
}

// Child opens a sub-span under this span starting now.
func (h *SpanHandle) Child(name string) *SpanHandle {
	if h == nil || h.a == nil || h.gen != h.a.gen {
		return nil
	}
	return h.a.StartSpan(name, h)
}

// AddChild records an already-measured sub-span under this span — used to
// synthesize executor-operator spans from their runtime stats after the
// plan has drained, and to attach the admission-queue wait the server
// measured anyway. The child starts where its parent starts; dur is the
// caller's measured wall time (inclusive of the child's own children).
// Unlike StartSpan, AddChild works on shell traces too: it needs no clock
// read, so the head gate has nothing to save.
func (h *SpanHandle) AddChild(name string, dur time.Duration) *SpanHandle {
	if h == nil || h.a == nil || h.a.done || h.gen != h.a.gen {
		return nil
	}
	if dur < 0 {
		dur = 0
	}
	start := h.a.t.Spans[h.idx].Start
	return h.a.handle(h.a.appendSpan(name, h.idx, start, dur))
}
