package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// storeStripes is the lock-stripe count of the retained-trace ring.
// Completed statements from concurrent connections land on stripes chosen
// by trace id, so writers contend 1/storeStripes of the time instead of on
// one mutex.
const storeStripes = 8

// Store is the bounded retained-trace ring: lock-striped, insertion-
// ordered per stripe, with retention-aware eviction — when a stripe is
// full the oldest ordinary trace goes first, and slow or errored traces
// are sacrificed only when nothing ordinary is left. Traces rest sealed
// (see seal.go) so a full ring costs the garbage collector almost nothing;
// Get and Snapshot decode fresh copies for the reader.
type Store struct {
	stripes [storeStripes]stripe
	evicted atomic.Uint64
}

type stripe struct {
	mu  sync.Mutex
	cap int
	// order holds the stripe's traces oldest-first; byID indexes them.
	order []*sealed
	byID  map[ID]*sealed
}

// newStore builds a store bounded to capacity traces total.
func newStore(capacity int) *Store {
	per := capacity / storeStripes
	if per < 1 {
		per = 1
	}
	s := &Store{}
	for i := range s.stripes {
		s.stripes[i] = stripe{cap: per, byID: make(map[ID]*sealed, per)}
	}
	return s
}

func (s *Store) stripeFor(id ID) *stripe {
	return &s.stripes[uint64(id)%storeStripes]
}

// Add retains one completed trace, evicting under the stripe bound. The
// trace is sealed on the way in; the caller's Span storage is not
// referenced afterwards and may be recycled.
func (s *Store) Add(t *Trace) {
	se := &sealed{
		id:    t.ID,
		start: t.Start,
		dur:   t.Dur,
		slow:  t.Slow,
		kind:  t.Kind,
		stmt:  t.Statement,
		err:   t.Err,
		enc:   sealSpans(t.Spans),
	}
	st := s.stripeFor(t.ID)
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.order) >= st.cap {
		// Tail retention applies to eviction too: drop the oldest ordinary
		// trace first, so the slow and errored traces an operator is hunting
		// outlive the sampled background.
		victim := 0
		for i, old := range st.order {
			if !old.slow && old.err == "" {
				victim = i
				break
			}
		}
		delete(st.byID, st.order[victim].id)
		st.order = append(st.order[:victim], st.order[victim+1:]...)
		s.evicted.Add(1)
	}
	st.order = append(st.order, se)
	st.byID[se.id] = se
}

// Get returns a retained trace by id, decoded into a fresh copy.
func (s *Store) Get(id ID) (*Trace, bool) {
	st := s.stripeFor(id)
	st.mu.Lock()
	se, ok := st.byID[id]
	st.mu.Unlock()
	if !ok {
		return nil, false
	}
	return se.unseal(), true
}

// Snapshot returns up to limit retained traces, most recent first
// (limit <= 0 returns everything). Only the traces actually returned are
// decoded.
func (s *Store) Snapshot(limit int) []*Trace {
	var all []*sealed
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		all = append(all, st.order...)
		st.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].start.After(all[j].start) })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	out := make([]*Trace, len(all))
	for i, se := range all {
		out[i] = se.unseal()
	}
	return out
}

// stats reports the store's retention counters.
func (s *Store) stats() Stats {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += len(st.order)
		st.mu.Unlock()
	}
	return Stats{Evicted: s.evicted.Load(), Resident: n}
}
