package types

import (
	"testing"
	"testing/quick"
)

func birdSchema() Schema {
	return NewSchema(
		Column{Table: "birds", Name: "id", Kind: KindInt},
		Column{Table: "birds", Name: "name", Kind: KindString},
		Column{Table: "birds", Name: "wingspan", Kind: KindFloat},
	)
}

func TestColumnIndex(t *testing.T) {
	s := birdSchema()
	cases := []struct {
		ref  string
		want int
		ok   bool
	}{
		{"id", 0, true},
		{"birds.name", 1, true},
		{"BIRDS.WINGSPAN", 2, true}, // case-insensitive
		{"missing", 0, false},
		{"other.id", 0, false},
	}
	for _, c := range cases {
		got, err := s.ColumnIndex(c.ref)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ColumnIndex(%q) = %d, %v; want %d, nil", c.ref, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ColumnIndex(%q) succeeded, want error", c.ref)
		}
	}
}

func TestColumnIndexAmbiguous(t *testing.T) {
	s := NewSchema(
		Column{Table: "r", Name: "a", Kind: KindInt},
		Column{Table: "s", Name: "a", Kind: KindInt},
	)
	if _, err := s.ColumnIndex("a"); err == nil {
		t.Error("bare ambiguous reference resolved, want error")
	}
	if i, err := s.ColumnIndex("s.a"); err != nil || i != 1 {
		t.Errorf("qualified reference s.a = %d, %v; want 1, nil", i, err)
	}
}

func TestSchemaProjectConcatAlias(t *testing.T) {
	s := birdSchema()
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Columns[0].Name != "wingspan" || p.Columns[1].Name != "id" {
		t.Errorf("Project = %v", p)
	}
	c := s.Concat(p)
	if c.Len() != 5 {
		t.Errorf("Concat len = %d, want 5", c.Len())
	}
	a := s.WithTable("b")
	if a.Columns[0].Table != "b" || s.Columns[0].Table != "birds" {
		t.Error("WithTable must not mutate the receiver")
	}
	if got := a.Columns[1].QualifiedName(); got != "b.name" {
		t.Errorf("QualifiedName = %q", got)
	}
	if !s.HasColumn("name") || s.HasColumn("beak") {
		t.Error("HasColumn misreported")
	}
}

func TestSchemaString(t *testing.T) {
	got := NewSchema(
		Column{Table: "t", Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindString},
	).String()
	want := "(t.a INT, b TEXT)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTupleOps(t *testing.T) {
	tu := Tuple{NewInt(1), NewString("x"), NewFloat(2.5)}
	cl := tu.Clone()
	cl[0] = NewInt(9)
	if tu[0].Int() != 1 {
		t.Error("Clone shares backing array")
	}
	p := tu.Project([]int{2, 1})
	if p[0].Float() != 2.5 || p[1].Str() != "x" {
		t.Errorf("Project = %v", p)
	}
	c := tu.Concat(Tuple{NewBool(true)})
	if len(c) != 4 || !c[3].Bool() {
		t.Errorf("Concat = %v", c)
	}
	if got := tu.String(); got != "(1, x, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleEqualOnAndHash(t *testing.T) {
	a := Tuple{NewInt(1), NewString("x")}
	b := Tuple{NewInt(1), NewString("y")}
	if !a.EqualOn(b, []int{0}) {
		t.Error("EqualOn idx 0 = false")
	}
	if a.EqualOn(b, nil) {
		t.Error("EqualOn all = true")
	}
	if a.Hash([]int{0}) != b.Hash([]int{0}) {
		t.Error("hash on equal projection differs")
	}
	if a.Hash(nil) == b.Hash(nil) {
		t.Error("hash collision on differing tuples (suspicious)")
	}
}

func TestSplitQualified(t *testing.T) {
	if tb, n := SplitQualified("r.a"); tb != "r" || n != "a" {
		t.Errorf("SplitQualified(r.a) = %q, %q", tb, n)
	}
	if tb, n := SplitQualified("a"); tb != "" || n != "a" {
		t.Errorf("SplitQualified(a) = %q, %q", tb, n)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(vs []Value) bool {
		tu := Tuple(vs)
		enc := EncodeTuple(nil, tu)
		if len(enc) != EncodedSize(tu) {
			return false
		}
		dec, n, err := DecodeTuple(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return dec.EqualOn(tu, nil) && sameKinds(dec, tu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sameKinds(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() != b[i].Kind() {
			return false
		}
	}
	return true
}

func TestCodecCorruptInputs(t *testing.T) {
	tu := Tuple{NewInt(7), NewString("hello"), NewFloat(1.5), NewBool(true), Null()}
	enc := EncodeTuple(nil, tu)
	// Every strict prefix must fail or consume fewer bytes than a full tuple.
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeTuple(enc[:i]); err == nil {
			t.Errorf("DecodeTuple on %d-byte prefix succeeded", i)
		}
	}
	// Unknown kind byte.
	bad := []byte{1, 250}
	if _, _, err := DecodeTuple(bad); err == nil {
		t.Error("DecodeTuple with unknown kind succeeded")
	}
	if _, _, err := DecodeTuple(nil); err == nil {
		t.Error("DecodeTuple(nil) succeeded")
	}
}

func TestCodecTrailingBytes(t *testing.T) {
	tu := Tuple{NewInt(1)}
	enc := EncodeTuple(nil, tu)
	enc = append(enc, 0xAB, 0xCD)
	dec, n, err := DecodeTuple(enc)
	if err != nil || n != len(enc)-2 || len(dec) != 1 {
		t.Errorf("DecodeTuple with trailing bytes = %v, %d, %v", dec, n, err)
	}
}
