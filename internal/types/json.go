package types

import (
	"encoding/json"
	"fmt"
)

// jsonValue is the serialization shape of a Value: an explicit kind tag so
// INT/FLOAT and NULL round-trip exactly (plain JSON numbers would not).
type jsonValue struct {
	K Kind            `json:"k"`
	V json.RawMessage `json:"v,omitempty"`
}

// MarshalJSON implements json.Marshaler. Values survive a round trip with
// kind fidelity, which the zoom-in result cache relies on.
func (v Value) MarshalJSON() ([]byte, error) {
	var payload any
	switch v.kind {
	case KindNull:
		return json.Marshal(jsonValue{K: KindNull})
	case KindInt:
		payload = v.i
	case KindFloat:
		payload = v.f
	case KindString:
		payload = v.s
	case KindBool:
		payload = v.b
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jsonValue{K: v.kind, V: raw})
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	switch jv.K {
	case KindNull:
		*v = Null()
	case KindInt:
		var i int64
		if err := json.Unmarshal(jv.V, &i); err != nil {
			return err
		}
		*v = NewInt(i)
	case KindFloat:
		var f float64
		if err := json.Unmarshal(jv.V, &f); err != nil {
			return err
		}
		*v = NewFloat(f)
	case KindString:
		var s string
		if err := json.Unmarshal(jv.V, &s); err != nil {
			return err
		}
		*v = NewString(s)
	case KindBool:
		var b bool
		if err := json.Unmarshal(jv.V, &b); err != nil {
			return err
		}
		*v = NewBool(b)
	default:
		return fmt.Errorf("types: unknown kind %d in JSON value", jv.K)
	}
	return nil
}
