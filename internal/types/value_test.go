package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "TEXT",
		KindBool:   "BOOL",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	good := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "BigInt": KindInt,
		"float": KindFloat, "DOUBLE": KindFloat, "real": KindFloat,
		"text": KindString, "VARCHAR": KindString, " string ": KindString,
		"bool": KindBool, "BOOLEAN": KindBool,
	}
	for name, want := range good {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v, nil", name, got, err, want)
		}
	}
	if _, err := KindFromName("blob"); err == nil {
		t.Error("KindFromName(blob) succeeded, want error")
	}
}

func TestValueAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("NewInt(42).Int() = %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("NewFloat(2.5).Float() = %g", got)
	}
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("NewInt(3).Float() = %g, want 3 (INT widens)", got)
	}
	if got := NewString("hi").Str(); got != "hi" {
		t.Errorf("NewString(hi).Str() = %q", got)
	}
	if !NewBool(true).Bool() {
		t.Error("NewBool(true).Bool() = false")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on TEXT", func() { NewString("x").Int() })
	mustPanic("Str on INT", func() { NewInt(1).Str() })
	mustPanic("Bool on NULL", func() { Null().Bool() })
	mustPanic("Float on BOOL", func() { NewBool(true).Float() })
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), NewInt(0), -1},
		{NewInt(0), Null(), 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(1.5), 0},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewInt(2), NewFloat(1.5), 1}, // numeric widening
		{NewFloat(2.0), NewInt(2), 0}, // numeric widening equality
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{NewInt(1), NewString("1"), -1}, // cross-kind stable order
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt(a), NewInt(b)) == -Compare(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualConsistencyProperty(t *testing.T) {
	// Equal values must hash equally, including INT/FLOAT widening.
	f := func(v int32) bool {
		a, b := NewInt(int64(v)), NewFloat(float64(v))
		return Equal(a, b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		s    string
		sqls string
	}{
		{Null(), "NULL", "NULL"},
		{NewInt(-7), "-7", "-7"},
		{NewFloat(1.25), "1.25", "1.25"},
		{NewString("o'brien"), "o'brien", "'o''brien'"},
		{NewBool(true), "true", "true"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.s {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.s)
		}
		if got := c.v.SQLString(); got != c.sqls {
			t.Errorf("%#v.SQLString() = %q, want %q", c.v, got, c.sqls)
		}
	}
}

func TestTruthy(t *testing.T) {
	if !NewBool(true).Truthy() {
		t.Error("true not truthy")
	}
	for _, v := range []Value{NewBool(false), Null(), NewInt(1), NewString("t")} {
		if v.Truthy() {
			t.Errorf("%v is truthy, want falsy", v)
		}
	}
}

// randomValue builds an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		return NewInt(r.Int63n(1000) - 500)
	case 2:
		return NewFloat(r.Float64()*100 - 50)
	case 3:
		letters := []byte("abcdefg ")
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return NewString(string(b))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

// Generate implements quick.Generator so quick.Check can produce Values.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomValue(r))
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Transitivity on arbitrary values: a<=b && b<=c => a<=c.
	f := func(a, b, c Value) bool {
		vs := []Value{a, b, c}
		// Sort the three by Compare and verify pairwise consistency.
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if Compare(vs[i], vs[j]) != -Compare(vs[j], vs[i]) {
					return false
				}
			}
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
