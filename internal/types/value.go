// Package types defines the relational value model shared by every layer of
// the InsightNotes engine: typed scalar values, tuples, schemas, and row
// identities. It is deliberately dependency-free so that the storage engine,
// the executor, and the summary algebra can all exchange data without
// conversion.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the scalar types supported by the engine.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 floating point number.
	KindFloat
	// KindString is an arbitrary-length UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromName parses a SQL type name into a Kind. It accepts the common
// aliases used in CREATE TABLE statements.
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "INT4", "INT8", "SERIAL":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL", "FLOAT8":
		return KindFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING", "CLOB":
		return KindString, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a single scalar datum. The zero Value is NULL.
//
// Value is a small immutable struct passed by value throughout the engine;
// only one of the payload fields is meaningful, selected by Kind.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a TEXT value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a BOOL value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if the value is not an INT.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload, coercing INT to FLOAT. It panics for
// other kinds.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
}

// Str returns the string payload. It panics if the value is not TEXT.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if the value is not BOOL.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.b
}

// numericKinds reports whether both kinds are numeric (INT or FLOAT).
func numericKinds(a, b Kind) bool {
	return (a == KindInt || a == KindFloat) && (b == KindInt || b == KindFloat)
}

// Compare orders two values. NULL sorts before every non-NULL value; values
// of different non-numeric kinds are ordered by Kind to give a stable total
// order. Numeric kinds compare by value with INT widened to FLOAT as needed.
// The result is -1, 0, or +1.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.kind != b.kind {
		if numericKinds(a.kind, b.kind) {
			return compareFloat(a.Float(), b.Float())
		}
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindInt:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	case KindFloat:
		return compareFloat(a.f, b.f)
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	}
	return 0
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal under Compare semantics.
// Note that, as in SQL DISTINCT/GROUP BY semantics, NULL equals NULL here.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit hash of the value such that Equal values hash
// equally (including the INT/FLOAT widening rule).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.kind {
	case KindNull:
		h.Write([]byte{0})
	case KindInt:
		writeFloatHash(h, float64(v.i))
	case KindFloat:
		writeFloatHash(h, v.f)
	case KindString:
		h.Write([]byte{3})
		h.Write([]byte(v.s))
	case KindBool:
		if v.b {
			h.Write([]byte{4, 1})
		} else {
			h.Write([]byte{4, 0})
		}
	}
	return h.Sum64()
}

func writeFloatHash(h interface{ Write([]byte) (int, error) }, f float64) {
	bits := math.Float64bits(f)
	var buf [9]byte
	buf[0] = 2
	for i := 0; i < 8; i++ {
		buf[i+1] = byte(bits >> (8 * i))
	}
	h.Write(buf[:])
}

// String renders the value for display. Strings are returned verbatim
// (without quotes); use SQLString for a parseable literal.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return "?"
}

// SQLString renders the value as a SQL literal that the engine's parser can
// read back.
func (v Value) SQLString() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Truthy interprets the value as a WHERE-clause condition result: only a
// BOOL true is truthy; NULL and every non-BOOL value are falsy.
func (v Value) Truthy() bool { return v.kind == KindBool && v.b }
