package types

import (
	"fmt"
	"strings"
)

// RowID identifies a tuple within a relation. IDs are assigned by the
// storage layer and are stable for the lifetime of the tuple; annotations
// reference tuples by RowID.
type RowID uint64

// Column describes one attribute of a relation.
type Column struct {
	// Table is the (possibly aliased) relation the column belongs to. It is
	// used to resolve qualified references such as "r.a".
	Table string
	// Name is the attribute name.
	Name string
	// Kind is the attribute type.
	Kind Kind
}

// QualifiedName returns "table.name", or just the name when the column has
// no table qualifier.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns describing a tuple shape.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return Schema{Columns: cols} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Columns) }

// ColumnIndex resolves a column reference that may be qualified ("r.a") or
// bare ("a"). A bare reference that matches more than one column is
// ambiguous and returns an error; a reference that matches nothing returns
// an error as well.
func (s Schema) ColumnIndex(ref string) (int, error) {
	table, name := SplitQualified(ref)
	found := -1
	for i, c := range s.Columns {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("types: ambiguous column reference %q", ref)
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("types: unknown column %q", ref)
	}
	return found, nil
}

// HasColumn reports whether ref resolves to exactly one column.
func (s Schema) HasColumn(ref string) bool {
	_, err := s.ColumnIndex(ref)
	return err == nil
}

// Project returns a schema containing the columns at the given indexes, in
// order.
func (s Schema) Project(idxs []int) Schema {
	cols := make([]Column, len(idxs))
	for i, ix := range idxs {
		cols[i] = s.Columns[ix]
	}
	return Schema{Columns: cols}
}

// Concat returns the schema of the concatenation of tuples of s and t
// (as produced by a join).
func (s Schema) Concat(t Schema) Schema {
	cols := make([]Column, 0, len(s.Columns)+len(t.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, t.Columns...)
	return Schema{Columns: cols}
}

// WithTable returns a copy of the schema with every column's Table set to
// alias. Used when a relation is scanned under an alias.
func (s Schema) WithTable(alias string) Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	for i := range cols {
		cols[i].Table = alias
	}
	return Schema{Columns: cols}
}

// String renders the schema as "(t.a INT, t.b TEXT)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// SplitQualified splits "t.a" into ("t", "a"); a bare name yields ("", name).
func SplitQualified(ref string) (table, name string) {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return "", ref
}

// Tuple is a row of values. Tuples are positional; their shape is described
// by a Schema held alongside them by whichever operator produced them.
type Tuple []Value

// Clone returns a copy of the tuple that shares no backing array with t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Project returns a new tuple containing the values at idxs, in order.
func (t Tuple) Project(idxs []int) Tuple {
	out := make(Tuple, len(idxs))
	for i, ix := range idxs {
		out[i] = t[ix]
	}
	return out
}

// Concat returns the concatenation of t and u as a new tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Hash returns a combined hash of the values at idxs (all values when idxs
// is nil), suitable for hash joins and DISTINCT.
func (t Tuple) Hash(idxs []int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v Value) {
		h ^= v.Hash()
		h *= prime
	}
	if idxs == nil {
		for _, v := range t {
			mix(v)
		}
		return h
	}
	for _, ix := range idxs {
		mix(t[ix])
	}
	return h
}

// EqualOn reports whether t and u agree on the projection idxs (nil means
// all positions; the tuples must then have equal length).
func (t Tuple) EqualOn(u Tuple, idxs []int) bool {
	if idxs == nil {
		if len(t) != len(u) {
			return false
		}
		for i := range t {
			if !Equal(t[i], u[i]) {
				return false
			}
		}
		return true
	}
	for _, ix := range idxs {
		if !Equal(t[ix], u[ix]) {
			return false
		}
	}
	return true
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
