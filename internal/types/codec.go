package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Tuple wire format, used by the storage engine to persist rows inside
// slotted pages:
//
//	uvarint   column count
//	per value: 1 byte kind, then a kind-specific payload:
//	  NULL   — nothing
//	  INT    — varint
//	  FLOAT  — 8 bytes little-endian IEEE-754 bits
//	  TEXT   — uvarint length + bytes
//	  BOOL   — 1 byte

// EncodeTuple appends the wire encoding of t to dst and returns the
// extended slice.
func EncodeTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNull:
		case KindInt:
			dst = binary.AppendVarint(dst, v.i)
		case KindFloat:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
			dst = append(dst, buf[:]...)
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		case KindBool:
			if v.b {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return dst
}

// DecodeTuple parses one tuple from buf, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("types: corrupt tuple header")
	}
	off := sz
	t := make(Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("types: truncated tuple at value %d", i)
		}
		kind := Kind(buf[off])
		off++
		switch kind {
		case KindNull:
			t = append(t, Null())
		case KindInt:
			v, sz := binary.Varint(buf[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("types: corrupt INT at value %d", i)
			}
			off += sz
			t = append(t, NewInt(v))
		case KindFloat:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("types: truncated FLOAT at value %d", i)
			}
			bits := binary.LittleEndian.Uint64(buf[off:])
			off += 8
			t = append(t, NewFloat(math.Float64frombits(bits)))
		case KindString:
			l, sz := binary.Uvarint(buf[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("types: corrupt TEXT length at value %d", i)
			}
			off += sz
			if off+int(l) > len(buf) {
				return nil, 0, fmt.Errorf("types: truncated TEXT at value %d", i)
			}
			t = append(t, NewString(string(buf[off:off+int(l)])))
			off += int(l)
		case KindBool:
			if off >= len(buf) {
				return nil, 0, fmt.Errorf("types: truncated BOOL at value %d", i)
			}
			t = append(t, NewBool(buf[off] != 0))
			off++
		default:
			return nil, 0, fmt.Errorf("types: unknown kind %d at value %d", kind, i)
		}
	}
	return t, off, nil
}

// EncodedSize returns the number of bytes EncodeTuple will produce for t.
func EncodedSize(t Tuple) int {
	// Cheap upper-bound-free computation by encoding into a scratch slice
	// would allocate; compute exactly instead.
	n := uvarintLen(uint64(len(t)))
	for _, v := range t {
		n++ // kind byte
		switch v.kind {
		case KindInt:
			n += varintLen(v.i)
		case KindFloat:
			n += 8
		case KindString:
			n += uvarintLen(uint64(len(v.s))) + len(v.s)
		case KindBool:
			n++
		}
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func varintLen(x int64) int {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return uvarintLen(ux)
}
