// Package metrics is the engine-wide observability registry: a
// dependency-free set of counters, gauges, and fixed-bucket histograms
// with Prometheus text exposition and an in-band snapshot API (the SHOW
// METRICS statement).
//
// Counters are sharded across cache-line-padded cells so hot-path
// increments from concurrent statements do not contend on one cache line;
// reads sum the shards. Gauges and histogram sums store float64 bits in a
// single atomic word. Function-backed collectors (CounterFunc, GaugeFunc)
// read an existing source of truth — e.g. the zoom-in cache's own stats —
// at scrape time instead of double-bookkeeping.
//
// Metric names follow the taxonomy insightnotes_<layer>_<name>{label} and
// are validated at registration; every name used by the engine is declared
// once in names.go (enforced by the scripts/check.sh lint).
//
// Registration is get-or-create: asking twice for the same name with the
// same shape returns the same collector, so independent subsystems sharing
// one registry (engine, server) wire themselves up without coordination.
// Conflicting re-registration (different kind, help, label, or buckets) is
// a programming error and panics.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Metric kinds as rendered in the TYPE line and the SHOW METRICS output.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// nameRE is the insightnotes_<layer>_<name> naming scheme.
var nameRE = regexp.MustCompile(`^insightnotes_[a-z][a-z0-9]*_[a-z][a-z0-9_]*$`)

// DefLatencyBuckets are the default latency buckets in seconds: 100µs to
// 10s, roughly exponential — wide enough for a cross-ocean statement,
// fine enough to see a cache hit.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ---- sharded counter cells ----

// shardCount is the number of counter stripes, a power of two sized to the
// scheduler's parallelism.
var shardCount = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 128 {
		n <<= 1
	}
	return n
}()

// cell is one cache-line-padded counter stripe.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// shardIndex picks a stripe for the calling goroutine. Goroutine stacks
// live on distinct pages, so the page number of a stack-local address is a
// cheap, well-distributed (and per-goroutine mostly stable) shard key. Any
// index is correct — distribution only affects contention, never totals.
func shardIndex() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 12) & uintptr(shardCount-1))
}

// Counter is a monotonically increasing sharded counter. A nil *Counter is
// a valid no-op, so metric handles can be left unset when metrics are
// disabled.
type Counter struct {
	cells []cell
}

func newCounter() *Counter { return &Counter{cells: make([]cell, shardCount)} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.cells[shardIndex()].n.Add(n)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value. A nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; gauges move both ways).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative-on-render histogram. Buckets are
// upper bounds (le); an implicit +Inf bucket catches the overflow. A nil
// *Histogram is a valid no-op.
type Histogram struct {
	upper  []float64
	counts []cell // len(upper)+1; last is +Inf
	sum    Gauge  // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		upper:  buckets,
		counts: make([]cell, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].n.Add(1)
	h.sum.Add(v)
}

// Count is the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.counts {
		total += h.counts[i].n.Load()
	}
	return total
}

// Sum is the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// ---- registry ----

// series is one sample stream: an unlabeled family has a single series
// with an empty label value.
type series struct {
	labelValue string
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	// fn holds a func() float64 for function-backed collectors; atomic so
	// late registration can race with an in-flight scrape.
	fn atomic.Value
}

func (s *series) value() float64 {
	if v := s.fn.Load(); v != nil {
		return v.(func() float64)()
	}
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// family is one named metric with its series (one per label value).
type family struct {
	name    string
	help    string
	kind    string
	label   string // label key; "" = unlabeled
	buckets []float64
	funcSrc bool // function-backed (CounterFunc/GaugeFunc)

	mu     sync.Mutex
	series map[string]*series
	order  []string // label values in registration order
}

func (f *family) get(labelValue string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[labelValue]; ok {
		return s
	}
	s := &series{labelValue: labelValue}
	switch f.kind {
	case KindCounter:
		s.counter = newCounter()
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series[labelValue] = s
	f.order = append(f.order, labelValue)
	return s
}

// snapshot returns the series sorted by label value.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*series, 0, len(f.series))
	vals := append([]string(nil), f.order...)
	sort.Strings(vals)
	for _, v := range vals {
		out = append(out, f.series[v])
	}
	return out
}

// Registry holds the metric families of one engine instance.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register get-or-creates a family, panicking on naming-scheme violations
// or conflicting shape — both are programming errors best caught at start.
func (r *Registry) register(name, help, kind, label string, buckets []float64, funcSrc bool) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: name %q violates the insightnotes_<layer>_<name> scheme", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.label != label || f.help != help || f.funcSrc != funcSrc || len(f.buckets) != len(buckets) {
			panic(fmt.Sprintf("metrics: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		label:   label,
		buckets: buckets,
		funcSrc: funcSrc,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter, "", nil, false).get("").counter
}

// Gauge registers (or returns) an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge, "", nil, false).get("").gauge
}

// CounterFunc registers a counter whose cumulative value is read from fn
// at scrape time — for subsystems that already keep their own counts.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, KindCounter, "", nil, true).get("").fn.Store(fn)
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, KindGauge, "", nil, true).get("").fn.Store(fn)
}

// Histogram registers (or returns) an unlabeled histogram over the given
// bucket upper bounds (ascending; +Inf implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindHistogram, "", buckets, false).get("").hist
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a counter family with one label key.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, KindCounter, label, nil, false)}
}

// With returns the counter of one label value, creating it on first use.
// Callers on hot paths should resolve once and keep the handle.
func (v *CounterVec) With(labelValue string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(labelValue).counter
}

// WithFunc makes one label value's series function-backed: its cumulative
// value is read from fn at scrape time instead of from an owned counter.
func (v *CounterVec) WithFunc(labelValue string, fn func() float64) {
	if v == nil {
		return
	}
	v.f.get(labelValue).fn.Store(fn)
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a gauge family with one label key.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, KindGauge, label, nil, false)}
}

// With returns the gauge of one label value, creating it on first use.
// Callers on hot paths should resolve once and keep the handle.
func (v *GaugeVec) With(labelValue string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(labelValue).gauge
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a histogram family with one label.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, label, buckets, false)}
}

// With returns the histogram of one label value, creating it on first use.
func (v *HistogramVec) With(labelValue string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(labelValue).hist
}

// sortedFamilies returns the families sorted by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Sample is one flattened sample for the in-band SHOW METRICS view. Name
// includes the label pair and, for histograms, the _bucket/_sum/_count
// suffixes — exactly the sample names of the Prometheus exposition.
type Sample struct {
	Name  string
	Type  string
	Value float64
}

// Samples flattens every family into exposition-named samples, sorted by
// family name (series sorted by label value, buckets in ascending order).
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, f := range r.sortedFamilies() {
		for _, s := range f.snapshot() {
			if f.kind == KindHistogram {
				cum := int64(0)
				for i, ub := range s.hist.upper {
					cum += s.hist.counts[i].n.Load()
					out = append(out, Sample{
						Name:  sampleName(f.name+"_bucket", f.label, s.labelValue, formatFloat(ub)),
						Type:  f.kind,
						Value: float64(cum),
					})
				}
				cum += s.hist.counts[len(s.hist.upper)].n.Load()
				out = append(out, Sample{Name: sampleName(f.name+"_bucket", f.label, s.labelValue, "+Inf"), Type: f.kind, Value: float64(cum)})
				out = append(out, Sample{Name: sampleName(f.name+"_sum", f.label, s.labelValue, ""), Type: f.kind, Value: s.hist.Sum()})
				out = append(out, Sample{Name: sampleName(f.name+"_count", f.label, s.labelValue, ""), Type: f.kind, Value: float64(cum)})
				continue
			}
			out = append(out, Sample{Name: sampleName(f.name, f.label, s.labelValue, ""), Type: f.kind, Value: s.value()})
		}
	}
	return out
}
