package metrics

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkCounterInc is the raw hot-path cost of one sharded increment —
// the price every instrumented row batch pays.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("insightnotes_bench_inc_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncParallel measures contention across goroutines — the
// case the per-CPU sharding exists for.
func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("insightnotes_bench_par_total", "bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkPlainAtomicParallel is the unsharded baseline for comparison.
func BenchmarkPlainAtomicParallel(b *testing.B) {
	var n atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n.Add(1)
		}
	})
}

// BenchmarkHistogramObserve is the per-statement latency-record cost.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("insightnotes_bench_seconds", "bench", DefLatencyBuckets)
	d := (350 * time.Microsecond).Seconds()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}
