package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("insightnotes_test_ops_total", "test counter")
	var wg sync.WaitGroup
	const goroutines, perG = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value = %d, want %d", got, goroutines*perG)
	}
}

func TestNilCollectorsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("x").Inc()
	hv.With("x").Observe(1)
	r.Counter("insightnotes_test_nil_total", "x").Inc()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || r.Samples() != nil {
		t.Fatal("nil collectors must be inert")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("insightnotes_test_depth", "test gauge")
	g.Set(3)
	g.Add(2.5)
	g.Add(-1)
	if got := g.Value(); got != 4.5 {
		t.Fatalf("Value = %v, want 4.5", got)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("insightnotes_test_seconds", "test histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 102.65 {
		t.Fatalf("Sum = %v, want 102.65", got)
	}
	// Buckets are le (inclusive upper bounds): 0.05 and 0.1 land in le=0.1,
	// 0.5 in le=1, 2 in le=10, 100 overflows to +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].n.Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestVecIdentityAndGetOrCreate(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("insightnotes_test_kinds_total", "test vec", "kind")
	if v.With("a") != v.With("a") {
		t.Fatal("With must return a stable handle per label value")
	}
	// Re-registration with the same shape returns the same family.
	v2 := r.CounterVec("insightnotes_test_kinds_total", "test vec", "kind")
	v.With("a").Inc()
	if got := v2.With("a").Value(); got != 1 {
		t.Fatalf("re-registered vec sees %d, want 1", got)
	}
}

func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad scheme", func() { r.Counter("requests_total", "no prefix") })
	mustPanic("bad chars", func() { r.Counter("insightnotes_engine_Bad-Name", "caps and dash") })
	mustPanic("missing layer", func() { r.Counter("insightnotes_x", "needs layer and name") })
	r.Counter("insightnotes_test_dup_total", "ok")
	mustPanic("kind conflict", func() { r.Gauge("insightnotes_test_dup_total", "ok") })
	mustPanic("help conflict", func() { r.Counter("insightnotes_test_dup_total", "different help") })
}

func TestDeclaredNamesFollowScheme(t *testing.T) {
	for _, name := range []string{
		NameEngineStatementsTotal, NameEngineStatementErrorsTotal,
		NameEngineStatementSeconds, NameEngineSlowQueriesTotal,
		NameEngineResultRowsTotal, NameEngineAnnotations,
		NameEngineAnnotationBytes, NameEngineEnvelopes,
		NameEngineSummaryBytes, NameEngineDigestEntries,
		NameSummarySummarizeTotal, NameSummaryDigestHitsTotal,
		NameSummaryDigestMissesTotal, NameSummaryRetrainTotal,
		NameExecOpSeconds, NameExecOpRowsTotal, NameExecOpMergesTotal,
		NameExecOpCuratesTotal, NamePlanPlansTotal, NamePlanAccessPathsTotal,
		NameZoominCacheHitsTotal, NameZoominCacheMissesTotal,
		NameZoominCacheEvictionsTotal, NameZoominCachePutsTotal,
		NameZoominCacheRejectedTotal, NameZoominCacheBytes,
		NameZoominCacheEntries, NameZoominRequestsTotal,
		NameZoominCancelledTotal, NameServerConnectionsTotal,
		NameServerActiveConnections, NameServerRequestsTotal,
		NameServerRequestErrorsTotal,
	} {
		if !nameRE.MatchString(name) {
			t.Errorf("declared name %q violates the naming scheme", name)
		}
	}
}

// TestPrometheusGolden pins the exposition format byte-for-byte: metric
// names, HELP/TYPE lines, label rendering, histogram bucket ordering with
// the trailing +Inf, and family sorting. A rename or format drift fails
// here and must be reviewed deliberately.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("insightnotes_test_bravo_total", "a plain counter")
	c.Add(3)
	g := r.Gauge("insightnotes_test_delta", "a gauge")
	g.Set(2.5)
	r.GaugeFunc("insightnotes_test_echo", "a function gauge", func() float64 { return 7 })
	v := r.CounterVec("insightnotes_test_alpha_total", "a labeled counter", "kind")
	v.With("read").Add(2)
	v.With("write").Inc()
	h := r.HistogramVec("insightnotes_test_charlie_seconds", "a labeled histogram", "op", []float64{0.01, 0.1, 1})
	h.With("scan").Observe(0.005)
	h.With("scan").Observe(0.05)
	h.With("scan").Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP insightnotes_test_alpha_total a labeled counter
# TYPE insightnotes_test_alpha_total counter
insightnotes_test_alpha_total{kind="read"} 2
insightnotes_test_alpha_total{kind="write"} 1
# HELP insightnotes_test_bravo_total a plain counter
# TYPE insightnotes_test_bravo_total counter
insightnotes_test_bravo_total 3
# HELP insightnotes_test_charlie_seconds a labeled histogram
# TYPE insightnotes_test_charlie_seconds histogram
insightnotes_test_charlie_seconds_bucket{op="scan",le="0.01"} 1
insightnotes_test_charlie_seconds_bucket{op="scan",le="0.1"} 2
insightnotes_test_charlie_seconds_bucket{op="scan",le="1"} 2
insightnotes_test_charlie_seconds_bucket{op="scan",le="+Inf"} 3
insightnotes_test_charlie_seconds_sum{op="scan"} 5.055
insightnotes_test_charlie_seconds_count{op="scan"} 3
# HELP insightnotes_test_delta a gauge
# TYPE insightnotes_test_delta gauge
insightnotes_test_delta 2.5
# HELP insightnotes_test_echo a function gauge
# TYPE insightnotes_test_echo gauge
insightnotes_test_echo 7
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drift:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSamplesMatchExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("insightnotes_test_foo_total", "c").Add(4)
	h := r.Histogram("insightnotes_test_bar_seconds", "h", []float64{1})
	h.Observe(0.5)
	samples := r.Samples()
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	for name, want := range map[string]float64{
		"insightnotes_test_foo_total":                     4,
		`insightnotes_test_bar_seconds_bucket{le="1"}`:    1,
		`insightnotes_test_bar_seconds_bucket{le="+Inf"}`: 1,
		"insightnotes_test_bar_seconds_sum":               0.5,
		"insightnotes_test_bar_seconds_count":             1,
	} {
		if byName[name] != want {
			t.Errorf("sample %s = %v, want %v (all: %v)", name, byName[name], want, samples)
		}
	}
}
