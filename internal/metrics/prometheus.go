package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with HELP and TYPE
// lines, histogram buckets cumulative and ascending with a trailing +Inf.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.snapshot() {
			if f.kind == KindHistogram {
				writeHistogram(bw, f, s)
				continue
			}
			fmt.Fprintf(bw, "%s %s\n", sampleName(f.name, f.label, s.labelValue, ""), formatFloat(s.value()))
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, f *family, s *series) {
	cum := int64(0)
	for i, ub := range s.hist.upper {
		cum += s.hist.counts[i].n.Load()
		fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_bucket", f.label, s.labelValue, formatFloat(ub)), cum)
	}
	cum += s.hist.counts[len(s.hist.upper)].n.Load()
	fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_bucket", f.label, s.labelValue, "+Inf"), cum)
	fmt.Fprintf(w, "%s %s\n", sampleName(f.name+"_sum", f.label, s.labelValue, ""), formatFloat(s.hist.Sum()))
	fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_count", f.label, s.labelValue, ""), cum)
}

// sampleName assembles a sample name with its optional label pair and the
// histogram le bound: name{label="value",le="0.005"}.
func sampleName(name, label, labelValue, le string) string {
	if (label == "" || labelValue == "") && le == "" {
		return name
	}
	var parts []string
	if label != "" && labelValue != "" {
		parts = append(parts, label+`="`+escapeLabel(labelValue)+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry at an HTTP endpoint in the text exposition
// format. A nil registry (metrics disabled) answers 503.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "metrics disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
