package metrics

// Every metric name the engine registers, declared once. The taxonomy is
// insightnotes_<layer>_<name>{label}; counters end in _total. The
// scripts/check.sh lint rejects any insightnotes_* string literal in
// non-test code that is not declared in this file, so renames happen here
// (and show up in review) or not at all.
const (
	// engine layer — statement execution.
	NameEngineStatementsTotal      = "insightnotes_engine_statements_total"       // counter{kind}
	NameEngineStatementErrorsTotal = "insightnotes_engine_statement_errors_total" // counter{kind}
	NameEngineStatementSeconds     = "insightnotes_engine_statement_seconds"      // histogram{kind}
	NameEngineSlowQueriesTotal     = "insightnotes_engine_slow_queries_total"     // counter
	NameEngineResultRowsTotal      = "insightnotes_engine_result_rows_total"      // counter

	// engine layer — metadata store sizes (gauges).
	NameEngineAnnotations     = "insightnotes_engine_annotations"      // gauge
	NameEngineAnnotationBytes = "insightnotes_engine_annotation_bytes" // gauge
	NameEngineEnvelopes       = "insightnotes_engine_envelopes"        // gauge
	NameEngineSummaryBytes    = "insightnotes_engine_summary_bytes"    // gauge
	NameEngineDigestEntries   = "insightnotes_engine_digest_entries"   // gauge

	// summary layer — maintenance.
	NameSummarySummarizeTotal    = "insightnotes_summary_summarize_total"     // counter (per-instance Summarize calls)
	NameSummaryDigestHitsTotal   = "insightnotes_summary_digest_hits_total"   // counter (summarize-once reuse)
	NameSummaryDigestMissesTotal = "insightnotes_summary_digest_misses_total" // counter
	NameSummaryRetrainTotal      = "insightnotes_summary_retrain_total"       // counter (classifier samples trained)

	// exec layer — per-operator-type pipeline work.
	NameExecOpSeconds      = "insightnotes_exec_op_seconds"       // histogram{op} (sampled timing)
	NameExecOpRowsTotal    = "insightnotes_exec_op_rows_total"    // counter{op}
	NameExecOpBatchesTotal = "insightnotes_exec_op_batches_total" // counter{op}
	NameExecOpMergesTotal  = "insightnotes_exec_op_merges_total"  // counter{op}
	NameExecOpCuratesTotal = "insightnotes_exec_op_curates_total" // counter{op}

	// exec layer — morsel-driven parallel scans.
	NameExecScanMorselsTotal = "insightnotes_exec_scan_morsels_total" // counter (morsels processed by workers)
	NameExecScanWorkersTotal = "insightnotes_exec_scan_workers_total" // counter (worker goroutines launched)

	// bufferpool layer — frame cache over the page store. These counters
	// predate the _total convention in ISSUE 6's acceptance wording and are
	// pinned to these exact names.
	NameBufferpoolHits      = "insightnotes_bufferpool_hits"      // counter (pins served from a resident frame)
	NameBufferpoolMisses    = "insightnotes_bufferpool_misses"    // counter (pins that fetched the page from the store)
	NameBufferpoolEvictions = "insightnotes_bufferpool_evictions" // counter (unpinned frames evicted to make room)

	// plan layer — planning decisions.
	NamePlanPlansTotal       = "insightnotes_plan_plans_total"        // counter
	NamePlanAccessPathsTotal = "insightnotes_plan_access_paths_total" // counter{path}

	// plancache layer — the engine plan cache behind prepared statements
	// and repeated ad-hoc SELECTs. Like the bufferpool counters, these
	// names come verbatim from ISSUE 10's acceptance wording and are
	// pinned without the _total suffix.
	NamePlancacheHits      = "insightnotes_plancache_hits"      // counter (executions served from a cached template + path memo)
	NamePlancacheMisses    = "insightnotes_plancache_misses"    // counter (cacheable statements that had to parse and cost)
	NamePlancacheEvictions = "insightnotes_plancache_evictions" // counter (entries evicted past the LRU capacity)
	NamePlancacheEntries   = "insightnotes_plancache_entries"   // gauge (templates currently cached)

	// zoomin layer — RCO materialization cache and zoom-in execution.
	NameZoominCacheHitsTotal      = "insightnotes_zoomin_cache_hits_total"      // counter
	NameZoominCacheMissesTotal    = "insightnotes_zoomin_cache_misses_total"    // counter
	NameZoominCacheEvictionsTotal = "insightnotes_zoomin_cache_evictions_total" // counter
	NameZoominCachePutsTotal      = "insightnotes_zoomin_cache_puts_total"      // counter
	NameZoominCacheRejectedTotal  = "insightnotes_zoomin_cache_rejected_total"  // counter (results larger than the budget)
	NameZoominCacheBytes          = "insightnotes_zoomin_cache_bytes"           // gauge
	NameZoominCacheEntries        = "insightnotes_zoomin_cache_entries"         // gauge
	NameZoominRequestsTotal       = "insightnotes_zoomin_requests_total"        // counter
	NameZoominCancelledTotal      = "insightnotes_zoomin_cancelled_total"       // counter

	// server layer — network front end.
	NameServerConnectionsTotal   = "insightnotes_server_connections_total"    // counter
	NameServerActiveConnections  = "insightnotes_server_active_connections"   // gauge
	NameServerRequestsTotal      = "insightnotes_server_requests_total"       // counter
	NameServerRequestErrorsTotal = "insightnotes_server_request_errors_total" // counter
	NameServerPanicsTotal        = "insightnotes_server_panics_total"         // counter (statements that panicked and were isolated)

	// admission layer — statement concurrency limiting and load shedding.
	NameAdmissionQueuedTotal    = "insightnotes_admission_queued_total"     // counter (statements that waited for a slot)
	NameAdmissionShedTotal      = "insightnotes_admission_shed_total"       // counter (statements shed from the wait queue: timeout or deadline)
	NameAdmissionRejectedTotal  = "insightnotes_admission_rejected_total"   // counter (statements rejected outright: queue full)
	NameAdmissionWaitSeconds    = "insightnotes_admission_wait_seconds"     // histogram (queue wait of admitted statements)
	NameServerConnsRefusedTotal = "insightnotes_server_conns_refused_total" // counter (connections refused at the -max-conns cap)

	// wal layer — durability: append log, checkpointing, and recovery.
	NameWALAppendsTotal        = "insightnotes_wal_appends_total"         // counter (records committed)
	NameWALAppendErrorsTotal   = "insightnotes_wal_append_errors_total"   // counter
	NameWALBytesTotal          = "insightnotes_wal_bytes_total"           // counter (framed bytes committed)
	NameWALFsyncSeconds        = "insightnotes_wal_fsync_seconds"         // histogram (commit fsync latency)
	NameWALSizeBytes           = "insightnotes_wal_size_bytes"            // gauge (current log size)
	NameWALLastLSN             = "insightnotes_wal_last_lsn"              // gauge
	NameWALCheckpointsTotal    = "insightnotes_wal_checkpoints_total"     // counter
	NameWALCheckpointSeconds   = "insightnotes_wal_checkpoint_seconds"    // histogram
	NameWALRecoveryReplayed    = "insightnotes_wal_recovery_replayed"     // gauge (records replayed at last startup)
	NameWALRecoverySkipped     = "insightnotes_wal_recovery_skipped"      // gauge (stale records skipped by LSN at last startup)
	NameWALRecoveryTornTotal   = "insightnotes_wal_recovery_torn_total"   // counter (torn tails truncated at startup: 0 or 1 per process)
	NameWALSnapshotLoadedTotal = "insightnotes_wal_snapshot_loaded_total" // counter (startups that recovered from a snapshot)

	// engine layer — degraded summary maintenance (overload protection).
	NameMaintenancePendingTasks  = "insightnotes_maintenance_pending_tasks"  // gauge (deferred tasks queued for catch-up)
	NameMaintenanceDeferredTotal = "insightnotes_maintenance_deferred_total" // counter (tasks deferred to the background worker)
	NameMaintenanceAppliedTotal  = "insightnotes_maintenance_applied_total"  // counter (deferred tasks applied by the worker)
	NameMaintenanceDegraded      = "insightnotes_maintenance_degraded"       // gauge (1 while deferring, 0 when fresh)
	NameSummaryStaleUpdatesTotal = "insightnotes_summary_stale_updates"      // gauge{instance} (pending updates per summary instance)

	// wal layer — group commit (batched commit fsyncs).
	NameWALGroupCommitBatchesTotal = "insightnotes_wal_group_commit_batches_total" // counter (commit fsyncs covering ≥1 record)
	NameWALGroupCommitRecordsTotal = "insightnotes_wal_group_commit_records_total" // counter (records that shared a commit fsync)

	// trace layer — statement lifecycle tracing (collection and retention).
	NameTraceStartedTotal    = "insightnotes_trace_started_total"     // counter (traces begun)
	NameTraceRetainedTotal   = "insightnotes_trace_retained_total"    // counter (completed traces admitted to the ring)
	NameTraceSampledOutTotal = "insightnotes_trace_sampled_out_total" // counter (ordinary traces dropped by the tail sampler)
	NameTraceEvictedTotal    = "insightnotes_trace_evicted_total"     // counter (retained traces evicted by the ring bound)
	NameTraceResident        = "insightnotes_trace_resident"          // gauge (traces currently retained)

	// repl layer — WAL-shipping replication. Sender side (primary):
	// stream/snapshot volume, per-stream failures, and the fleet-lag
	// floor. Receiver side (replica): apply volume, reconnect/resync
	// churn, and the staleness the replica serves reads at. Shed counters
	// live on the replica's server front end.
	NameReplConnectedReplicas   = "insightnotes_repl_connected_replicas"    // gauge (streams currently attached to the sender)
	NameReplRecordsSentTotal    = "insightnotes_repl_records_sent_total"    // counter (records streamed to replicas, all streams)
	NameReplSnapshotsSentTotal  = "insightnotes_repl_snapshots_sent_total"  // counter (full-snapshot resyncs served)
	NameReplSendErrorsTotal     = "insightnotes_repl_send_errors_total"     // counter (streams dropped on write/handshake failure)
	NameReplAckedLSNMin         = "insightnotes_repl_acked_lsn_min"         // gauge (lowest acknowledged LSN across replicas; 0 with none attached)
	NameReplRecordsAppliedTotal = "insightnotes_repl_records_applied_total" // counter (records applied by this replica)
	NameReplApplyErrorsTotal    = "insightnotes_repl_apply_errors_total"    // counter (apply batches that failed)
	NameReplResyncsTotal        = "insightnotes_repl_resyncs_total"         // counter (full snapshots installed by this replica)
	NameReplReconnectsTotal     = "insightnotes_repl_reconnects_total"      // counter (stream reconnect attempts after the first)
	NameReplLagRecords          = "insightnotes_repl_lag_records"           // gauge (primary tip LSN minus applied LSN)
	NameReplLagSeconds          = "insightnotes_repl_lag_seconds"           // gauge (age of the replica's last caught-up contact)
	NameReplStaleShedsTotal     = "insightnotes_repl_stale_sheds_total"     // counter (reads shed with STALE past -max-staleness)
	NameReplReadOnlyTotal       = "insightnotes_repl_read_only_total"       // counter (mutations rejected by a read-only replica)

	// integrity layer — checksums, the online scrubber, and repair. Like the
	// bufferpool counters, these names come verbatim from ISSUE 9's
	// acceptance wording and are pinned without the _total suffix.
	NameIntegrityPagesScanned     = "insightnotes_integrity_pages_scanned"     // counter (pages swept by the scrubber or CHECK TABLE)
	NameIntegrityChecksumFailures = "insightnotes_integrity_checksum_failures" // counter (pages whose stored CRC or structure failed verification)
	NameIntegrityRepairs          = "insightnotes_integrity_repairs"           // counter (pages repaired: reflushed, rebuilt locally, or refetched)
	NameIntegrityQuarantined      = "insightnotes_integrity_quarantined"       // gauge (pages currently quarantined, awaiting a repair source)

	// process layer — build identity and age.
	NameBuildInfo            = "insightnotes_build_info"             // gauge{version} (always 1)
	NameProcessUptimeSeconds = "insightnotes_process_uptime_seconds" // gauge
)
