package sql

import (
	"fmt"
	"strings"

	"insightnotes/internal/types"
)

// Statement is any parsed SQL or InsightNotes statement.
type Statement interface {
	stmtNode()
	String() string
}

// Expr is any scalar expression.
type Expr interface {
	exprNode()
	String() string
}

// ---- expressions ----

// Literal is a constant value.
type Literal struct{ Val types.Value }

// ColRef references a column, possibly qualified ("r.a").
type ColRef struct{ Name string }

// BinaryExpr applies a binary operator: comparison (= <> < <= > >=),
// arithmetic (+ - * /), logical (AND OR), or LIKE.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string
	X  Expr
}

// IsNullExpr tests X IS [NOT] NULL.
type IsNullExpr struct {
	X      Expr
	Negate bool
}

// FuncCall is an aggregate call: COUNT/SUM/AVG/MIN/MAX. Star marks
// COUNT(*).
type FuncCall struct {
	Name string // upper-cased
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

// InExpr tests X [NOT] IN (list).
type InExpr struct {
	X      Expr
	List   []Expr
	Negate bool
}

// BetweenExpr tests X [NOT] BETWEEN Lo AND Hi (inclusive).
type BetweenExpr struct {
	X, Lo, Hi Expr
	Negate    bool
}

// SummaryCall is a summary-based predicate term (§2.1: "filtering,
// joining, or sorting the data tuples according to summary-based
// predicates"):
//
//	SUMMARY_COUNT(instance, 'Label') — classifier count of one label
//	SUMMARY_TOTAL(instance)          — annotations contributing to the object
//	SUMMARY_GROUPS(instance)         — number of cluster groups
//
// It evaluates against the summary envelope a tuple carries at that point
// in the pipeline.
type SummaryCall struct {
	Func     string // upper-cased: SUMMARY_COUNT, SUMMARY_TOTAL, SUMMARY_GROUPS
	Instance string
	Label    string // SUMMARY_COUNT only
}

// Param is a positional placeholder ($1, $2, ...) in a prepared
// statement. Index is 1-based. A Param survives only until EXECUTE binds
// it: BindParams substitutes a Literal before planning, so the planner,
// compiler, and executor never see one.
type Param struct{ Index int }

func (*Literal) exprNode()     {}
func (*Param) exprNode()       {}
func (*ColRef) exprNode()      {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*IsNullExpr) exprNode()  {}
func (*FuncCall) exprNode()    {}
func (*SummaryCall) exprNode() {}
func (*InExpr) exprNode()      {}
func (*BetweenExpr) exprNode() {}

// String implements Expr.
func (e *Literal) String() string { return e.Val.SQLString() }

// String implements Expr.
func (e *Param) String() string { return fmt.Sprintf("$%d", e.Index) }

// String implements Expr.
func (e *ColRef) String() string { return e.Name }

// String implements Expr.
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// String implements Expr.
func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", e.X)
	}
	return fmt.Sprintf("(%s%s)", e.Op, e.X)
}

// String implements Expr.
func (e *IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

// String implements Expr.
func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	return fmt.Sprintf("%s(%s)", e.Name, e.Arg)
}

// String implements Expr.
func (e *InExpr) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(e.X.String())
	if e.Negate {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	for i, it := range e.List {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString("))")
	return b.String()
}

// String implements Expr.
func (e *BetweenExpr) String() string {
	neg := ""
	if e.Negate {
		neg = "NOT "
	}
	return fmt.Sprintf("(%s %sBETWEEN %s AND %s)", e.X, neg, e.Lo, e.Hi)
}

// String implements Expr.
func (e *SummaryCall) String() string {
	if e.Func == "SUMMARY_COUNT" {
		return fmt.Sprintf("%s(%s, '%s')", e.Func, e.Instance, strings.ReplaceAll(e.Label, "'", "''"))
	}
	return fmt.Sprintf("%s(%s)", e.Func, e.Instance)
}

// ---- statements ----

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind types.Kind
}

// CreateTable is CREATE TABLE name (col TYPE, ...).
type CreateTable struct {
	Name string
	Cols []ColumnDef
}

// CreateIndex is CREATE INDEX ON table (col).
type CreateIndex struct {
	Table  string
	Column string
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Insert is INSERT INTO table VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Expr
}

// Explain is EXPLAIN [ANALYZE] SELECT ...: report the physical plan (the
// operator tree with its summary-manipulation stages). With ANALYZE the
// query is executed and each operator is annotated with its runtime
// statistics (rows produced, envelope merges/curates, wall time).
type Explain struct {
	Query   *Select
	Analyze bool
}

// Update is UPDATE table SET col = expr, ... [WHERE cond]. Annotations
// remain attached to updated tuples (they annotate tuple identity).
type Update struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM table [WHERE cond]. Deleting a tuple detaches its
// annotations; annotations attached nowhere else are removed entirely.
type Delete struct {
	Table string
	Where Expr
}

// DropAnnotation is DROP ANNOTATION id: retract one raw annotation and
// curate its effect out of every maintained summary object.
type DropAnnotation struct {
	ID int
}

// TableRef names a relation in FROM, optionally aliased.
type TableRef struct {
	Name  string
	Alias string
}

// EffectiveAlias returns the alias, or the table name when unaliased.
func (r TableRef) EffectiveAlias() string {
	if r.Alias != "" {
		return r.Alias
	}
	return r.Name
}

// JoinClause is an explicit [INNER] JOIN ref ON cond.
type JoinClause struct {
	Ref TableRef
	On  Expr
}

// SelectItem is one projection item: an expression with optional alias, or
// a star (optionally qualified, "r.*").
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement over one or more relations.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = no limit
}

// AddAnnotation is the InsightNotes annotation-ingestion statement:
//
//	ADD ANNOTATION 'text' [TITLE '...'] [DOCUMENT '...'] [AUTHOR '...']
//	    ON table[(col, ...)] [WHERE cond];
//
// The annotation attaches to the named columns (whole row when omitted) of
// every tuple satisfying the condition.
type AddAnnotation struct {
	Text     string
	Title    string
	Document string
	Author   string
	Table    string
	Columns  []string
	Where    Expr
}

// CreateSummaryInstance is
//
//	CREATE SUMMARY INSTANCE name TYPE Classifier|Cluster|Snippet
//	    [WITH (key = value, ...)] [LABELS ('a', 'b', ...)];
type CreateSummaryInstance struct {
	Name    string
	Type    string
	Labels  []string
	Options map[string]types.Value // lower-cased keys
}

// DropSummaryInstance is DROP SUMMARY INSTANCE name.
type DropSummaryInstance struct{ Name string }

// TrainSummary feeds labeled examples to a classifier instance:
//
//	TRAIN SUMMARY name ('sample text', 'Label'), (...);
type TrainSummary struct {
	Name    string
	Samples [][2]string // text, label
}

// LinkSummary is LINK SUMMARY instance TO table (or UNLINK ... FROM ...).
type LinkSummary struct {
	Instance string
	Table    string
	Unlink   bool
}

// ZoomIn is the paper's zoom-in command (Figure 3):
//
//	ZOOMIN REFERENCE QID n [WHERE cond] ON instance INDEX k;
type ZoomIn struct {
	QID      int
	Where    Expr
	Instance string
	Index    int
}

// Prepare is PREPARE name AS <statement>: parse and register a statement
// template whose expressions may contain positional placeholders
// ($1...$n), for later EXECUTE. Text is the template's SQL (everything
// after AS), kept verbatim so the engine can key its plan cache on it.
type Prepare struct {
	Name string
	Stmt Statement
	Text string
}

// Execute is EXECUTE name [USING expr, ...] (or the parenthesized
// EXECUTE name (expr, ...) form): run a prepared statement with the
// given argument values bound to its placeholders. Arguments must be
// constant expressions (literals, possibly negated).
type Execute struct {
	Name string
	Args []Expr
}

// Deallocate is DEALLOCATE [PREPARE] name: drop a prepared statement.
type Deallocate struct{ Name string }

// BulkInsert is BULK INSERT INTO table VALUES (...), (...): the
// COPY-style ingest path. Unlike Insert it takes the statement lock
// once for the whole batch, stages one batched WAL record, and feeds
// downstream maintenance in batches.
type BulkInsert struct {
	Table string
	Rows  [][]Expr
}

// Checkpoint is CHECKPOINT: persist a snapshot of the full database
// state to the durability directory and rotate the write-ahead log.
// Errors when the engine was opened without durability.
type Checkpoint struct{}

// CheckTable is CHECK TABLE t: synchronously verify every page of the
// table's heap (checksums and structural invariants) and every secondary
// index against it, attempting repair of anything found corrupt.
type CheckTable struct {
	Table string
}

// Show is SHOW TABLES | SHOW SUMMARIES | SHOW ANNOTATIONS ON table |
// SHOW METRICS [LIKE 'pat'] | SHOW TRACES [LIMIT n] | SHOW TRACE id |
// SHOW INTEGRITY.
type Show struct {
	What  string // "TABLES", "SUMMARIES", "ANNOTATIONS", "METRICS", "TRACES", "TRACE", "INTEGRITY"
	Table string
	// Pattern is the optional LIKE filter of SHOW METRICS, matched against
	// flattened sample names.
	Pattern string
	// Limit bounds SHOW TRACES output (0 = engine default).
	Limit int
	// TraceID is the id argument of SHOW TRACE.
	TraceID string
}

func (*Explain) stmtNode()               {}
func (*Update) stmtNode()                {}
func (*Delete) stmtNode()                {}
func (*DropAnnotation) stmtNode()        {}
func (*CreateTable) stmtNode()           {}
func (*CreateIndex) stmtNode()           {}
func (*DropTable) stmtNode()             {}
func (*Insert) stmtNode()                {}
func (*Select) stmtNode()                {}
func (*AddAnnotation) stmtNode()         {}
func (*CreateSummaryInstance) stmtNode() {}
func (*DropSummaryInstance) stmtNode()   {}
func (*TrainSummary) stmtNode()          {}
func (*LinkSummary) stmtNode()           {}
func (*ZoomIn) stmtNode()                {}
func (*Show) stmtNode()                  {}
func (*Checkpoint) stmtNode()            {}
func (*CheckTable) stmtNode()            {}
func (*Prepare) stmtNode()               {}
func (*Execute) stmtNode()               {}
func (*Deallocate) stmtNode()            {}
func (*BulkInsert) stmtNode()            {}

// String implements Statement.
func (s *Prepare) String() string {
	return fmt.Sprintf("PREPARE %s AS %s", s.Name, s.Stmt)
}

// String implements Statement.
func (s *Execute) String() string {
	var b strings.Builder
	b.WriteString("EXECUTE " + s.Name)
	if len(s.Args) > 0 {
		b.WriteString(" USING ")
		for i, a := range s.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	return b.String()
}

// String implements Statement.
func (s *Deallocate) String() string { return "DEALLOCATE " + s.Name }

// String implements Statement.
func (s *BulkInsert) String() string {
	return fmt.Sprintf("BULK INSERT INTO %s VALUES ... (%d rows)", s.Table, len(s.Rows))
}

// String implements Statement.
func (s *Checkpoint) String() string { return "CHECKPOINT" }

// String implements Statement.
func (s *CheckTable) String() string { return "CHECK TABLE " + s.Table }

// String implements Statement.
func (s *CreateTable) String() string {
	cols := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = c.Name + " " + c.Kind.String()
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", s.Name, strings.Join(cols, ", "))
}

// String implements Statement.
func (s *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX ON %s (%s)", s.Table, s.Column)
}

// String implements Statement.
func (s *DropTable) String() string { return "DROP TABLE " + s.Name }

// String implements Statement.
func (s *Insert) String() string {
	return fmt.Sprintf("INSERT INTO %s VALUES ... (%d rows)", s.Table, len(s.Rows))
}

// String implements Statement.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.StarTable != "":
			b.WriteString(it.StarTable + ".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, r := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.Name)
		if r.Alias != "" {
			b.WriteString(" " + r.Alias)
		}
	}
	for _, j := range s.Joins {
		fmt.Fprintf(&b, " JOIN %s", j.Ref.Name)
		if j.Ref.Alias != "" {
			b.WriteString(" " + j.Ref.Alias)
		}
		fmt.Fprintf(&b, " ON %s", j.On)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		fmt.Fprintf(&b, " HAVING %s", s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// String implements Statement.
func (s *Explain) String() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Query.String()
	}
	return "EXPLAIN " + s.Query.String()
}

// String implements Statement.
func (s *Update) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UPDATE %s SET ", s.Table)
	for i, c := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", c.Column, c.Value)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	return b.String()
}

// String implements Statement.
func (s *Delete) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += fmt.Sprintf(" WHERE %s", s.Where)
	}
	return out
}

// String implements Statement.
func (s *DropAnnotation) String() string {
	return fmt.Sprintf("DROP ANNOTATION %d", s.ID)
}

// String implements Statement.
func (s *AddAnnotation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ADD ANNOTATION '%s' ON %s", s.Text, s.Table)
	if len(s.Columns) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(s.Columns, ", "))
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	return b.String()
}

// String implements Statement.
func (s *CreateSummaryInstance) String() string {
	return fmt.Sprintf("CREATE SUMMARY INSTANCE %s TYPE %s", s.Name, s.Type)
}

// String implements Statement.
func (s *DropSummaryInstance) String() string { return "DROP SUMMARY INSTANCE " + s.Name }

// String implements Statement.
func (s *TrainSummary) String() string {
	return fmt.Sprintf("TRAIN SUMMARY %s (%d samples)", s.Name, len(s.Samples))
}

// String implements Statement.
func (s *LinkSummary) String() string {
	if s.Unlink {
		return fmt.Sprintf("UNLINK SUMMARY %s FROM %s", s.Instance, s.Table)
	}
	return fmt.Sprintf("LINK SUMMARY %s TO %s", s.Instance, s.Table)
}

// String implements Statement.
func (s *ZoomIn) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ZOOMIN REFERENCE QID %d", s.QID)
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	fmt.Fprintf(&b, " ON %s INDEX %d", s.Instance, s.Index)
	return b.String()
}

// String implements Statement.
func (s *Show) String() string {
	switch {
	case s.What == "ANNOTATIONS":
		return "SHOW ANNOTATIONS ON " + s.Table
	case s.What == "METRICS" && s.Pattern != "":
		return "SHOW METRICS LIKE '" + s.Pattern + "'"
	case s.What == "TRACES" && s.Limit > 0:
		return fmt.Sprintf("SHOW TRACES LIMIT %d", s.Limit)
	case s.What == "TRACE":
		return "SHOW TRACE " + s.TraceID
	}
	return "SHOW " + s.What
}
