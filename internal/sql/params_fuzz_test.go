package sql

import (
	"strings"
	"testing"

	"insightnotes/internal/types"
)

// FuzzParsePlaceholders drives the $n placeholder path end to end: any
// input that parses must yield a template whose placeholder set validates
// (NumParams), binds cleanly with the right number of arguments, and
// renders to text that re-parses with zero remaining placeholders — the
// invariant EXECUTE relies on when it hands bound.String() to the zoom-in
// re-execution path.
func FuzzParsePlaceholders(f *testing.F) {
	// Pinned corpus: every placeholder position the grammar admits, plus
	// the malformed shapes that must fail fast instead of panicking.
	for _, seed := range []string{
		"SELECT a FROM t WHERE a = $1",
		"SELECT a, b FROM t WHERE a = $1 AND b < $2 ORDER BY a",
		"SELECT a FROM t WHERE a IN ($1, $2, $3)",
		"SELECT a FROM t WHERE a BETWEEN $1 AND $2",
		"SELECT a FROM t WHERE a = $1 OR a = $1",
		"SELECT $1 FROM t",
		"SELECT a FROM t JOIN u ON t.a = u.b WHERE t.a = $1",
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > $1",
		"INSERT INTO t VALUES ($1, $2)",
		"BULK INSERT INTO t VALUES ($1, $2), ($3, $4)",
		"UPDATE t SET a = $1 WHERE b = $2",
		"DELETE FROM t WHERE a = $1",
		"PREPARE p AS SELECT a FROM t WHERE a = $1",
		"EXECUTE p USING 1, 'x'",
		"EXECUTE p (1)",
		"DEALLOCATE p",
		"SELECT a FROM t WHERE a = $2",  // gap: $2 without $1
		"SELECT a FROM t WHERE a = $0",  // out of range
		"SELECT a FROM t WHERE a = $",   // bare dollar
		"SELECT a FROM t WHERE a = $1x", // trailing junk
		"EXECUTE",                       // truncated
		"PREPARE p AS",                  // truncated template
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are the bug
		}
		n, err := NumParams(stmt)
		if err != nil {
			return // non-contiguous placeholder set, correctly refused
		}
		args := make([]types.Value, n)
		for i := range args {
			args[i] = types.NewInt(int64(i + 1))
		}
		bound, err := BindParams(stmt, args)
		if err != nil {
			t.Fatalf("BindParams(%q, %d args) after NumParams ok: %v", input, n, err)
		}
		if m, err := NumParams(bound); err != nil || m != 0 {
			t.Fatalf("bound statement for %q still has %d placeholder(s) (err %v)", input, m, err)
		}
		// The template must be untouched by binding.
		if m, _ := NumParams(stmt); m != n {
			t.Fatalf("binding mutated template of %q: NumParams %d -> %d", input, n, m)
		}
		// Bound rendering must round-trip through the parser — this is the
		// invariant the engine's zoom-in re-execution leans on. It only
		// holds for statements with a faithful String(): Insert and
		// BulkInsert deliberately elide their row lists in renderings
		// (trace labels must stay bounded), and Prepare's Text field
		// captures source offsets.
		switch bound.(type) {
		case *Prepare, *Insert, *BulkInsert:
			return
		}
		if n == 0 {
			return
		}
		text := bound.String()
		re, err := Parse(text)
		if err != nil {
			t.Fatalf("bound rendering %q of %q does not re-parse: %v", text, input, err)
		}
		if m, err := NumParams(re); err != nil || m != 0 {
			t.Fatalf("re-parsed bound text %q has %d placeholder(s)", text, m)
		}
	})
}

// TestBindParamsSharesLeaves pins the binder's cloning contract: interior
// expression spines are copied (never mutated in place), placeholder-free
// leaf nodes are shared with the immutable template, and Param leaves are
// replaced by fresh Literals.
func TestBindParamsSharesLeaves(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE a = $1 AND b = 'fixed'")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	bound, err := BindParams(stmt, []types.Value{types.NewInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	bsel := bound.(*Select)
	if bsel == sel {
		t.Fatal("binding returned the template itself")
	}
	top := sel.Where.(*BinaryExpr)
	btop := bsel.Where.(*BinaryExpr)
	if top == btop {
		t.Fatal("binding shared the WHERE spine, want a clone")
	}
	right, bright := top.R.(*BinaryExpr), btop.R.(*BinaryExpr)
	if right.L != bright.L || right.R != bright.R {
		t.Error("placeholder-free leaves were cloned, want shared with the template")
	}
	left, bleft := top.L.(*BinaryExpr), btop.L.(*BinaryExpr)
	if _, stillParam := bleft.R.(*Param); stillParam {
		t.Fatal("placeholder survived binding")
	}
	if _, wasParam := left.R.(*Param); !wasParam {
		t.Fatal("template placeholder was mutated by binding")
	}
	if !strings.Contains(bound.String(), "= 7") {
		t.Errorf("bound rendering %q does not inline the argument", bound.String())
	}
}
