// Package sql implements the engine's SQL front end: a lexer, the AST, and
// a recursive-descent parser for the SQL subset the executor supports plus
// the InsightNotes extension statements — ADD ANNOTATION, CREATE SUMMARY
// INSTANCE, TRAIN SUMMARY, LINK/UNLINK SUMMARY, ZOOMIN, and SHOW.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokOp    // operators and punctuation: = <> != < <= > >= + - * / ( ) , ; .
	TokParam // positional placeholder: $1, $2, ... (Text holds the digits)
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokenKind
	Text string // identifiers are kept verbatim; keyword matching is case-insensitive
	Pos  int
}

// Lexer splits a statement string into tokens.
type Lexer struct {
	src  string
	pos  int
	toks []Token
}

// Lex tokenizes src, returning an error with position on bad input.
func Lex(src string) ([]Token, error) {
	l := &Lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.Kind == TokEOF {
			return l.toks, nil
		}
	}
}

func (l *Lexer) next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// -- line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TokEOF, Pos: l.pos + 1}, nil
scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start + 1}, nil
	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if d < '0' || d > '9' {
				break
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start + 1}, nil
	case c == '\'':
		var b strings.Builder
		l.pos++
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'') // escaped quote
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: b.String(), Pos: start + 1}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return Token{}, fmt.Errorf("sql: unterminated string at position %d", start+1)
	case c == '$':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		if l.pos == start+1 {
			return Token{}, fmt.Errorf("sql: '$' must be followed by a parameter number at position %d", start+1)
		}
		return Token{Kind: TokParam, Text: l.src[start+1 : l.pos], Pos: start + 1}, nil
	case strings.ContainsRune("=<>!+-*/(),;.", rune(c)):
		// Two-character operators first.
		if l.pos+1 < len(l.src) {
			two := l.src[l.pos : l.pos+2]
			switch two {
			case "<>", "!=", "<=", ">=":
				l.pos += 2
				return Token{Kind: TokOp, Text: two, Pos: start + 1}, nil
			}
		}
		l.pos++
		op := string(c)
		if op == "!" {
			return Token{}, fmt.Errorf("sql: unexpected '!' at position %d", start+1)
		}
		return Token{Kind: TokOp, Text: op, Pos: start + 1}, nil
	default:
		return Token{}, fmt.Errorf("sql: unexpected character %q at position %d", c, start+1)
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// keywords is the reserved-word set; identifiers matching these
// case-insensitively are treated as keywords by the parser.
var keywords = map[string]bool{}

func init() {
	for _, k := range []string{
		"SELECT", "EXPLAIN", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
		"ORDER", "ASC", "DESC", "LIMIT", "JOIN", "INNER", "ON", "AS",
		"AND", "OR", "NOT", "LIKE", "IS", "NULL", "TRUE", "FALSE", "IN", "BETWEEN",
		"CREATE", "TABLE", "INDEX", "DROP", "INSERT", "INTO", "VALUES",
		"ANNOTATION", "ADD", "UPDATE", "SET", "DELETE", "TITLE", "DOCUMENT", "AUTHOR", "SUMMARY",
		"INSTANCE", "TYPE", "WITH", "LABELS", "TRAIN", "LINK", "UNLINK",
		"TO", "ZOOMIN", "REFERENCE", "QID", "SHOW", "TABLES", "SUMMARIES", "METRICS", "CHECKPOINT",
		"ANNOTATIONS", "COUNT", "SUM", "AVG", "MIN", "MAX",
		"CHECK", "INTEGRITY",
		"PREPARE", "EXECUTE", "DEALLOCATE", "BULK", "USING",
	} {
		keywords[k] = true
	}
}

// IsKeyword reports whether ident is reserved.
func IsKeyword(ident string) bool { return keywords[strings.ToUpper(ident)] }
