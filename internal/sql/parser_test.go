package sql

import (
	"strings"
	"testing"

	"insightnotes/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func mustFail(t *testing.T, src string) {
	t.Helper()
	if _, err := Parse(src); err == nil {
		t.Errorf("Parse(%q) succeeded, want error", src)
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT r.a, 'it''s' FROM R -- comment\n WHERE x >= 1.5;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if texts[0] != "SELECT" || texts[1] != "r" || texts[2] != "." || texts[3] != "a" {
		t.Errorf("texts = %v", texts)
	}
	// Escaped quote.
	found := false
	for i, k := range kinds {
		if k == TokString && texts[i] == "it's" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped string not lexed: %v", texts)
	}
	// >= as one token.
	found = false
	for i, k := range kinds {
		if k == TokOp && texts[i] == ">=" {
			found = true
		}
	}
	if !found {
		t.Errorf(">= split: %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "a ! b", "a @ b"} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) succeeded", bad)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, "CREATE TABLE birds (id INT, name TEXT, wingspan FLOAT, rare BOOL)")
	ct := s.(*CreateTable)
	if ct.Name != "birds" || len(ct.Cols) != 4 {
		t.Fatalf("%+v", ct)
	}
	if ct.Cols[2].Kind != types.KindFloat || ct.Cols[3].Kind != types.KindBool {
		t.Errorf("kinds = %+v", ct.Cols)
	}
	mustFail(t, "CREATE TABLE t (a BLOB)")
	mustFail(t, "CREATE TABLE t ()")
	mustFail(t, "CREATE TABLE (a INT)")
}

func TestParseCreateIndexAndDrop(t *testing.T) {
	s := mustParse(t, "CREATE INDEX ON birds (name)")
	ci := s.(*CreateIndex)
	if ci.Table != "birds" || ci.Column != "name" {
		t.Errorf("%+v", ci)
	}
	d := mustParse(t, "DROP TABLE birds").(*DropTable)
	if d.Name != "birds" {
		t.Errorf("%+v", d)
	}
	ds := mustParse(t, "DROP SUMMARY INSTANCE SimCluster").(*DropSummaryInstance)
	if ds.Name != "SimCluster" {
		t.Errorf("%+v", ds)
	}
	mustFail(t, "DROP VIEW v")
}

func TestParseInsert(t *testing.T) {
	s := mustParse(t, "INSERT INTO birds VALUES (1, 'Swan Goose', 1.8), (2, 'Mute Swan', -2.1)")
	ins := s.(*Insert)
	if ins.Table != "birds" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("%+v", ins)
	}
	lit := ins.Rows[1][2].(*UnaryExpr)
	if lit.Op != "-" {
		t.Errorf("negative literal = %+v", lit)
	}
	mustFail(t, "INSERT birds VALUES (1)")
	mustFail(t, "INSERT INTO birds VALUES 1, 2")
}

func TestParseSelectPaperQuery(t *testing.T) {
	// The exact query from Figure 2 of the paper.
	s := mustParse(t, "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2")
	sel := s.(*Select)
	if len(sel.Items) != 3 || sel.Items[0].Expr.(*ColRef).Name != "r.a" {
		t.Fatalf("items = %+v", sel.Items)
	}
	if len(sel.From) != 2 || sel.From[0].EffectiveAlias() != "r" || sel.From[1].Name != "S" {
		t.Fatalf("from = %+v", sel.From)
	}
	and := sel.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("where = %v", sel.Where)
	}
	eq := and.L.(*BinaryExpr)
	if eq.Op != "=" || eq.L.(*ColRef).Name != "r.a" || eq.R.(*ColRef).Name != "s.x" {
		t.Errorf("join predicate = %v", eq)
	}
}

func TestParseSelectFullClause(t *testing.T) {
	s := mustParse(t, `SELECT DISTINCT species, COUNT(*) AS n, AVG(wingspan)
		FROM birds b JOIN obs o ON b.id = o.bird_id
		WHERE b.wingspan > 1.0 AND o.region LIKE 'north%'
		GROUP BY species HAVING COUNT(*) > 2
		ORDER BY n DESC, species LIMIT 10`)
	sel := s.(*Select)
	if !sel.Distinct || len(sel.Items) != 3 {
		t.Fatalf("%+v", sel)
	}
	if sel.Items[1].Alias != "n" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Ref.EffectiveAlias() != "o" {
		t.Errorf("joins = %+v", sel.Joins)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Errorf("group/having missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
	agg := sel.Items[1].Expr.(*FuncCall)
	if agg.Name != "COUNT" || !agg.Star {
		t.Errorf("agg = %+v", agg)
	}
}

func TestParseSelectStars(t *testing.T) {
	s := mustParse(t, "SELECT * FROM birds").(*Select)
	if !s.Items[0].Star || s.Items[0].StarTable != "" {
		t.Errorf("%+v", s.Items[0])
	}
	s = mustParse(t, "SELECT b.*, name FROM birds b").(*Select)
	if !s.Items[0].Star || s.Items[0].StarTable != "b" {
		t.Errorf("%+v", s.Items[0])
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a + 2 * 3 = 7 OR NOT b < 1 AND c IS NOT NULL").(*Select)
	// OR binds loosest: (a+2*3=7) OR ((NOT b<1) AND (c IS NOT NULL))
	or := s.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %v", s.Where)
	}
	eq := or.L.(*BinaryExpr)
	if eq.Op != "=" {
		t.Fatalf("left = %v", or.L)
	}
	plus := eq.L.(*BinaryExpr)
	if plus.Op != "+" || plus.R.(*BinaryExpr).Op != "*" {
		t.Errorf("arithmetic precedence: %v", eq.L)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("right = %v", or.R)
	}
	if _, ok := and.L.(*UnaryExpr); !ok {
		t.Errorf("NOT missing: %v", and.L)
	}
	isn := and.R.(*IsNullExpr)
	if !isn.Negate {
		t.Errorf("IS NOT NULL: %+v", isn)
	}
}

func TestParseNotEqualsNormalized(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a != 1").(*Select)
	if s.Where.(*BinaryExpr).Op != "<>" {
		t.Errorf("!= not normalized: %v", s.Where)
	}
}

func TestParseAddAnnotation(t *testing.T) {
	s := mustParse(t, `ADD ANNOTATION 'size seems wrong' AUTHOR 'dxiao'
		ON birds (wingspan, weight) WHERE name = 'Swan Goose'`)
	a := s.(*AddAnnotation)
	if a.Text != "size seems wrong" || a.Author != "dxiao" || a.Table != "birds" {
		t.Fatalf("%+v", a)
	}
	if len(a.Columns) != 2 || a.Columns[1] != "weight" {
		t.Errorf("columns = %v", a.Columns)
	}
	if a.Where == nil {
		t.Error("where missing")
	}
	// Whole-row document annotation.
	s = mustParse(t, `ADD ANNOTATION 'see article' TITLE 'Wikipedia: Swan Goose'
		DOCUMENT 'The swan goose is a large goose...' ON birds WHERE id = 1`)
	a = s.(*AddAnnotation)
	if a.Title == "" || a.Document == "" || len(a.Columns) != 0 {
		t.Errorf("%+v", a)
	}
	mustFail(t, "ADD ANNOTATION ON birds")
	mustFail(t, "ADD ANNOTATION 'x' birds")
}

func TestParseCreateSummaryInstance(t *testing.T) {
	s := mustParse(t, `CREATE SUMMARY INSTANCE ClassBird1 TYPE Classifier
		LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')`)
	c := s.(*CreateSummaryInstance)
	if c.Name != "ClassBird1" || c.Type != "Classifier" || len(c.Labels) != 4 {
		t.Fatalf("%+v", c)
	}
	s = mustParse(t, `CREATE SUMMARY INSTANCE SimCluster TYPE Cluster
		WITH (threshold = 0.35, mergebysim = TRUE)`)
	c = s.(*CreateSummaryInstance)
	if c.Options["threshold"].Float() != 0.35 || !c.Options["mergebysim"].Bool() {
		t.Errorf("options = %+v", c.Options)
	}
	s = mustParse(t, "CREATE SUMMARY INSTANCE T1 TYPE Snippet WITH (sentences = 3)")
	c = s.(*CreateSummaryInstance)
	if c.Options["sentences"].Int() != 3 {
		t.Errorf("options = %+v", c.Options)
	}
	mustFail(t, "CREATE SUMMARY INSTANCE x")
	mustFail(t, "CREATE SUMMARY x TYPE Cluster")
}

func TestParseTrainSummary(t *testing.T) {
	s := mustParse(t, `TRAIN SUMMARY ClassBird1
		('found eating stonewort', 'Behavior'),
		('avian influenza detected', 'Disease')`)
	tr := s.(*TrainSummary)
	if tr.Name != "ClassBird1" || len(tr.Samples) != 2 {
		t.Fatalf("%+v", tr)
	}
	if tr.Samples[1][1] != "Disease" {
		t.Errorf("samples = %v", tr.Samples)
	}
	mustFail(t, "TRAIN SUMMARY x 'text'")
}

func TestParseLinkUnlink(t *testing.T) {
	l := mustParse(t, "LINK SUMMARY SimCluster TO birds").(*LinkSummary)
	if l.Instance != "SimCluster" || l.Table != "birds" || l.Unlink {
		t.Errorf("%+v", l)
	}
	u := mustParse(t, "UNLINK SUMMARY SimCluster FROM birds").(*LinkSummary)
	if !u.Unlink {
		t.Errorf("%+v", u)
	}
	mustFail(t, "LINK SUMMARY a FROM b")
	mustFail(t, "UNLINK SUMMARY a TO b")
}

func TestParseZoomInPaperCommands(t *testing.T) {
	// Figure 3(a): ZoomIn Reference QID = 101 Where C1 = 'x'
	// On NaiveBayesClass Index 1.
	s := mustParse(t, "ZoomIn Reference QID = 101 Where C1 = 'x' On NaiveBayesClass Index 1")
	z := s.(*ZoomIn)
	if z.QID != 101 || z.Instance != "NaiveBayesClass" || z.Index != 1 || z.Where == nil {
		t.Fatalf("%+v", z)
	}
	// Figure 3(b): ZoomIn Reference QID = 101 Where C3 = 5 On TextSummary Index 2.
	s = mustParse(t, "ZOOMIN REFERENCE QID 101 WHERE C3 = 5 ON TextSummary INDEX 2")
	z = s.(*ZoomIn)
	if z.QID != 101 || z.Index != 2 {
		t.Fatalf("%+v", z)
	}
	// WHERE is optional.
	z = mustParse(t, "ZOOMIN REFERENCE QID 7 ON SimCluster INDEX 3").(*ZoomIn)
	if z.Where != nil || z.QID != 7 {
		t.Errorf("%+v", z)
	}
	mustFail(t, "ZOOMIN QID 1 ON x INDEX 1")
	mustFail(t, "ZOOMIN REFERENCE QID 1 ON x")
}

func TestParseShow(t *testing.T) {
	if s := mustParse(t, "SHOW TABLES").(*Show); s.What != "TABLES" {
		t.Errorf("%+v", s)
	}
	if s := mustParse(t, "SHOW SUMMARIES").(*Show); s.What != "SUMMARIES" {
		t.Errorf("%+v", s)
	}
	s := mustParse(t, "SHOW ANNOTATIONS ON birds").(*Show)
	if s.What != "ANNOTATIONS" || s.Table != "birds" {
		t.Errorf("%+v", s)
	}
	if s := mustParse(t, "SHOW METRICS").(*Show); s.What != "METRICS" || s.Pattern != "" {
		t.Errorf("%+v", s)
	}
	s = mustParse(t, "SHOW METRICS LIKE 'insightnotes_zoomin_%'").(*Show)
	if s.What != "METRICS" || s.Pattern != "insightnotes_zoomin_%" {
		t.Errorf("%+v", s)
	}
	if got := s.String(); got != "SHOW METRICS LIKE 'insightnotes_zoomin_%'" {
		t.Errorf("round-trip: %q", got)
	}
	mustFail(t, "SHOW METRICS LIKE")
	mustFail(t, "SHOW INDEXES")
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT a FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, err := ParseAll(";;;"); err == nil {
		t.Error("empty script accepted")
	}
	if _, err := ParseAll("SELECT a FROM t SELECT b FROM u"); err == nil {
		t.Error("missing semicolon accepted")
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	// String output of a SELECT must re-parse to an equivalent statement.
	src := "SELECT DISTINCT r.a AS x, COUNT(*) FROM R r JOIN S s ON r.a = s.b WHERE r.a > 1 GROUP BY r.a ORDER BY r.a DESC LIMIT 5"
	s1 := mustParse(t, src)
	s2 := mustParse(t, s1.String())
	if s1.String() != s2.String() {
		t.Errorf("round trip:\n%s\nvs\n%s", s1, s2)
	}
	// Smoke-test String on the extension statements.
	for _, src := range []string{
		"ADD ANNOTATION 'x' ON t (a) WHERE a = 1",
		"CREATE SUMMARY INSTANCE c TYPE Cluster",
		"LINK SUMMARY c TO t",
		"UNLINK SUMMARY c FROM t",
		"ZOOMIN REFERENCE QID 3 ON c INDEX 1",
		"SHOW ANNOTATIONS ON t",
		"CREATE TABLE t (a INT)",
		"CREATE INDEX ON t (a)",
		"DROP TABLE t",
		"DROP SUMMARY INSTANCE c",
		"INSERT INTO t VALUES (1)",
		"TRAIN SUMMARY c ('a', 'b')",
	} {
		if got := mustParse(t, src).String(); !strings.Contains(got, " ") {
			t.Errorf("String(%q) = %q", src, got)
		}
	}
}

func TestParseInAndBetween(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN ('x')").(*Select)
	and := s.Where.(*BinaryExpr)
	in := and.L.(*InExpr)
	if in.Negate || len(in.List) != 3 {
		t.Fatalf("%+v", in)
	}
	notIn := and.R.(*InExpr)
	if !notIn.Negate || len(notIn.List) != 1 {
		t.Fatalf("%+v", notIn)
	}
	s = mustParse(t, "SELECT a FROM t WHERE a BETWEEN 1 AND 5 OR b NOT BETWEEN 0.5 AND 1.5").(*Select)
	or := s.Where.(*BinaryExpr)
	bt := or.L.(*BetweenExpr)
	if bt.Negate || bt.Lo.(*Literal).Val.Int() != 1 || bt.Hi.(*Literal).Val.Int() != 5 {
		t.Fatalf("%+v", bt)
	}
	if !or.R.(*BetweenExpr).Negate {
		t.Fatalf("%+v", or.R)
	}
	// String renders round-trip.
	src := "SELECT a FROM t WHERE (a IN (1, 2)) AND (b NOT BETWEEN 1 AND 2)"
	if got := mustParse(t, src).String(); mustParse(t, got).String() != got {
		t.Errorf("round trip failed: %q", got)
	}
	mustFail(t, "SELECT a FROM t WHERE a IN 1")
	mustFail(t, "SELECT a FROM t WHERE a IN ()")
	mustFail(t, "SELECT a FROM t WHERE a BETWEEN 1")
	mustFail(t, "SELECT a FROM t WHERE a NOT 5")
}

func TestParseSummaryCalls(t *testing.T) {
	s := mustParse(t, "SELECT id FROM t WHERE SUMMARY_COUNT(ClassBird1, 'Disease') > 5").(*Select)
	cmp := s.Where.(*BinaryExpr)
	call := cmp.L.(*SummaryCall)
	if call.Func != "SUMMARY_COUNT" || call.Instance != "ClassBird1" || call.Label != "Disease" {
		t.Fatalf("%+v", call)
	}
	s = mustParse(t, "SELECT id FROM t ORDER BY summary_total(C) DESC").(*Select)
	oc := s.OrderBy[0].Expr.(*SummaryCall)
	if oc.Func != "SUMMARY_TOTAL" || oc.Instance != "C" {
		t.Fatalf("%+v", oc)
	}
	s = mustParse(t, "SELECT id FROM t WHERE SUMMARY_GROUPS(S) = 2").(*Select)
	gc := s.Where.(*BinaryExpr).L.(*SummaryCall)
	if gc.Func != "SUMMARY_GROUPS" {
		t.Fatalf("%+v", gc)
	}
	// String round-trips.
	src := "SELECT id FROM t WHERE (SUMMARY_COUNT(C, 'a''b') > 1)"
	if got := mustParse(t, src).String(); mustParse(t, got).String() != got {
		t.Errorf("round trip failed: %q", got)
	}
	mustFail(t, "SELECT id FROM t WHERE SUMMARY_COUNT(C) > 1")       // missing label
	mustFail(t, "SELECT id FROM t WHERE SUMMARY_TOTAL('C') > 1")     // label as instance
	mustFail(t, "SELECT id FROM t WHERE SUMMARY_GROUPS(C, 'x') = 1") // extra arg
}

func TestParseKeywordAsIdentifierRejected(t *testing.T) {
	mustFail(t, "CREATE TABLE select (a INT)")
	mustFail(t, "SELECT from FROM t")
}

func TestParseExplain(t *testing.T) {
	s := mustParse(t, "EXPLAIN SELECT a FROM t")
	ex, ok := s.(*Explain)
	if !ok || ex.Analyze {
		t.Fatalf("got %#v, want plain Explain", s)
	}
	s = mustParse(t, "EXPLAIN ANALYZE SELECT a FROM t WHERE a > 1")
	ex, ok = s.(*Explain)
	if !ok || !ex.Analyze {
		t.Fatalf("got %#v, want Explain{Analyze: true}", s)
	}
	// String round-trips through the parser.
	if got := mustParse(t, ex.String()).String(); got != ex.String() {
		t.Errorf("round trip failed: %q vs %q", got, ex.String())
	}
	mustFail(t, "EXPLAIN ANALYZE INSERT INTO t VALUES (1)")
	mustFail(t, "EXPLAIN ANALYZE ANALYZE SELECT a FROM t")
}
