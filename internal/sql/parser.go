package sql

import (
	"fmt"
	"strconv"
	"strings"

	"insightnotes/internal/types"
)

// Parser consumes a token stream into statements.
type Parser struct {
	src  string
	toks []Token
	pos  int
}

// Parse parses a single statement (a trailing semicolon is optional).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script into statements.
func ParseAll(src string) ([]Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{src: src, toks: toks}
	var stmts []Statement
	for {
		for p.acceptOp(";") {
		}
		if p.peek().Kind == TokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().Kind != TokEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sql: empty input")
	}
	return stmts, nil
}

// ---- token helpers ----

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// isKeyword reports whether the current token is the given keyword.
func (p *Parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *Parser) acceptOp(op string) bool {
	t := p.peek()
	if t.Kind == TokOp && t.Text == op {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

// expectIdent consumes a non-keyword identifier.
func (p *Parser) expectIdent(what string) (string, error) {
	t := p.peek()
	if t.Kind != TokIdent || IsKeyword(t.Text) {
		return "", p.errf("expected %s", what)
	}
	p.advance()
	return t.Text, nil
}

// expectString consumes a string literal.
func (p *Parser) expectString(what string) (string, error) {
	t := p.peek()
	if t.Kind != TokString {
		return "", p.errf("expected %s (a 'string')", what)
	}
	p.advance()
	return t.Text, nil
}

// expectInt consumes an integer literal.
func (p *Parser) expectInt(what string) (int, error) {
	t := p.peek()
	if t.Kind != TokNumber || strings.Contains(t.Text, ".") {
		return 0, p.errf("expected %s (an integer)", what)
	}
	p.advance()
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.Text)
	}
	return n, nil
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.peek()
	loc := fmt.Sprintf("position %d", t.Pos)
	if t.Kind == TokEOF {
		loc = "end of input"
	}
	got := t.Text
	if got == "" {
		got = "<eof>"
	}
	return fmt.Errorf("sql: %s at %s (got %q)", fmt.Sprintf(format, args...), loc, got)
}

// ---- statements ----

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("EXPLAIN"):
		p.advance()
		analyze := p.acceptKeyword("ANALYZE")
		if !p.isKeyword("SELECT") {
			return nil, p.errf("EXPLAIN supports [ANALYZE] SELECT statements")
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Query: sel.(*Select), Analyze: analyze}, nil
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("DROP"):
		return p.parseDrop()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("BULK"):
		return p.parseBulkInsert()
	case p.isKeyword("PREPARE"):
		return p.parsePrepare()
	case p.isKeyword("EXECUTE"):
		return p.parseExecute()
	case p.isKeyword("DEALLOCATE"):
		return p.parseDeallocate()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("ADD"):
		return p.parseAddAnnotation()
	case p.isKeyword("TRAIN"):
		return p.parseTrainSummary()
	case p.isKeyword("LINK"), p.isKeyword("UNLINK"):
		return p.parseLinkSummary()
	case p.isKeyword("ZOOMIN"):
		return p.parseZoomIn()
	case p.isKeyword("SHOW"):
		return p.parseShow()
	case p.isKeyword("CHECKPOINT"):
		p.advance()
		return &Checkpoint{}, nil
	case p.isKeyword("CHECK"):
		p.advance()
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		return &CheckTable{Table: name}, nil
	default:
		return nil, p.errf("expected a statement")
	}
}

func (p *Parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex()
	case p.acceptKeyword("SUMMARY"):
		if err := p.expectKeyword("INSTANCE"); err != nil {
			return nil, err
		}
		return p.parseCreateSummaryInstance()
	default:
		return nil, p.errf("expected TABLE, INDEX, or SUMMARY INSTANCE after CREATE")
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cname, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		t := p.peek()
		if t.Kind != TokIdent {
			return nil, p.errf("expected column type")
		}
		kind, err := types.KindFromName(t.Text)
		if err != nil {
			return nil, p.errf("unknown column type %q", t.Text)
		}
		p.advance()
		cols = append(cols, ColumnDef{Name: cname, Kind: kind})
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTable{Name: name, Cols: cols}, nil
}

func (p *Parser) parseCreateIndex() (Statement, error) {
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent("column name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Table: table, Column: col}, nil
}

func (p *Parser) parseCreateSummaryInstance() (Statement, error) {
	name, err := p.expectIdent("instance name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TYPE"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errf("expected summary type name")
	}
	p.advance()
	stmt := &CreateSummaryInstance{Name: name, Type: t.Text, Options: map[string]types.Value{}}
	for {
		switch {
		case p.acceptKeyword("WITH"):
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				k, err := p.expectIdent("option name")
				if err != nil {
					return nil, err
				}
				if err := p.expectOp("="); err != nil {
					return nil, err
				}
				v, err := p.parseLiteralValue()
				if err != nil {
					return nil, err
				}
				stmt.Options[strings.ToLower(k)] = v
				if p.acceptOp(",") {
					continue
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				break
			}
		case p.acceptKeyword("LABELS"):
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				l, err := p.expectString("class label")
				if err != nil {
					return nil, err
				}
				stmt.Labels = append(stmt.Labels, l)
				if p.acceptOp(",") {
					continue
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				break
			}
		default:
			return stmt, nil
		}
	}
}

// parseLiteralValue parses a bare literal (number, string, TRUE/FALSE/NULL)
// used in WITH options and VALUES rows via parseExpr's literal path.
func (p *Parser) parseLiteralValue() (types.Value, error) {
	t := p.peek()
	switch {
	case t.Kind == TokString:
		p.advance()
		return types.NewString(t.Text), nil
	case t.Kind == TokNumber:
		p.advance()
		return numberValue(t.Text)
	case p.acceptKeyword("TRUE"):
		return types.NewBool(true), nil
	case p.acceptKeyword("FALSE"):
		return types.NewBool(false), nil
	case p.acceptKeyword("NULL"):
		return types.Null(), nil
	case t.Kind == TokOp && t.Text == "-":
		p.advance()
		n := p.peek()
		if n.Kind != TokNumber {
			return types.Value{}, p.errf("expected number after '-'")
		}
		p.advance()
		v, err := numberValue(n.Text)
		if err != nil {
			return types.Value{}, err
		}
		if v.Kind() == types.KindInt {
			return types.NewInt(-v.Int()), nil
		}
		return types.NewFloat(-v.Float()), nil
	default:
		return types.Value{}, p.errf("expected a literal value")
	}
}

func numberValue(text string) (types.Value, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("sql: bad number %q", text)
		}
		return types.NewFloat(f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return types.Value{}, fmt.Errorf("sql: bad number %q", text)
	}
	return types.NewInt(n), nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &Update{Table: table}
	for {
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Column: col, Value: val})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	switch {
	case p.acceptKeyword("ANNOTATION"):
		id, err := p.expectInt("annotation id")
		if err != nil {
			return nil, err
		}
		return &DropAnnotation{ID: id}, nil
	case p.acceptKeyword("TABLE"):
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.acceptKeyword("SUMMARY"):
		if err := p.expectKeyword("INSTANCE"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent("instance name")
		if err != nil {
			return nil, err
		}
		return &DropSummaryInstance{Name: name}, nil
	default:
		return nil, p.errf("expected TABLE, ANNOTATION, or SUMMARY INSTANCE after DROP")
	}
}

func (p *Parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	table, rows, err := p.parseInsertBody()
	if err != nil {
		return nil, err
	}
	return &Insert{Table: table, Rows: rows}, nil
}

// parseBulkInsert parses BULK INSERT INTO table VALUES (...), (...) —
// the same grammar as INSERT, dispatched to the batched ingest path.
func (p *Parser) parseBulkInsert() (Statement, error) {
	p.advance() // BULK
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	table, rows, err := p.parseInsertBody()
	if err != nil {
		return nil, err
	}
	return &BulkInsert{Table: table, Rows: rows}, nil
}

// parseInsertBody parses INTO table VALUES (...), (...) — the shared
// tail of INSERT and BULK INSERT (the leading keyword(s) are consumed).
func (p *Parser) parseInsertBody() (string, [][]Expr, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return "", nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return "", nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return "", nil, err
	}
	var rows [][]Expr
	for {
		if err := p.expectOp("("); err != nil {
			return "", nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return "", nil, err
			}
			row = append(row, e)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return "", nil, err
			}
			break
		}
		rows = append(rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return table, rows, nil
}

// parsePrepare parses PREPARE name AS <statement>. The template's SQL
// text (everything after AS) is captured verbatim for plan-cache keying.
func (p *Parser) parsePrepare() (Statement, error) {
	p.advance() // PREPARE
	name, err := p.expectIdent("prepared-statement name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	start := p.peek().Pos - 1
	if start < 0 || start > len(p.src) {
		start = len(p.src)
	}
	switch {
	case p.isKeyword("PREPARE"):
		return nil, p.errf("PREPARE cannot nest")
	case p.isKeyword("EXECUTE"), p.isKeyword("DEALLOCATE"):
		return nil, p.errf("cannot prepare %s", strings.ToUpper(p.peek().Text))
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	end := len(p.src)
	if t := p.peek(); t.Kind != TokEOF && t.Pos-1 >= start && t.Pos-1 <= len(p.src) {
		end = t.Pos - 1
	}
	text := strings.TrimSpace(p.src[start:end])
	return &Prepare{Name: name, Stmt: stmt, Text: text}, nil
}

// parseExecute parses EXECUTE name [USING expr, ...], also accepting the
// parenthesized EXECUTE name (expr, ...) form.
func (p *Parser) parseExecute() (Statement, error) {
	p.advance() // EXECUTE
	name, err := p.expectIdent("prepared-statement name")
	if err != nil {
		return nil, err
	}
	stmt := &Execute{Name: name}
	paren := false
	switch {
	case p.acceptKeyword("USING"):
	case p.acceptOp("("):
		paren = true
		if p.acceptOp(")") {
			return stmt, nil
		}
	default:
		return stmt, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Args = append(stmt.Args, e)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if paren {
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// parseDeallocate parses DEALLOCATE [PREPARE] name.
func (p *Parser) parseDeallocate() (Statement, error) {
	p.advance() // DEALLOCATE
	p.acceptKeyword("PREPARE")
	name, err := p.expectIdent("prepared-statement name")
	if err != nil {
		return nil, err
	}
	return &Deallocate{Name: name}, nil
}

func (p *Parser) parseSelect() (Statement, error) {
	p.advance() // SELECT
	s := &Select{Limit: -1}
	s.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, ref)
		if !p.acceptOp(",") {
			break
		}
	}
	for p.acceptKeyword("INNER") || p.isKeyword("JOIN") {
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, JoinClause{Ref: ref, On: cond})
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.expectInt("limit")
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	return s, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// "*" or "t.*"
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	t := p.peek()
	if t.Kind == TokIdent && !IsKeyword(t.Text) &&
		p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
		p.pos += 3
		return SelectItem{Star: true, StarTable: t.Text}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent("alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent && !IsKeyword(t.Text) {
		p.advance()
		item.Alias = t.Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent("table name")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent("alias")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent && !IsKeyword(t.Text) {
		p.advance()
		ref.Alias = t.Text
	}
	return ref, nil
}

func (p *Parser) parseAddAnnotation() (Statement, error) {
	p.advance() // ADD
	if err := p.expectKeyword("ANNOTATION"); err != nil {
		return nil, err
	}
	text, err := p.expectString("annotation text")
	if err != nil {
		return nil, err
	}
	stmt := &AddAnnotation{Text: text}
	for {
		switch {
		case p.acceptKeyword("TITLE"):
			if stmt.Title, err = p.expectString("title"); err != nil {
				return nil, err
			}
		case p.acceptKeyword("DOCUMENT"):
			if stmt.Document, err = p.expectString("document"); err != nil {
				return nil, err
			}
		case p.acceptKeyword("AUTHOR"):
			if stmt.Author, err = p.expectString("author"); err != nil {
				return nil, err
			}
		default:
			goto on
		}
	}
on:
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if stmt.Table, err = p.expectIdent("table name"); err != nil {
		return nil, err
	}
	if p.acceptOp("(") {
		for {
			c, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, c)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *Parser) parseTrainSummary() (Statement, error) {
	p.advance() // TRAIN
	if err := p.expectKeyword("SUMMARY"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("instance name")
	if err != nil {
		return nil, err
	}
	stmt := &TrainSummary{Name: name}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		text, err := p.expectString("sample text")
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(","); err != nil {
			return nil, err
		}
		label, err := p.expectString("class label")
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Samples = append(stmt.Samples, [2]string{text, label})
		if !p.acceptOp(",") {
			break
		}
	}
	return stmt, nil
}

func (p *Parser) parseLinkSummary() (Statement, error) {
	unlink := p.isKeyword("UNLINK")
	p.advance() // LINK or UNLINK
	if err := p.expectKeyword("SUMMARY"); err != nil {
		return nil, err
	}
	inst, err := p.expectIdent("instance name")
	if err != nil {
		return nil, err
	}
	if unlink {
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
	} else {
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	return &LinkSummary{Instance: inst, Table: table, Unlink: unlink}, nil
}

func (p *Parser) parseZoomIn() (Statement, error) {
	p.advance() // ZOOMIN
	if err := p.expectKeyword("REFERENCE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("QID"); err != nil {
		return nil, err
	}
	// Accept both "QID 101" and "QID = 101".
	p.acceptOp("=")
	qid, err := p.expectInt("query id")
	if err != nil {
		return nil, err
	}
	stmt := &ZoomIn{QID: qid}
	if p.acceptKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if stmt.Instance, err = p.expectIdent("summary instance name"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	if stmt.Index, err = p.expectInt("element index"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseShow() (Statement, error) {
	p.advance() // SHOW
	switch {
	case p.acceptKeyword("TABLES"):
		return &Show{What: "TABLES"}, nil
	case p.acceptKeyword("SUMMARIES"):
		return &Show{What: "SUMMARIES"}, nil
	case p.acceptKeyword("ANNOTATIONS"):
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		return &Show{What: "ANNOTATIONS", Table: table}, nil
	case p.acceptKeyword("METRICS"):
		s := &Show{What: "METRICS"}
		if p.acceptKeyword("LIKE") {
			pattern, err := p.expectString("metric name pattern")
			if err != nil {
				return nil, err
			}
			s.Pattern = pattern
		}
		return s, nil
	case p.acceptKeyword("TRACES"):
		s := &Show{What: "TRACES"}
		if p.acceptKeyword("LIMIT") {
			n, err := p.expectInt("trace limit")
			if err != nil {
				return nil, err
			}
			s.Limit = n
		}
		return s, nil
	case p.acceptKeyword("TRACE"):
		// Trace ids ("t" + 16 hex digits) lex as ordinary identifiers.
		id, err := p.expectIdent("trace id")
		if err != nil {
			return nil, err
		}
		return &Show{What: "TRACE", TraceID: id}, nil
	case p.acceptKeyword("INTEGRITY"):
		return &Show{What: "INTEGRITY"}, nil
	default:
		return nil, p.errf("expected TABLES, SUMMARIES, ANNOTATIONS, METRICS, TRACES, TRACE, or INTEGRITY after SHOW")
	}
}

// ---- expressions (precedence climbing) ----

// parseExpr parses OR-level expressions.
func (p *Parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Negate: neg}, nil
	}
	if p.acceptKeyword("LIKE") {
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "LIKE", L: left, R: right}, nil
	}
	// Postfix [NOT] IN / [NOT] BETWEEN.
	negate := false
	if p.isKeyword("NOT") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokIdent &&
		(strings.EqualFold(p.toks[p.pos+1].Text, "IN") || strings.EqualFold(p.toks[p.pos+1].Text, "BETWEEN")) {
		p.advance()
		negate = true
	}
	if p.acceptKeyword("IN") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &InExpr{X: left, Negate: negate}
		for {
			item, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, item)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			break
		}
		return in, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Negate: negate}, nil
	}
	if negate {
		return nil, p.errf("expected IN or BETWEEN after NOT")
	}
	for _, op := range []string{"<>", "!=", "<=", ">=", "=", "<", ">"} {
		if p.acceptOp(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			normalized := op
			if op == "!=" {
				normalized = "<>"
			}
			return &BinaryExpr{Op: normalized, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "+", L: left, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "-", L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "*", L: left, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "/", L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

// aggregateFuncs are the supported aggregate names.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// summaryFuncs are the summary-based predicate functions of §2.1.
var summaryFuncs = map[string]bool{
	"SUMMARY_COUNT": true, "SUMMARY_TOTAL": true, "SUMMARY_GROUPS": true,
}

// parseSummaryCall parses SUMMARY_COUNT(instance, 'Label'),
// SUMMARY_TOTAL(instance), or SUMMARY_GROUPS(instance). The leading
// function name token has been peeked but not consumed.
func (p *Parser) parseSummaryCall(fn string) (Expr, error) {
	p.advance()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	inst, err := p.expectIdent("summary instance name")
	if err != nil {
		return nil, err
	}
	call := &SummaryCall{Func: fn, Instance: inst}
	if fn == "SUMMARY_COUNT" {
		if err := p.expectOp(","); err != nil {
			return nil, err
		}
		if call.Label, err = p.expectString("class label"); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		v, err := numberValue(t.Text)
		if err != nil {
			return nil, err
		}
		return &Literal{Val: v}, nil
	case t.Kind == TokString:
		p.advance()
		return &Literal{Val: types.NewString(t.Text)}, nil
	case t.Kind == TokParam:
		p.advance()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 1 {
			return nil, p.errf("bad parameter number $%s", t.Text)
		}
		return &Param{Index: n}, nil
	case p.acceptKeyword("TRUE"):
		return &Literal{Val: types.NewBool(true)}, nil
	case p.acceptKeyword("FALSE"):
		return &Literal{Val: types.NewBool(false)}, nil
	case p.acceptKeyword("NULL"):
		return &Literal{Val: types.Null()}, nil
	case t.Kind == TokOp && t.Text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		upper := strings.ToUpper(t.Text)
		if summaryFuncs[upper] {
			return p.parseSummaryCall(upper)
		}
		if aggregateFuncs[upper] {
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			if upper == "COUNT" && p.acceptOp("*") {
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &FuncCall{Name: "COUNT", Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: upper, Arg: arg}, nil
		}
		if IsKeyword(t.Text) {
			return nil, p.errf("unexpected keyword %q in expression", t.Text)
		}
		p.advance()
		name := t.Text
		// Qualified reference t.col.
		if p.acceptOp(".") {
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			name = name + "." + col
		}
		return &ColRef{Name: name}, nil
	default:
		return nil, p.errf("expected an expression")
	}
}
