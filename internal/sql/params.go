package sql

import (
	"fmt"

	"insightnotes/internal/types"
)

// This file implements the parameter-binding half of prepared statements.
// A parsed template may contain Param placeholders anywhere a scalar
// expression is allowed; before planning, BindParams substitutes each one
// with a Literal carrying the EXECUTE-supplied value. Binding clones only
// the expression spines it rewrites — subtrees without placeholders are
// shared with the template, which stays immutable and reusable across
// concurrent EXECUTEs.

// NumParams returns the number of placeholders a statement template
// expects (the highest $n index), validating that the set of indexes is
// exactly $1..$n with no gaps.
func NumParams(stmt Statement) (int, error) {
	seen := map[int]bool{}
	max := 0
	walkStatementExprs(stmt, func(e Expr) {
		if p, ok := e.(*Param); ok {
			seen[p.Index] = true
			if p.Index > max {
				max = p.Index
			}
		}
	})
	for i := 1; i <= max; i++ {
		if !seen[i] {
			return 0, fmt.Errorf("sql: statement uses $%d but not $%d", max, i)
		}
	}
	return max, nil
}

// BindParams returns stmt with every Param placeholder replaced by the
// corresponding Literal from args (args[0] binds $1). The template is
// never mutated; when it holds no placeholders and args is empty, it is
// returned as-is.
func BindParams(stmt Statement, args []types.Value) (Statement, error) {
	n, err := NumParams(stmt)
	if err != nil {
		return nil, err
	}
	if len(args) != n {
		return nil, fmt.Errorf("sql: statement expects %d parameter(s), got %d", n, len(args))
	}
	if n == 0 {
		return stmt, nil
	}
	b := &binder{args: args}
	return b.statement(stmt), nil
}

type binder struct{ args []types.Value }

func (b *binder) statement(stmt Statement) Statement {
	switch s := stmt.(type) {
	case *Select:
		return b.selectStmt(s)
	case *Explain:
		out := *s
		out.Query = b.selectStmt(s.Query)
		return &out
	case *Insert:
		out := *s
		out.Rows = b.rows(s.Rows)
		return &out
	case *BulkInsert:
		out := *s
		out.Rows = b.rows(s.Rows)
		return &out
	case *Update:
		out := *s
		out.Set = make([]SetClause, len(s.Set))
		for i, c := range s.Set {
			out.Set[i] = SetClause{Column: c.Column, Value: b.expr(c.Value)}
		}
		out.Where = b.expr(s.Where)
		return &out
	case *Delete:
		out := *s
		out.Where = b.expr(s.Where)
		return &out
	case *AddAnnotation:
		out := *s
		out.Where = b.expr(s.Where)
		return &out
	case *ZoomIn:
		out := *s
		out.Where = b.expr(s.Where)
		return &out
	case *Execute:
		// A placeholder may stand in an EXECUTE argument position (the
		// one-shot client binding path can wrap an EXECUTE); bind it like
		// any other expression list.
		out := *s
		out.Args = b.exprs(s.Args)
		return &out
	default:
		// No expression positions — nothing to bind.
		return stmt
	}
}

func (b *binder) selectStmt(s *Select) *Select {
	if s == nil {
		return nil
	}
	out := *s
	out.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		out.Items[i] = it
		out.Items[i].Expr = b.expr(it.Expr)
	}
	out.Joins = make([]JoinClause, len(s.Joins))
	for i, j := range s.Joins {
		out.Joins[i] = JoinClause{Ref: j.Ref, On: b.expr(j.On)}
	}
	out.Where = b.expr(s.Where)
	out.GroupBy = b.exprs(s.GroupBy)
	out.Having = b.expr(s.Having)
	out.OrderBy = make([]OrderItem, len(s.OrderBy))
	for i, o := range s.OrderBy {
		out.OrderBy[i] = OrderItem{Expr: b.expr(o.Expr), Desc: o.Desc}
	}
	return &out
}

func (b *binder) rows(rows [][]Expr) [][]Expr {
	out := make([][]Expr, len(rows))
	for i, row := range rows {
		out[i] = b.exprs(row)
	}
	return out
}

func (b *binder) exprs(list []Expr) []Expr {
	if list == nil {
		return nil
	}
	out := make([]Expr, len(list))
	for i, e := range list {
		out[i] = b.expr(e)
	}
	return out
}

func (b *binder) expr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Param:
		return &Literal{Val: b.args[x.Index-1]}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: b.expr(x.L), R: b.expr(x.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: b.expr(x.X)}
	case *IsNullExpr:
		return &IsNullExpr{X: b.expr(x.X), Negate: x.Negate}
	case *FuncCall:
		return &FuncCall{Name: x.Name, Arg: b.expr(x.Arg), Star: x.Star}
	case *InExpr:
		return &InExpr{X: b.expr(x.X), List: b.exprs(x.List), Negate: x.Negate}
	case *BetweenExpr:
		return &BetweenExpr{X: b.expr(x.X), Lo: b.expr(x.Lo), Hi: b.expr(x.Hi), Negate: x.Negate}
	default:
		// Literal, ColRef, SummaryCall: leaf nodes with no Param inside;
		// share with the template.
		return e
	}
}

// walkStatementExprs visits every expression node reachable from stmt in
// an unspecified order.
func walkStatementExprs(stmt Statement, fn func(Expr)) {
	switch s := stmt.(type) {
	case *Select:
		walkSelectExprs(s, fn)
	case *Explain:
		walkSelectExprs(s.Query, fn)
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
	case *BulkInsert:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
	case *Update:
		for _, c := range s.Set {
			walkExpr(c.Value, fn)
		}
		walkExpr(s.Where, fn)
	case *Delete:
		walkExpr(s.Where, fn)
	case *AddAnnotation:
		walkExpr(s.Where, fn)
	case *ZoomIn:
		walkExpr(s.Where, fn)
	case *Execute:
		for _, e := range s.Args {
			walkExpr(e, fn)
		}
	}
}

func walkSelectExprs(s *Select, fn func(Expr)) {
	if s == nil {
		return
	}
	for _, it := range s.Items {
		walkExpr(it.Expr, fn)
	}
	for _, j := range s.Joins {
		walkExpr(j.On, fn)
	}
	walkExpr(s.Where, fn)
	for _, g := range s.GroupBy {
		walkExpr(g, fn)
	}
	walkExpr(s.Having, fn)
	for _, o := range s.OrderBy {
		walkExpr(o.Expr, fn)
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *IsNullExpr:
		walkExpr(x.X, fn)
	case *FuncCall:
		walkExpr(x.Arg, fn)
	case *InExpr:
		walkExpr(x.X, fn)
		for _, it := range x.List {
			walkExpr(it, fn)
		}
	case *BetweenExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	}
}
