package storage

import (
	"bytes"
	"path/filepath"
	"testing"
)

// storeContract exercises the PageStore contract against any implementation.
func storeContract(t *testing.T, s PageStore) {
	t.Helper()
	if n := s.NumPages(); n != 0 {
		t.Fatalf("fresh store has %d pages", n)
	}
	id0, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id0 == id1 || s.NumPages() != 2 {
		t.Fatalf("allocation ids %d, %d; pages %d", id0, id1, s.NumPages())
	}
	var p Page
	p.Reset()
	if _, err := p.Insert([]byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(id1, &p); err != nil {
		t.Fatal(err)
	}
	var back Page
	if err := s.ReadPage(id1, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Get(0)
	if err != nil || !bytes.Equal(got, []byte("persisted")) {
		t.Errorf("round trip = %q, %v", got, err)
	}
	// Unallocated access fails.
	if err := s.ReadPage(99, &back); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if err := s.WritePage(99, &p); err == nil {
		t.Error("write of unallocated page succeeded")
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
}

func TestMemStoreContract(t *testing.T) {
	s := NewMemStore()
	storeContract(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Allocate(); err != ErrClosed {
		t.Errorf("Allocate after Close = %v", err)
	}
	var p Page
	if err := s.ReadPage(0, &p); err != ErrClosed {
		t.Errorf("ReadPage after Close = %v", err)
	}
}

func TestFileStoreContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestFileStoreReopenPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	var p Page
	p.Reset()
	p.Insert([]byte("durable"))
	if err := s.WritePage(id, &p); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumPages() != 1 {
		t.Fatalf("reopened pages = %d", s2.NumPages())
	}
	var back Page
	if err := s2.ReadPage(id, &back); err != nil {
		t.Fatal(err)
	}
	if got, _ := back.Get(0); !bytes.Equal(got, []byte("durable")) {
		t.Errorf("after reopen = %q", got)
	}
}

func TestFileStoreRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	if err := writeFile(path, make([]byte, PageSize+1)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Error("misaligned file accepted")
	}
}
