package storage

import "os"

// writeFile is a tiny test helper wrapping os.WriteFile.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
