// Package storage implements the relational storage substrate underneath
// the InsightNotes engine: 8 KiB slotted pages, pluggable page stores
// (memory-backed and file-backed), a pinning buffer pool with LRU eviction,
// heap files for tuple storage, an ordered B+tree index, and an
// order-preserving key encoding for index keys.
//
// The paper's prototype extends PostgreSQL; this package is the substitute
// host storage layer (see DESIGN.md §4). Indexes are memory-resident and
// rebuilt from the heap on open, in the style of early-generation embedded
// Go stores; heap pages are the durable representation.
package storage

import (
	"errors"
	"fmt"
)

// PageSize is the size of every page in bytes.
const PageSize = 8192

// PageID identifies a page within a store.
type PageID uint32

// InvalidPageID is the sentinel for "no page".
const InvalidPageID = PageID(^uint32(0))

// RID (record identifier) locates a record: a page and a slot within it.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Errors returned by the storage layer.
var (
	// ErrPageFull indicates that a page has no room for the record.
	ErrPageFull = errors.New("storage: page full")
	// ErrNoSuchRecord indicates a stale or deleted RID.
	ErrNoSuchRecord = errors.New("storage: no such record")
	// ErrRecordTooLarge indicates a record exceeding the page payload limit.
	ErrRecordTooLarge = errors.New("storage: record too large for a page")
	// ErrClosed indicates use of a closed store.
	ErrClosed = errors.New("storage: store is closed")

	// ErrCorrupt is the sentinel matched by errors.Is for any detected
	// page corruption; the concrete error is an *ErrPageCorrupt carrying
	// the page id and the violated invariant.
	ErrCorrupt = errors.New("storage: page corrupt")
)

// ErrPageCorrupt reports a page that failed checksum or structural
// verification. Want and Got are CRC32-C values for checksum mismatches
// (zero for structural faults); Reason names the violated invariant. Page
// is InvalidPageID when the fault was detected by a Page method that does
// not know its own id — layers holding the id fill it in.
type ErrPageCorrupt struct {
	Page      PageID
	Want, Got uint32
	Reason    string
}

// Error implements error.
func (e *ErrPageCorrupt) Error() string {
	where := "page"
	if e.Page != InvalidPageID {
		where = fmt.Sprintf("page %d", e.Page)
	}
	if e.Want != e.Got {
		return fmt.Sprintf("storage: %s corrupt: %s (want crc 0x%08x, got 0x%08x)", where, e.Reason, e.Want, e.Got)
	}
	return fmt.Sprintf("storage: %s corrupt: %s", where, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) match every page-corruption error.
func (e *ErrPageCorrupt) Is(target error) bool { return target == ErrCorrupt }

// withPage fills the page id into structural corruption errors raised by
// Page methods, which do not know which page they operate on.
func withPage(err error, id PageID) error {
	var pc *ErrPageCorrupt
	if errors.As(err, &pc) && pc.Page == InvalidPageID {
		pc.Page = id
	}
	return err
}

// MaxRecordSize is the largest record a heap page can hold.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize
