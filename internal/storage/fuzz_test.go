package storage

import (
	"bytes"
	"testing"

	"insightnotes/internal/types"
)

// FuzzPageRoundTrip drives a slotted page through an arbitrary sequence of
// inserts, deletes, updates, and compactions decoded from the fuzz input,
// then checks the invariants the integrity machinery depends on: Verify
// passes on every page the API can produce, the checksum round-trips
// through a stamp, and rebuilding from the live records preserves every
// record at its slot.
func FuzzPageRoundTrip(f *testing.F) {
	f.Add([]byte{0, 5, 'h', 'e', 'l', 'l', 'o', 1, 0, 0, 4, 'n', 'e', 'x', 't'})
	f.Add([]byte{0, 1, 'a', 0, 1, 'b', 1, 0, 3})
	f.Fuzz(func(t *testing.T, script []byte) {
		var p Page
		p.Reset()
		live := map[uint16][]byte{} // model of what the page should hold
		for len(script) > 0 {
			op := script[0]
			script = script[1:]
			switch op % 4 {
			case 0, 3: // insert: next byte is a length, then that many data bytes
				if len(script) == 0 {
					return
				}
				n := int(script[0])
				script = script[1:]
				if n > len(script) {
					n = len(script)
				}
				rec := script[:n]
				script = script[n:]
				slot, err := p.Insert(rec)
				if err == nil {
					live[slot] = append([]byte(nil), rec...)
				}
			case 1: // delete: next byte selects the slot
				if len(script) == 0 {
					return
				}
				slot := uint16(script[0])
				script = script[1:]
				if p.Delete(slot) == nil {
					delete(live, slot)
				}
			case 2: // update: slot byte, length byte, data
				if len(script) < 2 {
					return
				}
				slot := uint16(script[0])
				n := int(script[1])
				script = script[2:]
				if n > len(script) {
					n = len(script)
				}
				rec := script[:n]
				script = script[n:]
				if p.Update(slot, rec) == nil {
					live[slot] = append([]byte(nil), rec...)
				}
			}
			if op%7 == 0 {
				p.Compact()
			}
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("API-produced page fails Verify: %v", err)
		}
		p.StampChecksum()
		if err := p.VerifyChecksum(0); err != nil {
			t.Fatalf("checksum round trip: %v", err)
		}
		// Every modeled record is retrievable, and a rebuild preserves it.
		recs := make([]SlotRecord, 0, len(live))
		for slot, want := range live {
			got, err := p.Get(slot)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("slot %d = %q, %v; want %q", slot, got, err, want)
			}
			recs = append(recs, SlotRecord{Slot: slot, Data: want})
		}
		var rebuilt Page
		if err := RebuildPage(&rebuilt, recs); err != nil {
			t.Fatalf("rebuild of live records: %v", err)
		}
		if err := rebuilt.Verify(); err != nil {
			t.Fatalf("rebuilt page fails Verify: %v", err)
		}
		for slot, want := range live {
			if got, err := rebuilt.Get(slot); err != nil || !bytes.Equal(got, want) {
				t.Fatalf("rebuilt slot %d = %q, %v; want %q", slot, got, err, want)
			}
		}
	})
}

// FuzzPageRawBytes feeds arbitrary bytes into a page's read paths: no
// input may cause a panic or an out-of-bounds slice — a hostile slot
// directory must surface as ErrPageCorrupt / ErrNoSuchRecord, never as a
// crash. This is the contract the buffer pool's read-verification and the
// scrubber rely on when walking possibly-rotten pages.
func FuzzPageRawBytes(f *testing.F) {
	var seed Page
	seed.Reset()
	seed.Insert([]byte("seed record"))
	f.Add(seed[:pageHeaderSize+16])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var p Page
		copy(p[:], raw)
		p.Verify()           // may error, must not panic
		p.VerifyChecksum(0)  // may error, must not panic
		for slot := uint16(0); slot < 8; slot++ {
			p.Get(slot)
			p.Delete(slot)
		}
		p.Records(func(slot uint16, data []byte) bool {
			if len(data) > 0 {
				_ = data[len(data)-1] // force the bounds to be real
			}
			return true
		})
	})
}

// FuzzDecodeKey checks the order-preserving key decoder against arbitrary
// bytes: garbage must return an error, never panic, and any input that
// decodes must re-encode to a stable fixed point — decode∘encode applied
// twice yields byte-identical keys (the decoder normalizes at most once,
// e.g. a BOOL payload byte of 2 normalizes to 1).
func FuzzDecodeKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(EncodeKey(nil, types.NewInt(42)))
	f.Add(EncodeKey(nil, types.NewString("fuzz")))
	f.Add(EncodeCompositeKey(nil, types.NewInt(-1), types.NewString("x\x00y")))
	f.Fuzz(func(t *testing.T, b []byte) {
		v, _, err := DecodeKey(b)
		if err == nil {
			e1 := EncodeKey(nil, v)
			v2, rest, err := DecodeKey(e1)
			if err != nil || len(rest) != 0 {
				t.Fatalf("re-decode of encoded %v: %v (rest %x)", v, err, rest)
			}
			if e2 := EncodeKey(nil, v2); !bytes.Equal(e1, e2) {
				t.Fatalf("encoding not a fixed point: %x vs %x", e1, e2)
			}
		}
		DecodeCompositeKey(b) // may error, must not panic
	})
}
