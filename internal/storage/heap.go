package storage

import (
	"fmt"
	"sync"
)

// HeapFile stores variable-length records across a chain of slotted pages
// fetched through a BufferPool. It is the physical home of both data tuples
// and raw annotations in the engine.
//
// A HeapFile owns a contiguous set of page ids that it allocated from the
// shared pool; the set is tracked in memory and rebuilt by the catalog on
// open (the catalog persists each table's page list).
type HeapFile struct {
	mu    sync.Mutex
	pool  *BufferPool
	pages []PageID
	// freeHint maps a page position in pages to a rough free-byte count,
	// letting inserts skip full pages without fetching them.
	freeHint map[PageID]int
	records  int
}

// NewHeapFile creates an empty heap over pool.
func NewHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool, freeHint: make(map[PageID]int)}
}

// OpenHeapFile reattaches a heap to an existing list of pages (as persisted
// by the catalog), recomputing free-space hints and the record count.
func OpenHeapFile(pool *BufferPool, pages []PageID) (*HeapFile, error) {
	h := &HeapFile{
		pool:     pool,
		pages:    append([]PageID(nil), pages...),
		freeHint: make(map[PageID]int, len(pages)),
	}
	for _, pid := range pages {
		pg, err := pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		h.freeHint[pid] = pg.FreeSpace()
		rerr := pg.Records(func(uint16, []byte) bool { h.records++; return true })
		if err := pool.Unpin(pid, false); err != nil {
			return nil, err
		}
		if rerr != nil {
			return nil, withPage(rerr, pid)
		}
	}
	return h, nil
}

// Pages returns the page ids backing the heap, in order.
func (h *HeapFile) Pages() []PageID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PageID(nil), h.pages...)
}

// Len returns the number of live records.
func (h *HeapFile) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.records
}

// NumPages returns the number of pages backing the heap — the sequential
// I/O volume of a full scan, used by the planner's cost model.
func (h *HeapFile) NumPages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pages)
}

// Insert stores record and returns its RID.
func (h *HeapFile) Insert(record []byte) (RID, error) {
	if len(record) > MaxRecordSize {
		return RID{}, ErrRecordTooLarge
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// Try pages whose hint says the record fits, newest first (recent pages
	// are most likely to have room and be cached).
	for i := len(h.pages) - 1; i >= 0; i-- {
		pid := h.pages[i]
		if h.freeHint[pid] < len(record) {
			continue
		}
		rid, ok, err := h.tryInsert(pid, record)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	// Allocate a fresh page.
	pid, pg, err := h.pool.Allocate()
	if err != nil {
		return RID{}, err
	}
	slot, err := pg.Insert(record)
	if err != nil {
		h.pool.Unpin(pid, false)
		return RID{}, err
	}
	h.freeHint[pid] = pg.FreeSpace()
	if err := h.pool.Unpin(pid, true); err != nil {
		return RID{}, err
	}
	h.pages = append(h.pages, pid)
	h.records++
	return RID{Page: pid, Slot: slot}, nil
}

// tryInsert attempts an insert into pid, updating the free hint.
func (h *HeapFile) tryInsert(pid PageID, record []byte) (RID, bool, error) {
	pg, err := h.pool.Fetch(pid)
	if err != nil {
		return RID{}, false, err
	}
	slot, err := pg.Insert(record)
	if err == ErrPageFull {
		h.freeHint[pid] = pg.FreeSpace()
		return RID{}, false, h.pool.Unpin(pid, false)
	}
	if err != nil {
		h.pool.Unpin(pid, false)
		return RID{}, false, err
	}
	h.freeHint[pid] = pg.FreeSpace()
	if err := h.pool.Unpin(pid, true); err != nil {
		return RID{}, false, err
	}
	h.records++
	return RID{Page: pid, Slot: slot}, true, nil
}

// Get returns a copy of the record at rid.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	data, err := pg.Get(rid.Slot)
	if err != nil {
		h.pool.Unpin(rid.Page, false)
		return nil, withPage(err, rid.Page)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, h.pool.Unpin(rid.Page, false)
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	if err := pg.Delete(rid.Slot); err != nil {
		h.pool.Unpin(rid.Page, false)
		return withPage(err, rid.Page)
	}
	h.freeHint[rid.Page] = pg.FreeSpace()
	h.records--
	return h.pool.Unpin(rid.Page, true)
}

// Update replaces the record at rid in place when possible; when the new
// version does not fit on its page the record is moved and the new RID is
// returned. Callers must treat the returned RID as authoritative.
func (h *HeapFile) Update(rid RID, record []byte) (RID, error) {
	if len(record) > MaxRecordSize {
		return RID{}, ErrRecordTooLarge
	}
	h.mu.Lock()
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		h.mu.Unlock()
		return RID{}, err
	}
	err = pg.Update(rid.Slot, record)
	switch err {
	case nil:
		h.freeHint[rid.Page] = pg.FreeSpace()
		uerr := h.pool.Unpin(rid.Page, true)
		h.mu.Unlock()
		return rid, uerr
	case ErrPageFull:
		// Move: delete here, reinsert elsewhere.
		if derr := pg.Delete(rid.Slot); derr != nil {
			h.pool.Unpin(rid.Page, false)
			h.mu.Unlock()
			return RID{}, derr
		}
		h.freeHint[rid.Page] = pg.FreeSpace()
		if uerr := h.pool.Unpin(rid.Page, true); uerr != nil {
			h.mu.Unlock()
			return RID{}, uerr
		}
		h.records-- // Insert will re-increment
		h.mu.Unlock()
		return h.Insert(record)
	default:
		h.pool.Unpin(rid.Page, false)
		h.mu.Unlock()
		return RID{}, withPage(err, rid.Page)
	}
}

// Scan calls fn for every live record in heap order. The data slice passed
// to fn aliases pool memory and must not be retained; fn returning false
// stops the scan.
func (h *HeapFile) Scan(fn func(rid RID, data []byte) bool) error {
	h.mu.Lock()
	pages := append([]PageID(nil), h.pages...)
	h.mu.Unlock()
	for _, pid := range pages {
		pg, err := h.pool.Fetch(pid)
		if err != nil {
			return err
		}
		stop := false
		rerr := pg.Records(func(slot uint16, data []byte) bool {
			if !fn(RID{Page: pid, Slot: slot}, data) {
				stop = true
				return false
			}
			return true
		})
		if err := h.pool.Unpin(pid, false); err != nil {
			return err
		}
		if rerr != nil {
			return withPage(rerr, pid)
		}
		if stop {
			return nil
		}
	}
	return nil
}

// ViewPage pins page pid, calls fn with read-only access, and unpins it.
// Structural corruption errors from fn gain the page id.
func (h *HeapFile) ViewPage(pid PageID, fn func(pg *Page) error) error {
	pg, err := h.pool.Fetch(pid)
	if err != nil {
		return err
	}
	ferr := fn(pg)
	if uerr := h.pool.Unpin(pid, false); uerr != nil {
		return uerr
	}
	if ferr != nil {
		return withPage(ferr, pid)
	}
	return nil
}

// RepairPage replaces the physical contents of pid — which must belong to
// this heap — with exactly recs (see RebuildPage), writing through the
// pool's repair path and refreshing the free-space hint. The record count
// is untouched: repair restores the same logical rows on a fresh physical
// page.
func (h *HeapFile) RepairPage(pid PageID, recs []SlotRecord) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	found := false
	for _, p := range h.pages {
		if p == pid {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("storage: repair of page %d not in this heap", pid)
	}
	var pg Page
	if err := RebuildPage(&pg, recs); err != nil {
		return err
	}
	if err := h.pool.ReplacePage(pid, &pg); err != nil {
		return err
	}
	h.freeHint[pid] = pg.FreeSpace()
	return nil
}

// String summarizes the heap for debugging.
func (h *HeapFile) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return fmt.Sprintf("heap{pages: %d, records: %d}", len(h.pages), h.records)
}
