package storage

import (
	"bytes"
	"fmt"
	"sync"
)

// BTree is an in-memory B+tree mapping byte keys to uint64 values (row ids
// or packed RIDs). Duplicate keys are permitted; an entry is the pair
// (key, value) and entries are totally ordered by key then value, so
// Delete removes exactly one logical entry.
//
// Indexes are memory-resident and rebuilt from heap pages on open (see the
// package comment); within a session the tree is safe for concurrent use.
type BTree struct {
	mu   sync.RWMutex
	root btNode
	size int
}

// btOrder is the maximum number of entries in a leaf and children in an
// inner node before a split.
const btOrder = 64

type btNode interface {
	// insert adds (key, val); on split it returns the new right sibling
	// and the separator key that belongs between the halves.
	insert(key []byte, val uint64) (sep []byte, right btNode)
	// delete removes (key, val); returns whether an entry was removed.
	delete(key []byte, val uint64) bool
}

type btLeaf struct {
	keys [][]byte
	vals []uint64
	next *btLeaf
}

type btInner struct {
	keys     [][]byte // len(children) - 1 separators
	children []btNode
}

// NewBTree returns an empty tree.
func NewBTree() *BTree { return &BTree{root: &btLeaf{}} }

// Len returns the number of entries.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// entryLess orders entries by key, then value.
func entryLess(k1 []byte, v1 uint64, k2 []byte, v2 uint64) bool {
	if c := bytes.Compare(k1, k2); c != 0 {
		return c < 0
	}
	return v1 < v2
}

// Insert adds the entry (key, val). The key slice is copied.
func (t *BTree) Insert(key []byte, val uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := append([]byte(nil), key...)
	sep, right := t.root.insert(k, val)
	if right != nil {
		t.root = &btInner{keys: [][]byte{sep}, children: []btNode{t.root, right}}
	}
	t.size++
}

// Delete removes the entry (key, val), reporting whether it existed.
// Deletion is lazy: leaves may underflow, which preserves search
// correctness while avoiding rebalancing; annotation indexes are
// append-mostly so underflow is rare in practice.
func (t *BTree) Delete(key []byte, val uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root.delete(key, val) {
		t.size--
		return true
	}
	return false
}

// Seek returns the values stored under exactly key. Values under one key
// are value-sorted within a leaf but carry no global order guarantee once
// duplicates span leaves.
func (t *BTree) Seek(key []byte) []uint64 {
	var out []uint64
	t.Scan(key, KeySuccessorExact(key), func(k []byte, v uint64) bool {
		if bytes.Equal(k, key) {
			out = append(out, v)
		}
		return true
	})
	return out
}

// KeySuccessorExact returns an exclusive upper bound that admits only the
// exact key (key + one zero byte works because entries with longer keys
// compare greater).
func KeySuccessorExact(key []byte) []byte {
	out := make([]byte, len(key), len(key)+1)
	copy(out, key)
	return append(out, 0x00)
}

// CountRange reports the number of entries with lo <= key < hi, visiting
// at most limit entries (limit <= 0 means unlimited). The second result
// reports whether counting stopped at the limit — this is the planner's
// "index dive" primitive: a capped dive means "at least limit matches",
// which is enough to reject the index without walking the whole range.
func (t *BTree) CountRange(lo, hi []byte, limit int) (n int, capped bool) {
	t.Scan(lo, hi, func([]byte, uint64) bool {
		n++
		if limit > 0 && n >= limit {
			capped = true
			return false
		}
		return true
	})
	return n, capped
}

// Scan visits entries with lo <= key < hi in ascending entry order. A nil
// lo means from the beginning; a nil hi means to the end. fn returning
// false stops the scan.
func (t *BTree) Scan(lo, hi []byte, fn func(key []byte, val uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf, idx := t.seekLeaf(lo)
	for leaf != nil {
		for ; idx < len(leaf.keys); idx++ {
			k := leaf.keys[idx]
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return
			}
			if !fn(k, leaf.vals[idx]) {
				return
			}
		}
		leaf = leaf.next
		idx = 0
	}
}

// Verify checks the tree's structural invariants — the scrubber's index
// half. Within every leaf, entries must be (key, value)-sorted; inner
// separators must be non-decreasing and fence their children (duplicates
// spanning a split make the fences inclusive on both sides: child i holds
// entries in [keys[i-1], keys[i]]); every child slice must be one longer
// than its separator slice; the leaf chain must equal the in-order leaf
// sequence; and the entry count must match the tracked size.
func (t *BTree) Verify() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	count := 0
	var prevLeaf *btLeaf
	var walk func(n btNode, lo, hi []byte) error
	walk = func(n btNode, lo, hi []byte) error {
		switch nd := n.(type) {
		case *btLeaf:
			if len(nd.vals) != len(nd.keys) {
				return fmt.Errorf("storage: btree leaf has %d keys but %d values", len(nd.keys), len(nd.vals))
			}
			for i := range nd.keys {
				if i > 0 && entryLess(nd.keys[i], nd.vals[i], nd.keys[i-1], nd.vals[i-1]) {
					return fmt.Errorf("storage: btree leaf entries out of order at %d", i)
				}
				if lo != nil && bytes.Compare(nd.keys[i], lo) < 0 {
					return fmt.Errorf("storage: btree leaf key below its separator fence")
				}
				if hi != nil && bytes.Compare(nd.keys[i], hi) > 0 {
					return fmt.Errorf("storage: btree leaf key above its separator fence")
				}
			}
			if prevLeaf != nil && prevLeaf.next != nd {
				return fmt.Errorf("storage: btree leaf chain does not match the in-order leaf sequence")
			}
			prevLeaf = nd
			count += len(nd.keys)
			return nil
		case *btInner:
			if len(nd.children) != len(nd.keys)+1 {
				return fmt.Errorf("storage: btree inner node has %d separators but %d children", len(nd.keys), len(nd.children))
			}
			for i := 1; i < len(nd.keys); i++ {
				if bytes.Compare(nd.keys[i-1], nd.keys[i]) > 0 {
					return fmt.Errorf("storage: btree inner separators out of order at %d", i)
				}
			}
			for i, c := range nd.children {
				clo, chi := lo, hi
				if i > 0 {
					clo = nd.keys[i-1]
				}
				if i < len(nd.keys) {
					chi = nd.keys[i]
				}
				if err := walk(c, clo, chi); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("storage: btree node of unknown type %T", n)
		}
	}
	if err := walk(t.root, nil, nil); err != nil {
		return err
	}
	if prevLeaf != nil && prevLeaf.next != nil {
		return fmt.Errorf("storage: btree leaf chain has a dangling tail")
	}
	if count != t.size {
		return fmt.Errorf("storage: btree tracks %d entries but holds %d", t.size, count)
	}
	return nil
}

// seekLeaf finds the leftmost leaf position whose key >= lo.
func (t *BTree) seekLeaf(lo []byte) (*btLeaf, int) {
	n := t.root
	for {
		switch nd := n.(type) {
		case *btLeaf:
			idx := 0
			if lo != nil {
				idx = lowerBound(nd.keys, lo)
			}
			return nd, idx
		case *btInner:
			i := 0
			if lo != nil {
				for i < len(nd.keys) && bytes.Compare(nd.keys[i], lo) < 0 {
					i++
				}
			}
			n = nd.children[i]
		}
	}
}

// lowerBound returns the first index with keys[i] >= key.
func lowerBound(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ---- leaf operations ----

func (l *btLeaf) insert(key []byte, val uint64) ([]byte, btNode) {
	// Position by (key, val) order to keep duplicates value-sorted.
	i := 0
	for i < len(l.keys) && entryLess(l.keys[i], l.vals[i], key, val) {
		i++
	}
	l.keys = append(l.keys, nil)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.vals = append(l.vals, 0)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = val
	if len(l.keys) <= btOrder {
		return nil, nil
	}
	// Split in half; the right sibling's first key is the separator.
	mid := len(l.keys) / 2
	right := &btLeaf{
		keys: append([][]byte(nil), l.keys[mid:]...),
		vals: append([]uint64(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	return right.keys[0], right
}

func (l *btLeaf) delete(key []byte, val uint64) bool {
	i := lowerBound(l.keys, key)
	for ; i < len(l.keys) && bytes.Equal(l.keys[i], key); i++ {
		if l.vals[i] == val {
			l.keys = append(l.keys[:i], l.keys[i+1:]...)
			l.vals = append(l.vals[:i], l.vals[i+1:]...)
			return true
		}
	}
	return false
}

// ---- inner operations ----

func (in *btInner) childFor(key []byte, val uint64) int {
	i := 0
	// Descend right of separators <= key so duplicate keys spanning a
	// split remain reachable; separators equal to key require searching
	// the right subtree (entries >= separator live right).
	for i < len(in.keys) && bytes.Compare(in.keys[i], key) <= 0 {
		i++
	}
	return i
}

func (in *btInner) insert(key []byte, val uint64) ([]byte, btNode) {
	i := in.childFor(key, val)
	sep, right := in.children[i].insert(key, val)
	if right == nil {
		return nil, nil
	}
	in.keys = append(in.keys, nil)
	copy(in.keys[i+1:], in.keys[i:])
	in.keys[i] = sep
	in.children = append(in.children, nil)
	copy(in.children[i+2:], in.children[i+1:])
	in.children[i+1] = right
	if len(in.children) <= btOrder {
		return nil, nil
	}
	mid := len(in.keys) / 2
	upSep := in.keys[mid]
	rightNode := &btInner{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]btNode(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	return upSep, rightNode
}

func (in *btInner) delete(key []byte, val uint64) bool {
	// The entry could sit in any child whose range admits key; with
	// duplicates, equal keys may span multiple children. Try the natural
	// child first, then neighbours that could also contain the key.
	i := 0
	for i < len(in.keys) && bytes.Compare(in.keys[i], key) < 0 {
		i++
	}
	// children[i] is the first child that may contain key; equal separators
	// mean the key may continue into following children.
	for ; i < len(in.children); i++ {
		if in.children[i].delete(key, val) {
			return true
		}
		if i < len(in.keys) && bytes.Compare(in.keys[i], key) > 0 {
			break
		}
	}
	return false
}
