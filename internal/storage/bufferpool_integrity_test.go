package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"insightnotes/internal/failpoint"
)

// newFilePool builds a FileStore-backed pool with one page holding rec.
func newFilePool(t *testing.T, capacity int, rec []byte) (*BufferPool, *FileStore, PageID) {
	t.Helper()
	fs, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	pool := NewBufferPool(fs, capacity)
	id, pg, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Insert(rec); err != nil {
		t.Fatal(err)
	}
	if err := pool.Unpin(id, true); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return pool, fs, id
}

// TestBufferPoolReadFailure verifies a corrupt backing read fails the
// Fetch with the structured error, leaves no frame pinned or resident,
// advances the miss and read-failure counters, and quarantines the page so
// the next Fetch fails fast without re-reading the store.
func TestBufferPoolReadFailure(t *testing.T) {
	pool, _, id := newFilePool(t, 4, []byte("will rot"))
	if n := pool.DropClean(); n != 1 {
		t.Fatalf("DropClean = %d, want 1", n)
	}

	failpoint.EnableError(failpoint.StorageReadBitrot, errors.New("inject"))
	_, err := pool.Fetch(id)
	failpoint.Disable(failpoint.StorageReadBitrot)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Fetch of rotten page = %v", err)
	}
	if pool.Resident() != 0 {
		t.Fatalf("failed Fetch left %d resident frames", pool.Resident())
	}
	if rf := pool.ReadFailures(); rf != 1 {
		t.Fatalf("ReadFailures = %d, want 1", rf)
	}
	_, misses := pool.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if q := pool.Quarantined(); len(q) != 1 || q[0] != id {
		t.Fatalf("Quarantined = %v, want [%d]", q, id)
	}

	// Quarantined: fails fast with the cached error, no new store read, so
	// the miss and read-failure counters stay put.
	if _, err := pool.Fetch(id); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Fetch of quarantined page = %v", err)
	}
	if _, misses := pool.Stats(); misses != 1 {
		t.Fatal("quarantined fetch hit the store")
	}
	if rf := pool.ReadFailures(); rf != 1 {
		t.Fatalf("ReadFailures after quarantined fetch = %d, want 1", rf)
	}

	// The stored copy is actually clean (the rot was injected on read), so
	// lifting the quarantine restores service.
	pool.Unquarantine(id)
	pg, err := pool.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch after unquarantine: %v", err)
	}
	if got, _ := pg.Get(0); !bytes.Equal(got, []byte("will rot")) {
		t.Errorf("record after unquarantine = %q", got)
	}
	pool.Unpin(id, false)
}

// TestBufferPoolReadFailureNoDeadlock verifies concurrent fetches of a
// corrupt page all fail and release the pool lock — a regression guard for
// the error path forgetting to unwind frame bookkeeping.
func TestBufferPoolReadFailureNoDeadlock(t *testing.T) {
	pool, _, id := newFilePool(t, 4, []byte("contended"))
	pool.DropClean()
	failpoint.EnableError(failpoint.StorageReadBitrot, errors.New("inject"))
	defer failpoint.Disable(failpoint.StorageReadBitrot)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pool.Fetch(id); err == nil {
				t.Error("concurrent Fetch of corrupt page succeeded")
			}
		}()
	}
	wg.Wait()
	// Pool still fully usable: allocate and fetch another page.
	id2, pg, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pg.Insert([]byte("alive"))
	pool.Unpin(id2, true)
	if _, err := pool.Fetch(id2); err != nil {
		t.Fatalf("pool unusable after read failures: %v", err)
	}
	pool.Unpin(id2, false)
}

// TestBufferPoolVerifyStoredBypassesCache verifies VerifyStored checks the
// on-disk bytes without populating the cache, catching rot that a resident
// clean frame would mask.
func TestBufferPoolVerifyStoredBypassesCache(t *testing.T) {
	pool, fs, id := newFilePool(t, 4, []byte("resident"))
	// Frame is resident and clean; corrupt the disk copy underneath it.
	buf := []byte{0}
	off := int64(id)*PageSize + PageSize - 1
	fs.f.ReadAt(buf, off)
	buf[0] ^= 0xFF
	fs.f.WriteAt(buf, off)

	// A Fetch serves the clean resident frame...
	if _, err := pool.Fetch(id); err != nil {
		t.Fatalf("resident fetch: %v", err)
	}
	pool.Unpin(id, false)
	// ...but VerifyStored sees the rot, and does not cache anything new.
	err := pool.VerifyStored(id)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyStored = %v", err)
	}
	if pool.Resident() != 1 {
		t.Fatalf("VerifyStored changed residency: %d", pool.Resident())
	}
}

// TestBufferPoolFlushResidentRepairs verifies the cheapest repair: a
// surviving clean frame flushed over a rotten stored copy clears the
// quarantine and restores verifiable reads.
func TestBufferPoolFlushResidentRepairs(t *testing.T) {
	pool, fs, id := newFilePool(t, 4, []byte("survivor"))
	buf := []byte{0}
	off := int64(id)*PageSize + PageSize - 1
	fs.f.ReadAt(buf, off)
	buf[0] ^= 0xFF
	fs.f.WriteAt(buf, off)
	if err := pool.VerifyStored(id); err == nil {
		t.Fatal("stored copy should be rotten")
	}
	// The clean frame is still resident: flushing it over the rot repairs.
	if ok, err := pool.FlushResident(id); err != nil || !ok {
		t.Fatalf("FlushResident = %v, %v; want true, nil", ok, err)
	}
	if err := pool.VerifyStored(id); err != nil {
		t.Fatalf("stored copy after resident flush: %v", err)
	}

	// Rot it again, then quarantine — which drops the unpinned frame, so
	// FlushResident has nothing to write and reports false.
	fs.f.WriteAt(buf, off) // buf still holds the flipped byte
	pool.Quarantine(id, nil)
	if ok, err := pool.FlushResident(id); err != nil || ok {
		t.Fatalf("FlushResident with no frame = %v, %v; want false, nil", ok, err)
	}
	var rebuilt Page
	if err := RebuildPage(&rebuilt, []SlotRecord{{Slot: 0, Data: []byte("survivor")}}); err != nil {
		t.Fatal(err)
	}
	if err := pool.ReplacePage(id, &rebuilt); err != nil {
		t.Fatal(err)
	}
	if len(pool.Quarantined()) != 0 {
		t.Fatal("ReplacePage did not clear quarantine")
	}
	if err := pool.VerifyStored(id); err != nil {
		t.Fatalf("stored copy after repair: %v", err)
	}
	pool.DropClean()
	pg, err := pool.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch after repair: %v", err)
	}
	if got, _ := pg.Get(0); !bytes.Equal(got, []byte("survivor")) {
		t.Errorf("repaired record = %q", got)
	}
	pool.Unpin(id, false)
}
