package storage

import "encoding/binary"

// Slotted page layout:
//
//	[0:2)  slot count (uint16)
//	[2:4)  freeEnd — offset of the lowest byte used by record data;
//	       data grows downward from PageSize, slots grow upward from 4.
//	[4:..) slot array, 4 bytes per slot: record offset (uint16),
//	       record length (uint16). A slot with offset == tombstoneOffset
//	       is deleted and may be reused.
const (
	pageHeaderSize  = 4
	slotSize        = 4
	tombstoneOffset = uint16(0xFFFF)
)

// Page is one fixed-size slotted page. The zero value is not initialized;
// call Reset (or obtain pages from a store, which returns them reset).
type Page [PageSize]byte

// Reset initializes p as an empty slotted page.
func (p *Page) Reset() {
	for i := range p {
		p[i] = 0
	}
	p.setSlotCount(0)
	p.setFreeEnd(PageSize)
}

func (p *Page) slotCount() uint16     { return binary.LittleEndian.Uint16(p[0:2]) }
func (p *Page) setSlotCount(n uint16) { binary.LittleEndian.PutUint16(p[0:2], n) }
func (p *Page) freeEnd() uint16       { return binary.LittleEndian.Uint16(p[2:4]) }
func (p *Page) setFreeEnd(v uint16) {
	binary.LittleEndian.PutUint16(p[2:4], v)
}

func (p *Page) slot(i uint16) (off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p[base : base+2]),
		binary.LittleEndian.Uint16(p[base+2 : base+4])
}

func (p *Page) setSlot(i, off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p[base:base+2], off)
	binary.LittleEndian.PutUint16(p[base+2:base+4], length)
}

// NumSlots returns the number of slots ever allocated on the page,
// including tombstones.
func (p *Page) NumSlots() uint16 { return p.slotCount() }

// FreeSpace returns the bytes available for a new record, accounting for
// the slot entry a fresh insert would need. Reusable tombstone slots make
// inserts slightly cheaper than this lower bound.
func (p *Page) FreeSpace() int {
	used := pageHeaderSize + int(p.slotCount())*slotSize
	free := int(p.freeEnd()) - used - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores record in the page and returns its slot number. It reuses a
// tombstoned slot when one exists. Returns ErrPageFull when the record does
// not fit and ErrRecordTooLarge when it could never fit on any page.
func (p *Page) Insert(record []byte) (uint16, error) {
	if len(record) > MaxRecordSize {
		return 0, ErrRecordTooLarge
	}
	// Find a reusable tombstone slot.
	reuse := int32(-1)
	n := p.slotCount()
	for i := uint16(0); i < n; i++ {
		if off, _ := p.slot(i); off == tombstoneOffset {
			reuse = int32(i)
			break
		}
	}
	needSlot := slotSize
	if reuse >= 0 {
		needSlot = 0
	}
	used := pageHeaderSize + int(n)*slotSize
	if int(p.freeEnd())-used-needSlot < len(record) {
		return 0, ErrPageFull
	}
	newEnd := p.freeEnd() - uint16(len(record))
	copy(p[newEnd:], record)
	p.setFreeEnd(newEnd)
	var slot uint16
	if reuse >= 0 {
		slot = uint16(reuse)
	} else {
		slot = n
		p.setSlotCount(n + 1)
	}
	p.setSlot(slot, newEnd, uint16(len(record)))
	return slot, nil
}

// Get returns the record stored at slot. The returned slice aliases the
// page; callers must copy it if they retain it past unpinning the page.
func (p *Page) Get(slot uint16) ([]byte, error) {
	if slot >= p.slotCount() {
		return nil, ErrNoSuchRecord
	}
	off, length := p.slot(slot)
	if off == tombstoneOffset {
		return nil, ErrNoSuchRecord
	}
	return p[off : off+length], nil
}

// Delete tombstones the record at slot. The data space is reclaimed by
// Compact.
func (p *Page) Delete(slot uint16) error {
	if slot >= p.slotCount() {
		return ErrNoSuchRecord
	}
	if off, _ := p.slot(slot); off == tombstoneOffset {
		return ErrNoSuchRecord
	}
	p.setSlot(slot, tombstoneOffset, 0)
	return nil
}

// Update replaces the record at slot. If the new record fits in the old
// space it is updated in place; otherwise new space is allocated on the
// page (compacting first if that makes it fit). Returns ErrPageFull when
// the page cannot hold the new version — callers then delete and reinsert
// elsewhere.
func (p *Page) Update(slot uint16, record []byte) error {
	if slot >= p.slotCount() {
		return ErrNoSuchRecord
	}
	off, length := p.slot(slot)
	if off == tombstoneOffset {
		return ErrNoSuchRecord
	}
	if len(record) > MaxRecordSize {
		return ErrRecordTooLarge
	}
	if len(record) <= int(length) {
		copy(p[off:], record)
		p.setSlot(slot, off, uint16(len(record)))
		return nil
	}
	used := pageHeaderSize + int(p.slotCount())*slotSize
	if int(p.freeEnd())-used < len(record) {
		p.Compact()
		used = pageHeaderSize + int(p.slotCount())*slotSize
		if int(p.freeEnd())-used < len(record) {
			return ErrPageFull
		}
		off, _ = p.slot(slot) // compaction moved the record
	}
	newEnd := p.freeEnd() - uint16(len(record))
	copy(p[newEnd:], record)
	p.setFreeEnd(newEnd)
	p.setSlot(slot, newEnd, uint16(len(record)))
	return nil
}

// Compact rewrites the data region to squeeze out space left by deletes and
// in-place shrinking updates. Slot numbers are stable across compaction.
func (p *Page) Compact() {
	type rec struct {
		slot uint16
		data []byte
	}
	n := p.slotCount()
	recs := make([]rec, 0, n)
	for i := uint16(0); i < n; i++ {
		off, length := p.slot(i)
		if off == tombstoneOffset {
			continue
		}
		cp := make([]byte, length)
		copy(cp, p[off:off+length])
		recs = append(recs, rec{i, cp})
	}
	p.setFreeEnd(PageSize)
	for _, r := range recs {
		newEnd := p.freeEnd() - uint16(len(r.data))
		copy(p[newEnd:], r.data)
		p.setFreeEnd(newEnd)
		p.setSlot(r.slot, newEnd, uint16(len(r.data)))
	}
}

// Records calls fn for every live record on the page, in slot order.
// The data slice aliases the page.
func (p *Page) Records(fn func(slot uint16, data []byte) bool) {
	n := p.slotCount()
	for i := uint16(0); i < n; i++ {
		off, length := p.slot(i)
		if off == tombstoneOffset {
			continue
		}
		if !fn(i, p[off:off+length]) {
			return
		}
	}
}
