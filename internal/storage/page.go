package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Slotted page layout:
//
//	[0:2)   slot count (uint16)
//	[2:4)   freeEnd — offset of the lowest byte used by record data;
//	        data grows downward from PageSize, slots grow upward from the
//	        header.
//	[4:8)   CRC32-C checksum over the rest of the page, stamped by stores
//	        on flush and verified on read (zero / stale in memory).
//	[8]     page format byte (pageFormatV1).
//	[9:12)  reserved (zero).
//	[12:..) slot array, 4 bytes per slot: record offset (uint16),
//	        record length (uint16). A slot with offset == tombstoneOffset
//	        is deleted and may be reused.
const (
	pageHeaderSize  = 12
	slotSize        = 4
	tombstoneOffset = uint16(0xFFFF)

	checksumOff  = 4
	formatOff    = 8
	pageFormatV1 = 0x01

	// maxSlots bounds the slot directory: a slot index at or past it would
	// address bytes outside the page, so a larger stored slot count is
	// corruption by definition.
	maxSlots = (PageSize - pageHeaderSize) / slotSize
)

// castagnoli is the CRC32-C polynomial table; Go's implementation uses the
// hardware CRC instruction where available, so per-page verification is a
// small fraction of the 8 KiB read cost.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Page is one fixed-size slotted page. The zero value is not initialized;
// call Reset (or obtain pages from a store, which returns them reset).
type Page [PageSize]byte

// Reset initializes p as an empty slotted page.
func (p *Page) Reset() {
	for i := range p {
		p[i] = 0
	}
	p.setSlotCount(0)
	p.setFreeEnd(PageSize)
	p[formatOff] = pageFormatV1
}

// computeChecksum hashes the whole page except the checksum field itself.
func (p *Page) computeChecksum() uint32 {
	crc := crc32.Update(0, castagnoli, p[:checksumOff])
	return crc32.Update(crc, castagnoli, p[checksumOff+4:])
}

// StampChecksum writes the current payload checksum into the header.
// Stores call it when flushing a page to stable storage; the in-memory
// copy of a page carries a stale stamp between flushes.
func (p *Page) StampChecksum() {
	binary.LittleEndian.PutUint32(p[checksumOff:checksumOff+4], p.computeChecksum())
}

// StoredChecksum returns the checksum stamped in the header.
func (p *Page) StoredChecksum() uint32 {
	return binary.LittleEndian.Uint32(p[checksumOff : checksumOff+4])
}

// VerifyChecksum checks the format byte and the stamped checksum against
// the page contents. It is meaningful only for bytes read back from a
// stamping store (FileStore); in-memory pages carry stale stamps.
func (p *Page) VerifyChecksum(id PageID) error {
	if p[formatOff] != pageFormatV1 {
		return &ErrPageCorrupt{Page: id, Reason: fmt.Sprintf("bad page format byte 0x%02x", p[formatOff])}
	}
	want, got := p.StoredChecksum(), p.computeChecksum()
	if want != got {
		return &ErrPageCorrupt{Page: id, Want: want, Got: got, Reason: "checksum mismatch"}
	}
	return nil
}

// corrupt builds a structural corruption error. Page methods do not know
// their own page id; callers holding one fill it in via withPage.
func (p *Page) corrupt(format string, args ...any) error {
	return &ErrPageCorrupt{Page: InvalidPageID, Reason: fmt.Sprintf(format, args...)}
}

// checkExtent validates that a live slot's record lies inside the page.
func (p *Page) checkExtent(slot, off, length uint16) error {
	if int(off) < pageHeaderSize || int(off)+int(length) > PageSize {
		return p.corrupt("slot %d extent [%d,%d) outside page", slot, off, int(off)+int(length))
	}
	return nil
}

func (p *Page) slotCount() uint16     { return binary.LittleEndian.Uint16(p[0:2]) }
func (p *Page) setSlotCount(n uint16) { binary.LittleEndian.PutUint16(p[0:2], n) }
func (p *Page) freeEnd() uint16       { return binary.LittleEndian.Uint16(p[2:4]) }
func (p *Page) setFreeEnd(v uint16) {
	binary.LittleEndian.PutUint16(p[2:4], v)
}

func (p *Page) slot(i uint16) (off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p[base : base+2]),
		binary.LittleEndian.Uint16(p[base+2 : base+4])
}

func (p *Page) setSlot(i, off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p[base:base+2], off)
	binary.LittleEndian.PutUint16(p[base+2:base+4], length)
}

// NumSlots returns the number of slots ever allocated on the page,
// including tombstones.
func (p *Page) NumSlots() uint16 { return p.slotCount() }

// FreeSpace returns the bytes available for a new record, accounting for
// the slot entry a fresh insert would need. Reusable tombstone slots make
// inserts slightly cheaper than this lower bound.
func (p *Page) FreeSpace() int {
	used := pageHeaderSize + int(p.slotCount())*slotSize
	free := int(p.freeEnd()) - used - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores record in the page and returns its slot number. It reuses a
// tombstoned slot when one exists. Returns ErrPageFull when the record does
// not fit and ErrRecordTooLarge when it could never fit on any page.
func (p *Page) Insert(record []byte) (uint16, error) {
	if len(record) > MaxRecordSize {
		return 0, ErrRecordTooLarge
	}
	// Find a reusable tombstone slot.
	reuse := int32(-1)
	n := p.slotCount()
	if n > maxSlots {
		return 0, p.corrupt("slot count %d exceeds page capacity %d", n, maxSlots)
	}
	for i := uint16(0); i < n; i++ {
		if off, _ := p.slot(i); off == tombstoneOffset {
			reuse = int32(i)
			break
		}
	}
	needSlot := slotSize
	if reuse >= 0 {
		needSlot = 0
	}
	used := pageHeaderSize + int(n)*slotSize
	if int(p.freeEnd())-used-needSlot < len(record) {
		return 0, ErrPageFull
	}
	newEnd := p.freeEnd() - uint16(len(record))
	copy(p[newEnd:], record)
	p.setFreeEnd(newEnd)
	var slot uint16
	if reuse >= 0 {
		slot = uint16(reuse)
	} else {
		slot = n
		p.setSlotCount(n + 1)
	}
	p.setSlot(slot, newEnd, uint16(len(record)))
	return slot, nil
}

// Get returns the record stored at slot. The returned slice aliases the
// page; callers must copy it if they retain it past unpinning the page.
// A slot directory pointing outside the page returns a structural
// ErrPageCorrupt instead of slicing out of bounds.
func (p *Page) Get(slot uint16) ([]byte, error) {
	if slot >= p.slotCount() {
		return nil, ErrNoSuchRecord
	}
	if slot >= maxSlots {
		return nil, p.corrupt("slot count %d exceeds page capacity %d", p.slotCount(), maxSlots)
	}
	off, length := p.slot(slot)
	if off == tombstoneOffset {
		return nil, ErrNoSuchRecord
	}
	if err := p.checkExtent(slot, off, length); err != nil {
		return nil, err
	}
	return p[off : int(off)+int(length)], nil
}

// Delete tombstones the record at slot. The data space is reclaimed by
// Compact.
func (p *Page) Delete(slot uint16) error {
	if slot >= p.slotCount() {
		return ErrNoSuchRecord
	}
	if slot >= maxSlots {
		return p.corrupt("slot count %d exceeds page capacity %d", p.slotCount(), maxSlots)
	}
	if off, _ := p.slot(slot); off == tombstoneOffset {
		return ErrNoSuchRecord
	}
	p.setSlot(slot, tombstoneOffset, 0)
	return nil
}

// Update replaces the record at slot. If the new record fits in the old
// space it is updated in place; otherwise new space is allocated on the
// page (compacting first if that makes it fit). Returns ErrPageFull when
// the page cannot hold the new version — callers then delete and reinsert
// elsewhere.
func (p *Page) Update(slot uint16, record []byte) error {
	if slot >= p.slotCount() {
		return ErrNoSuchRecord
	}
	if slot >= maxSlots {
		return p.corrupt("slot count %d exceeds page capacity %d", p.slotCount(), maxSlots)
	}
	off, length := p.slot(slot)
	if off == tombstoneOffset {
		return ErrNoSuchRecord
	}
	if len(record) > MaxRecordSize {
		return ErrRecordTooLarge
	}
	if err := p.checkExtent(slot, off, length); err != nil {
		return err
	}
	if len(record) <= int(length) {
		copy(p[off:], record)
		p.setSlot(slot, off, uint16(len(record)))
		return nil
	}
	used := pageHeaderSize + int(p.slotCount())*slotSize
	if int(p.freeEnd())-used < len(record) {
		p.Compact()
		used = pageHeaderSize + int(p.slotCount())*slotSize
		if int(p.freeEnd())-used < len(record) {
			return ErrPageFull
		}
		off, _ = p.slot(slot) // compaction moved the record
	}
	newEnd := p.freeEnd() - uint16(len(record))
	copy(p[newEnd:], record)
	p.setFreeEnd(newEnd)
	p.setSlot(slot, newEnd, uint16(len(record)))
	return nil
}

// Compact rewrites the data region to squeeze out space left by deletes and
// in-place shrinking updates. Slot numbers are stable across compaction.
func (p *Page) Compact() {
	type rec struct {
		slot uint16
		data []byte
	}
	n := p.slotCount()
	recs := make([]rec, 0, n)
	for i := uint16(0); i < n; i++ {
		off, length := p.slot(i)
		if off == tombstoneOffset || p.checkExtent(i, off, length) != nil {
			continue
		}
		cp := make([]byte, length)
		copy(cp, p[off:off+length])
		recs = append(recs, rec{i, cp})
	}
	p.setFreeEnd(PageSize)
	for _, r := range recs {
		newEnd := p.freeEnd() - uint16(len(r.data))
		copy(p[newEnd:], r.data)
		p.setFreeEnd(newEnd)
		p.setSlot(r.slot, newEnd, uint16(len(r.data)))
	}
}

// Records calls fn for every live record on the page, in slot order.
// The data slice aliases the page. A corrupt slot directory stops the
// iteration with a structural ErrPageCorrupt.
func (p *Page) Records(fn func(slot uint16, data []byte) bool) error {
	n := p.slotCount()
	if n > maxSlots {
		return p.corrupt("slot count %d exceeds page capacity %d", n, maxSlots)
	}
	for i := uint16(0); i < n; i++ {
		off, length := p.slot(i)
		if off == tombstoneOffset {
			continue
		}
		if err := p.checkExtent(i, off, length); err != nil {
			return err
		}
		if !fn(i, p[off:int(off)+int(length)]) {
			return nil
		}
	}
	return nil
}

// Verify checks the page's structural invariants: the format byte, header
// bounds, slot-directory size, per-slot extents, tombstone shape, and that
// no two live records overlap. It does not check the checksum (see
// VerifyChecksum) — structural verification applies to in-memory pages too.
func (p *Page) Verify() error {
	if p[formatOff] != pageFormatV1 {
		return p.corrupt("bad page format byte 0x%02x", p[formatOff])
	}
	fe := int(p.freeEnd())
	if fe < pageHeaderSize || fe > PageSize {
		return p.corrupt("freeEnd %d outside page", fe)
	}
	n := p.slotCount()
	if n > maxSlots {
		return p.corrupt("slot count %d exceeds page capacity %d", n, maxSlots)
	}
	if pageHeaderSize+int(n)*slotSize > fe {
		return p.corrupt("slot directory (%d slots) overlaps data region (freeEnd %d)", n, fe)
	}
	type extent struct {
		off, end int
		slot     uint16
	}
	exts := make([]extent, 0, n)
	for i := uint16(0); i < n; i++ {
		off, length := p.slot(i)
		if off == tombstoneOffset {
			if length != 0 {
				return p.corrupt("tombstone slot %d has length %d", i, length)
			}
			continue
		}
		if int(off) < fe || int(off)+int(length) > PageSize {
			return p.corrupt("slot %d extent [%d,%d) outside data region [%d,%d)",
				i, off, int(off)+int(length), fe, PageSize)
		}
		if length == 0 {
			// A zero-length record occupies no bytes; it cannot overlap
			// anything, and including it would falsely flag a neighbor
			// starting at the same offset.
			continue
		}
		exts = append(exts, extent{int(off), int(off) + int(length), i})
	}
	sort.Slice(exts, func(a, b int) bool { return exts[a].off < exts[b].off })
	for j := 1; j < len(exts); j++ {
		if exts[j].off < exts[j-1].end {
			return p.corrupt("records at slots %d and %d overlap", exts[j-1].slot, exts[j].slot)
		}
	}
	return nil
}

// SlotRecord is one live record pinned to a fixed slot number, the unit a
// corrupt page is rebuilt from.
type SlotRecord struct {
	Slot uint16
	Data []byte
}

// RebuildPage reconstructs into p a slotted page holding exactly recs, each
// at its original slot number; absent slots below the maximum become
// tombstones. Records are laid out in slot order downward from the top of
// the page — the layout an append-only page has naturally, so rebuilding a
// page that never saw deletes or moves is byte-identical to the original
// flush. Pages that had deletes rebuild compacted (dead bytes are not
// reproduced).
func RebuildPage(p *Page, recs []SlotRecord) error {
	sorted := append([]SlotRecord(nil), recs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Slot < sorted[b].Slot })
	need := 0
	nslots := 0
	for i, r := range sorted {
		if i > 0 && r.Slot == sorted[i-1].Slot {
			return fmt.Errorf("storage: rebuild with duplicate slot %d", r.Slot)
		}
		if int(r.Slot) >= maxSlots {
			return fmt.Errorf("storage: rebuild slot %d exceeds page capacity", r.Slot)
		}
		need += len(r.Data)
		nslots = int(r.Slot) + 1
	}
	if pageHeaderSize+nslots*slotSize+need > PageSize {
		return ErrPageFull
	}
	p.Reset()
	p.setSlotCount(uint16(nslots))
	for i := 0; i < nslots; i++ {
		p.setSlot(uint16(i), tombstoneOffset, 0)
	}
	for _, r := range sorted {
		newEnd := p.freeEnd() - uint16(len(r.Data))
		copy(p[newEnd:], r.Data)
		p.setFreeEnd(newEnd)
		p.setSlot(r.Slot, newEnd, uint16(len(r.Data)))
	}
	return nil
}
