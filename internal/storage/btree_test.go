package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeInsertSeek(t *testing.T) {
	bt := NewBTree()
	bt.Insert([]byte("b"), 2)
	bt.Insert([]byte("a"), 1)
	bt.Insert([]byte("c"), 3)
	if got := bt.Seek([]byte("b")); len(got) != 1 || got[0] != 2 {
		t.Errorf("Seek(b) = %v", got)
	}
	if got := bt.Seek([]byte("zz")); got != nil {
		t.Errorf("Seek(missing) = %v", got)
	}
	if bt.Len() != 3 {
		t.Errorf("Len = %d", bt.Len())
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt := NewBTree()
	for i := uint64(0); i < 10; i++ {
		bt.Insert([]byte("dup"), i)
	}
	got := bt.Seek([]byte("dup"))
	if len(got) != 10 {
		t.Fatalf("Seek(dup) returned %d values", len(got))
	}
	seen := map[uint64]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("duplicate values collapsed: %v", got)
	}
	if !bt.Delete([]byte("dup"), 5) {
		t.Fatal("Delete(dup, 5) = false")
	}
	if bt.Delete([]byte("dup"), 5) {
		t.Fatal("second Delete(dup, 5) = true")
	}
	if got := bt.Seek([]byte("dup")); len(got) != 9 {
		t.Errorf("after delete Seek = %d values", len(got))
	}
}

func TestBTreeScanRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Insert([]byte(fmt.Sprintf("k%03d", i)), uint64(i))
	}
	var got []uint64
	bt.Scan([]byte("k010"), []byte("k020"), func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("Scan[k010,k020) = %v", got)
	}
	// Open-ended scans.
	n := 0
	bt.Scan(nil, nil, func([]byte, uint64) bool { n++; return true })
	if n != 100 {
		t.Errorf("full scan = %d", n)
	}
	n = 0
	bt.Scan([]byte("k090"), nil, func([]byte, uint64) bool { n++; return true })
	if n != 10 {
		t.Errorf("tail scan = %d", n)
	}
	n = 0
	bt.Scan(nil, []byte("k010"), func([]byte, uint64) bool { n++; return true })
	if n != 10 {
		t.Errorf("head scan = %d", n)
	}
	// Early stop.
	n = 0
	bt.Scan(nil, nil, func([]byte, uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("early stop = %d", n)
	}
}

func TestBTreeScanOrdered(t *testing.T) {
	bt := NewBTree()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		bt.Insert([]byte(fmt.Sprintf("%06d", r.Intn(100000))), uint64(i))
	}
	var prev []byte
	bt.Scan(nil, nil, func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(prev, k) > 0 {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		return true
	})
}

// TestBTreeAgainstReferenceModel drives the tree and a reference
// implementation with the same random operations and compares them.
func TestBTreeAgainstReferenceModel(t *testing.T) {
	type entry struct {
		k string
		v uint64
	}
	bt := NewBTree()
	var ref []entry
	r := rand.New(rand.NewSource(99))
	keys := make([]string, 50)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	for op := 0; op < 10000; op++ {
		k := keys[r.Intn(len(keys))]
		if r.Intn(3) > 0 || len(ref) == 0 { // insert-biased
			v := uint64(r.Intn(20))
			bt.Insert([]byte(k), v)
			ref = append(ref, entry{k, v})
		} else {
			i := r.Intn(len(ref))
			e := ref[i]
			if !bt.Delete([]byte(e.k), e.v) {
				t.Fatalf("op %d: Delete(%q,%d) = false", op, e.k, e.v)
			}
			ref = append(ref[:i], ref[i+1:]...)
		}
	}
	if bt.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", bt.Len(), len(ref))
	}
	// Compare full scans as sorted multisets.
	var got []entry
	bt.Scan(nil, nil, func(k []byte, v uint64) bool {
		got = append(got, entry{string(k), v})
		return true
	})
	sortEntries := func(es []entry) {
		sort.Slice(es, func(i, j int) bool {
			if es[i].k != es[j].k {
				return es[i].k < es[j].k
			}
			return es[i].v < es[j].v
		})
	}
	sortEntries(got)
	sortEntries(ref)
	if len(got) != len(ref) {
		t.Fatalf("scan count %d, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("entry %d: got %v, want %v", i, got[i], ref[i])
		}
	}
}

func TestBTreeDeleteMissing(t *testing.T) {
	bt := NewBTree()
	if bt.Delete([]byte("nope"), 1) {
		t.Error("Delete on empty tree = true")
	}
	bt.Insert([]byte("a"), 1)
	if bt.Delete([]byte("a"), 2) {
		t.Error("Delete with wrong value = true")
	}
}

func TestBTreeLargeSequentialInsert(t *testing.T) {
	bt := NewBTree()
	const n = 20000
	for i := 0; i < n; i++ {
		bt.Insert([]byte(fmt.Sprintf("%08d", i)), uint64(i))
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d", bt.Len())
	}
	for _, probe := range []int{0, 1, n / 2, n - 1} {
		got := bt.Seek([]byte(fmt.Sprintf("%08d", probe)))
		if len(got) != 1 || got[0] != uint64(probe) {
			t.Errorf("Seek(%d) = %v", probe, got)
		}
	}
}

func TestBTreeSeekAfterSplitsProperty(t *testing.T) {
	// Every inserted entry must remain seekable regardless of insert order.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		inserted := map[string]uint64{}
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("%04d", r.Intn(10000))
			if _, dup := inserted[k]; dup {
				continue
			}
			v := uint64(i)
			inserted[k] = v
			bt.Insert([]byte(k), v)
		}
		for k, v := range inserted {
			got := bt.Seek([]byte(k))
			if len(got) != 1 || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
