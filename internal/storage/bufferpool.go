package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// BufferPool caches pages from a PageStore in a fixed number of frames with
// pin-counted LRU eviction. All InsightNotes heap access goes through a
// pool so that benchmark I/O behaviour resembles a real host DBMS.
type BufferPool struct {
	mu       sync.Mutex
	store    PageStore
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = most recently used

	// quarantined maps pages known corrupt to their corruption error.
	// Fetch fails fast on them with the structured error until a repair
	// (ReplacePage / FlushResident) clears the entry.
	quarantined map[PageID]error

	// stats
	hits         uint64
	misses       uint64
	evictions    uint64
	readFailures uint64
}

type frame struct {
	page  Page
	pins  int
	dirty bool
	elem  *list.Element // non-nil only while unpinned (eligible for eviction)
}

// NewBufferPool creates a pool of capacity frames over store. Capacity must
// be at least 1.
func NewBufferPool(store PageStore, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		store:       store,
		capacity:    capacity,
		frames:      make(map[PageID]*frame, capacity),
		lru:         list.New(),
		quarantined: make(map[PageID]error),
	}
}

// Fetch pins page id and returns a pointer to its in-pool copy. The caller
// must Unpin it (with dirty=true if modified). The pointer is valid until
// the matching Unpin.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if qerr, ok := bp.quarantined[id]; ok {
		return nil, qerr
	}
	if fr, ok := bp.frames[id]; ok {
		bp.hits++
		if fr.elem != nil {
			bp.lru.Remove(fr.elem)
			fr.elem = nil
		}
		fr.pins++
		return &fr.page, nil
	}
	bp.misses++
	if err := bp.evictLocked(); err != nil {
		return nil, err
	}
	fr := &frame{pins: 1}
	if err := bp.store.ReadPage(id, &fr.page); err != nil {
		bp.readFailures++
		if errors.Is(err, ErrCorrupt) {
			// Quarantine on first sight so repeated fetches fail fast with
			// the structured error instead of re-reading a bad page.
			bp.quarantined[id] = err
		}
		return nil, err
	}
	bp.frames[id] = fr
	return &fr.page, nil
}

// Unpin releases one pin on page id, marking the frame dirty when the
// caller modified it. Unpinning a page that is not resident or not pinned
// is a programming error and returns one.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	if fr.pins == 0 {
		fr.elem = bp.lru.PushFront(id)
	}
	return nil
}

// Allocate creates a new page in the underlying store and returns it
// pinned, ready for writes.
func (bp *BufferPool) Allocate() (PageID, *Page, error) {
	id, err := bp.store.Allocate()
	if err != nil {
		return 0, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.evictLocked(); err != nil {
		return 0, nil, err
	}
	fr := &frame{pins: 1}
	fr.page.Reset()
	fr.dirty = true
	bp.frames[id] = fr
	return id, &fr.page, nil
}

// evictLocked makes room for one more frame, flushing a dirty victim.
// Requires bp.mu held.
func (bp *BufferPool) evictLocked() error {
	for len(bp.frames) >= bp.capacity {
		back := bp.lru.Back()
		if back == nil {
			return fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", bp.capacity)
		}
		victim := back.Value.(PageID)
		fr := bp.frames[victim]
		if fr.dirty {
			if err := bp.store.WritePage(victim, &fr.page); err != nil {
				return err
			}
		}
		bp.lru.Remove(back)
		delete(bp.frames, victim)
		bp.evictions++
	}
	return nil
}

// FlushAll writes every dirty resident page back to the store.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.dirty {
			if err := bp.store.WritePage(id, &fr.page); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return bp.store.Sync()
}

// Stats returns the hit and miss counts since creation.
func (bp *BufferPool) Stats() (hits, misses uint64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses
}

// Evictions returns the number of frames evicted since creation.
func (bp *BufferPool) Evictions() uint64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.evictions
}

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// ReadFailures returns the number of Fetch calls that failed reading from
// the backing store (corrupt pages and I/O errors).
func (bp *BufferPool) ReadFailures() uint64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.readFailures
}

// VerifyStored reads page id directly from the backing store — bypassing
// and not populating the cache — and returns the store's verification
// error, if any. Against a FileStore this checks the stamped CRC32-C of
// the on-disk bytes; a MemStore always verifies clean.
func (bp *BufferPool) VerifyStored(id PageID) error {
	pg := new(Page)
	return bp.store.ReadPage(id, pg)
}

// Quarantine marks page id corrupt: subsequent Fetches fail fast with err
// (which should wrap ErrCorrupt) instead of touching the store. An
// unpinned resident frame is dropped without flushing; a pinned frame is
// left to its pinner and the quarantine applies to new fetches only.
func (bp *BufferPool) Quarantine(id PageID, err error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err == nil {
		err = &ErrPageCorrupt{Page: id, Reason: "quarantined"}
	}
	bp.quarantined[id] = err
	if fr, ok := bp.frames[id]; ok && fr.pins == 0 {
		if fr.elem != nil {
			bp.lru.Remove(fr.elem)
		}
		delete(bp.frames, id)
	}
}

// Unquarantine clears the quarantine on page id without repairing it.
func (bp *BufferPool) Unquarantine(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	delete(bp.quarantined, id)
}

// Quarantined returns the ids of currently quarantined pages, sorted.
func (bp *BufferPool) Quarantined() []PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make([]PageID, 0, len(bp.quarantined))
	for id := range bp.quarantined {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// FlushResident writes the resident copy of page id back to the store when
// the page is cached and unpinned, clearing any quarantine — the cheapest
// repair source when the stored copy is corrupt but a good frame survives
// in memory. It reports whether a resident copy was written.
func (bp *BufferPool) FlushResident(id PageID) (bool, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins > 0 {
		return false, nil
	}
	if err := bp.store.WritePage(id, &fr.page); err != nil {
		return false, err
	}
	fr.dirty = false
	delete(bp.quarantined, id)
	return true, bp.store.Sync()
}

// ReplacePage installs src as the authoritative content of page id: it
// writes through to the store, refreshes any resident frame, and clears
// the page's quarantine — the repair path for a rebuilt page. It fails if
// the page is currently pinned.
func (bp *BufferPool) ReplacePage(id PageID, src *Page) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		if fr.pins > 0 {
			return fmt.Errorf("storage: replace of pinned page %d", id)
		}
		fr.page = *src
		fr.dirty = false
	}
	if err := bp.store.WritePage(id, src); err != nil {
		return err
	}
	delete(bp.quarantined, id)
	return bp.store.Sync()
}

// DropClean evicts every unpinned, clean resident frame, forcing
// subsequent fetches to re-read the store. The scrubber's cold sweeps and
// the bit-rot soak use it to make on-disk state authoritative.
func (bp *BufferPool) DropClean() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for id, fr := range bp.frames {
		if fr.pins == 0 && !fr.dirty {
			if fr.elem != nil {
				bp.lru.Remove(fr.elem)
			}
			delete(bp.frames, id)
			n++
		}
	}
	return n
}
