package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool caches pages from a PageStore in a fixed number of frames with
// pin-counted LRU eviction. All InsightNotes heap access goes through a
// pool so that benchmark I/O behaviour resembles a real host DBMS.
type BufferPool struct {
	mu       sync.Mutex
	store    PageStore
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = most recently used

	// stats
	hits      uint64
	misses    uint64
	evictions uint64
}

type frame struct {
	page  Page
	pins  int
	dirty bool
	elem  *list.Element // non-nil only while unpinned (eligible for eviction)
}

// NewBufferPool creates a pool of capacity frames over store. Capacity must
// be at least 1.
func NewBufferPool(store PageStore, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
	}
}

// Fetch pins page id and returns a pointer to its in-pool copy. The caller
// must Unpin it (with dirty=true if modified). The pointer is valid until
// the matching Unpin.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.hits++
		if fr.elem != nil {
			bp.lru.Remove(fr.elem)
			fr.elem = nil
		}
		fr.pins++
		return &fr.page, nil
	}
	bp.misses++
	if err := bp.evictLocked(); err != nil {
		return nil, err
	}
	fr := &frame{pins: 1}
	if err := bp.store.ReadPage(id, &fr.page); err != nil {
		return nil, err
	}
	bp.frames[id] = fr
	return &fr.page, nil
}

// Unpin releases one pin on page id, marking the frame dirty when the
// caller modified it. Unpinning a page that is not resident or not pinned
// is a programming error and returns one.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	if fr.pins == 0 {
		fr.elem = bp.lru.PushFront(id)
	}
	return nil
}

// Allocate creates a new page in the underlying store and returns it
// pinned, ready for writes.
func (bp *BufferPool) Allocate() (PageID, *Page, error) {
	id, err := bp.store.Allocate()
	if err != nil {
		return 0, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.evictLocked(); err != nil {
		return 0, nil, err
	}
	fr := &frame{pins: 1}
	fr.page.Reset()
	fr.dirty = true
	bp.frames[id] = fr
	return id, &fr.page, nil
}

// evictLocked makes room for one more frame, flushing a dirty victim.
// Requires bp.mu held.
func (bp *BufferPool) evictLocked() error {
	for len(bp.frames) >= bp.capacity {
		back := bp.lru.Back()
		if back == nil {
			return fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", bp.capacity)
		}
		victim := back.Value.(PageID)
		fr := bp.frames[victim]
		if fr.dirty {
			if err := bp.store.WritePage(victim, &fr.page); err != nil {
				return err
			}
		}
		bp.lru.Remove(back)
		delete(bp.frames, victim)
		bp.evictions++
	}
	return nil
}

// FlushAll writes every dirty resident page back to the store.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.dirty {
			if err := bp.store.WritePage(id, &fr.page); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return bp.store.Sync()
}

// Stats returns the hit and miss counts since creation.
func (bp *BufferPool) Stats() (hits, misses uint64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses
}

// Evictions returns the number of frames evicted since creation.
func (bp *BufferPool) Evictions() uint64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.evictions
}

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
