package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"insightnotes/internal/types"
)

// Order-preserving key encoding: for any two values a, b of the engine's
// comparison order (types.Compare), bytes.Compare(EncodeKey(a), EncodeKey(b))
// agrees in sign. This lets the B+tree index any column with plain byte
// comparisons.
//
// Layout per value: 1 tag byte establishing the cross-kind order used by
// types.Compare (NULL < numerics < TEXT < BOOL), then a payload:
//
//	NULL    — nothing
//	numeric — 8 bytes: IEEE-754 bits of the float64 value with the sign bit
//	          flipped for positives and all bits flipped for negatives
//	          (the classic total-order float trick); INT is widened so that
//	          INT 2 and FLOAT 2.0 encode identically, matching Compare.
//	TEXT    — escaped bytes (0x00 → 0x00 0xFF) followed by 0x00 0x00, so no
//	          encoded string is a prefix of another
//	BOOL    — 1 byte
const (
	tagNull    = 0x10
	tagNumeric = 0x20
	tagText    = 0x30
	tagBool    = 0x40
)

// EncodeKey appends the order-preserving encoding of v to dst.
func EncodeKey(dst []byte, v types.Value) []byte {
	switch v.Kind() {
	case types.KindNull:
		return append(dst, tagNull)
	case types.KindInt, types.KindFloat:
		dst = append(dst, tagNumeric)
		return appendOrderedFloat(dst, v.Float())
	case types.KindString:
		dst = append(dst, tagText)
		for i := 0; i < len(v.Str()); i++ {
			b := v.Str()[i]
			dst = append(dst, b)
			if b == 0x00 {
				dst = append(dst, 0xFF)
			}
		}
		return append(dst, 0x00, 0x00)
	case types.KindBool:
		dst = append(dst, tagBool)
		if v.Bool() {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
	return dst
}

// EncodeCompositeKey encodes several values into one composite key whose
// byte order equals lexicographic value order.
func EncodeCompositeKey(dst []byte, vs ...types.Value) []byte {
	for _, v := range vs {
		dst = EncodeKey(dst, v)
	}
	return dst
}

func appendOrderedFloat(dst []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative: flip everything
	} else {
		bits |= 1 << 63 // non-negative: flip the sign bit
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return append(dst, buf[:]...)
}

// ErrBadKey reports a malformed or truncated key encoding.
var ErrBadKey = errors.New("storage: malformed key encoding")

// DecodeKey decodes one value from the front of an encoded key, returning
// the value and the remaining bytes. Numeric keys decode as FLOAT: the
// encoding widens INT so that INT n and FLOAT n sort (and therefore
// decode) identically — callers comparing with types.Compare see no
// difference, which is the property the round-trip tests pin down.
func DecodeKey(b []byte) (types.Value, []byte, error) {
	if len(b) == 0 {
		return types.Value{}, nil, ErrBadKey
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNull:
		return types.Null(), b, nil
	case tagNumeric:
		if len(b) < 8 {
			return types.Value{}, nil, ErrBadKey
		}
		bits := binary.BigEndian.Uint64(b[:8])
		if bits&(1<<63) != 0 {
			bits ^= 1 << 63 // non-negative: the sign bit was flipped on
		} else {
			bits = ^bits // negative: every bit was flipped
		}
		return types.NewFloat(math.Float64frombits(bits)), b[8:], nil
	case tagText:
		var s []byte
		for {
			if len(b) < 2 {
				return types.Value{}, nil, ErrBadKey
			}
			if b[0] == 0x00 {
				if b[1] == 0x00 { // terminator
					return types.NewString(string(s)), b[2:], nil
				}
				if b[1] == 0xFF { // escaped NUL
					s = append(s, 0x00)
					b = b[2:]
					continue
				}
				return types.Value{}, nil, ErrBadKey
			}
			s = append(s, b[0])
			b = b[1:]
		}
	case tagBool:
		if len(b) < 1 {
			return types.Value{}, nil, ErrBadKey
		}
		return types.NewBool(b[0] != 0), b[1:], nil
	}
	return types.Value{}, nil, fmt.Errorf("%w: unknown tag 0x%02x", ErrBadKey, tag)
}

// DecodeCompositeKey decodes an entire composite key into its component
// values, failing on trailing garbage.
func DecodeCompositeKey(b []byte) ([]types.Value, error) {
	var out []types.Value
	for len(b) > 0 {
		v, rest, err := DecodeKey(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = rest
	}
	return out, nil
}

// KeySuccessor returns the smallest key strictly greater than any key with
// prefix k — used to build exclusive upper bounds for prefix range scans.
func KeySuccessor(k []byte) []byte {
	out := make([]byte, len(k), len(k)+1)
	copy(out, k)
	return append(out, 0xFF)
}
