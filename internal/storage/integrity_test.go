package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"insightnotes/internal/failpoint"
)

// TestChecksumRoundTrip verifies a stamped page re-verifies cleanly and
// that any single flipped payload byte fails verification.
func TestChecksumRoundTrip(t *testing.T) {
	var p Page
	p.Reset()
	if _, err := p.Insert([]byte("hello checksum")); err != nil {
		t.Fatal(err)
	}
	p.StampChecksum()
	if err := p.VerifyChecksum(3); err != nil {
		t.Fatalf("clean page failed verification: %v", err)
	}
	// Flip a byte in each region of the page: header, slot directory, data.
	for _, off := range []int{0, pageHeaderSize, PageSize - 1} {
		q := p
		q[off] ^= 0x01
		err := q.VerifyChecksum(3)
		if err == nil {
			t.Fatalf("flip at %d went undetected", off)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: error %v does not match ErrCorrupt", off, err)
		}
	}
	// The structured error carries the page id and both sums.
	q := p
	q[PageSize-1] ^= 0xFF
	var pc *ErrPageCorrupt
	if err := q.VerifyChecksum(7); !errors.As(err, &pc) {
		t.Fatalf("error %v is not *ErrPageCorrupt", err)
	} else if pc.Page != 7 || pc.Want == pc.Got {
		t.Fatalf("structured error = %+v", pc)
	}
}

// TestChecksumBadFormatByte verifies the format byte is checked before the
// checksum, so a page of zeroes (or from a future format) is rejected with
// a format error rather than a confusing sum mismatch.
func TestChecksumBadFormatByte(t *testing.T) {
	var p Page
	p.Reset()
	p[formatOff] = 0x7F
	p.StampChecksum()
	err := p.VerifyChecksum(0)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad format byte: %v", err)
	}
}

// TestFileStoreDetectsOnDiskFlip writes a page through a FileStore, flips
// one byte of the file underneath it, and verifies the next read returns a
// structured ErrPageCorrupt rather than garbage.
func TestFileStoreDetectsOnDiskFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	id, _ := fs.Allocate()
	var p Page
	p.Reset()
	p.Insert([]byte("soon to rot"))
	if err := fs.WritePage(id, &p); err != nil {
		t.Fatal(err)
	}
	var back Page
	if err := fs.ReadPage(id, &back); err != nil {
		t.Fatalf("clean read: %v", err)
	}
	// Flip one payload byte on disk behind the store's back.
	f := fs.f
	buf := make([]byte, 1)
	off := int64(id)*PageSize + PageSize - 1
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
	err = fs.ReadPage(id, &back)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("on-disk flip: read = %v", err)
	}
	var pc *ErrPageCorrupt
	if !errors.As(err, &pc) || pc.Page != id {
		t.Fatalf("structured error = %v", err)
	}
}

// TestFileStoreReadBitrotFailpoint verifies the injected-bit-rot failpoint
// corrupts reads in a way the checksum catches, and that disabling it
// restores clean reads (the injection happens after the disk read).
func TestFileStoreReadBitrotFailpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	id, _ := fs.Allocate()
	var p Page
	p.Reset()
	p.Insert([]byte("bitrot target"))
	if err := fs.WritePage(id, &p); err != nil {
		t.Fatal(err)
	}
	failpoint.EnableError(failpoint.StorageReadBitrot, errors.New("inject"))
	defer failpoint.Disable(failpoint.StorageReadBitrot)
	var back Page
	if err := fs.ReadPage(id, &back); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("injected bit rot: read = %v", err)
	}
	failpoint.Disable(failpoint.StorageReadBitrot)
	if err := fs.ReadPage(id, &back); err != nil {
		t.Fatalf("read after disabling failpoint: %v", err)
	}
}

// TestFileStoreFlushCorruptFailpoint verifies the torn-write failpoint
// garbles the flushed bytes after the stamp so the next read fails, while
// the caller's in-memory page is untouched.
func TestFileStoreFlushCorruptFailpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	id, _ := fs.Allocate()
	var p Page
	p.Reset()
	p.Insert([]byte("torn write"))
	before := p
	failpoint.EnableError(failpoint.StorageFlushCorrupt, errors.New("inject"))
	if err := fs.WritePage(id, &p); err != nil {
		t.Fatal(err)
	}
	failpoint.Disable(failpoint.StorageFlushCorrupt)
	if p != before {
		t.Fatal("WritePage mutated the caller's page")
	}
	var back Page
	if err := fs.ReadPage(id, &back); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read after torn write = %v", err)
	}
	// A clean re-flush repairs the stored copy.
	if err := fs.WritePage(id, &p); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadPage(id, &back); err != nil {
		t.Fatalf("read after repair flush: %v", err)
	}
}

// TestPageVerifyStructural exercises Verify on hand-corrupted slot
// directories: bad format, insane slot count, directory/data overlap,
// out-of-region extents, fat tombstones, and overlapping records.
func TestPageVerifyStructural(t *testing.T) {
	mk := func() *Page {
		var p Page
		p.Reset()
		p.Insert([]byte("alpha"))
		p.Insert([]byte("beta"))
		return &p
	}
	if err := mk().Verify(); err != nil {
		t.Fatalf("clean page: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Page)
	}{
		{"bad format byte", func(p *Page) { p[formatOff] = 0x00 }},
		{"slot count over capacity", func(p *Page) { p.setSlotCount(maxSlots + 1) }},
		{"freeEnd past page end", func(p *Page) { p.setFreeEnd(PageSize) }}, // slots exist but freeEnd says no data
		{"directory overlaps data", func(p *Page) { p.setFreeEnd(pageHeaderSize) }},
		{"extent outside data region", func(p *Page) { p.setSlot(0, pageHeaderSize, 4) }},
		{"extent past page end", func(p *Page) { p.setSlot(0, PageSize-2, 8) }},
		{"fat tombstone", func(p *Page) { p.setSlot(0, tombstoneOffset, 3) }},
		{"overlapping records", func(p *Page) {
			off, _ := p.slot(1)
			p.setSlot(0, off+1, 4)
		}},
	}
	for _, tc := range cases {
		p := mk()
		tc.mutate(p)
		err := p.Verify()
		if err == nil {
			t.Errorf("%s: Verify passed", tc.name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not match ErrCorrupt", tc.name, err)
		}
	}
}

// TestRebuildPageByteIdentical verifies that rebuilding an append-only page
// from its slot records reproduces the original bytes exactly — the
// property the replica-assisted heap repair relies on to restore a page
// whose checksum then matches a fresh stamp.
func TestRebuildPageByteIdentical(t *testing.T) {
	var orig Page
	orig.Reset()
	recs := []SlotRecord{}
	for _, s := range []string{"one", "twotwo", "three-three", "4"} {
		slot, err := orig.Insert([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, SlotRecord{Slot: slot, Data: []byte(s)})
	}
	var rebuilt Page
	if err := RebuildPage(&rebuilt, recs); err != nil {
		t.Fatal(err)
	}
	if rebuilt != orig {
		t.Fatal("rebuild of append-only page is not byte-identical")
	}
}

// TestRebuildPagePreservesSlotsAndTombstones verifies slot-number fidelity:
// missing slot numbers rebuild as tombstones and records keep their slots.
func TestRebuildPagePreservesSlotsAndTombstones(t *testing.T) {
	var p Page
	if err := RebuildPage(&p, []SlotRecord{
		{Slot: 1, Data: []byte("kept-one")},
		{Slot: 3, Data: []byte("kept-three")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("rebuilt page fails Verify: %v", err)
	}
	if n := p.NumSlots(); n != 4 {
		t.Fatalf("NumSlots = %d, want 4", n)
	}
	for _, dead := range []uint16{0, 2} {
		if _, err := p.Get(dead); err != ErrNoSuchRecord {
			t.Errorf("slot %d = %v, want tombstone", dead, err)
		}
	}
	if got, _ := p.Get(1); !bytes.Equal(got, []byte("kept-one")) {
		t.Errorf("slot 1 = %q", got)
	}
	if got, _ := p.Get(3); !bytes.Equal(got, []byte("kept-three")) {
		t.Errorf("slot 3 = %q", got)
	}
	// Rejections: duplicate slots, slot past capacity, oversized payload.
	if err := RebuildPage(&p, []SlotRecord{{Slot: 0}, {Slot: 0}}); err == nil {
		t.Error("duplicate slots accepted")
	}
	if err := RebuildPage(&p, []SlotRecord{{Slot: maxSlots}}); err == nil {
		t.Error("slot past capacity accepted")
	}
	if err := RebuildPage(&p, []SlotRecord{{Slot: 0, Data: make([]byte, PageSize)}}); err != ErrPageFull {
		t.Errorf("oversized rebuild = %v, want ErrPageFull", err)
	}
}
