package storage

import (
	"bytes"
	"math/rand"
	"testing"

	"insightnotes/internal/types"
)

// randValue draws a random value covering every kind the key encoding
// supports, biased toward collision-prone inputs (small ints, shared
// string prefixes, embedded NULs) so ties and near-ties are exercised.
func randValue(rng *rand.Rand) types.Value {
	switch rng.Intn(10) {
	case 0:
		return types.Null()
	case 1:
		return types.NewBool(rng.Intn(2) == 0)
	case 2, 3:
		return types.NewInt(int64(rng.Intn(7) - 3))
	case 4:
		return types.NewInt(rng.Int63() - rng.Int63())
	case 5:
		return types.NewFloat((rng.Float64() - 0.5) * 1e6)
	case 6:
		// Exact-int floats collide with KindInt encodings on purpose.
		return types.NewFloat(float64(rng.Intn(7) - 3))
	default:
		alphabet := []string{"", "a", "ab", "b", "\x00", "a\x00", "a\x00b", "a\xffz", "annotation"}
		s := alphabet[rng.Intn(len(alphabet))]
		if rng.Intn(3) == 0 {
			s += string(rune('a' + rng.Intn(3)))
		}
		return types.NewString(s)
	}
}

// compareTuples is the logical lexicographic order of two equal-arity
// composite keys under the engine's value ordering.
func compareTuples(a, b []types.Value) int {
	for i := range a {
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// TestKeyEncodingOrderProperty is the property the B+tree range scans rely
// on: for random composite keys, bytes.Compare over the encodings agrees
// in sign with the logical lexicographic value order.
func TestKeyEncodingOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20000; iter++ {
		arity := 1 + rng.Intn(3)
		a := make([]types.Value, arity)
		b := make([]types.Value, arity)
		for i := range a {
			a[i] = randValue(rng)
			if rng.Intn(3) == 0 {
				b[i] = a[i] // force component ties
			} else {
				b[i] = randValue(rng)
			}
		}
		ea := EncodeCompositeKey(nil, a...)
		eb := EncodeCompositeKey(nil, b...)
		want := sign(compareTuples(a, b))
		got := sign(bytes.Compare(ea, eb))
		if got != want {
			t.Fatalf("order mismatch: %v vs %v: logical %d, encoded %d\n% x\n% x",
				a, b, want, got, ea, eb)
		}
	}
}

// TestKeyEncodingRoundTripProperty checks that random composite keys decode
// back to values that compare equal to the originals (numerics come back as
// FLOAT, which Compare treats as identical to the INT they widened from).
func TestKeyEncodingRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 20000; iter++ {
		arity := 1 + rng.Intn(4)
		vs := make([]types.Value, arity)
		for i := range vs {
			vs[i] = randValue(rng)
		}
		enc := EncodeCompositeKey(nil, vs...)
		dec, err := DecodeCompositeKey(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", vs, err)
		}
		if len(dec) != len(vs) {
			t.Fatalf("decode %v: arity %d, want %d", vs, len(dec), len(vs))
		}
		for i := range vs {
			if types.Compare(vs[i], dec[i]) != 0 {
				t.Fatalf("round-trip %v: component %d decoded as %v", vs, i, dec[i])
			}
		}
	}
}

// TestKeyEncodingPrefixOrder pins the prefix rule composite scans use: a
// key that extends another with more components sorts strictly after it.
func TestKeyEncodingPrefixOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 5000; iter++ {
		arity := 1 + rng.Intn(3)
		vs := make([]types.Value, arity+1)
		for i := range vs {
			vs[i] = randValue(rng)
		}
		short := EncodeCompositeKey(nil, vs[:arity]...)
		long := EncodeCompositeKey(nil, vs...)
		if bytes.Compare(short, long) >= 0 {
			t.Fatalf("prefix %v not < extension %v", vs[:arity], vs)
		}
	}
}

// TestDecodeKeyRejectsGarbage covers the malformed-input paths.
func TestDecodeKeyRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		{},                    // empty
		{0x99},                // unknown tag
		{tagNumeric, 1, 2},    // truncated numeric
		{tagText, 'a'},        // unterminated text
		{tagText, 0x00, 0x42}, // invalid escape
		{tagBool},             // missing bool payload
	}
	for _, b := range bad {
		if _, _, err := DecodeKey(b); err == nil {
			t.Errorf("DecodeKey(% x) accepted garbage", b)
		}
	}
	// Trailing garbage after a valid component fails the composite decode.
	enc := EncodeKey(nil, types.NewInt(7))
	if _, err := DecodeCompositeKey(append(enc, 0x99)); err == nil {
		t.Error("DecodeCompositeKey accepted trailing garbage")
	}
}
