package storage

import (
	"bytes"
	"fmt"
	"testing"
)

func newPage() *Page {
	var p Page
	p.Reset()
	return &p
}

func TestPageInsertGet(t *testing.T) {
	p := newPage()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var slots []uint16
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Get(s)
		if err != nil || !bytes.Equal(got, recs[i]) {
			t.Errorf("Get(%d) = %q, %v; want %q", s, got, err, recs[i])
		}
	}
	if p.NumSlots() != 3 {
		t.Errorf("NumSlots = %d", p.NumSlots())
	}
}

func TestPageDeleteAndSlotReuse(t *testing.T) {
	p := newPage()
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s0); err != ErrNoSuchRecord {
		t.Errorf("Get(deleted) = %v, want ErrNoSuchRecord", err)
	}
	if err := p.Delete(s0); err != ErrNoSuchRecord {
		t.Errorf("double Delete = %v, want ErrNoSuchRecord", err)
	}
	s2, err := p.Insert([]byte("three"))
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s0 {
		t.Errorf("tombstone slot not reused: got %d, want %d", s2, s0)
	}
	if got, _ := p.Get(s1); !bytes.Equal(got, []byte("two")) {
		t.Errorf("survivor corrupted: %q", got)
	}
	if p.NumSlots() != 2 {
		t.Errorf("NumSlots = %d, want 2 (reuse)", p.NumSlots())
	}
}

func TestPageUpdateInPlaceAndGrow(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("abcdef"))
	if err := p.Update(s, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); !bytes.Equal(got, []byte("xyz")) {
		t.Errorf("after shrink update: %q", got)
	}
	long := bytes.Repeat([]byte("L"), 100)
	if err := p.Update(s, long); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); !bytes.Equal(got, long) {
		t.Errorf("after grow update: %q", got)
	}
}

func TestPageFullAndCompact(t *testing.T) {
	p := newPage()
	rec := bytes.Repeat([]byte("x"), 1000)
	var slots []uint16
	for {
		s, err := p.Insert(rec)
		if err == ErrPageFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if len(slots) != 8 { // 8 * 1004ish bytes fits, 9th doesn't
		t.Logf("filled %d records", len(slots))
	}
	// Delete two and verify space is reusable after compaction via Update.
	p.Delete(slots[0])
	p.Delete(slots[1])
	big := bytes.Repeat([]byte("y"), 1800)
	if err := p.Update(slots[2], big); err != nil {
		t.Fatalf("Update after deletes should compact and fit: %v", err)
	}
	if got, _ := p.Get(slots[2]); !bytes.Equal(got, big) {
		t.Error("record corrupted after compacting update")
	}
	// Remaining records intact.
	for _, s := range slots[3:] {
		if got, err := p.Get(s); err != nil || !bytes.Equal(got, rec) {
			t.Errorf("slot %d corrupted after Compact: %v", s, err)
		}
	}
}

func TestPageRecordTooLarge(t *testing.T) {
	p := newPage()
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); err != ErrRecordTooLarge {
		t.Errorf("Insert(huge) = %v, want ErrRecordTooLarge", err)
	}
	s, _ := p.Insert([]byte("ok"))
	if err := p.Update(s, make([]byte, MaxRecordSize+1)); err != ErrRecordTooLarge {
		t.Errorf("Update(huge) = %v, want ErrRecordTooLarge", err)
	}
	// Max-size record fits on an empty page.
	p2 := newPage()
	if _, err := p2.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Errorf("Insert(max) = %v", err)
	}
}

func TestPageRecordsIteration(t *testing.T) {
	p := newPage()
	for i := 0; i < 5; i++ {
		p.Insert([]byte{byte(i)})
	}
	p.Delete(2)
	var seen []byte
	p.Records(func(slot uint16, data []byte) bool {
		seen = append(seen, data[0])
		return true
	})
	want := []byte{0, 1, 3, 4}
	if !bytes.Equal(seen, want) {
		t.Errorf("Records = %v, want %v", seen, want)
	}
	// Early stop.
	count := 0
	p.Records(func(uint16, []byte) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestPageGetInvalidSlot(t *testing.T) {
	p := newPage()
	if _, err := p.Get(0); err != ErrNoSuchRecord {
		t.Errorf("Get(0) on empty page = %v", err)
	}
	if err := p.Delete(7); err != ErrNoSuchRecord {
		t.Errorf("Delete(7) = %v", err)
	}
	if err := p.Update(7, []byte("x")); err != ErrNoSuchRecord {
		t.Errorf("Update(7) = %v", err)
	}
}

func TestPageManySmallRecords(t *testing.T) {
	p := newPage()
	n := 0
	for {
		rec := []byte(fmt.Sprintf("r%04d", n))
		if _, err := p.Insert(rec); err != nil {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no records fit")
	}
	// All retrievable and distinct.
	seen := map[string]bool{}
	p.Records(func(_ uint16, data []byte) bool {
		seen[string(data)] = true
		return true
	})
	if len(seen) != n {
		t.Errorf("distinct records = %d, want %d", len(seen), n)
	}
}
