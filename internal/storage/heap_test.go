package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func newHeap(frames int) *HeapFile {
	return NewHeapFile(NewBufferPool(NewMemStore(), frames))
}

func TestHeapInsertGetDelete(t *testing.T) {
	h := newHeap(8)
	rid, err := h.Insert([]byte("swan goose"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || !bytes.Equal(got, []byte("swan goose")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err != ErrNoSuchRecord {
		t.Errorf("Get after delete = %v", err)
	}
	if h.Len() != 0 {
		t.Errorf("Len after delete = %d", h.Len())
	}
}

func TestHeapSpansPages(t *testing.T) {
	h := newHeap(4)
	rec := bytes.Repeat([]byte("p"), 3000)
	var rids []RID
	for i := 0; i < 10; i++ { // 10 * 3KB ≈ 4 pages
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if len(h.Pages()) < 4 {
		t.Errorf("pages = %d, want >= 4", len(h.Pages()))
	}
	for _, rid := range rids {
		if got, err := h.Get(rid); err != nil || len(got) != 3000 {
			t.Errorf("Get(%v) len %d, %v", rid, len(got), err)
		}
	}
}

func TestHeapScan(t *testing.T) {
	h := newHeap(8)
	want := map[string]bool{}
	for i := 0; i < 100; i++ {
		rec := fmt.Sprintf("record-%03d", i)
		if _, err := h.Insert([]byte(rec)); err != nil {
			t.Fatal(err)
		}
		want[rec] = true
	}
	got := map[string]bool{}
	err := h.Scan(func(rid RID, data []byte) bool {
		got[string(data)] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("scanned %d records, want %d", len(got), len(want))
	}
	// Early termination.
	n := 0
	h.Scan(func(RID, []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestHeapUpdateInPlaceAndMove(t *testing.T) {
	h := newHeap(8)
	rid, _ := h.Insert([]byte("short"))
	// Fill the rest of the page so a grow-update must move.
	filler := bytes.Repeat([]byte("f"), 2000)
	for i := 0; i < 4; i++ {
		h.Insert(filler)
	}
	rid2, err := h.Update(rid, []byte("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	if rid2 != rid {
		t.Errorf("shrink update moved the record: %v -> %v", rid, rid2)
	}
	big := bytes.Repeat([]byte("B"), 4000)
	rid3, err := h.Update(rid2, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid3)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("after move Get = len %d, %v", len(got), err)
	}
	if rid3 != rid2 {
		// moved: old RID must now be dead
		if _, err := h.Get(rid2); err != ErrNoSuchRecord {
			t.Errorf("old RID still live after move: %v", err)
		}
	}
	if h.Len() != 5 {
		t.Errorf("Len = %d, want 5", h.Len())
	}
}

func TestHeapOpenRecountsRecords(t *testing.T) {
	pool := NewBufferPool(NewMemStore(), 8)
	h := NewHeapFile(pool)
	var rids []RID
	for i := 0; i < 20; i++ {
		rid, _ := h.Insert([]byte(fmt.Sprintf("r%d", i)))
		rids = append(rids, rid)
	}
	h.Delete(rids[3])
	h.Delete(rids[7])

	h2, err := OpenHeapFile(pool, h.Pages())
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 18 {
		t.Errorf("reopened Len = %d, want 18", h2.Len())
	}
	// New inserts land correctly.
	rid, err := h2.Insert([]byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := h2.Get(rid); !bytes.Equal(got, []byte("after-reopen")) {
		t.Error("insert after reopen corrupted")
	}
}

func TestHeapRejectsHugeRecords(t *testing.T) {
	h := newHeap(4)
	if _, err := h.Insert(make([]byte, MaxRecordSize+1)); err != ErrRecordTooLarge {
		t.Errorf("Insert = %v", err)
	}
	rid, _ := h.Insert([]byte("x"))
	if _, err := h.Update(rid, make([]byte, MaxRecordSize+1)); err != ErrRecordTooLarge {
		t.Errorf("Update = %v", err)
	}
}

func TestHeapRandomizedWorkload(t *testing.T) {
	h := newHeap(16)
	r := rand.New(rand.NewSource(42))
	live := map[RID][]byte{}
	var order []RID
	for op := 0; op < 2000; op++ {
		switch {
		case len(order) == 0 || r.Intn(10) < 6: // insert
			rec := make([]byte, r.Intn(200)+1)
			r.Read(rec)
			rid, err := h.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			live[rid] = rec
			order = append(order, rid)
		case r.Intn(2) == 0: // delete
			i := r.Intn(len(order))
			rid := order[i]
			order = append(order[:i], order[i+1:]...)
			if err := h.Delete(rid); err != nil {
				t.Fatalf("Delete(%v): %v", rid, err)
			}
			delete(live, rid)
		default: // update
			i := r.Intn(len(order))
			rid := order[i]
			rec := make([]byte, r.Intn(400)+1)
			r.Read(rec)
			nrid, err := h.Update(rid, rec)
			if err != nil {
				t.Fatalf("Update(%v): %v", rid, err)
			}
			if nrid != rid {
				delete(live, rid)
				order[i] = nrid
			}
			live[nrid] = rec
		}
	}
	if h.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(live))
	}
	for rid, want := range live {
		got, err := h.Get(rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%v) mismatch: %v", rid, err)
		}
	}
	// Scan agrees with the model.
	n := 0
	h.Scan(func(rid RID, data []byte) bool {
		want, ok := live[rid]
		if !ok || !bytes.Equal(data, want) {
			t.Errorf("scan saw unexpected record at %v", rid)
		}
		n++
		return true
	})
	if n != len(live) {
		t.Errorf("scan count = %d, want %d", n, len(live))
	}
}
