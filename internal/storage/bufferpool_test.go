package storage

import (
	"sync"
	"testing"
)

func TestBufferPoolFetchUnpin(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 4)
	id, pg, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Insert([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := bp.Unpin(id, true); err != nil {
		t.Fatal(err)
	}
	pg2, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := pg2.Get(0); string(got) != "hello" {
		t.Errorf("Fetch = %q", got)
	}
	bp.Unpin(id, false)
	hits, misses := bp.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	bp := NewBufferPool(NewMemStore(), 2)
	if err := bp.Unpin(0, false); err == nil {
		t.Error("Unpin of non-resident page succeeded")
	}
	id, _, _ := bp.Allocate()
	bp.Unpin(id, false)
	if err := bp.Unpin(id, false); err == nil {
		t.Error("double Unpin succeeded")
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, pg, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pg.Insert([]byte{byte('a' + i)})
		if err := bp.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if bp.Resident() > 2 {
		t.Errorf("resident = %d, capacity 2", bp.Resident())
	}
	// Every page must be readable with its data (evicted ones via store).
	for i, id := range ids {
		pg, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := pg.Get(0); got[0] != byte('a'+i) {
			t.Errorf("page %d = %q", id, got)
		}
		bp.Unpin(id, false)
	}
}

func TestBufferPoolAllPinnedExhausted(t *testing.T) {
	bp := NewBufferPool(NewMemStore(), 2)
	id0, _, _ := bp.Allocate()
	id1, _, _ := bp.Allocate()
	_ = id0
	_ = id1
	// Both frames pinned; a third allocation must fail rather than evict.
	if _, _, err := bp.Allocate(); err == nil {
		t.Error("Allocate with all frames pinned succeeded")
	}
	bp.Unpin(id0, false)
	if _, _, err := bp.Allocate(); err != nil {
		t.Errorf("Allocate after Unpin: %v", err)
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 4)
	id, pg, _ := bp.Allocate()
	pg.Insert([]byte("dirty"))
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var direct Page
	if err := store.ReadPage(id, &direct); err != nil {
		t.Fatal(err)
	}
	if got, _ := direct.Get(0); string(got) != "dirty" {
		t.Errorf("store after FlushAll = %q", got)
	}
}

func TestBufferPoolConcurrentAccess(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 8)
	var ids []PageID
	for i := 0; i < 16; i++ {
		id, pg, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pg.Insert([]byte{byte(i)})
		bp.Unpin(id, true)
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(g*7+i)%len(ids)]
				pg, err := bp.Fetch(id)
				if err != nil {
					t.Error(err)
					return
				}
				if got, _ := pg.Get(0); got[0] != byte(int(id)) {
					t.Errorf("page %d = %v", id, got)
				}
				bp.Unpin(id, false)
			}
		}(g)
	}
	wg.Wait()
}

func TestBufferPoolMinimumCapacity(t *testing.T) {
	bp := NewBufferPool(NewMemStore(), 0) // clamped to 1
	id, _, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, true)
	if _, err := bp.Fetch(id); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, false)
}
