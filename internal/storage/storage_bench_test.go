package storage

import (
	"fmt"
	"testing"

	"insightnotes/internal/types"
)

func BenchmarkPageInsert(b *testing.B) {
	rec := []byte("a medium sized heap record for benchmarking purposes")
	var p Page
	p.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Insert(rec); err == ErrPageFull {
			p.Reset()
		}
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	h := NewHeapFile(NewBufferPool(NewMemStore(), 256))
	rec := []byte("a medium sized heap record for benchmarking purposes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	h := NewHeapFile(NewBufferPool(NewMemStore(), 256))
	for i := 0; i < 10000; i++ {
		h.Insert([]byte(fmt.Sprintf("record-%06d", i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		h.Scan(func(RID, []byte) bool { n++; return true })
		if n != 10000 {
			b.Fatal("short scan")
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	bt := NewBTree()
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = EncodeKey(nil, types.NewInt(int64(i*7919%100000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(keys[i%len(keys)], uint64(i))
	}
}

func BenchmarkBTreeSeek(b *testing.B) {
	bt := NewBTree()
	const n = 100000
	for i := 0; i < n; i++ {
		bt.Insert(EncodeKey(nil, types.NewInt(int64(i))), uint64(i))
	}
	probes := make([][]byte, 256)
	for i := range probes {
		probes[i] = EncodeKey(nil, types.NewInt(int64(i*389%n)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := bt.Seek(probes[i%len(probes)]); len(got) != 1 {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkEncodeKey(b *testing.B) {
	v := types.NewString("anser cygnoides swan goose")
	buf := make([]byte, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = EncodeKey(buf[:0], v)
	}
}

func BenchmarkBufferPoolFetch(b *testing.B) {
	store := NewMemStore()
	bp := NewBufferPool(store, 64)
	var ids []PageID
	for i := 0; i < 32; i++ {
		id, _, err := bp.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		bp.Unpin(id, true)
		ids = append(ids, id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		if _, err := bp.Fetch(id); err != nil {
			b.Fatal(err)
		}
		bp.Unpin(id, false)
	}
}

// BenchmarkPageChecksum isolates the integrity tax: one CRC32-C
// computation over a full 8 KiB page — the cost WritePage adds per flush
// and ReadPage adds per miss (E17).
func BenchmarkPageChecksum(b *testing.B) {
	var p Page
	p.Reset()
	for p.FreeSpace() > 64 {
		p.Insert([]byte("a medium sized heap record for benchmarking purposes"))
	}
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.StampChecksum()
	}
}

// BenchmarkFileStoreReadPage measures the full verified read path: one
// 8 KiB pread plus checksum verification (E17). Compare against
// BenchmarkPageChecksum to see the verification share.
func BenchmarkFileStoreReadPage(b *testing.B) {
	fs, err := OpenFileStore(b.TempDir() + "/pages.db")
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	id, _ := fs.Allocate()
	var p Page
	p.Reset()
	for p.FreeSpace() > 64 {
		p.Insert([]byte("a medium sized heap record for benchmarking purposes"))
	}
	if err := fs.WritePage(id, &p); err != nil {
		b.Fatal(err)
	}
	var dst Page
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.ReadPage(id, &dst); err != nil {
			b.Fatal(err)
		}
	}
}
