package storage

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"insightnotes/internal/types"
)

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestEncodeKeyPreservesOrder(t *testing.T) {
	vals := []types.Value{
		types.Null(),
		types.NewInt(-100), types.NewInt(-1), types.NewInt(0), types.NewInt(1), types.NewInt(100),
		types.NewFloat(-2.5), types.NewFloat(-0.5), types.NewFloat(0.5), types.NewFloat(99.9),
		types.NewString(""), types.NewString("a"), types.NewString("ab"), types.NewString("b"),
		types.NewString("swan"), types.NewString("swan goose"),
		types.NewBool(false), types.NewBool(true),
	}
	for _, a := range vals {
		for _, b := range vals {
			ka := EncodeKey(nil, a)
			kb := EncodeKey(nil, b)
			if got, want := sign(bytes.Compare(ka, kb)), sign(types.Compare(a, b)); got != want {
				t.Errorf("order mismatch: %v vs %v: bytes %d, values %d", a, b, got, want)
			}
		}
	}
}

// randomValue builds an arbitrary Value for property tests.
func randomValue(r *rand.Rand) types.Value {
	switch r.Intn(5) {
	case 0:
		return types.Null()
	case 1:
		return types.NewInt(r.Int63n(2000) - 1000)
	case 2:
		return types.NewFloat(r.Float64()*200 - 100)
	case 3:
		letters := []byte("ab\x00cde")
		b := make([]byte, r.Intn(10))
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return types.NewString(string(b))
	default:
		return types.NewBool(r.Intn(2) == 0)
	}
}

func TestEncodeKeyOrderProperty(t *testing.T) {
	f := func(a, b types.Value) bool {
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		return sign(bytes.Compare(ka, kb)) == sign(types.Compare(a, b))
	}
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomValue(r))
			args[1] = reflect.ValueOf(randomValue(r))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyIntFloatEquivalence(t *testing.T) {
	// INT n and FLOAT n compare equal, so they must encode identically.
	f := func(n int32) bool {
		ki := EncodeKey(nil, types.NewInt(int64(n)))
		kf := EncodeKey(nil, types.NewFloat(float64(n)))
		return bytes.Equal(ki, kf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyStringsWithNulBytes(t *testing.T) {
	a := types.NewString("a\x00b")
	b := types.NewString("a\x00c")
	c := types.NewString("a")
	ka, kb, kc := EncodeKey(nil, a), EncodeKey(nil, b), EncodeKey(nil, c)
	if bytes.Compare(ka, kb) >= 0 {
		t.Error("NUL-containing strings misordered")
	}
	if bytes.Compare(kc, ka) >= 0 {
		t.Error("prefix string must sort before its extensions")
	}
}

func TestCompositeKeyOrder(t *testing.T) {
	// ("a", 2) < ("a", 10) < ("b", 1): composite order is lexicographic by
	// component value, not by raw bytes of concatenated strings.
	k1 := EncodeCompositeKey(nil, types.NewString("a"), types.NewInt(2))
	k2 := EncodeCompositeKey(nil, types.NewString("a"), types.NewInt(10))
	k3 := EncodeCompositeKey(nil, types.NewString("b"), types.NewInt(1))
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Errorf("composite order broken: %x %x %x", k1, k2, k3)
	}
	// No-prefix property: "ab" as one string vs ("a","b") composite differ.
	s1 := EncodeCompositeKey(nil, types.NewString("ab"))
	s2 := EncodeCompositeKey(nil, types.NewString("a"), types.NewString("b"))
	if bytes.Equal(s1, s2) {
		t.Error("composite encoding ambiguous")
	}
}

func TestKeySuccessor(t *testing.T) {
	k := EncodeKey(nil, types.NewString("swan"))
	succ := KeySuccessor(k)
	if bytes.Compare(k, succ) >= 0 {
		t.Error("successor not greater")
	}
	// The successor must still be <= the next distinct string key.
	next := EncodeKey(nil, types.NewString("swao"))
	if bytes.Compare(succ, next) > 0 {
		t.Error("successor overshoots")
	}
}

func TestBTreeWithEncodedKeysRangeScan(t *testing.T) {
	bt := NewBTree()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := types.NewInt(int64(r.Intn(100)))
		bt.Insert(EncodeKey(nil, v), uint64(i))
	}
	// Range scan [10, 20) over encoded int keys.
	lo := EncodeKey(nil, types.NewInt(10))
	hi := EncodeKey(nil, types.NewInt(20))
	n := 0
	bt.Scan(lo, hi, func(k []byte, _ uint64) bool {
		n++
		if bytes.Compare(k, lo) < 0 || bytes.Compare(k, hi) >= 0 {
			t.Fatal("scan returned key outside range")
		}
		return true
	})
	if n == 0 {
		t.Error("range scan found nothing (statistically impossible)")
	}
}
