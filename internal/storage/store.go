package storage

import (
	"fmt"
	"os"
	"sync"

	"insightnotes/internal/failpoint"
)

// PageStore is the physical page I/O abstraction under the buffer pool.
// Implementations must be safe for concurrent use.
type PageStore interface {
	// ReadPage copies page id into dst.
	ReadPage(id PageID, dst *Page) error
	// WritePage persists src as page id.
	WritePage(id PageID, src *Page) error
	// Allocate extends the store by one zeroed page and returns its id.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Sync flushes any buffered writes to stable storage.
	Sync() error
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// MemStore is an in-memory PageStore, the default for the engine and for
// tests and benchmarks.
type MemStore struct {
	mu     sync.RWMutex
	pages  []*Page
	closed bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadPage implements PageStore.
func (m *MemStore) ReadPage(id PageID, dst *Page) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	*dst = *m.pages[id]
	return nil
}

// WritePage implements PageStore.
func (m *MemStore) WritePage(id PageID, src *Page) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	*m.pages[id] = *src
	return nil
}

// Allocate implements PageStore.
func (m *MemStore) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	p := new(Page)
	p.Reset()
	m.pages = append(m.pages, p)
	return PageID(len(m.pages) - 1), nil
}

// NumPages implements PageStore.
func (m *MemStore) NumPages() PageID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return PageID(len(m.pages))
}

// Sync implements PageStore (no-op for memory).
func (m *MemStore) Sync() error { return nil }

// Close implements PageStore.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	return nil
}

// FileStore is a file-backed PageStore: page id n lives at byte offset
// n*PageSize of a single file. Every page is stamped with a CRC32-C
// checksum on write and verified on read, so bit rot and torn page writes
// surface as structured ErrPageCorrupt errors rather than silent garbage.
type FileStore struct {
	mu     sync.Mutex
	f      *os.File
	npages PageID
	closed bool
	// scratch receives the checksum stamp on the write path so the caller's
	// in-memory page (typically a pinned buffer-pool frame) is not mutated
	// during the flush.
	scratch Page
}

// OpenFileStore opens (creating if necessary) a file-backed store at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not page-aligned", path, st.Size())
	}
	return &FileStore{f: f, npages: PageID(st.Size() / PageSize)}, nil
}

// ReadPage implements PageStore, verifying the page's stamped CRC32-C
// checksum and format byte before returning it.
func (fs *FileStore) ReadPage(id PageID, dst *Page) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if id >= fs.npages {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if _, err := fs.f.ReadAt(dst[:], int64(id)*PageSize); err != nil {
		return err
	}
	if err := failpoint.Eval(failpoint.StorageReadBitrot); err != nil {
		// Injected bit rot: flip a payload byte after the read so the
		// verification below must catch it.
		dst[PageSize-1] ^= 0xFF
	}
	return dst.VerifyChecksum(id)
}

// WritePage implements PageStore, stamping the page checksum into a
// scratch copy before it reaches disk.
func (fs *FileStore) WritePage(id PageID, src *Page) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if id >= fs.npages {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	fs.scratch = *src
	fs.scratch.StampChecksum()
	if err := failpoint.Eval(failpoint.StorageFlushCorrupt); err != nil {
		// Injected torn write: garble one payload byte after the stamp so
		// the next read fails verification.
		fs.scratch[PageSize-1] ^= 0xFF
	}
	_, err := fs.f.WriteAt(fs.scratch[:], int64(id)*PageSize)
	return err
}

// Allocate implements PageStore.
func (fs *FileStore) Allocate() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return 0, ErrClosed
	}
	fs.scratch.Reset()
	fs.scratch.StampChecksum()
	id := fs.npages
	if _, err := fs.f.WriteAt(fs.scratch[:], int64(id)*PageSize); err != nil {
		return 0, err
	}
	fs.npages++
	return id, nil
}

// NumPages implements PageStore.
func (fs *FileStore) NumPages() PageID {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.npages
}

// Sync implements PageStore.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	return fs.f.Sync()
}

// Close implements PageStore.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	return fs.f.Close()
}
