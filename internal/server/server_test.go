package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"insightnotes/internal/engine"
)

// startServer boots a server on an ephemeral port and returns a connected
// client.
func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func mustClient(t *testing.T, c *Client, stmt string) *Response {
	t.Helper()
	resp, err := c.Do(context.Background(), stmt)
	if err != nil {
		t.Fatalf("Exec(%q): %v", stmt, err)
	}
	if !resp.OK {
		t.Fatalf("Exec(%q): server error %q", stmt, resp.Error)
	}
	return resp
}

func TestServerEndToEnd(t *testing.T) {
	_, c := startServer(t)
	mustClient(t, c, "CREATE TABLE birds (id INT, name TEXT)")
	mustClient(t, c, "INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan')")
	mustClient(t, c, "CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Behavior', 'Other')")
	mustClient(t, c, "TRAIN SUMMARY C ('feeding foraging stonewort', 'Behavior'), ('photo camera record', 'Other')")
	mustClient(t, c, "LINK SUMMARY C TO birds")
	mustClient(t, c, "ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1")

	resp := mustClient(t, c, "SELECT id, name FROM birds WHERE id = 1")
	if resp.QID == 0 || len(resp.Rows) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Columns) != 2 || resp.Columns[0] != "id" {
		t.Errorf("columns = %v", resp.Columns)
	}
	row := resp.Rows[0]
	if row.Values[1].Str() != "Swan Goose" {
		t.Errorf("values = %v", row.Values)
	}
	if !strings.Contains(row.Summaries["C"], "(Behavior, 1)") {
		t.Errorf("summaries = %v", row.Summaries)
	}
	if len(row.ZoomLabels["C"]) != 2 {
		t.Errorf("zoom labels = %v", row.ZoomLabels)
	}

	// Zoom-in over the wire.
	zoom := mustClient(t, c, fmt.Sprintf("ZOOMIN REFERENCE QID %d ON C INDEX 1", resp.QID))
	if len(zoom.Rows) != 1 || zoom.Rows[0].Values[3].Str() != "observed feeding on stonewort" {
		t.Fatalf("zoom = %+v", zoom.Rows)
	}
}

func TestServerErrorsAndBadInput(t *testing.T) {
	_, c := startServer(t)
	resp, err := c.Do(context.Background(), "SELECT a FROM missing")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == "" {
		t.Errorf("resp = %+v", resp)
	}
	// The connection survives the error.
	if r := mustClient(t, c, "SHOW TABLES"); !r.OK {
		t.Error("connection dead after error")
	}
	// Malformed JSON is rejected but the connection keeps working.
	if _, err := c.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatal("no response to bad JSON")
	}
	if !strings.Contains(c.r.Text(), "bad request") {
		t.Errorf("response = %q", c.r.Text())
	}
	if r := mustClient(t, c, "SHOW TABLES"); !r.OK {
		t.Error("connection dead after bad JSON")
	}
}

func TestServerTracedQuery(t *testing.T) {
	_, c := startServer(t)
	mustClient(t, c, "CREATE TABLE t (a INT)")
	mustClient(t, c, "INSERT INTO t VALUES (1)")
	resp, err := c.Do(context.Background(), "SELECT a FROM t", WithTrace())
	if err != nil || !resp.OK {
		t.Fatalf("%+v, %v", resp, err)
	}
	if len(resp.Trace) == 0 {
		t.Error("no trace entries")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv, c := startServer(t)
	mustClient(t, c, "CREATE TABLE t (a INT, b TEXT)")
	addr := srv.listener.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 25; i++ {
				stmt := fmt.Sprintf("INSERT INTO t VALUES (%d, 'g%d')", g*100+i, g)
				if resp, err := cl.Do(context.Background(), stmt); err != nil || !resp.OK {
					errs <- fmt.Errorf("insert: %v %+v", err, resp)
					return
				}
				if resp, err := cl.Do(context.Background(), "SELECT COUNT(*) FROM t"); err != nil || !resp.OK {
					errs <- fmt.Errorf("count: %v %+v", err, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	resp := mustClient(t, c, "SELECT COUNT(*) FROM t")
	if resp.Rows[0].Values[0].Int() != 200 {
		t.Errorf("final count = %v", resp.Rows[0].Values[0])
	}
}

func TestServerCloseUnblocksAccept(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
