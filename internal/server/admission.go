package server

import (
	"context"
	"sync/atomic"
	"time"

	"insightnotes/internal/metrics"
)

// Structured response codes. A response carrying a code is machine-readable:
// CodeOverloaded marks a retryable shed (honor RetryAfterMS, see
// Client.ExecRetry); CodeFrameTooLarge marks a request frame over the
// server's -max-frame-bytes cap (not retryable as sent); CodeStale marks
// a read shed by a replica whose lag exceeds its -max-staleness bound
// (retryable here after RetryAfterMS, or immediately against another
// endpoint — RoutedClient fails over); CodeReadOnly marks a mutation sent
// to a replica (never retryable here; route it to the primary);
// CodeCorrupt marks a statement that touched a page detected corrupt with
// no clean repair source — the page id is in the error text; the data is
// quarantined, not served (retry only after repair, e.g. CHECK TABLE with
// a repair source configured).
const (
	CodeOverloaded    = "OVERLOADED"
	CodeFrameTooLarge = "FRAME_TOO_LARGE"
	CodeStale         = "STALE"
	CodeReadOnly      = "READ_ONLY"
	CodeCorrupt       = "CORRUPT"
)

// AdmissionConfig tunes the server's statement-concurrency limiter.
// The zero value disables admission control entirely.
type AdmissionConfig struct {
	// MaxStatements bounds statements executing concurrently (0 disables
	// admission control; every request runs immediately).
	MaxStatements int
	// QueueDepth bounds how many statements may wait for a slot (default
	// 64). Arrivals beyond it are rejected immediately with a structured
	// retryable error rather than queued into unbounded memory.
	QueueDepth int
	// QueueTimeout bounds how long a statement waits queued before it is
	// shed (default 1s). A statement whose own deadline expires while
	// queued is shed at that moment instead.
	QueueTimeout time.Duration
}

// admission is the runtime limiter: a slot semaphore plus a bounded,
// deadline-aware wait queue. Statements that cannot get a slot in time
// are shed with a structured retryable error — the server degrades by
// answering "try later" quickly instead of stacking work it cannot do.
type admission struct {
	slots   chan struct{}
	waiters atomic.Int64
	depth   int64
	timeout time.Duration

	// nil handles (metrics disabled) are no-ops.
	queued      *metrics.Counter
	shed        *metrics.Counter
	rejected    *metrics.Counter
	waitSeconds *metrics.Histogram
}

// newAdmission builds the limiter, or nil when cfg disables it.
func newAdmission(cfg AdmissionConfig, reg *metrics.Registry) *admission {
	if cfg.MaxStatements <= 0 {
		return nil
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	timeout := cfg.QueueTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	a := &admission{
		slots:   make(chan struct{}, cfg.MaxStatements),
		depth:   int64(depth),
		timeout: timeout,
	}
	if reg != nil {
		a.queued = reg.Counter(metrics.NameAdmissionQueuedTotal,
			"Statements that waited in the admission queue for an execution slot.")
		a.shed = reg.Counter(metrics.NameAdmissionShedTotal,
			"Statements shed from the admission queue (queue timeout or statement deadline).")
		a.rejected = reg.Counter(metrics.NameAdmissionRejectedTotal,
			"Statements rejected outright because the admission queue was full.")
		a.waitSeconds = reg.Histogram(metrics.NameAdmissionWaitSeconds,
			"Admission-queue wait of admitted statements, in seconds.", metrics.DefLatencyBuckets)
	}
	return a
}

// shedInfo describes one load-shedding decision for the structured
// response: why, and when the client should try again.
type shedInfo struct {
	reason     string
	retryAfter time.Duration
}

// acquire obtains an execution slot, waiting in the bounded queue when the
// server is saturated. It returns a release func on success, or the shed
// decision when the statement must be turned away: queue full (immediate),
// queued past QueueTimeout, or the statement's own deadline expiring while
// queued. Shed statements never entered the engine.
func (a *admission) acquire(ctx context.Context) (func(), *shedInfo) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	// Saturated: join the bounded wait queue.
	if a.waiters.Add(1) > a.depth {
		a.waiters.Add(-1)
		a.rejected.Inc()
		return nil, &shedInfo{reason: "admission queue full", retryAfter: a.retryAfter()}
	}
	defer a.waiters.Add(-1)
	a.queued.Inc()
	start := time.Now()
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.waitSeconds.Observe(time.Since(start).Seconds())
		return a.release, nil
	case <-timer.C:
		a.shed.Inc()
		return nil, &shedInfo{reason: "queued past the admission timeout", retryAfter: a.retryAfter()}
	case <-ctx.Done():
		a.shed.Inc()
		return nil, &shedInfo{reason: "statement deadline expired while queued", retryAfter: a.retryAfter()}
	}
}

func (a *admission) release() { <-a.slots }

// retryAfter is the hint sent with a shed: scale one queue timeout by how
// crowded the queue is, so clients back off harder the deeper the overload
// (their jittered backoff desynchronizes the retries).
func (a *admission) retryAfter() time.Duration {
	w := a.waiters.Load()
	if w < 1 {
		w = 1
	}
	d := a.timeout * time.Duration(w) / time.Duration(a.depth)
	if min := 50 * time.Millisecond; d < min {
		d = min
	}
	if d > a.timeout {
		d = a.timeout
	}
	return d
}

// shedResponse renders one shed decision as the structured wire error.
func shedResponse(s *shedInfo) Response {
	return Response{
		Error:        "server overloaded: " + s.reason,
		Code:         CodeOverloaded,
		RetryAfterMS: s.retryAfter.Milliseconds(),
	}
}
