package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
)

// Client is a minimal connection to an InsightNotes server. It is not safe
// for concurrent use; open one client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	enc  *json.Encoder
	w    *bufio.Writer
}

// Dial connects to an InsightNotes server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 1<<20), 16<<20)
	w := bufio.NewWriter(conn)
	return &Client{conn: conn, r: r, enc: json.NewEncoder(w), w: w}, nil
}

// Exec sends one statement and waits for the response.
func (c *Client) Exec(stmt string) (*Response, error) {
	return c.roundTrip(Request{Stmt: stmt})
}

// ExecTraced sends one SELECT with the under-the-hood trace enabled.
func (c *Client) ExecTraced(stmt string) (*Response, error) {
	return c.roundTrip(Request{Stmt: stmt, Trace: true})
}

func (c *Client) roundTrip(req Request) (*Response, error) {
	if err := c.enc.Encode(&req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("server: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.r.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("server: bad response: %w", err)
	}
	return &resp, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
