package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"insightnotes/internal/types"
)

// Client is a minimal connection to an InsightNotes server. It is not safe
// for concurrent use; open one client per goroutine.
//
// All statement execution goes through Do, the single context-first entry
// point; behavior (tracing, parameter binding, retry schedules, mutation
// safety) is expressed as CallOptions. The pre-consolidation methods
// (Exec, ExecTraced, ExecRetry, ExecMutation) live in compat.go as thin
// deprecated wrappers.
type Client struct {
	addr string
	conn net.Conn
	r    *bufio.Scanner
	enc  *json.Encoder
	w    *bufio.Writer

	// stmtSeq numbers this client's auto-named prepared statements.
	stmtSeq int
}

// Dial connects to an InsightNotes server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := newFrameScanner(conn, defaultMaxFrameBytes)
	w := bufio.NewWriter(conn)
	return &Client{addr: addr, conn: conn, r: r, enc: json.NewEncoder(w), w: w}, nil
}

// CallOption configures one Do call.
type CallOption func(*callOptions)

type callOptions struct {
	args     []types.Value
	trace    bool
	attempts int
	backoff  Backoff
	mutation bool
}

// WithArgs binds positional parameter values to the statement's $n
// placeholders ($1 is the first argument). The server binds them before
// execution, so values never need client-side SQL-literal rendering.
func WithArgs(args ...types.Value) CallOption {
	return func(co *callOptions) { co.args = args }
}

// WithTrace requests the under-the-hood operator log for SELECTs.
func WithTrace() CallOption {
	return func(co *callOptions) { co.trace = true }
}

// WithRetry retries statements the server sheds with ErrOverloaded, up to
// attempts tries under the backoff schedule (the server's RetryAfter hint
// acts as a floor under each delay). Without WithMutation, transport
// failures also retry — reads are idempotent, resending is safe.
func WithRetry(attempts int, b Backoff) CallOption {
	return func(co *callOptions) {
		co.attempts = attempts
		co.backoff = b
	}
}

// WithMutation marks the statement non-idempotent: an attempt is retried
// only when it provably never entered the engine (a failed dial, or a
// structured pre-engine shed). Once bytes hit the wire, any transport
// failure is terminal — the statement's fate is unknown, and blindly
// resending could apply it twice.
func WithMutation() CallOption {
	return func(co *callOptions) { co.mutation = true }
}

// Do sends one statement and waits for the response. The context bounds
// the whole exchange, including the frame write and the response read.
// Options add tracing (WithTrace), positional parameters (WithArgs),
// retry under overload (WithRetry), and mutation-safe retry semantics
// (WithMutation).
//
// A nil error means the exchange completed; the response may still carry
// a statement failure — classify it with errors.Is over resp.Err().
func (c *Client) Do(ctx context.Context, stmt string, opts ...CallOption) (*Response, error) {
	var co callOptions
	for _, opt := range opts {
		opt(&co)
	}
	req := Request{Stmt: stmt, Trace: co.trace, Args: co.args}
	switch {
	case co.mutation:
		return c.doMutation(ctx, req, co.attempts, co.backoff)
	case co.attempts > 1:
		return c.doRetry(ctx, req, co.attempts, co.backoff)
	default:
		return c.roundTrip(ctx, req)
	}
}

// stmtSeed desynchronizes auto-generated prepared-statement names across
// clients in one process; the registry is engine-global, so two clients
// preparing concurrently must not both claim "s1".
var stmtSeed atomic.Int64

// Stmt is a prepared statement handle: the template was parsed, validated,
// and its plan cached server-side by Client.Prepare; Exec binds arguments
// to its $n placeholders by name, without resending the SQL text.
// A Stmt is bound to the Client that prepared it (the registry is shared
// across connections to one engine, but the handle is not safe for
// concurrent use, like the Client itself).
type Stmt struct {
	c    *Client
	name string
	text string
}

// Prepare registers sqlText as a prepared statement under a generated
// name and returns its handle. The statement may use $1..$n placeholders;
// Stmt.Exec supplies the values. Deallocate the handle with Stmt.Close
// when done.
func (c *Client) Prepare(ctx context.Context, sqlText string) (*Stmt, error) {
	// The registry is engine-global, so a generated name can collide with
	// another client's (or a REPL user's PREPARE). Walk forward past
	// collisions instead of failing a retriable situation.
	for tries := 0; tries < 100; tries++ {
		c.stmtSeq++
		name := fmt.Sprintf("s%d_%d", stmtSeed.Add(1), c.stmtSeq)
		resp, err := c.roundTrip(ctx, Request{Kind: "prepare", Name: name, Stmt: sqlText})
		if err != nil {
			return nil, err
		}
		if !resp.OK {
			if strings.Contains(resp.Error, "already exists") {
				continue
			}
			return nil, resp.Err()
		}
		return &Stmt{c: c, name: name, text: sqlText}, nil
	}
	return nil, fmt.Errorf("server: could not find a free prepared-statement name")
}

// Name returns the server-side registry name the statement was prepared
// under (usable directly in EXECUTE/DEALLOCATE statements).
func (st *Stmt) Name() string { return st.name }

// Text returns the SQL template the statement was prepared from.
func (st *Stmt) Text() string { return st.text }

// Exec executes the prepared statement with args bound to $1..$n. The
// response may carry a statement failure; classify with resp.Err().
func (st *Stmt) Exec(ctx context.Context, args ...types.Value) (*Response, error) {
	return st.c.roundTrip(ctx, Request{Kind: "execute", Name: st.name, Args: args})
}

// Close deallocates the statement server-side. The handle is unusable
// afterwards.
func (st *Stmt) Close(ctx context.Context) error {
	resp, err := st.c.roundTrip(ctx, Request{Kind: "deallocate", Name: st.name})
	if err != nil {
		return err
	}
	return resp.Err()
}

// doRetry retries statements shed with ErrOverloaded. The server's
// RetryAfter hint acts as a floor under the jittered backoff schedule, so
// clients back off at least as hard as the server asks while still
// desynchronizing their retries. A connection the server closed (e.g.
// refused at the -max-conns cap after its one structured answer) is
// redialed transparently between attempts. Transport failures retry too:
// without WithMutation the statement is assumed idempotent.
func (c *Client) doRetry(ctx context.Context, req Request, attempts int, b Backoff) (*Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := c.roundTrip(ctx, req)
		switch {
		case err != nil:
			// Transport failure: the conn is dead. Redial before the
			// next attempt; keep the old error if redial also fails.
			lastErr = err
			if nc, derr := Dial(c.addr); derr == nil {
				if c.conn != nil {
					c.conn.Close()
				}
				*c = *nc
			}
		case errors.Is(resp.Err(), ErrOverloaded):
			lastErr = resp.Err()
			if i == attempts-1 {
				return resp, nil // caller sees the final structured shed
			}
			d := b.Delay(i)
			if hint := time.Duration(resp.RetryAfterMS) * time.Millisecond; d < hint {
				d = hint
			}
			if !sleep(ctx, d) {
				return nil, ctx.Err()
			}
			continue
		default:
			return resp, nil
		}
		if i < attempts-1 && !sleep(ctx, b.Delay(i)) {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("server: %d attempt(s) exhausted: %w", attempts, lastErr)
}

// doMutation sends one mutating statement with retry semantics safe for
// non-idempotent work: an attempt is retried only when the statement
// provably never entered the engine — the dial failed, or the server
// answered with a structured pre-engine shed (ErrOverloaded, issued
// before the execution slot). Once the request has gone onto the wire
// (fully or partially), any transport failure is terminal. Reads don't
// need this caution; plain Do / WithRetry resend freely.
func (c *Client) doMutation(ctx context.Context, req Request, attempts int, b Backoff) (*Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if c.conn == nil {
			// The previous attempt surrendered its connection before
			// sending; a failed dial is retryable for the same reason.
			nc, err := Dial(c.addr)
			if err != nil {
				lastErr = err
				if i < attempts-1 && !sleep(ctx, b.Delay(i)) {
					return nil, ctx.Err()
				}
				continue
			}
			*c = *nc
		}
		resp, err := c.roundTrip(ctx, req)
		switch {
		case err != nil:
			c.conn.Close()
			c.conn = nil
			return nil, fmt.Errorf("server: mutation fate unknown after send failure (not retried): %w", err)
		case errors.Is(resp.Err(), ErrOverloaded):
			// Shed before entering the engine, so resending is safe. The
			// server may close the connection after a connect-time
			// refusal; surrender it now so the next attempt redials
			// rather than writing into a dead stream (which would look
			// like an unknown fate).
			c.conn.Close()
			c.conn = nil
			lastErr = resp.Err()
			if i == attempts-1 {
				return resp, nil // caller sees the final structured shed
			}
			d := b.Delay(i)
			if hint := time.Duration(resp.RetryAfterMS) * time.Millisecond; d < hint {
				d = hint
			}
			if !sleep(ctx, d) {
				return nil, ctx.Err()
			}
		default:
			return resp, nil
		}
	}
	return nil, fmt.Errorf("server: %d attempt(s) exhausted: %w", attempts, lastErr)
}

// roundTrip performs one request/response exchange. The context's deadline
// is pushed down onto the connection, bounding the frame write as well as
// the response read — a full client-side send buffer can no longer park
// the caller past its deadline in Flush.
func (c *Client) roundTrip(ctx context.Context, req Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok && c.conn != nil {
		c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(&req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("server: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.r.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("server: bad response: %w", err)
	}
	return &resp, nil
}

// Close closes the connection (a no-op after the connection was
// surrendered by a failed mutation attempt).
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
