package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client is a minimal connection to an InsightNotes server. It is not safe
// for concurrent use; open one client per goroutine.
type Client struct {
	addr string
	conn net.Conn
	r    *bufio.Scanner
	enc  *json.Encoder
	w    *bufio.Writer
}

// Dial connects to an InsightNotes server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := newFrameScanner(conn, defaultMaxFrameBytes)
	w := bufio.NewWriter(conn)
	return &Client{addr: addr, conn: conn, r: r, enc: json.NewEncoder(w), w: w}, nil
}

// Exec sends one statement and waits for the response.
func (c *Client) Exec(stmt string) (*Response, error) {
	return c.roundTrip(Request{Stmt: stmt})
}

// ExecTraced sends one SELECT with the under-the-hood trace enabled.
func (c *Client) ExecTraced(stmt string) (*Response, error) {
	return c.roundTrip(Request{Stmt: stmt, Trace: true})
}

// ExecRetry sends one statement, retrying when the server sheds it with the
// structured CodeOverloaded error. The server's RetryAfterMS hint acts as a
// floor under the jittered backoff schedule, so clients back off at least as
// hard as the server asks while still desynchronizing their retries. A
// connection the server closed (e.g. refused at the -max-conns cap after
// its one structured answer) is redialed transparently between attempts.
// Retries are safe here because a shed statement never entered the engine.
func (c *Client) ExecRetry(ctx context.Context, stmt string, attempts int, b Backoff) (*Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := c.roundTrip(Request{Stmt: stmt})
		switch {
		case err != nil:
			// Transport failure: the conn is dead. Redial before the
			// next attempt; keep the old error if redial also fails.
			lastErr = err
			if nc, derr := Dial(c.addr); derr == nil {
				c.conn.Close()
				*c = *nc
			}
		case resp.Code == CodeOverloaded:
			lastErr = fmt.Errorf("server: %s", resp.Error)
			if i == attempts-1 {
				return resp, nil // caller sees the final structured shed
			}
			d := b.Delay(i)
			if hint := time.Duration(resp.RetryAfterMS) * time.Millisecond; d < hint {
				d = hint
			}
			if !sleep(ctx, d) {
				return nil, ctx.Err()
			}
			continue
		default:
			return resp, nil
		}
		if i < attempts-1 && !sleep(ctx, b.Delay(i)) {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("server: %d attempt(s) exhausted: %w", attempts, lastErr)
}

// ExecMutation sends one mutating statement with retry semantics safe
// for non-idempotent work: an attempt is retried only when the statement
// provably never entered the engine — the dial failed, or the server
// answered with a structured pre-engine shed (CodeOverloaded, issued
// before the execution slot). Once the request has gone onto the wire
// (fully or partially), any transport failure is terminal: the
// statement's fate is unknown, and blindly resending could apply it
// twice. Reads don't need this caution; use Exec/ExecRetry for them.
func (c *Client) ExecMutation(ctx context.Context, stmt string, attempts int, b Backoff) (*Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if c.conn == nil {
			// The previous attempt surrendered its connection before
			// sending; a failed dial is retryable for the same reason.
			nc, err := Dial(c.addr)
			if err != nil {
				lastErr = err
				if i < attempts-1 && !sleep(ctx, b.Delay(i)) {
					return nil, ctx.Err()
				}
				continue
			}
			*c = *nc
		}
		resp, err := c.roundTrip(Request{Stmt: stmt})
		switch {
		case err != nil:
			c.conn.Close()
			c.conn = nil
			return nil, fmt.Errorf("server: mutation fate unknown after send failure (not retried): %w", err)
		case resp.Code == CodeOverloaded:
			// Shed before entering the engine, so resending is safe. The
			// server may close the connection after a connect-time
			// refusal; surrender it now so the next attempt redials
			// rather than writing into a dead stream (which would look
			// like an unknown fate).
			c.conn.Close()
			c.conn = nil
			lastErr = fmt.Errorf("server: %s", resp.Error)
			if i == attempts-1 {
				return resp, nil // caller sees the final structured shed
			}
			d := b.Delay(i)
			if hint := time.Duration(resp.RetryAfterMS) * time.Millisecond; d < hint {
				d = hint
			}
			if !sleep(ctx, d) {
				return nil, ctx.Err()
			}
		default:
			return resp, nil
		}
	}
	return nil, fmt.Errorf("server: %d attempt(s) exhausted: %w", attempts, lastErr)
}

func (c *Client) roundTrip(req Request) (*Response, error) {
	if err := c.enc.Encode(&req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("server: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.r.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("server: bad response: %w", err)
	}
	return &resp, nil
}

// Close closes the connection (a no-op after the connection was
// surrendered by a failed mutation attempt).
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
