package server

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/types"
)

// TestWirePreparedLifecycle drives the structured request kinds end to
// end: Client.Prepare registers a template, Stmt.Exec binds values without
// rendering SQL literals client-side, Stmt.Close deallocates.
func TestWirePreparedLifecycle(t *testing.T) {
	_, c := startServer(t)
	ctx := context.Background()
	for _, stmt := range []string{
		"CREATE TABLE birds (id INT, name TEXT)",
		"INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'O''Hara''s bird'), (3, 'Whooper Swan')",
	} {
		if resp, err := c.Do(ctx, stmt); err != nil || !resp.OK {
			t.Fatalf("%s: %v %+v", stmt, err, resp)
		}
	}

	byName, err := c.Prepare(ctx, "SELECT id FROM birds WHERE name = $1")
	if err != nil {
		t.Fatal(err)
	}
	// A value with an embedded quote proves binding never round-trips
	// through hand-rendered SQL text on the client.
	resp, err := byName.Exec(ctx, types.NewString("O'Hara's bird"))
	if err != nil || !resp.OK {
		t.Fatalf("Stmt.Exec: %v %+v", err, resp)
	}
	if len(resp.Rows) != 1 || resp.Rows[0].Values[0].Int() != 2 {
		t.Fatalf("rows = %+v", resp.Rows)
	}
	// Wrong arity surfaces as a statement error, not a transport error.
	resp, err = byName.Exec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "1 parameter(s)") {
		t.Fatalf("arity error = %+v", resp)
	}
	if err := byName.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, err := byName.Exec(ctx, types.NewString("x")); err != nil {
		t.Fatal(err)
	} else if resp.OK || !strings.Contains(resp.Error, "unknown prepared statement") {
		t.Fatalf("exec after close = %+v", resp)
	}

	// Two clients generate distinct names against the shared registry.
	c2, err := Dial(c.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.Prepare(ctx, "SELECT id FROM birds WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := st2.Exec(ctx, types.NewInt(3)); err != nil || !resp.OK || len(resp.Rows) != 1 {
		t.Fatalf("second client exec: %v %+v", err, resp)
	}
}

// TestWireOneShotArgs covers the unnamed-prepared-statement path: an
// exec-kind request carrying Args is parsed and bound server-side, for
// reads and for mutations (INSERT templates render elided, so the server
// must execute the bound AST, not its text rendering).
func TestWireOneShotArgs(t *testing.T) {
	_, c := startServer(t)
	ctx := context.Background()
	if resp, err := c.Do(ctx, "CREATE TABLE t (a INT, b TEXT)"); err != nil || !resp.OK {
		t.Fatalf("create: %v %+v", err, resp)
	}
	resp, err := c.Do(ctx, "INSERT INTO t VALUES ($1, $2)",
		WithArgs(types.NewInt(7), types.NewString("it's bound")))
	if err != nil || !resp.OK {
		t.Fatalf("bound insert: %v %+v", err, resp)
	}
	resp, err = c.Do(ctx, "SELECT b FROM t WHERE a = $1", WithArgs(types.NewInt(7)))
	if err != nil || !resp.OK || len(resp.Rows) != 1 {
		t.Fatalf("bound select: %v %+v", err, resp)
	}
	if got := resp.Rows[0].Values[0].String(); got != "it's bound" {
		t.Fatalf("bound value round-trip = %q", got)
	}
	// Arg-count mismatch fails before execution.
	resp, err = c.Do(ctx, "SELECT b FROM t WHERE a = $1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "parameter") {
		t.Fatalf("unbound placeholder = %+v", resp)
	}
	// Unknown kind is a structured bad-request answer.
	if err := c.enc.Encode(&Request{Kind: "copy", Name: "x", Stmt: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatal("no response to unknown kind")
	}
	if !strings.Contains(c.r.Text(), "unknown kind") {
		t.Fatalf("unknown-kind response = %s", c.r.Text())
	}
}

// TestExecuteOnReplica pins the acceptance criterion: EXECUTE of a read
// template on a replica is served and carries the replica_lag_* staleness
// stamp; EXECUTE of a mutating template is rejected READ_ONLY before the
// engine sees it; PREPARE and DEALLOCATE pass even past the staleness
// bound (registry-only), while EXECUTE of a read sheds STALE.
func TestExecuteOnReplica(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir(), DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.Exec(ctx, "CREATE TABLE birds (id INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, "INSERT INTO birds VALUES (1, 'Swan Goose')"); err != nil {
		t.Fatal(err)
	}
	fake := &fakeReplica{lagLSN: 5, lag: 30 * time.Millisecond}
	srv := New(db)
	srv.Replica = fake
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sel, err := c.Prepare(ctx, "SELECT name FROM birds WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare(ctx, "INSERT INTO birds VALUES ($1, 'Impostor')")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := sel.Exec(ctx, types.NewInt(1))
	if err != nil || !resp.OK {
		t.Fatalf("EXECUTE read on replica: %v %+v", err, resp)
	}
	sd := resp.StatsDetail
	if sd == nil || !sd.Replica || sd.ReplicaLagLSN != 5 || sd.ReplicaLagMS != 30 {
		t.Fatalf("EXECUTE missing staleness stamp: %+v", sd)
	}

	resp, err = ins.Exec(ctx, types.NewInt(9))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.Err(), ErrReadOnly) {
		t.Fatalf("EXECUTE of mutating template = %+v, want ErrReadOnly", resp)
	}
	// The gate must have rejected it before execution: the row count is
	// unchanged.
	if resp, _ := c.Do(ctx, "SELECT id FROM birds"); len(resp.Rows) != 1 {
		t.Fatalf("mutating EXECUTE leaked through the gate: %+v", resp.Rows)
	}

	// Past the staleness bound: reads shed, the registry stays reachable.
	fake.stale = true
	resp, err = sel.Exec(ctx, types.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.Err(), ErrStale) {
		t.Fatalf("stale EXECUTE = %+v, want ErrStale", resp)
	}
	stale, err := c.Prepare(ctx, "SELECT id FROM birds WHERE id = $1")
	if err != nil {
		t.Fatalf("PREPARE past staleness bound: %v", err)
	}
	if err := stale.Close(ctx); err != nil {
		t.Fatalf("DEALLOCATE past staleness bound: %v", err)
	}
}

// TestPlanCacheTraceAttribute pins the observability contract: the
// stmt.plan span records whether the plan came from the cache, so a
// retained trace distinguishes a cached execution from a cold one.
func TestPlanCacheTraceAttribute(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir(), TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, stmt := range []string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1), (2)",
	} {
		if resp, err := c.Do(ctx, stmt); err != nil || !resp.OK {
			t.Fatalf("%s: %v %+v", stmt, err, resp)
		}
	}
	tree := func(traceID string) string {
		resp, err := c.Do(ctx, "SHOW TRACE "+traceID)
		if err != nil || !resp.OK {
			t.Fatalf("SHOW TRACE: %v %+v", err, resp)
		}
		var sb strings.Builder
		for _, row := range resp.Rows {
			sb.WriteString(row.Values[0].Str())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	cold, err := c.Do(ctx, "SELECT a FROM t WHERE a = 1")
	if err != nil || !cold.OK {
		t.Fatalf("cold select: %v %+v", err, cold)
	}
	if out := tree(cold.TraceID); !strings.Contains(out, "cache=miss") {
		t.Errorf("cold trace lacks cache=miss on stmt.plan:\n%s", out)
	}
	warm, err := c.Do(ctx, "SELECT a FROM t WHERE a = 1")
	if err != nil || !warm.OK {
		t.Fatalf("warm select: %v %+v", err, warm)
	}
	if out := tree(warm.TraceID); !strings.Contains(out, "cache=hit") {
		t.Errorf("warm trace lacks cache=hit on stmt.plan:\n%s", out)
	}
}

// TestResponseErrSentinels pins the code→sentinel mapping and that plain
// statement errors match no sentinel.
func TestResponseErrSentinels(t *testing.T) {
	for code, want := range map[string]error{
		CodeOverloaded: ErrOverloaded,
		CodeStale:      ErrStale,
		CodeReadOnly:   ErrReadOnly,
		CodeCorrupt:    ErrCorrupt,
	} {
		resp := &Response{Error: "x", Code: code, RetryAfterMS: 250}
		if !errors.Is(resp.Err(), want) {
			t.Errorf("code %s does not unwrap to %v", code, want)
		}
		var re *ResponseError
		if !errors.As(resp.Err(), &re) || re.RetryAfter != 250*time.Millisecond {
			t.Errorf("code %s: ResponseError not recoverable via errors.As", code)
		}
	}
	plain := &Response{Error: "table missing"}
	for _, sentinel := range []error{ErrOverloaded, ErrStale, ErrReadOnly, ErrCorrupt} {
		if errors.Is(plain.Err(), sentinel) {
			t.Errorf("plain statement error matches %v", sentinel)
		}
	}
	if (&Response{OK: true}).Err() != nil {
		t.Error("OK response yields a non-nil Err()")
	}
}

// TestDoHonorsContextDeadline is the regression test for the roundTrip
// deadline fix: against a server that accepts and then never answers, a
// Do call with a deadline must return promptly instead of parking forever
// in the read (or, with a full send buffer, in the frame write).
func TestDoHonorsContextDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Read and discard so the client's write succeeds; never reply.
			buf := make([]byte, 4096)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Do(ctx, "SHOW TABLES")
	if err == nil {
		t.Fatal("Do returned without error from a mute server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Do took %s to honor a 150ms deadline", elapsed)
	}
	// An already-expired context must not even touch the wire.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.Do(done, "SHOW TABLES"); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired context error = %v", err)
	}
}
