package server

import "context"

// This file holds the pre-consolidation client API: every method is a
// one-line wrapper over the context-first Do entry point with the behavior
// expressed as call options. New code should call Do directly; the
// scripts/check.sh lint rejects new call sites of these methods in
// non-test code outside this file.

// Exec sends one statement and waits for the response.
//
// Deprecated: use Do(ctx, stmt).
func (c *Client) Exec(stmt string) (*Response, error) {
	return c.Do(context.Background(), stmt)
}

// ExecTraced sends one SELECT with the under-the-hood trace enabled.
//
// Deprecated: use Do(ctx, stmt, WithTrace()).
func (c *Client) ExecTraced(stmt string) (*Response, error) {
	return c.Do(context.Background(), stmt, WithTrace())
}

// ExecRetry sends one statement, retrying overload sheds and transport
// failures under the backoff schedule.
//
// Deprecated: use Do(ctx, stmt, WithRetry(attempts, b)).
func (c *Client) ExecRetry(ctx context.Context, stmt string, attempts int, b Backoff) (*Response, error) {
	return c.Do(ctx, stmt, WithRetry(attempts, b))
}

// ExecMutation sends one mutating statement, retrying only attempts that
// provably never entered the engine.
//
// Deprecated: use Do(ctx, stmt, WithRetry(attempts, b), WithMutation()).
func (c *Client) ExecMutation(ctx context.Context, stmt string, attempts int, b Backoff) (*Response, error) {
	return c.Do(ctx, stmt, WithRetry(attempts, b), WithMutation())
}
