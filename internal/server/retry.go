package server

import (
	"context"
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with jitter. The zero
// value uses the defaults noted on each field. Delays are deterministic
// functions of the attempt number except for the jitter term, which is
// drawn from Rand — injectable so tests can pin the schedule.
type Backoff struct {
	// Base is the delay before the first retry (default 50ms).
	Base time.Duration
	// Max caps the grown delay, before jitter (default 2s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the fraction of the delay drawn uniformly at random and
	// added on top, de-synchronizing clients that fail together
	// (default 0.5; negative disables).
	Jitter float64
	// Rand supplies the jitter draw in [0,1) (default math/rand).
	Rand func() float64
}

// Delay returns the pause before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 2 * time.Second
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 0; i < attempt && d < float64(max); i++ {
		d *= factor
	}
	if d > float64(max) {
		d = float64(max)
	}
	jitter := b.Jitter
	if b.Jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		rnd := b.Rand
		if rnd == nil {
			rnd = rand.Float64
		}
		d += d * jitter * rnd()
	}
	return time.Duration(d)
}

// sleep pauses for d or until ctx is done, reporting whether it slept
// the full duration.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// DialRetry connects to an InsightNotes server, retrying transient dial
// failures (connection refused while the server is still binding, brief
// network blips) with capped exponential backoff. attempts bounds the
// total number of dials (minimum 1); ctx cancels the waiting between
// them. The last dial error is returned when every attempt fails.
func DialRetry(ctx context.Context, addr string, attempts int, b Backoff) (*Client, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if i == attempts-1 {
			break
		}
		if !sleep(ctx, b.Delay(i)) {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}
