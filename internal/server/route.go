package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Topology names the endpoints of a replicated deployment: one primary
// (all mutations) and any number of read replicas.
type Topology struct {
	// Primary is the address all mutations (and read fallbacks) go to.
	Primary string
	// Replicas are read-serving endpoints, preferred for reads in
	// rotation.
	Replicas []string
}

// RoutedClient is a replica-aware client over a Topology: reads prefer
// replicas and fail over — to the next replica and finally the primary —
// on connection loss, staleness sheds (ErrStale), and overload sheds;
// mutations are routed to the primary only, with WithMutation's
// no-resend-after-partial-send semantics. Connections are cached per
// endpoint and redialed on demand. Not safe for concurrent use; open one
// per goroutine, like Client.
type RoutedClient struct {
	topo    Topology
	backoff Backoff

	mu     sync.Mutex
	conns  map[string]*Client
	cursor int // rotates the replica preference across calls
}

// NewRoutedClient builds a client over the topology. Backoff defaults
// apply (see Backoff); SetBackoff overrides them.
func NewRoutedClient(topo Topology) *RoutedClient {
	return &RoutedClient{topo: topo, conns: make(map[string]*Client)}
}

// SetBackoff replaces the retry backoff schedule.
func (rc *RoutedClient) SetBackoff(b Backoff) { rc.backoff = b }

// conn returns the cached connection for ep, dialing if needed.
func (rc *RoutedClient) conn(ep string) (*Client, error) {
	rc.mu.Lock()
	c := rc.conns[ep]
	rc.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := Dial(ep)
	if err != nil {
		return nil, err
	}
	rc.mu.Lock()
	rc.conns[ep] = c
	rc.mu.Unlock()
	return c, nil
}

// drop discards the cached connection for ep after a failure.
func (rc *RoutedClient) drop(ep string) {
	rc.mu.Lock()
	c := rc.conns[ep]
	delete(rc.conns, ep)
	rc.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// readOrder returns this call's endpoint preference: replicas rotated so
// load spreads across the fleet, then the primary as the final fallback
// (it is never stale and always accepts reads).
func (rc *RoutedClient) readOrder() []string {
	rc.mu.Lock()
	start := rc.cursor
	rc.cursor++
	rc.mu.Unlock()
	n := len(rc.topo.Replicas)
	order := make([]string, 0, n+1)
	for i := 0; i < n; i++ {
		order = append(order, rc.topo.Replicas[(start+i)%n])
	}
	return append(order, rc.topo.Primary)
}

// ExecRead executes one read statement, failing over across endpoints:
// an endpoint that refuses the connection, drops it mid-exchange, or
// sheds the read (ErrStale past its staleness bound, ErrOverloaded) is
// skipped for the next one in this call's rotation. Reads are idempotent,
// so resending after an ambiguous transport failure is safe — the
// asymmetry with ExecWrite is deliberate. attempts bounds full passes
// over the endpoint ring, with backoff between passes. The last
// structured shed is returned as a response if every endpoint sheds;
// transport-level failure of every endpoint returns an error.
func (rc *RoutedClient) ExecRead(ctx context.Context, stmt string, attempts int) (*Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	var lastShed *Response
	for pass := 0; pass < attempts; pass++ {
		for _, ep := range rc.readOrder() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c, err := rc.conn(ep)
			if err != nil {
				lastErr = fmt.Errorf("%s: %w", ep, err)
				continue // refused: rotate to the next endpoint
			}
			resp, err := c.Do(ctx, stmt)
			if err != nil {
				rc.drop(ep)
				lastErr = fmt.Errorf("%s: %w", ep, err)
				continue // connection lost mid-exchange: fail over
			}
			if rerr := resp.Err(); errors.Is(rerr, ErrStale) ||
				errors.Is(rerr, ErrOverloaded) || errors.Is(rerr, ErrReadOnly) {
				// ErrReadOnly on a read means the endpoint is not what
				// the topology claims (e.g. a replica listed as primary
				// rejecting SHOW is impossible, but a misconfigured
				// middlebox is not); treat all three as this endpoint
				// declining, and move on.
				lastShed = resp
				lastErr = fmt.Errorf("%s: %w", ep, rerr)
				continue
			}
			return resp, nil
		}
		if pass < attempts-1 && !sleep(ctx, rc.backoff.Delay(pass)) {
			return nil, ctx.Err()
		}
	}
	if lastShed != nil {
		return lastShed, fmt.Errorf("server: every endpoint shed the read: %w", lastErr)
	}
	return nil, fmt.Errorf("server: every endpoint failed: %w", lastErr)
}

// ExecWrite executes one mutating statement against the primary with
// mutation-safe retries (see WithMutation): dial failures and
// pre-engine sheds retry, anything after bytes hit the wire does not.
// Replicas are never tried — a READ_ONLY answer here means the topology
// is misconfigured and is returned as an error.
func (rc *RoutedClient) ExecWrite(ctx context.Context, stmt string, attempts int) (*Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	ep := rc.topo.Primary
	c, err := rc.conn(ep)
	if err != nil {
		// Let the mutation retry loop own the schedule: hand it a client
		// shell that starts disconnected.
		c = &Client{addr: ep}
		rc.mu.Lock()
		rc.conns[ep] = c
		rc.mu.Unlock()
	}
	resp, err := c.Do(ctx, stmt, WithRetry(attempts, rc.backoff), WithMutation())
	if err != nil {
		rc.drop(ep)
		return nil, err
	}
	if errors.Is(resp.Err(), ErrReadOnly) {
		return resp, fmt.Errorf("server: configured primary %s is a read-only replica", ep)
	}
	return resp, nil
}

// Close closes every cached connection.
func (rc *RoutedClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var first error
	for ep, c := range rc.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		delete(rc.conns, ep)
	}
	return first
}

// StalenessOf reports the staleness bound an endpoint last served under,
// for observability tooling: it issues a lightweight SHOW statement and
// reads the replica lag fields from stats_detail. A primary (no replica
// fields) reports zero lag.
func (rc *RoutedClient) StalenessOf(ep string) (lagLSN uint64, lag time.Duration, err error) {
	c, err := rc.conn(ep)
	if err != nil {
		return 0, 0, err
	}
	resp, err := c.Do(context.Background(), "SHOW TABLES")
	if err != nil {
		rc.drop(ep)
		return 0, 0, err
	}
	if resp.StatsDetail == nil {
		return 0, 0, nil
	}
	return resp.StatsDetail.ReplicaLagLSN, time.Duration(resp.StatsDetail.ReplicaLagMS) * time.Millisecond, nil
}
