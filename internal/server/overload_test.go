// Overload-protection tests: admission control and load shedding,
// connection caps, frame caps, write deadlines against slow readers, and
// the chaos/soak harness driving the server at a multiple of its admitted
// capacity with flaky connections.

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/metrics"
)

// startServerWith boots a server with cfg applied before Listen and
// returns it with its address (no client).
func startServerWith(t *testing.T, ecfg engine.Config, configure func(*Server)) (*Server, string) {
	t.Helper()
	if ecfg.CacheDir == "" {
		ecfg.CacheDir = t.TempDir()
	}
	db, err := engine.Open(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	if configure != nil {
		configure(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// metricValue sums the samples whose name is exactly name or a labeled
// variant name{...}.
func metricValue(reg *metrics.Registry, name string) float64 {
	var v float64
	for _, s := range reg.Samples() {
		if s.Name == name || strings.HasPrefix(s.Name, name+"{") {
			v += s.Value
		}
	}
	return v
}

func waitMetric(t *testing.T, reg *metrics.Registry, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if metricValue(reg, name) >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached %v (have %v)", name, want, metricValue(reg, name))
}

// parkServer installs a one-shot exec hook that blocks the first statement
// (which is already holding an admission slot) until release is closed.
func parkServer(srv *Server) (entered, release chan struct{}) {
	entered = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	srv.testHookExec = func(Request) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	return entered, release
}

// TestAdmissionShedStructured drives the limiter through both shed paths —
// queued past the timeout, and queue full — and verifies the structured
// retryable error plus the admission metrics in both the SHOW METRICS
// statement and the Prometheus endpoint.
func TestAdmissionShedStructured(t *testing.T) {
	srv, addr := startServerWith(t, engine.Config{}, func(s *Server) {
		s.Admission = AdmissionConfig{MaxStatements: 1, QueueDepth: 1, QueueTimeout: 300 * time.Millisecond}
	})
	entered, release := parkServer(srv)

	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	go c1.Do(context.Background(), "CREATE TABLE parked (id INT)")
	<-entered // c1 holds the only slot

	// c2 queues and is shed when the queue timeout expires.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resp, err := c2.Do(context.Background(), "SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeOverloaded {
		t.Fatalf("queued-past-timeout response = %+v, want code %s", resp, CodeOverloaded)
	}
	if resp.RetryAfterMS <= 0 {
		t.Errorf("shed response carries no retry-after hint: %+v", resp)
	}
	if !strings.Contains(resp.Error, "overloaded") {
		t.Errorf("shed error = %q", resp.Error)
	}
	reg := srv.db.Metrics()
	waitMetric(t, reg, metrics.NameAdmissionShedTotal, 1)

	// Fill the queue (depth 1) with a waiter, then a second arrival is
	// rejected outright without waiting.
	blocked := make(chan *Response, 1)
	go func() {
		r, _ := c2.Do(context.Background(), "SHOW TABLES")
		blocked <- r
	}()
	waitMetric(t, reg, metrics.NameAdmissionQueuedTotal, 2) // c2's two queued attempts
	c3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	start := time.Now()
	resp, err = c3.Do(context.Background(), "SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeOverloaded {
		t.Fatalf("queue-full response = %+v", resp)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Errorf("queue-full rejection took %v, want immediate", d)
	}
	if metricValue(reg, metrics.NameAdmissionRejectedTotal) < 1 {
		t.Errorf("rejected_total not incremented")
	}
	close(release)
	<-blocked

	// All admission metric names are visible to SHOW METRICS over the wire
	// and to the Prometheus text endpoint.
	c4, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	show := mustClient(t, c4, "SHOW METRICS LIKE 'insightnotes_admission_%'")
	seen := map[string]bool{}
	for _, row := range show.Rows {
		seen[row.Values[0].Str()] = true
	}
	ts := httptest.NewServer(NewDebugMux(srv.db))
	defer ts.Close()
	promResp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	for _, name := range []string{
		metrics.NameAdmissionQueuedTotal,
		metrics.NameAdmissionShedTotal,
		metrics.NameAdmissionRejectedTotal,
	} {
		if !seen[name] {
			t.Errorf("SHOW METRICS missing %s (have %v)", name, seen)
		}
		if !strings.Contains(string(prom), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(string(prom), metrics.NameAdmissionWaitSeconds) {
		t.Errorf("/metrics missing %s", metrics.NameAdmissionWaitSeconds)
	}
}

// TestExecRetrySucceedsAfterShed verifies the client-side contract: a shed
// statement is retried with the server's retry-after hint as a floor and
// eventually succeeds once load clears.
func TestExecRetrySucceedsAfterShed(t *testing.T) {
	srv, addr := startServerWith(t, engine.Config{}, func(s *Server) {
		s.Admission = AdmissionConfig{MaxStatements: 1, QueueDepth: 1, QueueTimeout: 30 * time.Millisecond}
	})
	entered, release := parkServer(srv)
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	go c1.Do(context.Background(), "CREATE TABLE parked (id INT)")
	<-entered

	// Release the parked statement once the retrying client has been shed
	// at least once, so the retry path is actually exercised.
	go func() {
		waitMetric(t, srv.db.Metrics(), metrics.NameAdmissionShedTotal, 1)
		close(release)
	}()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := c2.Do(ctx, "SHOW TABLES", WithRetry(20, Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond}))
	if err != nil {
		t.Fatalf("ExecRetry: %v", err)
	}
	if !resp.OK {
		t.Fatalf("ExecRetry final response = %+v", resp)
	}
}

// TestMaxConnsRefused verifies the connection cap: a connection over the
// cap gets one structured retryable answer and is closed; closing an
// admitted connection frees the slot.
func TestMaxConnsRefused(t *testing.T) {
	srv, addr := startServerWith(t, engine.Config{}, func(s *Server) {
		s.MaxConns = 1
	})
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustClient(t, c1, "SHOW TABLES")

	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resp, err := c2.Do(context.Background(), "SHOW TABLES")
	if err != nil {
		t.Fatalf("refused conn should still answer once: %v", err)
	}
	if resp.OK || resp.Code != CodeOverloaded || resp.RetryAfterMS <= 0 {
		t.Fatalf("refusal = %+v", resp)
	}
	if _, err := c2.Do(context.Background(), "SHOW TABLES"); err == nil {
		t.Fatal("refused connection should be closed after its one answer")
	}
	if got := metricValue(srv.db.Metrics(), metrics.NameServerConnsRefusedTotal); got != 1 {
		t.Errorf("conns_refused_total = %v, want 1", got)
	}

	// Freeing the admitted connection lets the next dial in.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c3.Do(context.Background(), "SHOW TABLES")
		c3.Close()
		if err == nil && r.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: resp=%+v err=%v", r, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFrameTooLargeStructured verifies the frame cap: an oversized request
// frame gets the structured FRAME_TOO_LARGE error and the connection is
// closed (the stream position is unrecoverable).
func TestFrameTooLargeStructured(t *testing.T) {
	_, addr := startServerWith(t, engine.Config{}, func(s *Server) {
		s.MaxFrameBytes = 4096
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(context.Background(), "SELECT '"+strings.Repeat("x", 8192)+"'")
	if err != nil {
		t.Fatalf("oversized frame should still get a structured answer: %v", err)
	}
	if resp.OK || resp.Code != CodeFrameTooLarge {
		t.Fatalf("resp = %+v, want code %s", resp, CodeFrameTooLarge)
	}
	if _, err := c.Do(context.Background(), "SHOW TABLES"); err == nil {
		t.Fatal("connection should be closed after a frame-cap violation")
	}
}

// TestSlowReaderWriteDeadline is the regression test for the handler
// parked forever in Flush: a client that stops reading while responses
// back up must not hold its serveConn goroutine past the write deadline.
func TestSlowReaderWriteDeadline(t *testing.T) {
	srv, addr := startServerWith(t, engine.Config{}, func(s *Server) {
		s.WriteTimeout = 200 * time.Millisecond
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustClient(t, c, "CREATE TABLE big (v TEXT)")
	val := strings.Repeat("x", 4<<10) // well under the 8 KiB page cap
	for i := 0; i < 64; i++ {
		mustClient(t, c, "INSERT INTO big VALUES ('"+val+"')")
	}

	// Pipeline SELECTs whose responses total far more than the kernel
	// socket buffers, and never read: the server's Flush must hit the
	// write deadline and the handler must exit.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	for i := 0; i < 128; i++ {
		if err := enc.Encode(Request{Stmt: "SELECT v FROM big"}); err != nil {
			break // server already gave up on us — that's the point
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for srv.active.Load() > 1 { // c stays connected; the slow reader must go
		if time.Now().After(deadline) {
			t.Fatalf("slow-reader handler still alive: active=%d", srv.active.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The engine is healthy afterwards.
	mustClient(t, c, "SHOW TABLES")
}

// TestFlakyConnFrameReassembly drives a client through the failpoint chaos
// wrapper: tiny delayed write chunks must reassemble into whole frames
// server-side, and a mid-frame drop must not wedge the server or other
// connections.
func TestFlakyConnFrameReassembly(t *testing.T) {
	srv, addr := startServerWith(t, engine.Config{}, nil)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := &failpoint.FlakyConn{Conn: raw, WriteChunk: 3, WriteDelay: time.Millisecond, ReadDelay: time.Millisecond}
	c := clientOver(fc, addr)
	defer c.Close()
	mustClient(t, c, "CREATE TABLE chaos (id INT)")
	if resp := mustClient(t, c, "SHOW TABLES"); len(resp.Rows) != 1 {
		t.Fatalf("rows = %+v", resp.Rows)
	}

	// A connection dropped mid-frame: the half-written request must not
	// reach the engine, and the server must reap the connection.
	raw2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	dropper := &failpoint.FlakyConn{Conn: raw2, DropAfter: 10}
	d := clientOver(dropper, addr)
	if _, err := d.Do(context.Background(), "INSERT INTO chaos VALUES (999)"); err == nil {
		t.Fatal("dropped conn should error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.active.Load() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped conn not reaped: active=%d", srv.active.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The torn INSERT never executed; the healthy client still works.
	if resp := mustClient(t, c, "SELECT id FROM chaos"); len(resp.Rows) != 0 {
		t.Fatalf("half-frame INSERT reached the engine: %+v", resp.Rows)
	}
}

// clientOver builds a Client on an existing (possibly fault-injected)
// connection.
func clientOver(conn net.Conn, addr string) *Client {
	w := bufio.NewWriter(conn)
	return &Client{addr: addr, conn: conn, r: newFrameScanner(conn, defaultMaxFrameBytes), enc: json.NewEncoder(w), w: w}
}

// TestOverloadSoak is the chaos/soak harness: workers at ~4x the admitted
// statement capacity hammer the server with annotation writes and reads
// through retrying clients while degraded summary maintenance is active.
// Afterwards it asserts: every outcome was either success or a structured
// shed (no hangs, no opaque failures), no goroutine or connection leaks,
// admitted latency stayed bounded, and — after catch-up — the summaries
// equal a synchronous shadow replay of exactly the acknowledged
// annotations.
func TestOverloadSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// Durable engine: every acknowledged write pays a real WAL fsync, so
	// statements have enough latency to contend for admission slots (and
	// the group-commit path runs under genuine concurrency).
	db, _, err := engine.OpenDurable(
		engine.Config{CacheDir: t.TempDir(), MaintenanceQueueDepth: 256},
		engine.DurabilityOptions{Dir: t.TempDir(), AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	srv.Admission = AdmissionConfig{MaxStatements: 1, QueueDepth: 2, QueueTimeout: 50 * time.Millisecond}
	srv.WriteTimeout = 2 * time.Second
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	schema := []string{
		"CREATE TABLE birds (id INT, name TEXT)",
		"INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan'), (3, 'Whooper Swan')",
		"CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Behavior', 'Other')",
		"TRAIN SUMMARY C ('feeding foraging stonewort', 'Behavior'), ('photo camera record', 'Other')",
		"LINK SUMMARY C TO birds",
		"CREATE SUMMARY INSTANCE S TYPE Snippet",
		"LINK SUMMARY S TO birds",
	}
	for _, stmt := range schema {
		mustClient(t, c, stmt)
	}
	c.Close()
	// Degrade summary maintenance for the whole soak: raw annotations and
	// WAL records stay synchronous, envelope updates queue for catch-up.
	srv.db.SetDegraded(true)

	const workers = 8 // well past the slot + queue capacity of 3
	duration := 1500 * time.Millisecond
	if testing.Short() {
		duration = 400 * time.Millisecond
	}
	type ack struct {
		id   int
		stmt string
	}
	var (
		mu       sync.Mutex
		acked    []ack
		sheds    int
		maxAdmit time.Duration
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stop := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := DialRetry(ctx, addr, 5, Backoff{Base: 10 * time.Millisecond})
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			b := Backoff{Base: 5 * time.Millisecond, Max: 200 * time.Millisecond}
			for op := 0; time.Now().Before(stop); op++ {
				var stmt string
				if op%3 == 2 {
					stmt = "SELECT id, name FROM birds"
				} else {
					stmt = fmt.Sprintf(
						"ADD ANNOTATION 'w%d op%d observed feeding on stonewort' ON birds WHERE id = %d",
						w, op, op%3+1)
				}
				start := time.Now()
				resp, err := cl.Do(ctx, stmt, WithRetry(6, b))
				elapsed := time.Since(start)
				if err != nil {
					t.Errorf("worker %d op %d: unstructured failure: %v", w, op, err)
					return
				}
				mu.Lock()
				switch {
				case resp.OK:
					if elapsed > maxAdmit {
						maxAdmit = elapsed
					}
					var id, n int
					if strings.HasPrefix(stmt, "ADD ANNOTATION") {
						if _, err := fmt.Sscanf(resp.Message, "annotation %d attached to %d tuple(s)", &id, &n); err != nil {
							t.Errorf("bad ack message %q: %v", resp.Message, err)
						} else {
							acked = append(acked, ack{id: id, stmt: stmt})
						}
					}
				case resp.Code == CodeOverloaded:
					sheds++ // structured shed after retries: acceptable under 4x load
				default:
					t.Errorf("worker %d op %d: unstructured error %+v", w, op, resp)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(acked) == 0 {
		t.Fatal("soak acknowledged no annotations")
	}
	t.Logf("soak: %d annotations acked, %d final sheds, max admitted latency %v", len(acked), sheds, maxAdmit)
	// 4x oversubscription must actually contend for slots: statements
	// waited in the admission queue at some point.
	if metricValue(srv.db.Metrics(), metrics.NameAdmissionQueuedTotal) == 0 {
		t.Error("soak generated no admission-queue pressure")
	}
	// Admitted statements must finish promptly even at 4x load: the queue
	// wait is bounded by QueueTimeout and execution is short. Generous
	// bound to absorb -race and single-core CI scheduling.
	if maxAdmit > 10*time.Second {
		t.Errorf("admitted statement took %v", maxAdmit)
	}

	// End the degraded window and let the catch-up worker drain.
	srv.db.SetDegraded(false)
	srv.db.WaitMaintenanceIdle()
	if st := srv.db.MaintenanceStats(); st.Pending != 0 || st.Degraded {
		t.Fatalf("maintenance not drained: %+v", st)
	}

	// Shadow replay: apply the same schema plus exactly the acknowledged
	// annotations, in annotation-id (=ingest) order, to a synchronous
	// engine, and compare every rendered summary over the wire.
	shadowDB, err := engine.Open(engine.Config{CacheDir: t.TempDir(), DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	shadow := New(shadowDB)
	shadowAddr, err := shadow.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shadow.Close()
	sc, err := Dial(shadowAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for _, stmt := range schema {
		mustClient(t, sc, stmt)
	}
	sort.Slice(acked, func(i, j int) bool { return acked[i].id < acked[j].id })
	for _, a := range acked {
		mustClient(t, sc, a.stmt)
	}
	mc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	const q = "SELECT id, name FROM birds"
	got := mustClient(t, mc, q)
	want := mustClient(t, sc, q)
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		g, w := got.Rows[i], want.Rows[i]
		for inst, ws := range w.Summaries {
			if gs := g.Summaries[inst]; gs != ws {
				t.Errorf("row %d instance %s: summary diverged after catch-up\n got: %s\nwant: %s", i, inst, gs, ws)
			}
		}
	}

	// No leaks: connections and goroutines return to baseline.
	mc.Close()
	sc.Close()
	shadow.Close()
	srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStaleGaugeVisible verifies the per-instance staleness gauge reaches
// both metric surfaces while summaries lag, and clears after catch-up.
func TestStaleGaugeVisible(t *testing.T) {
	srv, addr := startServerWith(t, engine.Config{}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustClient(t, c, "CREATE TABLE birds (id INT, name TEXT)")
	mustClient(t, c, "INSERT INTO birds VALUES (1, 'Swan Goose')")
	mustClient(t, c, "CREATE SUMMARY INSTANCE S TYPE Snippet")
	mustClient(t, c, "LINK SUMMARY S TO birds")
	// Park the catch-up worker so the stale window is deterministic: the
	// worker blocks inside the failpoint until gate closes.
	gate := make(chan struct{})
	failpoint.Enable(failpoint.MaintenanceApply, func() error { <-gate; return nil })
	t.Cleanup(func() {
		failpoint.Reset()
		select { // unblock the worker if the test failed before close(gate)
		case <-gate:
		default:
			close(gate)
		}
	})
	srv.db.SetDegraded(true)
	mustClient(t, c, "ADD ANNOTATION 'observed feeding' ON birds WHERE id = 1")

	show := mustClient(t, c, "SHOW METRICS LIKE 'insightnotes_summary_stale_updates%'")
	var stale float64
	for _, row := range show.Rows {
		if strings.Contains(row.Values[0].Str(), `instance="S"`) {
			stale = row.Values[2].Float()
		}
	}
	if stale < 1 {
		t.Fatalf("stale gauge for S = %v, want >= 1 (rows %+v)", stale, show.Rows)
	}
	// The degraded flag and pending count ride along in stats_detail.
	sel := mustClient(t, c, "SELECT id FROM birds")
	if sel.StatsDetail == nil || sel.StatsDetail.StalePending < 1 {
		t.Errorf("stats_detail stale_pending = %+v", sel.StatsDetail)
	}
	if !strings.Contains(sel.Stats, "stale") {
		t.Errorf("stats line missing stale marker: %q", sel.Stats)
	}

	ts := httptest.NewServer(NewDebugMux(srv.db))
	defer ts.Close()
	promResp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if !strings.Contains(string(prom), `insightnotes_summary_stale_updates{instance="S"} 1`) {
		t.Errorf("/metrics missing stale gauge:\n%s", prom)
	}
	if !strings.Contains(string(prom), "insightnotes_maintenance_pending_tasks 1") {
		t.Errorf("/metrics missing pending gauge")
	}

	close(gate)
	srv.db.SetDegraded(false)
	srv.db.WaitMaintenanceIdle()
	show = mustClient(t, c, "SHOW METRICS LIKE 'insightnotes_summary_stale_updates%'")
	for _, row := range show.Rows {
		if strings.Contains(row.Values[0].Str(), `instance="S"`) && row.Values[2].Float() != 0 {
			t.Errorf("stale gauge did not clear: %+v", row)
		}
	}
}
