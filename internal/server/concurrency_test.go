package server

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"insightnotes/internal/engine"
)

// startConfiguredServer boots a server after cfg has customized it (test
// hook, statement timeout — fields that must be set before Listen) and
// returns it with a connected client.
func startConfiguredServer(t *testing.T, cfg func(*Server)) (*Server, *Client) {
	t.Helper()
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	cfg(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestServerConcurrentSelectsOverlap is the regression test for the old
// server-wide statement mutex: two SELECTs from separate connections must
// both be inside statement execution at the same time. The test hook fires
// before the engine is entered; each SELECT blocks there until the other
// has arrived, so the test deadlocks (and fails on the timeout guard) if
// the server ever serializes read statements again.
func TestServerConcurrentSelectsOverlap(t *testing.T) {
	var entered atomic.Int32
	barrier := make(chan struct{})
	srv, c := startConfiguredServer(t, func(s *Server) {
		s.testHookExec = func(req Request) {
			if !strings.HasPrefix(req.Stmt, "SELECT") {
				return
			}
			if entered.Add(1) == 2 {
				close(barrier)
			}
			select {
			case <-barrier:
			case <-time.After(5 * time.Second):
				t.Error("second concurrent SELECT never arrived: reads are serialized")
			}
		}
	})
	mustClient(t, c, "CREATE TABLE t (a INT)")
	mustClient(t, c, "INSERT INTO t VALUES (1), (2), (3)")

	addr := srv.listener.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			resp, err := cl.Exec("SELECT a FROM t")
			if err != nil {
				errs <- err
				return
			}
			if !resp.OK || len(resp.Rows) != 3 {
				t.Errorf("overlapping SELECT returned %+v", resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := entered.Load(); got != 2 {
		t.Fatalf("hook saw %d SELECTs, want 2", got)
	}
}

// TestServerStatementTimeout verifies the configurable per-statement
// deadline: an expired statement context surfaces as a deadline error on
// the wire, and the connection keeps serving statements afterwards.
func TestServerStatementTimeout(t *testing.T) {
	_, c := startConfiguredServer(t, func(s *Server) {
		s.StatementTimeout = time.Nanosecond
	})
	// DDL/DML don't reach the row pipeline, so setup succeeds even under
	// the nanosecond deadline; the SELECT is cancelled at statement entry.
	mustClient(t, c, "CREATE TABLE t (a INT)")
	mustClient(t, c, "INSERT INTO t VALUES (1)")

	resp, err := c.Exec("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "deadline exceeded") {
		t.Fatalf("resp = %+v, want deadline error", resp)
	}
	if r := mustClient(t, c, "SHOW TABLES"); !r.OK {
		t.Fatal("connection dead after statement timeout")
	}
}

// TestServerStatsLine checks the per-statement summary surfaced in the
// protocol response.
func TestServerStatsLine(t *testing.T) {
	_, c := startServer(t)
	mustClient(t, c, "CREATE TABLE t (a INT)")
	mustClient(t, c, "INSERT INTO t VALUES (1), (2)")
	resp := mustClient(t, c, "SELECT a FROM t")
	if !strings.HasPrefix(resp.Stats, "2 row(s) in ") {
		t.Fatalf("stats = %q", resp.Stats)
	}
	resp = mustClient(t, c, "EXPLAIN ANALYZE SELECT a FROM t")
	if resp.Stats == "" {
		t.Fatal("EXPLAIN ANALYZE response missing stats line")
	}
	found := false
	for _, row := range resp.Rows {
		if strings.Contains(row.Values[0].Str(), "rows=2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("EXPLAIN ANALYZE rows missing counters: %+v", resp.Rows)
	}
}
