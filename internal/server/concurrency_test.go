package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"insightnotes/internal/engine"
)

// startConfiguredServer boots a server after cfg has customized it (test
// hook, statement timeout — fields that must be set before Listen) and
// returns it with a connected client.
func startConfiguredServer(t *testing.T, cfg func(*Server)) (*Server, *Client) {
	t.Helper()
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	cfg(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestServerConcurrentSelectsOverlap is the regression test for the old
// server-wide statement mutex: two SELECTs from separate connections must
// both be inside statement execution at the same time. The test hook fires
// before the engine is entered; each SELECT blocks there until the other
// has arrived, so the test deadlocks (and fails on the timeout guard) if
// the server ever serializes read statements again.
func TestServerConcurrentSelectsOverlap(t *testing.T) {
	var entered atomic.Int32
	barrier := make(chan struct{})
	srv, c := startConfiguredServer(t, func(s *Server) {
		s.testHookExec = func(req Request) {
			if !strings.HasPrefix(req.Stmt, "SELECT") {
				return
			}
			if entered.Add(1) == 2 {
				close(barrier)
			}
			select {
			case <-barrier:
			case <-time.After(5 * time.Second):
				t.Error("second concurrent SELECT never arrived: reads are serialized")
			}
		}
	})
	mustClient(t, c, "CREATE TABLE t (a INT)")
	mustClient(t, c, "INSERT INTO t VALUES (1), (2), (3)")

	addr := srv.listener.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			resp, err := cl.Do(context.Background(), "SELECT a FROM t")
			if err != nil {
				errs <- err
				return
			}
			if !resp.OK || len(resp.Rows) != 3 {
				t.Errorf("overlapping SELECT returned %+v", resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := entered.Load(); got != 2 {
		t.Fatalf("hook saw %d SELECTs, want 2", got)
	}
}

// TestServerStatementTimeout verifies the configurable per-statement
// deadline: an expired statement context surfaces as a deadline error on
// the wire, and the connection keeps serving statements afterwards.
func TestServerStatementTimeout(t *testing.T) {
	_, c := startConfiguredServer(t, func(s *Server) {
		s.StatementTimeout = time.Nanosecond
	})
	// DDL/DML don't reach the row pipeline, so setup succeeds even under
	// the nanosecond deadline; the SELECT is cancelled at statement entry.
	mustClient(t, c, "CREATE TABLE t (a INT)")
	mustClient(t, c, "INSERT INTO t VALUES (1)")

	resp, err := c.Do(context.Background(), "SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "deadline exceeded") {
		t.Fatalf("resp = %+v, want deadline error", resp)
	}
	if r := mustClient(t, c, "SHOW TABLES"); !r.OK {
		t.Fatal("connection dead after statement timeout")
	}
}

// TestServerStatsLine checks the per-statement summary surfaced in the
// protocol response, in both its legacy string and structured forms.
func TestServerStatsLine(t *testing.T) {
	_, c := startServer(t)
	mustClient(t, c, "CREATE TABLE t (a INT)")
	mustClient(t, c, "INSERT INTO t VALUES (1), (2)")
	resp := mustClient(t, c, "SELECT a FROM t")
	if !strings.HasPrefix(resp.Stats, "2 row(s) in ") {
		t.Fatalf("stats = %q", resp.Stats)
	}
	d := resp.StatsDetail
	if d == nil || d.Rows != 2 || d.OpRows == 0 || d.WallMicros < 0 {
		t.Fatalf("stats_detail = %+v", d)
	}
	foundScan := false
	for _, op := range d.Ops {
		if op.Op == "scan" && op.Rows == 2 {
			foundScan = true
		}
	}
	if !foundScan {
		t.Fatalf("stats_detail ops missing scan: %+v", d.Ops)
	}
	resp = mustClient(t, c, "EXPLAIN ANALYZE SELECT a FROM t")
	if resp.Stats == "" {
		t.Fatal("EXPLAIN ANALYZE response missing stats line")
	}
	found := false
	for _, row := range resp.Rows {
		if strings.Contains(row.Values[0].Str(), "rows=2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("EXPLAIN ANALYZE rows missing counters: %+v", resp.Rows)
	}
}

// TestServerShowMetricsUnderLoad hammers SHOW METRICS from reader
// goroutines while writers run DML on separate connections. Metric scrapes
// walk every family (including function-backed collectors reading engine
// state) while counters are being incremented, so this is the race
// regression test for the whole registry — run it under -race.
func TestServerShowMetricsUnderLoad(t *testing.T) {
	srv, c := startServer(t)
	mustClient(t, c, "CREATE TABLE t (a INT, b TEXT)")
	mustClient(t, c, "INSERT INTO t VALUES (1, 'x')")

	addr := srv.listener.Addr().String()
	const readers, writers, iters = 4, 2, 25
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < iters; i++ {
				resp, err := cl.Do(context.Background(), "SHOW METRICS LIKE 'insightnotes_engine_%'")
				if err != nil {
					errs <- err
					return
				}
				if !resp.OK || len(resp.Rows) == 0 {
					errs <- fmt.Errorf("SHOW METRICS under load: %+v", resp)
					return
				}
			}
		}()
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < iters; i++ {
				stmts := []string{
					fmt.Sprintf("INSERT INTO t VALUES (%d, 'w%d')", 100*g+i, g),
					"SELECT a FROM t WHERE a >= 0",
					fmt.Sprintf("UPDATE t SET b = 'u' WHERE a = %d", 100*g+i),
				}
				for _, stmt := range stmts {
					if resp, err := cl.Do(context.Background(), stmt); err != nil || !resp.OK {
						errs <- fmt.Errorf("writer %q: %v %+v", stmt, err, resp)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The registry observed every statement that ran above.
	resp := mustClient(t, c, "SHOW METRICS LIKE 'insightnotes_server_requests_total'")
	if len(resp.Rows) != 1 {
		t.Fatalf("requests sample missing: %+v", resp.Rows)
	}
	if got := resp.Rows[0].Values[2].Float(); got < float64(readers*iters+writers*iters*3) {
		t.Fatalf("requests counter = %v, want >= %d", got, readers*iters+writers*iters*3)
	}
}

// TestDebugMuxMetricsEndpoint scrapes the HTTP sidecar and checks the
// exposition contains the engine families fed by real statements.
func TestDebugMuxMetricsEndpoint(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(context.Background(), "SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(NewDebugMux(db))
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE insightnotes_engine_statements_total counter",
		`insightnotes_engine_statements_total{kind="select"} 1`,
		"# TYPE insightnotes_zoomin_cache_hits_total counter",
		"# TYPE insightnotes_exec_op_seconds histogram",
		"insightnotes_zoomin_cache_puts_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// pprof index responds on the same mux.
	pr, err := http.Get(hs.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", pr.StatusCode)
	}

	// Metrics disabled: /metrics answers 503 rather than an empty page.
	off, err := engine.Open(engine.Config{CacheDir: t.TempDir(), DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(NewDebugMux(off))
	defer hs2.Close()
	r2, err := http.Get(hs2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disabled /metrics status = %d, want 503", r2.StatusCode)
	}
}
