// HTTP observability sidecar: a debug mux serving the engine's metric
// registry in Prometheus text exposition format plus the standard pprof
// profiling endpoints. The sidecar is separate from the statement protocol
// so scrapes and profiles never compete with client connections, and so
// deployments can bind it to a loopback or management interface only.

package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"

	"insightnotes/internal/engine"
	"insightnotes/internal/metrics"
	"insightnotes/internal/trace"
)

// NewDebugMux builds the sidecar handler for db:
//
//	/metrics        Prometheus text exposition of the engine registry
//	/traces         retained lifecycle traces as JSON (?id=… for one trace,
//	                ?limit=n for the most recent n; default 50)
//	/debug/pprof/*  the net/http/pprof profiling suite
//
// Serve it with http.Server on a dedicated address (insightnotesd's
// -metrics-addr flag). When db has metrics disabled, /metrics answers 503;
// when tracing is disabled, /traces answers 503.
func NewDebugMux(db *engine.DB) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(db.Metrics()))
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) { serveTraces(db, w, r) })
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveTraces answers /traces: one full trace by id, or the most recent
// retained traces (most recent first) bounded by ?limit.
func serveTraces(db *engine.DB, w http.ResponseWriter, r *http.Request) {
	tr := db.Tracer()
	if tr == nil {
		http.Error(w, "tracing disabled", http.StatusServiceUnavailable)
		return
	}
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := trace.ParseID(idStr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		t, ok := tr.Get(id)
		if !ok {
			http.Error(w, "trace not found (evicted or never retained)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(t.JSON())
		return
	}
	limit := 50
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	out := make([]trace.TraceJSON, 0)
	for _, t := range tr.Snapshot(limit) {
		out = append(out, t.JSON())
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
