// HTTP observability sidecar: a debug mux serving the engine's metric
// registry in Prometheus text exposition format plus the standard pprof
// profiling endpoints. The sidecar is separate from the statement protocol
// so scrapes and profiles never compete with client connections, and so
// deployments can bind it to a loopback or management interface only.

package server

import (
	"net/http"
	"net/http/pprof"

	"insightnotes/internal/engine"
	"insightnotes/internal/metrics"
)

// NewDebugMux builds the sidecar handler for db:
//
//	/metrics        Prometheus text exposition of the engine registry
//	/debug/pprof/*  the net/http/pprof profiling suite
//
// Serve it with http.Server on a dedicated address (insightnotesd's
// -metrics-addr flag). When db has metrics disabled, /metrics answers 503.
func NewDebugMux(db *engine.DB) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(db.Metrics()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
