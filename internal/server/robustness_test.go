package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/metrics"
)

// TestServerPanicIsolation drives a statement into a deliberate panic via
// the exec failpoint and asserts the server answers with a structured
// error, keeps serving, and counts the panic.
func TestServerPanicIsolation(t *testing.T) {
	srv, c := startServer(t)
	mustClient(t, c, "CREATE TABLE t (id INT)")

	failpoint.Enable(failpoint.ServerExecPanic, func() error {
		return errors.New("injected panic")
	})
	defer failpoint.Disable(failpoint.ServerExecPanic)

	resp, err := c.Do(context.Background(), "SELECT id FROM t")
	if err != nil {
		t.Fatalf("connection died on panicking statement: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "internal error") {
		t.Fatalf("want structured internal error, got %+v", resp)
	}

	failpoint.Disable(failpoint.ServerExecPanic)
	mustClient(t, c, "INSERT INTO t VALUES (7)")
	if got := mustClient(t, c, "SELECT id FROM t"); len(got.Rows) != 1 {
		t.Fatalf("server unusable after contained panic: %+v", got)
	}

	var panics float64
	for _, s := range srv.db.Metrics().Samples() {
		if s.Name == metrics.NameServerPanicsTotal {
			panics = s.Value
		}
	}
	if panics != 1 {
		t.Errorf("%s = %v, want 1", metrics.NameServerPanicsTotal, panics)
	}
}

// TestShutdownDrainsInFlight verifies the graceful path: a statement in
// flight when Shutdown is called completes and is answered before the
// server exits.
func TestShutdownDrainsInFlight(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	srv.testHookExec = func(Request) {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		resp *Response
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := c.Do(context.Background(), "CREATE TABLE slow (id INT)")
		resCh <- result{resp, err}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(5 * time.Second) }()
	// The shutdown must wait for the in-flight statement, not abort it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a statement was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-resCh
	if r.err != nil || !r.resp.OK {
		t.Fatalf("in-flight statement lost during drain: resp=%+v err=%v", r.resp, r.err)
	}
	if _, err := Dial(addr); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// TestShutdownForcesAfterTimeout verifies the bounded path: a statement
// stuck past the drain timeout is cut loose and Shutdown reports the
// forced closure instead of hanging.
func TestShutdownForcesAfterTimeout(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	srv.testHookExec = func(Request) {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	defer close(release)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	go c.Do(context.Background(), "CREATE TABLE stuck (id INT)")
	<-entered

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(50 * time.Millisecond) }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "force-closed") {
			t.Fatalf("want forced-drain error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung past its drain timeout")
	}
}

// TestBackoffSchedule pins the deterministic part of the schedule (zero
// jitter draw) and the jitter bounds.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Rand: func() float64 { return 0 }}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}

	// Full jitter draw adds at most Jitter*delay on top.
	bj := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.5,
		Rand: func() float64 { return 0.999 }}
	if got := bj.Delay(0); got < 10*time.Millisecond || got > 15*time.Millisecond {
		t.Errorf("jittered Delay(0) = %v, want within [10ms, 15ms]", got)
	}

	// Defaults: base 50ms, factor 2, cap 2s.
	d := Backoff{Rand: func() float64 { return 0 }}
	if got := d.Delay(0); got != 50*time.Millisecond {
		t.Errorf("default Delay(0) = %v, want 50ms", got)
	}
	if got := d.Delay(20); got != 2*time.Second {
		t.Errorf("default Delay(20) = %v, want capped 2s", got)
	}
}

// TestDialRetry covers the three outcomes: eventual success once the
// server appears, bounded failure against a dead address, and context
// cancellation mid-wait.
func TestDialRetry(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir(), DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	fast := Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	c, err := DialRetry(context.Background(), addr, 3, fast)
	if err != nil {
		t.Fatalf("DialRetry against live server: %v", err)
	}
	c.Close()

	// A dead port fails after the bounded attempts with the dial error.
	srv.Close()
	if _, err := DialRetry(context.Background(), addr, 3, fast); err == nil {
		t.Fatal("DialRetry against closed server succeeded")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialRetry(ctx, addr, 3, fast); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DialRetry: err = %v, want context.Canceled", err)
	}
}
