package server

import (
	"errors"
	"fmt"
	"time"
)

// Typed sentinel errors for the machine-readable response codes. Clients
// classify failures with errors.Is against Response.Err() instead of
// string-matching Response.Code:
//
//	resp, err := c.Do(ctx, stmt)
//	if err == nil && errors.Is(resp.Err(), server.ErrOverloaded) { back off }
//
// The wire format is unchanged — codes still travel as strings — these
// sentinels are the client-side vocabulary layered over them.
var (
	// ErrOverloaded: the statement was shed before entering the engine
	// (admission queue full or timed out, or the connection cap). Always
	// safe to retry, including mutations; RetryAfter carries the server's
	// backoff hint.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrStale: a replica refused the read because its staleness bound is
	// exceeded. Retry against another endpoint or the primary.
	ErrStale = errors.New("server: replica too stale")
	// ErrReadOnly: a replica refused a mutation (or an EXECUTE of a
	// mutating prepared statement). Route it to the primary.
	ErrReadOnly = errors.New("server: replica is read-only")
	// ErrCorrupt: the statement touched a quarantined or checksum-failed
	// page. Not retryable here; the scrubber or CHECK TABLE must repair
	// the page (possibly from a peer) first.
	ErrCorrupt = errors.New("server: data corrupt")
)

// sentinelFor maps a wire code to its sentinel (nil for codes without one,
// including plain statement errors with no code at all).
func sentinelFor(code string) error {
	switch code {
	case CodeOverloaded:
		return ErrOverloaded
	case CodeStale:
		return ErrStale
	case CodeReadOnly:
		return ErrReadOnly
	case CodeCorrupt:
		return ErrCorrupt
	default:
		return nil
	}
}

// ResponseError is a failed Response as an error value. Unwrap exposes the
// matching sentinel so errors.Is(err, ErrOverloaded) etc. work through any
// amount of fmt.Errorf("%w") wrapping the caller adds.
type ResponseError struct {
	// Code is the machine-readable wire code ("" for plain statement
	// errors).
	Code string
	// Message is the server's human-readable error text.
	Message string
	// RetryAfter is the server's backoff hint (zero when absent). Honor it
	// as a floor under any client-side backoff schedule.
	RetryAfter time.Duration
}

func (e *ResponseError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server: %s (%s)", e.Message, e.Code)
	}
	return fmt.Sprintf("server: %s", e.Message)
}

// Unwrap returns the typed sentinel for the code, or nil when there is
// none (errors.Is then matches only the *ResponseError itself).
func (e *ResponseError) Unwrap() error { return sentinelFor(e.Code) }

// Err converts a failed response into a typed error; it returns nil for a
// successful one. The returned *ResponseError unwraps to the matching
// sentinel (ErrOverloaded, ErrStale, ErrReadOnly, ErrCorrupt), so retry
// and routing logic reads as errors.Is instead of code string comparisons.
func (r *Response) Err() error {
	if r == nil || r.OK {
		return nil
	}
	return &ResponseError{
		Code:       r.Code,
		Message:    r.Error,
		RetryAfter: time.Duration(r.RetryAfterMS) * time.Millisecond,
	}
}
