// Wire-level tracing tests: trace ids on responses and in stats_detail,
// SHOW TRACE rendering a full lifecycle span tree for a durable mutating
// statement, and the /traces sidecar endpoint.

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/trace"
)

// startDurableTracedServer boots a server over a durable engine (WAL on)
// with admission control and full trace retention — the configuration in
// which a mutating statement's trace crosses every layer.
func startDurableTracedServer(t *testing.T) (*engine.DB, *Client) {
	t.Helper()
	db, _, err := engine.OpenDurable(
		engine.Config{CacheDir: t.TempDir(), TraceSample: 1},
		engine.DurabilityOptions{Dir: t.TempDir()},
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	srv.Admission = AdmissionConfig{MaxStatements: 4, QueueDepth: 8, QueueTimeout: time.Second}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return db, c
}

func TestTraceOverWire(t *testing.T) {
	db, c := startDurableTracedServer(t)
	mustClient(t, c, "CREATE TABLE birds (id INT, hits INT)")
	mustClient(t, c, "CREATE INDEX ON birds (id)")
	// Enough rows that the planner picks the index for the UPDATE below.
	for base := 0; base < 800; base += 100 {
		vals := make([]string, 0, 100)
		for i := base; i < base+100; i++ {
			vals = append(vals, fmt.Sprintf("(%d, 0)", i))
		}
		mustClient(t, c, "INSERT INTO birds VALUES "+strings.Join(vals, ", "))
	}

	resp := mustClient(t, c, "UPDATE birds SET hits = 1 WHERE id = 7")
	if resp.TraceID == "" {
		t.Fatal("mutating response carries no trace_id")
	}

	// SHOW TRACE over the same connection renders the span tree: queue
	// wait, parse, plan (with the access-path decision), exec, and the
	// WAL append + group commit of the durable write.
	tree := mustClient(t, c, "SHOW TRACE "+resp.TraceID)
	var joined strings.Builder
	for _, row := range tree.Rows {
		joined.WriteString(row.Values[0].Str())
		joined.WriteString("\n")
	}
	out := joined.String()
	for _, want := range []string{
		"trace " + resp.TraceID,
		"kind=update",
		trace.SpanQueueWait,
		trace.SpanParse,
		trace.SpanPlan,
		trace.SpanExec,
		trace.SpanWALAppend,
		trace.SpanWALCommit,
		"path=index_scan",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SHOW TRACE output missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("rendered tree:\n%s", out)
	}

	// Errors still carry the trace id so the failed statement can be
	// looked up.
	errResp, err := c.Do(context.Background(), "UPDATE birds SET nope = 1 WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if errResp.OK || errResp.TraceID == "" {
		t.Fatalf("error response = %+v; want trace_id on failure", errResp)
	}
	if showResp := mustClient(t, c, "SHOW TRACE "+errResp.TraceID); len(showResp.Rows) == 0 {
		t.Fatal("errored trace not retained")
	}

	// stats_detail cross-links the same trace id and surfaces the
	// admission-queue wait as its own field.
	sel, err := c.Do(context.Background(), "SELECT hits FROM birds WHERE id = 7", WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if sel.StatsDetail == nil {
		t.Fatal("traced SELECT has no stats_detail")
	}
	if sel.StatsDetail.TraceID != sel.TraceID || sel.TraceID == "" {
		t.Fatalf("stats_detail trace id %q; response %q", sel.StatsDetail.TraceID, sel.TraceID)
	}
	if sel.StatsDetail.QueueWaitMicros < 0 {
		t.Fatalf("queue wait = %d", sel.StatsDetail.QueueWaitMicros)
	}

	// The same trace resolves through the /traces sidecar endpoint.
	mux := NewDebugMux(db)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/traces?id="+resp.TraceID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/traces?id: %d %s", rec.Code, rec.Body.String())
	}
	var tj trace.TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &tj); err != nil {
		t.Fatal(err)
	}
	if tj.ID != resp.TraceID || tj.Kind != "update" || len(tj.Spans) == 0 {
		t.Fatalf("/traces?id returned %+v", tj)
	}
}

func TestTracesEndpoint(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir(), TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	mustClient(t, c, "CREATE TABLE t (a INT)")
	mustClient(t, c, "INSERT INTO t VALUES (1)")
	mustClient(t, c, "SELECT a FROM t")

	mux := NewDebugMux(db)
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	rec := get("/traces?limit=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("/traces: %d %s", rec.Code, rec.Body.String())
	}
	var list []trace.TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("limit ignored: %d traces", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].TSMicros > list[i-1].TSMicros {
			t.Fatal("/traces not most-recent-first")
		}
	}

	if rec := get("/traces?id=zzz"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id: %d", rec.Code)
	}
	if rec := get("/traces?id=t0000000000000001"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", rec.Code)
	}
	if rec := get("/traces?limit=0"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad limit: %d", rec.Code)
	}

	// Tracing disabled: the endpoint answers 503 rather than lying with
	// an empty list.
	offDB, err := engine.Open(engine.Config{CacheDir: t.TempDir(), DisableTracing: true})
	if err != nil {
		t.Fatal(err)
	}
	offRec := httptest.NewRecorder()
	NewDebugMux(offDB).ServeHTTP(offRec, httptest.NewRequest("GET", "/traces", nil))
	if offRec.Code != http.StatusServiceUnavailable {
		t.Fatalf("disabled tracing: %d", offRec.Code)
	}
}

// TestShedTraceRetained checks that a load-shed statement leaves an
// errored (always retained) trace whose root shows the queue wait.
func TestShedTraceRetained(t *testing.T) {
	srv, addr := startServerWith(t, engine.Config{TraceSample: 1}, func(s *Server) {
		s.Admission = AdmissionConfig{MaxStatements: 1, QueueDepth: 1, QueueTimeout: 50 * time.Millisecond}
	})
	entered, release := parkServer(srv)

	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	go c1.Do(context.Background(), "SELECT 1") // parks in the exec hook holding the one slot
	<-entered
	defer close(release)

	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resp, err := c2.Do(context.Background(), "SELECT 2") // queues, then sheds at the timeout
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeOverloaded {
		t.Fatalf("expected shed, got %+v", resp)
	}
	if resp.TraceID == "" {
		t.Fatal("shed response carries no trace_id")
	}
	id, err := trace.ParseID(resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := srv.db.Tracer().Get(id)
	if !ok {
		t.Fatal("shed trace not retained")
	}
	if tr.Kind != "shed" || tr.Err == "" {
		t.Fatalf("shed trace = kind %q err %q", tr.Kind, tr.Err)
	}
	found := false
	for _, sp := range tr.Spans {
		if sp.Name == trace.SpanQueueWait {
			found = true
		}
	}
	if !found {
		t.Fatal("shed trace missing the queue-wait span")
	}
}
