package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"insightnotes/internal/engine"
)

// TestBackoffJitterBounds pins the jitter envelope: for every attempt,
// the delay with jitter j and draw r is exactly grown*(1+j*r), so it
// must stay within [grown, grown*(1+j)] for any draw — and a negative
// jitter must disable the term entirely.
func TestBackoffJitterBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 160*time.Millisecond
	grown := func(attempt int) time.Duration {
		d := base
		for i := 0; i < attempt && d < max; i++ {
			d *= 2
		}
		if d > max {
			d = max
		}
		return d
	}
	for _, draw := range []float64{0, 0.25, 0.5, 0.999999} {
		b := Backoff{Base: base, Max: max, Jitter: 0.5, Rand: func() float64 { return draw }}
		for attempt := 0; attempt < 8; attempt++ {
			lo := grown(attempt)
			hi := lo + time.Duration(float64(lo)*0.5)
			got := b.Delay(attempt)
			if got < lo || got > hi {
				t.Errorf("draw=%v Delay(%d) = %v, want within [%v, %v]", draw, attempt, got, lo, hi)
			}
			if want := lo + time.Duration(float64(lo)*0.5*draw); got != want {
				t.Errorf("draw=%v Delay(%d) = %v, want exactly %v", draw, attempt, got, want)
			}
		}
	}
	// Negative jitter disables the term even though the draw is maximal.
	nb := Backoff{Base: base, Max: max, Jitter: -1, Rand: func() float64 { return 0.999999 }}
	for attempt := 0; attempt < 8; attempt++ {
		if got := nb.Delay(attempt); got != grown(attempt) {
			t.Errorf("jitter<0 Delay(%d) = %v, want exactly %v", attempt, got, grown(attempt))
		}
	}
}

// startNamedServer boots a server whose single-row table identifies it,
// so routing tests can tell which endpoint served a read.
func startNamedServer(t *testing.T, name string) (addr string, closeFn func()) {
	t.Helper()
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir(), DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "CREATE TABLE who (name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), fmt.Sprintf("INSERT INTO who VALUES ('%s')", name)); err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, func() { srv.Close() }
}

func servedBy(t *testing.T, resp *Response) string {
	t.Helper()
	if resp == nil || !resp.OK || len(resp.Rows) != 1 {
		t.Fatalf("routed read = %+v", resp)
	}
	return resp.Rows[0].Values[0].String()
}

// TestRoutedReadRotatesAcrossReplicas verifies the read preference
// rotates: consecutive reads land on different replicas, and the
// primary is not used while replicas answer.
func TestRoutedReadRotatesAcrossReplicas(t *testing.T) {
	paddr, pclose := startNamedServer(t, "primary")
	defer pclose()
	a, aclose := startNamedServer(t, "replica-a")
	defer aclose()
	b, bclose := startNamedServer(t, "replica-b")
	defer bclose()

	rc := NewRoutedClient(Topology{Primary: paddr, Replicas: []string{a, b}})
	defer rc.Close()
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		resp, err := rc.ExecRead(context.Background(), "SELECT name FROM who", 1)
		if err != nil {
			t.Fatal(err)
		}
		seen[servedBy(t, resp)]++
	}
	if seen["replica-a"] != 2 || seen["replica-b"] != 2 || seen["primary"] != 0 {
		t.Fatalf("rotation skewed: %v", seen)
	}
}

// TestRoutedReadRotatesPastRefusedEndpoints is the failover-ordering
// regression: refused replica connections rotate to the next endpoint in
// the same pass, ending at the primary, without burning retry passes.
func TestRoutedReadRotatesPastRefusedEndpoints(t *testing.T) {
	paddr, pclose := startNamedServer(t, "primary")
	defer pclose()
	// Two endpoints that refuse connections: bind, grab the address, close.
	deadAddr := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	rc := NewRoutedClient(Topology{Primary: paddr, Replicas: []string{deadAddr(), deadAddr()}})
	defer rc.Close()
	rc.SetBackoff(Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond})

	start := time.Now()
	resp, err := rc.ExecRead(context.Background(), "SELECT name FROM who", 1)
	if err != nil {
		t.Fatalf("read with refused replicas should fail over to the primary: %v", err)
	}
	if got := servedBy(t, resp); got != "primary" {
		t.Fatalf("served by %q, want primary", got)
	}
	// A single pass suffices — no between-pass backoff sleeps happened.
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("failover took %v; refused endpoints must rotate within the pass", took)
	}

	// One replica comes alive: reads prefer it over the primary again.
	raddr, rclose := startNamedServer(t, "replica-late")
	defer rclose()
	rc2 := NewRoutedClient(Topology{Primary: paddr, Replicas: []string{deadAddr(), raddr}})
	defer rc2.Close()
	for i := 0; i < 2; i++ {
		resp, err := rc2.ExecRead(context.Background(), "SELECT name FROM who", 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := servedBy(t, resp); got != "replica-late" {
			t.Fatalf("read %d served by %q, want replica-late", i, got)
		}
	}
}

// scriptedServer runs a raw TCP endpoint whose per-connection behavior
// is driven by script; it counts requests that actually arrived so
// resend bugs are observable.
func scriptedServer(t *testing.T, script func(conn net.Conn, reqs *atomic.Int64)) (addr string, reqs *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	reqs = &atomic.Int64{}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go script(conn, reqs)
		}
	}()
	return ln.Addr().String(), reqs
}

// TestExecMutationNoRetryAfterPartialSend: once any bytes of a mutation
// hit the wire and the exchange fails, the statement's fate is unknown
// and the client must NOT resend — exactly one request may ever reach
// the server, and the error says why.
func TestExecMutationNoRetryAfterPartialSend(t *testing.T) {
	addr, reqs := scriptedServer(t, func(conn net.Conn, reqs *atomic.Int64) {
		// Read the full request (it arrived — maybe it executed), then
		// drop the connection without answering: the ambiguous case.
		r := bufio.NewReader(conn)
		if _, err := r.ReadString('\n'); err == nil {
			reqs.Add(1)
		}
		conn.Close()
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	_, err = c.Do(context.Background(), "INSERT INTO birds VALUES (1, 'x')", WithRetry(5, b), WithMutation())
	if err == nil {
		t.Fatal("mutation over a dropping connection must error")
	}
	if !strings.Contains(err.Error(), "not retried") {
		t.Fatalf("error should state the no-retry decision, got: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // let any (buggy) resend arrive
	if got := reqs.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 (no resend after partial send)", got)
	}
}

// TestExecMutationRetriesPreEngineShed: a structured OVERLOADED shed is
// issued before the statement enters the engine, so resending is safe
// and the client must retry it — in contrast to the transport case.
func TestExecMutationRetriesPreEngineShed(t *testing.T) {
	addr, reqs := scriptedServer(t, func(conn net.Conn, reqs *atomic.Int64) {
		defer conn.Close()
		r := bufio.NewReader(conn)
		if _, err := r.ReadString('\n'); err != nil {
			return
		}
		if reqs.Add(1) == 1 {
			// First request: shed pre-engine, then close (as the real
			// server does for connect-time refusals).
			fmt.Fprintf(conn, `{"ok":false,"error":"server overloaded: test","code":"OVERLOADED","retry_after_ms":1}%s`, "\n")
			return
		}
		fmt.Fprintf(conn, `{"ok":true,"message":"done"}%s`, "\n")
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	resp, err := c.Do(context.Background(), "INSERT INTO birds VALUES (1, 'x')", WithRetry(5, b), WithMutation())
	if err != nil {
		t.Fatalf("shed mutation should retry and succeed: %v", err)
	}
	if !resp.OK || resp.Message != "done" {
		t.Fatalf("resp = %+v", resp)
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (shed then retry)", got)
	}
}

// fakeReplica scripts a ReplicaSource for gate tests.
type fakeReplica struct {
	lagLSN uint64
	lag    time.Duration
	stale  bool
}

func (f *fakeReplica) Staleness() (uint64, time.Duration, bool) { return f.lagLSN, f.lag, f.stale }

// TestReplicaGate unit-tests the server-side replica gate against a
// scripted staleness source: mutations are rejected READ_ONLY, stale
// reads shed STALE with a retry hint, fresh reads pass and carry the
// explicit staleness bound in stats_detail.
func TestReplicaGate(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir(), DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "CREATE TABLE birds (id INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	fake := &fakeReplica{lagLSN: 3, lag: 40 * time.Millisecond}
	srv := New(db)
	srv.Replica = fake
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Fresh read: served, stamped with the staleness bound.
	resp, err := c.Do(context.Background(), "SELECT id FROM birds")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("fresh replica read rejected: %+v", resp)
	}
	sd := resp.StatsDetail
	if sd == nil || !sd.Replica || sd.ReplicaLagLSN != 3 || sd.ReplicaLagMS != 40 {
		t.Fatalf("staleness stamp = %+v, want replica lag_lsn=3 lag_ms=40", sd)
	}

	// SHOW is a read too, and gets the stamp even without exec stats.
	resp, err = c.Do(context.Background(), "SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.StatsDetail == nil || !resp.StatsDetail.Replica {
		t.Fatalf("SHOW on replica = %+v (stats %+v)", resp, resp.StatsDetail)
	}

	// Every mutation class is turned away with READ_ONLY.
	for _, stmt := range []string{
		"INSERT INTO birds VALUES (1, 'x')",
		"UPDATE birds SET name = 'y' WHERE id = 1",
		"DELETE FROM birds WHERE id = 1",
		"CREATE TABLE other (id INT)",
		"DROP TABLE birds",
		"ADD ANNOTATION 'z' ON birds WHERE id = 1",
		"CHECKPOINT",
	} {
		resp, err := c.Do(context.Background(), stmt)
		if err != nil {
			t.Fatalf("Exec(%q): %v", stmt, err)
		}
		if resp.OK || resp.Code != CodeReadOnly {
			t.Fatalf("Exec(%q) = %+v, want code %s", stmt, resp, CodeReadOnly)
		}
	}

	// CHECK TABLE is not a mutation: it verifies and repairs this
	// node's own pages, so the replica gate lets it through.
	resp, err = c.Do(context.Background(), "CHECK TABLE birds")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("CHECK TABLE on replica = %+v, want ok", resp)
	}

	// Past the bound: reads shed with the structured STALE error.
	fake.stale = true
	resp, err = c.Do(context.Background(), "SELECT id FROM birds")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeStale || resp.RetryAfterMS <= 0 {
		t.Fatalf("stale read = %+v, want code %s with retry hint", resp, CodeStale)
	}
	// ...but CHECK TABLE still runs — bit rot doesn't wait for the link.
	resp, err = c.Do(context.Background(), "CHECK TABLE birds")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("CHECK TABLE on stale replica = %+v, want ok", resp)
	}
	// A mutation still reports READ_ONLY (routing beats retrying).
	resp, err = c.Do(context.Background(), "INSERT INTO birds VALUES (2, 'x')")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeReadOnly {
		t.Fatalf("stale replica mutation = %+v, want code %s", resp, CodeReadOnly)
	}
}
