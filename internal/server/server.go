// Package server exposes an InsightNotes engine over TCP with a
// newline-delimited JSON protocol, making the engine usable as standalone
// annotation-management middleware (the deployment style of the paper's
// prototype, which fronted a modified PostgreSQL).
//
// Protocol: the client sends one request object per line and receives one
// response object per line. Requests carry a single statement in the full
// grammar (SQL plus InsightNotes extensions); responses carry the message,
// QID, result columns, and rows with their rendered summary objects and
// zoom labels.
//
// Statements execute directly against the engine's statement-level
// reader/writer lock: reads (SELECT, SHOW, EXPLAIN, ZOOMIN) from separate
// connections run concurrently, writes are exclusive. Each statement runs
// under its own context; an optional per-statement deadline
// (Server.StatementTimeout) aborts runaway queries with a timeout error.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/metrics"
	"insightnotes/internal/sql"
	"insightnotes/internal/storage"
	"insightnotes/internal/trace"
	"insightnotes/internal/types"
)

// Request is one client command.
//
// Kind selects the request's shape. The default (empty or "exec") executes
// Stmt as statement text; the prepared-statement kinds carry the pieces as
// structured fields so clients never have to render SQL literals:
//
//	{"kind":"prepare","name":"by_id","stmt":"SELECT * FROM t WHERE id = $1"}
//	{"kind":"execute","name":"by_id","args":[7]}
//	{"kind":"deallocate","name":"by_id"}
//
// An exec-kind request may also carry Args: the server binds them to the
// statement's $n placeholders for a one-shot parameterized execution (the
// unnamed-prepared-statement pattern).
type Request struct {
	// Stmt is the statement to execute (the template text for "prepare";
	// unused for "execute" and "deallocate").
	Stmt string `json:"stmt,omitempty"`
	// Trace requests the under-the-hood operator log for SELECTs.
	Trace bool `json:"trace,omitempty"`
	// Kind is the request kind: "" or "exec" (default), "prepare",
	// "execute", or "deallocate".
	Kind string `json:"kind,omitempty"`
	// Name is the prepared-statement name for the prepared kinds.
	Name string `json:"name,omitempty"`
	// Args are positional parameter values: $1 is Args[0]. Used by
	// "execute" and by parameterized "exec" requests.
	Args []types.Value `json:"args,omitempty"`
}

// Response is the server's reply.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code classifies machine-readable errors (CodeOverloaded,
	// CodeFrameTooLarge). Empty for success and plain statement errors.
	Code string `json:"code,omitempty"`
	// RetryAfterMS accompanies CodeOverloaded: the server's hint for how
	// long to back off before retrying. Client.ExecRetry honors it.
	RetryAfterMS int64      `json:"retry_after_ms,omitempty"`
	Message      string     `json:"message,omitempty"`
	QID          int        `json:"qid,omitempty"`
	Columns      []string   `json:"columns,omitempty"`
	Rows         []RowJSON  `json:"rows,omitempty"`
	Trace        []TraceRow `json:"trace,omitempty"`
	// Stats is the per-statement runtime summary line (rows, wall time,
	// envelope operations) for statements that report one. Kept for
	// existing clients; StatsDetail carries the same numbers structured.
	Stats string `json:"stats,omitempty"`
	// StatsDetail is the structured form of Stats, including the
	// per-operator breakdown of the statement's plan.
	StatsDetail *StatsJSON `json:"stats_detail,omitempty"`
	// TraceID is the statement's lifecycle trace id (set on success, on
	// statement errors, and on sheds — shed traces are always retained, so
	// a turned-away client can still hand support a fetchable id).
	TraceID string `json:"trace_id,omitempty"`
}

// StatsJSON is the structured per-statement runtime summary on the wire.
type StatsJSON struct {
	// Rows is the number of result rows returned.
	Rows int `json:"rows"`
	// WallMicros is the statement's elapsed wall time in microseconds.
	WallMicros int64 `json:"wall_us"`
	// OpRows counts rows produced by all plan operators.
	OpRows int64 `json:"op_rows"`
	// Merges and Curates count envelope operations.
	Merges  int64 `json:"merges"`
	Curates int64 `json:"curates"`
	// QueueWaitMicros is the admission-queue wait before the statement
	// entered the engine (0 when it was admitted instantly or admission
	// control is disabled).
	QueueWaitMicros int64 `json:"queue_wait_us,omitempty"`
	// StalePending, when above zero, is the number of deferred
	// summary-maintenance tasks outstanding when the statement finished —
	// the result's summaries may lag the raw annotations (degraded mode).
	StalePending int `json:"stale_pending,omitempty"`
	// Replica marks a statement served by a read replica. ReplicaLagLSN
	// and ReplicaLagMS are the explicit staleness bound the result was
	// served under: the data reflects the primary as of at most this many
	// records and milliseconds ago (both omitted when fully caught up).
	Replica       bool   `json:"replica,omitempty"`
	ReplicaLagLSN uint64 `json:"replica_lag_lsn,omitempty"`
	ReplicaLagMS  int64  `json:"replica_lag_ms,omitempty"`
	// Ops is the per-operator breakdown in depth-first plan order.
	Ops []OpStatJSON `json:"ops,omitempty"`
	// TraceID duplicates Response.TraceID so tooling consuming only
	// stats_detail can cross-link the lifecycle trace.
	TraceID string `json:"trace_id,omitempty"`
}

// OpStatJSON is one operator's runtime counters on the wire.
type OpStatJSON struct {
	Op         string `json:"op"`
	Rows       int64  `json:"rows"`
	Merges     int64  `json:"merges,omitempty"`
	Curates    int64  `json:"curates,omitempty"`
	WallMicros int64  `json:"wall_us,omitempty"`
}

// RowJSON is one result row on the wire.
type RowJSON struct {
	Values []types.Value `json:"values"`
	// Summaries maps instance name to the rendered summary object.
	Summaries map[string]string `json:"summaries,omitempty"`
	// ZoomLabels maps instance name to its 1-indexed zoomable elements.
	ZoomLabels map[string][]string `json:"zoom_labels,omitempty"`
}

// TraceRow is one under-the-hood trace entry on the wire.
type TraceRow struct {
	Stage   string        `json:"stage"`
	Values  []types.Value `json:"values"`
	Summary string        `json:"summary,omitempty"`
}

// ReplicaSource reports the staleness of a replica-serving engine. When
// a Server carries one, it serves in replica mode: read statements only,
// every response annotated with the staleness bound it was served under,
// and reads shed with a structured STALE error once the source reports
// the bound exceeded. The replication receiver implements it.
type ReplicaSource interface {
	// Staleness returns how far the local state trails the primary: in
	// records (primary tip LSN minus applied LSN) and in time (age of the
	// last caught-up contact with the primary), plus whether the
	// configured hard bound is currently exceeded.
	Staleness() (lagLSN uint64, lag time.Duration, stale bool)
}

// Server serves one engine over a listener.
type Server struct {
	db *engine.DB

	// Replica, when set, puts the server in replica mode (see
	// ReplicaSource). Set before Listen.
	Replica ReplicaSource

	// StatementTimeout, when positive, bounds each statement's execution:
	// the statement's context expires after this duration and the engine
	// aborts it at its next cancellation poll. Set before Listen.
	StatementTimeout time.Duration

	// Admission configures the statement-concurrency limiter with its
	// bounded, deadline-aware wait queue (zero value disables). Requests
	// beyond capacity are shed with a structured retryable error instead
	// of stacking up. Set before Listen.
	Admission AdmissionConfig
	// MaxConns, when positive, caps concurrently open client connections.
	// Connections past the cap are answered with one structured
	// CodeOverloaded response and closed. Set before Listen.
	MaxConns int
	// IdleTimeout, when positive, closes connections that send no request
	// for this long — a slow-loris guard and a bound on idle descriptors.
	IdleTimeout time.Duration
	// WriteTimeout, when positive, bounds each response write: a client
	// that stops reading cannot park a handler in Flush forever; the
	// write times out and the connection closes.
	WriteTimeout time.Duration
	// MaxFrameBytes caps one request line (default 16 MiB). Oversized
	// frames are answered with a structured CodeFrameTooLarge error and
	// the connection closes (the stream position is unrecoverable).
	MaxFrameBytes int

	listener  net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	// baseCtx parents every per-statement context; Shutdown cancels it on
	// the forced path so in-flight statements abort at their next poll.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// connMu guards conns, the registry of live client connections and
	// their busy/idle state, which Shutdown uses to close idle
	// connections immediately and drain busy ones.
	connMu sync.Mutex
	conns  map[net.Conn]*connState

	// testHookExec, when set, is invoked at the top of every statement
	// execution — before the engine is entered — so tests can observe and
	// synchronize concurrent statements deterministically.
	testHookExec func(Request)

	// admit is the admission limiter built from Admission at Listen time
	// (nil when disabled).
	admit *admission
	// active counts open client connections for the MaxConns cap.
	active atomic.Int64

	// Front-end metrics; nil handles (metrics disabled) are no-ops.
	connections   *metrics.Counter
	activeConns   *metrics.Gauge
	requests      *metrics.Counter
	requestErrors *metrics.Counter
	panics        *metrics.Counter
	connsRefused  *metrics.Counter
	staleSheds    *metrics.Counter
	readOnly      *metrics.Counter
}

// New creates a server over db. When the engine's metric registry is
// enabled, the server registers its front-end metrics there (get-or-create,
// so multiple servers over one DB share the counters).
func New(db *engine.DB) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:         db,
		closed:     make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
		conns:      make(map[net.Conn]*connState),
	}
	if reg := db.Metrics(); reg != nil {
		s.connections = reg.Counter(metrics.NameServerConnectionsTotal, "Client connections accepted.")
		s.activeConns = reg.Gauge(metrics.NameServerActiveConnections, "Client connections currently open.")
		s.requests = reg.Counter(metrics.NameServerRequestsTotal, "Protocol requests received.")
		s.requestErrors = reg.Counter(metrics.NameServerRequestErrorsTotal, "Protocol requests answered with an error.")
		s.panics = reg.Counter(metrics.NameServerPanicsTotal, "Statement executions that panicked and were contained.")
		s.connsRefused = reg.Counter(metrics.NameServerConnsRefusedTotal,
			"Connections refused at the connection cap (answered with a structured shed and closed).")
		s.staleSheds = reg.Counter(metrics.NameReplStaleShedsTotal,
			"Reads shed with a structured STALE error past the replica's -max-staleness bound.")
		s.readOnly = reg.Counter(metrics.NameReplReadOnlyTotal,
			"Mutations rejected by a read-only replica with a structured READ_ONLY error.")
	}
	return s
}

// defaultMaxFrameBytes caps request lines when MaxFrameBytes is unset.
const defaultMaxFrameBytes = 16 << 20

func (s *Server) maxFrameBytes() int {
	if s.MaxFrameBytes > 0 {
		return s.MaxFrameBytes
	}
	return defaultMaxFrameBytes
}

// newFrameScanner builds the newline-delimited frame reader both ends of
// the protocol share: a line scanner with a small initial buffer that can
// grow to the frame cap.
func newFrameScanner(r io.Reader, maxFrame int) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	initial := 1 << 20
	if maxFrame < initial {
		initial = maxFrame
	}
	sc.Buffer(make([]byte, initial), maxFrame)
	return sc
}

// Listen binds addr (e.g. "127.0.0.1:7090") and starts accepting
// connections in background goroutines. It returns the bound address
// (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.admit = newAdmission(s.Admission, s.db.Metrics())
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if s.MaxConns > 0 && s.active.Add(1) > int64(s.MaxConns) {
			s.active.Add(-1)
			s.connsRefused.Inc()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.refuseConn(conn)
			}()
			continue
		} else if s.MaxConns <= 0 {
			s.active.Add(1)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.active.Add(-1)
			s.serveConn(conn)
		}()
	}
}

// refuseConn answers one connection past the MaxConns cap with a
// structured retryable shed and closes it — the client learns to back off
// instead of hanging on a silently dropped connection.
func (s *Server) refuseConn(conn net.Conn) {
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	resp := Response{
		Error:        fmt.Sprintf("server overloaded: connection limit (%d) reached", s.MaxConns),
		Code:         CodeOverloaded,
		RetryAfterMS: 1000,
	}
	b, err := json.Marshal(&resp)
	if err != nil {
		return
	}
	conn.Write(append(b, '\n'))
}

// connState tracks whether a connection is mid-request, so Shutdown can
// tell idle connections (parked in a read, safe to close now) from busy
// ones (a statement in flight that must drain first).
type connState struct {
	busy atomic.Bool
}

// serveConn handles one client connection until EOF or shutdown.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	st := &connState{}
	s.connMu.Lock()
	s.conns[conn] = st
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	s.connections.Inc()
	s.activeConns.Add(1)
	defer s.activeConns.Add(-1)
	in := newFrameScanner(conn, s.maxFrameBytes())
	out := bufio.NewWriter(conn)
	enc := json.NewEncoder(out)
	for {
		// Idle guard: a connection that sends nothing within the timeout
		// is closed rather than holding a descriptor forever.
		if s.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		if !in.Scan() {
			if errors.Is(in.Err(), bufio.ErrTooLong) {
				// The frame exceeded the cap; the stream position is lost,
				// so answer structurally and close.
				s.writeResponse(conn, out, enc, &Response{
					Error: fmt.Sprintf("request frame exceeds %d byte cap", s.maxFrameBytes()),
					Code:  CodeFrameTooLarge,
				})
			}
			return
		}
		st.busy.Store(true)
		line := in.Bytes()
		if len(line) == 0 {
			st.busy.Store(false)
			continue
		}
		var req Request
		resp := Response{}
		s.requests.Inc()
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = s.execute(req)
		}
		if !resp.OK {
			s.requestErrors.Inc()
		}
		if err := s.writeResponse(conn, out, enc, &resp); err != nil {
			return
		}
		st.busy.Store(false)
		// Draining: the request that was in flight is answered; stop
		// reading further ones.
		select {
		case <-s.closed:
			return
		default:
		}
	}
}

// writeResponse encodes and flushes one response under the write deadline:
// a client that stops reading cannot park this handler (and the engine
// slot behind it) in Flush forever — the write errors out and the caller
// closes the connection.
func (s *Server) writeResponse(conn net.Conn, out *bufio.Writer, enc *json.Encoder, resp *Response) error {
	if s.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
	}
	if err := enc.Encode(resp); err != nil {
		return err
	}
	if err := out.Flush(); err != nil {
		return err
	}
	if s.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	return nil
}

// execute runs one statement under a fresh per-statement context.
// Concurrency control lives in the engine's statement-level reader/writer
// lock, so read statements from different connections overlap.
//
// A panic anywhere below this frame is contained: the client receives a
// structured internal-error response and the connection (and every other
// connection) keeps working. One misbehaving statement must not take
// down the shared middleware process.
func (s *Server) execute(req Request) (resp Response) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			resp = Response{Error: fmt.Sprintf("internal error: statement execution panicked: %v", r)}
		}
	}()
	if err := failpoint.Eval(failpoint.ServerExecPanic); err != nil {
		panic(err)
	}
	preStmt, stmtText, err := resolveRequest(req)
	if err != nil {
		return Response{Error: err.Error()}
	}
	ctx := s.baseCtx
	if s.StatementTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.StatementTimeout)
		defer cancel()
	}
	// The lifecycle trace starts here, at the wire, so the admission-queue
	// wait is its first span and engine spans (parse, plan, exec, WAL) nest
	// in the same trace.
	at := s.db.Tracer().Start(stmtText)
	traceID := ""
	if at != nil {
		traceID = at.ID().String()
	}
	// Replica mode: only read statements are served, and only while the
	// staleness bound holds. The gate runs before admission so a rejected
	// statement never consumes an execution slot.
	if s.Replica != nil {
		if resp, rejected := s.replicaGate(stmtText, preStmt, at, traceID); rejected {
			return resp
		}
	}
	// Admission control: get an execution slot or shed. The statement's
	// own deadline keeps ticking while queued — a request that would
	// expire waiting is turned away with the structured retryable error
	// instead of timing out uselessly inside the engine.
	var queueWait time.Duration
	if s.admit != nil {
		queueStart := time.Now()
		release, shed := s.admit.acquire(ctx)
		queueWait = time.Since(queueStart)
		// Attached as a pre-measured span so even shell traces (shed
		// statements at low sample rates are always retained) carry the
		// queue wait, and promoted traces pay no extra clock reads.
		at.Root().AddChild(trace.SpanQueueWait, queueWait)
		if shed != nil {
			// Shed statements finish as errored traces — always retained —
			// so overload turn-aways stay visible in SHOW TRACES.
			at.Finish("shed", errors.New(shed.reason))
			resp := shedResponse(shed)
			resp.TraceID = traceID
			return resp
		}
		defer release()
	}
	if s.testHookExec != nil {
		s.testHookExec(req)
	}
	opts := []engine.StatementOption{engine.WithActiveTrace(at), engine.WithQueueWait(queueWait)}
	if req.Trace {
		opts = append(opts, engine.WithTrace())
	}
	var res *engine.Result
	switch {
	case preStmt != nil:
		res, err = s.db.ExecStatement(ctx, preStmt, stmtText, opts...)
	case req.Trace:
		res, err = s.db.Query(ctx, stmtText, opts...)
	default:
		res, err = s.db.Exec(ctx, stmtText, opts...)
	}
	if err != nil {
		if errors.Is(err, storage.ErrCorrupt) {
			// The statement touched a quarantined or checksum-failed page:
			// shed with the structured code (the error names the page)
			// instead of returning what looks like an ordinary failure.
			return Response{Error: err.Error(), Code: CodeCorrupt, TraceID: traceID}
		}
		return Response{Error: err.Error(), TraceID: traceID}
	}
	resp = Response{OK: true, Message: res.Message, QID: res.QID, TraceID: res.TraceID}
	if res.Stats != nil {
		resp.Stats = res.Stats.String()
		detail := &StatsJSON{
			Rows:            res.Stats.Rows,
			WallMicros:      res.Stats.Wall.Microseconds(),
			QueueWaitMicros: res.Stats.QueueWait.Microseconds(),
			OpRows:          res.Stats.OpRows,
			Merges:          res.Stats.Merges,
			Curates:         res.Stats.Curates,
			StalePending:    res.Stats.StalePending,
			TraceID:         res.TraceID,
		}
		for _, op := range res.Ops {
			detail.Ops = append(detail.Ops, OpStatJSON{
				Op: op.Op, Rows: op.Rows, Merges: op.Merges,
				Curates: op.Curates, WallMicros: op.WallMicros,
			})
		}
		resp.StatsDetail = detail
	}
	if s.Replica != nil {
		// Every replica-served statement carries its explicit staleness
		// bound, even ones that report no runtime stats of their own.
		lagLSN, lag, _ := s.Replica.Staleness()
		if resp.StatsDetail == nil {
			resp.StatsDetail = &StatsJSON{TraceID: res.TraceID}
		}
		resp.StatsDetail.Replica = true
		resp.StatsDetail.ReplicaLagLSN = lagLSN
		resp.StatsDetail.ReplicaLagMS = lag.Milliseconds()
	}
	for _, c := range res.Schema.Columns {
		resp.Columns = append(resp.Columns, c.QualifiedName())
	}
	for _, row := range res.Rows {
		rj := RowJSON{Values: row.Tuple}
		if row.Env != nil && !row.Env.IsEmpty() {
			rj.Summaries = map[string]string{}
			rj.ZoomLabels = map[string][]string{}
			for _, name := range row.Env.InstanceNames() {
				obj := row.Env.Object(name)
				rj.Summaries[name] = obj.Render()
				rj.ZoomLabels[name] = obj.ZoomLabels()
			}
		}
		resp.Rows = append(resp.Rows, rj)
	}
	for _, e := range res.Trace {
		resp.Trace = append(resp.Trace, TraceRow{Stage: e.Stage, Values: e.Tuple, Summary: e.Summary})
	}
	return resp
}

// resolveRequest maps a request's kind onto the execution path. Most
// requests resolve to statement text alone; two shapes resolve to a
// pre-built AST (stmt non-nil) that execute dispatches through
// engine.ExecStatement, so structured argument values never have to
// survive a render-reparse round trip:
//
//   - "execute": an sql.Execute carrying the args as Literal values
//     (rendered text is still returned — it is the trace label)
//   - "exec" with Args: the one-shot parameterized form; the statement is
//     parsed and its $n placeholders bound here
//
// The other prepared kinds are synthesized into text and flow through the
// ordinary parse path, so PREPARE via the wire and PREPARE typed into a
// REPL are the same statement.
func resolveRequest(req Request) (sql.Statement, string, error) {
	kind := strings.ToLower(req.Kind)
	if kind != "" && kind != "exec" && req.Name == "" {
		return nil, "", fmt.Errorf("bad request: kind %q requires a statement name", req.Kind)
	}
	switch kind {
	case "", "exec":
		if len(req.Args) == 0 {
			return nil, req.Stmt, nil
		}
		stmt, err := sql.Parse(req.Stmt)
		if err != nil {
			return nil, "", err
		}
		bound, err := sql.BindParams(stmt, req.Args)
		if err != nil {
			return nil, "", err
		}
		return bound, bound.String(), nil
	case "prepare":
		if strings.TrimSpace(req.Stmt) == "" {
			return nil, "", fmt.Errorf("bad request: prepare requires a statement")
		}
		return nil, "PREPARE " + req.Name + " AS " + req.Stmt, nil
	case "execute":
		ex := &sql.Execute{Name: req.Name}
		for _, v := range req.Args {
			ex.Args = append(ex.Args, &sql.Literal{Val: v})
		}
		return ex, ex.String(), nil
	case "deallocate":
		return nil, "DEALLOCATE " + req.Name, nil
	default:
		return nil, "", fmt.Errorf("bad request: unknown kind %q", req.Kind)
	}
}

// replicaGate classifies one statement for replica mode: mutations are
// rejected with CodeReadOnly, reads past the staleness bound are shed
// with CodeStale, and admissible reads pass through (false). Unparsable
// statements pass through too — the engine produces its usual error.
// When the request resolved to a pre-built AST (pre non-nil), it is
// classified directly; its rendered text may elide detail and must not be
// re-parsed.
func (s *Server) replicaGate(stmtText string, pre sql.Statement, at *trace.Active, traceID string) (Response, bool) {
	stmt := pre
	if stmt == nil {
		var err error
		stmt, err = sql.Parse(stmtText)
		if err != nil {
			return Response{}, false
		}
	}
	switch st := stmt.(type) {
	case *sql.CheckTable:
		// CHECK TABLE verifies and repairs this node's own pages — no
		// logical state changes — and a replica is exactly where
		// on-demand repair from the primary matters, so it passes even
		// past the staleness bound (bit rot doesn't wait for the link).
		return Response{}, false
	case *sql.Prepare, *sql.Deallocate:
		// Registry-only operations: they touch the local prepared-statement
		// registry, never the replicated data, so they pass even past the
		// staleness bound (a client warming its statements on a lagging
		// replica is fine — EXECUTE is where staleness is enforced).
		return Response{}, false
	case *sql.Execute:
		// EXECUTE inherits its template's classification. A read template
		// falls through to the staleness check below; a mutating one is
		// rejected here so the replica never diverges locally. An unknown
		// name passes — the engine produces its usual error.
		if tmpl, ok := s.db.PreparedTemplate(st.Name); ok {
			switch tmpl.(type) {
			case *sql.Select, *sql.Show, *sql.Explain, *sql.ZoomIn:
			default:
				s.readOnly.Inc()
				kind := strings.TrimPrefix(fmt.Sprintf("%T", tmpl), "*sql.")
				rerr := fmt.Errorf("replica is read-only: EXECUTE %s is a %s and must run on the primary", st.Name, kind)
				at.Finish("read_only_reject", rerr)
				return Response{Error: rerr.Error(), Code: CodeReadOnly, TraceID: traceID}, true
			}
		}
	case *sql.Select, *sql.Show, *sql.Explain, *sql.ZoomIn:
	default:
		s.readOnly.Inc()
		kind := strings.TrimPrefix(fmt.Sprintf("%T", stmt), "*sql.")
		rerr := fmt.Errorf("replica is read-only: %s must run on the primary", kind)
		at.Finish("read_only_reject", rerr)
		return Response{Error: rerr.Error(), Code: CodeReadOnly, TraceID: traceID}, true
	}
	if lagLSN, lag, stale := s.Replica.Staleness(); stale {
		s.staleSheds.Inc()
		serr := fmt.Errorf("replica too stale: %d record(s), %s behind the primary",
			lagLSN, lag.Round(time.Millisecond))
		at.Finish("stale_shed", serr)
		return Response{Error: serr.Error(), Code: CodeStale, RetryAfterMS: 250, TraceID: traceID}, true
	}
	return Response{}, false
}

// Close stops accepting connections and waits for in-flight requests
// without bound. Use Shutdown to bound the drain.
func (s *Server) Close() error {
	return s.Shutdown(0)
}

// forcedShutdownGrace bounds how long a forced Shutdown waits for
// handlers to unwind after cancelling their statements. A statement
// stuck in code that polls neither its context nor its connection can
// outlive this; Shutdown reports the forced drain rather than hanging.
const forcedShutdownGrace = 250 * time.Millisecond

// Shutdown gracefully stops the server: it stops accepting connections,
// closes idle client connections, and drains requests in flight — each
// busy connection answers its current request, then closes. When timeout
// is positive and the drain exceeds it, in-flight statements are
// cancelled through their contexts and the remaining connections are
// force-closed, reported in the returned error. A zero timeout drains
// without bound.
func (s *Server) Shutdown(timeout time.Duration) error {
	var lnErr error
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.listener != nil {
			lnErr = s.listener.Close()
		}
		// Idle connections are parked in a read waiting for a request
		// that will never be answered; close them now. Busy ones drain:
		// serveConn exits after answering once s.closed is set.
		s.connMu.Lock()
		for conn, st := range s.conns {
			if !st.busy.Load() {
				conn.Close()
			}
		}
		s.connMu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return lnErr
	}
	select {
	case <-done:
		return lnErr
	case <-time.After(timeout):
	}
	// Forced path: abort in-flight statements and unblock their
	// connections, then give the handlers a bounded grace to unwind.
	s.baseCancel()
	s.connMu.Lock()
	forced := len(s.conns)
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	select {
	case <-done:
	case <-time.After(forcedShutdownGrace):
	}
	return fmt.Errorf("server: drain timeout after %s: %d connection(s) force-closed", timeout, forced)
}
