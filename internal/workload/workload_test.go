package workload

import (
	"strings"
	"testing"

	"insightnotes/internal/textmining"
)

func TestGeneratorDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 50; i++ {
		class := a.PickClass(BirdClasses)
		if class != b.PickClass(BirdClasses) {
			t.Fatal("PickClass nondeterministic")
		}
		if a.ClassText(class) != b.ClassText(class) {
			t.Fatal("ClassText nondeterministic")
		}
	}
	t1, d1 := a.Document("Behavior", 4)
	t2, d2 := b.Document("Behavior", 4)
	if t1 != t2 || d1 != d2 {
		t.Error("Document nondeterministic")
	}
}

func TestClassTextIsClassSeparable(t *testing.T) {
	// A classifier trained on generated text must beat chance comfortably
	// on held-out generated text — otherwise E-benchmarks over this corpus
	// are meaningless.
	g := New(42)
	nb, err := textmining.NewNaiveBayes(BirdClasses)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range g.TrainingSet(BirdClasses, 20) {
		nb.Learn(s[0], s[1])
	}
	correct, total := 0, 0
	for _, class := range BirdClasses {
		for i := 0; i < 50; i++ {
			got, _ := nb.Classify(g.ClassText(class))
			if got == class {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.7 {
		t.Errorf("classifier accuracy on synthetic corpus = %.2f, want >= 0.7", acc)
	}
}

func TestPickClassSkew(t *testing.T) {
	g := New(1)
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[g.PickClass(BirdClasses)]++
	}
	if counts["Behavior"] <= counts["Other"] {
		t.Errorf("skew missing: %v", counts)
	}
	for _, c := range BirdClasses {
		if counts[c] == 0 {
			t.Errorf("class %s never drawn", c)
		}
	}
}

func TestDocumentShape(t *testing.T) {
	g := New(3)
	title, body := g.Document("Disease", 5)
	if !strings.HasPrefix(title, "Field report:") {
		t.Errorf("title = %q", title)
	}
	sents := textmining.SplitSentences(body)
	if len(sents) != 5 {
		t.Errorf("sentences = %d", len(sents))
	}
}

func TestSpeciesPool(t *testing.T) {
	c0, s0 := Species(0)
	if c0 != "Swan Goose" || s0 != "Anser cygnoides" {
		t.Errorf("Species(0) = %q, %q", c0, s0)
	}
	cWrap, _ := Species(NumSpecies())
	if cWrap != c0 {
		t.Error("species pool does not wrap")
	}
}

func TestZipfCounts(t *testing.T) {
	g := New(17)
	counts := g.ZipfCounts(10, 1000, 1.5)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("total = %d", total)
	}
	// Head bucket dominates the tail under skew.
	if counts[0] <= counts[9]*2 {
		t.Errorf("no skew: head %d vs tail %d", counts[0], counts[9])
	}
	// s <= 1 degrades to uniform.
	uniform := g.ZipfCounts(4, 8, 0)
	for i, c := range uniform {
		if c != 2 {
			t.Errorf("uniform[%d] = %d", i, c)
		}
	}
	// Degenerate inputs.
	if got := g.ZipfCounts(0, 10, 2); len(got) != 0 {
		t.Errorf("n=0: %v", got)
	}
	if got := g.ZipfCounts(3, 0, 2); got[0]+got[1]+got[2] != 0 {
		t.Errorf("total=0: %v", got)
	}
}

func TestZipfCountsDeterministic(t *testing.T) {
	a := New(4).ZipfCounts(8, 500, 1.3)
	b := New(4).ZipfCounts(8, 500, 1.3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ZipfCounts nondeterministic")
		}
	}
}
