package populate

import (
	"insightnotes/internal/sql"
	"insightnotes/internal/types"
)

// eqID builds the predicate `id = n`.
func eqID(n int) sql.Expr { return eqColumn("id", n) }

// eqColumn builds the predicate `col = n`.
func eqColumn(col string, n int) sql.Expr {
	return &sql.BinaryExpr{
		Op: "=",
		L:  &sql.ColRef{Name: col},
		R:  &sql.Literal{Val: types.NewInt(int64(n))},
	}
}
