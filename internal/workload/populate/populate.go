// Package populate seeds InsightNotes engines with the synthetic corpora
// of package workload: the AKN-style annotated bird database used by the
// examples and every benchmark, and the gene-curation scenario of §2.3.
// It lives below workload so the text generators stay engine-independent.
package populate

import (
	"context"
	"fmt"

	"insightnotes/internal/engine"
	"insightnotes/internal/workload"
)

// BirdCorpusSpec configures PopulateBirds.
type BirdCorpusSpec struct {
	// Tuples is the number of bird rows.
	Tuples int
	// AnnotationsPerTuple is the average raw annotations attached to each
	// tuple (the paper's 30×/120×/250× ratios).
	AnnotationsPerTuple int
	// DocumentFraction is the share of annotations carrying an attached
	// document, in [0, 1].
	DocumentFraction float64
	// ZipfSkew, when > 1, distributes the annotation volume over tuples
	// with a Zipf distribution of that exponent instead of uniformly —
	// real corpora concentrate commentary on popular entities.
	ZipfSkew float64
	// TrainPerClass is the classifier training corpus size per class.
	TrainPerClass int
	// SkipInstances creates only the table and annotations (for baselines
	// that do not use summaries).
	SkipInstances bool
}

// DefaultBirdSpec returns a small default corpus.
func DefaultBirdSpec() BirdCorpusSpec {
	return BirdCorpusSpec{
		Tuples:              16,
		AnnotationsPerTuple: 30,
		DocumentFraction:    0.05,
		TrainPerClass:       6,
	}
}

// PopulateBirds builds the demo's annotated ornithological database inside
// db: the birds table, the ClassBird1/SimCluster/TextSummary1 instances
// (trained and linked), and spec.Tuples × spec.AnnotationsPerTuple raw
// annotations with class-skewed content. It returns the number of
// annotations added.
func Birds(db *engine.DB, g *workload.Generator, spec BirdCorpusSpec) (int, error) {
	if spec.Tuples <= 0 {
		return 0, fmt.Errorf("workload: spec.Tuples must be positive")
	}
	if _, err := db.Exec(context.Background(),
		"CREATE TABLE birds (id INT, name TEXT, sci_name TEXT, region TEXT, wingspan FLOAT)"); err != nil {
		return 0, err
	}
	for i := 0; i < spec.Tuples; i++ {
		common, sci := workload.Species(i)
		stmt := fmt.Sprintf("INSERT INTO birds VALUES (%d, '%s', '%s', '%s', %0.2f)",
			i+1, escape(common), escape(sci), g.Region(), 0.3+float64(g.Intn(250))/100)
		if _, err := db.Exec(context.Background(), stmt); err != nil {
			return 0, err
		}
	}
	if !spec.SkipInstances {
		if err := InstallBirdInstances(db, g, spec.TrainPerClass); err != nil {
			return 0, err
		}
	}
	return AnnotateBirds(db, g, spec)
}

// InstallBirdInstances creates, trains, and links the demo's three summary
// instances on the birds table.
func InstallBirdInstances(db *engine.DB, g *workload.Generator, trainPerClass int) error {
	if trainPerClass <= 0 {
		trainPerClass = 6
	}
	stmts := []string{
		"CREATE SUMMARY INSTANCE ClassBird1 TYPE Classifier LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')",
		"CREATE SUMMARY INSTANCE SimCluster TYPE Cluster WITH (threshold = 0.3)",
		"CREATE SUMMARY INSTANCE TextSummary1 TYPE Snippet WITH (sentences = 2)",
	}
	for _, s := range stmts {
		if _, err := db.Exec(context.Background(), s); err != nil {
			return err
		}
	}
	if err := db.TrainClassifier("ClassBird1", g.TrainingSet(workload.BirdClasses, trainPerClass)); err != nil {
		return err
	}
	for _, s := range []string{
		"LINK SUMMARY ClassBird1 TO birds",
		"LINK SUMMARY SimCluster TO birds",
		"LINK SUMMARY TextSummary1 TO birds",
	} {
		if _, err := db.Exec(context.Background(), s); err != nil {
			return err
		}
	}
	return nil
}

// AnnotateBirds streams spec.Tuples × spec.AnnotationsPerTuple annotations
// into db (the table and any instances must already exist). It returns the
// number added.
func AnnotateBirds(db *engine.DB, g *workload.Generator, spec BirdCorpusSpec) (int, error) {
	perTuple := make([]int, spec.Tuples)
	if spec.ZipfSkew > 1 {
		perTuple = g.ZipfCounts(spec.Tuples, spec.Tuples*spec.AnnotationsPerTuple, spec.ZipfSkew)
	} else {
		for i := range perTuple {
			perTuple[i] = spec.AnnotationsPerTuple
		}
	}
	total := 0
	for i := 0; i < spec.Tuples; i++ {
		for k := 0; k < perTuple[i]; k++ {
			req := engine.AnnotationRequest{
				Author: g.AuthorName(),
				Table:  "birds",
				Where:  eqID(i + 1),
			}
			class := g.PickClass(workload.BirdClasses)
			req.Text = g.ClassText(class)
			if g.Float64() < spec.DocumentFraction {
				req.Title, req.Document = g.Document(class, 6)
			}
			if _, _, err := db.Annotate(req); err != nil {
				return total, err
			}
			total++
		}
	}
	return total, nil
}

// PopulateGenes builds the gene-curation scenario: a genes table with the
// GeneClass classifier of §2.3 linked.
func Genes(db *engine.DB, g *workload.Generator, tuples, annsPerTuple int) (int, error) {
	if _, err := db.Exec(context.Background(), "CREATE TABLE genes (gid INT, symbol TEXT, organism TEXT)"); err != nil {
		return 0, err
	}
	organisms := []string{"H. sapiens", "M. musculus", "D. melanogaster", "S. cerevisiae"}
	for i := 0; i < tuples; i++ {
		stmt := fmt.Sprintf("INSERT INTO genes VALUES (%d, 'GENE%03d', '%s')",
			i+1, i+1, organisms[i%len(organisms)])
		if _, err := db.Exec(context.Background(), stmt); err != nil {
			return 0, err
		}
	}
	if _, err := db.Exec(context.Background(),
		"CREATE SUMMARY INSTANCE GeneClass TYPE Classifier LABELS ('FunctionPrediction', 'Provenance', 'Comment')"); err != nil {
		return 0, err
	}
	if err := db.TrainClassifier("GeneClass", g.TrainingSet(workload.GeneClasses, 6)); err != nil {
		return 0, err
	}
	if _, err := db.Exec(context.Background(), "LINK SUMMARY GeneClass TO genes"); err != nil {
		return 0, err
	}
	total := 0
	for i := 0; i < tuples; i++ {
		for k := 0; k < annsPerTuple; k++ {
			class := g.PickClass(workload.GeneClasses)
			_, _, err := db.Annotate(engine.AnnotationRequest{
				Text:   g.ClassText(class),
				Author: g.AuthorName(),
				Table:  "genes",
				Where:  eqColumn("gid", i+1),
			})
			if err != nil {
				return total, err
			}
			total++
		}
	}
	return total, nil
}

func escape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'')
		}
		out = append(out, s[i])
	}
	return string(out)
}
