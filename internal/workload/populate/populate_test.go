package populate

import (
	"context"
	"testing"

	"insightnotes/internal/engine"
	"insightnotes/internal/types"
	"insightnotes/internal/workload"
)

func TestPopulateBirdsEndToEnd(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(11)
	spec := BirdCorpusSpec{Tuples: 4, AnnotationsPerTuple: 8, DocumentFraction: 0.3, TrainPerClass: 5}
	n, err := Birds(db, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Fatalf("annotations = %d", n)
	}
	if db.Annotations().Count() != 32 {
		t.Errorf("store count = %d", db.Annotations().Count())
	}
	// Every tuple has a maintained envelope with the classifier object.
	res, err := db.Query(context.Background(), "SELECT id, name FROM birds")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Env == nil || row.Env.Object("ClassBird1") == nil {
			t.Fatalf("row %v missing summaries", row.Tuple)
		}
		if row.Env.Object("ClassBird1").Len() != 8 {
			t.Errorf("row %v classifier members = %d", row.Tuple, row.Env.Object("ClassBird1").Len())
		}
	}
	// With DocumentFraction 0.3 some snippet objects must exist.
	foundSnippet := false
	for _, row := range res.Rows {
		if row.Env.Object("TextSummary1") != nil {
			foundSnippet = true
		}
	}
	if !foundSnippet {
		t.Error("no snippet objects despite document fraction")
	}
}

func TestPopulateGenes(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(5)
	n, err := Genes(db, g, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("annotations = %d", n)
	}
	env := db.StoredEnvelope("genes", 1)
	if env == nil || env.Object("GeneClass") == nil {
		t.Fatal("gene envelopes missing")
	}
}

func TestPopulateValidation(t *testing.T) {
	db, _ := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if _, err := Birds(db, workload.New(1), BirdCorpusSpec{Tuples: 0}); err == nil {
		t.Error("zero tuples accepted")
	}
}

func TestPopulateBirdsZipfSkew(t *testing.T) {
	db, err := engine.Open(engine.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(23)
	spec := BirdCorpusSpec{Tuples: 8, AnnotationsPerTuple: 16, ZipfSkew: 1.5, TrainPerClass: 5}
	n, err := Birds(db, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8*16 {
		t.Fatalf("annotations = %d", n)
	}
	// The distribution over tuples is skewed: some tuple carries more than
	// the uniform share, some carries less.
	max, min := 0, 1<<30
	for row := 1; row <= 8; row++ {
		c := len(db.Annotations().ForTuple("birds", annRowID(row)))
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max <= 16 || min >= 16 {
		t.Errorf("no skew: max %d, min %d", max, min)
	}
}

func annRowID(n int) types.RowID { return types.RowID(n) }
