// Package workload generates the synthetic datasets behind the examples
// and benchmarks: an AKN-style ornithological corpus (bird tuples plus
// class-skewed free-text observations and attached documents, substituting
// for the eBird/AKN data of the demonstration — see DESIGN.md §4), and a
// smaller gene-curation corpus for the biological-database scenario the
// paper's extensibility section describes.
//
// All output is deterministic in the seed, so benchmark runs and examples
// are reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Annotation classes used by the demo's ornithological classifier.
var BirdClasses = []string{"Behavior", "Disease", "Anatomy", "Other"}

// Classes used by the provenance-oriented classifier of Figure 2.
var CurationClasses = []string{"Provenance", "Comment", "Question"}

// Gene-curation classes from §2.3 of the paper.
var GeneClasses = []string{"FunctionPrediction", "Provenance", "Comment"}

// Generator produces deterministic synthetic data.
type Generator struct {
	rng *rand.Rand
}

// New creates a generator seeded for reproducibility.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// speciesNames is a pool of real bird species for base tuples.
var speciesNames = []struct{ common, scientific string }{
	{"Swan Goose", "Anser cygnoides"},
	{"Mute Swan", "Cygnus olor"},
	{"Whooper Swan", "Cygnus cygnus"},
	{"Tundra Swan", "Cygnus columbianus"},
	{"Canada Goose", "Branta canadensis"},
	{"Snow Goose", "Anser caerulescens"},
	{"Mallard", "Anas platyrhynchos"},
	{"Northern Pintail", "Anas acuta"},
	{"Common Loon", "Gavia immer"},
	{"Great Blue Heron", "Ardea herodias"},
	{"Bald Eagle", "Haliaeetus leucocephalus"},
	{"Peregrine Falcon", "Falco peregrinus"},
	{"American Robin", "Turdus migratorius"},
	{"Blue Jay", "Cyanocitta cristata"},
	{"Northern Cardinal", "Cardinalis cardinalis"},
	{"Ruby-throated Hummingbird", "Archilochus colubris"},
}

var regions = []string{
	"northeast", "southeast", "midwest", "northwest", "southwest",
	"great lakes", "gulf coast", "mountain west",
}

// vocab maps each class to topic words; sentences are assembled from a
// class pool plus shared filler so texts are clusterable but noisy.
var vocab = map[string][]string{
	"Behavior": {
		"feeding", "stonewort", "foraging", "migrating", "nesting", "flock",
		"courtship", "diving", "grazing", "roosting", "territorial", "preening",
	},
	"Disease": {
		"influenza", "infection", "lesions", "parasite", "mites", "virus",
		"lethargic", "sick", "outbreak", "botulism", "fungal", "symptoms",
	},
	"Anatomy": {
		"wingspan", "plumage", "bill", "neck", "tail", "weight",
		"feathers", "molt", "webbed", "crest", "talons", "measurement",
	},
	"Other": {
		"photo", "camera", "duplicate", "volunteer", "record", "survey",
		"checklist", "uploaded", "archive", "misc", "team", "note",
	},
	"Provenance": {
		"derived", "imported", "source", "dataset", "experiment", "genbank",
		"release", "pipeline", "lineage", "originated", "copied", "version",
	},
	"Comment": {
		"wrong", "checking", "verify", "suspicious", "correct", "typo",
		"confirm", "doubt", "revisit", "question", "odd", "estimate",
	},
	"Question": {
		"why", "how", "which", "unclear", "unknown", "ambiguous",
		"uncertain", "clarify", "identify", "confusing", "puzzling", "what",
	},
	"FunctionPrediction": {
		"predicted", "regulate", "repair", "binding", "expression", "pathway",
		"enzyme", "homolog", "domain", "transcription", "kinase", "motif",
	},
}

var fillerWords = []string{
	"observed", "near", "lake", "shore", "morning", "specimen", "adult",
	"juvenile", "pair", "site", "today", "reported", "seen", "area",
}

// Species returns the i-th species (wrapping), for deterministic tuples.
func Species(i int) (common, scientific string) {
	s := speciesNames[i%len(speciesNames)]
	return s.common, s.scientific
}

// NumSpecies reports the size of the species pool.
func NumSpecies() int { return len(speciesNames) }

// Region returns a deterministic region label.
func (g *Generator) Region() string { return regions[g.rng.Intn(len(regions))] }

// ClassText generates one free-text annotation body of the given class:
// 18-40 words mixing class vocabulary with shared filler, matching the
// length of real bird-watcher comments (the raw-size side of the E1
// compression measurement depends on realistic text volume).
func (g *Generator) ClassText(class string) string {
	pool, ok := vocab[class]
	if !ok {
		pool = vocab["Other"]
	}
	n := 18 + g.rng.Intn(23)
	words := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if g.rng.Intn(10) < 6 {
			words = append(words, pool[g.rng.Intn(len(pool))])
		} else {
			words = append(words, fillerWords[g.rng.Intn(len(fillerWords))])
		}
	}
	return strings.Join(words, " ")
}

// PickClass draws a class label from classes with a mild skew (earlier
// classes more likely), matching the skewed counts of Figure 1.
func (g *Generator) PickClass(classes []string) string {
	// Weight class i by (len - i).
	total := 0
	for i := range classes {
		total += len(classes) - i
	}
	r := g.rng.Intn(total)
	for i := range classes {
		r -= len(classes) - i
		if r < 0 {
			return classes[i]
		}
	}
	return classes[len(classes)-1]
}

// Document generates a titled multi-sentence document (the large-object
// annotations that Snippet instances condense). Sentences mix one theme
// class with filler so extractive summarization has signal.
func (g *Generator) Document(class string, sentences int) (title, body string) {
	common, sci := Species(g.rng.Intn(NumSpecies()))
	title = fmt.Sprintf("Field report: %s (%s)", common, sci)
	var b strings.Builder
	for i := 0; i < sentences; i++ {
		words := strings.Split(g.ClassText(class), " ")
		words[0] = strings.ToUpper(words[0][:1]) + words[0][1:]
		b.WriteString(strings.Join(words, " "))
		b.WriteString(". ")
	}
	return title, strings.TrimSpace(b.String())
}

// TrainingSet produces labeled samples (text, label) covering every class,
// n per class — the training corpus for classifier instances.
func (g *Generator) TrainingSet(classes []string, perClass int) [][2]string {
	var out [][2]string
	for _, c := range classes {
		for i := 0; i < perClass; i++ {
			out = append(out, [2]string{g.ClassText(c), c})
		}
	}
	return out
}

// AuthorName returns a synthetic bird-watcher handle.
func (g *Generator) AuthorName() string {
	return fmt.Sprintf("watcher%03d", g.rng.Intn(500))
}

// Intn exposes the generator's RNG for callers that need auxiliary
// deterministic choices.
func (g *Generator) Intn(n int) int { return g.rng.Intn(n) }

// Float64 exposes a deterministic uniform draw in [0, 1).
func (g *Generator) Float64() float64 { return g.rng.Float64() }

// ZipfCounts distributes total draws over n buckets with a Zipf
// distribution of exponent s (> 1), modelling the skew of real annotation
// corpora where popular entities attract most of the commentary. s <= 1
// degrades to a uniform split.
func (g *Generator) ZipfCounts(n, total int, s float64) []int {
	counts := make([]int, n)
	if n == 0 || total <= 0 {
		return counts
	}
	if s <= 1 {
		for i := 0; i < total; i++ {
			counts[i%n]++
		}
		return counts
	}
	z := rand.NewZipf(g.rng, s, 1, uint64(n-1))
	for i := 0; i < total; i++ {
		counts[z.Uint64()]++
	}
	return counts
}
