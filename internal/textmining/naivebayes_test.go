package textmining

import (
	"encoding/json"
	"testing"
)

// trainBirdClassifier builds the demo paper's four-class ornithological
// classifier (Behavior/Disease/Anatomy/Other) on a small labeled corpus.
func trainBirdClassifier(t *testing.T) *NaiveBayes {
	t.Helper()
	nb, err := NewNaiveBayes([]string{"Behavior", "Disease", "Anatomy", "Other"})
	if err != nil {
		t.Fatal(err)
	}
	corpus := []struct{ text, label string }{
		{"found eating stonewort near the shore", "Behavior"},
		{"observed feeding at dawn in flocks", "Behavior"},
		{"aggressive display toward intruders", "Behavior"},
		{"migrates south in October every year", "Behavior"},
		{"signs of avian influenza infection", "Disease"},
		{"lesions on the beak suggest avian pox virus", "Disease"},
		{"parasite load high, visible mites", "Disease"},
		{"bird appears sick, lethargic and infected", "Disease"},
		{"wingspan measured at 1.8 meters", "Anatomy"},
		{"large body with long neck and orange bill", "Anatomy"},
		{"plumage is white with black wing tips", "Anatomy"},
		{"weight around 3 kilograms, short tail", "Anatomy"},
		{"photo attached from the trail camera", "Other"},
		{"duplicate of an earlier record", "Other"},
		{"see the linked wikipedia article", "Other"},
		{"data entered by volunteer team", "Other"},
	}
	for _, c := range corpus {
		if err := nb.Learn(c.text, c.label); err != nil {
			t.Fatal(err)
		}
	}
	return nb
}

func TestNewNaiveBayesValidation(t *testing.T) {
	if _, err := NewNaiveBayes([]string{"only"}); err == nil {
		t.Error("single label accepted")
	}
	if _, err := NewNaiveBayes([]string{"a", "a"}); err == nil {
		t.Error("duplicate labels accepted")
	}
}

func TestClassifyBirdAnnotations(t *testing.T) {
	nb := trainBirdClassifier(t)
	if !nb.Trained() {
		t.Fatal("Trained() = false after full training")
	}
	cases := map[string]string{
		"observed eating stonewort and grasses":         "Behavior",
		"this bird looks infected with avian influenza": "Disease",
		"the wingspan seems very large, maybe 2 meters": "Anatomy",
		"volunteer attached a wikipedia article":        "Other",
	}
	for text, want := range cases {
		got, idx := nb.Classify(text)
		if got != want {
			t.Errorf("Classify(%q) = %q (idx %d), want %q", text, got, idx, want)
		}
		if nb.LabelIndex(got) != idx {
			t.Errorf("index mismatch for %q: %d vs %d", got, idx, nb.LabelIndex(got))
		}
	}
}

func TestClassifyEmptyTextUsesPrior(t *testing.T) {
	nb, _ := NewNaiveBayes([]string{"big", "small"})
	for i := 0; i < 5; i++ {
		nb.Learn("huge giant enormous", "big")
	}
	nb.Learn("tiny", "small")
	label, _ := nb.Classify("")
	if label != "big" {
		t.Errorf("empty text classified %q, want prior-dominant %q", label, "big")
	}
}

func TestLearnUnknownLabel(t *testing.T) {
	nb, _ := NewNaiveBayes([]string{"a", "b"})
	if err := nb.Learn("text", "c"); err == nil {
		t.Error("Learn with unknown label succeeded")
	}
	if nb.Trained() {
		t.Error("Trained() = true with no documents")
	}
}

func TestLogPosteriorsShape(t *testing.T) {
	nb := trainBirdClassifier(t)
	scores := nb.LogPosteriors("feeding on stonewort")
	if len(scores) != 4 {
		t.Fatalf("len = %d", len(scores))
	}
	bi := nb.LabelIndex("Behavior")
	for i, s := range scores {
		if i != bi && s >= scores[bi] {
			t.Errorf("label %d score %g >= Behavior %g", i, s, scores[bi])
		}
	}
}

func TestNaiveBayesSerializationRoundTrip(t *testing.T) {
	nb := trainBirdClassifier(t)
	data, err := json.Marshal(nb)
	if err != nil {
		t.Fatal(err)
	}
	var back NaiveBayes
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Trained() {
		t.Fatal("deserialized model not trained")
	}
	for _, text := range []string{
		"eating stonewort", "avian influenza", "wingspan large", "wikipedia article",
	} {
		l1, _ := nb.Classify(text)
		l2, _ := back.Classify(text)
		if l1 != l2 {
			t.Errorf("Classify(%q) diverged after round trip: %q vs %q", text, l1, l2)
		}
	}
}

func TestUnmarshalCorruptModel(t *testing.T) {
	var nb NaiveBayes
	for _, bad := range []string{
		`{"labels":["a"]}`,
		`{"labels":["a","b"],"doc_count":[1],"term_count":[1,1],"terms":[{},{}]}`,
		`not json`,
	} {
		if err := json.Unmarshal([]byte(bad), &nb); err == nil {
			t.Errorf("corrupt model %q accepted", bad)
		}
	}
}

func TestTopTermsForLabel(t *testing.T) {
	nb := trainBirdClassifier(t)
	top := nb.TopTermsForLabel("Disease", 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	seen := map[string]bool{}
	for _, term := range top {
		seen[term] = true
	}
	if !seen["avian"] && !seen["infect"] && !seen["viru"] && !seen["sick"] && !seen["influenza"] {
		t.Errorf("Disease top terms %v contain no disease vocabulary", top)
	}
	if nb.TopTermsForLabel("missing", 3) != nil {
		t.Error("unknown label returned terms")
	}
}

func TestIncrementalLearningShiftsDecision(t *testing.T) {
	nb, _ := NewNaiveBayes([]string{"refute", "approve"})
	nb.Learn("value is wrong incorrect error", "refute")
	nb.Learn("confirmed verified correct", "approve")
	text := "the measurement was checked against the logbook"
	// Teach the model that "logbook checks" indicate approval.
	for i := 0; i < 5; i++ {
		nb.Learn("checked against logbook and confirmed", "approve")
	}
	if got, _ := nb.Classify(text); got != "approve" {
		t.Errorf("after incremental training Classify = %q, want approve", got)
	}
}
