package textmining

import (
	"reflect"
	"strings"
	"testing"
)

func TestSplitSentences(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{
			"The swan fed. It then flew away.",
			[]string{"The swan fed.", "It then flew away."},
		},
		{
			"Is it sick? No! It is fine.",
			[]string{"Is it sick?", "No!", "It is fine."},
		},
		{
			"Seen near Dr. Smith's pond. Confirmed.",
			[]string{"Seen near Dr. Smith's pond.", "Confirmed."},
		},
		{
			"Weights, e.g. 3.14 kg, vary. Done.",
			[]string{"Weights, e.g. 3.14 kg, vary.", "Done."},
		},
		{
			"Line one\nLine two",
			[]string{"Line one", "Line two"},
		},
		{
			"Observed by J. Smith. Verified.",
			[]string{"Observed by J. Smith.", "Verified."},
		},
		{"", nil},
		{"   \n  ", nil},
	}
	for _, c := range cases {
		if got := SplitSentences(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitSentences(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRankSentencesOrder(t *testing.T) {
	doc := []string{
		"Swans feed on stonewort in shallow lakes.",
		"The weather was mild.",
		"Swan feeding depends on stonewort density in lakes.",
	}
	ranked := RankSentences(doc)
	if len(ranked) != 3 {
		t.Fatalf("len = %d", len(ranked))
	}
	// The two thematically central sentences must outrank the filler.
	if ranked[2].Text != "The weather was mild." {
		t.Errorf("filler sentence ranked %d: %v", 2, ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score < ranked[i].Score {
			t.Errorf("ranking not descending at %d", i)
		}
	}
}

func TestExtractSnippet(t *testing.T) {
	doc := "Swans feed on stonewort. The sky was blue that day. " +
		"Stonewort grows in shallow lakes where swans gather. " +
		"Swans prefer stonewort over other plants."
	snip := ExtractSnippet(doc, 2)
	sents := SplitSentences(snip)
	if len(sents) != 2 {
		t.Fatalf("snippet has %d sentences: %q", len(sents), snip)
	}
	if strings.Contains(snip, "sky was blue") {
		t.Errorf("snippet kept the filler sentence: %q", snip)
	}
	// Snippet preserves document order.
	full := SplitSentences(doc)
	last := -1
	for _, s := range sents {
		pos := -1
		for i, f := range full {
			if f == s {
				pos = i
				break
			}
		}
		if pos < 0 {
			t.Fatalf("snippet sentence %q not from document", s)
		}
		if pos < last {
			t.Error("snippet sentences out of document order")
		}
		last = pos
	}
}

func TestExtractSnippetSmallInputs(t *testing.T) {
	if got := ExtractSnippet("One sentence only.", 3); got != "One sentence only." {
		t.Errorf("small doc snippet = %q", got)
	}
	if got := ExtractSnippet("", 2); got != "" {
		t.Errorf("empty doc snippet = %q", got)
	}
	if got := ExtractSnippet("   word   ", 1); got != "word" {
		t.Errorf("bare word snippet = %q", got)
	}
}
