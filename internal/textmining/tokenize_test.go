package textmining

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Large one, having size!", []string{"large", "one", "having", "size"}},
		{"blue-gray wings; don't know", []string{"blue-gray", "wings", "don't", "know"}},
		{"", nil},
		{"...!!!", nil},
		{"A1 and B2", []string{"a1", "and", "b2"}},
		{"trailing- dash", []string{"trailing", "dash"}},
		{"UPPER Case MiXeD", []string{"upper", "case", "mixed"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"feeding":  "feed",
		"feeds":    "feed",
		"observed": "observ",
		"studies":  "study",
		"quickly":  "quick",
		"classes":  "class",
		"glass":    "glass", // -ss preserved
		"cat":      "cat",
		"cats":     "cat",
		"is":       "is",   // too short to strip
		"sing":     "sing", // too short for -ing rule
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTerms(t *testing.T) {
	got := Terms("The swan was observed feeding on stonewort in the lake")
	want := []string{"swan", "observ", "feed", "stonewort", "lake"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "and", "is", "of"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false", w)
		}
	}
	for _, w := range []string{"swan", "disease", "wing"} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true", w)
		}
	}
}
