package textmining

import (
	"math"
	"sort"
	"strings"
)

// Vector is a sparse term-frequency (or TF-IDF-weighted) vector. The zero
// value is not usable; create vectors with NewVector or VectorOf.
type Vector map[string]float64

// NewVector returns an empty vector.
func NewVector() Vector { return make(Vector) }

// VectorOf builds a raw term-frequency vector from text using the Terms
// pipeline.
func VectorOf(text string) Vector {
	v := NewVector()
	for _, t := range Terms(text) {
		v[t]++
	}
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, w := range v {
		out[k] = w
	}
	return out
}

// Add accumulates u into v (v += u).
func (v Vector) Add(u Vector) {
	for k, w := range u {
		v[k] += w
	}
}

// Sub removes u from v (v -= u), deleting terms that reach zero or below.
// It is the inverse of Add and is used when an annotation's contribution is
// retracted from a cluster centroid during summary curation.
func (v Vector) Sub(u Vector) {
	for k, w := range u {
		nv := v[k] - w
		if nv <= 1e-12 {
			delete(v, k)
		} else {
			v[k] = nv
		}
	}
}

// Scale multiplies every weight by f.
func (v Vector) Scale(f float64) {
	for k := range v {
		v[k] *= f
	}
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, w := range v {
		s += w * w
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of v and u.
func (v Vector) Dot(u Vector) float64 {
	// Iterate the smaller map.
	if len(u) < len(v) {
		v, u = u, v
	}
	var s float64
	for k, w := range v {
		if uw, ok := u[k]; ok {
			s += w * uw
		}
	}
	return s
}

// Cosine returns the cosine similarity of v and u in [0, 1] for
// non-negative vectors; two empty vectors have similarity 0.
func Cosine(v, u Vector) float64 {
	nv, nu := v.Norm(), u.Norm()
	if nv == 0 || nu == 0 {
		return 0
	}
	return v.Dot(u) / (nv * nu)
}

// TopTerms returns the k highest-weighted terms in v, heaviest first, with
// ties broken alphabetically for determinism.
func (v Vector) TopTerms(k int) []string {
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(v))
	for t, w := range v {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].t < all[j].t
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].t
	}
	return out
}

// Prune keeps only the k heaviest terms of v, dropping the tail in place.
// Summary objects carry pruned centroids so that cluster merge decisions can
// be made at query time without the raw annotations.
func (v Vector) Prune(k int) {
	if len(v) <= k {
		return
	}
	keep := v.TopTerms(k)
	keepSet := make(map[string]struct{}, len(keep))
	for _, t := range keep {
		keepSet[t] = struct{}{}
	}
	for t := range v {
		if _, ok := keepSet[t]; !ok {
			delete(v, t)
		}
	}
}

// String renders the vector's top terms for debugging, e.g.
// "{feed:2 lake:1}".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range v.TopTerms(8) {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t)
	}
	b.WriteByte('}')
	return b.String()
}
