package textmining

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// NaiveBayes is a multinomial Naive Bayes text classifier with Laplace
// smoothing, following the formulation in Manning, Raghavan & Schütze
// (ref [12] in the paper). It classifies annotation texts into the class
// labels configured on a Classifier summary instance.
//
// The model supports incremental training (Learn may be called at any
// time), which the engine uses to let domain experts refine classifiers
// after deployment.
type NaiveBayes struct {
	labels      []string
	labelIndex  map[string]int
	docCount    []float64            // documents per label
	termCount   []float64            // total term occurrences per label
	termPerWord []map[string]float64 // per-label term frequencies
	vocab       map[string]struct{}
	totalDocs   float64
}

// NewNaiveBayes creates an untrained classifier over the given class
// labels. The label order is significant: ZoomIn commands address class
// labels by 1-based index in this order (see Figure 3 of the paper).
func NewNaiveBayes(labels []string) (*NaiveBayes, error) {
	if len(labels) < 2 {
		return nil, fmt.Errorf("textmining: classifier needs at least 2 labels, got %d", len(labels))
	}
	nb := &NaiveBayes{
		labels:      append([]string(nil), labels...),
		labelIndex:  make(map[string]int, len(labels)),
		docCount:    make([]float64, len(labels)),
		termCount:   make([]float64, len(labels)),
		termPerWord: make([]map[string]float64, len(labels)),
		vocab:       make(map[string]struct{}),
	}
	for i, l := range labels {
		if _, dup := nb.labelIndex[l]; dup {
			return nil, fmt.Errorf("textmining: duplicate label %q", l)
		}
		nb.labelIndex[l] = i
		nb.termPerWord[i] = make(map[string]float64)
	}
	return nb, nil
}

// Labels returns the class labels in index order.
func (nb *NaiveBayes) Labels() []string { return append([]string(nil), nb.labels...) }

// LabelIndex returns the index of label, or -1.
func (nb *NaiveBayes) LabelIndex(label string) int {
	if i, ok := nb.labelIndex[label]; ok {
		return i
	}
	return -1
}

// Learn adds one labeled training document.
func (nb *NaiveBayes) Learn(text, label string) error {
	li, ok := nb.labelIndex[label]
	if !ok {
		return fmt.Errorf("textmining: unknown label %q", label)
	}
	nb.docCount[li]++
	nb.totalDocs++
	for _, t := range Terms(text) {
		nb.termPerWord[li][t]++
		nb.termCount[li]++
		nb.vocab[t] = struct{}{}
	}
	return nil
}

// Trained reports whether every label has seen at least one training
// document.
func (nb *NaiveBayes) Trained() bool {
	for _, c := range nb.docCount {
		if c == 0 {
			return false
		}
	}
	return nb.totalDocs > 0
}

// Classify returns the most probable label for text and its index. An
// untrained label acts as if it had a single empty document (the Laplace
// prior keeps probabilities defined). Classification of an empty or
// all-stop-word text falls back to the label with the highest prior.
func (nb *NaiveBayes) Classify(text string) (label string, index int) {
	scores := nb.LogPosteriors(text)
	best := 0
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[best] {
			best = i
		}
	}
	return nb.labels[best], best
}

// LogPosteriors returns the (unnormalized) log posterior of each label for
// text, in label-index order.
func (nb *NaiveBayes) LogPosteriors(text string) []float64 {
	terms := Terms(text)
	v := float64(len(nb.vocab)) + 1 // +1 for the unseen-term pseudo-slot
	scores := make([]float64, len(nb.labels))
	for i := range nb.labels {
		// Laplace-smoothed prior over documents.
		prior := (nb.docCount[i] + 1) / (nb.totalDocs + float64(len(nb.labels)))
		s := math.Log(prior)
		denom := nb.termCount[i] + v
		for _, t := range terms {
			s += math.Log((nb.termPerWord[i][t] + 1) / denom)
		}
		scores[i] = s
	}
	return scores
}

// nbModel is the serialization shape of a trained model.
type nbModel struct {
	Labels    []string             `json:"labels"`
	DocCount  []float64            `json:"doc_count"`
	TermCount []float64            `json:"term_count"`
	Terms     []map[string]float64 `json:"terms"`
}

// MarshalJSON serializes the trained model so summary instances can persist
// their TrainingModel field (Figure 4 of the paper).
func (nb *NaiveBayes) MarshalJSON() ([]byte, error) {
	return json.Marshal(nbModel{
		Labels:    nb.labels,
		DocCount:  nb.docCount,
		TermCount: nb.termCount,
		Terms:     nb.termPerWord,
	})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (nb *NaiveBayes) UnmarshalJSON(data []byte) error {
	var m nbModel
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	if len(m.Labels) < 2 || len(m.DocCount) != len(m.Labels) ||
		len(m.TermCount) != len(m.Labels) || len(m.Terms) != len(m.Labels) {
		return fmt.Errorf("textmining: corrupt classifier model")
	}
	fresh, err := NewNaiveBayes(m.Labels)
	if err != nil {
		return err
	}
	*nb = *fresh
	copy(nb.docCount, m.DocCount)
	copy(nb.termCount, m.TermCount)
	for i, tm := range m.Terms {
		for t, c := range tm {
			nb.termPerWord[i][t] = c
			nb.vocab[t] = struct{}{}
		}
		nb.totalDocs += 0 // doc totals derived below
	}
	for _, c := range m.DocCount {
		nb.totalDocs += c
	}
	return nil
}

// TopTermsForLabel returns the k most indicative terms of a label by
// per-label frequency — useful for explaining classifier summaries in the
// front end.
func (nb *NaiveBayes) TopTermsForLabel(label string, k int) []string {
	li, ok := nb.labelIndex[label]
	if !ok {
		return nil
	}
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(nb.termPerWord[li]))
	for t, w := range nb.termPerWord[li] {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].t < all[j].t
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := range out {
		out[i] = all[i].t
	}
	return out
}
