package textmining

import (
	"sort"
	"strings"
	"unicode"
)

// SplitSentences segments text into sentences on '.', '!' and '?'
// boundaries followed by whitespace, keeping the terminator with the
// sentence. Common abbreviations ("e.g.", "Dr.", initials) do not split.
// Newlines that end a non-empty line also terminate a sentence, which suits
// the bulleted/line-oriented documents attached as annotations.
func SplitSentences(text string) []string {
	var out []string
	var b strings.Builder
	runes := []rune(text)
	flush := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			out = append(out, s)
		}
		b.Reset()
	}
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r == '\n' {
			flush()
			continue
		}
		b.WriteRune(r)
		if r == '!' || r == '?' {
			if i+1 >= len(runes) || unicode.IsSpace(runes[i+1]) {
				flush()
			}
			continue
		}
		if r == '.' {
			if i+1 < len(runes) && !unicode.IsSpace(runes[i+1]) {
				continue // "3.14", "e.g.x" — not a boundary
			}
			if isAbbreviationBefore(runes, i) {
				continue
			}
			flush()
		}
	}
	flush()
	return out
}

// isAbbreviationBefore reports whether the '.' at index i terminates a
// known abbreviation or a single-letter initial.
func isAbbreviationBefore(runes []rune, i int) bool {
	start := i
	for start > 0 && (unicode.IsLetter(runes[start-1]) || runes[start-1] == '.') {
		start--
	}
	word := strings.ToLower(string(runes[start:i]))
	switch word {
	case "e.g", "i.e", "etc", "dr", "mr", "mrs", "ms", "prof", "vs", "fig", "cf", "approx", "sp", "spp":
		return true
	}
	// Single-letter initial such as "J." in "J. Smith".
	return len([]rune(word)) == 1
}

// ScoredSentence pairs a sentence with its extraction score and original
// position.
type ScoredSentence struct {
	Text     string
	Position int
	Score    float64
}

// RankSentences scores every sentence of a document for extractive
// summarization: a sentence scores the sum of its terms' document-level
// frequencies (normalized by sentence length, dampened for very long
// sentences), with a positional bonus for leading sentences — the classic
// frequency+position heuristic from the summarization survey the paper
// cites (ref [24]). Sentences are returned ordered by descending score.
func RankSentences(sentences []string) []ScoredSentence {
	// Document-level term frequencies.
	docTF := NewVector()
	sentTerms := make([][]string, len(sentences))
	for i, s := range sentences {
		ts := Terms(s)
		sentTerms[i] = ts
		for _, t := range ts {
			docTF[t]++
		}
	}
	scored := make([]ScoredSentence, len(sentences))
	for i, s := range sentences {
		var sum float64
		for _, t := range sentTerms[i] {
			sum += docTF[t]
		}
		n := float64(len(sentTerms[i]))
		score := 0.0
		if n > 0 {
			score = sum / (n + 3) // dampen very short and very long sentences
		}
		// Positional bonus: first sentences of a document carry its gist.
		score *= 1 + 0.5/float64(1+i)
		scored[i] = ScoredSentence{Text: s, Position: i, Score: score}
	}
	sort.SliceStable(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Position < scored[b].Position
	})
	return scored
}

// ExtractSnippet produces an extractive summary of text: the k
// highest-ranked sentences re-ordered into document order and joined. If
// the document has at most k sentences the whole text is returned
// normalized.
func ExtractSnippet(text string, k int) string {
	sentences := SplitSentences(text)
	if len(sentences) == 0 {
		return strings.TrimSpace(text)
	}
	ranked := RankSentences(sentences)
	if k > len(ranked) {
		k = len(ranked)
	}
	chosen := make([]ScoredSentence, k)
	copy(chosen, ranked[:k])
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].Position < chosen[j].Position })
	parts := make([]string, k)
	for i, c := range chosen {
		parts[i] = c.Text
	}
	return strings.Join(parts, " ")
}
