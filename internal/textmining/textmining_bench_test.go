package textmining

import "testing"

const benchText = "Observed a large flock of swan geese feeding on stonewort " +
	"beds near the north shore at dawn; two juveniles showed the same foraging " +
	"behavior as the adults and one adult carried a leg band"

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Tokenize(benchText)
	}
}

func BenchmarkTerms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Terms(benchText)
	}
}

func BenchmarkVectorOf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		VectorOf(benchText)
	}
}

func BenchmarkCosine(b *testing.B) {
	v1 := VectorOf(benchText)
	v2 := VectorOf("swan geese gathered on the stonewort beds every morning near the shore")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cosine(v1, v2)
	}
}

func BenchmarkNaiveBayesClassify(b *testing.B) {
	nb, err := NewNaiveBayes([]string{"Behavior", "Disease", "Anatomy", "Other"})
	if err != nil {
		b.Fatal(err)
	}
	samples := []struct{ text, label string }{
		{"feeding foraging stonewort flock migration", "Behavior"},
		{"influenza infection lesions parasite virus", "Disease"},
		{"wingspan plumage bill neck weight", "Anatomy"},
		{"photo camera duplicate record survey", "Other"},
	}
	for _, s := range samples {
		for i := 0; i < 8; i++ {
			nb.Learn(s.text, s.label)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Classify(benchText)
	}
}

func BenchmarkExtractSnippet(b *testing.B) {
	doc := "Swan geese gathered on the stonewort beds every morning. " +
		"Counts peaked at forty-one birds near the north shore. " +
		"Two juveniles showed feeding behavior identical to the adults. " +
		"Weather stayed mild for the whole survey week. " +
		"One adult carried a leg band from the 2013 season. " +
		"The stonewort density was highest in the shallow bays."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractSnippet(doc, 2)
	}
}
