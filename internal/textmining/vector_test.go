package textmining

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVectorOf(t *testing.T) {
	v := VectorOf("swan swan goose")
	if v["swan"] != 2 || v["goose"] != 1 {
		t.Errorf("VectorOf = %v", v)
	}
}

func TestVectorAddSubInverseProperty(t *testing.T) {
	f := func(aw, bw []uint8) bool {
		a, b := NewVector(), NewVector()
		terms := []string{"t0", "t1", "t2", "t3", "t4"}
		for i, w := range aw {
			a[terms[i%len(terms)]] += float64(w%7) + 1
		}
		for i, w := range bw {
			b[terms[(i+2)%len(terms)]] += float64(w%7) + 1
		}
		orig := a.Clone()
		a.Add(b)
		a.Sub(b)
		if len(a) != len(orig) {
			return false
		}
		for k, w := range orig {
			if math.Abs(a[k]-w) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCosine(t *testing.T) {
	a := VectorOf("swan lake feeding")
	b := VectorOf("swan lake feeding")
	if got := Cosine(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("Cosine(identical) = %g, want 1", got)
	}
	c := VectorOf("disease virus infection")
	if got := Cosine(a, c); got != 0 {
		t.Errorf("Cosine(disjoint) = %g, want 0", got)
	}
	if got := Cosine(NewVector(), a); got != 0 {
		t.Errorf("Cosine(empty, x) = %g, want 0", got)
	}
}

func TestCosineSymmetryAndRangeProperty(t *testing.T) {
	texts := []string{
		"swan feeding on stonewort", "goose observed near lake",
		"wing anatomy measurement", "avian influenza outbreak",
		"swan swan goose lake", "feeding behavior at dawn",
	}
	f := func(i, j uint8) bool {
		a := VectorOf(texts[int(i)%len(texts)])
		b := VectorOf(texts[int(j)%len(texts)])
		s1, s2 := Cosine(a, b), Cosine(b, a)
		return math.Abs(s1-s2) < 1e-12 && s1 >= 0 && s1 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopTermsAndPrune(t *testing.T) {
	v := Vector{"a": 3, "b": 1, "c": 2, "d": 2}
	got := v.TopTerms(3)
	want := []string{"a", "c", "d"} // ties broken alphabetically
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopTerms = %v, want %v", got, want)
	}
	v.Prune(2)
	if len(v) != 2 || v["a"] != 3 || v["c"] != 2 {
		t.Errorf("after Prune(2): %v", v)
	}
	v.Prune(10) // no-op when already small
	if len(v) != 2 {
		t.Errorf("Prune(10) changed size: %v", v)
	}
}

func TestVectorScaleNormDot(t *testing.T) {
	v := Vector{"x": 3, "y": 4}
	if got := v.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %g, want 5", got)
	}
	v.Scale(2)
	if v["x"] != 6 || v["y"] != 8 {
		t.Errorf("after Scale(2): %v", v)
	}
	u := Vector{"y": 1, "z": 9}
	if got := v.Dot(u); got != 8 {
		t.Errorf("Dot = %g, want 8", got)
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{"b": 1, "a": 2}
	if got := v.String(); got != "{a b}" {
		t.Errorf("String = %q", got)
	}
}

func TestCorpusIDF(t *testing.T) {
	c := NewCorpus()
	c.AddDocument(VectorOf("swan lake"))
	c.AddDocument(VectorOf("swan disease"))
	c.AddDocument(VectorOf("swan wing"))
	if c.Docs() != 3 {
		t.Fatalf("Docs = %d", c.Docs())
	}
	if c.DF("swan") != 3 || c.DF("lake") != 1 || c.DF("unseen") != 0 {
		t.Errorf("DF: swan=%d lake=%d unseen=%d", c.DF("swan"), c.DF("lake"), c.DF("unseen"))
	}
	// Rare terms must outweigh ubiquitous ones.
	if c.IDF("lake") <= c.IDF("swan") {
		t.Errorf("IDF(lake)=%g <= IDF(swan)=%g", c.IDF("lake"), c.IDF("swan"))
	}
	w := c.Weight(VectorOf("swan lake"))
	if w["lake"] <= w["swan"] {
		t.Errorf("Weight: lake=%g swan=%g", w["lake"], w["swan"])
	}
}

func TestPruneDeterministic(t *testing.T) {
	// Prune must be order-independent: same multiset of weights → same kept set.
	r := rand.New(rand.NewSource(1))
	base := Vector{}
	for i := 0; i < 50; i++ {
		base[Terms("term" + string(rune('a'+i%26)))[0]+string(rune('0'+i/26))] = float64(r.Intn(10) + 1)
	}
	a, b := base.Clone(), base.Clone()
	a.Prune(10)
	b.Prune(10)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Prune nondeterministic: %v vs %v", a, b)
	}
}
