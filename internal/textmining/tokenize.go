// Package textmining provides the text-analysis substrate shared by the
// InsightNotes summary types: tokenization, stop-word filtering, light
// stemming, sparse term vectors with cosine similarity, TF-IDF weighting,
// and sentence segmentation for extractive snippets.
//
// The implementations follow the techniques the paper cites: Naive Bayes
// text classification (Manning et al., ref [12]) consumes the token stream;
// stream clustering (ref [23]) and extractive summarization (ref [24]) use
// the term vectors and sentence splitter.
package textmining

import (
	"strings"
	"unicode"
)

// Tokenize lowercases text and splits it into word tokens consisting of
// letters, digits, and internal apostrophes/hyphens. Punctuation is
// discarded. It performs no stop-word filtering; see Terms for the full
// pipeline.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	prevLetter := false
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevLetter = true
		case (r == '\'' || r == '-') && prevLetter && b.Len() > 0:
			// keep intra-word apostrophes and hyphens ("don't", "blue-gray")
			b.WriteRune(r)
			prevLetter = false
		default:
			flush()
			prevLetter = false
		}
	}
	flush()
	// Trim any trailing connector left by inputs like "word-".
	for i, t := range tokens {
		tokens[i] = strings.TrimRight(t, "'-")
	}
	return tokens
}

// Stem applies a light suffix-stripping stemmer (a small subset of Porter's
// rules) good enough to conflate simple morphological variants such as
// "feeding"/"feeds"/"feed" without the complexity of a full stemmer.
func Stem(token string) string {
	t := token
	if len(t) > 4 {
		switch {
		case strings.HasSuffix(t, "ies"):
			t = t[:len(t)-3] + "y"
		case strings.HasSuffix(t, "sses"):
			t = t[:len(t)-2]
		case strings.HasSuffix(t, "ing") && len(t) > 5:
			t = t[:len(t)-3]
		case strings.HasSuffix(t, "edly") && len(t) > 6:
			t = t[:len(t)-4]
		case strings.HasSuffix(t, "ed") && len(t) > 4:
			t = t[:len(t)-2]
		case strings.HasSuffix(t, "ly") && len(t) > 4:
			t = t[:len(t)-2]
		case strings.HasSuffix(t, "es") && len(t) > 4:
			t = t[:len(t)-2]
		case strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "ss"):
			t = t[:len(t)-1]
		}
	} else if len(t) > 3 && strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "ss") {
		t = t[:len(t)-1]
	}
	return t
}

// Terms runs the full analysis pipeline — tokenize, drop stop words and
// single-character tokens, stem — returning the terms used for vectors and
// classification.
func Terms(text string) []string {
	raw := Tokenize(text)
	terms := raw[:0]
	for _, tok := range raw {
		if len(tok) < 2 || IsStopWord(tok) {
			continue
		}
		terms = append(terms, Stem(tok))
	}
	return terms
}
