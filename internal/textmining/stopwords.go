package textmining

// stopWords is a compact English stop-word list tuned for short annotation
// texts: function words that carry no class or cluster signal.
var stopWords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "an", "and", "are", "as", "at", "be", "been", "but", "by",
		"can", "could", "did", "do", "does", "for", "from", "had", "has",
		"have", "he", "her", "here", "his", "how", "i", "if", "in", "into",
		"is", "it", "its", "just", "me", "my", "no", "not", "of", "on",
		"or", "our", "out", "she", "so", "some", "than", "that", "the",
		"their", "them", "then", "there", "these", "they", "this", "those",
		"to", "too", "up", "was", "we", "were", "what", "when", "where",
		"which", "who", "will", "with", "would", "you", "your",
	} {
		stopWords[w] = struct{}{}
	}
}

// IsStopWord reports whether the (already lowercased) token is an English
// stop word.
func IsStopWord(token string) bool {
	_, ok := stopWords[token]
	return ok
}
