package textmining

import "math"

// Corpus accumulates document-frequency statistics incrementally so that
// TF-IDF weights can be computed as annotations stream in. It is the
// sharable statistics backbone for cluster instances.
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// AddDocument records one document's distinct terms into the corpus
// statistics. The input is a raw term-frequency vector (VectorOf output).
func (c *Corpus) AddDocument(tf Vector) {
	c.docs++
	for t := range tf {
		c.df[t]++
	}
}

// Docs returns the number of documents seen.
func (c *Corpus) Docs() int { return c.docs }

// DF returns the document frequency of term t.
func (c *Corpus) DF(t string) int { return c.df[t] }

// IDF returns the smoothed inverse document frequency of term t:
// ln((1+N)/(1+df)) + 1, which stays positive and defined for unseen terms.
func (c *Corpus) IDF(t string) float64 {
	return math.Log(float64(1+c.docs)/float64(1+c.df[t])) + 1
}

// Weight returns a copy of tf reweighted by IDF (classic TF-IDF).
func (c *Corpus) Weight(tf Vector) Vector {
	out := make(Vector, len(tf))
	for t, f := range tf {
		out[t] = f * c.IDF(t)
	}
	return out
}
