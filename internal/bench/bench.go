// Package bench implements the experiment harness: one runner per
// experiment in DESIGN.md's index (E1-E8), each regenerating the
// corresponding figure/claim of the paper as a printed table. The runners
// are shared by cmd/inbench (full sweeps, EXPERIMENTS.md source) and the
// root bench_test.go (testing.B micro-benchmarks over the same fixtures).
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/workload"
	"insightnotes/internal/workload/populate"
)

// Table is one experiment's output, print-ready.
type Table struct {
	ID      string
	Caption string
	Header  []string
	Rows    [][]string
	Notes   string
}

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Caption)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// SPJWorld is the shared two-relation fixture: annotated birds joined with
// sightings, mirroring the Figure 2 query shape at benchmark scale.
type SPJWorld struct {
	DB        *engine.DB
	Gen       *workload.Generator
	Birds     int
	Sightings int
	// Query is the benchmark SPJ statement.
	Query string
}

// NewSPJWorld builds the fixture with the given annotations per bird
// tuple. cacheDir receives the zoom-in spill files.
func NewSPJWorld(cacheDir string, birds, annsPerTuple int, docFrac float64) (*SPJWorld, error) {
	db, err := engine.Open(engine.Config{CacheDir: cacheDir})
	if err != nil {
		return nil, err
	}
	g := workload.New(1234)
	spec := populate.BirdCorpusSpec{
		Tuples:              birds,
		AnnotationsPerTuple: annsPerTuple,
		DocumentFraction:    docFrac,
		TrainPerClass:       8,
	}
	if _, err := populate.Birds(db, g, spec); err != nil {
		return nil, err
	}
	if _, err := db.Exec(context.Background(), "CREATE TABLE sightings (sid INT, bird_id INT, region TEXT, cnt INT)"); err != nil {
		return nil, err
	}
	sightings := birds * 2
	for i := 0; i < sightings; i++ {
		stmt := fmt.Sprintf("INSERT INTO sightings VALUES (%d, %d, '%s', %d)",
			i+1, i%birds+1, g.Region(), g.Intn(40)+1)
		if _, err := db.Exec(context.Background(), stmt); err != nil {
			return nil, err
		}
	}
	return &SPJWorld{
		DB:        db,
		Gen:       g,
		Birds:     birds,
		Sightings: sightings,
		Query: "SELECT b.name, b.wingspan, s.region FROM birds b, sightings s " +
			"WHERE b.id = s.bird_id AND s.cnt > 5",
	}, nil
}

// timeIt measures the average duration of fn over iters runs.
func timeIt(iters int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

func dur(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

func ratio(a, b float64) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.1f×", a/b)
}
