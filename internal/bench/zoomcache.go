package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/workload"
	"insightnotes/internal/workload/populate"
	"insightnotes/internal/zoomin"
)

// E6ZoomInCache reproduces the §2.2 demonstration: zoom-in latency and hit
// rate under a bounded materialization cache, comparing the RCO policy
// against LRU and against no cache (every zoom-in re-executes its query).
//
// The reference stream is the regime RCO is designed for: a working set of
// expensive join results that users keep zooming into, interleaved with
// bursts of one-off references to cheap single-tuple queries. LRU lets the
// bursts flush the expensive results; RCO retains them because their
// recreation cost and reference frequency dominate their size.
func E6ZoomInCache(budgetBytes int64, queries, zoomOps int) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Caption: "Zoom-in cache: RCO vs LRU vs none (§2.2)",
		Header:  []string{"policy", "hit rate", "mean zoom latency", "evictions"},
		Notes:   "bounded disk cache; misses transparently re-execute the referenced query",
	}
	type cfg struct {
		name   string
		policy zoomin.Policy
		budget int64
	}
	if budgetBytes <= 0 {
		// Auto-size: big enough for the expensive working set plus a
		// couple of cheap entries, small enough that pollution bursts
		// force evictions.
		probe, err := e6WorkingSetBytes(queries)
		if err != nil {
			return nil, err
		}
		budgetBytes = probe + probe/8
	}
	for _, c := range []cfg{
		{"RCO", zoomin.RCO{}, budgetBytes},
		{"LRU", zoomin.LRU{}, budgetBytes},
		{"none", zoomin.RCO{}, 1}, // 1-byte budget admits nothing
	} {
		hitRate, mean, evictions, err := e6Run(c.policy, c.budget, queries, zoomOps)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.0f%%", hitRate*100),
			dur(mean),
			fmt.Sprintf("%d", evictions),
		})
	}
	return t, nil
}

// e6WorkingSetBytes measures the cached size of the expensive working set
// by issuing it into an unbounded cache.
func e6WorkingSetBytes(queries int) (int64, error) {
	dir := tempDir()
	defer os.RemoveAll(dir)
	db, err := e6Setup(dir, zoomin.RCO{}, 1<<30)
	if err != nil {
		return 0, err
	}
	n := queries / 4
	if n < 2 {
		n = 2
	}
	if _, err := e6ExpensiveQueries(db, n); err != nil {
		return 0, err
	}
	return db.Cache().Stats().UsedBytes, nil
}

// e6Setup builds the E6 database with the given cache configuration.
func e6Setup(dir string, policy zoomin.Policy, budget int64) (*engine.DB, error) {
	db, err := engine.Open(engine.Config{
		CacheDir: dir, CacheBudget: budget, CachePolicy: policy,
	})
	if err != nil {
		return nil, err
	}
	g := workload.New(31)
	if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
		Tuples: 12, AnnotationsPerTuple: 20, DocumentFraction: 0.05, TrainPerClass: 8,
	}); err != nil {
		return nil, err
	}
	if _, err := db.Exec(context.Background(), "CREATE TABLE sightings (sid INT, bird_id INT, cnt INT)"); err != nil {
		return nil, err
	}
	for i := 0; i < 24; i++ {
		if _, err := db.Exec(context.Background(), fmt.Sprintf(
			"INSERT INTO sightings VALUES (%d, %d, %d)", i+1, i%12+1, g.Intn(50))); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// e6ExpensiveQueries issues the expensive join working set and returns its
// QIDs.
func e6ExpensiveQueries(db *engine.DB, n int) ([]int, error) {
	var out []int
	for i := 0; i < n; i++ {
		res, err := db.Query(context.Background(), fmt.Sprintf(
			"SELECT b.name, s.cnt FROM birds b, sightings s WHERE b.id = s.bird_id AND b.id <= %d",
			6+i%6))
		if err != nil {
			return nil, err
		}
		out = append(out, res.QID)
	}
	return out, nil
}

func e6Run(policy zoomin.Policy, budget int64, queries, zoomOps int) (float64, time.Duration, int64, error) {
	dir := tempDir()
	defer os.RemoveAll(dir)
	db, err := e6Setup(dir, policy, budget)
	if err != nil {
		return 0, 0, 0, err
	}
	g := workload.New(95)

	// Issue the query mix: a small working set of expensive joins plus a
	// long tail of cheap single-tuple selects.
	nExpensive := queries / 4
	if nExpensive < 2 {
		nExpensive = 2
	}
	expensive, err := e6ExpensiveQueries(db, nExpensive)
	if err != nil {
		return 0, 0, 0, err
	}

	zoom := func(qid int) error {
		_, _, err := db.ZoomIn(context.Background(), engine.ZoomInRequest{
			QID: qid, Instance: "ClassBird1", Index: 1 + g.Intn(4),
		})
		return err
	}
	// Warm-up: establish reference frequency on the expensive working set.
	for _, qid := range expensive {
		for k := 0; k < 3; k++ {
			if err := zoom(qid); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	db.Cache().ResetStats()

	// Measured stream: alternate bursts of fresh one-off cheap queries
	// (each materialized into the cache and zoomed once — pure pollution)
	// with re-references of the expensive working set. LRU's recency bias
	// lets the fresh entries displace the working set; RCO weighs their
	// low complexity and reference count against the working set's and
	// keeps the expensive results resident.
	start := time.Now()
	ops := 0
	pollute := 0
	for ops < zoomOps {
		// Pollution burst: new cheap queries, zoomed once each.
		for k := 0; k < 3 && ops < zoomOps; k++ {
			res, err := db.Query(context.Background(), fmt.Sprintf(
				"SELECT id, name FROM birds WHERE id <= %d", pollute%10+2))
			if err != nil {
				return 0, 0, 0, err
			}
			pollute++
			if err := zoom(res.QID); err != nil {
				return 0, 0, 0, err
			}
			ops++
		}
		// Working-set re-references.
		for k := 0; k < 5 && ops < zoomOps; k++ {
			if err := zoom(expensive[ops%len(expensive)]); err != nil {
				return 0, 0, 0, err
			}
			ops++
		}
	}
	mean := time.Since(start) / time.Duration(zoomOps)
	st := db.Cache().Stats()
	total := st.Hits + st.Misses
	hitRate := 0.0
	if total > 0 {
		hitRate = float64(st.Hits) / float64(total)
	}
	return hitRate, mean, st.Evictions, nil
}
