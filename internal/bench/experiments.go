package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"insightnotes/internal/baseline"
	"insightnotes/internal/engine"
	"insightnotes/internal/plan"
	"insightnotes/internal/types"
	"insightnotes/internal/workload"
	"insightnotes/internal/workload/populate"
)

// tempDir allocates a throwaway cache directory for one experiment run.
func tempDir() string {
	dir, err := os.MkdirTemp("", "inbench-")
	if err != nil {
		panic(err)
	}
	return dir
}

// E1Compression reproduces Figure 1's motivation quantitatively: raw
// annotation bytes vs summary-object bytes at the paper's
// annotation-to-data ratios (DataBank 30×, HydroEarth 120×, AKN 250×).
func E1Compression(tuples int, ratios []int) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Caption: "Summary compression vs raw annotations (Figure 1 / §1 ratios)",
		Header:  []string{"ratio/skew", "annotations", "raw bytes", "summary bytes", "compression"},
		Notes:   "raw = stored records (text, documents, targets); zipf rows skew annotation volume toward popular tuples",
	}
	for _, ratio := range ratios {
		for _, skew := range []float64{0, 1.5} {
			dir := tempDir()
			db, err := engine.Open(engine.Config{CacheDir: dir})
			if err != nil {
				return nil, err
			}
			g := workload.New(42)
			n, err := populate.Birds(db, g, populate.BirdCorpusSpec{
				Tuples:              tuples,
				AnnotationsPerTuple: ratio,
				DocumentFraction:    0.05,
				TrainPerClass:       8,
				ZipfSkew:            skew,
			})
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%d×", ratio)
			if skew > 0 {
				label += " zipf"
			}
			raw := db.Annotations().RawBytes()
			sum := db.SummaryBytes("birds")
			t.Rows = append(t.Rows, []string{
				label,
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", raw),
				fmt.Sprintf("%d", sum),
				ratio64(raw, sum),
			})
			os.RemoveAll(dir)
		}
	}
	return t, nil
}

func ratio64(a, b int64) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.1f×", float64(a)/float64(b))
}

// E2SPJPropagation measures the Figure 2 pipeline: SPJ query latency with
// summary propagation as annotations-per-tuple grows. The paper's claim:
// summary-based processing cost is governed by summary size, not raw
// annotation volume.
func E2SPJPropagation(birds int, annsPerTuple []int, iters int) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Caption: "SPJ query latency with summary propagation (Figure 2 pipeline)",
		Header:  []string{"anns/tuple", "query latency", "result rows"},
	}
	for _, apt := range annsPerTuple {
		dir := tempDir()
		w, err := NewSPJWorld(dir, birds, apt, 0.02)
		if err != nil {
			return nil, err
		}
		var rows int
		d, err := timeIt(iters, func() error {
			res, err := w.DB.Query(context.Background(), w.Query, engine.WithPlanOptions(plan.Options{}))
			if err != nil {
				return err
			}
			rows = len(res.Rows)
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", apt), dur(d), fmt.Sprintf("%d", rows),
		})
		os.RemoveAll(dir)
	}
	return t, nil
}

// E3CurateBeforeMerge exercises the plan-equivalence theorems: the same
// query under reversed FROM order, with and without curate-before-merge
// (projection pushdown), reporting whether summaries matched and the cost
// of each plan.
func E3CurateBeforeMerge(birds, annsPerTuple, iters int) (*Table, error) {
	dir := tempDir()
	defer os.RemoveAll(dir)
	w, err := NewSPJWorld(dir, birds, annsPerTuple, 0.02)
	if err != nil {
		return nil, err
	}
	q1 := w.Query
	q2 := "SELECT b.name, b.wingspan, s.region FROM sightings s, birds b " +
		"WHERE b.id = s.bird_id AND s.cnt > 5"
	t := &Table{
		ID:      "E3",
		Caption: "Curate-before-merge and plan equivalence (Theorems 1&2)",
		Header:  []string{"plan", "pushdown", "latency", "summaries identical"},
	}
	run := func(q string, opts plan.Options) (time.Duration, map[string]string, error) {
		db := w.DB
		var sums map[string]string
		d, err := timeIt(iters, func() error {
			res, err := queryWithOpts(db, q, opts)
			if err != nil {
				return err
			}
			sums = summaryFingerprint(res)
			return nil
		})
		return d, sums, err
	}
	d1, s1, err := run(q1, plan.Options{})
	if err != nil {
		return nil, err
	}
	d2, s2, err := run(q2, plan.Options{})
	if err != nil {
		return nil, err
	}
	identical := mapsEqual(s1, s2)
	d3, _, err := run(q1, plan.Options{DisableProjectionPushdown: true})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"R ⋈ S", "on", dur(d1), fmt.Sprintf("%v", identical)},
		[]string{"S ⋈ R", "on", dur(d2), fmt.Sprintf("%v", identical)},
		[]string{"R ⋈ S", "off (ablation)", dur(d3), "n/a"},
	)
	t.Notes = "with curation on, reversed join order must produce identical summaries"
	return t, nil
}

// queryWithOpts plans and executes q under explicit plan options against
// db's catalog and summary store.
func queryWithOpts(db *engine.DB, q string, opts plan.Options) ([]rowFingerprint, error) {
	res, err := db.Query(context.Background(), q, engine.WithPlanOptions(opts))
	if err != nil {
		return nil, err
	}
	out := make([]rowFingerprint, 0, len(res.Rows))
	for _, r := range res.Rows {
		fp := rowFingerprint{key: r.Tuple.String()}
		if r.Env != nil {
			fp.summary = r.Env.Render()
		}
		out = append(out, fp)
	}
	return out, nil
}

type rowFingerprint struct{ key, summary string }

func summaryFingerprint(rows []rowFingerprint) map[string]string {
	out := make(map[string]string, len(rows))
	for _, r := range rows {
		out[r.key] = r.summary
	}
	return out
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// E4IncrementalMaintenance compares the per-annotation cost of incremental
// summary maintenance against recomputing all summaries from scratch, as
// the annotation count grows.
func E4IncrementalMaintenance(tuples int, checkpoints []int) (*Table, error) {
	dir := tempDir()
	defer os.RemoveAll(dir)
	db, err := engine.Open(engine.Config{CacheDir: dir})
	if err != nil {
		return nil, err
	}
	g := workload.New(77)
	if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
		Tuples: tuples, AnnotationsPerTuple: 0, TrainPerClass: 8,
	}); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E4",
		Caption: "Incremental maintenance vs full recomputation (§1(2), §2.3)",
		Header:  []string{"total anns", "incremental/insert", "rebuild (full)", "speedup"},
	}
	total := 0
	for _, target := range checkpoints {
		add := target - total
		start := time.Now()
		if _, err := populate.AnnotateBirds(db, g, populate.BirdCorpusSpec{
			Tuples: tuples, AnnotationsPerTuple: add / tuples, DocumentFraction: 0.02,
		}); err != nil {
			return nil, err
		}
		added := (add / tuples) * tuples
		incrPer := time.Duration(0)
		if added > 0 {
			incrPer = time.Since(start) / time.Duration(added)
		}
		total += added
		rstart := time.Now()
		if _, err := db.RebuildSummaries("birds"); err != nil {
			return nil, err
		}
		rebuild := time.Since(rstart)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", total),
			dur(incrPer),
			dur(rebuild),
			ratio(float64(rebuild), float64(incrPer)),
		})
	}
	t.Notes = "incremental cost per insert stays flat; rebuild grows with total annotations"
	return t, nil
}

// E5InvariantOptimization measures summarize-once: classifier invocations
// and ingest latency for an annotation attached to m tuples, with the
// optimization on vs off.
func E5InvariantOptimization(multiplicities []int) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Caption: "Summarize-once via AnnotationInvariant/DataInvariant (§2.3, Figure 4)",
		Header:  []string{"tuples/annotation", "classify calls (on)", "classify calls (off)", "ingest on", "ingest off"},
	}
	for _, m := range multiplicities {
		callsOn, durOn, err := e5Run(m, false)
		if err != nil {
			return nil, err
		}
		callsOff, durOff, err := e5Run(m, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", callsOn),
			fmt.Sprintf("%d", callsOff),
			dur(durOn),
			dur(durOff),
		})
	}
	t.Notes = "an annotation attached to m tuples is classified once with the optimization, m times without"
	return t, nil
}

func e5Run(m int, disable bool) (int64, time.Duration, error) {
	dir := tempDir()
	defer os.RemoveAll(dir)
	db, err := engine.Open(engine.Config{CacheDir: dir, DisableSummarizeOnce: disable})
	if err != nil {
		return 0, 0, err
	}
	g := workload.New(9)
	if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
		Tuples: m, AnnotationsPerTuple: 0, TrainPerClass: 8,
	}); err != nil {
		return 0, 0, err
	}
	in, err := db.Catalog().Instance("ClassBird1")
	if err != nil {
		return 0, 0, err
	}
	in.ResetStats()
	const rounds = 20
	start := time.Now()
	for i := 0; i < rounds; i++ {
		// One annotation attached to every tuple (no WHERE).
		if _, _, err := db.Annotate(engine.AnnotationRequest{
			Text: g.ClassText("Behavior"), Table: "birds",
		}); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start) / rounds
	return in.SummarizeCalls() / rounds, elapsed, nil
}

// E7InstanceScalability measures annotation-ingest latency as the number
// of summary instances linked to the relation grows.
func E7InstanceScalability(instanceCounts []int, annsPerRound int) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Caption: "Maintenance scalability vs linked summary instances (§2.3)",
		Header:  []string{"instances", "ingest/annotation", "query latency"},
	}
	for _, k := range instanceCounts {
		dir := tempDir()
		db, err := engine.Open(engine.Config{CacheDir: dir})
		if err != nil {
			return nil, err
		}
		g := workload.New(13)
		if _, err := populate.Birds(db, g, populate.BirdCorpusSpec{
			Tuples: 8, AnnotationsPerTuple: 0, TrainPerClass: 8, SkipInstances: true,
		}); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			name := fmt.Sprintf("Cluster%02d", i)
			if _, err := db.Exec(context.Background(), fmt.Sprintf(
				"CREATE SUMMARY INSTANCE %s TYPE Cluster WITH (threshold = 0.3)", name)); err != nil {
				return nil, err
			}
			if _, err := db.Exec(context.Background(), fmt.Sprintf("LINK SUMMARY %s TO birds", name)); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		if _, err := populate.AnnotateBirds(db, g, populate.BirdCorpusSpec{
			Tuples: 8, AnnotationsPerTuple: annsPerRound / 8,
		}); err != nil {
			return nil, err
		}
		perAnn := time.Since(start) / time.Duration((annsPerRound/8)*8)
		qd, err := timeIt(5, func() error {
			_, err := db.Query(context.Background(), "SELECT id, name FROM birds WHERE id <= 4")
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k), dur(perAnn), dur(qd),
		})
		os.RemoveAll(dir)
	}
	return t, nil
}

// E8SummaryVsRaw is the headline comparison: SPJ query latency and
// propagated payload, summary-based engine vs raw-annotation propagation
// baseline, as annotations-per-tuple grows.
func E8SummaryVsRaw(birds int, annsPerTuple []int, iters int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Caption: "Summary-based vs raw-annotation propagation (§1 motivation)",
		Header: []string{"anns/tuple", "summary latency", "raw latency", "speedup",
			"summary bytes", "raw bytes"},
	}
	for _, apt := range annsPerTuple {
		dir := tempDir()
		w, err := NewSPJWorld(dir, birds, apt, 0.02)
		if err != nil {
			return nil, err
		}
		var sumBytes int64
		sumDur, err := timeIt(iters, func() error {
			res, err := w.DB.Query(context.Background(), w.Query, engine.WithPlanOptions(plan.Options{}))
			if err != nil {
				return err
			}
			sumBytes = 0
			for _, r := range res.Rows {
				if r.Env != nil {
					sumBytes += int64(r.Env.ApproxBytes())
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var rawBytes int64
		rawDur, err := timeIt(iters, func() error {
			var err error
			rawBytes, err = RunRawSPJ(w)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", apt),
			dur(sumDur),
			dur(rawDur),
			ratio(float64(rawDur), float64(sumDur)),
			fmt.Sprintf("%d", sumBytes),
			fmt.Sprintf("%d", rawBytes),
		})
		os.RemoveAll(dir)
	}
	t.Notes = "raw propagation degrades with annotation volume; summary propagation tracks summary size"
	return t, nil
}

// RunRawSPJ executes the equivalent SPJ pipeline on the raw-propagation
// baseline and returns the propagated raw bytes.
func RunRawSPJ(w *SPJWorld) (int64, error) {
	birds, err := w.DB.Catalog().Table("birds")
	if err != nil {
		return 0, err
	}
	sightings, err := w.DB.Catalog().Table("sightings")
	if err != nil {
		return 0, err
	}
	store := w.DB.Annotations()
	// scan birds → project (id, name, wingspan) → join sightings filtered
	// on cnt > 5 → project (name, wingspan, region).
	left := baseline.NewProject(baseline.NewScan(birds, "b", store), []int{0, 1, 4})
	rightFiltered := baseline.NewFilter(baseline.NewScan(sightings, "s", store),
		func(tu types.Tuple) (bool, error) { return tu[3].Int() > 5, nil })
	right := baseline.NewProject(rightFiltered, []int{1, 2})
	join := baseline.NewHashJoin(left, right, 0, 0)
	final := baseline.NewProject(join, []int{1, 2, 4})
	_, bytes, err := baseline.Collect(final)
	return bytes, err
}
