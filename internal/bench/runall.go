package bench

import (
	"fmt"
	"io"
)

// Scale selects experiment sweep sizes.
type Scale int

// Available scales.
const (
	// Quick finishes in seconds — used by tests and smoke runs.
	Quick Scale = iota
	// Full runs the paper-scale sweeps (ratios up to 250×).
	Full
)

// Spec bundles per-experiment parameters for one scale.
type Spec struct {
	E1Tuples       int
	E1Ratios       []int
	E2Birds        int
	E2AnnsPerTuple []int
	E2Iters        int
	E3Birds        int
	E3AnnsPerTuple int
	E3Iters        int
	E4Tuples       int
	E4Checkpoints  []int
	E5Multiplicity []int
	E6Budget       int64
	E6Queries      int
	E6ZoomOps      int
	E7Instances    []int
	E7AnnsPerRound int
	E8Birds        int
	E8AnnsPerTuple []int
	E8Iters        int
}

// SpecFor returns the sweep parameters of a scale.
func SpecFor(s Scale) Spec {
	if s == Quick {
		return Spec{
			E1Tuples: 4, E1Ratios: []int{10, 30},
			E2Birds: 8, E2AnnsPerTuple: []int{4, 16}, E2Iters: 3,
			E3Birds: 8, E3AnnsPerTuple: 8, E3Iters: 3,
			E4Tuples: 4, E4Checkpoints: []int{40, 80},
			E5Multiplicity: []int{4, 16},
			E6Budget:       0, E6Queries: 8, E6ZoomOps: 60, // budget auto-sized
			E7Instances: []int{1, 4}, E7AnnsPerRound: 40,
			E8Birds: 8, E8AnnsPerTuple: []int{4, 32}, E8Iters: 3,
		}
	}
	return Spec{
		E1Tuples: 16, E1Ratios: []int{30, 120, 250},
		E2Birds: 16, E2AnnsPerTuple: []int{1, 8, 32, 128, 512}, E2Iters: 5,
		E3Birds: 16, E3AnnsPerTuple: 32, E3Iters: 5,
		E4Tuples: 8, E4Checkpoints: []int{200, 400, 800, 1600},
		E5Multiplicity: []int{1, 4, 16, 64, 256},
		E6Budget:       0, E6Queries: 24, E6ZoomOps: 400, // budget auto-sized
		E7Instances: []int{1, 2, 4, 8, 16}, E7AnnsPerRound: 160,
		E8Birds: 16, E8AnnsPerTuple: []int{1, 8, 32, 128, 512}, E8Iters: 5,
	}
}

// RunAll executes every experiment at the given scale and prints the
// tables to w. It returns the tables for programmatic inspection.
func RunAll(w io.Writer, scale Scale) ([]*Table, error) {
	spec := SpecFor(scale)
	type step struct {
		name string
		run  func() (*Table, error)
	}
	steps := []step{
		{"E1", func() (*Table, error) { return E1Compression(spec.E1Tuples, spec.E1Ratios) }},
		{"E2", func() (*Table, error) {
			return E2SPJPropagation(spec.E2Birds, spec.E2AnnsPerTuple, spec.E2Iters)
		}},
		{"E3", func() (*Table, error) {
			return E3CurateBeforeMerge(spec.E3Birds, spec.E3AnnsPerTuple, spec.E3Iters)
		}},
		{"E4", func() (*Table, error) { return E4IncrementalMaintenance(spec.E4Tuples, spec.E4Checkpoints) }},
		{"E5", func() (*Table, error) { return E5InvariantOptimization(spec.E5Multiplicity) }},
		{"E6", func() (*Table, error) { return E6ZoomInCache(spec.E6Budget, spec.E6Queries, spec.E6ZoomOps) }},
		{"E7", func() (*Table, error) { return E7InstanceScalability(spec.E7Instances, spec.E7AnnsPerRound) }},
		{"E8", func() (*Table, error) {
			return E8SummaryVsRaw(spec.E8Birds, spec.E8AnnsPerTuple, spec.E8Iters)
		}},
	}
	var tables []*Table
	for _, s := range steps {
		t, err := s.run()
		if err != nil {
			return tables, fmt.Errorf("bench %s: %w", s.name, err)
		}
		t.Format(w)
		tables = append(tables, t)
	}
	return tables, nil
}
