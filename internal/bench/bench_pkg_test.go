package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestE1CompressionShape(t *testing.T) {
	tbl, err := E1Compression(3, []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 { // each ratio has a uniform and a zipf row
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Compression must exceed 1× (summaries smaller than raw) and widen
	// with ratio — the Figure 1 claim. Rows 0/2 are the uniform variants.
	c1 := parseRatio(t, tbl.Rows[0][4])
	c2 := parseRatio(t, tbl.Rows[2][4])
	if c1 <= 1 || c2 <= 1 {
		t.Errorf("compression not > 1×: %v, %v", c1, c2)
	}
	if c2 < c1 {
		t.Errorf("compression did not widen with ratio: %v then %v", c1, c2)
	}
	// The zipf variants compress too.
	if z := parseRatio(t, tbl.Rows[1][4]); z <= 1 {
		t.Errorf("zipf compression = %v", z)
	}
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "×"), 64)
	if err != nil {
		t.Fatalf("bad ratio %q", s)
	}
	return v
}

func TestE3SummariesIdenticalAcrossPlans(t *testing.T) {
	tbl, err := E3CurateBeforeMerge(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][3] != "true" || tbl.Rows[1][3] != "true" {
		t.Errorf("plan equivalence violated: %v", tbl.Rows)
	}
}

func TestE5InvariantCalls(t *testing.T) {
	tbl, err := E5InvariantOptimization([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	if row[1] != "1" {
		t.Errorf("summarize-once calls = %s, want 1", row[1])
	}
	if row[2] != "4" {
		t.Errorf("ablated calls = %s, want 4", row[2])
	}
}

func TestE6PoliciesProduceStats(t *testing.T) {
	tbl, err := E6ZoomInCache(16<<10, 6, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// The no-cache configuration must have 0% hits.
	if tbl.Rows[2][1] != "0%" {
		t.Errorf("no-cache hit rate = %s", tbl.Rows[2][1])
	}
	// The cached policies must hit at least sometimes at this budget.
	if tbl.Rows[0][1] == "0%" {
		t.Errorf("RCO never hit: %v", tbl.Rows[0])
	}
}

func TestE8SummaryBeatsRawAtVolume(t *testing.T) {
	tbl, err := E8SummaryVsRaw(6, []int{32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	sumBytes, _ := strconv.ParseInt(row[4], 10, 64)
	rawBytes, _ := strconv.ParseInt(row[5], 10, 64)
	if rawBytes <= sumBytes {
		t.Errorf("raw bytes %d not larger than summary bytes %d", rawBytes, sumBytes)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var buf bytes.Buffer
	tables, err := RunAll(&buf, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 8 {
		t.Fatalf("tables = %d", len(tables))
	}
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("output missing %s", id)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID: "EX", Caption: "c", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: "n",
	}
	var buf bytes.Buffer
	tbl.Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "== EX: c ==") || !strings.Contains(out, "note: n") {
		t.Errorf("format = %q", out)
	}
}
