package zoomin

import (
	"fmt"
	"strings"
	"testing"

	"insightnotes/internal/annotation"
	"insightnotes/internal/exec"
	"insightnotes/internal/sql"
	"insightnotes/internal/summary"
	"insightnotes/internal/textmining"
	"insightnotes/internal/types"
)

func resultSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "c1", Kind: types.KindString},
		types.Column{Name: "c3", Kind: types.KindInt},
	)
}

// figure3Result builds a cached result shaped like Figure 3: rows r1/r2
// with a two-label classifier (refute/approve) and a snippet object.
func figure3Result(t *testing.T, qid int) *CachedResult {
	t.Helper()
	nb, err := textmining.NewNaiveBayes([]string{"refute", "approve"})
	if err != nil {
		t.Fatal(err)
	}
	nb.Learn("value wrong invalid needs verification", "refute")
	nb.Learn("confirmed verified looks correct", "approve")
	cls, _ := summary.NewClassifierInstance("NaiveBayesClass", nb)
	snp, _ := summary.NewSnippetInstance("TextSummary", 2)

	mkRow := func(c1 string, c3 int64, refuting []annotation.ID, docs []annotation.ID) *exec.Row {
		env := summary.NewEnvelope()
		for _, id := range refuting {
			env.Add(cls, cls.Summarize(annotation.Annotation{ID: id, Text: "value wrong invalid"}), annotation.WholeRow(2))
		}
		for _, id := range docs {
			env.Add(snp, snp.Summarize(annotation.Annotation{
				ID: id, Title: fmt.Sprintf("Doc %d", id),
				Document: "Experiment E results. Wikipedia article text. More detail here.",
			}), annotation.WholeRow(2))
		}
		return &exec.Row{Tuple: types.Tuple{types.NewString(c1), types.NewInt(c3)}, Env: env}
	}
	rows := []*exec.Row{
		mkRow("x", 5, []annotation.ID{1}, []annotation.ID{101, 102}),
		mkRow("x", 10, []annotation.ID{2, 3}, nil),
		mkRow("y", 7, nil, nil),
	}
	return BuildCachedResult(qid, "SELECT c1, c3 FROM t", resultSchema(), rows, 10)
}

func TestBuildCachedResultZoomStructure(t *testing.T) {
	r := figure3Result(t, 101)
	if len(r.Rows) != 3 || r.QID != 101 {
		t.Fatalf("%+v", r)
	}
	row := r.Rows[0]
	// Classifier index 1 = "refute".
	ids, err := row.ZoomIDs("NaiveBayesClass", 1)
	if err != nil || len(ids) != 1 || ids[0] != 1 {
		t.Errorf("ZoomIDs(refute) = %v, %v", ids, err)
	}
	// Snippet index 2 = second document.
	ids, err = row.ZoomIDs("TextSummary", 2)
	if err != nil || len(ids) != 1 || ids[0] != 102 {
		t.Errorf("ZoomIDs(snippet 2) = %v, %v", ids, err)
	}
	if _, err := row.ZoomIDs("NaiveBayesClass", 9); err == nil {
		t.Error("out-of-range index accepted")
	}
	if ids, err := row.ZoomIDs("NoSuchInstance", 1); err != nil || ids != nil {
		t.Errorf("missing instance = %v, %v", ids, err)
	}
	// Unannotated row has no zoom maps.
	if r.Rows[2].Zoom != nil {
		t.Error("unannotated row has zoom map")
	}
	if !strings.Contains(row.Rendered["NaiveBayesClass"], "refute") {
		t.Errorf("rendered = %q", row.Rendered["NaiveBayesClass"])
	}
}

func TestFilterRowsWithPredicate(t *testing.T) {
	r := figure3Result(t, 101)
	// Figure 3(a): Where C1 = 'x' selects r1 and r2.
	stmt, _ := sql.Parse("SELECT c1 FROM t WHERE c1 = 'x'")
	pred, err := exec.Compile(stmt.(*sql.Select).Where, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.FilterRows(pred)
	if err != nil || len(rows) != 2 {
		t.Fatalf("FilterRows = %d rows, %v", len(rows), err)
	}
	all, _ := r.FilterRows(nil)
	if len(all) != 3 {
		t.Errorf("nil predicate rows = %d", len(all))
	}
}

func TestResultSerializationRoundTrip(t *testing.T) {
	r := figure3Result(t, 7)
	data, err := r.encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.QID != 7 || len(back.Rows) != 3 || back.SQL != r.SQL {
		t.Fatalf("%+v", back)
	}
	// Tuples round-trip with kind fidelity.
	if back.Rows[0].Tuple[1].Kind() != types.KindInt || back.Rows[0].Tuple[1].Int() != 5 {
		t.Errorf("tuple = %v", back.Rows[0].Tuple)
	}
	ids, err := back.Rows[1].ZoomIDs("NaiveBayesClass", 1)
	if err != nil || len(ids) != 2 {
		t.Errorf("zoom after round trip = %v, %v", ids, err)
	}
	if _, err := decodeResult([]byte("nonsense")); err == nil {
		t.Error("corrupt data decoded")
	}
}

func TestCachePutGetHit(t *testing.T) {
	c, err := NewCache(t.TempDir(), 1<<20, RCO{})
	if err != nil {
		t.Fatal(err)
	}
	r := figure3Result(t, 1)
	if err := c.Put(r); err != nil {
		t.Fatal(err)
	}
	got, hit, err := c.Get(1)
	if err != nil || !hit || got.QID != 1 {
		t.Fatalf("Get = %v, %v, %v", got, hit, err)
	}
	if _, hit, _ := c.Get(99); hit {
		t.Error("missing qid hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.UsedBytes <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheBudgetEviction(t *testing.T) {
	r := figure3Result(t, 1)
	data, _ := r.encode()
	one := int64(len(data))
	c, err := NewCache(t.TempDir(), one*2+one/2, LRU{}) // fits 2 entries
	if err != nil {
		t.Fatal(err)
	}
	for qid := 1; qid <= 3; qid++ {
		rr := figure3Result(t, qid)
		if err := c.Put(rr); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// LRU evicted qid 1.
	if c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Error("LRU victim wrong")
	}
}

func TestCacheRCOPrefersComplexEntries(t *testing.T) {
	r := figure3Result(t, 1)
	data, _ := r.encode()
	one := int64(len(data))
	c, err := NewCache(t.TempDir(), one*2+one/2, RCO{})
	if err != nil {
		t.Fatal(err)
	}
	cheap := figure3Result(t, 1)
	cheap.Complexity = 1
	costly := figure3Result(t, 2)
	costly.Complexity = 1000
	c.Put(cheap)
	c.Put(costly)
	// Both referenced equally; insert a third: RCO must evict the cheap one
	// despite the costly one being older in LRU terms... reference costly
	// first so LRU would pick it.
	c.Get(2)
	c.Get(1)
	third := figure3Result(t, 3)
	third.Complexity = 500
	c.Put(third)
	if !c.Contains(2) {
		t.Error("RCO evicted the high-complexity entry")
	}
	if c.Contains(1) {
		t.Error("RCO kept the cheap entry")
	}
}

func TestCacheOversizedResultSkipped(t *testing.T) {
	c, err := NewCache(t.TempDir(), 64, RCO{}) // tiny budget
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(figure3Result(t, 1)); err != nil {
		t.Fatal(err)
	}
	if c.Contains(1) {
		t.Error("oversized result admitted")
	}
}

func TestCacheReplaceSameQID(t *testing.T) {
	c, _ := NewCache(t.TempDir(), 1<<20, RCO{})
	c.Put(figure3Result(t, 5))
	used1 := c.Stats().UsedBytes
	c.Put(figure3Result(t, 5)) // replace, not duplicate
	st := c.Stats()
	if st.Entries != 1 || st.UsedBytes != used1 {
		t.Errorf("stats after replace = %+v", st)
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := NewCache(t.TempDir(), 0, RCO{}); err == nil {
		t.Error("zero budget accepted")
	}
	c, _ := NewCache(t.TempDir(), 1<<20, nil) // nil policy defaults to RCO
	if c.PolicyName() != "RCO" {
		t.Errorf("default policy = %q", c.PolicyName())
	}
}

func TestCacheResetStats(t *testing.T) {
	c, _ := NewCache(t.TempDir(), 1<<20, RCO{})
	c.Put(figure3Result(t, 1))
	c.Get(1)
	c.ResetStats()
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}
