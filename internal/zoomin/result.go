// Package zoomin implements the paper's zoom-in query processing (§2.2):
// query results receive QIDs and are materialized into a limited disk-based
// cache so that later ZOOMIN commands — which reference a QID, refine its
// tuples with predicates, and expand one summary element back into raw
// annotations — execute without re-running the query. Cache admission and
// eviction follow the paper's RCO policy (Recency, Complexity, Overhead);
// an LRU policy is provided as the benchmark baseline.
package zoomin

import (
	"encoding/json"
	"fmt"

	"insightnotes/internal/annotation"
	"insightnotes/internal/exec"
	"insightnotes/internal/types"
)

// CachedRow is one materialized result row: the data tuple plus the
// zoom-addressable structure of its summary objects — for every instance,
// the element labels and the raw-annotation ids behind each 1-based element
// index. The summary objects themselves are not serialized; this projection
// is exactly what zoom-in needs.
type CachedRow struct {
	Tuple types.Tuple                  `json:"tuple"`
	Zoom  map[string][][]annotation.ID `json:"zoom,omitempty"`
	Label map[string][]string          `json:"label,omitempty"`
	// Rendered carries the display form of each summary object for UIs
	// re-presenting a cached result.
	Rendered map[string]string `json:"rendered,omitempty"`
}

// CachedResult is one materialized query result.
type CachedResult struct {
	QID        int            `json:"qid"`
	SQL        string         `json:"sql"`
	Columns    []types.Column `json:"columns"`
	Rows       []CachedRow    `json:"rows"`
	Complexity float64        `json:"complexity"`
}

// Schema reconstructs the result schema.
func (r *CachedResult) Schema() types.Schema { return types.Schema{Columns: r.Columns} }

// BuildCachedResult projects executor rows into the cacheable zoom form.
// complexity is the planner's cost proxy for the query (used by RCO).
func BuildCachedResult(qid int, sqlText string, schema types.Schema,
	rows []*exec.Row, complexity float64) *CachedResult {
	out := &CachedResult{
		QID:        qid,
		SQL:        sqlText,
		Columns:    schema.Columns,
		Complexity: complexity,
	}
	for _, row := range rows {
		cr := CachedRow{Tuple: row.Tuple}
		if row.Env != nil && !row.Env.IsEmpty() {
			cr.Zoom = map[string][][]annotation.ID{}
			cr.Label = map[string][]string{}
			cr.Rendered = map[string]string{}
			for _, name := range row.Env.InstanceNames() {
				obj := row.Env.Object(name)
				labels := obj.ZoomLabels()
				elems := make([][]annotation.ID, len(labels))
				for i := range labels {
					ids, err := obj.Zoom(i + 1)
					if err == nil {
						elems[i] = ids
					}
				}
				cr.Zoom[name] = elems
				cr.Label[name] = labels
				cr.Rendered[name] = obj.Render()
			}
		}
		out.Rows = append(out.Rows, cr)
	}
	return out
}

// encode serializes a result for the disk cache.
func (r *CachedResult) encode() ([]byte, error) { return json.Marshal(r) }

// decodeResult parses a serialized result.
func decodeResult(data []byte) (*CachedResult, error) {
	var r CachedResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("zoomin: corrupt cached result: %w", err)
	}
	return &r, nil
}

// FilterRows returns the cached rows satisfying pred (nil = all), compiled
// against the result schema — the ZOOMIN WHERE refinement.
func (r *CachedResult) FilterRows(pred *exec.Compiled) ([]CachedRow, error) {
	if pred == nil {
		return r.Rows, nil
	}
	var out []CachedRow
	for _, row := range r.Rows {
		v, err := pred.Eval(row.Tuple)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			out = append(out, row)
		}
	}
	return out, nil
}

// ZoomIDs resolves the annotation ids behind element index (1-based) of the
// named instance on one cached row. Rows without that instance return nil.
func (row *CachedRow) ZoomIDs(instance string, index int) ([]annotation.ID, error) {
	elems, ok := row.Zoom[instance]
	if !ok {
		return nil, nil
	}
	if index < 1 || index > len(elems) {
		return nil, fmt.Errorf("zoomin: instance %q has no element %d (1..%d)", instance, index, len(elems))
	}
	return elems[index-1], nil
}
