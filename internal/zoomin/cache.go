package zoomin

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// entryMeta is the bookkeeping the replacement policies score.
type entryMeta struct {
	QID        int
	Size       int64
	Complexity float64
	LastRef    int64 // logical clock of the last reference
	RefCount   int
	Created    int64
}

// Policy chooses an eviction victim among cache entries.
type Policy interface {
	// Name identifies the policy in benchmark output.
	Name() string
	// Victim returns the index into metas of the entry to evict.
	Victim(metas []entryMeta, clock int64) int
}

// RCO is the paper's replacement policy: Recency, Complexity, and Overhead.
// An entry's retention value grows with the cost of recreating it (query
// complexity), how often and how recently zoom-ins referenced it, and
// shrinks with the disk space it occupies. The entry with the lowest value
// is evicted.
type RCO struct{}

// Name implements Policy.
func (RCO) Name() string { return "RCO" }

// Victim implements Policy.
func (RCO) Victim(metas []entryMeta, clock int64) int {
	best := 0
	bestVal := rcoValue(metas[0], clock)
	for i := 1; i < len(metas); i++ {
		if v := rcoValue(metas[i], clock); v < bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

func rcoValue(m entryMeta, clock int64) float64 {
	recency := 1.0 / float64(1+clock-m.LastRef)
	frequency := float64(1 + m.RefCount)
	overhead := m.Complexity // cost to recreate on a miss
	size := float64(m.Size)
	if size <= 0 {
		size = 1
	}
	return recency * frequency * overhead / size
}

// LRU is the baseline policy: evict the least recently referenced entry.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "LRU" }

// Victim implements Policy.
func (LRU) Victim(metas []entryMeta, _ int64) int {
	best := 0
	for i := 1; i < len(metas); i++ {
		if metas[i].LastRef < metas[best].LastRef {
			best = i
		}
	}
	return best
}

// CacheStats reports cache effectiveness for the E6 benchmarks and the
// metrics registry's function-backed collectors.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Puts counts results admitted into the cache.
	Puts int64
	// Rejected counts results larger than the whole budget, which are never
	// admitted (the query is re-executed on demand instead).
	Rejected  int64
	UsedBytes int64
	Entries   int
}

// Cache is the limited disk-based materialization cache for query results.
// Results are serialized into files under a spill directory and compete for
// a byte budget under the configured replacement policy.
type Cache struct {
	mu     sync.Mutex
	dir    string
	budget int64
	policy Policy

	entries map[int]*entryMeta
	used    int64
	clock   int64
	stats   CacheStats
}

// NewCache creates a cache writing under dir with the given byte budget and
// policy. The directory is created if missing.
func NewCache(dir string, budget int64, policy Policy) (*Cache, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("zoomin: cache budget must be positive")
	}
	if policy == nil {
		policy = RCO{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{
		dir:     dir,
		budget:  budget,
		policy:  policy,
		entries: make(map[int]*entryMeta),
	}, nil
}

// PolicyName returns the active replacement policy's name.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// Clear drops every entry and its spill file. Used when the whole
// database state is replaced underneath the cache (replica snapshot
// resync): every materialized result may reference rows that no longer
// exist. Cumulative stats are preserved.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for qid := range c.entries {
		os.Remove(c.path(qid))
		delete(c.entries, qid)
	}
	c.used = 0
}

func (c *Cache) path(qid int) string {
	return filepath.Join(c.dir, fmt.Sprintf("qid-%d.json", qid))
}

// Put materializes a result into the cache, evicting victims until the
// budget admits it. Results larger than the entire budget are not admitted
// (the query can always be re-executed).
func (c *Cache) Put(r *CachedResult) error {
	data, err := r.encode()
	if err != nil {
		return err
	}
	size := int64(len(data))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if size > c.budget {
		c.stats.Rejected++
		return nil // too large to cache; skip, recompute on demand
	}
	if old, ok := c.entries[r.QID]; ok {
		c.used -= old.Size
		delete(c.entries, r.QID)
	}
	for c.used+size > c.budget && len(c.entries) > 0 {
		if err := c.evictOne(); err != nil {
			return err
		}
	}
	if err := os.WriteFile(c.path(r.QID), data, 0o644); err != nil {
		return err
	}
	c.entries[r.QID] = &entryMeta{
		QID:        r.QID,
		Size:       size,
		Complexity: r.Complexity,
		LastRef:    c.clock,
		Created:    c.clock,
	}
	c.used += size
	c.stats.Puts++
	return nil
}

// evictOne removes the policy's victim. Requires c.mu held and a non-empty
// entry set.
func (c *Cache) evictOne() error {
	metas := make([]entryMeta, 0, len(c.entries))
	for _, m := range c.entries {
		metas = append(metas, *m)
	}
	victim := metas[c.policy.Victim(metas, c.clock)]
	if err := os.Remove(c.path(victim.QID)); err != nil && !os.IsNotExist(err) {
		return err
	}
	c.used -= victim.Size
	delete(c.entries, victim.QID)
	c.stats.Evictions++
	return nil
}

// Get loads a cached result, updating reference statistics. The boolean
// reports a cache hit.
func (c *Cache) Get(qid int) (*CachedResult, bool, error) {
	c.mu.Lock()
	c.clock++
	meta, ok := c.entries[qid]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false, nil
	}
	meta.LastRef = c.clock
	meta.RefCount++
	path := c.path(qid)
	c.stats.Hits++
	c.mu.Unlock()

	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	r, err := decodeResult(data)
	if err != nil {
		return nil, false, err
	}
	return r, true, nil
}

// Contains reports whether qid is resident without touching statistics.
func (c *Cache) Contains(qid int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[qid]
	return ok
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.UsedBytes = c.used
	s.Entries = len(c.entries)
	return s
}

// ResetStats zeroes hit/miss/eviction counters (between benchmark phases).
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = CacheStats{}
}
