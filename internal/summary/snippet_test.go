package summary

import (
	"strings"
	"testing"

	"insightnotes/internal/annotation"
)

const wikiDoc = "The swan goose is a large goose. It breeds in Mongolia and China. " +
	"The swan goose feeds on stonewort in shallow lakes. " +
	"Carl Linnaeus described the species in 1758. " +
	"Swan goose populations feed near lake shores on stonewort beds."

func TestSnippetObjectAddOnlyDocuments(t *testing.T) {
	in := snippetInstance(t, "TextSummary1")
	obj := in.NewObject()
	obj.Add(in.Summarize(ann(1, "plain comment, no document")))
	if obj.Len() != 0 {
		t.Errorf("non-document annotation produced an entry")
	}
	obj.Add(in.Summarize(docAnn(2, "Wikipedia: Swan Goose", wikiDoc)))
	if obj.Len() != 1 {
		t.Fatalf("Len = %d", obj.Len())
	}
	r := obj.Render()
	if !strings.Contains(r, "Wikipedia: Swan Goose") {
		t.Errorf("Render = %q", r)
	}
	// The snippet must be shorter than the document.
	so := obj.(*snippetObject)
	if e := so.entries[2]; len(e.Snippet) >= len(wikiDoc) {
		t.Errorf("snippet not shorter than document: %d vs %d", len(e.Snippet), len(wikiDoc))
	}
}

func TestSnippetRemoveDeletesEntry(t *testing.T) {
	in := snippetInstance(t, "T")
	obj := in.NewObject()
	obj.Add(in.Summarize(docAnn(1, "Experiment E", "Result one. Result two. Result three.")))
	obj.Add(in.Summarize(docAnn(2, "Wikipedia article", wikiDoc)))
	// The paper: "the wikipedia article in the snippet object is deleted".
	obj.Remove(func(id annotation.ID) bool { return id == 2 })
	if obj.Len() != 1 {
		t.Fatalf("Len = %d", obj.Len())
	}
	if strings.Contains(obj.Render(), "Wikipedia") {
		t.Errorf("deleted entry still rendered: %q", obj.Render())
	}
}

func TestSnippetMergeDedup(t *testing.T) {
	in := snippetInstance(t, "T")
	a := in.NewObject()
	b := in.NewObject()
	shared := in.Summarize(docAnn(1, "Shared doc", wikiDoc))
	a.Add(shared)
	b.Add(shared)
	b.Add(in.Summarize(docAnn(2, "Only B", "Unique content here. More unique content.")))
	a.MergeFrom(b)
	if a.Len() != 2 {
		t.Errorf("merged Len = %d, want 2", a.Len())
	}
}

func TestSnippetZoom(t *testing.T) {
	in := snippetInstance(t, "TextSummary1")
	obj := in.NewObject()
	obj.Add(in.Summarize(docAnn(5, "Experiment E", "E results. More E results.")))
	obj.Add(in.Summarize(docAnn(9, "Wikipedia article", wikiDoc)))
	// Entries are in member (id) order: index 1 → ann 5, index 2 → ann 9.
	ids, err := obj.Zoom(2)
	if err != nil || len(ids) != 1 || ids[0] != 9 {
		t.Errorf("Zoom(2) = %v, %v", ids, err)
	}
	if _, err := obj.Zoom(3); err == nil {
		t.Error("Zoom(3) succeeded")
	}
	labels := obj.ZoomLabels()
	if len(labels) != 2 || labels[0] != "Experiment E" {
		t.Errorf("ZoomLabels = %v", labels)
	}
}

func TestSnippetCloneAndEqual(t *testing.T) {
	in := snippetInstance(t, "T")
	obj := in.NewObject()
	obj.Add(in.Summarize(docAnn(1, "D", "Content sentence. Another sentence.")))
	cp := obj.Clone()
	if !obj.Equal(cp) {
		t.Error("clone not Equal")
	}
	cp.Remove(func(annotation.ID) bool { return true })
	if obj.Len() != 1 {
		t.Error("clone shares state")
	}
	if obj.Equal(cp) {
		t.Error("diverged snippet objects compare Equal")
	}
}

func TestSnippetUntitledRender(t *testing.T) {
	in := snippetInstance(t, "T")
	obj := in.NewObject()
	obj.Add(in.Summarize(docAnn(1, "", "Untitled doc body. Second sentence.")))
	r := obj.Render()
	if !strings.Contains(r, "Untitled doc body") {
		t.Errorf("Render = %q", r)
	}
	labels := obj.ZoomLabels()
	if len(labels) != 1 || labels[0] == "" {
		t.Errorf("ZoomLabels = %v", labels)
	}
}
