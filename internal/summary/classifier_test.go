package summary

import (
	"strings"
	"testing"

	"insightnotes/internal/annotation"
)

func TestClassifierObjectAddAndCounts(t *testing.T) {
	in := classifierInstance(t, "ClassBird1")
	obj := in.NewObject().(*classifierObject)
	obj.Add(in.Summarize(ann(1, "observed feeding on stonewort")))
	obj.Add(in.Summarize(ann(2, "signs of avian influenza infection")))
	obj.Add(in.Summarize(ann(3, "eating stonewort again at dawn")))
	if obj.Len() != 3 {
		t.Fatalf("Len = %d", obj.Len())
	}
	bi := in.Classifier.LabelIndex("Behavior")
	di := in.Classifier.LabelIndex("Disease")
	if obj.LabelCount(bi) != 2 || obj.LabelCount(di) != 1 {
		t.Errorf("counts: behavior=%d disease=%d", obj.LabelCount(bi), obj.LabelCount(di))
	}
}

func TestClassifierObjectDuplicateAddIgnored(t *testing.T) {
	in := classifierInstance(t, "C")
	obj := in.NewObject()
	d := in.Summarize(ann(7, "observed feeding"))
	obj.Add(d)
	obj.Add(d)
	if obj.Len() != 1 {
		t.Errorf("duplicate add changed Len: %d", obj.Len())
	}
}

func TestClassifierObjectRemove(t *testing.T) {
	in := classifierInstance(t, "C")
	obj := in.NewObject().(*classifierObject)
	for i := annotation.ID(1); i <= 4; i++ {
		obj.Add(in.Summarize(ann(i, behaviorText(int(i)))))
	}
	obj.Remove(func(id annotation.ID) bool { return id%2 == 0 })
	if obj.Len() != 2 {
		t.Fatalf("Len after remove = %d", obj.Len())
	}
	bi := in.Classifier.LabelIndex("Behavior")
	if obj.LabelCount(bi) != 2 {
		t.Errorf("count after remove = %d", obj.LabelCount(bi))
	}
	got := obj.Members()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Members = %v", got)
	}
}

// TestClassifierMergeAvoidsDoubleCounting reproduces the paper's "22
// instead of 27" rule: five annotations shared by both sides are counted
// once after the merge.
func TestClassifierMergeAvoidsDoubleCounting(t *testing.T) {
	in := classifierInstance(t, "ClassBird2")
	left := in.NewObject().(*classifierObject)
	right := in.NewObject().(*classifierObject)
	// Left: annotations 1..10; right: 6..12. Shared: 6..10 (5 of them).
	for i := annotation.ID(1); i <= 10; i++ {
		left.Add(in.Summarize(ann(i, behaviorText(int(i)))))
	}
	for i := annotation.ID(6); i <= 12; i++ {
		right.Add(in.Summarize(ann(i, behaviorText(int(i)))))
	}
	left.MergeFrom(right)
	if left.Len() != 12 {
		t.Fatalf("merged Len = %d, want 12 (shared annotations not double counted)", left.Len())
	}
	bi := in.Classifier.LabelIndex("Behavior")
	if left.LabelCount(bi) != 12 {
		t.Errorf("merged count = %d, want 12", left.LabelCount(bi))
	}
}

func TestClassifierZoom(t *testing.T) {
	in := classifierInstance(t, "C")
	obj := in.NewObject()
	obj.Add(in.Summarize(ann(1, behaviorText(1))))
	obj.Add(in.Summarize(ann(2, diseaseText(2))))
	obj.Add(in.Summarize(ann(3, diseaseText(3))))
	// Label order: Behavior=1, Disease=2 (1-based zoom indexes).
	ids, err := obj.Zoom(2)
	if err != nil || len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Errorf("Zoom(Disease) = %v, %v", ids, err)
	}
	ids, err = obj.Zoom(1)
	if err != nil || len(ids) != 1 || ids[0] != 1 {
		t.Errorf("Zoom(Behavior) = %v, %v", ids, err)
	}
	if _, err := obj.Zoom(0); err == nil {
		t.Error("Zoom(0) succeeded")
	}
	if _, err := obj.Zoom(5); err == nil {
		t.Error("Zoom(5) succeeded")
	}
	labels := obj.ZoomLabels()
	if len(labels) != 4 || labels[0] != "Behavior" {
		t.Errorf("ZoomLabels = %v", labels)
	}
}

func TestClassifierRender(t *testing.T) {
	in := classifierInstance(t, "ClassBird1")
	obj := in.NewObject()
	obj.Add(in.Summarize(ann(1, behaviorText(1))))
	got := obj.Render()
	if !strings.HasPrefix(got, "ClassBird1 [(Behavior, 1), (Disease, 0)") {
		t.Errorf("Render = %q", got)
	}
}

func TestClassifierCloneIndependence(t *testing.T) {
	in := classifierInstance(t, "C")
	obj := in.NewObject()
	obj.Add(in.Summarize(ann(1, behaviorText(1))))
	cp := obj.Clone()
	cp.Add(in.Summarize(ann(2, diseaseText(2))))
	if obj.Len() != 1 || cp.Len() != 2 {
		t.Errorf("clone not independent: %d, %d", obj.Len(), cp.Len())
	}
	if !obj.Equal(obj.Clone()) {
		t.Error("object not Equal to its own clone")
	}
	if obj.Equal(cp) {
		t.Error("diverged objects compare Equal")
	}
}

func TestClassifierEqualDifferentLabels(t *testing.T) {
	in := classifierInstance(t, "C")
	a := in.NewObject()
	b := in.NewObject()
	a.Add(Digest{Ann: 1, LabelIndex: 0})
	b.Add(Digest{Ann: 1, LabelIndex: 1})
	if a.Equal(b) {
		t.Error("same member with different labels compares Equal")
	}
}

func TestClassifierMergeIncompatiblePanics(t *testing.T) {
	in1 := classifierInstance(t, "A")
	in2 := classifierInstance(t, "B")
	defer func() {
		if recover() == nil {
			t.Error("merge of different instances did not panic")
		}
	}()
	in1.NewObject().MergeFrom(in2.NewObject())
}

func TestClassifierApproxBytesGrows(t *testing.T) {
	in := classifierInstance(t, "C")
	obj := in.NewObject()
	before := obj.ApproxBytes()
	for i := annotation.ID(1); i <= 100; i++ {
		obj.Add(in.Summarize(ann(i, behaviorText(int(i)))))
	}
	if obj.ApproxBytes() <= before {
		t.Error("ApproxBytes did not grow with members")
	}
	// Size stays tiny relative to 100 raw annotations (~60 bytes each).
	if obj.ApproxBytes() > 100*30 {
		t.Errorf("classifier object unexpectedly large: %d bytes", obj.ApproxBytes())
	}
}
