package summary

import (
	"fmt"
	"sort"
	"strings"

	"insightnotes/internal/annotation"
)

// classifierObject summarizes a tuple's annotations as per-label counts —
// the paper's ClassBird-style objects, e.g.
// "[(Behavior, 33), (Disease, 8), (Anatomy, 25), (Other, 16)]".
//
// Per member it retains only the assigned label index, which is what makes
// projection (decrementing the annotationCnt fields, in the paper's terms)
// and zoom-in (resolving a label to its member ids) possible without the
// raw annotations.
type classifierObject struct {
	inst    *Instance
	members map[annotation.ID]int // annotation id → label index
	counts  []int                 // per-label member counts
}

func newClassifierObject(in *Instance) *classifierObject {
	return &classifierObject{
		inst:    in,
		members: make(map[annotation.ID]int),
		counts:  make([]int, len(in.Classifier.Labels())),
	}
}

// Instance implements Object.
func (c *classifierObject) Instance() *Instance { return c.inst }

// Contains implements Object.
func (c *classifierObject) Contains(id annotation.ID) bool {
	_, ok := c.members[id]
	return ok
}

// Add implements Object.
func (c *classifierObject) Add(d Digest) {
	if c.Contains(d.Ann) {
		return
	}
	if d.LabelIndex < 0 || d.LabelIndex >= len(c.counts) {
		panic(fmt.Sprintf("summary: label index %d out of range for instance %q", d.LabelIndex, c.inst.Name))
	}
	c.members[d.Ann] = d.LabelIndex
	c.counts[d.LabelIndex]++
}

// Remove implements Object.
func (c *classifierObject) Remove(drop func(annotation.ID) bool) {
	for id, li := range c.members {
		if drop(id) {
			delete(c.members, id)
			c.counts[li]--
		}
	}
}

// MergeFrom implements Object: members already present are not double
// counted (the paper's "22 instead of 27" rule).
func (c *classifierObject) MergeFrom(other Object) {
	o := mustClassifier(other, c.inst)
	for id, li := range o.members {
		if !c.Contains(id) {
			c.members[id] = li
			c.counts[li]++
		}
	}
}

// Clone implements Object.
func (c *classifierObject) Clone() Object {
	cp := &classifierObject{
		inst:    c.inst,
		members: make(map[annotation.ID]int, len(c.members)),
		counts:  make([]int, len(c.counts)),
	}
	for id, li := range c.members {
		cp.members[id] = li
	}
	copy(cp.counts, c.counts)
	return cp
}

// Members implements Object.
func (c *classifierObject) Members() []annotation.ID { return sortedIDs(mapKeys(c.members)) }

// Len implements Object.
func (c *classifierObject) Len() int { return len(c.members) }

// LabelCount returns the member count of the given 0-based label index.
func (c *classifierObject) LabelCount(i int) int { return c.counts[i] }

// Zoom implements Object: index is the 1-based class-label position, as in
// the paper's "On NaiveBayesClass Index 1" addressing the 'refute' label.
func (c *classifierObject) Zoom(index int) ([]annotation.ID, error) {
	li := index - 1
	if li < 0 || li >= len(c.counts) {
		return nil, fmt.Errorf("summary: classifier %q has no label index %d (1..%d)",
			c.inst.Name, index, len(c.counts))
	}
	var ids []annotation.ID
	for id, l := range c.members {
		if l == li {
			ids = append(ids, id)
		}
	}
	return sortedIDs(ids), nil
}

// ZoomLabels implements Object.
func (c *classifierObject) ZoomLabels() []string { return c.inst.Classifier.Labels() }

// Render implements Object.
func (c *classifierObject) Render() string {
	labels := c.inst.Classifier.Labels()
	var b strings.Builder
	b.WriteString(c.inst.Name)
	b.WriteString(" [")
	for i, l := range labels {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%s, %d)", l, c.counts[i])
	}
	b.WriteString("]")
	return b.String()
}

// ApproxBytes implements Object.
func (c *classifierObject) ApproxBytes() int {
	// id (8) + label index (1) per member, plus the counts array.
	return 9*len(c.members) + 8*len(c.counts)
}

// Equal implements Object.
func (c *classifierObject) Equal(other Object) bool {
	o, ok := other.(*classifierObject)
	if !ok || o.inst.Name != c.inst.Name || len(o.members) != len(c.members) {
		return false
	}
	for id, li := range c.members {
		if oli, ok := o.members[id]; !ok || oli != li {
			return false
		}
	}
	return true
}

func mustClassifier(o Object, in *Instance) *classifierObject {
	c, ok := o.(*classifierObject)
	if !ok || c.inst.Name != in.Name {
		panic(fmt.Sprintf("summary: merge of incompatible objects (instance %q)", in.Name))
	}
	return c
}

func mapKeys[V any](m map[annotation.ID]V) []annotation.ID {
	out := make([]annotation.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}

func sortedIDs(ids []annotation.ID) []annotation.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
