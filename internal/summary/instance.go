package summary

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	"insightnotes/internal/annotation"
	"insightnotes/internal/textmining"
)

// Instance is a configured summary instance (level 2 of the hierarchy): a
// summary type plus the domain expert's configuration — mirroring the
// paper's example instance record
//
//	{ InstanceID: "ClassBird1", TypeName: "Classifier",
//	  FunctionID: NaiveBayesFunc(), Properties: [...],
//	  ClassLabels: [...], TrainingModel: ... }
//
// Instances are linked to relations by the catalog; an instance linked to
// relation R produces one Object per tuple of R.
type Instance struct {
	Name  string
	Type  TypeName
	Props Properties

	// Classifier configuration.
	Classifier *textmining.NaiveBayes

	// Cluster configuration.
	SimThreshold  float64 // cosine threshold for joining a group
	CentroidTerms int     // terms kept per member vector / centroid
	PreviewLen    int     // representative preview length (bytes)
	// MergeBySimilarity additionally combines non-member-overlapping
	// groups by centroid similarity at merge time (the Figure 2 A1+B5
	// behaviour). Member-overlap combination always applies and is
	// plan-order-canonical; similarity combination is best-effort under
	// plan reordering (see DESIGN.md E3 note).
	MergeBySimilarity bool

	// Snippet configuration.
	SnippetSentences int

	// summarizeCalls counts Summarize invocations — the measurement behind
	// the summarize-once experiment (E5).
	summarizeCalls atomic.Int64
}

// Default configuration values.
const (
	DefaultSimThreshold     = 0.30
	DefaultCentroidTerms    = 8
	DefaultPreviewLen       = 60
	DefaultSnippetSentences = 2
)

// NewClassifierInstance creates a Classifier instance around a trained (or
// trainable) Naive Bayes model. Classifier summarization depends only on
// the annotation text, so both invariant properties hold.
func NewClassifierInstance(name string, model *textmining.NaiveBayes) (*Instance, error) {
	if name == "" {
		return nil, fmt.Errorf("summary: instance name required")
	}
	if model == nil {
		return nil, fmt.Errorf("summary: classifier instance %q needs a model", name)
	}
	return &Instance{
		Name:       name,
		Type:       TypeClassifier,
		Props:      Properties{AnnotationInvariant: true, DataInvariant: true},
		Classifier: model,
	}, nil
}

// NewClusterInstance creates a Cluster instance. The expensive digest
// (vectorization) is annotation- and data-invariant; group assignment is
// object-local and happens at Add time.
func NewClusterInstance(name string, simThreshold float64) (*Instance, error) {
	if name == "" {
		return nil, fmt.Errorf("summary: instance name required")
	}
	if simThreshold <= 0 || simThreshold >= 1 {
		return nil, fmt.Errorf("summary: similarity threshold %g outside (0,1)", simThreshold)
	}
	return &Instance{
		Name:          name,
		Type:          TypeCluster,
		Props:         Properties{AnnotationInvariant: true, DataInvariant: true},
		SimThreshold:  simThreshold,
		CentroidTerms: DefaultCentroidTerms,
		PreviewLen:    DefaultPreviewLen,
	}, nil
}

// NewSnippetInstance creates a Snippet instance that condenses attached
// documents to the given number of extracted sentences.
func NewSnippetInstance(name string, sentences int) (*Instance, error) {
	if name == "" {
		return nil, fmt.Errorf("summary: instance name required")
	}
	if sentences < 1 {
		return nil, fmt.Errorf("summary: snippet sentence count %d < 1", sentences)
	}
	return &Instance{
		Name:             name,
		Type:             TypeSnippet,
		Props:            Properties{AnnotationInvariant: true, DataInvariant: true},
		SnippetSentences: sentences,
	}, nil
}

// Summarize computes the digest of one raw annotation under this instance.
// This is the (potentially expensive) mining step; the engine caches its
// result per annotation when Props.SummarizeOnce() holds.
func (in *Instance) Summarize(a annotation.Annotation) Digest {
	in.summarizeCalls.Add(1)
	d := Digest{Ann: a.ID}
	switch in.Type {
	case TypeClassifier:
		_, d.LabelIndex = in.Classifier.Classify(a.Text)
	case TypeCluster:
		v := textmining.VectorOf(a.Text)
		v.Prune(in.CentroidTerms)
		d.Vector = v
		d.Preview = a.Preview(in.PreviewLen)
	case TypeSnippet:
		if a.HasDocument() {
			d.HasDoc = true
			d.Title = a.Title
			d.Snippet = textmining.ExtractSnippet(a.Document, in.SnippetSentences)
		}
	}
	return d
}

// SummarizeCalls returns the number of Summarize invocations so far.
func (in *Instance) SummarizeCalls() int64 { return in.summarizeCalls.Load() }

// ResetStats zeroes the instrumentation counters (between benchmark runs).
func (in *Instance) ResetStats() { in.summarizeCalls.Store(0) }

// NewObject creates an empty summary object of this instance's type.
func (in *Instance) NewObject() Object {
	switch in.Type {
	case TypeClassifier:
		return newClassifierObject(in)
	case TypeCluster:
		return newClusterObject(in)
	case TypeSnippet:
		return newSnippetObject(in)
	}
	panic(fmt.Sprintf("summary: instance %q has invalid type %q", in.Name, in.Type))
}

// instanceConfig is the JSON persistence shape of an instance (the
// catalog's durable record of level 2).
type instanceConfig struct {
	Name              string                 `json:"name"`
	Type              TypeName               `json:"type"`
	Props             Properties             `json:"properties"`
	Model             *textmining.NaiveBayes `json:"model,omitempty"`
	SimThreshold      float64                `json:"sim_threshold,omitempty"`
	CentroidTerms     int                    `json:"centroid_terms,omitempty"`
	PreviewLen        int                    `json:"preview_len,omitempty"`
	MergeBySimilarity bool                   `json:"merge_by_similarity,omitempty"`
	SnippetSentences  int                    `json:"snippet_sentences,omitempty"`
}

// MarshalJSON serializes the instance configuration, including a trained
// classifier model.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(instanceConfig{
		Name:              in.Name,
		Type:              in.Type,
		Props:             in.Props,
		Model:             in.Classifier,
		SimThreshold:      in.SimThreshold,
		CentroidTerms:     in.CentroidTerms,
		PreviewLen:        in.PreviewLen,
		MergeBySimilarity: in.MergeBySimilarity,
		SnippetSentences:  in.SnippetSentences,
	})
}

// UnmarshalJSON restores an instance serialized by MarshalJSON.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var c instanceConfig
	if err := json.Unmarshal(data, &c); err != nil {
		return err
	}
	if _, err := ParseTypeName(string(c.Type)); err != nil {
		return err
	}
	if c.Type == TypeClassifier && c.Model == nil {
		return fmt.Errorf("summary: persisted classifier instance %q missing model", c.Name)
	}
	*in = Instance{
		Name:              c.Name,
		Type:              c.Type,
		Props:             c.Props,
		Classifier:        c.Model,
		SimThreshold:      c.SimThreshold,
		CentroidTerms:     c.CentroidTerms,
		PreviewLen:        c.PreviewLen,
		MergeBySimilarity: c.MergeBySimilarity,
		SnippetSentences:  c.SnippetSentences,
	}
	return nil
}
