package summary

import (
	"fmt"
	"testing"

	"insightnotes/internal/annotation"
	"insightnotes/internal/textmining"
)

// birdModel trains the demo paper's four-class ornithological classifier.
func birdModel(t testing.TB) *textmining.NaiveBayes {
	t.Helper()
	nb, err := textmining.NewNaiveBayes([]string{"Behavior", "Disease", "Anatomy", "Other"})
	if err != nil {
		t.Fatal(err)
	}
	corpus := []struct{ text, label string }{
		{"found eating stonewort near the shore", "Behavior"},
		{"observed feeding at dawn in flocks", "Behavior"},
		{"aggressive display toward intruders during nesting", "Behavior"},
		{"migrates south every october", "Behavior"},
		{"signs of avian influenza infection", "Disease"},
		{"lesions on the beak suggest avian pox virus", "Disease"},
		{"high parasite load with visible mites", "Disease"},
		{"lethargic sick bird likely infected", "Disease"},
		{"wingspan measured at 1.8 meters", "Anatomy"},
		{"large body long neck orange bill", "Anatomy"},
		{"white plumage with black wing tips", "Anatomy"},
		{"weight around 3 kilograms short tail", "Anatomy"},
		{"photo attached from the trail camera", "Other"},
		{"duplicate of an earlier record", "Other"},
		{"see the linked wikipedia article", "Other"},
		{"entered by volunteer data team", "Other"},
	}
	for _, c := range corpus {
		if err := nb.Learn(c.text, c.label); err != nil {
			t.Fatal(err)
		}
	}
	return nb
}

func classifierInstance(t testing.TB, name string) *Instance {
	t.Helper()
	in, err := NewClassifierInstance(name, birdModel(t))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func clusterInstance(t testing.TB, name string) *Instance {
	t.Helper()
	in, err := NewClusterInstance(name, DefaultSimThreshold)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func snippetInstance(t testing.TB, name string) *Instance {
	t.Helper()
	in, err := NewSnippetInstance(name, DefaultSnippetSentences)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// ann builds a raw annotation with the given id and text.
func ann(id annotation.ID, text string) annotation.Annotation {
	return annotation.Annotation{ID: id, Text: text, Author: "tester", Created: 1430000000}
}

// docAnn builds a document-bearing annotation.
func docAnn(id annotation.ID, title, doc string) annotation.Annotation {
	return annotation.Annotation{ID: id, Title: title, Document: doc, Author: "tester"}
}

// addAnn summarizes a into the envelope under instance in, covering cols.
func addAnn(e *Envelope, in *Instance, a annotation.Annotation, cols annotation.ColSet) {
	e.Add(in, in.Summarize(a), cols)
}

// behaviorTexts and diseaseTexts generate clusterable annotation content.
func behaviorText(i int) string {
	return fmt.Sprintf("observed feeding on stonewort near the lake shore site %d", i)
}

func diseaseText(i int) string {
	return fmt.Sprintf("signs of avian influenza infection in specimen %d", i)
}
