// Package summary implements the core contribution of the paper: annotation
// summaries as first-class objects that the query engine manipulates
// instead of raw annotations.
//
// The package mirrors the paper's three-level hierarchy (Figure 4):
//
//   - Summary types (level 1): Classifier, Cluster, and Snippet are built
//     into the engine (TypeName constants).
//   - Summary instances (level 2): Instance values configured by admins —
//     the classification model and labels, clustering threshold, snippet
//     length — plus the AnnotationInvariant/DataInvariant properties that
//     drive the summarize-once optimization.
//   - Summary objects (level 3): per-tuple Object values produced by an
//     instance, carried through the query pipeline inside an Envelope.
//
// Objects support the extended-operator algebra of Section 2.1: Remove (the
// projection curation that drops the effect of annotations attached only to
// projected-out columns), MergeFrom (the join/group/distinct combination
// with shared-annotation double-count avoidance), and Zoom (resolving a
// summary element back to raw annotation ids for zoom-in queries).
//
// Design note: an Object stores, per member annotation, only a compact
// digest — a class-label index, a pruned term vector and short preview, or
// an extracted snippet — never the raw text or document. This is what makes
// projection and merge computable "without retrieving the raw annotations"
// while keeping the object orders of magnitude smaller than its raw
// annotations (benchmarked in E1).
package summary

import (
	"fmt"

	"insightnotes/internal/annotation"
	"insightnotes/internal/textmining"
)

// TypeName names a built-in summary type (level 1 of the hierarchy).
type TypeName string

// The three summary families supported by the engine (§2 of the paper).
const (
	TypeClassifier TypeName = "Classifier"
	TypeCluster    TypeName = "Cluster"
	TypeSnippet    TypeName = "Snippet"
)

// ParseTypeName validates a user-supplied type name.
func ParseTypeName(s string) (TypeName, error) {
	switch TypeName(s) {
	case TypeClassifier, TypeCluster, TypeSnippet:
		return TypeName(s), nil
	}
	return "", fmt.Errorf("summary: unknown summary type %q (want Classifier, Cluster, or Snippet)", s)
}

// Properties are the instance flags that control maintenance optimizations
// (Figure 4). AnnotationInvariant: summarizing a new annotation on tuple t
// does not depend on t's existing annotations. DataInvariant: it does not
// depend on t's data values. When both hold, the engine summarizes an
// annotation once even if it is attached to many tuples.
type Properties struct {
	AnnotationInvariant bool `json:"annotation_invariant"`
	DataInvariant       bool `json:"data_invariant"`
}

// SummarizeOnce reports whether the summarize-once optimization applies.
func (p Properties) SummarizeOnce() bool { return p.AnnotationInvariant && p.DataInvariant }

// Digest is the per-annotation summarization result an instance computes
// from a raw annotation — the only thing summary objects retain about it.
// Which fields are populated depends on the instance type.
type Digest struct {
	Ann annotation.ID

	// Classifier: index of the assigned class label.
	LabelIndex int

	// Cluster: pruned term vector and a short preview used if the
	// annotation is elected group representative.
	Vector  textmining.Vector
	Preview string

	// Snippet: extracted snippet of the attached document (empty when the
	// annotation carries no document).
	Title   string
	Snippet string
	HasDoc  bool
}

// Object is one summary object (level 3): the summarization of the
// annotations of a single tuple under a single instance.
type Object interface {
	// Instance returns the instance that produced this object.
	Instance() *Instance
	// Contains reports whether annotation id already contributes to the
	// object (the double-count guard used during merges).
	Contains(id annotation.ID) bool
	// Add incorporates one annotation digest. Adding an already-contained
	// annotation is a no-op.
	Add(d Digest)
	// Remove retracts every member annotation for which drop returns true,
	// updating counts, centroids, and elected representatives.
	Remove(drop func(annotation.ID) bool)
	// MergeFrom combines other (an object of the same instance) into the
	// receiver. Members already present are not double counted.
	MergeFrom(other Object)
	// Clone returns a deep copy sharing only the immutable instance.
	Clone() Object
	// Members returns the contributing annotation ids, sorted ascending.
	Members() []annotation.ID
	// Len returns the number of contributing annotations.
	Len() int
	// Zoom resolves the 1-based element index used by ZoomIn commands —
	// a class label, cluster group, or snippet position — to the raw
	// annotation ids behind it.
	Zoom(index int) ([]annotation.ID, error)
	// ZoomLabels names the zoomable elements in index order (for UIs).
	ZoomLabels() []string
	// Render formats the object in the paper's display style.
	Render() string
	// ApproxBytes estimates the object's in-memory size, the numerator of
	// the E1 compression measurements.
	ApproxBytes() int
	// Equal reports deep semantic equality with another object, used to
	// verify the plan-equivalence theorems (E3).
	Equal(other Object) bool
}
