package summary

import (
	"fmt"
	"strings"

	"insightnotes/internal/annotation"
)

// snippetObject summarizes a tuple's document-bearing annotations as
// extracted snippets — the paper's TextSummary-style objects, e.g.
// `TextSummary1 ["Experiment E …", "Wikipedia article …"]`.
//
// Annotations without an attached document contribute nothing. Per entry it
// retains the annotation id, document title, and extracted snippet; the
// full document stays in the raw store and is fetched only by zoom-in.
type snippetObject struct {
	inst    *Instance
	entries map[annotation.ID]snippetEntry
}

type snippetEntry struct {
	Title   string
	Snippet string
}

func newSnippetObject(in *Instance) *snippetObject {
	return &snippetObject{inst: in, entries: make(map[annotation.ID]snippetEntry)}
}

// Instance implements Object.
func (s *snippetObject) Instance() *Instance { return s.inst }

// Contains implements Object.
func (s *snippetObject) Contains(id annotation.ID) bool {
	_, ok := s.entries[id]
	return ok
}

// Add implements Object.
func (s *snippetObject) Add(d Digest) {
	if !d.HasDoc || s.Contains(d.Ann) {
		return
	}
	s.entries[d.Ann] = snippetEntry{Title: d.Title, Snippet: d.Snippet}
}

// Remove implements Object — the paper's "the wikipedia article in the
// snippet object is deleted" projection behaviour.
func (s *snippetObject) Remove(drop func(annotation.ID) bool) {
	for id := range s.entries {
		if drop(id) {
			delete(s.entries, id)
		}
	}
}

// MergeFrom implements Object.
func (s *snippetObject) MergeFrom(other Object) {
	o, ok := other.(*snippetObject)
	if !ok || o.inst.Name != s.inst.Name {
		panic(fmt.Sprintf("summary: merge of incompatible objects (instance %q)", s.inst.Name))
	}
	for id, e := range o.entries {
		if !s.Contains(id) {
			s.entries[id] = e
		}
	}
}

// Clone implements Object.
func (s *snippetObject) Clone() Object {
	cp := &snippetObject{
		inst:    s.inst,
		entries: make(map[annotation.ID]snippetEntry, len(s.entries)),
	}
	for id, e := range s.entries {
		cp.entries[id] = e
	}
	return cp
}

// Members implements Object.
func (s *snippetObject) Members() []annotation.ID { return sortedIDs(mapKeys(s.entries)) }

// Len implements Object.
func (s *snippetObject) Len() int { return len(s.entries) }

// Zoom implements Object: index is the 1-based snippet position in member
// order; the result is that single document annotation (the paper's
// "retrieves the complete Wikipedia article attached to r1").
func (s *snippetObject) Zoom(index int) ([]annotation.ID, error) {
	ids := s.Members()
	if index < 1 || index > len(ids) {
		return nil, fmt.Errorf("summary: snippet %q has no entry %d (1..%d)", s.inst.Name, index, len(ids))
	}
	return []annotation.ID{ids[index-1]}, nil
}

// ZoomLabels implements Object.
func (s *snippetObject) ZoomLabels() []string {
	ids := s.Members()
	out := make([]string, len(ids))
	for i, id := range ids {
		e := s.entries[id]
		label := e.Title
		if label == "" {
			label = e.Snippet
		}
		out[i] = label
	}
	return out
}

// Render implements Object.
func (s *snippetObject) Render() string {
	var b strings.Builder
	b.WriteString(s.inst.Name)
	b.WriteString(" [")
	for i, id := range s.Members() {
		if i > 0 {
			b.WriteString(", ")
		}
		e := s.entries[id]
		if e.Title != "" {
			fmt.Fprintf(&b, "%q: %q", e.Title, e.Snippet)
		} else {
			fmt.Fprintf(&b, "%q", e.Snippet)
		}
	}
	b.WriteString("]")
	return b.String()
}

// ApproxBytes implements Object.
func (s *snippetObject) ApproxBytes() int {
	n := 0
	for _, e := range s.entries {
		n += 8 + len(e.Title) + len(e.Snippet)
	}
	return n
}

// Equal implements Object.
func (s *snippetObject) Equal(other Object) bool {
	o, ok := other.(*snippetObject)
	if !ok || o.inst.Name != s.inst.Name || len(o.entries) != len(s.entries) {
		return false
	}
	for id, e := range s.entries {
		if oe, ok := o.entries[id]; !ok || oe != e {
			return false
		}
	}
	return true
}
