package summary

import (
	"encoding/json"
	"testing"
)

func TestParseTypeName(t *testing.T) {
	for _, good := range []string{"Classifier", "Cluster", "Snippet"} {
		if _, err := ParseTypeName(good); err != nil {
			t.Errorf("ParseTypeName(%q) = %v", good, err)
		}
	}
	if _, err := ParseTypeName("Histogram"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestInstanceConstructorsValidate(t *testing.T) {
	if _, err := NewClassifierInstance("", birdModel(t)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewClassifierInstance("c", nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewClusterInstance("c", 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewClusterInstance("c", 1.5); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := NewClusterInstance("", 0.5); err == nil {
		t.Error("empty cluster name accepted")
	}
	if _, err := NewSnippetInstance("s", 0); err == nil {
		t.Error("zero sentences accepted")
	}
	if _, err := NewSnippetInstance("", 2); err == nil {
		t.Error("empty snippet name accepted")
	}
}

func TestInstancePropertiesDefaults(t *testing.T) {
	cls := classifierInstance(t, "c")
	if !cls.Props.SummarizeOnce() {
		t.Error("classifier instance should be summarize-once by default")
	}
	p := Properties{AnnotationInvariant: true, DataInvariant: false}
	if p.SummarizeOnce() {
		t.Error("half-invariant properties reported summarize-once")
	}
}

func TestSummarizeDigests(t *testing.T) {
	cls := classifierInstance(t, "c")
	d := cls.Summarize(ann(1, "observed feeding on stonewort"))
	if d.Ann != 1 {
		t.Errorf("digest id = %d", d.Ann)
	}
	if got := cls.Classifier.Labels()[d.LabelIndex]; got != "Behavior" {
		t.Errorf("digest label = %q", got)
	}

	clu := clusterInstance(t, "s")
	d = clu.Summarize(ann(2, "observed feeding on stonewort near shore"))
	if len(d.Vector) == 0 || len(d.Vector) > clu.CentroidTerms {
		t.Errorf("cluster digest vector size = %d", len(d.Vector))
	}
	if d.Preview == "" {
		t.Error("cluster digest missing preview")
	}

	snp := snippetInstance(t, "t")
	d = snp.Summarize(docAnn(3, "Title", wikiDoc))
	if !d.HasDoc || d.Snippet == "" || d.Title != "Title" {
		t.Errorf("snippet digest = %+v", d)
	}
	d = snp.Summarize(ann(4, "no document"))
	if d.HasDoc {
		t.Error("plain annotation digest claims a document")
	}
}

func TestSummarizeCallCounter(t *testing.T) {
	cls := classifierInstance(t, "c")
	if cls.SummarizeCalls() != 0 {
		t.Fatal("fresh instance has nonzero calls")
	}
	for i := 0; i < 5; i++ {
		cls.Summarize(ann(1, "text"))
	}
	if cls.SummarizeCalls() != 5 {
		t.Errorf("SummarizeCalls = %d", cls.SummarizeCalls())
	}
	cls.ResetStats()
	if cls.SummarizeCalls() != 0 {
		t.Error("ResetStats did not zero the counter")
	}
}

func TestInstanceSerializationRoundTrip(t *testing.T) {
	for _, in := range []*Instance{
		classifierInstance(t, "ClassBird1"),
		clusterInstance(t, "SimCluster"),
		snippetInstance(t, "TextSummary1"),
	} {
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		var back Instance
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if back.Name != in.Name || back.Type != in.Type || back.Props != in.Props {
			t.Errorf("%s: round trip lost config: %s/%s/%+v", in.Name, back.Name, back.Type, back.Props)
		}
		// A restored instance must produce working objects.
		obj := back.NewObject()
		switch back.Type {
		case TypeClassifier:
			obj.Add(back.Summarize(ann(1, "observed feeding on stonewort")))
		case TypeCluster:
			obj.Add(back.Summarize(ann(1, behaviorText(1))))
		case TypeSnippet:
			obj.Add(back.Summarize(docAnn(1, "T", wikiDoc)))
		}
		if obj.Len() != 1 {
			t.Errorf("%s: restored instance object Len = %d", in.Name, obj.Len())
		}
	}
}

func TestInstanceUnmarshalRejectsBadConfigs(t *testing.T) {
	var in Instance
	cases := []string{
		`{"name":"x","type":"Histogram"}`,
		`{"name":"x","type":"Classifier"}`, // classifier without model
		`not json`,
	}
	for _, bad := range cases {
		if err := json.Unmarshal([]byte(bad), &in); err == nil {
			t.Errorf("bad config %q accepted", bad)
		}
	}
}

func TestClusterDigestVectorPruned(t *testing.T) {
	clu := clusterInstance(t, "s")
	long := "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda " +
		"mu nu xi omicron pi rho sigma tau upsilon"
	d := clu.Summarize(ann(1, long))
	if len(d.Vector) > clu.CentroidTerms {
		t.Errorf("digest vector has %d terms, cap %d", len(d.Vector), clu.CentroidTerms)
	}
}
