package summary

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"insightnotes/internal/annotation"
)

func TestClusterGroupsSimilarAnnotations(t *testing.T) {
	in := clusterInstance(t, "SimCluster")
	obj := in.NewObject().(*clusterObject)
	// Two thematic families: feeding behaviour vs disease.
	for i := 1; i <= 3; i++ {
		obj.Add(in.Summarize(ann(annotation.ID(i), behaviorText(i))))
	}
	for i := 4; i <= 6; i++ {
		obj.Add(in.Summarize(ann(annotation.ID(i), diseaseText(i))))
	}
	if obj.Groups() != 2 {
		t.Fatalf("Groups = %d, want 2 (render: %s)", obj.Groups(), obj.Render())
	}
	if obj.Len() != 6 {
		t.Errorf("Len = %d", obj.Len())
	}
	// Group 1 (min id 1) holds the behaviour annotations.
	ids, err := obj.Zoom(1)
	if err != nil || len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("Zoom(1) = %v, %v", ids, err)
	}
	ids, err = obj.Zoom(2)
	if err != nil || len(ids) != 3 || ids[0] != 4 {
		t.Errorf("Zoom(2) = %v, %v", ids, err)
	}
	if _, err := obj.Zoom(3); err == nil {
		t.Error("Zoom(3) succeeded")
	}
}

func TestClusterDissimilarAnnotationsSeparate(t *testing.T) {
	in := clusterInstance(t, "S")
	obj := in.NewObject().(*clusterObject)
	obj.Add(in.Summarize(ann(1, "wingspan measurement photographs")))
	obj.Add(in.Summarize(ann(2, "migration route tracking data")))
	obj.Add(in.Summarize(ann(3, "nesting site soil composition")))
	if obj.Groups() != 3 {
		t.Errorf("Groups = %d, want 3 distinct", obj.Groups())
	}
}

// TestClusterRepReElectionOnRemove reproduces Figure 2's "A5 representative
// replacing the dropped A2 representative".
func TestClusterRepReElectionOnRemove(t *testing.T) {
	in := clusterInstance(t, "SimCluster")
	obj := in.NewObject().(*clusterObject)
	for i := 1; i <= 4; i++ {
		obj.Add(in.Summarize(ann(annotation.ID(i), behaviorText(i))))
	}
	if obj.Groups() != 1 {
		t.Fatalf("expected one group, got %d", obj.Groups())
	}
	rep := obj.Representatives()[0]
	// Drop the representative; a new one must be elected from survivors.
	obj.Remove(func(id annotation.ID) bool { return id == rep })
	if obj.Len() != 3 {
		t.Fatalf("Len = %d", obj.Len())
	}
	newRep := obj.Representatives()[0]
	if newRep == rep {
		t.Fatalf("representative %d not replaced", rep)
	}
	found := false
	for _, id := range obj.Members() {
		if id == newRep {
			found = true
		}
	}
	if !found {
		t.Errorf("new representative %d is not a member", newRep)
	}
}

func TestClusterRemoveDropsEmptyGroups(t *testing.T) {
	in := clusterInstance(t, "S")
	obj := in.NewObject().(*clusterObject)
	obj.Add(in.Summarize(ann(1, behaviorText(1))))
	obj.Add(in.Summarize(ann(2, diseaseText(2))))
	obj.Remove(func(id annotation.ID) bool { return id == 1 })
	if obj.Groups() != 1 || obj.Len() != 1 {
		t.Errorf("Groups = %d, Len = %d", obj.Groups(), obj.Len())
	}
	obj.Remove(func(annotation.ID) bool { return true })
	if obj.Groups() != 0 || obj.Len() != 0 {
		t.Errorf("after removing all: Groups = %d, Len = %d", obj.Groups(), obj.Len())
	}
}

func TestClusterMergeOverlappingGroupsCombine(t *testing.T) {
	in := clusterInstance(t, "SimCluster")
	left := in.NewObject().(*clusterObject)
	right := in.NewObject().(*clusterObject)
	// Annotation 3 lives on both sides (attached to both joined tuples).
	for i := 1; i <= 3; i++ {
		left.Add(in.Summarize(ann(annotation.ID(i), behaviorText(i))))
	}
	right.Add(in.Summarize(ann(3, behaviorText(3))))
	right.Add(in.Summarize(ann(4, behaviorText(4))))
	// A dissimilar group on the right propagates separately.
	right.Add(in.Summarize(ann(9, "unrelated telescope calibration note")))
	left.MergeFrom(right)
	if left.Len() != 5 {
		t.Fatalf("merged Len = %d, want 5 (shared annotation 3 deduplicated)", left.Len())
	}
	if left.Groups() != 2 {
		t.Fatalf("merged Groups = %d, want 2: %s", left.Groups(), left.Render())
	}
	ids, _ := left.Zoom(1)
	if len(ids) != 4 {
		t.Errorf("combined group = %v, want the 4 behaviour annotations", ids)
	}
}

func TestClusterMergeTransitiveBridge(t *testing.T) {
	in := clusterInstance(t, "S")
	left := in.NewObject().(*clusterObject)
	// Two artificially separate groups on the left (added as dissimilar).
	left.Add(Digest{Ann: 1, Vector: vec("alpha", 3), Preview: "a1"})
	left.Add(Digest{Ann: 2, Vector: vec("beta", 3), Preview: "a2"})
	if left.Groups() != 2 {
		t.Fatalf("setup: Groups = %d", left.Groups())
	}
	// The right side has one group containing both 1 and 2 → bridge.
	right := in.NewObject().(*clusterObject)
	right.Add(Digest{Ann: 1, Vector: vec("alpha", 3), Preview: "a1"})
	g := right.memberGroup[1]
	g.members[2] = struct{}{}
	g.members[3] = struct{}{}
	g.addCandidate(repCandidate{id: 2, preview: "a2", sim: 0.5})
	g.addCandidate(repCandidate{id: 3, preview: "a3", sim: 0.4})
	g.electRep()
	right.memberGroup[2] = g
	right.memberGroup[3] = g

	left.MergeFrom(right)
	if left.Groups() != 1 {
		t.Fatalf("bridge merge Groups = %d, want 1: %s", left.Groups(), left.Render())
	}
	if left.Len() != 3 {
		t.Errorf("bridge merge Len = %d", left.Len())
	}
}

// vec builds a trivial vector around one term for synthetic digests.
func vec(term string, w float64) map[string]float64 {
	return map[string]float64{term: w}
}

// TestClusterMergeCommutativeAssociativeProperty verifies the canonical
// member-overlap merge semantics behind the plan-equivalence theorems:
// merging base objects in any order yields Equal results.
func TestClusterMergeCommutativeAssociativeProperty(t *testing.T) {
	in := clusterInstance(t, "S")
	texts := []string{
		behaviorText(1), behaviorText(2), diseaseText(1), diseaseText(2),
		"wing anatomy measurement notes", behaviorText(3),
	}
	mkObj := func(ids []annotation.ID) *clusterObject {
		o := in.NewObject().(*clusterObject)
		for _, id := range ids {
			o.Add(in.Summarize(ann(id, texts[int(id)%len(texts)])))
		}
		return o
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Three base objects with overlapping id ranges.
		var sets [3][]annotation.ID
		for s := range sets {
			for i := 0; i < 5; i++ {
				sets[s] = append(sets[s], annotation.ID(r.Intn(10)+1))
			}
		}
		// Order 1: ((a ⊎ b) ⊎ c)
		o1 := mkObj(sets[0])
		o1.MergeFrom(mkObj(sets[1]))
		o1.MergeFrom(mkObj(sets[2]))
		// Order 2: (a ⊎ (b ⊎ c))
		bc := mkObj(sets[1])
		bc.MergeFrom(mkObj(sets[2]))
		o2 := mkObj(sets[0])
		o2.MergeFrom(bc)
		// Order 3: ((c ⊎ a) ⊎ b)
		o3 := mkObj(sets[2])
		o3.MergeFrom(mkObj(sets[0]))
		o3.MergeFrom(mkObj(sets[1]))
		return o1.Equal(o2) && o1.Equal(o3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClusterMergeBySimilarity(t *testing.T) {
	in := clusterInstance(t, "S")
	in.MergeBySimilarity = true
	left := in.NewObject().(*clusterObject)
	right := in.NewObject().(*clusterObject)
	// Disjoint annotation ids but near-identical content: similarity merge
	// combines the groups (Figure 2's A1+B5 behaviour).
	left.Add(in.Summarize(ann(1, behaviorText(1))))
	left.Add(in.Summarize(ann(2, behaviorText(2))))
	right.Add(in.Summarize(ann(11, behaviorText(11))))
	right.Add(in.Summarize(ann(12, behaviorText(12))))
	left.MergeFrom(right)
	if left.Groups() != 1 {
		t.Errorf("similarity merge Groups = %d, want 1: %s", left.Groups(), left.Render())
	}
	if left.Len() != 4 {
		t.Errorf("Len = %d", left.Len())
	}
}

func TestClusterCloneIndependence(t *testing.T) {
	in := clusterInstance(t, "S")
	obj := in.NewObject().(*clusterObject)
	obj.Add(in.Summarize(ann(1, behaviorText(1))))
	cp := obj.Clone().(*clusterObject)
	cp.Add(in.Summarize(ann(2, diseaseText(2))))
	if obj.Len() != 1 || cp.Len() != 2 {
		t.Errorf("clone not independent: %d, %d", obj.Len(), cp.Len())
	}
	if !obj.Equal(obj.Clone()) {
		t.Error("object not Equal to its clone")
	}
	// Mutating the clone's group must not affect the original's centroid.
	cp.Remove(func(annotation.ID) bool { return true })
	if obj.Len() != 1 || obj.Groups() != 1 {
		t.Error("clearing the clone damaged the original")
	}
}

func TestClusterRenderAndZoomLabels(t *testing.T) {
	in := clusterInstance(t, "SimCluster")
	obj := in.NewObject()
	obj.Add(in.Summarize(ann(1, "found eating stonewort by the lake")))
	got := obj.Render()
	if !strings.HasPrefix(got, "SimCluster {[A1 ") || !strings.Contains(got, "×1") {
		t.Errorf("Render = %q", got)
	}
	labels := obj.ZoomLabels()
	if len(labels) != 1 || !strings.Contains(labels[0], "stonewort") {
		t.Errorf("ZoomLabels = %v", labels)
	}
}

func TestClusterDuplicateAddIgnored(t *testing.T) {
	in := clusterInstance(t, "S")
	obj := in.NewObject()
	d := in.Summarize(ann(5, behaviorText(5)))
	obj.Add(d)
	obj.Add(d)
	if obj.Len() != 1 {
		t.Errorf("Len = %d", obj.Len())
	}
}

func TestClusterRepFallbackWhenAllCandidatesDropped(t *testing.T) {
	in := clusterInstance(t, "S")
	obj := in.NewObject().(*clusterObject)
	// One similar group of 6 members: candidates retain only the top 3.
	for i := 1; i <= 6; i++ {
		obj.Add(in.Summarize(ann(annotation.ID(i), behaviorText(i))))
	}
	if obj.Groups() != 1 {
		t.Fatalf("groups = %d", obj.Groups())
	}
	g := obj.sortedGroups()[0]
	if len(g.candidates) != repCandidates {
		t.Fatalf("candidates = %d, want %d", len(g.candidates), repCandidates)
	}
	// Drop every candidate: the representative falls back to the smallest
	// surviving member with a placeholder preview.
	dropped := map[annotation.ID]bool{}
	for _, c := range g.candidates {
		dropped[c.id] = true
	}
	obj.Remove(func(id annotation.ID) bool { return dropped[id] })
	if obj.Len() != 6-len(dropped) {
		t.Fatalf("Len = %d", obj.Len())
	}
	g = obj.sortedGroups()[0]
	if _, stillMember := g.members[g.rep]; !stillMember {
		t.Fatalf("rep %d is not a member", g.rep)
	}
	if g.rep != g.minID() {
		t.Errorf("fallback rep = %d, want min member %d", g.rep, g.minID())
	}
	if !strings.Contains(g.repPreview, "(annotation") {
		t.Errorf("fallback preview = %q", g.repPreview)
	}
}

func TestClusterCandidateOrderingAndDedup(t *testing.T) {
	g := newClusterGroup()
	g.addCandidate(repCandidate{id: 3, preview: "c", sim: 0.5})
	g.addCandidate(repCandidate{id: 1, preview: "a", sim: 0.9})
	g.addCandidate(repCandidate{id: 2, preview: "b", sim: 0.9}) // tie: lower id first
	g.addCandidate(repCandidate{id: 1, preview: "dup", sim: 0.9})
	g.addCandidate(repCandidate{id: 4, preview: "d", sim: 0.1}) // falls off the top-3
	if len(g.candidates) != repCandidates {
		t.Fatalf("candidates = %d", len(g.candidates))
	}
	if g.candidates[0].id != 1 || g.candidates[1].id != 2 || g.candidates[2].id != 3 {
		t.Errorf("order = %v", g.candidates)
	}
	if g.candidates[0].preview != "a" {
		t.Errorf("dedup kept %q", g.candidates[0].preview)
	}
}

func TestClusterMinIDCacheUnderChurn(t *testing.T) {
	in := clusterInstance(t, "S")
	obj := in.NewObject().(*clusterObject)
	for i := 10; i >= 1; i-- { // descending insert order
		obj.Add(in.Summarize(ann(annotation.ID(i), behaviorText(1))))
	}
	g := obj.sortedGroups()[0]
	if g.minID() != 1 {
		t.Fatalf("min = %d", g.minID())
	}
	// Removing the minimum forces a recompute.
	obj.Remove(func(id annotation.ID) bool { return id == 1 })
	if g.minID() != 2 {
		t.Errorf("min after removal = %d", g.minID())
	}
	// Removing a non-minimum leaves the cache intact.
	obj.Remove(func(id annotation.ID) bool { return id == 7 })
	if g.minID() != 2 {
		t.Errorf("min after non-min removal = %d", g.minID())
	}
}
