package summary

import (
	"fmt"
	"sort"
	"strings"

	"insightnotes/internal/annotation"
	"insightnotes/internal/textmining"
)

// repCandidates is the number of representative candidates retained per
// group so that dropped representatives can be replaced without consulting
// the raw annotations.
const repCandidates = 3

// clusterObject summarizes a tuple's annotations as groups of similar
// content, reporting one elected representative per group — the paper's
// SimCluster-style objects.
//
// The object is deliberately compact (the E1 compression measurements rest
// on it): per member it retains only the annotation id; per group it keeps
// one pruned centroid vector and a short list of representative
// *candidates* (id, display preview, and similarity-to-centroid recorded at
// insertion time). That is enough for every query-time operation:
//
//   - Remove (projection curation) deletes members and re-elects the
//     representative — the next surviving candidate, or deterministically
//     the smallest surviving member id when every candidate dropped (the
//     paper's "A5 replacing the dropped A2" behaviour). The centroid is
//     left as recorded at maintenance time; it only steers maintenance-time
//     assignment and optional similarity-based merging, both tolerant of
//     that approximation.
//   - MergeFrom combines member-overlapping groups transitively (the
//     connected-component join of the two partitions), which is
//     independent of merge order; candidate lists merge by taking the top
//     candidates of the union, which is likewise order-independent. These
//     two facts are what make summary propagation identical across
//     equivalent plans (the Theorem 1&2 property, experiment E3).
type clusterObject struct {
	inst   *Instance
	groups []*clusterGroup
	// member → its group, the double-count guard and overlap detector.
	memberGroup map[annotation.ID]*clusterGroup
}

// repCandidate is one potential representative retained with its preview.
type repCandidate struct {
	id      annotation.ID
	preview string
	sim     float64
}

type clusterGroup struct {
	members    map[annotation.ID]struct{}
	candidates []repCandidate // sorted by (sim desc, id asc), len ≤ repCandidates
	centroid   textmining.Vector
	rep        annotation.ID
	repPreview string
	// min caches the smallest member id (the canonical group sort key);
	// maintained on every membership change to avoid rescanning the
	// member set during sorting, rendering, and zooming.
	min    annotation.ID
	hasMin bool
}

func newClusterGroup() *clusterGroup {
	return &clusterGroup{
		members:  make(map[annotation.ID]struct{}),
		centroid: textmining.NewVector(),
	}
}

func newClusterObject(in *Instance) *clusterObject {
	return &clusterObject{
		inst:        in,
		memberGroup: make(map[annotation.ID]*clusterGroup),
	}
}

// addCandidate inserts c into the sorted candidate list, keeping the top
// repCandidates entries.
func (g *clusterGroup) addCandidate(c repCandidate) {
	g.candidates = append(g.candidates, c)
	sortCandidates(g.candidates)
	g.candidates = dedupCandidates(g.candidates)
	if len(g.candidates) > repCandidates {
		g.candidates = g.candidates[:repCandidates]
	}
}

func sortCandidates(cs []repCandidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].sim != cs[j].sim {
			return cs[i].sim > cs[j].sim
		}
		return cs[i].id < cs[j].id
	})
}

func dedupCandidates(cs []repCandidate) []repCandidate {
	seen := make(map[annotation.ID]bool, len(cs))
	out := cs[:0]
	for _, c := range cs {
		if !seen[c.id] {
			seen[c.id] = true
			out = append(out, c)
		}
	}
	return out
}

// electRep recomputes the representative: the best surviving candidate, or
// the smallest member id (with a placeholder preview) when every candidate
// was curated away. Must be called after any membership change.
func (g *clusterGroup) electRep() {
	for _, c := range g.candidates {
		if _, ok := g.members[c.id]; ok {
			g.rep = c.id
			g.repPreview = c.preview
			return
		}
	}
	g.rep = g.minID()
	g.repPreview = fmt.Sprintf("(annotation %d)", g.rep)
}

// pruneCandidates drops candidates that are no longer members.
func (g *clusterGroup) pruneCandidates() {
	out := g.candidates[:0]
	for _, c := range g.candidates {
		if _, ok := g.members[c.id]; ok {
			out = append(out, c)
		}
	}
	g.candidates = out
}

// addMember inserts id, maintaining the cached minimum.
func (g *clusterGroup) addMember(id annotation.ID) {
	g.members[id] = struct{}{}
	if !g.hasMin || id < g.min {
		g.min, g.hasMin = id, true
	}
}

// removeMember deletes id, recomputing the cached minimum only when the
// minimum itself was removed.
func (g *clusterGroup) removeMember(id annotation.ID) {
	delete(g.members, id)
	if g.hasMin && id == g.min {
		g.recomputeMin()
	}
}

func (g *clusterGroup) recomputeMin() {
	g.hasMin = false
	for id := range g.members {
		if !g.hasMin || id < g.min {
			g.min, g.hasMin = id, true
		}
	}
}

// minID returns the smallest member id, the canonical group sort key.
func (g *clusterGroup) minID() annotation.ID { return g.min }

// Instance implements Object.
func (c *clusterObject) Instance() *Instance { return c.inst }

// Contains implements Object.
func (c *clusterObject) Contains(id annotation.ID) bool {
	_, ok := c.memberGroup[id]
	return ok
}

// Add implements Object: online stream clustering in the style of the
// paper's ref [23] — the annotation joins the most similar existing group
// when its centroid similarity reaches the instance threshold, otherwise it
// founds a new group. The digest's vector updates the group centroid and is
// then discarded; only the member id (and possibly a representative
// candidacy) is retained.
func (c *clusterObject) Add(d Digest) {
	if c.Contains(d.Ann) {
		return
	}
	var best *clusterGroup
	bestSim := 0.0
	for _, g := range c.sortedGroups() {
		sim := textmining.Cosine(g.centroid, d.Vector)
		if sim >= c.inst.SimThreshold && sim > bestSim+1e-12 {
			best, bestSim = g, sim
		}
	}
	if best == nil {
		best = newClusterGroup()
		c.groups = append(c.groups, best)
	}
	best.centroid.Add(d.Vector)
	best.centroid.Prune(c.inst.CentroidTerms * 2)
	sim := textmining.Cosine(best.centroid, d.Vector)
	best.addMember(d.Ann)
	best.addCandidate(repCandidate{id: d.Ann, preview: d.Preview, sim: sim})
	best.electRep()
	c.memberGroup[d.Ann] = best
}

// Remove implements Object: drops members, re-elects representatives, and
// discards emptied groups. Groups are not re-split — projection curates,
// it does not re-cluster (§2.1).
func (c *clusterObject) Remove(drop func(annotation.ID) bool) {
	changed := map[*clusterGroup]bool{}
	for id, g := range c.memberGroup {
		if !drop(id) {
			continue
		}
		g.removeMember(id)
		delete(c.memberGroup, id)
		changed[g] = true
	}
	if len(changed) == 0 {
		return
	}
	kept := c.groups[:0]
	for _, g := range c.groups {
		if len(g.members) == 0 {
			continue
		}
		if changed[g] {
			g.pruneCandidates()
			g.electRep()
		}
		kept = append(kept, g)
	}
	c.groups = kept
}

// MergeFrom implements Object. Groups from both sides that share a member
// annotation are combined — including transitively, so the result is the
// connected-component join of the two partitions and therefore independent
// of merge order. When the instance sets MergeBySimilarity, non-overlapping
// incoming groups whose centroid is close enough to an existing group are
// also combined (the Figure 2 A1+B5 behaviour; best-effort under plan
// reordering, see the type comment).
func (c *clusterObject) MergeFrom(other Object) {
	o, ok := other.(*clusterObject)
	if !ok || o.inst.Name != c.inst.Name {
		panic(fmt.Sprintf("summary: merge of incompatible objects (instance %q)", c.inst.Name))
	}
	for _, og := range o.sortedGroups() {
		// Find every local group sharing a member with og.
		overlapSet := map[*clusterGroup]bool{}
		for id := range og.members {
			if g, ok := c.memberGroup[id]; ok {
				overlapSet[g] = true
			}
		}
		var target *clusterGroup
		switch {
		case len(overlapSet) > 0:
			target = c.combineGroups(overlapSet)
		case c.inst.MergeBySimilarity:
			bestSim := 0.0
			for _, g := range c.sortedGroups() {
				sim := textmining.Cosine(g.centroid, og.centroid)
				if sim >= c.inst.SimThreshold && sim > bestSim+1e-12 {
					target, bestSim = g, sim
				}
			}
		}
		if target == nil {
			target = newClusterGroup()
			c.groups = append(c.groups, target)
		}
		added := false
		for id := range og.members {
			if c.Contains(id) {
				continue // already counted (possibly in target itself)
			}
			target.addMember(id)
			c.memberGroup[id] = target
			added = true
		}
		if added {
			target.centroid.Add(og.centroid)
		}
		target.candidates = append(target.candidates, og.candidates...)
		sortCandidates(target.candidates)
		target.candidates = dedupCandidates(target.candidates)
		if len(target.candidates) > repCandidates {
			target.candidates = target.candidates[:repCandidates]
		}
		target.pruneCandidates()
		target.electRep()
	}
}

// combineGroups fuses a set of local groups into one (bridged by an
// incoming group) and returns the fused group.
func (c *clusterObject) combineGroups(set map[*clusterGroup]bool) *clusterGroup {
	// Deterministic fuse order: ascending min member id.
	groups := make([]*clusterGroup, 0, len(set))
	for g := range set {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].minID() < groups[j].minID() })
	target := groups[0]
	for _, g := range groups[1:] {
		for id := range g.members {
			target.addMember(id)
			c.memberGroup[id] = target
		}
		target.centroid.Add(g.centroid)
		target.candidates = append(target.candidates, g.candidates...)
	}
	if len(groups) > 1 {
		sortCandidates(target.candidates)
		target.candidates = dedupCandidates(target.candidates)
		if len(target.candidates) > repCandidates {
			target.candidates = target.candidates[:repCandidates]
		}
		kept := c.groups[:0]
		for _, g := range c.groups {
			if g == target || !set[g] {
				kept = append(kept, g)
			}
		}
		c.groups = kept
		target.electRep()
	}
	return target
}

// Clone implements Object.
func (c *clusterObject) Clone() Object {
	cp := &clusterObject{
		inst:        c.inst,
		memberGroup: make(map[annotation.ID]*clusterGroup, len(c.memberGroup)),
	}
	for _, g := range c.groups {
		ng := &clusterGroup{
			members:  make(map[annotation.ID]struct{}, len(g.members)),
			centroid: textmining.NewVector(),
		}
		for id := range g.members {
			ng.members[id] = struct{}{}
		}
		ng.min, ng.hasMin = g.min, g.hasMin
		ng.candidates = append([]repCandidate(nil), g.candidates...)
		ng.centroid = g.centroid.Clone()
		ng.rep = g.rep
		ng.repPreview = g.repPreview
		cp.groups = append(cp.groups, ng)
		for id := range ng.members {
			cp.memberGroup[id] = ng
		}
	}
	return cp
}

// sortedGroups returns the groups in canonical order (ascending minimum
// member id) — the order used for rendering and 1-based zoom indexes.
func (c *clusterObject) sortedGroups() []*clusterGroup {
	gs := append([]*clusterGroup(nil), c.groups...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].minID() < gs[j].minID() })
	return gs
}

// Members implements Object.
func (c *clusterObject) Members() []annotation.ID { return sortedIDs(mapKeys(c.memberGroup)) }

// Len implements Object.
func (c *clusterObject) Len() int { return len(c.memberGroup) }

// Groups returns the number of groups.
func (c *clusterObject) Groups() int { return len(c.groups) }

// Representatives returns the representative annotation id of each group in
// canonical order.
func (c *clusterObject) Representatives() []annotation.ID {
	gs := c.sortedGroups()
	out := make([]annotation.ID, len(gs))
	for i, g := range gs {
		out[i] = g.rep
	}
	return out
}

// Zoom implements Object: index is the 1-based group position in canonical
// order; the result is the group's full membership (the paper's "retrieve
// all annotations in the cluster represented by annotation A2").
func (c *clusterObject) Zoom(index int) ([]annotation.ID, error) {
	gs := c.sortedGroups()
	if index < 1 || index > len(gs) {
		return nil, fmt.Errorf("summary: cluster %q has no group %d (1..%d)", c.inst.Name, index, len(gs))
	}
	return sortedIDs(mapKeys(gs[index-1].members)), nil
}

// ZoomLabels implements Object.
func (c *clusterObject) ZoomLabels() []string {
	gs := c.sortedGroups()
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = fmt.Sprintf("%q ×%d", g.repPreview, len(g.members))
	}
	return out
}

// Render implements Object, e.g.
// `SimCluster {[A12 "found eating stonewort…" ×5] [A3 "size seems wrong" ×1]}`.
func (c *clusterObject) Render() string {
	var b strings.Builder
	b.WriteString(c.inst.Name)
	b.WriteString(" {")
	for i, g := range c.sortedGroups() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "[A%d %q ×%d]", g.rep, g.repPreview, len(g.members))
	}
	b.WriteString("}")
	return b.String()
}

// ApproxBytes implements Object.
func (c *clusterObject) ApproxBytes() int {
	n := 0
	for _, g := range c.groups {
		n += 8 + 8*len(g.members) // rep + member ids
		for _, cand := range g.candidates {
			n += 16 + len(cand.preview)
		}
		for t := range g.centroid {
			n += len(t) + 8
		}
	}
	return n
}

// Equal implements Object: identical grouping of identical members with
// identical representatives.
func (c *clusterObject) Equal(other Object) bool {
	o, ok := other.(*clusterObject)
	if !ok || o.inst.Name != c.inst.Name {
		return false
	}
	ga, gb := c.sortedGroups(), o.sortedGroups()
	if len(ga) != len(gb) {
		return false
	}
	for i := range ga {
		if ga[i].rep != gb[i].rep || len(ga[i].members) != len(gb[i].members) {
			return false
		}
		for id := range ga[i].members {
			if _, ok := gb[i].members[id]; !ok {
				return false
			}
		}
	}
	return true
}
