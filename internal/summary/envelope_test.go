package summary

import (
	"strings"
	"testing"

	"insightnotes/internal/annotation"
)

// buildTupleEnvelope assembles an envelope like tuple r of Figure 2: a
// classifier, a cluster, and a snippet instance over annotations covering
// different columns of a 4-column tuple.
func buildTupleEnvelope(t *testing.T) (*Envelope, *Instance, *Instance, *Instance) {
	t.Helper()
	cls := classifierInstance(t, "ClassBird1")
	clu := clusterInstance(t, "SimCluster")
	snp := snippetInstance(t, "TextSummary1")
	e := NewEnvelope()
	// Annotations 1-2 on columns {0,1}, annotation 3 on column 2 only,
	// annotation 4 (a document) on column 3 only.
	addAnn(e, cls, ann(1, behaviorText(1)), annotation.Col(0).Union(annotation.Col(1)))
	addAnn(e, clu, ann(1, behaviorText(1)), annotation.Col(0).Union(annotation.Col(1)))
	addAnn(e, cls, ann(2, diseaseText(2)), annotation.Col(1))
	addAnn(e, clu, ann(2, diseaseText(2)), annotation.Col(1))
	addAnn(e, cls, ann(3, behaviorText(3)), annotation.Col(2))
	addAnn(e, clu, ann(3, behaviorText(3)), annotation.Col(2))
	addAnn(e, snp, docAnn(4, "Wikipedia article", wikiDoc), annotation.Col(3))
	return e, cls, clu, snp
}

func TestEnvelopeAddAndAccessors(t *testing.T) {
	e, _, _, _ := buildTupleEnvelope(t)
	if e.IsEmpty() {
		t.Fatal("envelope empty")
	}
	if got := e.Annotations(); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("Annotations = %v", got)
	}
	names := e.InstanceNames()
	if len(names) != 3 || names[0] != "ClassBird1" || names[1] != "SimCluster" {
		t.Errorf("InstanceNames = %v", names)
	}
	if e.Object("ClassBird1") == nil || e.Object("missing") != nil {
		t.Error("Object lookup wrong")
	}
	if e.ApproxBytes() <= 0 {
		t.Error("ApproxBytes = 0")
	}
}

// TestEnvelopeProjectCuratesSummaries reproduces Figure 2 step 1: project
// out columns and eliminate the effect of their annotations from the
// summary objects.
func TestEnvelopeProjectCuratesSummaries(t *testing.T) {
	e, cls, _, _ := buildTupleEnvelope(t)
	// Keep columns 0 and 1 (project out 2 and 3): annotation 3 (col 2)
	// and document annotation 4 (col 3) must vanish.
	e.Project([]int{0, 1})
	if got := e.Annotations(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Annotations after project = %v", got)
	}
	co := e.Object("ClassBird1").(*classifierObject)
	bi := cls.Classifier.LabelIndex("Behavior")
	di := cls.Classifier.LabelIndex("Disease")
	if co.LabelCount(bi) != 1 || co.LabelCount(di) != 1 {
		t.Errorf("classifier counts after project: behavior=%d disease=%d",
			co.LabelCount(bi), co.LabelCount(di))
	}
	// The snippet object lost its only entry and disappears entirely.
	if e.Object("TextSummary1") != nil {
		t.Error("empty snippet object not removed")
	}
	// Coverage rebased to output ordinals.
	if e.Cover[1] != annotation.Col(0).Union(annotation.Col(1)) {
		t.Errorf("coverage of ann 1 = %v", e.Cover[1])
	}
	if e.Cover[2] != annotation.Col(1) {
		t.Errorf("coverage of ann 2 = %v", e.Cover[2])
	}
}

func TestEnvelopeProjectReorder(t *testing.T) {
	e, _, _, _ := buildTupleEnvelope(t)
	// Output = (col2, col0): annotation 3 (col 2) maps to output 0;
	// annotation 1 (cols 0,1) maps to output 1; annotation 2 (col 1) drops.
	e.Project([]int{2, 0})
	if e.Cover[3] != annotation.Col(0) {
		t.Errorf("ann 3 coverage = %v", e.Cover[3])
	}
	if e.Cover[1] != annotation.Col(1) {
		t.Errorf("ann 1 coverage = %v", e.Cover[1])
	}
	if _, ok := e.Cover[2]; ok {
		t.Error("ann 2 survived projection")
	}
}

func TestEnvelopeMergeShiftsRightCoverage(t *testing.T) {
	cls := classifierInstance(t, "ClassBird2")
	left := NewEnvelope()
	right := NewEnvelope()
	addAnn(left, cls, ann(1, behaviorText(1)), annotation.Col(0))
	addAnn(right, cls, ann(2, diseaseText(2)), annotation.Col(0))
	left.Merge(right, 2) // left tuple has 2 columns
	if left.Cover[1] != annotation.Col(0) {
		t.Errorf("left ann coverage = %v", left.Cover[1])
	}
	if left.Cover[2] != annotation.Col(2) {
		t.Errorf("right ann coverage = %v (must shift by left width)", left.Cover[2])
	}
	co := left.Object("ClassBird2")
	if co.Len() != 2 {
		t.Errorf("merged classifier Len = %d", co.Len())
	}
}

// TestEnvelopeMergeSharedAnnotationNotDoubleCounted is the Figure 2 rule:
// annotations attached to both joined tuples count once.
func TestEnvelopeMergeSharedAnnotationNotDoubleCounted(t *testing.T) {
	cls := classifierInstance(t, "ClassBird2")
	left := NewEnvelope()
	right := NewEnvelope()
	for i := annotation.ID(1); i <= 7; i++ {
		addAnn(left, cls, ann(i, behaviorText(int(i))), annotation.Col(0))
	}
	// Right shares annotations 3..7 and adds 8..9.
	for i := annotation.ID(3); i <= 9; i++ {
		addAnn(right, cls, ann(i, behaviorText(int(i))), annotation.Col(0))
	}
	left.Merge(right, 1)
	if got := left.Object("ClassBird2").Len(); got != 9 {
		t.Errorf("merged members = %d, want 9", got)
	}
	// Shared annotations cover columns on both sides.
	if left.Cover[3] != annotation.Col(0).Union(annotation.Col(1)) {
		t.Errorf("shared ann coverage = %v", left.Cover[3])
	}
}

func TestEnvelopeMergeDisjointInstancesPropagate(t *testing.T) {
	// Figure 2: ClassBird1 and TextSummary1 exist only on r and propagate
	// unchanged; ClassBird2 exists on both sides and merges.
	cb1 := classifierInstance(t, "ClassBird1")
	cb2 := classifierInstance(t, "ClassBird2")
	left := NewEnvelope()
	right := NewEnvelope()
	addAnn(left, cb1, ann(1, behaviorText(1)), annotation.Col(0))
	addAnn(left, cb2, ann(2, behaviorText(2)), annotation.Col(0))
	addAnn(right, cb2, ann(3, diseaseText(3)), annotation.Col(0))
	before := left.Object("ClassBird1").Render()
	left.Merge(right, 1)
	if left.Object("ClassBird1").Render() != before {
		t.Error("one-sided object changed during merge")
	}
	if left.Object("ClassBird2").Len() != 2 {
		t.Errorf("two-sided object Len = %d", left.Object("ClassBird2").Len())
	}
}

func TestEnvelopeCombine(t *testing.T) {
	cls := classifierInstance(t, "C")
	a := NewEnvelope()
	b := NewEnvelope()
	addAnn(a, cls, ann(1, behaviorText(1)), annotation.Col(0))
	addAnn(b, cls, ann(1, behaviorText(1)), annotation.Col(1))
	addAnn(b, cls, ann(2, diseaseText(2)), annotation.Col(0))
	a.Combine(b)
	if a.Cover[1] != annotation.Col(0).Union(annotation.Col(1)) {
		t.Errorf("combined coverage = %v", a.Cover[1])
	}
	if a.Object("C").Len() != 2 {
		t.Errorf("combined Len = %d", a.Object("C").Len())
	}
}

func TestEnvelopeCloneIndependence(t *testing.T) {
	e, cls, _, _ := buildTupleEnvelope(t)
	cp := e.Clone()
	if !e.Equal(cp) {
		t.Fatal("clone not Equal")
	}
	addAnn(cp, cls, ann(99, behaviorText(99)), annotation.Col(0))
	if e.Equal(cp) {
		t.Error("clone shares state")
	}
	if len(e.Cover) != 4 {
		t.Errorf("original coverage mutated: %d", len(e.Cover))
	}
}

func TestEnvelopeEqualDiffersOnCoverage(t *testing.T) {
	cls := classifierInstance(t, "C")
	a := NewEnvelope()
	b := NewEnvelope()
	addAnn(a, cls, ann(1, behaviorText(1)), annotation.Col(0))
	addAnn(b, cls, ann(1, behaviorText(1)), annotation.Col(1))
	if a.Equal(b) {
		t.Error("envelopes with different coverage compare Equal")
	}
}

func TestEnvelopeRenderDeterministic(t *testing.T) {
	e, _, _, _ := buildTupleEnvelope(t)
	r1 := e.Render()
	r2 := e.Clone().Render()
	if r1 != r2 {
		t.Errorf("Render nondeterministic:\n%s\nvs\n%s", r1, r2)
	}
	lines := strings.Split(r1, "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "ClassBird1") {
		t.Errorf("Render = %q", r1)
	}
}

// TestEnvelopeProjectBeforeMergeTheorem verifies the operational form of
// Theorems 1 & 2: projecting both inputs to the final column set before
// merging yields the same result regardless of merge order.
func TestEnvelopeProjectBeforeMergeTheorem(t *testing.T) {
	cls := classifierInstance(t, "C")
	clu := clusterInstance(t, "S")
	build := func(ids []annotation.ID, cols ...annotation.ColSet) *Envelope {
		e := NewEnvelope()
		for i, id := range ids {
			addAnn(e, cls, ann(id, behaviorText(int(id))), cols[i])
			addAnn(e, clu, ann(id, behaviorText(int(id))), cols[i])
		}
		return e
	}
	// Three tuple envelopes with 2 columns each; final output keeps
	// column 0 of each.
	e1 := build([]annotation.ID{1, 2}, annotation.Col(0), annotation.Col(1))
	e2 := build([]annotation.ID{2, 3}, annotation.Col(0), annotation.Col(1))
	e3 := build([]annotation.ID{3, 4}, annotation.Col(0).Union(annotation.Col(1)), annotation.Col(0))

	project := func(e *Envelope) *Envelope {
		cp := e.Clone()
		cp.Project([]int{0})
		return cp
	}
	// Plan A: ((e1 ⋈ e2) ⋈ e3) with curate-before-merge.
	a := project(e1)
	a.Merge(project(e2), 1)
	a.Merge(project(e3), 2)
	// Plan B: (e1 ⋈ (e2 ⋈ e3)).
	bc := project(e2)
	bc.Merge(project(e3), 1)
	b := project(e1)
	b.Merge(bc, 1)
	if !a.Equal(b) {
		t.Errorf("plan-equivalence violated:\nA: %s\nB: %s", a.Render(), b.Render())
	}
}
