package summary

import (
	"fmt"
	"testing"

	"insightnotes/internal/annotation"
)

// benchDigests precomputes n clusterable digests.
func benchDigests(b *testing.B, in *Instance, n int) []Digest {
	b.Helper()
	out := make([]Digest, n)
	themes := []string{
		"feeding on stonewort near the %d shore",
		"influenza infection observed in specimen %d",
		"wingspan measured at site %d",
	}
	for i := range out {
		a := annotation.Annotation{
			ID:   annotation.ID(i + 1),
			Text: fmt.Sprintf(themes[i%len(themes)], i),
		}
		out[i] = in.Summarize(a)
	}
	return out
}

func BenchmarkClusterAdd(b *testing.B) {
	in, err := NewClusterInstance("S", DefaultSimThreshold)
	if err != nil {
		b.Fatal(err)
	}
	digests := benchDigests(b, in, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := in.NewObject()
		for _, d := range digests[:64] {
			obj.Add(d)
		}
	}
}

func BenchmarkEnvelopeCloneBySize(b *testing.B) {
	in, err := NewClusterInstance("S", DefaultSimThreshold)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{16, 128, 512} {
		digests := benchDigests(b, in, n)
		env := NewEnvelope()
		for _, d := range digests {
			env.Add(in, d, annotation.WholeRow(4))
		}
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.Clone()
			}
		})
	}
}

func BenchmarkEnvelopeMergeDisjoint(b *testing.B) {
	in, err := NewClusterInstance("S", DefaultSimThreshold)
	if err != nil {
		b.Fatal(err)
	}
	digests := benchDigests(b, in, 256)
	left := NewEnvelope()
	right := NewEnvelope()
	for i, d := range digests {
		if i < 128 {
			left.Add(in, d, annotation.WholeRow(4))
		} else {
			right.Add(in, d, annotation.WholeRow(4))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := left.Clone()
		l.Merge(right, 4)
	}
}

func BenchmarkEnvelopeProjectHalf(b *testing.B) {
	in, err := NewClusterInstance("S", DefaultSimThreshold)
	if err != nil {
		b.Fatal(err)
	}
	digests := benchDigests(b, in, 256)
	env := NewEnvelope()
	for i, d := range digests {
		env.Add(in, d, annotation.Col(i%4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := env.Clone()
		e.Project([]int{0, 1})
	}
}
