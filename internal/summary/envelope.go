package summary

import (
	"sort"
	"strings"

	"insightnotes/internal/annotation"
)

// Envelope is the complete summary state carried by one tuple through the
// query pipeline: one summary object per linked instance, plus the column
// coverage of every contributing annotation.
//
// The coverage map is the compact device that lets the projection operator
// eliminate the effect of annotations attached only to projected-out
// columns "without accessing the raw annotations" (§2.1): coverage is a
// 64-bit set per annotation, not the annotation itself.
type Envelope struct {
	// Cover maps each contributing annotation to the columns of the
	// current tuple shape it covers.
	Cover map[annotation.ID]annotation.ColSet
	// Objects holds the summary objects keyed by instance name.
	Objects map[string]Object
}

// NewEnvelope returns an empty envelope.
func NewEnvelope() *Envelope {
	return &Envelope{
		Cover:   make(map[annotation.ID]annotation.ColSet),
		Objects: make(map[string]Object),
	}
}

// Add incorporates one annotation digest under instance in, covering cols
// of the tuple. The object is created on first use; a digest the object
// type ignores (e.g. a non-document annotation under a Snippet instance)
// leaves no empty object behind and contributes coverage only if the
// annotation is a member of at least one object.
func (e *Envelope) Add(in *Instance, d Digest, cols annotation.ColSet) {
	obj, existed := e.Objects[in.Name]
	if !existed {
		obj = in.NewObject()
	}
	obj.Add(d)
	if obj.Len() > 0 {
		e.Objects[in.Name] = obj
	}
	if obj.Contains(d.Ann) || e.memberAnywhere(d.Ann) {
		e.Cover[d.Ann] = e.Cover[d.Ann].Union(cols)
	}
}

// memberAnywhere reports whether id contributes to any object.
func (e *Envelope) memberAnywhere(id annotation.ID) bool {
	for _, obj := range e.Objects {
		if obj.Contains(id) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the envelope.
func (e *Envelope) Clone() *Envelope {
	cp := &Envelope{
		Cover:   make(map[annotation.ID]annotation.ColSet, len(e.Cover)),
		Objects: make(map[string]Object, len(e.Objects)),
	}
	for id, c := range e.Cover {
		cp.Cover[id] = c
	}
	for name, obj := range e.Objects {
		cp.Objects[name] = obj.Clone()
	}
	return cp
}

// IsEmpty reports whether the envelope carries no annotations.
func (e *Envelope) IsEmpty() bool { return len(e.Cover) == 0 }

// Project applies the paper's project-on-summary-objects operation for an
// output tuple consisting of the input columns keep (in output order):
// every annotation whose coverage misses all kept columns is eliminated
// from the coverage map and from every object (decrementing classifier
// counts, shrinking cluster groups and re-electing representatives,
// deleting snippets), and surviving coverage is rebased to output ordinals.
func (e *Envelope) Project(keep []int) {
	mapping := make([]annotation.ColSet, maxOrdinal(keep)+1)
	for out, in := range keep {
		mapping[in] = mapping[in].Union(annotation.Col(out))
	}
	e.RemapColumns(mapping)
}

// RemapColumns generalizes Project for operators that fan columns in or
// out (grouping, aggregation): mapping[i] is the output coverage that
// input column i contributes to (zero = dropped). Annotations left with
// empty coverage are removed from all objects.
func (e *Envelope) RemapColumns(mapping []annotation.ColSet) {
	dropped := make(map[annotation.ID]bool)
	for id, cover := range e.Cover {
		var out annotation.ColSet
		for i := 0; i < 64 && i < len(mapping); i++ {
			if cover.Has(i) {
				out = out.Union(mapping[i])
			}
		}
		if out.Empty() {
			dropped[id] = true
			delete(e.Cover, id)
		} else {
			e.Cover[id] = out
		}
	}
	if len(dropped) == 0 {
		return
	}
	drop := func(id annotation.ID) bool { return dropped[id] }
	for name, obj := range e.Objects {
		obj.Remove(drop)
		if obj.Len() == 0 {
			delete(e.Objects, name)
		}
	}
}

// Merge combines o into e for a join whose output tuple is the left input
// (width leftWidth) concatenated with the right input: o's coverage shifts
// past leftWidth, and objects of the same instance are merged with the
// double-count guard; objects present on only one side propagate unchanged
// (the paper's ClassBird1/TextSummary1 behaviour in Figure 2).
func (e *Envelope) Merge(o *Envelope, leftWidth int) {
	for id, c := range o.Cover {
		e.Cover[id] = e.Cover[id].Union(c.Shift(leftWidth))
	}
	e.mergeObjects(o)
}

// Combine merges o into e for operators where both inputs share the output
// tuple shape (grouping, duplicate elimination): coverage unions without
// shifting.
func (e *Envelope) Combine(o *Envelope) {
	for id, c := range o.Cover {
		e.Cover[id] = e.Cover[id].Union(c)
	}
	e.mergeObjects(o)
}

func (e *Envelope) mergeObjects(o *Envelope) {
	for name, obj := range o.Objects {
		if mine, ok := e.Objects[name]; ok {
			mine.MergeFrom(obj)
		} else {
			e.Objects[name] = obj.Clone()
		}
	}
}

// RemoveAnnotation retracts one annotation's effect from every object and
// the coverage map — the maintenance counterpart of deleting a raw
// annotation. Objects emptied by the retraction are dropped.
func (e *Envelope) RemoveAnnotation(id annotation.ID) {
	if _, ok := e.Cover[id]; !ok {
		return
	}
	delete(e.Cover, id)
	drop := func(x annotation.ID) bool { return x == id }
	for name, obj := range e.Objects {
		obj.Remove(drop)
		if obj.Len() == 0 {
			delete(e.Objects, name)
		}
	}
}

// RemoveInstance deletes the named instance's object and drops coverage
// entries for annotations no longer contributing to any remaining object —
// the envelope side of unlinking an instance from a relation.
func (e *Envelope) RemoveInstance(name string) {
	if _, ok := e.Objects[name]; !ok {
		return
	}
	delete(e.Objects, name)
	e.PruneCover()
}

// PruneCover drops coverage entries for annotations that contribute to no
// object.
func (e *Envelope) PruneCover() {
	live := make(map[annotation.ID]bool)
	for _, obj := range e.Objects {
		for _, id := range obj.Members() {
			live[id] = true
		}
	}
	for id := range e.Cover {
		if !live[id] {
			delete(e.Cover, id)
		}
	}
}

// Object returns the object of the named instance, or nil.
func (e *Envelope) Object(instance string) Object { return e.Objects[instance] }

// InstanceNames returns the instance names present, sorted.
func (e *Envelope) InstanceNames() []string {
	out := make([]string, 0, len(e.Objects))
	for name := range e.Objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Annotations returns every contributing annotation id, sorted.
func (e *Envelope) Annotations() []annotation.ID {
	return sortedIDs(mapKeys(e.Cover))
}

// Equal reports whether two envelopes are semantically identical: same
// coverage and equal objects per instance. This is the comparison behind
// the plan-equivalence tests (E3).
func (e *Envelope) Equal(o *Envelope) bool {
	if len(e.Cover) != len(o.Cover) || len(e.Objects) != len(o.Objects) {
		return false
	}
	for id, c := range e.Cover {
		if oc, ok := o.Cover[id]; !ok || oc != c {
			return false
		}
	}
	for name, obj := range e.Objects {
		oobj, ok := o.Objects[name]
		if !ok || !obj.Equal(oobj) {
			return false
		}
	}
	return true
}

// Render formats the envelope's objects in instance-name order, one per
// line.
func (e *Envelope) Render() string {
	var b strings.Builder
	for i, name := range e.InstanceNames() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Objects[name].Render())
	}
	return b.String()
}

// ApproxBytes estimates the envelope's in-memory size (coverage map plus
// all objects) for the E1 compression benchmarks.
func (e *Envelope) ApproxBytes() int {
	n := 16 * len(e.Cover)
	for _, obj := range e.Objects {
		n += obj.ApproxBytes()
	}
	return n
}

func maxOrdinal(idxs []int) int {
	max := 0
	for _, i := range idxs {
		if i > max {
			max = i
		}
	}
	return max
}
