package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkInsertMemory / BenchmarkInsertDurable measure the per-statement
// cost of durability: the durable variant pays WAL framing + fsync on
// every INSERT. Recorded in EXPERIMENTS.md (E13).
func BenchmarkInsertMemory(b *testing.B) {
	db, err := Open(Config{CacheDir: b.TempDir(), DisableMetrics: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(context.Background(), "CREATE TABLE t (id INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(context.Background(), fmt.Sprintf("INSERT INTO t VALUES (%d, 'bird-%d')", i, i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertDurable(b *testing.B) {
	db, _, err := OpenDurable(Config{CacheDir: b.TempDir(), DisableMetrics: true},
		DurabilityOptions{Dir: b.TempDir(), AutoCheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(context.Background(), "CREATE TABLE t (id INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(context.Background(), fmt.Sprintf("INSERT INTO t VALUES (%d, 'bird-%d')", i, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertDurableParallel measures the durable write path under
// concurrent committers — the group-commit case: statements serialize on
// the exclusive statement lock only for the in-memory apply and the WAL
// frame write, then share fsyncs, so per-statement cost amortizes the
// ~150 µs fsync across the batch. Recorded in EXPERIMENTS.md (E13).
func BenchmarkInsertDurableParallel(b *testing.B) {
	db, _, err := OpenDurable(Config{CacheDir: b.TempDir(), DisableMetrics: true},
		DurabilityOptions{Dir: b.TempDir(), AutoCheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(context.Background(), "CREATE TABLE t (id INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	var seq atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			if _, err := db.Exec(context.Background(), fmt.Sprintf("INSERT INTO t VALUES (%d, 'bird-%d')", i, i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecoveryReplay measures cold-start recovery of a WAL tail:
// each iteration opens a directory holding a 1000-record log (inserts and
// annotations, no snapshot) and replays it into a fresh engine.
func BenchmarkRecoveryReplay(b *testing.B) {
	dir := b.TempDir()
	db, _, err := OpenDurable(Config{CacheDir: b.TempDir(), DisableMetrics: true},
		DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "CREATE TABLE t (id INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 666; i++ {
		if _, err := db.Exec(context.Background(), fmt.Sprintf("INSERT INTO t VALUES (%d, 'bird-%d')", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 333; i++ {
		stmt := fmt.Sprintf("ADD ANNOTATION 'observed feeding %d' ON t WHERE id = %d", i, i)
		if _, err := db.Exec(context.Background(), stmt); err != nil {
			b.Fatal(err)
		}
	}
	db.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back, info, err := OpenDurable(Config{CacheDir: b.TempDir(), DisableMetrics: true},
			DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		if info.Replayed != 1000 {
			b.Fatalf("Replayed = %d, want 1000", info.Replayed)
		}
		back.Close()
	}
}
