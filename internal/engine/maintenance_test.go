package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"insightnotes/internal/failpoint"
	"insightnotes/internal/metrics"
)

// parkMaintenance blocks the catch-up worker inside the MaintenanceApply
// failpoint, so assertions about the stale window are deterministic (the
// work-conserving worker would otherwise race them). The returned release
// is idempotent and also registered as cleanup.
func parkMaintenance(t *testing.T) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	failpoint.Enable(failpoint.MaintenanceApply, func() error { <-gate; return nil })
	var once sync.Once
	release = func() {
		failpoint.Disable(failpoint.MaintenanceApply)
		once.Do(func() { close(gate) })
	}
	t.Cleanup(release)
	return release
}

// maintScaffold builds the shared fixture: an annotated table linked to a
// classifier and a snippet instance.
func maintScaffold(t *testing.T, db *DB) {
	t.Helper()
	for _, stmt := range []string{
		"CREATE TABLE birds (id INT, name TEXT)",
		"INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan'), (3, 'Tundra Swan')",
		"CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Behavior', 'Other')",
		"CREATE SUMMARY INSTANCE S TYPE Snippet",
		"LINK SUMMARY C TO birds",
		"LINK SUMMARY S TO birds",
	} {
		mustExec(t, db, stmt)
	}
}

// compareEnvelopes asserts both databases maintain identical summary
// objects for every annotated row of birds.
func compareEnvelopes(t *testing.T, got, want *DB) {
	t.Helper()
	rows := want.Annotations().AnnotatedRows("birds")
	if g := len(got.Annotations().AnnotatedRows("birds")); g != len(rows) {
		t.Fatalf("annotated rows: got %d, want %d", g, len(rows))
	}
	for _, row := range rows {
		ge, we := got.StoredEnvelope("birds", row), want.StoredEnvelope("birds", row)
		if we == nil {
			if ge != nil {
				t.Fatalf("row %d: unexpected envelope %s", row, ge.Render())
			}
			continue
		}
		if ge == nil {
			t.Fatalf("row %d: missing envelope, want %s", row, we.Render())
		}
		if ge.Render() != we.Render() {
			t.Fatalf("row %d summary diverges\ndeferred: %s\nsync:     %s", row, ge.Render(), we.Render())
		}
	}
}

// sampleValue returns the value of the metric sample whose exposition name
// starts with prefix (exact name, or name plus a label), and whether it
// was found.
func sampleValue(reg *metrics.Registry, prefix string) (float64, bool) {
	for _, s := range reg.Samples() {
		if s.Name == prefix || strings.HasPrefix(s.Name, prefix+"{") {
			return s.Value, true
		}
	}
	return 0, false
}

// TestDeferredMaintenanceConverges drives the same annotation stream into
// a degraded engine and a synchronous shadow: while degraded the summaries
// lag (stale gauges above zero), and after catch-up the maintained
// envelopes are identical to what synchronous maintenance produced —
// digest cache semantics included.
func TestDeferredMaintenanceConverges(t *testing.T) {
	db := MustOpen(Config{CacheDir: t.TempDir()})
	defer db.Close()
	shadow := MustOpen(Config{CacheDir: t.TempDir(), DisableMetrics: true})
	defer shadow.Close()
	maintScaffold(t, db)
	maintScaffold(t, shadow)

	release := parkMaintenance(t)
	db.SetDegraded(true)
	if st := db.MaintenanceStats(); !st.Degraded {
		t.Fatal("SetDegraded(true) did not mark the engine degraded")
	}
	const anns = 8
	for i := 0; i < anns; i++ {
		stmt := fmt.Sprintf("ADD ANNOTATION 'observed behavior %d feeding' ON birds WHERE id = %d", i, i%3+1)
		mustExec(t, db, stmt)
		mustExec(t, shadow, stmt)
	}

	// Raw annotations are never deferred — only their summaries are.
	if g := db.Annotations().Count(); g != anns {
		t.Fatalf("raw annotations = %d, want %d (ingestion must stay synchronous)", g, anns)
	}
	st := db.MaintenanceStats()
	if st.Deferred != anns {
		t.Fatalf("deferred = %d, want %d", st.Deferred, anns)
	}
	if st.StaleByInstance["C"] == 0 || st.StaleByInstance["S"] == 0 {
		t.Fatalf("stale counts missing: %+v", st.StaleByInstance)
	}

	release()
	db.SetDegraded(false)
	db.WaitMaintenanceIdle()
	st = db.MaintenanceStats()
	if st.Pending != 0 || st.Applied != anns || st.Degraded {
		t.Fatalf("after catch-up: %+v", st)
	}
	for name, n := range st.StaleByInstance {
		if n != 0 {
			t.Fatalf("instance %s still stale: %d", name, n)
		}
	}
	compareEnvelopes(t, db, shadow)

	// Fresh again: the next annotation applies synchronously.
	mustExec(t, db, "ADD ANNOTATION 'post recovery note' ON birds WHERE id = 1")
	mustExec(t, shadow, "ADD ANNOTATION 'post recovery note' ON birds WHERE id = 1")
	if st := db.MaintenanceStats(); st.Deferred != anns {
		t.Fatalf("fresh engine deferred again: %+v", st)
	}
	compareEnvelopes(t, db, shadow)
}

// TestMaintenanceMetricsAndStats covers the staleness surfaces: the
// pending/degraded gauges and per-instance stale gauge in the registry,
// and the stale_pending count on SELECT statement stats.
func TestMaintenanceMetricsAndStats(t *testing.T) {
	db := MustOpen(Config{CacheDir: t.TempDir()})
	defer db.Close()
	maintScaffold(t, db)
	reg := db.Metrics()

	if v, ok := sampleValue(reg, metrics.NameMaintenanceDegraded); !ok || v != 0 {
		t.Fatalf("degraded gauge = %v, %v; want 0, true", v, ok)
	}
	release := parkMaintenance(t)
	db.SetDegraded(true)
	mustExec(t, db, "ADD ANNOTATION 'stale note one' ON birds WHERE id = 1")
	mustExec(t, db, "ADD ANNOTATION 'stale note two' ON birds WHERE id = 2")

	if v, _ := sampleValue(reg, metrics.NameMaintenanceDegraded); v != 1 {
		t.Fatalf("degraded gauge = %v, want 1", v)
	}
	if v, _ := sampleValue(reg, metrics.NameMaintenanceDeferredTotal); v != 2 {
		t.Fatalf("deferred counter = %v, want 2", v)
	}
	if v, ok := sampleValue(reg, metrics.NameSummaryStaleUpdatesTotal); !ok || v == 0 {
		t.Fatalf("stale gauge = %v, %v; want > 0", v, ok)
	}

	// SELECT while degraded reports the staleness debt on its stats.
	res, err := db.Query(context.Background(), "SELECT * FROM birds")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StalePending == 0 {
		t.Fatal("SELECT under degraded mode reported no pending maintenance")
	}
	if !strings.Contains(res.Stats.String(), "stale") {
		t.Fatalf("stats line hides staleness: %q", res.Stats.String())
	}

	release()
	db.SetDegraded(false)
	db.WaitMaintenanceIdle()
	if v, _ := sampleValue(reg, metrics.NameMaintenancePendingTasks); v != 0 {
		t.Fatalf("pending gauge = %v after drain, want 0", v)
	}
	if v, _ := sampleValue(reg, metrics.NameMaintenanceAppliedTotal); v != 2 {
		t.Fatalf("applied counter = %v, want 2", v)
	}
	if v, _ := sampleValue(reg, metrics.NameSummaryStaleUpdatesTotal); v != 0 {
		t.Fatalf("stale gauge = %v after drain, want 0", v)
	}
	res, err = db.Query(context.Background(), "SELECT * FROM birds")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StalePending != 0 {
		t.Fatalf("fresh engine reports stale_pending = %d", res.Stats.StalePending)
	}
}

// TestMaintenanceDrainBarriers verifies that statements which read or
// rewrite the summary store wait out queued maintenance instead of racing
// it: a retraction right behind a deferred ingest must see the ingest
// applied, matching the synchronous shadow exactly.
func TestMaintenanceDrainBarriers(t *testing.T) {
	db := MustOpen(Config{CacheDir: t.TempDir(), DisableMetrics: true})
	defer db.Close()
	shadow := MustOpen(Config{CacheDir: t.TempDir(), DisableMetrics: true})
	defer shadow.Close()
	maintScaffold(t, db)
	maintScaffold(t, shadow)

	db.SetDegraded(true)
	stmts := []string{
		"ADD ANNOTATION 'first observed feeding' ON birds WHERE id = 1",
		"ADD ANNOTATION 'second observed roosting' ON birds WHERE id = 1",
		"DROP ANNOTATION 1", // barrier: must not resurrect annotation 1
		"ADD ANNOTATION 'third observed preening' ON birds WHERE id = 2",
		"TRAIN SUMMARY C ('feeding foraging sample', 'Behavior')", // barrier
		"ADD ANNOTATION 'fourth observed feeding' ON birds WHERE id = 3",
		"DELETE FROM birds WHERE id = 2", // barrier: envelope must stay dropped
	}
	for _, stmt := range stmts {
		mustExec(t, db, stmt)
		mustExec(t, shadow, stmt)
	}
	db.SetDegraded(false)
	db.WaitMaintenanceIdle()
	compareEnvelopes(t, db, shadow)

	if env := db.StoredEnvelope("birds", db.Annotations().AnnotatedRows("birds")[0]); env != nil {
		if strings.Contains(env.Render(), "first observed") {
			t.Fatalf("retracted annotation resurrected by catch-up: %s", env.Render())
		}
	}
}

// TestMaintenanceAutoDegrade exercises the latency trigger: a threshold
// below any real maintenance latency flips the engine into degraded mode
// after the first synchronous apply, and draining the queue recovers it.
func TestMaintenanceAutoDegrade(t *testing.T) {
	db := MustOpen(Config{
		CacheDir:                    t.TempDir(),
		DisableMetrics:              true,
		MaintenanceLatencyThreshold: time.Nanosecond,
	})
	defer db.Close()
	maintScaffold(t, db)

	// First annotation applies synchronously and trips the EWMA.
	mustExec(t, db, "ADD ANNOTATION 'trigger note' ON birds WHERE id = 1")
	if st := db.MaintenanceStats(); !st.Degraded {
		t.Fatalf("latency threshold did not degrade the engine: %+v", st)
	}
	// Subsequent annotations defer.
	mustExec(t, db, "ADD ANNOTATION 'deferred note' ON birds WHERE id = 2")
	if st := db.MaintenanceStats(); st.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1: %+v", st.Deferred, st)
	}
	// Catch-up clears the automatic flag.
	db.WaitMaintenanceIdle()
	deadline := time.Now().Add(5 * time.Second)
	for db.MaintenanceStats().Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("engine stuck degraded after drain: %+v", db.MaintenanceStats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMaintenanceKillAndRecover is the acceptance scenario: the process is
// killed (failpoint) mid-catch-up while degraded, with deferred tasks
// still queued. Recovery rebuilds summaries synchronously from the raw
// annotations in the WAL, so the recovered engine matches a synchronous
// shadow replay exactly — the queue owes durability nothing.
func TestMaintenanceKillAndRecover(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()

	dir := t.TempDir()
	db, _, err := OpenDurable(durableConfig(t), DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	shadow := MustOpen(Config{CacheDir: t.TempDir(), DisableMetrics: true})
	defer shadow.Close()
	maintScaffold(t, db)
	maintScaffold(t, shadow)

	// Kill the catch-up worker on its first task.
	failpoint.EnableError(failpoint.MaintenanceApply, failpoint.CrashError(failpoint.MaintenanceApply))
	db.SetDegraded(true)
	for i := 0; i < 4; i++ {
		stmt := fmt.Sprintf("ADD ANNOTATION 'observed behavior %d feeding' ON birds WHERE id = %d", i, i%3+1)
		mustExec(t, db, stmt)
		mustExec(t, shadow, stmt)
	}
	// Returns as soon as the worker dies; the queue is frozen.
	db.WaitMaintenanceIdle()
	st := db.MaintenanceStats()
	if st.Pending == 0 || !st.Degraded {
		t.Fatalf("killed worker left no frozen queue: %+v", st)
	}
	// The dying process keeps accepting ingests without hanging on the
	// frozen queue (raw annotation + WAL stay synchronous and durable).
	mustExec(t, db, "ADD ANNOTATION 'post crash note' ON birds WHERE id = 1")
	mustExec(t, shadow, "ADD ANNOTATION 'post crash note' ON birds WHERE id = 1")

	// "Kill" the process and recover from disk.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	failpoint.Reset()
	recovered, info, err := OpenDurable(durableConfig(t), DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if info.Replayed == 0 {
		t.Fatalf("recovery replayed nothing: %+v", info)
	}
	if st := recovered.MaintenanceStats(); st.Pending != 0 || st.Degraded {
		t.Fatalf("recovered engine not fresh: %+v", st)
	}
	compareEnvelopes(t, recovered, shadow)
}

// TestMaintenanceBackpressure verifies the bounded queue blocks ingestion
// instead of growing without bound, and unblocks as the worker drains.
func TestMaintenanceBackpressure(t *testing.T) {
	db := MustOpen(Config{CacheDir: t.TempDir(), DisableMetrics: true, MaintenanceQueueDepth: 2})
	defer db.Close()
	maintScaffold(t, db)
	db.SetDegraded(true)
	// Far more tasks than the queue holds: each enqueue past the cap waits
	// for the worker, so this completes only if backpressure hands off
	// correctly (a hang here fails the test timeout).
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("ADD ANNOTATION 'note %d feeding' ON birds WHERE id = %d", i, i%3+1))
	}
	db.SetDegraded(false)
	db.WaitMaintenanceIdle()
	if st := db.MaintenanceStats(); st.Applied != 20 || st.Pending != 0 {
		t.Fatalf("after drain: %+v", st)
	}
}
