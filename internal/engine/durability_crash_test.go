package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"insightnotes/internal/failpoint"
	"insightnotes/internal/plan"
	"insightnotes/internal/types"
)

// The crash-recovery suite: random mutation streams run against a
// durable database and an in-memory shadow, a crash is injected at every
// registered failpoint in the WAL and snapshot write paths, and the
// database recovered from disk must equal the shadow exactly — tables,
// rows, annotations, instances with trained models, id allocators, and
// rebuilt summary objects.
//
// Crash semantics per failpoint (what the durable side must show after
// kill + recovery, relative to the statement that hit the crash):
//
//   - fp/wal/append_before: the process died before the record reached
//     the file — the statement is not durable.
//   - fp/wal/append_partial: half the frame reached the file — recovery
//     truncates the torn record; the statement is not durable.
//   - fp/wal/append_before_sync: the full frame reached the file but
//     fsync never ran. Killing a process does not drop the page cache,
//     so in this simulation the record survives — the statement IS
//     durable (the client saw an error; an error answer promises
//     nothing either way).
//   - fp/engine/checkpoint_*: the crash hits the checkpoint itself;
//     every acknowledged statement must survive through the WAL or the
//     published snapshot, whichever ordering the crash left behind.

type crashScenario struct {
	name string
	fp   string
	// checkpoint: inject the crash into a CHECKPOINT instead of a
	// mutation statement.
	checkpoint bool
	// crashedDurable: the statement that hit the crash survives
	// recovery (see the semantics table above).
	crashedDurable bool
	// wantTorn: recovery must report a torn tail.
	wantTorn bool
}

var crashScenarios = []crashScenario{
	{name: "append_before", fp: failpoint.WALAppendBefore},
	{name: "append_partial", fp: failpoint.WALAppendPartial, wantTorn: true},
	{name: "append_before_sync", fp: failpoint.WALAppendBeforeSync, crashedDurable: true},
	{name: "checkpoint_snapshot_write", fp: failpoint.CheckpointSnapshotWrite, checkpoint: true},
	{name: "checkpoint_before_rename", fp: failpoint.CheckpointBeforeRename, checkpoint: true},
	{name: "checkpoint_after_rename", fp: failpoint.CheckpointAfterRename, checkpoint: true},
}

// crashWorkload drives the same random mutation stream into any number
// of databases, keeping its own bookkeeping of live rows and annotation
// ids so generated statements are always well-formed.
type crashWorkload struct {
	rng    *rand.Rand
	nextID int   // next value for the id column
	live   []int // id-column values currently in the table
	anns   int   // annotations added so far (ids are sequential from 1)
	// annRow maps live annotation ids to the id-column value they
	// target: deleting a row orphans (and removes) its annotations, so
	// the generator must stop referencing them.
	annRow map[int]int
}

func newCrashWorkload(seed int64) *crashWorkload {
	return &crashWorkload{rng: rand.New(rand.NewSource(seed)), nextID: 1, annRow: map[int]int{}}
}

// scaffold returns the fixed schema-setup statements.
func (w *crashWorkload) scaffold() []string {
	return []string{
		"CREATE TABLE birds (id INT, name TEXT)",
		"CREATE INDEX ON birds (id)",
		"CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Behavior', 'Other')",
		"CREATE SUMMARY INSTANCE S TYPE Snippet",
		"LINK SUMMARY C TO birds",
		"LINK SUMMARY S TO birds",
	}
}

// next generates one random mutation statement. Statements either fully
// succeed or fail before mutating anything, so every database given the
// same stream ends in the same state.
func (w *crashWorkload) next() string {
	for {
		switch w.rng.Intn(10) {
		case 0, 1, 2: // insert
			id := w.nextID
			w.nextID++
			w.live = append(w.live, id)
			return fmt.Sprintf("INSERT INTO birds VALUES (%d, 'bird-%d')", id, id)
		case 3: // update
			if len(w.live) == 0 {
				continue
			}
			id := w.live[w.rng.Intn(len(w.live))]
			return fmt.Sprintf("UPDATE birds SET name = 'seen-%d' WHERE id = %d", w.rng.Intn(100), id)
		case 4: // delete (orphans the row's annotations)
			if len(w.live) < 3 {
				continue
			}
			i := w.rng.Intn(len(w.live))
			id := w.live[i]
			w.live = append(w.live[:i], w.live[i+1:]...)
			for ann, row := range w.annRow {
				if row == id {
					delete(w.annRow, ann)
				}
			}
			return fmt.Sprintf("DELETE FROM birds WHERE id = %d", id)
		case 5, 6, 7: // annotate a live row
			if len(w.live) == 0 {
				continue
			}
			id := w.live[w.rng.Intn(len(w.live))]
			w.anns++
			w.annRow[w.anns] = id
			return fmt.Sprintf("ADD ANNOTATION 'observed behavior %d feeding' ON birds WHERE id = %d", w.anns, id)
		case 8: // train the classifier
			return fmt.Sprintf("TRAIN SUMMARY C ('feeding foraging sample %d', 'Behavior')", w.rng.Intn(50))
		default: // drop an annotation that still exists
			if len(w.annRow) == 0 {
				continue
			}
			ids := make([]int, 0, len(w.annRow))
			for ann := range w.annRow {
				ids = append(ids, ann)
			}
			sort.Ints(ids)
			id := ids[w.rng.Intn(len(ids))]
			delete(w.annRow, id)
			return fmt.Sprintf("DROP ANNOTATION %d", id)
		}
	}
}

// canonicalState renders a database's full durable state with row order
// normalized (heap scan order after deletes legitimately differs between
// continuous execution and snapshot+replay recovery).
func canonicalState(t *testing.T, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	for i := range snap.Tables {
		rows := snap.Tables[i].Rows
		sort.Slice(rows, func(a, b int) bool { return rows[a].ID < rows[b].ID })
	}
	out, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// compareRecovered asserts got (the recovered durable DB) matches want
// (the shadow) on raw state and on summary objects rebuilt from it.
func compareRecovered(t *testing.T, got, want *DB) {
	t.Helper()
	g, w := canonicalState(t, got), canonicalState(t, want)
	if !bytes.Equal(g, w) {
		t.Fatalf("recovered state diverges from shadow replay\nrecovered: %s\nshadow:    %s", g, w)
	}
	for _, db := range []*DB{got, want} {
		if _, err := db.RebuildSummaries("birds"); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range want.Annotations().AnnotatedRows("birds") {
		ge, we := got.StoredEnvelope("birds", row), want.StoredEnvelope("birds", row)
		if we == nil {
			continue
		}
		if ge == nil {
			t.Fatalf("row %d: recovered DB lost its summary envelope", row)
		}
		if ge.Render() != we.Render() {
			t.Fatalf("row %d summary diverges\nrecovered: %s\nshadow:    %s", row, ge.Render(), we.Render())
		}
	}
}

// TestCrashBetweenHeapAndIndexInsert covers the storage-layer crash
// window: Table.Insert writes the row to the heap, then updates every
// secondary index, and only after the statement succeeds does the engine
// log it to the WAL. fp/catalog/insert_index kills the process after the
// heap write but before the index insert — the dying engine is visibly
// inconsistent (heap holds the row, the id index does not, the WAL never
// heard of the statement), and recovery must replay to a state where
// heap, secondary index, and the in-memory shadow all agree, with the
// crashed row absent everywhere.
func TestCrashBetweenHeapAndIndexInsert(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	ctx := context.Background()

	dir := t.TempDir()
	db, _, err := OpenDurable(durableConfig(t), DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := Open(durableConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	wl := newCrashWorkload(7200)
	run := func(stmt string) {
		t.Helper()
		if _, err := db.Exec(ctx, stmt); err != nil {
			t.Fatalf("durable %q: %v", stmt, err)
		}
		if _, err := shadow.Exec(ctx, stmt); err != nil {
			t.Fatalf("shadow %q: %v", stmt, err)
		}
	}
	for _, stmt := range wl.scaffold() {
		run(stmt)
	}
	for i := 0; i < 24; i++ {
		run(wl.next())
		if i == 12 {
			if _, err := db.Checkpoint(); err != nil {
				t.Fatalf("mid-stream checkpoint: %v", err)
			}
		}
	}

	// Crash between the heap write and the index insert. The workload's
	// bookkeeping is NOT advanced: the statement never becomes durable,
	// so the shadow never runs it either.
	crashedID := wl.nextID
	stmt := fmt.Sprintf("INSERT INTO birds VALUES (%d, 'crashed-%d')", crashedID, crashedID)
	failpoint.EnableError(failpoint.CatalogInsertIndex, failpoint.CrashError(failpoint.CatalogInsertIndex))
	if _, err := db.Exec(ctx, stmt); err == nil {
		t.Fatalf("statement %q survived its injected crash", stmt)
	}
	failpoint.Disable(failpoint.CatalogInsertIndex)

	// The dying engine really is torn: its heap holds one more row than
	// the shadow's, while the id index has no entry for the crashed id.
	dying, err := db.cat.Table("birds")
	if err != nil {
		t.Fatal(err)
	}
	want, err := shadow.cat.Table("birds")
	if err != nil {
		t.Fatal(err)
	}
	if got := dying.Stats().Rows; got != want.Stats().Rows+1 {
		t.Fatalf("dying heap rows = %d, want shadow+1 = %d", got, want.Stats().Rows+1)
	}
	if ids, err := dying.LookupByIndex("id", types.NewInt(int64(crashedID))); err != nil || len(ids) != 0 {
		t.Fatalf("dying index lookup of crashed id = %v, %v; want no entries", ids, err)
	}

	// Kill and recover.
	db.Close()
	recovered, _, err := OpenDurable(durableConfig(t), DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	compareRecovered(t, recovered, shadow)

	// Heap and index agree again: the crashed row is gone from both, and
	// every id resolves identically through the index, a forced full
	// scan, and a direct B+tree probe.
	rt, err := recovered.cat.Table("birds")
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Stats().Rows; got != want.Stats().Rows {
		t.Fatalf("recovered heap rows = %d, want %d", got, want.Stats().Rows)
	}
	probe := append([]int{crashedID}, wl.live...)
	for _, id := range probe {
		q := fmt.Sprintf("SELECT name FROM birds WHERE id = %d", id)
		viaIndex, err := recovered.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		viaScan, err := recovered.Query(ctx, q, WithPlanOptions(plan.Options{DisableIndexScan: true}))
		if err != nil {
			t.Fatal(err)
		}
		if len(viaIndex.Rows) != len(viaScan.Rows) {
			t.Fatalf("id %d: index path returns %d rows, full scan %d", id, len(viaIndex.Rows), len(viaScan.Rows))
		}
		ids, err := rt.LookupByIndex("id", types.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(viaScan.Rows) {
			t.Fatalf("id %d: index holds %d entries, heap scan finds %d rows", id, len(ids), len(viaScan.Rows))
		}
	}

	// As far as durable state is concerned the crashed id was never
	// taken: inserting it again must succeed and show up in the index,
	// and the full crash-recover-continue cycle must keep converging
	// with the shadow.
	run2 := func(stmt string) {
		t.Helper()
		if _, err := recovered.Exec(ctx, stmt); err != nil {
			t.Fatalf("post-recovery durable %q: %v", stmt, err)
		}
		if _, err := shadow.Exec(ctx, stmt); err != nil {
			t.Fatalf("post-recovery shadow %q: %v", stmt, err)
		}
	}
	run2(fmt.Sprintf("INSERT INTO birds VALUES (%d, 'bird-%d')", crashedID, crashedID))
	wl.nextID++
	wl.live = append(wl.live, crashedID)
	for i := 0; i < 4; i++ {
		run2(wl.next())
	}
	if ids, err := rt.LookupByIndex("id", types.NewInt(int64(crashedID))); err != nil || len(ids) != 1 {
		t.Fatalf("re-inserted id not indexed: %v, %v", ids, err)
	}
	compareRecovered(t, recovered, shadow)
}

// TestCrashRecovery is the fault-injection suite described above. The
// -count flag re-runs it with the same seeds; scripts/check.sh runs it
// three times under the race detector.
func TestCrashRecovery(t *testing.T) {
	const ops = 24 // mutations before the crash point
	for si, sc := range crashScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			failpoint.Reset()
			defer failpoint.Reset()

			dir := t.TempDir()
			db, _, err := OpenDurable(durableConfig(t), DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			shadow, err := Open(durableConfig(t))
			if err != nil {
				t.Fatal(err)
			}

			seed := int64(7100 + si)
			wl := newCrashWorkload(seed)
			run := func(stmt string) {
				t.Helper()
				if _, err := db.Exec(context.Background(), stmt); err != nil {
					t.Fatalf("durable %q: %v", stmt, err)
				}
				if _, err := shadow.Exec(context.Background(), stmt); err != nil {
					t.Fatalf("shadow %q: %v", stmt, err)
				}
			}
			for _, stmt := range wl.scaffold() {
				run(stmt)
			}
			for i := 0; i < ops; i++ {
				run(wl.next())
				if i == ops/2 {
					// A clean mid-stream checkpoint, so recovery
					// exercises snapshot load + tail replay, not just
					// full-log replay.
					if _, err := db.Checkpoint(); err != nil {
						t.Fatalf("mid-stream checkpoint: %v", err)
					}
				}
			}

			// Inject the crash.
			failpoint.EnableError(sc.fp, failpoint.CrashError(sc.fp))
			if sc.checkpoint {
				if _, err := db.Checkpoint(); err == nil {
					t.Fatal("checkpoint survived its injected crash")
				}
			} else {
				crashed := wl.next()
				if _, err := db.Exec(context.Background(), crashed); err == nil {
					t.Fatalf("statement %q survived its injected crash", crashed)
				}
				if sc.crashedDurable {
					if _, err := shadow.Exec(context.Background(), crashed); err != nil {
						t.Fatalf("shadow %q: %v", crashed, err)
					}
				}
			}
			failpoint.Disable(sc.fp)

			// "Kill" the process: discard the in-memory engine without
			// any graceful persistence, then recover from disk.
			db.Close()
			recovered, info, err := OpenDurable(durableConfig(t), DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
			if err != nil {
				t.Fatalf("recovery after %s: %v", sc.name, err)
			}
			defer recovered.Close()
			if sc.wantTorn && !info.TornTruncated {
				t.Errorf("recovery = %+v, want a torn tail truncation", info)
			}

			compareRecovered(t, recovered, shadow)

			// The recovered engine must accept writes and survive one
			// more clean cycle (full crash-recover-continue loop).
			run2 := func(stmt string) {
				t.Helper()
				if _, err := recovered.Exec(context.Background(), stmt); err != nil {
					t.Fatalf("post-recovery durable %q: %v", stmt, err)
				}
				if _, err := shadow.Exec(context.Background(), stmt); err != nil {
					t.Fatalf("post-recovery shadow %q: %v", stmt, err)
				}
			}
			for i := 0; i < 4; i++ {
				run2(wl.next())
			}
			recovered.Close()
			final, _, err := OpenDurable(durableConfig(t), DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer final.Close()
			compareRecovered(t, final, shadow)
		})
	}
}
