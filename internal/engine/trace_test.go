package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"insightnotes/internal/trace"
)

// tracedDB opens an in-memory DB that retains every trace.
func tracedDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{CacheDir: t.TempDir(), TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// spanNames flattens a trace's span names for containment checks.
func spanNames(tr *trace.Trace) map[string]bool {
	out := map[string]bool{}
	for _, sp := range tr.Spans {
		out[sp.Name] = true
	}
	return out
}

// spanAttr finds the first attribute value for key on any span named name.
func spanAttr(tr *trace.Trace, name, key string) (string, bool) {
	for _, sp := range tr.Spans {
		if sp.Name != name {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == key {
				return a.Value(), true
			}
		}
	}
	return "", false
}

func TestStatementTraceLifecycle(t *testing.T) {
	db := tracedDB(t)
	mustExec(t, db, "CREATE TABLE birds (id INT, hits INT)")
	mustExec(t, db, "CREATE INDEX ON birds (id)")
	// Enough rows that the cost model prefers the index for an equality
	// predicate (a full scan wins on tiny tables, by design).
	for base := 0; base < 800; base += 100 {
		vals := make([]string, 0, 100)
		for i := base; i < base+100; i++ {
			vals = append(vals, fmt.Sprintf("(%d, 0)", i))
		}
		mustExec(t, db, "INSERT INTO birds VALUES "+strings.Join(vals, ", "))
	}

	// A mutating statement: parse, exec, and an index-driven plan span.
	res := mustExec(t, db, "UPDATE birds SET hits = 1 WHERE id = 7")
	if res.TraceID == "" {
		t.Fatal("UPDATE result carries no trace id")
	}
	id, err := trace.ParseID(res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := db.Tracer().Get(id)
	if !ok {
		t.Fatalf("trace %s not retained at sample 1", res.TraceID)
	}
	if tr.Kind != "update" || tr.Statement != "UPDATE birds SET hits = 1 WHERE id = 7" {
		t.Fatalf("trace header %q/%q", tr.Kind, tr.Statement)
	}
	names := spanNames(tr)
	for _, want := range []string{trace.SpanStatement, trace.SpanParse, trace.SpanExec, trace.SpanPlan} {
		if !names[want] {
			t.Fatalf("UPDATE trace missing span %s; have %v", want, names)
		}
	}
	if path, ok := spanAttr(tr, trace.SpanPlan, "path"); !ok || path != "index_scan" {
		t.Fatalf("UPDATE plan span path attr = %q, %v; want index_scan", path, ok)
	}
	if _, ok := spanAttr(tr, trace.SpanPlan, "cost_seq"); !ok {
		t.Fatal("UPDATE plan span missing cost_seq attribute")
	}

	// A query: plan span carries the planner's access-path decision and
	// executor operators appear as op.* spans.
	res, err = db.Query(context.Background(), "SELECT hits FROM birds WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	id, err = trace.ParseID(res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok = db.Tracer().Get(id)
	if !ok {
		t.Fatal("SELECT trace not retained")
	}
	if path, ok := spanAttr(tr, trace.SpanPlan, "path.birds"); !ok || path != "index_scan" {
		t.Fatalf("SELECT plan span path.birds = %q, %v; want index_scan", path, ok)
	}
	opSeen := false
	for name := range spanNames(tr) {
		if strings.HasPrefix(name, trace.OpSpanPrefix) {
			opSeen = true
		}
	}
	if !opSeen {
		t.Fatal("SELECT trace has no op.* executor spans")
	}

	// A parse error finishes the trace as errored (always retained).
	if _, err := db.Exec(context.Background(), "UPDATEX nope"); err == nil {
		t.Fatal("expected parse error")
	}
	found := false
	for _, tc := range db.Tracer().Snapshot(0) {
		if tc.Kind == "parse_error" && tc.Err != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("parse error did not leave an errored trace")
	}
}

func TestShowTracesAndShowTrace(t *testing.T) {
	db := tracedDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	res := mustExec(t, db, "UPDATE t SET a = 3 WHERE a = 1")
	traceID := res.TraceID

	list := mustExec(t, db, "SHOW TRACES")
	if len(list.Rows) < 3 {
		t.Fatalf("SHOW TRACES rows = %d, want >= 3", len(list.Rows))
	}
	if got := list.Schema.Columns[0].Name; got != "trace_id" {
		t.Fatalf("first column %q", got)
	}
	one := mustExec(t, db, "SHOW TRACES LIMIT 1")
	if len(one.Rows) != 1 {
		t.Fatalf("SHOW TRACES LIMIT 1 rows = %d", len(one.Rows))
	}

	tree := mustExec(t, db, "SHOW TRACE "+traceID)
	joined := ""
	for _, row := range tree.Rows {
		joined += row.Tuple[0].Str() + "\n"
	}
	for _, want := range []string{"trace " + traceID, "kind=update", trace.SpanParse, trace.SpanExec} {
		if !strings.Contains(joined, want) {
			t.Fatalf("SHOW TRACE output missing %q:\n%s", want, joined)
		}
	}

	if _, err := db.Exec(context.Background(), "SHOW TRACE t0000000000000001"); err == nil {
		t.Fatal("SHOW TRACE on an unknown id should error")
	}
	if _, err := db.Exec(context.Background(), "SHOW TRACE 'not quoted ids'"); err == nil {
		t.Fatal("SHOW TRACE with a non-identifier should error")
	}
}

func TestTracingDisabled(t *testing.T) {
	db, err := Open(Config{CacheDir: t.TempDir(), DisableTracing: true})
	if err != nil {
		t.Fatal(err)
	}
	if db.Tracer() != nil {
		t.Fatal("DisableTracing left a live tracer")
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	res := mustExec(t, db, "INSERT INTO t VALUES (1)")
	if res.TraceID != "" {
		t.Fatalf("trace id %q with tracing disabled", res.TraceID)
	}
	list := mustExec(t, db, "SHOW TRACES")
	if list.Message != "tracing disabled" || len(list.Rows) != 0 {
		t.Fatalf("SHOW TRACES disabled: message %q rows %d", list.Message, len(list.Rows))
	}
}

func TestSlowLogCarriesTraceIDAndQueueWait(t *testing.T) {
	var buf bytes.Buffer
	db, err := Open(Config{
		CacheDir:           t.TempDir(),
		TraceSample:        1,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       NewJSONSlowQueryLog(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	buf.Reset()
	res, err := db.Query(context.Background(), "SELECT a FROM t",
		WithQueueWait(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.QueueWait != 5*time.Millisecond {
		t.Fatalf("result queue wait = %v", res.Stats.QueueWait)
	}
	if !strings.Contains(res.Stats.String(), "[queued ") {
		t.Fatalf("stats string hides queue wait: %s", res.Stats.String())
	}
	var e SlowQueryEntry
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &e); err != nil {
		t.Fatal(err)
	}
	if e.TraceID == "" || e.TraceID != res.TraceID {
		t.Fatalf("slow entry trace id %q; result %q", e.TraceID, res.TraceID)
	}
	if e.QueueWaitMicros != 5000 {
		t.Fatalf("slow entry queue wait = %dus, want 5000", e.QueueWaitMicros)
	}
	// The slow statement was retained by the slow class, so its id resolves.
	id, err := trace.ParseID(e.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := db.Tracer().Get(id)
	if !ok {
		t.Fatal("slow trace not retained")
	}
	if !tr.Slow {
		t.Fatal("retained trace not marked slow")
	}
}

// TestTraceHammer mixes mutating writers with SHOW TRACES / SHOW TRACE
// readers; under -race this exercises the statement lifecycle, the
// retained-trace ring, and the renderer concurrently.
func TestTraceHammer(t *testing.T) {
	db := tracedDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "CREATE INDEX ON t (a)")
	for i := 0; i < 32; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 0)", i))
	}

	const writers, stmtsPer = 4, 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Exec(ctx, "SHOW TRACES LIMIT 10")
				if err != nil {
					t.Error(err)
					return
				}
				for _, row := range res.Rows {
					// Traces can be evicted between listing and lookup;
					// only "not found" is acceptable as an error.
					tr, err := db.Exec(ctx, "SHOW TRACE "+row.Tuple[0].Str())
					if err != nil {
						if !strings.Contains(err.Error(), "not found") {
							t.Error(err)
							return
						}
						continue
					}
					if len(tr.Rows) == 0 {
						t.Error("SHOW TRACE returned an empty tree")
						return
					}
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			ctx := context.Background()
			for i := 0; i < stmtsPer; i++ {
				stmt := fmt.Sprintf("UPDATE t SET b = %d WHERE a = %d", i, (w*stmtsPer+i)%32)
				if _, err := db.Exec(ctx, stmt); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	st := db.Tracer().Stats()
	if st.Started == 0 || st.Retained == 0 {
		t.Fatalf("tracer stats after hammer: %+v", st)
	}
}
