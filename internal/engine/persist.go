package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"insightnotes/internal/annotation"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// Snapshot format: one JSON document holding the complete logical state —
// schemas, rows, indexes, summary instances (with trained models), links,
// and raw annotations with their targets. Summary objects are NOT stored:
// they are deterministically rebuilt from the raw annotations on load
// (per-tuple annotations replay in id order, the same order incremental
// maintenance observed them).
//
// For durability (see durability.go) the snapshot additionally records
// the WAL LSN it includes, so recovery can skip already-captured log
// records, and the id-allocator positions (per-table next row id, next
// annotation id, annotation clock), so ids assigned after recovery never
// collide with ids whose rows or annotations were deleted before the
// snapshot was taken.
const snapshotVersion = 1

type snapshot struct {
	Version int `json:"version"`
	// LSN is the WAL position the snapshot includes; replay skips
	// records at or below it. Zero for standalone Save snapshots.
	LSN         uint64             `json:"lsn,omitempty"`
	Tables      []snapshotTable    `json:"tables"`
	Instances   []json.RawMessage  `json:"instances"`
	Links       []snapshotLink     `json:"links"`
	Annotations []snapshotAnnotate `json:"annotations"`
	// NextAnnotationID / AnnClock restore the annotation id allocator and
	// ingestion clock (zero in pre-durability snapshots: derived from the
	// stored annotations instead, the old behaviour).
	NextAnnotationID annotation.ID `json:"next_annotation_id,omitempty"`
	AnnClock         int64         `json:"ann_clock,omitempty"`
}

type snapshotTable struct {
	Name    string           `json:"name"`
	Columns []snapshotColumn `json:"columns"`
	Indexes []string         `json:"indexes,omitempty"`
	Rows    []snapshotRow    `json:"rows"`
	// NextRow restores the row-id allocator (zero in pre-durability
	// snapshots: derived from the stored rows).
	NextRow types.RowID `json:"next_row,omitempty"`
}

type snapshotColumn struct {
	Name string     `json:"name"`
	Kind types.Kind `json:"kind"`
}

type snapshotRow struct {
	ID     types.RowID   `json:"id"`
	Values []types.Value `json:"values"`
}

type snapshotLink struct {
	Instance string `json:"instance"`
	Table    string `json:"table"`
}

type snapshotAnnotate struct {
	ID       annotation.ID    `json:"id"`
	Author   string           `json:"author,omitempty"`
	Created  int64            `json:"created"`
	Text     string           `json:"text"`
	Title    string           `json:"title,omitempty"`
	Document string           `json:"document,omitempty"`
	Targets  []snapshotTarget `json:"targets"`
}

type snapshotTarget struct {
	Table string            `json:"table"`
	Row   types.RowID       `json:"row"`
	Cols  annotation.ColSet `json:"cols"`
}

// Save writes the complete database state to w. It runs under the shared
// statement lock: concurrent queries proceed, writes wait.
func (db *DB) Save(w io.Writer) error {
	db.stmtMu.RLock()
	defer db.stmtMu.RUnlock()
	return db.writeSnapshot(w, 0)
}

// writeSnapshot serializes the state with the given included-LSN mark.
// Callers hold the statement lock (shared or exclusive).
func (db *DB) writeSnapshot(w io.Writer, lsn uint64) error {
	snap := snapshot{
		Version:          snapshotVersion,
		LSN:              lsn,
		NextAnnotationID: db.anns.NextID(),
		AnnClock:         db.annClock.Load(),
	}
	for _, name := range db.cat.TableNames() {
		tbl, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		st := snapshotTable{
			Name:    tbl.Name(),
			Indexes: tbl.IndexedColumns(),
			NextRow: tbl.NextRow(),
		}
		for _, c := range tbl.Schema().Columns {
			st.Columns = append(st.Columns, snapshotColumn{Name: c.Name, Kind: c.Kind})
		}
		tbl.Scan(func(row types.RowID, tu types.Tuple) bool {
			st.Rows = append(st.Rows, snapshotRow{ID: row, Values: tu})
			return true
		})
		snap.Tables = append(snap.Tables, st)
	}
	for _, name := range db.cat.InstanceNames() {
		in, err := db.cat.Instance(name)
		if err != nil {
			return err
		}
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		snap.Instances = append(snap.Instances, raw)
		for _, tbl := range db.cat.TablesFor(name) {
			snap.Links = append(snap.Links, snapshotLink{Instance: name, Table: tbl})
		}
	}
	// Annotations, deduplicated across multi-table targets, in id order.
	seen := map[annotation.ID]bool{}
	for _, st := range snap.Tables {
		for _, row := range db.anns.AnnotatedRows(st.Name) {
			for _, ref := range db.anns.ForTuple(st.Name, row) {
				if seen[ref.ID] {
					continue
				}
				seen[ref.ID] = true
				a, err := db.anns.Get(ref.ID)
				if err != nil {
					return err
				}
				sa := snapshotAnnotate{
					ID: a.ID, Author: a.Author, Created: a.Created,
					Text: a.Text, Title: a.Title, Document: a.Document,
				}
				for _, tg := range db.anns.TargetsOf(ref.ID) {
					sa.Targets = append(sa.Targets, snapshotTarget{
						Table: tg.Table, Row: tg.Row, Cols: tg.Columns,
					})
				}
				snap.Annotations = append(snap.Annotations, sa)
			}
		}
	}
	sortAnnotations(snap.Annotations)
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

func sortAnnotations(as []snapshotAnnotate) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j].ID < as[j-1].ID; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// snapshotToFile writes a snapshot atomically: temp file, flush, fsync,
// rename. The checkpoint failpoints are evaluated here so crash tests
// cover every ordering of "temp written / snapshot published / WAL
// reset". Callers hold the statement lock.
func (db *DB) snapshotToFile(path string, lsn uint64) error {
	if err := failpoint.Eval(failpoint.CheckpointSnapshotWrite); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := db.writeSnapshot(bw, lsn); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := failpoint.Eval(failpoint.CheckpointBeforeRename); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// SaveFile is Save to a file path (written atomically via a temp file).
func (db *DB) SaveFile(path string) error {
	db.stmtMu.RLock()
	defer db.stmtMu.RUnlock()
	return db.snapshotToFile(path, 0)
}

// corruptf builds the uniform descriptive error for malformed snapshots.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("engine: corrupt snapshot: %s", fmt.Sprintf(format, args...))
}

// Load restores a database from a snapshot produced by Save into a fresh
// DB with the given configuration. Summary objects are rebuilt by
// replaying the raw annotations through the maintenance path.
//
// Load validates the snapshot defensively — truncated or non-JSON input,
// unsupported versions, duplicate tables or rows, unknown instance
// types, and annotations targeting missing tables or rows all produce a
// descriptive error, never a panic: a corrupt snapshot must fail the
// recovery cleanly rather than take down (or silently skew) the engine.
func Load(r io.Reader, cfg Config) (*DB, error) {
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, corruptf("%v", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("engine: unsupported snapshot version %d", snap.Version)
	}
	if err := db.applySnapshot(&snap); err != nil {
		return nil, err
	}
	return db, nil
}

// applySnapshot populates db from a decoded snapshot, with the same
// defensive validation Load documents. The receiver must hold no state
// that collides with the snapshot's objects: a freshly opened DB, or one
// just cleared for a replica resync. Callers own the statement lock
// story (Load's DB is unshared; the resync path holds it exclusively).
func (db *DB) applySnapshot(snap *snapshot) error {
	for _, st := range snap.Tables {
		if st.Name == "" {
			return corruptf("table with empty name")
		}
		if len(st.Columns) == 0 {
			return corruptf("table %q has no columns", st.Name)
		}
		cols := make([]types.Column, len(st.Columns))
		for i, c := range st.Columns {
			cols[i] = types.Column{Name: c.Name, Kind: c.Kind}
		}
		tbl, err := db.cat.CreateTable(st.Name, types.Schema{Columns: cols})
		if err != nil {
			return corruptf("table %q: %v", st.Name, err)
		}
		for _, row := range st.Rows {
			if err := tbl.InsertWithID(row.ID, types.Tuple(row.Values)); err != nil {
				return corruptf("table %q row %d: %v", st.Name, row.ID, err)
			}
		}
		for _, idx := range st.Indexes {
			if err := tbl.CreateIndex(idx); err != nil {
				return corruptf("table %q index %q: %v", st.Name, idx, err)
			}
		}
		tbl.EnsureNextRow(st.NextRow)
	}
	for i, raw := range snap.Instances {
		in := new(summary.Instance)
		if err := json.Unmarshal(raw, in); err != nil {
			return corruptf("instance %d: %v", i, err)
		}
		if err := db.cat.RegisterInstance(in); err != nil {
			return corruptf("instance %q: %v", in.Name, err)
		}
	}
	for _, l := range snap.Links {
		if err := db.cat.Link(l.Instance, l.Table); err != nil {
			return corruptf("link %s -> %s: %v", l.Instance, l.Table, err)
		}
	}
	// Restore raw annotations, then replay them through maintenance in id
	// order (the order the original incremental maintenance saw them).
	for _, sa := range snap.Annotations {
		if sa.ID <= 0 {
			return corruptf("annotation with invalid id %d", sa.ID)
		}
		if len(sa.Targets) == 0 {
			return corruptf("annotation %d has no targets", sa.ID)
		}
		a := annotation.Annotation{
			ID: sa.ID, Author: sa.Author, Created: sa.Created,
			Text: sa.Text, Title: sa.Title, Document: sa.Document,
		}
		targets := make([]annotation.Target, len(sa.Targets))
		for i, tg := range sa.Targets {
			tbl, err := db.cat.Table(tg.Table)
			if err != nil {
				return corruptf("annotation %d targets unknown table %q", sa.ID, tg.Table)
			}
			if _, err := tbl.Get(tg.Row); err != nil {
				return corruptf("annotation %d targets missing row %d of %q", sa.ID, tg.Row, tg.Table)
			}
			targets[i] = annotation.Target{Table: tg.Table, Row: tg.Row, Columns: tg.Cols}
		}
		if err := db.restoreAnnotation(a, targets); err != nil {
			return corruptf("annotation %d: %v", sa.ID, err)
		}
	}
	db.anns.EnsureNextID(snap.NextAnnotationID)
	if snap.AnnClock > db.annClock.Load() {
		db.annClock.Store(snap.AnnClock)
	}
	db.recoveredLSN = snap.LSN
	return nil
}

// restoreAnnotation re-adds one annotation under its original id and
// replays it through incremental maintenance — shared by snapshot Load
// and WAL replay.
func (db *DB) restoreAnnotation(a annotation.Annotation, targets []annotation.Target) error {
	if err := db.anns.Restore(a, targets); err != nil {
		return err
	}
	db.mu.Lock()
	for _, tg := range targets {
		for _, in := range db.cat.InstancesFor(tg.Table) {
			d := db.digestFor(in, a)
			db.envs.update(tg.Table, tg.Row, func(env *summary.Envelope) {
				env.Add(in, d, tg.Columns)
			})
		}
	}
	db.mu.Unlock()
	if a.Created > db.annClock.Load() {
		db.annClock.Store(a.Created)
	}
	return nil
}

// LoadFile is Load from a file path.
func LoadFile(path string, cfg Config) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f), cfg)
}
