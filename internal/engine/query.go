package engine

import (
	"context"
	"fmt"
	"time"

	"insightnotes/internal/exec"
	"insightnotes/internal/plan"
	"insightnotes/internal/sql"
	"insightnotes/internal/trace"
	"insightnotes/internal/types"
	"insightnotes/internal/zoomin"
)

// StatementStats summarizes the runtime of one executed statement: result
// volume, pipeline work, envelope operations, and elapsed wall time. It is
// attached to Result for SELECTs and surfaced by the REPL and the server
// protocol as a one-line summary.
type StatementStats struct {
	// Rows is the number of result rows returned to the caller.
	Rows int
	// OpRows counts rows produced by all plan operators, intermediate
	// rows included.
	OpRows int64
	// Merges counts envelope merge/combine operations (joins, grouping,
	// duplicate elimination).
	Merges int64
	// Curates counts envelope curation operations (projection coverage
	// remapping).
	Curates int64
	// Wall is the statement's elapsed wall time.
	Wall time.Duration
	// QueueWait is the time the statement spent waiting for an admission
	// slot before execution began (zero when the caller measured none —
	// embedded use has no admission queue).
	QueueWait time.Duration
	// StalePending is the number of deferred summary-maintenance tasks
	// outstanding when the statement finished: above zero, the summaries
	// in this result may lag the raw annotations (degraded mode).
	StalePending int
}

// String renders the one-line per-statement summary.
func (s *StatementStats) String() string {
	out := fmt.Sprintf("%d row(s) in %s (op_rows=%d merges=%d curates=%d)",
		s.Rows, s.Wall.Round(time.Microsecond), s.OpRows, s.Merges, s.Curates)
	if s.QueueWait > 0 {
		out += fmt.Sprintf(" [queued %s]", s.QueueWait.Round(time.Microsecond))
	}
	if s.StalePending > 0 {
		out += fmt.Sprintf(" [stale: %d pending update(s)]", s.StalePending)
	}
	return out
}

// Result is the outcome of one statement.
type Result struct {
	// QID is the query id assigned to SELECT results (0 otherwise);
	// ZOOMIN commands reference it.
	QID int
	// Schema describes Rows for SELECT and ZOOMIN results.
	Schema types.Schema
	// Rows holds the result tuples with their propagated summary
	// envelopes.
	Rows []*exec.Row
	// Message summarizes DDL/DML outcomes.
	Message string
	// Count is the number of rows affected/ingested for DML.
	Count int
	// Trace holds per-operator intermediate rows when tracing was
	// requested (the Figure 5 under-the-hood view).
	Trace []exec.TraceEntry
	// Stats carries the per-statement runtime summary (SELECT and
	// EXPLAIN ANALYZE; nil for other statements).
	Stats *StatementStats
	// Ops holds the per-operator runtime breakdown of a SELECT's plan, in
	// depth-first plan order. Feeds the structured server response and the
	// slow-query log.
	Ops []OpStat
	// ZoomAnnotations carries the raw annotations retrieved by a ZOOMIN
	// command, grouped per matched result row.
	ZoomAnnotations []ZoomRowResult
	// TraceID is the statement's lifecycle trace id (empty when tracing is
	// disabled). The trace itself is retrievable via SHOW TRACE / the
	// /traces endpoint only if the tail sampler retained it.
	TraceID string
}

// Query plans and executes a SELECT under ctx, assigns a QID, and
// materializes the result into the zoom-in cache. The statement aborts with
// the context's error when ctx is cancelled or its deadline expires, polled
// at batch granularity. Options tune one execution: WithTrace enables the
// under-the-hood operator log, WithPlanOptions substitutes ablation plan
// options (such statements are not QID-registered and never touch the
// zoom-in cache), WithParallelism and WithBatchSize override the executor's
// worker count and batch size.
func (db *DB) Query(ctx context.Context, sqlText string, opts ...StatementOption) (*Result, error) {
	so := gatherOptions(opts)
	start := db.startLifecycle(&so, sqlText)
	var sel *sql.Select
	if stmt, ok := db.cachedStatement(&so, sqlText); ok {
		sel = stmt.(*sql.Select) // only SELECT templates are cached
	} else {
		psp := so.lifecycle.StartSpan(trace.SpanParse, nil)
		stmt, err := sql.Parse(sqlText)
		psp.End()
		if err != nil {
			so.lifecycle.Finish("parse_error", err)
			return nil, err
		}
		s, isSel := stmt.(*sql.Select)
		if !isSel {
			err := fmt.Errorf("engine: Query expects a SELECT; use Exec for %T", stmt)
			so.lifecycle.Finish(statementKind(stmt), err)
			return nil, err
		}
		sel = s
		db.cacheStatement(&so, sqlText, stmt)
	}
	db.stmtMu.RLock()
	defer db.stmtMu.RUnlock()
	res, err := db.querySelect(db.newExecContext(ctx, so), sel, sqlText, so)
	db.finishStatement("select", sqlText, start, res, err, so)
	return res, err
}

// statementStats folds the execution context's counters into the
// result-level summary.
func statementStats(ec *exec.ExecContext, rows int) *StatementStats {
	t := ec.Totals()
	return &StatementStats{
		Rows:    rows,
		OpRows:  t.OpRows,
		Merges:  t.Merges,
		Curates: t.Curates,
		Wall:    ec.Elapsed(),
	}
}

func (db *DB) querySelect(ec *exec.ExecContext, sel *sql.Select, sqlText string, so stmtOptions) (*Result, error) {
	popts := db.planOptions(so)
	if so.memo != nil {
		popts.Memo = so.memo
	}
	psp := so.lifecycle.StartSpan(trace.SpanPlan, nil)
	if so.planCacheAttr != "" {
		// "hit": the statement skipped parse and replays memoized access
		// paths; "miss": this execution records them for the next one.
		psp.Attr("cache", so.planCacheAttr)
	}
	popts.Span = psp
	p := plan.New(db.cat, db, popts)
	op, err := p.PlanSelect(sel)
	psp.End()
	if err != nil {
		return nil, err
	}
	esp := so.lifecycle.StartSpan(trace.SpanExec, nil)
	if esp != nil {
		ec.WithSpan(esp)
	}
	var poolHits0, poolFaults0 uint64
	if esp != nil {
		poolHits0, poolFaults0 = db.pool.Stats()
	}
	rows, err := exec.CollectContext(ec, op)
	ops := db.foldOpStats(op, ec)
	if esp != nil {
		// Pool deltas are process-wide, so concurrent statements bleed into
		// each other's counts; still the first-order "was this IO-bound"
		// signal per trace.
		poolHits1, poolFaults1 := db.pool.Stats()
		esp.AttrInt("pool_hits", int64(poolHits1-poolHits0))
		esp.AttrInt("pool_faults", int64(poolFaults1-poolFaults0))
		esp.End()
	}
	if err != nil {
		return nil, err
	}
	stats := statementStats(ec, len(rows))
	if m := db.maint; m != nil {
		stats.StalePending = m.pending()
	}
	res := &Result{
		Schema: op.Schema(),
		Rows:   rows,
		Trace:  ec.TraceEntries(),
		Stats:  stats,
		Ops:    ops,
	}
	if so.planOpts != nil {
		// Ablated plans are never registered: no QID, no zoom-in cache
		// entry, so they cannot pollute zoom-in state.
		return res, nil
	}
	qid := db.allocateQID()
	db.mu.Lock()
	db.queries[qid] = sqlText
	db.mu.Unlock()
	cached := zoomin.BuildCachedResult(qid, sqlText, op.Schema(), rows, estimateComplexity(sel, len(rows)))
	if err := db.cache.Put(cached); err != nil {
		return nil, err
	}
	res.QID = qid
	return res, nil
}

// estimateComplexity is the RCO cost proxy: relations joined, aggregation,
// distinct, and result volume all raise the cost of recreating a result.
func estimateComplexity(sel *sql.Select, resultRows int) float64 {
	c := 1.0
	c += 5 * float64(len(sel.From)+len(sel.Joins)-1) // join work
	if len(sel.GroupBy) > 0 || sel.Having != nil {
		c += 5
	}
	if sel.Distinct {
		c += 3
	}
	c += float64(resultRows) / 10
	return c
}

// resultFor returns the cached result of qid, re-executing the remembered
// SQL on a cache miss (and re-admitting the fresh result to the cache).
// The re-execution runs under ctx, so a cancelled zoom-in never writes a
// partial entry: Collect fails before the cache Put is reached. The
// boolean reports whether it was a cache hit.
func (db *DB) resultFor(ctx context.Context, qid int) (*zoomin.CachedResult, bool, error) {
	cached, hit, err := db.cache.Get(qid)
	if err != nil {
		return nil, false, err
	}
	if hit {
		return cached, true, nil
	}
	db.mu.RLock()
	sqlText, ok := db.queries[qid]
	db.mu.RUnlock()
	if !ok {
		return nil, false, fmt.Errorf("engine: unknown QID %d", qid)
	}
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, false, err
	}
	sel := stmt.(*sql.Select)
	p := plan.New(db.cat, db, db.planOptions(stmtOptions{}))
	op, err := p.PlanSelect(sel)
	if err != nil {
		return nil, false, err
	}
	ec := db.newExecContext(ctx, stmtOptions{})
	rows, err := exec.CollectContext(ec, op)
	db.foldOpStats(op, ec)
	if err != nil {
		return nil, false, err
	}
	cached = zoomin.BuildCachedResult(qid, sqlText, op.Schema(), rows, estimateComplexity(sel, len(rows)))
	if err := db.cache.Put(cached); err != nil {
		return nil, false, err
	}
	return cached, false, nil
}
