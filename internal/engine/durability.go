package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"insightnotes/internal/annotation"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/metrics"
	"insightnotes/internal/summary"
	"insightnotes/internal/trace"
	"insightnotes/internal/types"
	"insightnotes/internal/wal"
)

// Durability: the raw annotations are the paper's durable source of
// truth — summary objects are derived, incrementally maintained views
// over them — so the mutation path must survive process kills and torn
// writes. OpenDurable pairs the existing full-state snapshot with a
// write-ahead log of logical mutation records: every mutating statement
// appends one fsynced record before acknowledging, startup recovers by
// loading the latest snapshot and replaying the WAL tail (truncating
// cleanly at a torn record), and CHECKPOINT (manual or size-triggered)
// rewrites the snapshot and rotates the log.
//
// Record ordering: a mutation is applied in memory first, then logged,
// then acknowledged. Records carry fully resolved effects — assigned row
// ids, annotation ids, matched target rows, post-image values — so
// replay is deterministic regardless of what the original WHERE clauses
// would match against a recovered state.

// Default auto-checkpoint threshold when DurabilityOptions leaves it 0.
const defaultAutoCheckpointBytes = 8 << 20

// snapshotFileName / walFileName are the fixed layout of a data directory.
const (
	snapshotFileName = "snapshot.json"
	walFileName      = "wal.log"
	pageFileName     = "pages.db"
)

// DurabilityOptions configures OpenDurable.
type DurabilityOptions struct {
	// Dir is the data directory holding snapshot.json and wal.log
	// (created if missing).
	Dir string
	// AutoCheckpointBytes triggers a checkpoint when the WAL reaches this
	// size (checked after each statement). 0 means the default (8 MiB);
	// negative disables auto-checkpointing.
	AutoCheckpointBytes int64
}

// RecoveryInfo reports what OpenDurable found and did.
type RecoveryInfo struct {
	// SnapshotLoaded is true when a snapshot file existed and was loaded.
	SnapshotLoaded bool
	// SnapshotLSN is the WAL position the loaded snapshot included.
	SnapshotLSN uint64
	// Replayed / Skipped count WAL records applied and records skipped
	// because the snapshot already included them.
	Replayed, Skipped int
	// TornTruncated is true when the log ended in a torn or corrupt
	// record that was truncated away at TornOffset.
	TornTruncated bool
	TornOffset    int64
}

// String renders the recovery outcome for startup logs.
func (ri RecoveryInfo) String() string {
	src := "fresh state"
	if ri.SnapshotLoaded {
		src = fmt.Sprintf("snapshot (lsn %d)", ri.SnapshotLSN)
	}
	out := fmt.Sprintf("recovered from %s, %d wal record(s) replayed, %d skipped", src, ri.Replayed, ri.Skipped)
	if ri.TornTruncated {
		out += fmt.Sprintf("; torn wal tail truncated at byte %d", ri.TornOffset)
	}
	return out
}

// CheckpointInfo reports one completed checkpoint.
type CheckpointInfo struct {
	// LSN is the WAL position the snapshot includes.
	LSN uint64
	// SnapshotBytes is the size of the written snapshot file.
	SnapshotBytes int64
	// ReleasedWALBytes is the log size reclaimed by the rotation.
	ReleasedWALBytes int64
}

// OpenDurable opens (or creates) a crash-safe database in dir: it loads
// dir/snapshot.json when present, replays the dir/wal.log tail past the
// snapshot's LSN — truncating a torn final record rather than failing —
// and attaches the log so every subsequent mutation is fsynced before it
// is acknowledged.
func OpenDurable(cfg Config, opts DurabilityOptions) (*DB, RecoveryInfo, error) {
	var info RecoveryInfo
	if opts.Dir == "" {
		return nil, info, fmt.Errorf("engine: durability requires a data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, info, err
	}
	// Durable databases page through a file-backed store in the data
	// directory by default, so heap pages are not bound by RAM. The file is
	// recreated on open (see Config.PageFile); only the snapshot and WAL
	// carry recovery state.
	if cfg.PageFile == "" {
		cfg.PageFile = filepath.Join(opts.Dir, pageFileName)
	}
	snapPath := filepath.Join(opts.Dir, snapshotFileName)
	walPath := filepath.Join(opts.Dir, walFileName)

	var db *DB
	var err error
	if _, statErr := os.Stat(snapPath); statErr == nil {
		db, err = LoadFile(snapPath, cfg)
		if err != nil {
			return nil, info, err
		}
		info.SnapshotLoaded = true
		info.SnapshotLSN = db.recoveredLSN
	} else {
		db, err = Open(cfg)
		if err != nil {
			return nil, info, err
		}
	}

	res, err := wal.Replay(walPath, info.SnapshotLSN, db.applyWALRecord)
	if err != nil {
		return nil, info, fmt.Errorf("engine: wal recovery: %w", err)
	}
	info.Replayed = res.Replayed
	info.Skipped = res.Skipped
	info.TornTruncated = res.Torn
	info.TornOffset = res.TornOffset

	lastLSN := res.LastLSN
	if info.SnapshotLSN > lastLSN {
		lastLSN = info.SnapshotLSN
	}
	log, err := wal.Open(walPath, lastLSN)
	if err != nil {
		return nil, info, err
	}
	db.attachWAL(opts, log, info)
	return db, info, nil
}

// attachWAL arms the durability path after recovery and registers the
// WAL metric families.
func (db *DB) attachWAL(opts DurabilityOptions, log *wal.Log, info RecoveryInfo) {
	db.wal = log
	db.walDir = opts.Dir
	db.recovery = info
	switch {
	case opts.AutoCheckpointBytes > 0:
		db.autoCkptBytes = opts.AutoCheckpointBytes
	case opts.AutoCheckpointBytes == 0:
		db.autoCkptBytes = defaultAutoCheckpointBytes
	default:
		db.autoCkptBytes = 0 // disabled
	}
	m := db.metrics
	if m == nil {
		return
	}
	reg := m.reg
	reg.CounterFunc(metrics.NameWALAppendsTotal, "WAL records committed (fsynced).",
		func() float64 { return float64(log.Stats().Appends) })
	reg.CounterFunc(metrics.NameWALAppendErrorsTotal, "WAL appends that failed.",
		func() float64 { return float64(log.Stats().AppendErrors) })
	reg.CounterFunc(metrics.NameWALBytesTotal, "Framed WAL bytes committed.",
		func() float64 { return float64(log.Stats().BytesWritten) })
	reg.GaugeFunc(metrics.NameWALSizeBytes, "Current WAL file size.",
		func() float64 { return float64(log.Size()) })
	reg.GaugeFunc(metrics.NameWALLastLSN, "LSN of the last committed WAL record.",
		func() float64 { return float64(log.LastLSN()) })
	fsync := reg.Histogram(metrics.NameWALFsyncSeconds,
		"WAL commit fsync latency in seconds.", metrics.DefLatencyBuckets)
	log.FsyncObserver = func(d time.Duration) { fsync.Observe(d.Seconds()) }
	reg.CounterFunc(metrics.NameWALGroupCommitBatchesTotal,
		"Group-commit batches (commit fsyncs that made records durable).",
		func() float64 { return float64(log.Stats().GroupCommitBatches) })
	reg.CounterFunc(metrics.NameWALGroupCommitRecordsTotal,
		"Records that shared their commit fsync with at least one other record.",
		func() float64 { return float64(log.Stats().GroupCommitRecords) })
	db.ckptTotal = reg.Counter(metrics.NameWALCheckpointsTotal,
		"Checkpoints taken (manual CHECKPOINT and size-triggered).")
	db.ckptSeconds = reg.Histogram(metrics.NameWALCheckpointSeconds,
		"Checkpoint duration in seconds.", metrics.DefLatencyBuckets)
	reg.GaugeFunc(metrics.NameWALRecoveryReplayed, "WAL records replayed at the last startup.",
		func() float64 { return float64(db.recovery.Replayed) })
	reg.GaugeFunc(metrics.NameWALRecoverySkipped, "Stale WAL records skipped by LSN at the last startup.",
		func() float64 { return float64(db.recovery.Skipped) })
	reg.CounterFunc(metrics.NameWALRecoveryTornTotal, "Torn WAL tails truncated at startup.",
		func() float64 {
			if db.recovery.TornTruncated {
				return 1
			}
			return 0
		})
	reg.CounterFunc(metrics.NameWALSnapshotLoadedTotal, "Startups that recovered from a snapshot.",
		func() float64 {
			if db.recovery.SnapshotLoaded {
				return 1
			}
			return 0
		})
}

// Durable reports whether the DB runs with a write-ahead log attached.
func (db *DB) Durable() bool { return db.wal != nil }

// Checkpoint persists a snapshot of the full state to the data directory
// and rotates the WAL. Crash orderings are safe: the snapshot is
// published by atomic rename, and a crash between the rename and the log
// reset only leaves stale records that recovery skips by LSN.
func (db *DB) Checkpoint() (CheckpointInfo, error) {
	var ci CheckpointInfo
	if db.wal == nil {
		return ci, fmt.Errorf("engine: CHECKPOINT requires durability (open with a data directory)")
	}
	start := time.Now()
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	ci.LSN = db.wal.LastLSN()
	ci.ReleasedWALBytes = db.wal.Size()
	snapPath := filepath.Join(db.walDir, snapshotFileName)
	if err := db.snapshotToFile(snapPath, ci.LSN); err != nil {
		return ci, fmt.Errorf("engine: checkpoint: %w", err)
	}
	if st, err := os.Stat(snapPath); err == nil {
		ci.SnapshotBytes = st.Size()
	}
	// The snapshot is published. From here a crash is recoverable even if
	// the log rotation below never happens (LSN skip) — modeled by the
	// after-rename failpoint.
	if err := failpoint.Eval(failpoint.CheckpointAfterRename); err != nil {
		return ci, fmt.Errorf("engine: checkpoint: %w", err)
	}
	if err := db.wal.Reset(ci.LSN); err != nil {
		return ci, fmt.Errorf("engine: checkpoint wal rotation: %w", err)
	}
	db.ckptTotal.Inc()
	db.ckptSeconds.Observe(time.Since(start).Seconds())
	return ci, nil
}

// maybeAutoCheckpoint runs a checkpoint when the WAL has outgrown the
// configured threshold. Called after each statement, outside the
// statement lock. Errors are reported on stderr rather than failing the
// triggering statement — the durability of already-acknowledged records
// is unaffected by a failed checkpoint.
func (db *DB) maybeAutoCheckpoint() {
	if db.wal == nil || db.autoCkptBytes <= 0 || db.wal.Size() < db.autoCkptBytes {
		return
	}
	if _, err := db.Checkpoint(); err != nil {
		fmt.Fprintf(os.Stderr, "insightnotes: auto-checkpoint: %v\n", err)
	}
}

// ---- WAL records ----

// Record types. The payloads carry resolved effects (ids, post-images),
// making replay deterministic; see the package comment above.
const (
	walTypeCreateTable    = "create_table"
	walTypeCreateIndex    = "create_index"
	walTypeDropTable      = "drop_table"
	walTypeInsert         = "insert"
	walTypeUpdate         = "update"
	walTypeDelete         = "delete"
	walTypeCreateInstance = "create_instance"
	walTypeDropInstance   = "drop_instance"
	walTypeLink           = "link"
	walTypeAnnotate       = "annotate"
	walTypeDropAnnotation = "drop_annotation"
	walTypeTrain          = "train"
	// Batched bulk-ingest records: one record carries a whole BULK INSERT
	// (walRows payload) or a whole AnnotateBatch (walAnnotateBatch), so the
	// WAL write and commit fsync are paid once per batch.
	walTypeBulkInsert    = "bulk_insert"
	walTypeAnnotateBatch = "annotate_batch"
)

type walCreateTable struct {
	Name    string           `json:"name"`
	Columns []snapshotColumn `json:"columns"`
}

type walCreateIndex struct {
	Table  string `json:"table"`
	Column string `json:"column"`
}

type walDropTable struct {
	Name string `json:"name"`
}

// walRows serves insert (assigned ids) and update (post-images).
type walRows struct {
	Table string        `json:"table"`
	Rows  []snapshotRow `json:"rows"`
}

type walDelete struct {
	Table string        `json:"table"`
	Rows  []types.RowID `json:"rows"`
}

type walCreateInstance struct {
	// Instance is the summary.Instance JSON at creation time (untrained;
	// later TRAIN records replay the training).
	Instance json.RawMessage `json:"instance"`
}

type walDropInstance struct {
	Name string `json:"name"`
}

type walLink struct {
	Instance string `json:"instance"`
	Table    string `json:"table"`
	Unlink   bool   `json:"unlink,omitempty"`
}

type walAnnotate struct {
	Ann snapshotAnnotate `json:"ann"`
}

type walAnnotateBatch struct {
	Anns []snapshotAnnotate `json:"anns"`
}

type walDropAnnotation struct {
	ID annotation.ID `json:"id"`
}

type walTrain struct {
	Instance string      `json:"instance"`
	Samples  [][2]string `json:"samples"`
}

// logRecord stages one mutation record into the WAL without waiting for
// its commit fsync, parking the sync token in db.pendingSync. The caller
// holds stmtMu exclusively; the statement entry point takes the token
// (takePendingSync) before unlocking and calls syncWAL after, so
// concurrent writers share commit fsyncs (group commit) instead of
// serializing an fsync each under the exclusive lock. A nil WAL (no
// durability, or recovery replay in progress) is a no-op. On error the
// statement must be reported failed: the in-memory mutation was applied
// but is not durable, so the caller should treat the engine as
// compromised and restart from the log.
func (db *DB) logRecord(recType string, data any) error {
	if db.wal == nil {
		return nil
	}
	sp := db.writeSpan.Child(trace.SpanWALAppend)
	sp.Attr("rec", recType)
	_, tok, err := db.wal.Stage(recType, data)
	sp.End()
	if err != nil {
		return fmt.Errorf("engine: wal append (%s): %w", recType, err)
	}
	db.pendingSync = tok
	return nil
}

// takePendingSync returns and clears the token of the record staged by
// the current statement. Must be called while still holding stmtMu
// exclusively (the field is guarded by it).
func (db *DB) takePendingSync() wal.SyncToken {
	tok := db.pendingSync
	db.pendingSync = wal.SyncToken{}
	return tok
}

// syncWAL waits until the staged record behind tok is durable, sharing
// the commit fsync with concurrent committers. Called after stmtMu is
// released; the zero token (read-only statement, no WAL, failed before
// staging) is a no-op.
func (db *DB) syncWAL(tok wal.SyncToken) error {
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Sync(tok); err != nil {
		return fmt.Errorf("engine: wal sync: %w", err)
	}
	return nil
}

// applyWALRecord replays one logical record during recovery. The WAL is
// not yet attached, so nothing here re-logs.
func (db *DB) applyWALRecord(rec wal.Record) error {
	switch rec.Type {
	case walTypeCreateTable:
		var r walCreateTable
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		cols := make([]types.Column, len(r.Columns))
		for i, c := range r.Columns {
			cols[i] = types.Column{Name: c.Name, Kind: c.Kind}
		}
		// Replayed DDL invalidates cached plans just like the statement
		// path does — read replicas apply these records while serving
		// cached SELECTs. Startup recovery starts with an empty cache, so
		// the calls are free there. Same below for index/drop records.
		db.invalidatePlanCache()
		_, err := db.cat.CreateTable(r.Name, types.Schema{Columns: cols})
		return err
	case walTypeCreateIndex:
		var r walCreateIndex
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		tbl, err := db.cat.Table(r.Table)
		if err != nil {
			return err
		}
		db.invalidatePlanCache()
		return tbl.CreateIndex(r.Column)
	case walTypeDropTable:
		var r walDropTable
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		db.invalidatePlanCache()
		return db.dropTable(r.Name)
	case walTypeInsert, walTypeBulkInsert:
		var r walRows
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		tbl, err := db.cat.Table(r.Table)
		if err != nil {
			return err
		}
		for _, row := range r.Rows {
			if err := tbl.InsertWithID(row.ID, types.Tuple(row.Values)); err != nil {
				return err
			}
		}
		return nil
	case walTypeUpdate:
		var r walRows
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		tbl, err := db.cat.Table(r.Table)
		if err != nil {
			return err
		}
		for _, row := range r.Rows {
			if err := tbl.Update(row.ID, types.Tuple(row.Values)); err != nil {
				return err
			}
		}
		return nil
	case walTypeDelete:
		var r walDelete
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		tbl, err := db.cat.Table(r.Table)
		if err != nil {
			return err
		}
		for _, row := range r.Rows {
			if _, err := db.deleteRow(tbl, row); err != nil {
				return err
			}
		}
		return nil
	case walTypeCreateInstance:
		var r walCreateInstance
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		in := new(summary.Instance)
		if err := json.Unmarshal(r.Instance, in); err != nil {
			return err
		}
		return db.cat.RegisterInstance(in)
	case walTypeDropInstance:
		var r walDropInstance
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		db.invalidatePlanCache()
		return db.dropInstance(r.Name)
	case walTypeLink:
		var r walLink
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if r.Unlink {
			return db.unlinkInstance(r.Instance, r.Table)
		}
		return db.linkInstance(r.Instance, r.Table)
	case walTypeAnnotate:
		var r walAnnotate
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		sa := r.Ann
		a := annotation.Annotation{
			ID: sa.ID, Author: sa.Author, Created: sa.Created,
			Text: sa.Text, Title: sa.Title, Document: sa.Document,
		}
		targets := make([]annotation.Target, len(sa.Targets))
		for i, tg := range sa.Targets {
			targets[i] = annotation.Target{Table: tg.Table, Row: tg.Row, Columns: tg.Cols}
		}
		return db.restoreAnnotation(a, targets)
	case walTypeAnnotateBatch:
		var r walAnnotateBatch
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		for _, sa := range r.Anns {
			a := annotation.Annotation{
				ID: sa.ID, Author: sa.Author, Created: sa.Created,
				Text: sa.Text, Title: sa.Title, Document: sa.Document,
			}
			targets := make([]annotation.Target, len(sa.Targets))
			for i, tg := range sa.Targets {
				targets[i] = annotation.Target{Table: tg.Table, Row: tg.Row, Columns: tg.Cols}
			}
			if err := db.restoreAnnotation(a, targets); err != nil {
				return err
			}
		}
		return nil
	case walTypeDropAnnotation:
		var r walDropAnnotation
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		return db.dropAnnotation(r.ID)
	case walTypeTrain:
		var r walTrain
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		return db.trainClassifier(r.Instance, r.Samples)
	default:
		return fmt.Errorf("engine: unknown wal record type %q", rec.Type)
	}
}
