package engine

import (
	"fmt"
	"sort"

	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/exec"
	"insightnotes/internal/plan"
	"insightnotes/internal/sql"
	"insightnotes/internal/summary"
	"insightnotes/internal/textmining"
	"insightnotes/internal/trace"
	"insightnotes/internal/types"
)

// newNaiveBayes adapts the textmining constructor for engine use.
func newNaiveBayes(labels []string) (*textmining.NaiveBayes, error) {
	return textmining.NewNaiveBayes(labels)
}

// AnnotationRequest describes one annotation to ingest programmatically.
type AnnotationRequest struct {
	Text     string
	Title    string
	Document string
	Author   string
	// Table names the target relation.
	Table string
	// Columns restricts the annotation to specific columns; empty means the
	// whole row.
	Columns []string
	// Where filters the target tuples (nil = every tuple). It is compiled
	// against the table schema.
	Where sql.Expr
	// Created optionally fixes the timestamp (0 = engine clock).
	Created int64
}

// TargetSpec names one attachment scope of an annotation: a table, an
// optional column restriction, and an optional tuple filter.
type TargetSpec struct {
	Table   string
	Columns []string
	Where   sql.Expr
}

// Annotate ingests one annotation: it resolves the matching tuples,
// persists the raw annotation with one target per tuple, and incrementally
// maintains the summary objects of every instance linked to the table —
// using the summarize-once digest cache when the instance's invariant
// properties allow it. It returns the annotation id and the number of
// tuples annotated.
func (db *DB) Annotate(req AnnotationRequest) (annotation.ID, int, error) {
	return db.AnnotateTargets(annotation.Annotation{
		Author:   req.Author,
		Created:  req.Created,
		Text:     req.Text,
		Title:    req.Title,
		Document: req.Document,
	}, []TargetSpec{{Table: req.Table, Columns: req.Columns, Where: req.Where}})
}

// AnnotateTargets ingests one annotation attached to multiple scopes —
// possibly across several relations, the case the paper's Figure 2 join
// semantics and the summarize-once optimization are built around.
func (db *DB) AnnotateTargets(a annotation.Annotation, specs []TargetSpec) (annotation.ID, int, error) {
	db.stmtMu.Lock()
	id, n, err := db.annotateTargets(a, specs)
	tok := db.takePendingSync()
	db.stmtMu.Unlock()
	if serr := db.syncWAL(tok); err == nil {
		err = serr
	}
	if err != nil {
		return 0, 0, err
	}
	return id, n, nil
}

func (db *DB) annotateTargets(a annotation.Annotation, specs []TargetSpec) (annotation.ID, int, error) {
	if len(specs) == 0 {
		return 0, 0, fmt.Errorf("engine: annotation needs at least one target")
	}
	type resolved struct {
		table string
		rows  []types.RowID
		cols  annotation.ColSet
	}
	var all []resolved
	var targets []annotation.Target
	for _, spec := range specs {
		tbl, err := db.cat.Table(spec.Table)
		if err != nil {
			return 0, 0, err
		}
		cols, err := resolveColumns(tbl.Schema(), spec.Columns)
		if err != nil {
			return 0, 0, err
		}
		rows, err := db.matchRows(tbl, spec.Where)
		if err != nil {
			return 0, 0, err
		}
		if len(rows) == 0 {
			return 0, 0, fmt.Errorf("engine: annotation matches no tuples of %s", spec.Table)
		}
		all = append(all, resolved{table: tbl.Name(), rows: rows, cols: cols})
		for _, row := range rows {
			targets = append(targets, annotation.Target{Table: tbl.Name(), Row: row, Columns: cols})
		}
	}
	if a.Created == 0 {
		a.Created = db.nextAnnotationTime()
	}
	id, err := db.anns.Add(a, targets)
	if err != nil {
		return 0, 0, err
	}
	a.ID = id

	// Incremental maintenance: update each linked instance's object on
	// every target tuple — synchronously when fresh, deferred to the
	// catch-up worker when degraded (see maintenance.go).
	task := maintTask{ann: a}
	for _, r := range all {
		task.targets = append(task.targets, maintTarget{
			table: r.table, rows: r.rows, cols: r.cols,
			instances: db.cat.InstancesFor(r.table),
		})
	}
	db.maintain(task)

	// Log the fully resolved annotation — assigned id, engine-clock
	// timestamp, and the matched target rows — so replay does not depend
	// on re-evaluating the WHERE clauses.
	sa := snapshotAnnotate{
		ID: id, Author: a.Author, Created: a.Created,
		Text: a.Text, Title: a.Title, Document: a.Document,
	}
	for _, tg := range targets {
		sa.Targets = append(sa.Targets, snapshotTarget{Table: tg.Table, Row: tg.Row, Cols: tg.Columns})
	}
	if err := db.logRecord(walTypeAnnotate, walAnnotate{Ann: sa}); err != nil {
		return 0, 0, err
	}
	return id, len(targets), nil
}

// AnnotateBatch is the COPY-style bulk path for annotation ingest: the
// whole batch is resolved and validated first (a bad request fails the
// batch before anything mutates), then applied under ONE exclusive lock
// acquisition, logged as ONE batched WAL record sharing one commit fsync,
// and — the half that matters under load — its summary maintenance is fed
// to the degraded-maintenance queue as one batch append instead of
// per-annotation lock traffic. It returns the assigned annotation ids and
// the total number of (annotation, tuple) attachments.
func (db *DB) AnnotateBatch(reqs []AnnotationRequest) ([]annotation.ID, int, error) {
	if len(reqs) == 0 {
		return nil, 0, fmt.Errorf("engine: AnnotateBatch needs at least one request")
	}
	db.stmtMu.Lock()
	ids, n, err := db.annotateBatch(reqs)
	tok := db.takePendingSync()
	db.stmtMu.Unlock()
	if serr := db.syncWAL(tok); err == nil {
		err = serr
	}
	if err != nil {
		return nil, 0, err
	}
	return ids, n, nil
}

func (db *DB) annotateBatch(reqs []AnnotationRequest) ([]annotation.ID, int, error) {
	// Phase 1: resolve every request against the catalog. Nothing has
	// mutated yet, so any error here leaves the engine untouched.
	type resolved struct {
		ann   annotation.Annotation
		table string
		rows  []types.RowID
		cols  annotation.ColSet
	}
	all := make([]resolved, 0, len(reqs))
	for _, req := range reqs {
		tbl, err := db.cat.Table(req.Table)
		if err != nil {
			return nil, 0, err
		}
		cols, err := resolveColumns(tbl.Schema(), req.Columns)
		if err != nil {
			return nil, 0, err
		}
		rows, err := db.matchRows(tbl, req.Where)
		if err != nil {
			return nil, 0, err
		}
		if len(rows) == 0 {
			return nil, 0, fmt.Errorf("engine: annotation matches no tuples of %s", req.Table)
		}
		all = append(all, resolved{
			ann: annotation.Annotation{
				Author: req.Author, Created: req.Created,
				Text: req.Text, Title: req.Title, Document: req.Document,
			},
			table: tbl.Name(), rows: rows, cols: cols,
		})
	}

	// Phase 2: apply. Ids and timestamps are assigned here; the batched
	// WAL record carries them fully resolved, like the single path.
	ids := make([]annotation.ID, 0, len(all))
	tasks := make([]maintTask, 0, len(all))
	var wb walAnnotateBatch
	total := 0
	for i := range all {
		r := &all[i]
		if r.ann.Created == 0 {
			r.ann.Created = db.nextAnnotationTime()
		}
		targets := make([]annotation.Target, len(r.rows))
		for j, row := range r.rows {
			targets[j] = annotation.Target{Table: r.table, Row: row, Columns: r.cols}
		}
		id, err := db.anns.Add(r.ann, targets)
		if err != nil {
			return nil, 0, err
		}
		r.ann.ID = id
		ids = append(ids, id)
		total += len(targets)
		tasks = append(tasks, maintTask{ann: r.ann, targets: []maintTarget{{
			table: r.table, rows: r.rows, cols: r.cols,
			instances: db.cat.InstancesFor(r.table),
		}}})
		sa := snapshotAnnotate{
			ID: id, Author: r.ann.Author, Created: r.ann.Created,
			Text: r.ann.Text, Title: r.ann.Title, Document: r.ann.Document,
		}
		for _, tg := range targets {
			sa.Targets = append(sa.Targets, snapshotTarget{Table: tg.Table, Row: tg.Row, Cols: tg.Columns})
		}
		wb.Anns = append(wb.Anns, sa)
	}
	db.maintainBatch(tasks)
	if err := db.logRecord(walTypeAnnotateBatch, wb); err != nil {
		return nil, 0, err
	}
	return ids, total, nil
}

// resolveColumns maps column names to a ColSet (empty names = whole row).
func resolveColumns(schema types.Schema, names []string) (annotation.ColSet, error) {
	if len(names) == 0 {
		return annotation.WholeRow(schema.Len()), nil
	}
	var cols annotation.ColSet
	for _, n := range names {
		ix, err := schema.ColumnIndex(n)
		if err != nil {
			return 0, err
		}
		cols = cols.Union(annotation.Col(ix))
	}
	return cols, nil
}

// matchRows returns the row ids of tbl satisfying where (all rows when
// nil), in ascending row-id order. The access path is cost-based: when an
// indexed conjunct's estimated cost undercuts the full scan, candidates
// come from the index and the full predicate is re-evaluated per
// candidate; otherwise the heap is scanned. Callers hold the exclusive
// statement lock (UPDATE, DELETE, ANNOTATE all mutate), so the decision
// is recorded on a stmt.plan span under db.writeSpan when one is active.
func (db *DB) matchRows(tbl *catalog.Table, where sql.Expr) ([]types.RowID, error) {
	path := plan.ChooseDMLPath(tbl, where, db.cfg.PlanOptions.DisableIndexScan)
	if sp := db.writeSpan.Child(trace.SpanPlan); sp != nil {
		sp.Attr("path", path.Name)
		sp.AttrFloat("cost_seq", path.CostSeq)
		if path.Col != "" {
			sp.Attr("index_col", path.Col)
			sp.AttrFloat("cost_index", path.CostIndex)
			sp.AttrInt("est_rows", int64(path.Est))
		}
		sp.End()
	}

	var pred *exec.Compiled
	if where != nil {
		var err error
		pred, err = exec.Compile(where, tbl.Schema())
		if err != nil {
			return nil, err
		}
	}

	if path.Name != "full_scan" {
		var cand []types.RowID
		var err error
		if path.IsRange {
			cand, err = tbl.LookupByIndexRange(path.Col, path.Lo, path.Hi, path.LoInc, path.HiInc)
		} else {
			cand, err = tbl.LookupByIndex(path.Col, path.Val)
		}
		if err != nil {
			return nil, err
		}
		// The index served one conjunct; the full predicate still decides.
		var rows []types.RowID
		for _, row := range cand {
			tu, err := tbl.Get(row)
			if err != nil {
				return nil, err
			}
			v, err := pred.Eval(tu)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				rows = append(rows, row)
			}
		}
		// Heap scans yield ascending row ids; index candidates arrive in key
		// order. Sort so downstream effects (WAL records, messages) are
		// identical whichever path won.
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		return rows, nil
	}

	var rows []types.RowID
	var evalErr error
	err := tbl.Scan(func(row types.RowID, tu types.Tuple) bool {
		if pred != nil {
			v, err := pred.Eval(tu)
			if err != nil {
				evalErr = err
				return false
			}
			if !v.Truthy() {
				return true
			}
		}
		rows = append(rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return rows, nil
}

// LinkInstance links a registered instance to a table and summarizes the
// table's existing annotations under it (the Figure 4 behaviour: the
// maintained summary objects change when links change).
func (db *DB) LinkInstance(instanceName, table string) error {
	db.stmtMu.Lock()
	err := db.linkInstance(instanceName, table)
	if err == nil {
		err = db.logRecord(walTypeLink, walLink{Instance: instanceName, Table: table})
	}
	tok := db.takePendingSync()
	db.stmtMu.Unlock()
	if serr := db.syncWAL(tok); err == nil {
		err = serr
	}
	return err
}

func (db *DB) linkInstance(instanceName, table string) error {
	// Link changes rewrite maintained envelopes; deferred maintenance must
	// land first so catch-up never resurrects pre-link state.
	db.drainMaintenance()
	in, err := db.cat.Instance(instanceName)
	if err != nil {
		return err
	}
	tbl, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	if err := db.cat.Link(instanceName, tbl.Name()); err != nil {
		return err
	}
	// Backfill: summarize existing annotations under the new instance.
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, row := range db.anns.AnnotatedRows(tbl.Name()) {
		for _, ref := range db.anns.ForTuple(tbl.Name(), row) {
			a, err := db.anns.Get(ref.ID)
			if err != nil {
				return err
			}
			d := db.digestFor(in, a)
			db.envs.update(tbl.Name(), row, func(env *summary.Envelope) {
				env.Add(in, d, ref.Columns)
			})
		}
	}
	return nil
}

// UnlinkInstance unlinks an instance from a table and removes its objects
// from the table's maintained envelopes.
func (db *DB) UnlinkInstance(instanceName, table string) error {
	db.stmtMu.Lock()
	err := db.unlinkInstance(instanceName, table)
	if err == nil {
		err = db.logRecord(walTypeLink, walLink{Instance: instanceName, Table: table, Unlink: true})
	}
	tok := db.takePendingSync()
	db.stmtMu.Unlock()
	if serr := db.syncWAL(tok); err == nil {
		err = serr
	}
	return err
}

func (db *DB) unlinkInstance(instanceName, table string) error {
	// A queued task holding this instance would re-add its objects after
	// the unlink removed them; catch up first.
	db.drainMaintenance()
	tbl, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	if err := db.cat.Unlink(instanceName, tbl.Name()); err != nil {
		return err
	}
	// The instance index names exactly the envelopes carrying this
	// instance's objects — no full sweep over the table's stripe maps.
	db.envs.mutateInstance(tbl.Name(), instanceName, func(_ types.RowID, env *summary.Envelope) bool {
		env.RemoveInstance(instanceName)
		return env.IsEmpty()
	})
	return nil
}

// RebuildSummaries recomputes every envelope of table from the raw
// annotations, bypassing the digest cache — the full-recomputation
// baseline that the incremental-maintenance benchmark (E4) compares
// against. It returns the number of (annotation, tuple) summarization
// steps performed.
func (db *DB) RebuildSummaries(table string) (int, error) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	return db.rebuildSummaries(table)
}

func (db *DB) rebuildSummaries(table string) (int, error) {
	// The rebuild reads the raw annotations, which already include any
	// queued ones — draining first keeps the worker from re-applying them
	// on top of the rebuilt envelopes.
	db.drainMaintenance()
	tbl, err := db.cat.Table(table)
	if err != nil {
		return 0, err
	}
	instances := db.cat.InstancesFor(tbl.Name())
	db.mu.Lock()
	defer db.mu.Unlock()
	db.envs.dropTable(tbl.Name())
	steps := 0
	for _, row := range db.anns.AnnotatedRows(tbl.Name()) {
		for _, ref := range db.anns.ForTuple(tbl.Name(), row) {
			a, err := db.anns.Get(ref.ID)
			if err != nil {
				return steps, err
			}
			for _, in := range instances {
				d := in.Summarize(a)
				db.envs.update(tbl.Name(), row, func(env *summary.Envelope) {
					env.Add(in, d, ref.Columns)
				})
				steps++
			}
		}
	}
	return steps, nil
}

// TrainClassifier feeds labeled samples into a classifier instance.
// Training refines future summarization; existing summary objects are
// refreshed only by RebuildSummaries (documented behaviour).
func (db *DB) TrainClassifier(instanceName string, samples [][2]string) error {
	db.stmtMu.Lock()
	err := db.trainClassifier(instanceName, samples)
	if err == nil {
		err = db.logRecord(walTypeTrain, walTrain{Instance: instanceName, Samples: samples})
	}
	tok := db.takePendingSync()
	db.stmtMu.Unlock()
	if serr := db.syncWAL(tok); err == nil {
		err = serr
	}
	return err
}

func (db *DB) trainClassifier(instanceName string, samples [][2]string) error {
	// Queued maintenance must summarize under the pre-training model —
	// exactly what the synchronous path would have done at ingest time.
	db.drainMaintenance()
	in, err := db.cat.Instance(instanceName)
	if err != nil {
		return err
	}
	if in.Type != summary.TypeClassifier {
		return fmt.Errorf("engine: TRAIN SUMMARY targets classifier instances; %q is a %s", instanceName, in.Type)
	}
	for _, s := range samples {
		if err := in.Classifier.Learn(s[0], s[1]); err != nil {
			return err
		}
	}
	// Trained model invalidates cached digests for this instance.
	db.mu.Lock()
	delete(db.digests, instanceName)
	db.mu.Unlock()
	if m := db.metrics; m != nil {
		m.retrain.Add(int64(len(samples)))
	}
	return nil
}
