package engine

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"insightnotes/internal/exec"
	"insightnotes/internal/metrics"
	"insightnotes/internal/sql"
	"insightnotes/internal/trace"
)

// timingSampleInterval is the statement sampling rate for per-operator
// wall-time histograms. Timing costs two clock reads per operator per row,
// so instead of paying it on every statement, every Nth statement runs with
// timing enabled and feeds the insightnotes_exec_op_seconds histograms.
// Counters (rows, merges, curates) are exact on every statement; only the
// latency histograms are sampled.
const timingSampleInterval = 16

// dbMetrics owns every metric the engine registers. A nil *dbMetrics
// (Config.DisableMetrics) turns all observation paths into no-ops; the
// metrics package's collectors are themselves nil-safe, so the hot paths
// stay branch-light either way.
type dbMetrics struct {
	reg *metrics.Registry

	statements  *metrics.CounterVec   // {kind}
	errors      *metrics.CounterVec   // {kind}
	seconds     *metrics.HistogramVec // {kind}
	slowQueries *metrics.Counter
	resultRows  *metrics.Counter

	opSeconds *metrics.HistogramVec // {op}, sampled
	opRows    *metrics.CounterVec   // {op}
	opBatches *metrics.CounterVec   // {op}
	opMerges  *metrics.CounterVec   // {op}
	opCurates *metrics.CounterVec   // {op}

	scanMorsels *metrics.Counter
	scanWorkers *metrics.Counter

	digestHits   *metrics.Counter
	digestMisses *metrics.Counter
	retrain      *metrics.Counter

	zoomRequests  *metrics.Counter
	zoomCancelled *metrics.Counter

	// sampleClock drives the timing sampling described above.
	sampleClock atomic.Int64
}

// newDBMetrics builds the registry for db: event counters owned here, plus
// function-backed collectors reading the engine's existing bookkeeping
// (zoom-in cache stats, annotation store sizes, summary store sizes, plan
// counters) at scrape time — those sources stay the single source of truth
// and are never double-counted.
func newDBMetrics(db *DB) *dbMetrics {
	reg := metrics.NewRegistry()
	m := &dbMetrics{
		reg:        reg,
		statements: reg.CounterVec(metrics.NameEngineStatementsTotal, "Statements executed, by statement kind.", "kind"),
		errors:     reg.CounterVec(metrics.NameEngineStatementErrorsTotal, "Statements that returned an error, by statement kind.", "kind"),
		seconds: reg.HistogramVec(metrics.NameEngineStatementSeconds,
			"Statement wall time in seconds, by statement kind.", "kind", metrics.DefLatencyBuckets),
		slowQueries: reg.Counter(metrics.NameEngineSlowQueriesTotal,
			"Statements at or above the slow-query threshold."),
		resultRows: reg.Counter(metrics.NameEngineResultRowsTotal,
			"Result rows returned to callers."),
		opSeconds: reg.HistogramVec(metrics.NameExecOpSeconds,
			"Cumulative per-statement operator wall time in seconds, by operator type (sampled).",
			"op", metrics.DefLatencyBuckets),
		opRows: reg.CounterVec(metrics.NameExecOpRowsTotal,
			"Rows produced by plan operators (intermediate rows included), by operator type.", "op"),
		opBatches: reg.CounterVec(metrics.NameExecOpBatchesTotal,
			"Batches produced by plan operators, by operator type.", "op"),
		opMerges: reg.CounterVec(metrics.NameExecOpMergesTotal,
			"Envelope merge/combine operations, by operator type.", "op"),
		opCurates: reg.CounterVec(metrics.NameExecOpCuratesTotal,
			"Envelope curation (coverage remap) operations, by operator type.", "op"),
		digestHits: reg.Counter(metrics.NameSummaryDigestHitsTotal,
			"Summarize-once digest cache hits (summarization skipped)."),
		digestMisses: reg.Counter(metrics.NameSummaryDigestMissesTotal,
			"Summarize-once digest cache misses (summarization performed)."),
		retrain: reg.Counter(metrics.NameSummaryRetrainTotal,
			"Classifier training samples ingested (each invalidates cached digests)."),
		zoomRequests: reg.Counter(metrics.NameZoominRequestsTotal,
			"Zoom-in requests (SQL and programmatic)."),
		zoomCancelled: reg.Counter(metrics.NameZoominCancelledTotal,
			"Zoom-in requests aborted by context cancellation or deadline."),
		scanMorsels: reg.Counter(metrics.NameExecScanMorselsTotal,
			"Morsels processed by parallel scan workers."),
		scanWorkers: reg.Counter(metrics.NameExecScanWorkersTotal,
			"Worker goroutines launched by parallel scans."),
	}

	// Zoom-in materialization cache: the cache's own stats are authoritative.
	cache := db.cache
	reg.CounterFunc(metrics.NameZoominCacheHitsTotal, "Zoom-in cache hits.",
		func() float64 { return float64(cache.Stats().Hits) })
	reg.CounterFunc(metrics.NameZoominCacheMissesTotal, "Zoom-in cache misses (result re-executed).",
		func() float64 { return float64(cache.Stats().Misses) })
	reg.CounterFunc(metrics.NameZoominCacheEvictionsTotal, "Zoom-in cache evictions under the byte budget.",
		func() float64 { return float64(cache.Stats().Evictions) })
	reg.CounterFunc(metrics.NameZoominCachePutsTotal, "Results admitted into the zoom-in cache.",
		func() float64 { return float64(cache.Stats().Puts) })
	reg.CounterFunc(metrics.NameZoominCacheRejectedTotal, "Results too large for the zoom-in cache budget.",
		func() float64 { return float64(cache.Stats().Rejected) })
	reg.GaugeFunc(metrics.NameZoominCacheBytes, "Bytes resident in the zoom-in cache.",
		func() float64 { return float64(cache.Stats().UsedBytes) })
	reg.GaugeFunc(metrics.NameZoominCacheEntries, "Entries resident in the zoom-in cache.",
		func() float64 { return float64(cache.Stats().Entries) })

	// Plan cache: the cache's own counters are authoritative (absent when
	// Config.PlanCacheSize < 0 disabled it).
	if pcache := db.planCache; pcache != nil {
		reg.CounterFunc(metrics.NamePlancacheHits, "Plan-cache hits (parse and access-path costing skipped).",
			func() float64 { return float64(pcache.Stats().Hits) })
		reg.CounterFunc(metrics.NamePlancacheMisses, "Plan-cache misses (cacheable statement parsed and costed).",
			func() float64 { return float64(pcache.Stats().Misses) })
		reg.CounterFunc(metrics.NamePlancacheEvictions, "Plan-cache entries evicted past the LRU capacity.",
			func() float64 { return float64(pcache.Stats().Evictions) })
		reg.GaugeFunc(metrics.NamePlancacheEntries, "Statement templates currently in the plan cache.",
			func() float64 { return float64(pcache.Stats().Entries) })
	}

	// Metadata store sizes — the paper's motivating quantity ("even
	// metadata is getting big").
	// Store pointers are snapshotted under db.mu: a replica snapshot
	// resync replaces them wholesale, and scrapes arrive off the statement
	// lock.
	reg.GaugeFunc(metrics.NameEngineAnnotations, "Raw annotations stored.",
		func() float64 { return float64(db.annStore().Count()) })
	reg.GaugeFunc(metrics.NameEngineAnnotationBytes, "Approximate bytes of raw annotation text stored.",
		func() float64 { return float64(db.annStore().RawBytes()) })
	reg.GaugeFunc(metrics.NameEngineEnvelopes, "Maintained per-tuple summary envelopes.",
		func() float64 { return float64(db.envStore().count()) })
	reg.GaugeFunc(metrics.NameEngineSummaryBytes, "Approximate bytes of the summary store (all tables).",
		func() float64 { return float64(db.envStore().totalBytes()) })
	reg.GaugeFunc(metrics.NameEngineDigestEntries, "Cached summarize-once digests.",
		func() float64 {
			db.mu.RLock()
			defer db.mu.RUnlock()
			n := 0
			for _, byAnn := range db.digests {
				n += len(byAnn)
			}
			return float64(n)
		})

	// Summarize calls, summed over all registered instances at scrape time.
	reg.CounterFunc(metrics.NameSummarySummarizeTotal, "Summarize invocations across all summary instances.",
		func() float64 {
			cat := db.catStore()
			var n int64
			for _, name := range cat.InstanceNames() {
				if in, err := cat.Instance(name); err == nil {
					n += in.SummarizeCalls()
				}
			}
			return float64(n)
		})

	// Buffer pool: every heap page (tables, annotations, envelope records)
	// moves through these frames, so hit/miss/eviction rates are the
	// first-order signal of whether PoolFrames fits the working set.
	pool := db.pool
	reg.CounterFunc(metrics.NameBufferpoolHits, "Buffer-pool pins served from a resident frame.",
		func() float64 { h, _ := pool.Stats(); return float64(h) })
	reg.CounterFunc(metrics.NameBufferpoolMisses, "Buffer-pool pins that fetched the page from the store.",
		func() float64 { _, miss := pool.Stats(); return float64(miss) })
	reg.CounterFunc(metrics.NameBufferpoolEvictions, "Buffer-pool frames evicted to make room.",
		func() float64 { return float64(pool.Evictions()) })

	// Integrity: scrubber progress from the engine's bookkeeping, plus the
	// pool's own read-path verification failures and quarantine set.
	reg.CounterFunc(metrics.NameIntegrityPagesScanned, "Pages verified by scrub sweeps and CHECK TABLE.",
		func() float64 { return float64(db.integrity.scanned.Load()) })
	reg.CounterFunc(metrics.NameIntegrityChecksumFailures,
		"Page verification failures: scrub-detected faults plus read-path checksum failures.",
		func() float64 { return float64(db.integrity.failures.Load() + pool.ReadFailures()) })
	reg.CounterFunc(metrics.NameIntegrityRepairs, "Pages repaired (reflushed, rebuilt locally, or refetched from a peer).",
		func() float64 { return float64(db.integrity.repairs.Load()) })
	reg.GaugeFunc(metrics.NameIntegrityQuarantined, "Pages currently quarantined pending a repair source.",
		func() float64 { return float64(len(pool.Quarantined())) })

	// Planner decision counters, shared with every planner the DB builds.
	pc := db.cfg.PlanOptions.Counters
	reg.CounterFunc(metrics.NamePlanPlansTotal, "SELECT plans built.",
		func() float64 { return float64(pc.Plans.Load()) })
	paths := reg.CounterVec(metrics.NamePlanAccessPathsTotal,
		"Access paths chosen per planned base relation, by path type.", "path")
	paths.WithFunc("full_scan", func() float64 { return float64(pc.FullScans.Load()) })
	paths.WithFunc("index_scan", func() float64 { return float64(pc.IndexScans.Load()) })
	paths.WithFunc("index_range_scan", func() float64 { return float64(pc.IndexRangeScans.Load()) })
	paths.WithFunc("parallel_scan", func() float64 { return float64(pc.ParallelScans.Load()) })

	// Lifecycle tracer: collection and retention counters read from the
	// tracer's own bookkeeping at scrape time.
	if tr := db.tracer; tr != nil {
		reg.CounterFunc(metrics.NameTraceStartedTotal, "Statement lifecycle traces begun.",
			func() float64 { return float64(tr.Stats().Started) })
		reg.CounterFunc(metrics.NameTraceRetainedTotal, "Completed traces admitted to the retained-trace ring.",
			func() float64 { return float64(tr.Stats().Retained) })
		reg.CounterFunc(metrics.NameTraceSampledOutTotal, "Ordinary completed traces dropped by the tail sampler.",
			func() float64 { return float64(tr.Stats().SampledOut) })
		reg.CounterFunc(metrics.NameTraceEvictedTotal, "Retained traces evicted by the ring bound.",
			func() float64 { return float64(tr.Stats().Evicted) })
		reg.GaugeFunc(metrics.NameTraceResident, "Traces currently resident in the retained-trace ring.",
			func() float64 { return float64(tr.Stats().Resident) })
	}

	// Build identity and process age, the two facts every dashboard joins
	// everything else against.
	reg.GaugeVec(metrics.NameBuildInfo,
		"Build information; the value is always 1, the version label carries engine and Go versions.",
		"version").With(Version + " " + runtime.Version()).Set(1)
	reg.GaugeFunc(metrics.NameProcessUptimeSeconds, "Seconds since this engine instance was opened.",
		func() float64 { return time.Since(db.start).Seconds() })

	return m
}

// Metrics exposes the engine's metric registry for scraping (the /metrics
// sidecar and the server's SHOW METRICS path). Nil when metrics are
// disabled.
func (db *DB) Metrics() *metrics.Registry {
	if db.metrics == nil {
		return nil
	}
	return db.metrics.reg
}

// newExecContext builds the per-statement execution context: batch size
// from the statement options (falling back to Config.BatchSize), tracing
// when requested, and operator timing on sampled statements (see
// timingSampleInterval).
func (db *DB) newExecContext(ctx context.Context, so stmtOptions) *exec.ExecContext {
	ec := exec.NewContext(ctx)
	if so.batchSize > 0 {
		ec.WithBatchSize(so.batchSize)
	} else if db.cfg.BatchSize > 0 {
		ec.WithBatchSize(db.cfg.BatchSize)
	}
	if so.trace {
		ec.WithTrace()
	}
	if m := db.metrics; m != nil && m.sampleClock.Add(1)%timingSampleInterval == 0 {
		ec.WithTiming()
	}
	return ec
}

// finishStatement records one completed statement: kind-labeled counters and
// latency, result-row volume, the lifecycle trace's retention decision, and
// — when the statement crossed the configured threshold — the slow-query
// counter and structured log entry. The trace id is cross-linked into the
// result and the slow-query entry so all three observability channels
// reference the same statement.
func (db *DB) finishStatement(kind, sqlText string, start time.Time, res *Result, err error, so stmtOptions) {
	now := time.Now()
	wall := now.Sub(start)
	var traceID string
	if at := so.lifecycle; at != nil {
		// The id is read before Finish: Finish is the owner's last touch of
		// the builder, which recycles for a later statement.
		traceID = at.ID().String()
	}
	// The same clock read serves the metrics wall and the trace end.
	so.lifecycle.FinishAt(kind, err, now)
	if res != nil {
		res.TraceID = traceID
		if res.Stats != nil {
			res.Stats.QueueWait = so.queueWait
		}
	}
	if m := db.metrics; m != nil {
		m.statements.With(kind).Inc()
		if err != nil {
			m.errors.With(kind).Inc()
		}
		m.seconds.With(kind).Observe(wall.Seconds())
		if res != nil {
			m.resultRows.Add(int64(len(res.Rows)))
		}
	}
	if thr := db.cfg.SlowQueryThreshold; thr > 0 && wall >= thr {
		if m := db.metrics; m != nil {
			m.slowQueries.Inc()
		}
		if sink := db.cfg.SlowQueryLog; sink != nil {
			sink.EmitSlowQuery(slowQueryEntry(kind, sqlText, wall, res, err, traceID, so.queueWait))
		}
	}
}

// foldOpStats folds one executed plan's per-operator counters into the
// cumulative per-operator-type families and returns the per-operator rows
// for Result.Ops. Latency histograms are fed only on sampled statements;
// the other counters are exact. When the statement carries a lifecycle
// exec span, the plan's operators are additionally synthesized as spans
// under it — stats and spans share this one plumbing.
func (db *DB) foldOpStats(op exec.Operator, ec *exec.ExecContext) []OpStat {
	if sp := ec.Span(); sp != nil {
		synthOpSpans(sp, op)
	}
	var ops []OpStat
	m := db.metrics
	timed := ec.HistogramSampled()
	exec.WalkStats(op, func(name string, st exec.OpStats) {
		ops = append(ops, OpStat{
			Op: name, Rows: st.Rows, Merges: st.Merges, Curates: st.Curates,
			WallMicros: st.Wall.Microseconds(),
			Batches:    st.Batches, Workers: st.Workers, Morsels: st.Morsels,
		})
		if m == nil {
			return
		}
		m.opRows.With(name).Add(st.Rows)
		if st.Batches > 0 {
			m.opBatches.With(name).Add(st.Batches)
		}
		if st.Merges > 0 {
			m.opMerges.With(name).Add(st.Merges)
		}
		if st.Curates > 0 {
			m.opCurates.With(name).Add(st.Curates)
		}
		if st.Morsels > 0 {
			m.scanMorsels.Add(st.Morsels)
		}
		if st.Workers > 0 {
			m.scanWorkers.Add(int64(st.Workers))
		}
		if timed {
			m.opSeconds.With(name).Observe(st.Wall.Seconds())
		}
	})
	return ops
}

// synthOpSpans records the executed plan's operator tree as spans under
// the statement's exec span. Operator spans are synthesized after the plan
// drains — from the same OpStats the metrics fold reads — rather than
// opened live, so parallel workers never touch the single-goroutine trace
// builder. Each span inherits its parent's start offset and carries the
// operator's cumulative wall (inclusive of children; the renderer derives
// self-time), so tree shape and relative weight survive even though exact
// interleavings are not recorded. Walls are non-zero only for the
// histogram-sampled subset of statements; ordinary traced statements get
// the operator tree with row counts but zero walls, because per-batch
// clock reads would dominate the tracing budget.
func synthOpSpans(parent *trace.SpanHandle, op exec.Operator) {
	var st exec.OpStats
	if in, ok := op.(exec.Instrumented); ok {
		st = in.Stats()
	}
	sp := parent.AddChild(trace.OpSpan(exec.OperatorName(op)), st.Wall)
	sp.AttrInt("rows", st.Rows)
	if st.Workers > 0 {
		sp.AttrInt("workers", int64(st.Workers))
	}
	if st.Morsels > 0 {
		sp.AttrInt("morsels", st.Morsels)
	}
	if d, ok := op.(exec.Described); ok {
		for _, child := range d.Children() {
			synthOpSpans(sp, child)
		}
	}
}

// statementKind maps a parsed statement to its metric label. Labels are
// stable: they are the {kind} values of the insightnotes_engine_statement*
// families.
func statementKind(stmt sql.Statement) string {
	switch stmt.(type) {
	case *sql.Select:
		return "select"
	case *sql.Show:
		return "show"
	case *sql.Explain:
		return "explain"
	case *sql.ZoomIn:
		return "zoomin"
	case *sql.AddAnnotation:
		return "annotate"
	case *sql.DropAnnotation:
		return "drop_annotation"
	case *sql.TrainSummary:
		return "train"
	case *sql.LinkSummary:
		return "link"
	case *sql.CreateTable:
		return "create_table"
	case *sql.CreateIndex:
		return "create_index"
	case *sql.DropTable:
		return "drop_table"
	case *sql.Insert:
		return "insert"
	case *sql.BulkInsert:
		return "bulk_insert"
	case *sql.Prepare:
		return "prepare"
	case *sql.Execute:
		return "execute"
	case *sql.Deallocate:
		return "deallocate"
	case *sql.Update:
		return "update"
	case *sql.Delete:
		return "delete"
	case *sql.CreateSummaryInstance:
		return "create_summary"
	case *sql.DropSummaryInstance:
		return "drop_summary"
	case *sql.Checkpoint:
		return "checkpoint"
	case *sql.CheckTable:
		return "check"
	default:
		return "other"
	}
}
