package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueriesAndWrites hammers the engine with parallel readers
// (queries, zoom-ins, EXPLAIN ANALYZE, cancelled statements) and writers
// (inserts, annotations) to exercise the statement-level lock and the
// per-statement execution contexts. Run with -race.
func TestConcurrentQueriesAndWrites(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id = 1")
	seed, err := db.Query(context.Background(), "SELECT id, name FROM birds")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Readers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := db.QueryContext(context.Background(),
					"SELECT id, name, wingspan FROM birds WHERE id <= 3"); err != nil {
					report(fmt.Errorf("query: %w", err))
					return
				}
				if _, _, err := db.ZoomIn(context.Background(), ZoomInRequest{
					QID: seed.QID, Instance: "ClassBird1", Index: 1,
				}); err != nil {
					report(fmt.Errorf("zoom: %w", err))
					return
				}
				if _, err := db.Exec(context.Background(), "EXPLAIN ANALYZE SELECT id, name FROM birds WHERE id <= 2"); err != nil {
					report(fmt.Errorf("explain analyze: %w", err))
					return
				}
			}
		}(g)
	}
	// Cancelled statements interleaved with live ones must fail cleanly
	// without disturbing either side.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		for i := 0; i < 30; i++ {
			if _, err := db.QueryContext(cancelled, "SELECT id FROM birds"); !errors.Is(err, context.Canceled) {
				report(fmt.Errorf("cancelled query: got %v, want context.Canceled", err))
				return
			}
		}
	}()
	// Writers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Exec(context.Background(), fmt.Sprintf(
					"ADD ANNOTATION 'found eating stonewort round %d-%d' ON birds WHERE id = %d",
					g, i, i%3+1)); err != nil {
					report(fmt.Errorf("annotate: %w", err))
					return
				}
				if _, err := db.Exec(context.Background(), fmt.Sprintf(
					"INSERT INTO birds VALUES (%d, 'new bird', 'n', 1.0)", 100+g*100+i)); err != nil {
					report(fmt.Errorf("insert: %w", err))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Engine is consistent afterwards.
	res := mustExec(t, db, "SELECT COUNT(*) FROM birds")
	if got := res.Rows[0].Tuple[0].Int(); got != 3+60 {
		t.Errorf("final rows = %d, want 63", got)
	}
	if db.Annotations().Count() != 1+60 {
		t.Errorf("annotations = %d, want 61", db.Annotations().Count())
	}
}
