package engine

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/exec"
	"insightnotes/internal/storage"
	"insightnotes/internal/trace"
	"insightnotes/internal/types"
)

// Online integrity: the background scrubber sweeps every heap page through
// checksum and structural verification, and repairs what it finds from the
// cheapest clean source available — a surviving buffer-pool frame, a local
// in-memory rebuild (summary envelopes and annotation targets are
// memory-resident), or a full logical snapshot fetched from a connected
// peer. Pages with no clean source are quarantined: subsequent reads fail
// fast with the structured corruption error (the server sheds them with
// code CORRUPT) instead of serving garbage. CHECK TABLE runs the same
// sweep synchronously for one table; SHOW INTEGRITY surfaces the
// cumulative report.

// scrubSampleRows caps the per-page sampled heap↔index (and heap↔store)
// agreement checks, bounding structural verification cost per page.
const scrubSampleRows = 8

// DefaultScrubRate is the background sweep's page-per-second budget when
// Config.ScrubRate is zero.
const DefaultScrubRate = 256

// integrityFaultRing bounds the recent-fault list kept for SHOW INTEGRITY.
const integrityFaultRing = 64

// ownerKind names the store a heap page belongs to; repair sources differ
// by owner (see repairFaultLocked).
type ownerKind int

const (
	ownerTable  ownerKind = iota // table heap: rows live only here → replica fetch
	ownerAnn                     // annotation heap: raw text lives only here → replica fetch
	ownerTarget                  // target heap: mirrored by in-memory targetsOf → local rebuild
	ownerEnv                     // envelope heap: mirrored by in-memory stripes → local rebuild
)

type scrubTarget struct {
	pid   storage.PageID
	kind  ownerKind
	table string // ownerTable only
}

func (t scrubTarget) ownerName() string {
	switch t.kind {
	case ownerTable:
		return "table:" + t.table
	case ownerAnn:
		return "annotations"
	case ownerTarget:
		return "targets"
	default:
		return "envelopes"
	}
}

// IntegrityFault records one page (or index) a sweep found corrupt and
// what became of it.
type IntegrityFault struct {
	Page     storage.PageID // InvalidPageID for index faults
	Owner    string
	Detail   string
	Repaired bool
	Source   string // "flush", "rebuild", "replica"; empty when unrepaired
}

// IntegrityReport is the scrubber's cumulative state, surfaced by
// SHOW INTEGRITY and returned by CheckTable/ScrubNow.
type IntegrityReport struct {
	Sweeps           uint64
	PagesScanned     uint64
	ChecksumFailures uint64
	Repairs          uint64
	Quarantined      []storage.PageID
	LastSweep        time.Time
	Faults           []IntegrityFault // newest first, bounded
}

// integrityState is the DB's always-present integrity bookkeeping; the
// atomics back the insightnotes_integrity_* metrics.
type integrityState struct {
	scanned  atomic.Uint64
	failures atomic.Uint64
	repairs  atomic.Uint64

	mu        sync.Mutex
	sweeps    uint64
	lastSweep time.Time
	faults    []IntegrityFault // newest first, capped at integrityFaultRing
}

func (s *integrityState) recordSweep(now time.Time, faults []IntegrityFault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweeps++
	s.lastSweep = now
	for i := len(faults) - 1; i >= 0; i-- {
		s.faults = append([]IntegrityFault{faults[i]}, s.faults...)
	}
	if len(s.faults) > integrityFaultRing {
		s.faults = s.faults[:integrityFaultRing]
	}
}

// SetRepairSource installs the fetch function the repair ladder uses for
// pages whose contents live only on disk (table heaps, annotation text):
// it must return a full logical snapshot of a clean peer — typically
// replication.FetchSnapshot against the primary's replication listener.
// A nil source (standalone deployments) makes such pages unrepairable:
// they are quarantined and reads shed with a structured CORRUPT error.
func (db *DB) SetRepairSource(fetch func() ([]byte, error)) {
	db.repairMu.Lock()
	db.repairFn = fetch
	db.repairMu.Unlock()
}

// FlushPages writes every dirty buffer-pool frame to the page store and
// drops the clean frames, making the stored copies authoritative — the
// setup step for cold integrity sweeps, offline backups, and the bit-rot
// soak (which flips bytes in the page file and expects the scrubber to
// notice).
func (db *DB) FlushPages() error {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	db.pool.DropClean()
	return nil
}

// HeapPageInventory returns every heap page id grouped by owner name
// ("table:<name>", "annotations", "targets", "envelopes") — the page set
// the scrubber sweeps, exposed for integrity tooling and the chaos soak.
func (db *DB) HeapPageInventory() (map[string][]storage.PageID, error) {
	db.stmtMu.RLock()
	defer db.stmtMu.RUnlock()
	inv, _, err := db.scrubInventoryLocked("")
	if err != nil {
		return nil, err
	}
	out := make(map[string][]storage.PageID)
	for _, t := range inv {
		out[t.ownerName()] = append(out[t.ownerName()], t.pid)
	}
	return out, nil
}

// IntegrityReport returns the scrubber's cumulative state.
func (db *DB) IntegrityReport() IntegrityReport {
	st := &db.integrity
	st.mu.Lock()
	rep := IntegrityReport{
		Sweeps:    st.sweeps,
		LastSweep: st.lastSweep,
		Faults:    append([]IntegrityFault(nil), st.faults...),
	}
	st.mu.Unlock()
	rep.PagesScanned = st.scanned.Load()
	rep.ChecksumFailures = st.failures.Load() + db.pool.ReadFailures()
	rep.Repairs = st.repairs.Load()
	rep.Quarantined = db.pool.Quarantined()
	return rep
}

// ScrubNow runs one full synchronous sweep (verify + repair, unthrottled)
// and returns the report including the faults of this sweep.
func (db *DB) ScrubNow() (IntegrityReport, error) {
	lc := db.tracer.Start("SCRUB")
	faults, err := db.scrubSweep(lc, "", 0, nil)
	lc.Finish("scrub", err)
	if err != nil {
		return IntegrityReport{}, err
	}
	rep := db.IntegrityReport()
	rep.Faults = faults
	return rep, nil
}

// CheckTable synchronously verifies every heap page and every secondary
// index of one table, repairing what it can; the returned report's Faults
// are this check's findings only. lc may be nil (untraced).
func (db *DB) CheckTable(name string, lc *trace.Active) (IntegrityReport, error) {
	faults, err := db.scrubSweep(lc, name, 0, nil)
	if err != nil {
		return IntegrityReport{}, err
	}
	rep := db.IntegrityReport()
	rep.Faults = faults
	return rep, nil
}

// ---- sweep ----

// scrubFault is a sweep-internal fault: the target, the verification
// error, and whether this is a retry of an already-quarantined page (not
// re-counted as a new failure).
type scrubFault struct {
	target scrubTarget
	err    error
	retry  bool
}

// scrubSweep runs one verification pass over the page inventory (filter
// restricts it to one table; "" sweeps everything) followed by a repair
// pass over what it found, plus any still-quarantined pages from earlier
// sweeps. rate caps verified pages per second (<=0 = unthrottled); stop
// aborts between batches. It acquires the statement lock internally —
// callers must not hold it.
func (db *DB) scrubSweep(lc *trace.Active, filter string, rate int, stop <-chan struct{}) ([]IntegrityFault, error) {
	ssp := lc.StartSpan(trace.SpanScrubSweep, nil)
	defer ssp.End()

	db.stmtMu.RLock()
	inv, tables, err := db.scrubInventoryLocked(filter)
	db.stmtMu.RUnlock()
	if err != nil {
		return nil, err
	}

	quarantined := make(map[storage.PageID]error)
	for _, pid := range db.pool.Quarantined() {
		quarantined[pid] = nil
	}

	var faults []scrubFault
	var scanned uint64
	batch := len(inv)
	if rate > 0 && rate < batch {
		batch = rate
	}
	for idx := 0; idx < len(inv); idx += batch {
		end := idx + batch
		if end > len(inv) {
			end = len(inv)
		}
		db.stmtMu.RLock()
		// Re-resolve ownership: tables can be dropped and heaps reshaped
		// between batches of a throttled sweep; stale targets are skipped,
		// not faulted.
		cur, _, ierr := db.scrubInventoryLocked(filter)
		if ierr != nil {
			db.stmtMu.RUnlock()
			return nil, ierr
		}
		owned := make(map[storage.PageID]bool, len(cur))
		for _, t := range cur {
			owned[t.pid] = true
		}
		for _, t := range inv[idx:end] {
			if !owned[t.pid] {
				continue
			}
			if _, ok := quarantined[t.pid]; ok {
				// Already known corrupt: goes straight to the repair pass.
				continue
			}
			scanned++
			if verr := db.verifyScrubTargetLocked(t); verr != nil {
				faults = append(faults, scrubFault{target: t, err: verr})
			}
		}
		db.stmtMu.RUnlock()
		if rate > 0 && end < len(inv) {
			select {
			case <-stop:
				return nil, nil
			case <-time.After(time.Second):
			}
		}
	}

	// Secondary indexes are memory-resident: verify their internal
	// ordering/fencing and their agreement with the heap's row count.
	var indexFaults []IntegrityFault
	db.stmtMu.RLock()
	cat := db.catStore()
	var badIndexTables []string
	for _, name := range tables {
		tbl, terr := cat.Table(name)
		if terr != nil {
			continue
		}
		if verr := tbl.VerifyIndexes(); verr != nil {
			badIndexTables = append(badIndexTables, name)
			indexFaults = append(indexFaults, IntegrityFault{
				Page: storage.InvalidPageID, Owner: "index:" + name, Detail: verr.Error(),
			})
		}
	}
	db.stmtMu.RUnlock()

	// Retry pages quarantined by earlier sweeps (or by read-path fetch
	// failures): a repair source may have appeared since.
	for _, t := range inv {
		if qerr, ok := quarantined[t.pid]; ok {
			faults = append(faults, scrubFault{target: t, err: qerr, retry: true})
			delete(quarantined, t.pid)
		}
	}

	newFailures := uint64(0)
	for _, f := range faults {
		if !f.retry {
			newFailures++
		}
	}
	newFailures += uint64(len(indexFaults))
	db.integrity.scanned.Add(scanned)
	db.integrity.failures.Add(newFailures)

	report := db.repairFaults(lc, faults)
	report = append(report, db.repairIndexes(lc, badIndexTables, indexFaults)...)

	ssp.AttrInt("pages", int64(scanned))
	ssp.AttrInt("faults", int64(len(report)))
	if filter != "" {
		ssp.Attr("table", filter)
	}
	db.integrity.recordSweep(time.Now(), report)
	return report, nil
}

// scrubInventoryLocked enumerates every heap page with its owner, plus the
// table names whose indexes the sweep should verify. Callers hold the
// shared statement lock.
func (db *DB) scrubInventoryLocked(filter string) ([]scrubTarget, []string, error) {
	cat := db.catStore()
	var targets []scrubTarget
	var tables []string
	if filter != "" {
		tbl, err := cat.Table(filter)
		if err != nil {
			return nil, nil, err
		}
		for _, pid := range tbl.HeapPages() {
			targets = append(targets, scrubTarget{pid: pid, kind: ownerTable, table: tbl.Name()})
		}
		return targets, []string{tbl.Name()}, nil
	}
	for _, name := range cat.TableNames() {
		tbl, err := cat.Table(name)
		if err != nil {
			continue
		}
		tables = append(tables, name)
		for _, pid := range tbl.HeapPages() {
			targets = append(targets, scrubTarget{pid: pid, kind: ownerTable, table: name})
		}
	}
	annPages, tgtPages := db.annStore().Pages()
	for _, pid := range annPages {
		targets = append(targets, scrubTarget{pid: pid, kind: ownerAnn})
	}
	for _, pid := range tgtPages {
		targets = append(targets, scrubTarget{pid: pid, kind: ownerTarget})
	}
	for _, pid := range db.envStore().heapPages() {
		targets = append(targets, scrubTarget{pid: pid, kind: ownerEnv})
	}
	return targets, tables, nil
}

// verifyScrubTargetLocked checks one page: the stored copy's CRC (direct
// store read, bypassing the cache), then the owner's structural and
// cross-store invariants through the pool. Callers hold the statement
// lock (shared suffices: writers are excluded).
func (db *DB) verifyScrubTargetLocked(t scrubTarget) error {
	if err := db.pool.VerifyStored(t.pid); err != nil {
		return err
	}
	switch t.kind {
	case ownerTable:
		tbl, err := db.catStore().Table(t.table)
		if err != nil {
			return nil // dropped mid-sweep
		}
		return tbl.VerifyPage(t.pid, scrubSampleRows)
	case ownerAnn:
		return db.annStore().VerifyAnnPage(t.pid, scrubSampleRows)
	case ownerTarget:
		return db.annStore().VerifyTargetPage(t.pid, scrubSampleRows)
	default:
		return db.envStore().verifyPage(t.pid, scrubSampleRows)
	}
}

// ---- repair ----

// repairFaults walks the repair ladder for each faulty page: (1) reflush a
// surviving buffer-pool frame, (2) rebuild from memory-resident state
// (envelopes, targets), (3) refetch from the configured repair source
// (table rows, annotation text), (4) quarantine. Local sources run under
// one exclusive lock section; the remote fetch happens between lock
// sections so the network never stalls writers.
func (db *DB) repairFaults(lc *trace.Active, faults []scrubFault) []IntegrityFault {
	if len(faults) == 0 {
		return nil
	}
	out := make([]IntegrityFault, len(faults))
	var remote []int
	db.stmtMu.Lock()
	for i, f := range faults {
		out[i] = IntegrityFault{Page: f.target.pid, Owner: f.target.ownerName()}
		if f.err != nil {
			out[i].Detail = f.err.Error()
		} else {
			out[i].Detail = "quarantined by an earlier sweep"
		}
		done, src := db.repairLocalLocked(lc, f.target)
		if done {
			out[i].Repaired = true
			out[i].Source = src
			db.integrity.repairs.Add(1)
			continue
		}
		if f.target.kind == ownerTable || f.target.kind == ownerAnn {
			remote = append(remote, i)
			continue
		}
		db.pool.Quarantine(f.target.pid, f.err)
	}
	db.stmtMu.Unlock()

	if len(remote) == 0 {
		return out
	}
	src, err := db.fetchRepairSource()
	if err != nil {
		// No clean source: quarantine so reads shed with CORRUPT rather
		// than serving garbage, and leave the page for a later sweep.
		for _, i := range remote {
			f := faults[i]
			db.pool.Quarantine(f.target.pid, f.err)
			out[i].Detail += "; no clean source: " + err.Error()
		}
		return out
	}
	db.stmtMu.Lock()
	for _, i := range remote {
		f := faults[i]
		rsp := lc.StartSpan(trace.SpanScrubRepair, nil)
		rsp.AttrInt("page", int64(f.target.pid))
		rsp.Attr("owner", f.target.ownerName())
		rerr := db.repairFromSourceLocked(f.target, src)
		if rerr == nil {
			rerr = db.verifyScrubTargetLocked(f.target)
		}
		if rerr != nil {
			rsp.Attr("source", "failed")
			rsp.End()
			db.pool.Quarantine(f.target.pid, f.err)
			out[i].Detail += "; replica repair failed: " + rerr.Error()
			continue
		}
		rsp.Attr("source", "replica")
		rsp.End()
		out[i].Repaired = true
		out[i].Source = "replica"
		db.integrity.repairs.Add(1)
	}
	db.stmtMu.Unlock()
	return out
}

// repairLocalLocked tries the two local rungs of the ladder for one page
// and reports whether it now verifies clean (with the source used).
// Callers hold the exclusive statement lock.
func (db *DB) repairLocalLocked(lc *trace.Active, t scrubTarget) (bool, string) {
	rsp := lc.StartSpan(trace.SpanScrubRepair, nil)
	rsp.AttrInt("page", int64(t.pid))
	rsp.Attr("owner", t.ownerName())
	defer rsp.End()
	// Rung 1: the stored copy is bad but a good frame survives in the pool.
	if ok, err := db.pool.FlushResident(t.pid); err == nil && ok {
		if db.verifyScrubTargetLocked(t) == nil {
			rsp.Attr("source", "flush")
			return true, "flush"
		}
	}
	// Rung 2: owners whose logical contents are memory-resident.
	var rerr error
	switch t.kind {
	case ownerEnv:
		rerr = db.envStore().repairPage(t.pid)
	case ownerTarget:
		rerr = db.annStore().RepairTargetPage(t.pid)
	default:
		rsp.Attr("source", "none_local")
		return false, ""
	}
	if rerr == nil && db.verifyScrubTargetLocked(t) == nil {
		rsp.Attr("source", "rebuild")
		return true, "rebuild"
	}
	rsp.Attr("source", "failed")
	return false, ""
}

// repairIndexes rebuilds every secondary index of the named tables from
// their heaps and re-verifies, annotating the given fault records.
func (db *DB) repairIndexes(lc *trace.Active, tables []string, faults []IntegrityFault) []IntegrityFault {
	if len(tables) == 0 {
		return faults
	}
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	cat := db.catStore()
	for i, name := range tables {
		rsp := lc.StartSpan(trace.SpanScrubRepair, nil)
		rsp.Attr("owner", "index:"+name)
		tbl, err := cat.Table(name)
		if err != nil {
			rsp.Attr("source", "failed")
			rsp.End()
			continue
		}
		rerr := db.rebuildTableIndexesLocked(tbl)
		if rerr != nil {
			rsp.Attr("source", "failed")
			rsp.End()
			faults[i].Detail += "; rebuild failed: " + rerr.Error()
			continue
		}
		rsp.Attr("source", "rebuild")
		rsp.End()
		faults[i].Repaired = true
		faults[i].Source = "rebuild"
		db.integrity.repairs.Add(1)
	}
	return faults
}

func (db *DB) rebuildTableIndexesLocked(tbl *catalog.Table) error {
	for _, col := range tbl.IndexedColumns() {
		if err := tbl.RebuildIndex(col); err != nil {
			return err
		}
	}
	return tbl.VerifyIndexes()
}

// ---- remote repair source ----

// repairSnapshot is a fetched peer snapshot indexed for page repair.
type repairSnapshot struct {
	rows map[string]map[types.RowID]types.Tuple
	anns map[annotation.ID]annotation.Annotation
}

// fetchRepairSource fetches and indexes a full logical snapshot from the
// configured peer (SetRepairSource).
func (db *DB) fetchRepairSource() (*repairSnapshot, error) {
	db.repairMu.RLock()
	fetch := db.repairFn
	db.repairMu.RUnlock()
	if fetch == nil {
		return nil, fmt.Errorf("engine: no repair source configured (standalone)")
	}
	raw, err := fetch()
	if err != nil {
		return nil, fmt.Errorf("engine: repair source fetch: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("engine: repair source snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("engine: repair source snapshot version %d unsupported", snap.Version)
	}
	src := &repairSnapshot{
		rows: make(map[string]map[types.RowID]types.Tuple, len(snap.Tables)),
		anns: make(map[annotation.ID]annotation.Annotation, len(snap.Annotations)),
	}
	for _, st := range snap.Tables {
		byRow := make(map[types.RowID]types.Tuple, len(st.Rows))
		for _, row := range st.Rows {
			byRow[row.ID] = types.Tuple(row.Values)
		}
		src.rows[st.Name] = byRow
	}
	for _, sa := range snap.Annotations {
		src.anns[sa.ID] = annotation.Annotation{
			ID: sa.ID, Author: sa.Author, Created: sa.Created,
			Text: sa.Text, Title: sa.Title, Document: sa.Document,
		}
	}
	return src, nil
}

// repairFromSourceLocked rebuilds one table-heap or annotation-heap page
// from the fetched snapshot. Callers hold the exclusive statement lock.
func (db *DB) repairFromSourceLocked(t scrubTarget, src *repairSnapshot) error {
	switch t.kind {
	case ownerTable:
		tbl, err := db.catStore().Table(t.table)
		if err != nil {
			return err
		}
		byRow := src.rows[t.table]
		return tbl.RepairPage(t.pid, func(row types.RowID) (types.Tuple, bool) {
			tu, ok := byRow[row]
			return tu, ok
		})
	case ownerAnn:
		return db.annStore().RepairAnnPage(t.pid, func(id annotation.ID) (annotation.Annotation, bool) {
			a, ok := src.anns[id]
			return a, ok
		})
	default:
		return fmt.Errorf("engine: page %d (%s) has no remote repair path", t.pid, t.ownerName())
	}
}

// ---- result surfacing ----

// integritySchema is the row shape shared by CHECK TABLE and
// SHOW INTEGRITY: one row per fault.
func integritySchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "page", Kind: types.KindInt},
		types.Column{Name: "owner", Kind: types.KindString},
		types.Column{Name: "detail", Kind: types.KindString},
		types.Column{Name: "repaired", Kind: types.KindBool},
		types.Column{Name: "source", Kind: types.KindString},
	)
}

func integrityRows(faults []IntegrityFault) []*exec.Row {
	var rows []*exec.Row
	for _, f := range faults {
		page := int64(-1)
		if f.Page != storage.InvalidPageID {
			page = int64(f.Page)
		}
		rows = append(rows, &exec.Row{Tuple: types.Tuple{
			types.NewInt(page),
			types.NewString(f.Owner),
			types.NewString(f.Detail),
			types.NewBool(f.Repaired),
			types.NewString(f.Source),
		}})
	}
	return rows
}

// ---- background scrubber ----

// scrubber is the rate-limited background sweep worker.
type scrubber struct {
	db       *DB
	interval time.Duration
	rate     int
	stop     chan struct{}
	done     chan struct{}
}

func startScrubber(db *DB, interval time.Duration, rate int) *scrubber {
	if rate <= 0 {
		rate = DefaultScrubRate
	}
	s := &scrubber{
		db:       db,
		interval: interval,
		rate:     rate,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *scrubber) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			lc := s.db.tracer.Start("SCRUB")
			_, err := s.db.scrubSweep(lc, "", s.rate, s.stop)
			lc.Finish("scrub", err)
		}
	}
}

func (s *scrubber) close() {
	close(s.stop)
	<-s.done
}
