package engine

// Tests for summary-based query processing (§2.1): filtering and sorting
// data tuples by predicates over their annotation summaries.

import (
	"context"
	"testing"
)

// predDB builds birds with varying annotation profiles: bird 1 heavy on
// disease annotations, bird 2 heavy on behavior, bird 3 unannotated.
func predDB(t *testing.T) *DB {
	t.Helper()
	db := birdDB(t)
	for i := 0; i < 4; i++ {
		mustExec(t, db, "ADD ANNOTATION 'signs of avian influenza infection observed' ON birds WHERE id = 1")
	}
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id = 1")
	for i := 0; i < 3; i++ {
		mustExec(t, db, "ADD ANNOTATION 'found eating stonewort near the shore' ON birds WHERE id = 2")
	}
	return db
}

func TestSummaryCountPredicate(t *testing.T) {
	db := predDB(t)
	// Disease is label index 2 of ClassBird1; bird 1 has 4 disease notes.
	res := mustExec(t, db,
		"SELECT id, name FROM birds WHERE SUMMARY_COUNT(ClassBird1, 'Disease') > 2")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Combining with ordinary predicates.
	res = mustExec(t, db,
		"SELECT id FROM birds WHERE SUMMARY_COUNT(ClassBird1, 'Behavior') >= 1 AND id > 1")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Int() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSummaryTotalPredicateIncludesUnannotated(t *testing.T) {
	db := predDB(t)
	// Unannotated tuples count zero, so they pass a "= 0" filter.
	res := mustExec(t, db, "SELECT id FROM birds WHERE SUMMARY_TOTAL(ClassBird1) = 0")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Int() != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT id FROM birds WHERE SUMMARY_TOTAL(ClassBird1) >= 5")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSummaryGroupsPredicate(t *testing.T) {
	db := predDB(t)
	// Bird 1 has two thematic families → at least 2 cluster groups.
	res := mustExec(t, db, "SELECT id FROM birds WHERE SUMMARY_GROUPS(SimCluster) >= 2")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSummaryOrderBy(t *testing.T) {
	db := predDB(t)
	// Sort the flock by total annotation volume, busiest first.
	res := mustExec(t, db,
		"SELECT id, name FROM birds ORDER BY SUMMARY_TOTAL(ClassBird1) DESC, id")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	got := []int64{res.Rows[0].Tuple[0].Int(), res.Rows[1].Tuple[0].Int(), res.Rows[2].Tuple[0].Int()}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

func TestSummaryPredicateSeesStoredSummariesDespiteProjection(t *testing.T) {
	db := birdDB(t)
	// Annotation only on the wingspan column; the query projects id only.
	mustExec(t, db, "ADD ANNOTATION 'wingspan suspiciously large' ON birds (wingspan) WHERE id = 2")
	res := mustExec(t, db, "SELECT id FROM birds WHERE SUMMARY_TOTAL(ClassBird1) > 0")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Int() != 2 {
		t.Fatalf("rows = %v — summary predicate must see the stored summary, not the curated one", res.Rows)
	}
	// The *output* envelope, however, is curated: the wingspan-only
	// annotation does not survive a projection to id.
	if res.Rows[0].Env != nil && res.Rows[0].Env.Object("ClassBird1") != nil {
		t.Error("output envelope kept an annotation on a projected-out column")
	}
}

func TestSummaryPredicateAfterJoin(t *testing.T) {
	db := predDB(t)
	mustExec(t, db, "CREATE TABLE sightings (sid INT, bird_id INT)")
	mustExec(t, db, "INSERT INTO sightings VALUES (1, 1), (2, 2), (3, 3)")
	// SUMMARY predicates work over joined rows (merged envelopes).
	res := mustExec(t, db, `SELECT b.id, s.sid FROM birds b, sightings s
		WHERE b.id = s.bird_id AND SUMMARY_COUNT(ClassBird1, 'Disease') > 2`)
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSummaryPredicateErrors(t *testing.T) {
	db := predDB(t)
	// Unknown label.
	if _, err := db.Exec(context.Background(), "SELECT id FROM birds WHERE SUMMARY_COUNT(ClassBird1, 'Nope') > 0"); err == nil {
		t.Error("unknown label accepted")
	}
	// SUMMARY_COUNT over a cluster instance.
	if _, err := db.Exec(context.Background(), "SELECT id FROM birds WHERE SUMMARY_COUNT(SimCluster, 'Behavior') > 0"); err == nil {
		t.Error("SUMMARY_COUNT over cluster accepted")
	}
	// SUMMARY_GROUPS over a classifier instance.
	if _, err := db.Exec(context.Background(), "SELECT id FROM birds WHERE SUMMARY_GROUPS(ClassBird1) > 0"); err == nil {
		t.Error("SUMMARY_GROUPS over classifier accepted")
	}
	// Summary calls are not scalar select items (no rewrite support yet).
	if _, err := db.Exec(context.Background(), "SELECT SUMMARY_TOTAL(ClassBird1) FROM birds GROUP BY id"); err == nil {
		t.Error("summary call under grouping accepted")
	}
}

func TestSummaryPredicateUnlinkedInstanceFiltersAll(t *testing.T) {
	db := predDB(t)
	mustExec(t, db, "CREATE TABLE empty_t (x INT)")
	mustExec(t, db, "INSERT INTO empty_t VALUES (1)")
	// The instance is not linked to empty_t: every tuple scores 0.
	res := mustExec(t, db, "SELECT x FROM empty_t WHERE SUMMARY_TOTAL(ClassBird1) > 0")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
