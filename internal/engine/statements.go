package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"insightnotes/internal/annotation"
	"insightnotes/internal/exec"
	"insightnotes/internal/plan"
	"insightnotes/internal/sql"
	"insightnotes/internal/trace"
	"insightnotes/internal/types"
	"insightnotes/internal/wal"
)

// Exec parses and executes one statement of any kind — SQL or InsightNotes
// extension — under ctx and returns its result. Options are honored for
// SELECTs (WithTrace, WithPlanOptions, WithParallelism, WithBatchSize) and
// ignored by statements they do not apply to.
func (db *DB) Exec(ctx context.Context, sqlText string, opts ...StatementOption) (*Result, error) {
	so := gatherOptions(opts)
	start := db.startLifecycle(&so, sqlText)
	if stmt, ok := db.cachedStatement(&so, sqlText); ok {
		// Plan-cache hit: the parse is skipped entirely (no stmt.parse
		// span) and planning replays the memoized access paths.
		return db.execLifecycle(ctx, stmt, sqlText, so, start)
	}
	psp := so.lifecycle.StartSpan(trace.SpanParse, nil)
	stmt, err := sql.Parse(sqlText)
	psp.End()
	if err != nil {
		// A statement that never parsed has no kind-labeled metrics, but its
		// trace is finished (and always retained, being errored) so the
		// failure is visible in SHOW TRACES.
		so.lifecycle.Finish("parse_error", err)
		return nil, err
	}
	db.cacheStatement(&so, sqlText, stmt)
	return db.execLifecycle(ctx, stmt, sqlText, so, start)
}

// ExecScript executes a semicolon-separated script under ctx (checked
// before and during every statement), stopping at the first error and
// returning the results of the completed statements.
func (db *DB) ExecScript(ctx context.Context, script string, opts ...StatementOption) ([]*Result, error) {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, stmt := range stmts {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		res, err := db.ExecStatement(ctx, stmt, stmt.String(), opts...)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ExecStatement dispatches a parsed statement under ctx. sqlText is the
// original statement text (used to re-execute SELECTs on zoom-in cache
// misses). Read statements take the shared statement lock; everything else
// takes it exclusively (see the DB type comment).
//
// A panic in statement execution is contained here: it becomes an error
// on this statement instead of tearing down the process (the deferred
// lock releases run during unwinding, so the engine stays usable).
func (db *DB) ExecStatement(ctx context.Context, stmt sql.Statement, sqlText string, opts ...StatementOption) (*Result, error) {
	so := gatherOptions(opts)
	start := db.startLifecycle(&so, sqlText)
	return db.execLifecycle(ctx, stmt, sqlText, so, start)
}

// startLifecycle marks the statement's entry instant and ensures it has an
// active lifecycle trace when tracing is enabled: the caller-provided one
// (WithActiveTrace) wins, otherwise the engine starts its own rooted at
// this statement. The returned instant doubles as the trace start and the
// metrics latency baseline — one clock read serves both, so a shell trace
// adds none of its own.
func (db *DB) startLifecycle(so *stmtOptions, sqlText string) time.Time {
	now := time.Now()
	if so.lifecycle == nil {
		so.lifecycle = db.tracer.StartAt(sqlText, now)
	}
	return now
}

// execLifecycle runs one parsed statement under its lifecycle trace and
// the panic guard, then folds the outcome into metrics, the slow-query
// log, and the trace store. start is the statement's entry instant from
// startLifecycle, so the recorded latency covers parse onwards.
func (db *DB) execLifecycle(ctx context.Context, stmt sql.Statement, sqlText string, so stmtOptions, start time.Time) (res *Result, err error) {
	func() {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("engine: internal error executing statement: %v", r)
			}
		}()
		res, err = db.execStatement(ctx, stmt, sqlText, so)
	}()
	db.finishStatement(statementKind(stmt), sqlText, start, res, err, so)
	db.maybeAutoCheckpoint()
	return res, err
}

func (db *DB) execStatement(ctx context.Context, stmt sql.Statement, sqlText string, so stmtOptions) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.Select:
		db.stmtMu.RLock()
		defer db.stmtMu.RUnlock()
		return db.querySelect(db.newExecContext(ctx, so), s, sqlText, so)
	case *sql.Show:
		db.stmtMu.RLock()
		defer db.stmtMu.RUnlock()
		return db.execShow(s)
	case *sql.Explain:
		db.stmtMu.RLock()
		defer db.stmtMu.RUnlock()
		return db.execExplain(ctx, s, so)
	case *sql.ZoomIn:
		zsp := so.lifecycle.StartSpan(trace.SpanZoomExpand, nil)
		results, hit, err := db.ZoomIn(ctx, ZoomInRequest{
			QID: s.QID, Where: s.Where, Instance: s.Instance, Index: s.Index,
		})
		zsp.AttrInt("qid", int64(s.QID))
		if err != nil {
			zsp.End()
			return nil, err
		}
		if hit {
			zsp.Attr("source", "cache_hit")
		} else {
			zsp.Attr("source", "re_executed")
		}
		zsp.End()
		rows := zoomRows(results)
		src := "cache hit"
		if !hit {
			src = "re-executed"
		}
		return &Result{
			Schema:          zoomResultSchema(),
			Rows:            rows,
			ZoomAnnotations: results,
			Message:         fmt.Sprintf("%d raw annotation(s) retrieved (%s)", len(rows), src),
			Count:           len(rows),
		}, nil
	case *sql.Prepare:
		// Registry-only: no lock beyond the registry's own, no WAL record,
		// legal on replicas. Same for DEALLOCATE below.
		return db.execPrepare(s)
	case *sql.Deallocate:
		return db.execDeallocate(s)
	case *sql.Execute:
		return db.execExecute(ctx, s, so)
	case *sql.AddAnnotation:
		id, n, err := db.Annotate(AnnotationRequest{
			Text: s.Text, Title: s.Title, Document: s.Document, Author: s.Author,
			Table: s.Table, Columns: s.Columns, Where: s.Where,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Message: fmt.Sprintf("annotation %d attached to %d tuple(s)", id, n),
			Count:   n,
		}, nil
	case *sql.DropAnnotation:
		if err := db.DropAnnotation(annotation.ID(s.ID)); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("annotation %d retracted", s.ID), Count: 1}, nil
	case *sql.TrainSummary:
		if err := db.TrainClassifier(s.Name, s.Samples); err != nil {
			return nil, err
		}
		return &Result{
			Message: fmt.Sprintf("%d sample(s) trained into %s", len(s.Samples), s.Name),
			Count:   len(s.Samples),
		}, nil
	case *sql.LinkSummary:
		if s.Unlink {
			if err := db.UnlinkInstance(s.Instance, s.Table); err != nil {
				return nil, err
			}
			return &Result{Message: fmt.Sprintf("%s unlinked from %s", s.Instance, s.Table)}, nil
		}
		if err := db.LinkInstance(s.Instance, s.Table); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("%s linked to %s", s.Instance, s.Table)}, nil
	case *sql.Checkpoint:
		ci, err := db.Checkpoint()
		if err != nil {
			return nil, err
		}
		return &Result{
			Message: fmt.Sprintf("checkpoint complete: snapshot %d byte(s) at lsn %d, %d wal byte(s) released",
				ci.SnapshotBytes, ci.LSN, ci.ReleasedWALBytes),
		}, nil
	case *sql.CheckTable:
		// The sweep manages its own locking (shared for verification,
		// exclusive for repairs), so it is dispatched lock-free like
		// CHECKPOINT.
		rep, err := db.CheckTable(s.Table, so.lifecycle)
		if err != nil {
			return nil, err
		}
		repaired, bad := 0, 0
		for _, f := range rep.Faults {
			if f.Repaired {
				repaired++
			} else {
				bad++
			}
		}
		return &Result{
			Schema: integritySchema(),
			Rows:   integrityRows(rep.Faults),
			Message: fmt.Sprintf("table %s: %d fault(s), %d repaired, %d quarantined",
				s.Table, len(rep.Faults), repaired, bad),
			Count: len(rep.Faults),
		}, nil
	}
	// Remaining statements are writes executed under the exclusive lock.
	// The WAL record is staged under the lock; its commit fsync happens
	// after release so concurrent writers share fsyncs (group commit).
	res, tok, err := func() (*Result, wal.SyncToken, error) {
		db.stmtMu.Lock()
		defer db.stmtMu.Unlock()
		// The exec span doubles as the anchor for spans opened by layers
		// below that have no handle to thread (wal.append in logRecord,
		// stmt.plan in matchRows); see DB.writeSpan.
		esp := so.lifecycle.StartSpan(trace.SpanExec, nil)
		db.writeSpan = esp
		res, err := db.execWriteLocked(stmt)
		db.writeSpan = nil
		esp.End()
		return res, db.takePendingSync(), err
	}()
	var serr error
	if db.wal != nil {
		csp := so.lifecycle.StartSpan(trace.SpanWALCommit, nil)
		serr = db.syncWAL(tok)
		csp.End()
	}
	if err == nil {
		err = serr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// execWriteLocked executes one mutating statement. Callers hold the
// exclusive statement lock and are responsible for syncing the WAL
// record staged here (takePendingSync + syncWAL) after releasing it.
func (db *DB) execWriteLocked(stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.CreateTable:
		db.invalidatePlanCache()
		return db.execCreateTable(s)
	case *sql.CreateIndex:
		tbl, err := db.cat.Table(s.Table)
		if err != nil {
			return nil, err
		}
		if err := tbl.CreateIndex(s.Column); err != nil {
			return nil, err
		}
		// Memoized access paths predate this index; drop them so the next
		// execution re-costs against it.
		db.invalidatePlanCache()
		if err := db.logRecord(walTypeCreateIndex, walCreateIndex{Table: tbl.Name(), Column: s.Column}); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("index created on %s(%s)", tbl.Name(), s.Column)}, nil
	case *sql.DropTable:
		tbl, err := db.cat.Table(s.Name)
		if err != nil {
			return nil, err
		}
		name := tbl.Name()
		if err := db.dropTable(name); err != nil {
			return nil, err
		}
		db.invalidatePlanCache()
		if err := db.logRecord(walTypeDropTable, walDropTable{Name: name}); err != nil {
			return nil, err
		}
		return &Result{Message: "table dropped"}, nil
	case *sql.Insert:
		return db.execInsert(s)
	case *sql.BulkInsert:
		return db.execBulkInsert(s)
	case *sql.Update:
		return db.execUpdate(s)
	case *sql.Delete:
		return db.execDelete(s)
	case *sql.CreateSummaryInstance:
		in, err := instanceFromStatement(s.Name, s.Type, s.Labels, s.Options)
		if err != nil {
			return nil, err
		}
		if err := db.cat.RegisterInstance(in); err != nil {
			return nil, err
		}
		if db.wal != nil {
			raw, err := json.Marshal(in)
			if err != nil {
				return nil, err
			}
			if err := db.logRecord(walTypeCreateInstance, walCreateInstance{Instance: raw}); err != nil {
				return nil, err
			}
		}
		return &Result{Message: fmt.Sprintf("summary instance %s (%s) created", in.Name, in.Type)}, nil
	case *sql.DropSummaryInstance:
		if err := db.dropInstance(s.Name); err != nil {
			return nil, err
		}
		// Cached SELECT templates may carry SUMMARY(...) calls resolved
		// against this instance at plan time.
		db.invalidatePlanCache()
		if err := db.logRecord(walTypeDropInstance, walDropInstance{Name: s.Name}); err != nil {
			return nil, err
		}
		return &Result{Message: "summary instance dropped"}, nil
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// execExplain plans the query and renders the operator tree, one node per
// row. EXPLAIN ANALYZE additionally executes the plan under a timed
// context and annotates every node with its runtime counters.
func (db *DB) execExplain(ctx context.Context, s *sql.Explain, so stmtOptions) (*Result, error) {
	p := plan.New(db.cat, db, db.planOptions(so))
	op, err := p.PlanSelect(s.Query)
	if err != nil {
		return nil, err
	}
	rendered := exec.Explain(op)
	var stats *StatementStats
	if s.Analyze {
		ec := db.newExecContext(ctx, so).WithTiming()
		collected, err := exec.CollectContext(ec, op)
		if err != nil {
			return nil, err
		}
		rendered = exec.ExplainAnalyze(op)
		stats = statementStats(ec, len(collected))
		rendered += "\nTotal: " + stats.String()
	}
	schema := types.NewSchema(types.Column{Name: "plan", Kind: types.KindString})
	var rows []*exec.Row
	for _, line := range strings.Split(rendered, "\n") {
		rows = append(rows, &exec.Row{Tuple: types.Tuple{types.NewString(line)}})
	}
	return &Result{Schema: schema, Rows: rows, Stats: stats}, nil
}

func (db *DB) execCreateTable(s *sql.CreateTable) (*Result, error) {
	cols := make([]types.Column, len(s.Cols))
	scols := make([]snapshotColumn, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = types.Column{Name: c.Name, Kind: c.Kind}
		scols[i] = snapshotColumn{Name: c.Name, Kind: c.Kind}
	}
	tbl, err := db.cat.CreateTable(s.Name, types.Schema{Columns: cols})
	if err != nil {
		return nil, err
	}
	if err := db.logRecord(walTypeCreateTable, walCreateTable{Name: tbl.Name(), Columns: scols}); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("table %s created", s.Name)}, nil
}

// dropTable removes a table and its maintained envelopes; name must be
// the canonical table name. Shared by the DROP TABLE statement and WAL
// replay. Callers hold the exclusive statement lock.
func (db *DB) dropTable(name string) error {
	// Queued maintenance targeting this table must not recreate its
	// envelopes after the drop.
	db.drainMaintenance()
	if err := db.cat.DropTable(name); err != nil {
		return err
	}
	db.envs.dropTable(name)
	return nil
}

// dropInstance unlinks an instance everywhere and deregisters it. Shared
// by the DROP SUMMARY INSTANCE statement and WAL replay. Callers hold
// the exclusive statement lock.
func (db *DB) dropInstance(name string) error {
	// Queued tasks capture instance pointers; drain so none re-adds this
	// instance's objects after the drop (unlinkInstance drains too, but an
	// unlinked instance has no tables to iterate).
	db.drainMaintenance()
	for _, tbl := range db.cat.TablesFor(name) {
		if err := db.unlinkInstance(name, tbl); err != nil {
			return err
		}
	}
	return db.cat.DropInstance(name)
}

func (db *DB) execInsert(s *sql.Insert) (*Result, error) {
	tbl, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	inserted := make([]snapshotRow, 0, len(s.Rows))
	for _, row := range s.Rows {
		tu, err := evalConstExprs(row, "INSERT values")
		if err != nil {
			return nil, err
		}
		id, err := tbl.Insert(types.Tuple(tu))
		if err != nil {
			return nil, err
		}
		inserted = append(inserted, snapshotRow{ID: id, Values: tu})
	}
	if err := db.logRecord(walTypeInsert, walRows{Table: tbl.Name(), Rows: inserted}); err != nil {
		return nil, err
	}
	n := len(inserted)
	return &Result{Message: fmt.Sprintf("%d row(s) inserted into %s", n, tbl.Name()), Count: n}, nil
}

// execBulkInsert is the COPY-style ingest path: all rows of one BULK
// INSERT are evaluated up front (the statement mutates nothing when any
// row is malformed), inserted under the one exclusive lock acquisition the
// statement already holds, and logged as ONE batched WAL record — so N
// rows cost one parse, one lock handoff, and one group-commit fsync
// instead of N of each. Replay applies the batch row-by-row with the
// assigned ids (see applyWALRecord).
func (db *DB) execBulkInsert(s *sql.BulkInsert) (*Result, error) {
	tbl, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	tuples := make([]types.Tuple, len(s.Rows))
	for i, row := range s.Rows {
		tu, err := evalConstExprs(row, "BULK INSERT values")
		if err != nil {
			return nil, err
		}
		if err := tbl.Validate(types.Tuple(tu)); err != nil {
			return nil, fmt.Errorf("row %d: %w", i+1, err)
		}
		tuples[i] = types.Tuple(tu)
	}
	inserted := make([]snapshotRow, 0, len(tuples))
	for _, tu := range tuples {
		id, err := tbl.Insert(tu)
		if err != nil {
			return nil, err
		}
		inserted = append(inserted, snapshotRow{ID: id, Values: tu})
	}
	if err := db.logRecord(walTypeBulkInsert, walRows{Table: tbl.Name(), Rows: inserted}); err != nil {
		return nil, err
	}
	n := len(inserted)
	return &Result{Message: fmt.Sprintf("%d row(s) bulk inserted into %s", n, tbl.Name()), Count: n}, nil
}

func (db *DB) execShow(s *sql.Show) (*Result, error) {
	switch s.What {
	case "TABLES":
		schema := types.NewSchema(
			types.Column{Name: "table_name", Kind: types.KindString},
			types.Column{Name: "rows", Kind: types.KindInt},
			types.Column{Name: "linked_summaries", Kind: types.KindString},
		)
		var rows []*exec.Row
		for _, name := range db.cat.TableNames() {
			tbl, _ := db.cat.Table(name)
			var links []string
			for _, in := range db.cat.InstancesFor(name) {
				links = append(links, in.Name)
			}
			rows = append(rows, &exec.Row{Tuple: types.Tuple{
				types.NewString(name),
				types.NewInt(int64(tbl.Len())),
				types.NewString(strings.Join(links, ", ")),
			}})
		}
		return &Result{Schema: schema, Rows: rows}, nil
	case "SUMMARIES":
		schema := types.NewSchema(
			types.Column{Name: "instance", Kind: types.KindString},
			types.Column{Name: "type", Kind: types.KindString},
			types.Column{Name: "linked_tables", Kind: types.KindString},
			types.Column{Name: "summarize_once", Kind: types.KindBool},
		)
		var rows []*exec.Row
		for _, name := range db.cat.InstanceNames() {
			in, _ := db.cat.Instance(name)
			rows = append(rows, &exec.Row{Tuple: types.Tuple{
				types.NewString(name),
				types.NewString(string(in.Type)),
				types.NewString(strings.Join(db.cat.TablesFor(name), ", ")),
				types.NewBool(in.Props.SummarizeOnce()),
			}})
		}
		return &Result{Schema: schema, Rows: rows}, nil
	case "ANNOTATIONS":
		tbl, err := db.cat.Table(s.Table)
		if err != nil {
			return nil, err
		}
		schema := types.NewSchema(
			types.Column{Name: "row_id", Kind: types.KindInt},
			types.Column{Name: "ann_id", Kind: types.KindInt},
			types.Column{Name: "columns", Kind: types.KindString},
			types.Column{Name: "text", Kind: types.KindString},
		)
		var rows []*exec.Row
		for _, row := range db.anns.AnnotatedRows(tbl.Name()) {
			for _, ref := range db.anns.ForTuple(tbl.Name(), row) {
				a, err := db.anns.Get(ref.ID)
				if err != nil {
					return nil, err
				}
				rows = append(rows, &exec.Row{Tuple: types.Tuple{
					types.NewInt(int64(row)),
					types.NewInt(int64(ref.ID)),
					types.NewString(ref.Columns.String()),
					types.NewString(a.Preview(80)),
				}})
			}
		}
		return &Result{Schema: schema, Rows: rows}, nil
	case "TRACES":
		schema := types.NewSchema(
			types.Column{Name: "trace_id", Kind: types.KindString},
			types.Column{Name: "kind", Kind: types.KindString},
			types.Column{Name: "wall_us", Kind: types.KindInt},
			types.Column{Name: "slow", Kind: types.KindBool},
			types.Column{Name: "error", Kind: types.KindString},
			types.Column{Name: "stmt", Kind: types.KindString},
		)
		if db.tracer == nil {
			return &Result{Schema: schema, Message: "tracing disabled"}, nil
		}
		limit := s.Limit
		if limit <= 0 {
			limit = 20
		}
		var rows []*exec.Row
		for _, t := range db.tracer.Snapshot(limit) {
			rows = append(rows, &exec.Row{Tuple: types.Tuple{
				types.NewString(t.ID.String()),
				types.NewString(t.Kind),
				types.NewInt(t.Dur.Microseconds()),
				types.NewBool(t.Slow),
				types.NewString(t.Err),
				types.NewString(t.Statement),
			}})
		}
		return &Result{Schema: schema, Rows: rows}, nil
	case "TRACE":
		schema := types.NewSchema(types.Column{Name: "trace", Kind: types.KindString})
		if db.tracer == nil {
			return &Result{Schema: schema, Message: "tracing disabled"}, nil
		}
		id, err := trace.ParseID(s.TraceID)
		if err != nil {
			return nil, err
		}
		t, ok := db.tracer.Get(id)
		if !ok {
			return nil, fmt.Errorf("engine: trace %s not found (evicted or never retained)", id)
		}
		var rows []*exec.Row
		for _, line := range trace.RenderTree(t) {
			rows = append(rows, &exec.Row{Tuple: types.Tuple{types.NewString(line)}})
		}
		return &Result{Schema: schema, Rows: rows}, nil
	case "INTEGRITY":
		rep := db.IntegrityReport()
		quarantined := make([]string, len(rep.Quarantined))
		for i, pid := range rep.Quarantined {
			quarantined[i] = fmt.Sprintf("%d", pid)
		}
		return &Result{
			Schema: integritySchema(),
			Rows:   integrityRows(rep.Faults),
			Message: fmt.Sprintf("%d sweep(s), %d page(s) scanned, %d checksum failure(s), %d repair(s), %d quarantined [%s]",
				rep.Sweeps, rep.PagesScanned, rep.ChecksumFailures, rep.Repairs,
				len(rep.Quarantined), strings.Join(quarantined, ", ")),
			Count: len(rep.Faults),
		}, nil
	case "METRICS":
		schema := types.NewSchema(
			types.Column{Name: "metric", Kind: types.KindString},
			types.Column{Name: "type", Kind: types.KindString},
			types.Column{Name: "value", Kind: types.KindFloat},
		)
		reg := db.Metrics()
		if reg == nil {
			return &Result{Schema: schema, Message: "metrics disabled"}, nil
		}
		var rows []*exec.Row
		for _, sm := range reg.Samples() {
			if s.Pattern != "" && !exec.LikeMatch(sm.Name, s.Pattern) {
				continue
			}
			rows = append(rows, &exec.Row{Tuple: types.Tuple{
				types.NewString(sm.Name),
				types.NewString(sm.Type),
				types.NewFloat(sm.Value),
			}})
		}
		return &Result{Schema: schema, Rows: rows}, nil
	default:
		return nil, fmt.Errorf("engine: unknown SHOW target %q", s.What)
	}
}
