package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// equivalenceQueries covers every operator the batch pipeline composes:
// full scans, absorbed filters and projections, joins, sorting, duplicate
// elimination, and LIMIT.
var equivalenceQueries = []string{
	"SELECT a, b, c FROM R",
	"SELECT a, c FROM R WHERE b >= 1",
	"SELECT a FROM R WHERE a >= 1 AND b >= 0",
	"SELECT r.a, r.b, s.y FROM R r, S s WHERE r.a = s.x",
	"SELECT r.a, s.y FROM R r, S s WHERE r.a = s.x AND r.b >= 0 ORDER BY r.a",
	"SELECT DISTINCT b FROM R",
	"SELECT a, b FROM R ORDER BY b LIMIT 3",
}

// renderResult flattens a result to one canonical string: every tuple and
// its rendered summary envelope, in output order. Two executions are
// equivalent iff these strings are byte-identical.
func renderResult(res *Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		sb.WriteString(row.Tuple.String())
		sb.WriteByte('\t')
		if row.Env != nil {
			sb.WriteString(row.Env.Render())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestBatchParallelEquivalence is the executor's core correctness property:
// for every query shape, every batch size × worker count combination must
// produce byte-identical output (tuples, summary envelopes, and result row
// counts) to the serial reference. The ordered morsel gather makes parallel
// scans deterministic, so this holds exactly, not just as multisets.
func TestBatchParallelEquivalence(t *testing.T) {
	batchSizes := []int{1, 3, 64, 1024}
	workerCounts := []int{1, 4, 8}
	ctx := context.Background()
	for _, seed := range []int64{7, 0xC0FFEE} {
		db := randomDB(t, seed)
		for _, q := range equivalenceQueries {
			ref, err := db.Query(ctx, q, WithParallelism(1))
			if err != nil {
				t.Fatalf("seed %d: reference %q: %v", seed, q, err)
			}
			want := renderResult(ref)
			for _, bs := range batchSizes {
				for _, workers := range workerCounts {
					name := fmt.Sprintf("seed %d batch=%d workers=%d %q", seed, bs, workers, q)
					res, err := db.Query(ctx, q, WithParallelism(workers), WithBatchSize(bs))
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if got := renderResult(res); got != want {
						t.Errorf("%s: output diverged from serial reference:\n--- serial\n%s--- got\n%s", name, want, got)
					}
					if res.Stats == nil || ref.Stats == nil {
						t.Fatalf("%s: missing statement stats", name)
					}
					if res.Stats.Rows != ref.Stats.Rows {
						t.Errorf("%s: stats rows %d, serial reference %d", name, res.Stats.Rows, ref.Stats.Rows)
					}
				}
			}
		}
	}
}

// TestParallelScanReportsWorkers verifies EXPLAIN ANALYZE aggregates
// per-worker stats correctly: the ParallelScan row reports the pool size,
// the morsel total, and the exact produced row count (not a double count
// from per-worker folds).
func TestParallelScanReportsWorkers(t *testing.T) {
	db := randomDB(t, 42)
	ctx := context.Background()
	res, err := db.Query(ctx, "SELECT a, b, c FROM R", WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	var scan *OpStat
	for i := range res.Ops {
		if strings.HasPrefix(res.Ops[i].Op, "parallel_scan") {
			scan = &res.Ops[i]
			break
		}
	}
	if scan == nil {
		t.Fatalf("no parallel_scan operator in ops: %+v", res.Ops)
	}
	if scan.Workers < 1 || scan.Workers > 4 {
		t.Errorf("workers = %d, want 1..4", scan.Workers)
	}
	if scan.Morsels < 1 {
		t.Errorf("morsels = %d, want >= 1", scan.Morsels)
	}
	if scan.Rows != int64(len(res.Rows)) {
		t.Errorf("scan rows = %d, result rows = %d (per-worker stats double-counted?)", scan.Rows, len(res.Rows))
	}
}
