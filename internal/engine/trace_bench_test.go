package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"insightnotes/internal/plan"
)

// benchTraceDB opens an in-memory DB with the given tracing configuration
// and a populated, indexed table; the benchmark body runs the statement
// mix a traced statement actually pays for: parse, plan, exec, and the
// per-operator span synthesis.
func benchTraceDB(b *testing.B, cfg Config) *DB {
	b.Helper()
	cfg.CacheDir = b.TempDir()
	cfg.DisableMetrics = true
	db, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.Exec(ctx, "CREATE TABLE t (id INT, v INT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(ctx, "CREATE INDEX ON t (id)"); err != nil {
		b.Fatal(err)
	}
	for base := 0; base < 1000; base += 100 {
		vals := make([]string, 0, 100)
		for i := base; i < base+100; i++ {
			vals = append(vals, fmt.Sprintf("(%d, 0)", i))
		}
		if _, err := db.Exec(ctx, "INSERT INTO t VALUES "+strings.Join(vals, ", ")); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkTraceOverhead measures the end-to-end statement cost of
// lifecycle tracing (E16): off entirely, at the default 5% tail sample,
// and fully retained. The acceptance budget is ≤5% at the default sample
// rate and within noise when disabled.
func BenchmarkTraceOverhead(b *testing.B) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"off", Config{DisableTracing: true}},
		{"sample=default", Config{}}, // 0.05 tail sample
		{"sample=1", Config{TraceSample: 1}},
	}
	for _, tc := range configs {
		b.Run("select/"+tc.name, func(b *testing.B) {
			db := benchTraceDB(b, tc.cfg)
			ctx := context.Background()
			// Explicit (default) plan options skip QID registration and the
			// zoom-in cache, so per-op cost cannot depend on b.N and the
			// comparison isolates the tracing spans themselves.
			ablate := WithPlanOptions(plan.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(ctx, fmt.Sprintf("SELECT v FROM t WHERE id = %d", i%1000), ablate); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("update/"+tc.name, func(b *testing.B) {
			db := benchTraceDB(b, tc.cfg)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(ctx, fmt.Sprintf("UPDATE t SET v = %d WHERE id = %d", i, i%1000)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
