package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"insightnotes/internal/storage"
	"insightnotes/internal/types"
)

// integrityDB opens a file-backed engine with a populated, indexed table
// and returns it with its page-file path.
func integrityDB(t *testing.T, extra ...func(*Config)) (*DB, string) {
	t.Helper()
	pf := filepath.Join(t.TempDir(), "pages.db")
	cfg := Config{CacheDir: t.TempDir(), PageFile: pf, PoolFrames: 64}
	for _, f := range extra {
		f(&cfg)
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, "CREATE TABLE kv (k INT, v TEXT)")
	mustExec(t, db, "CREATE INDEX ON kv (k)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d, 'value-%d')", i, i))
	}
	return db, pf
}

// flipOnDisk flips one payload byte of page pid in the page file. The
// caller must have flushed the pool so the page is actually on disk.
func flipOnDisk(t *testing.T, path string, pid storage.PageID) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(pid)*storage.PageSize + storage.PageSize - 1
	buf := []byte{0}
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
}

// tableHeapPage returns one heap page id of the named table.
func tableHeapPage(t *testing.T, db *DB, name string) storage.PageID {
	t.Helper()
	tbl, err := db.catStore().Table(name)
	if err != nil {
		t.Fatal(err)
	}
	pages := tbl.HeapPages()
	if len(pages) == 0 {
		t.Fatal("table has no heap pages")
	}
	return pages[0]
}

// TestScrubRepairsFromResidentFrame corrupts the stored copy of a heap
// page while a clean frame survives in the pool: the cheapest repair rung
// (reflush) must heal it without any replica.
func TestScrubRepairsFromResidentFrame(t *testing.T) {
	db, pf := integrityDB(t)
	if err := db.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pid := tableHeapPage(t, db, "kv")
	flipOnDisk(t, pf, pid)

	rep, err := db.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) != 1 {
		t.Fatalf("faults = %+v, want exactly one", rep.Faults)
	}
	f := rep.Faults[0]
	if f.Page != pid || !f.Repaired || f.Source != "flush" {
		t.Fatalf("fault = %+v, want page %d repaired via flush", f, pid)
	}
	if rep.ChecksumFailures == 0 || rep.Repairs == 0 {
		t.Fatalf("report counters = %+v", rep)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("quarantined = %v, want none", rep.Quarantined)
	}
	// The next sweep is clean.
	rep2, err := db.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Faults) != 0 {
		t.Fatalf("second sweep faults = %+v", rep2.Faults)
	}
}

// TestScrubStandaloneQuarantinesThenRepairsFromSource corrupts a table
// heap page with no clean local copy: a standalone engine must quarantine
// it (reads shed with the structured corruption error, not garbage), and a
// later sweep with a repair source installed must heal it.
func TestScrubStandaloneQuarantinesThenRepairsFromSource(t *testing.T) {
	// Durable open: ReplicationSnapshot (the repair-source format) requires
	// an attached WAL.
	dir := t.TempDir()
	db, _, err := OpenDurable(Config{CacheDir: t.TempDir(), PoolFrames: 64}, DurabilityOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, "CREATE TABLE kv (k INT, v TEXT)")
	mustExec(t, db, "CREATE INDEX ON kv (k)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d, 'value-%d')", i, i))
	}
	pf := filepath.Join(dir, pageFileName)
	// Capture a clean logical snapshot first — it plays the replica later.
	var snap bytes.Buffer
	if _, err := db.ReplicationSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := db.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	db.pool.DropClean()
	pid := tableHeapPage(t, db, "kv")
	flipOnDisk(t, pf, pid)

	rep, err := db.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) != 1 || rep.Faults[0].Repaired {
		t.Fatalf("faults = %+v, want one unrepaired", rep.Faults)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != pid {
		t.Fatalf("quarantined = %v, want [%d]", rep.Quarantined, pid)
	}
	// Reads of the poisoned table shed with the structured error.
	_, qerr := db.Query(context.Background(), "SELECT v FROM kv WHERE k = 3")
	if qerr == nil || !errors.Is(qerr, storage.ErrCorrupt) {
		t.Fatalf("query over quarantined page = %v, want ErrCorrupt", qerr)
	}

	// Install a repair source; the next sweep retries the quarantined page.
	db.SetRepairSource(func() ([]byte, error) { return snap.Bytes(), nil })
	rep2, err := db.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Faults) != 1 || !rep2.Faults[0].Repaired || rep2.Faults[0].Source != "replica" {
		t.Fatalf("repair sweep faults = %+v, want replica repair", rep2.Faults)
	}
	if len(db.pool.Quarantined()) != 0 {
		t.Fatal("page still quarantined after replica repair")
	}
	res, err := db.Query(context.Background(), "SELECT v FROM kv WHERE k = 3")
	if err != nil {
		t.Fatalf("query after repair: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Str() != "value-3" {
		t.Fatalf("repaired read = %+v", res.Rows)
	}
}

// TestScrubRepairsTargetPageLocally corrupts an annotation-target heap
// page; targets are mirrored in memory, so the scrubber rebuilds the page
// locally without any replica.
func TestScrubRepairsTargetPageLocally(t *testing.T) {
	db, pf := integrityDB(t)
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("ADD ANNOTATION 'note %d about this row' ON kv WHERE k = %d", i, i))
	}
	if err := db.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	db.pool.DropClean()
	_, tgtPages := db.annStore().Pages()
	if len(tgtPages) == 0 {
		t.Fatal("no target pages")
	}
	pid := tgtPages[0]
	flipOnDisk(t, pf, pid)

	rep, err := db.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	var found *IntegrityFault
	for i := range rep.Faults {
		if rep.Faults[i].Page == pid {
			found = &rep.Faults[i]
		}
	}
	if found == nil || !found.Repaired || found.Source != "rebuild" {
		t.Fatalf("faults = %+v, want page %d rebuilt locally", rep.Faults, pid)
	}
	// Annotations are still queryable.
	res, err := db.Exec(context.Background(), "SHOW ANNOTATIONS ON kv")
	if err != nil {
		t.Fatalf("annotations after repair: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("annotations lost after repair")
	}
}

// TestScrubRebuildsDisagreeingIndex injects a heap↔index disagreement (a
// silently dropped index entry) and verifies the sweep detects it and
// repairs by rebuilding the index from the heap.
func TestScrubRebuildsDisagreeingIndex(t *testing.T) {
	db, _ := integrityDB(t)
	tbl, err := db.catStore().Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	idx := tbl.Index("k")
	if idx == nil {
		t.Fatal("no index on k")
	}
	if !idx.Delete(storage.EncodeKey(nil, types.NewInt(42)), 0) {
		// RowIDs are 1-based sequential; find the entry by scanning.
		key := storage.EncodeKey(nil, types.NewInt(42))
		vals := idx.Seek(key)
		if len(vals) == 0 {
			t.Fatal("no index entry for k=42")
		}
		idx.Delete(key, vals[0])
	}

	rep, err := db.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	var found *IntegrityFault
	for i := range rep.Faults {
		if rep.Faults[i].Owner == "index:kv" {
			found = &rep.Faults[i]
		}
	}
	if found == nil || !found.Repaired || found.Source != "rebuild" {
		t.Fatalf("faults = %+v, want index:kv rebuilt", rep.Faults)
	}
	// Index-served lookups see the row again.
	res, err := db.Query(context.Background(), "SELECT v FROM kv WHERE k = 42")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("k=42 lookup after rebuild = %d rows", len(res.Rows))
	}
}

// TestCheckTableAndShowIntegritySQL exercises the statement surface:
// CHECK TABLE runs a synchronous scoped sweep and reports its faults as
// rows; SHOW INTEGRITY surfaces the cumulative report.
func TestCheckTableAndShowIntegritySQL(t *testing.T) {
	db, pf := integrityDB(t)
	res := mustExec(t, db, "CHECK TABLE kv")
	if len(res.Rows) != 0 {
		t.Fatalf("clean CHECK TABLE returned %d fault rows", len(res.Rows))
	}
	if res.Message == "" {
		t.Fatal("CHECK TABLE returned no message")
	}

	if err := db.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pid := tableHeapPage(t, db, "kv")
	flipOnDisk(t, pf, pid)
	res = mustExec(t, db, "CHECK TABLE kv")
	if len(res.Rows) != 1 {
		t.Fatalf("CHECK TABLE over corrupt page returned %d rows", len(res.Rows))
	}
	row := res.Rows[0].Tuple
	if row[0].Int() != int64(pid) || !row[3].Bool() {
		t.Fatalf("fault row = %+v, want page %d repaired", row, pid)
	}

	show := mustExec(t, db, "SHOW INTEGRITY")
	if show.Message == "" {
		t.Fatal("SHOW INTEGRITY returned no message")
	}
	if len(show.Rows) == 0 {
		t.Fatal("SHOW INTEGRITY shows no recorded faults")
	}
	// Unknown table errors cleanly.
	if _, err := db.Exec(context.Background(), "CHECK TABLE nope"); err == nil {
		t.Fatal("CHECK TABLE on unknown table succeeded")
	}
}

// TestBackgroundScrubberHeals verifies the interval worker finds and heals
// rot with no one asking: corrupt a stored page, then wait for the
// scrubber to repair it from the surviving frame.
func TestBackgroundScrubberHeals(t *testing.T) {
	db, pf := integrityDB(t, func(c *Config) {
		c.ScrubInterval = 20 * time.Millisecond
		c.ScrubRate = 10_000
	})
	if err := db.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pid := tableHeapPage(t, db, "kv")
	flipOnDisk(t, pf, pid)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rep := db.IntegrityReport()
		if rep.Repairs > 0 {
			if err := db.pool.VerifyStored(pid); err != nil {
				t.Fatalf("stored copy after background repair: %v", err)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("background scrubber never repaired; report %+v", db.IntegrityReport())
}

// TestIntegrityMetricsExported verifies the insightnotes_integrity_*
// series move with the scrubber.
func TestIntegrityMetricsExported(t *testing.T) {
	db, pf := integrityDB(t)
	if err := db.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	db.pool.DropClean()
	pid := tableHeapPage(t, db, "kv")
	flipOnDisk(t, pf, pid)
	if _, err := db.ScrubNow(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SHOW METRICS")
	got := map[string]string{}
	for _, r := range res.Rows {
		got[r.Tuple[0].Str()] = r.Tuple[1].Str()
	}
	for name, wantZero := range map[string]bool{
		"insightnotes_integrity_pages_scanned":     false,
		"insightnotes_integrity_checksum_failures": false,
		"insightnotes_integrity_quarantined":       false,
		"insightnotes_integrity_repairs":           true, // standalone: nothing repairable
	} {
		v, ok := got[name]
		if !ok {
			t.Errorf("metric %s not exported", name)
			continue
		}
		if !wantZero && (v == "0" || v == "") {
			t.Errorf("metric %s = %q, want nonzero", name, v)
		}
	}
}
