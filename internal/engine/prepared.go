package engine

import (
	"context"
	"fmt"
	"strings"

	"insightnotes/internal/exec"
	"insightnotes/internal/plan"
	"insightnotes/internal/sql"
	"insightnotes/internal/types"
)

// Prepared statements and the engine plan cache.
//
// PREPARE parses a statement template once and registers it under a name;
// EXECUTE binds positional $n parameters into a clone of the template and
// dispatches the bound statement through the ordinary read/write paths.
// The registry is engine-local session state: it is never WAL-logged,
// survives no restart, and is legal on read-only replicas (a mutating
// template still fails at EXECUTE time, gated by the server).
//
// The plan cache (plan.Cache) is keyed on normalized SQL text and shared
// by two producers: EXECUTE keyed on the template text, and ad-hoc SELECTs
// keyed on their own text — so a repeated identical SELECT hits without
// being prepared. A hit skips lexing and parsing (the cached template is
// reused) and replays the memoized access-path choices instead of
// re-diving the B+trees. DDL and index create/drop invalidate the whole
// cache (invalidatePlanCache), on the statement path and on WAL replay —
// the latter is what keeps read replicas honest while they apply the
// primary's stream.

// preparedStmt is one registry entry.
type preparedStmt struct {
	name      string
	stmt      sql.Statement // immutable parsed template
	text      string        // template SQL text (after AS), verbatim
	key       string        // plan-cache key: NormalizeSQL(text)
	numParams int
}

// preparedLookup resolves a registered statement by (case-insensitive) name.
func (db *DB) preparedLookup(name string) (*preparedStmt, error) {
	db.preparedMu.RLock()
	ps, ok := db.prepared[strings.ToLower(name)]
	db.preparedMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown prepared statement %q", name)
	}
	return ps, nil
}

// PreparedTemplate returns the parsed template registered under name, for
// callers that need the statement kind without executing it (the replica
// server gates EXECUTE of mutating templates with it).
func (db *DB) PreparedTemplate(name string) (sql.Statement, bool) {
	db.preparedMu.RLock()
	ps, ok := db.prepared[strings.ToLower(name)]
	db.preparedMu.RUnlock()
	if !ok {
		return nil, false
	}
	return ps.stmt, true
}

// execPrepare registers s and warms the plan cache for SELECT templates.
func (db *DB) execPrepare(s *sql.Prepare) (*Result, error) {
	n, err := sql.NumParams(s.Stmt)
	if err != nil {
		return nil, err
	}
	ps := &preparedStmt{
		name:      strings.ToLower(s.Name),
		stmt:      s.Stmt,
		text:      s.Text,
		key:       plan.NormalizeSQL(s.Text),
		numParams: n,
	}
	db.preparedMu.Lock()
	if _, dup := db.prepared[ps.name]; dup {
		db.preparedMu.Unlock()
		return nil, fmt.Errorf("engine: prepared statement %q already exists (DEALLOCATE it first)", s.Name)
	}
	db.prepared[ps.name] = ps
	db.preparedMu.Unlock()
	if _, ok := s.Stmt.(*sql.Select); ok && db.planCache != nil && !db.planCache.Contains(ps.key) {
		db.planCache.Put(ps.key, &plan.CachedPlan{Stmt: s.Stmt, NumParams: n, Memo: plan.NewPathMemo()})
	}
	return &Result{Message: fmt.Sprintf("prepared statement %s registered (%d parameter(s))", s.Name, n)}, nil
}

// execDeallocate removes a registered statement. The plan-cache entry
// stays: it is keyed on text, not name, and remains valid for ad-hoc use.
func (db *DB) execDeallocate(s *sql.Deallocate) (*Result, error) {
	name := strings.ToLower(s.Name)
	db.preparedMu.Lock()
	_, ok := db.prepared[name]
	delete(db.prepared, name)
	db.preparedMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown prepared statement %q", s.Name)
	}
	return &Result{Message: fmt.Sprintf("prepared statement %s deallocated", s.Name)}, nil
}

// execExecute binds the EXECUTE arguments into the named template and
// dispatches the bound statement. SELECT templates route their planning
// through the plan cache under the template's text key, so repeated
// executions share one memo regardless of parameter values.
func (db *DB) execExecute(ctx context.Context, s *sql.Execute, so stmtOptions) (*Result, error) {
	ps, err := db.preparedLookup(s.Name)
	if err != nil {
		return nil, err
	}
	args, err := evalConstExprs(s.Args, "EXECUTE arguments")
	if err != nil {
		return nil, err
	}
	bound, err := sql.BindParams(ps.stmt, args)
	if err != nil {
		return nil, err
	}
	if _, ok := ps.stmt.(*sql.Select); ok && db.planCache != nil && so.planOpts == nil {
		if cp, hit := db.planCache.Get(ps.key); hit {
			so.memo = cp.Memo
			so.planCacheAttr = "hit"
		} else {
			memo := plan.NewPathMemo()
			db.planCache.Put(ps.key, &plan.CachedPlan{Stmt: ps.stmt, NumParams: ps.numParams, Memo: memo})
			so.memo = memo
			so.planCacheAttr = "miss"
		}
	}
	// The bound statement's rendering (parameters inlined as literals) is
	// the re-executable text: zoom-in cache misses re-run it verbatim,
	// which the template text with its $n placeholders could not support.
	return db.execStatement(ctx, bound, bound.String(), so)
}

// cachedStatement consults the plan cache for an ad-hoc statement text,
// returning the cached template on a hit. Only parameterless SELECTs are
// ever cached, so the probe is skipped (no miss counted) for texts that
// cannot hit. Ablated statements (WithPlanOptions) bypass the cache both
// ways.
func (db *DB) cachedStatement(so *stmtOptions, sqlText string) (sql.Statement, bool) {
	if db.planCache == nil || so.planOpts != nil || !looksLikeSelect(sqlText) {
		return nil, false
	}
	cp, ok := db.planCache.Get(plan.NormalizeSQL(sqlText))
	if !ok || cp.NumParams != 0 {
		return nil, false
	}
	so.memo = cp.Memo
	so.planCacheAttr = "hit"
	return cp.Stmt, true
}

// cacheStatement admits a freshly parsed ad-hoc SELECT to the plan cache
// and arms the statement's memo so this first execution records its
// access-path choices.
func (db *DB) cacheStatement(so *stmtOptions, sqlText string, stmt sql.Statement) {
	if db.planCache == nil || so.planOpts != nil {
		return
	}
	if _, ok := stmt.(*sql.Select); !ok {
		return
	}
	if n, err := sql.NumParams(stmt); err != nil || n != 0 {
		return
	}
	memo := plan.NewPathMemo()
	db.planCache.Put(plan.NormalizeSQL(sqlText), &plan.CachedPlan{Stmt: stmt, Memo: memo})
	so.memo = memo
	so.planCacheAttr = "miss"
}

// invalidatePlanCache drops every cached plan. Called under the exclusive
// statement lock by DDL and index create/drop, and by WAL replay of the
// same record types (replicas apply those records while serving reads).
func (db *DB) invalidatePlanCache() {
	if db.planCache != nil {
		db.planCache.Invalidate()
	}
}

// PlanCacheStats snapshots the plan cache counters (zero stats when the
// cache is disabled).
func (db *DB) PlanCacheStats() plan.CacheStats {
	if db.planCache == nil {
		return plan.CacheStats{}
	}
	return db.planCache.Stats()
}

// looksLikeSelect reports whether sqlText can only be a SELECT — the one
// ad-hoc statement kind the plan cache stores — so non-SELECT traffic
// never probes the cache and never inflates its miss counter.
func looksLikeSelect(sqlText string) bool {
	s := strings.TrimLeft(sqlText, " \t\r\n")
	if len(s) < 6 {
		return false
	}
	return strings.EqualFold(s[:6], "select")
}

// evalConstExprs evaluates a list of constant expressions (no column
// references) to values; what names the error context for the caller.
func evalConstExprs(list []sql.Expr, what string) ([]types.Value, error) {
	empty := types.Schema{}
	out := make([]types.Value, len(list))
	for i, e := range list {
		c, err := exec.Compile(e, empty)
		if err != nil {
			return nil, fmt.Errorf("engine: %s must be constants: %w", what, err)
		}
		v, err := c.Eval(nil)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
