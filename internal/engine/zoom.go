package engine

import (
	"context"

	"insightnotes/internal/annotation"
	"insightnotes/internal/exec"
	"insightnotes/internal/sql"
	"insightnotes/internal/types"
)

// ZoomRowResult is the zoom-in expansion of one matched result row: the
// row's data tuple and the raw annotations behind the addressed summary
// element.
type ZoomRowResult struct {
	Tuple       types.Tuple
	Annotations []annotation.Annotation
}

// ZoomInRequest is the programmatic form of the ZOOMIN command (Figure 3):
// reference a past query by QID, refine its rows with a predicate, and
// expand element Index of the named summary instance.
type ZoomInRequest struct {
	QID      int
	Where    sql.Expr // optional refinement over the result schema
	Instance string
	Index    int // 1-based element index (class label / group / snippet)
}

// ZoomIn executes a zoom-in operation under ctx. The result is served from
// the materialization cache when resident; otherwise the referenced query
// is transparently re-executed. The context governs that cache-miss
// re-execution path: a cancelled zoom-in aborts the recreation query and
// leaves no partial cache entry. The returned boolean reports the cache
// hit.
func (db *DB) ZoomIn(ctx context.Context, req ZoomInRequest) ([]ZoomRowResult, bool, error) {
	db.stmtMu.RLock()
	defer db.stmtMu.RUnlock()
	out, hit, err := db.zoomIn(ctx, req)
	if m := db.metrics; m != nil {
		m.zoomRequests.Inc()
		if cancellationCause(err) != "" {
			m.zoomCancelled.Inc()
		}
	}
	return out, hit, err
}

func (db *DB) zoomIn(ctx context.Context, req ZoomInRequest) ([]ZoomRowResult, bool, error) {
	cached, hit, err := db.resultFor(ctx, req.QID)
	if err != nil {
		return nil, false, err
	}
	var pred *exec.Compiled
	if req.Where != nil {
		pred, err = exec.Compile(req.Where, cached.Schema())
		if err != nil {
			return nil, hit, err
		}
	}
	rows, err := cached.FilterRows(pred)
	if err != nil {
		return nil, hit, err
	}
	var out []ZoomRowResult
	for i := range rows {
		ids, err := rows[i].ZoomIDs(req.Instance, req.Index)
		if err != nil {
			return nil, hit, err
		}
		if len(ids) == 0 {
			continue
		}
		// Cached results are snapshots: annotations retracted since the
		// query ran are silently skipped rather than failing the zoom-in.
		anns := make([]annotation.Annotation, 0, len(ids))
		for _, id := range ids {
			a, err := db.anns.Get(id)
			if err != nil {
				continue
			}
			anns = append(anns, a)
		}
		if len(anns) == 0 {
			continue
		}
		out = append(out, ZoomRowResult{Tuple: rows[i].Tuple, Annotations: anns})
	}
	return out, hit, nil
}

// zoomResultSchema describes the tabular rendering of zoom-in output.
func zoomResultSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "ann_id", Kind: types.KindInt},
		types.Column{Name: "author", Kind: types.KindString},
		types.Column{Name: "created", Kind: types.KindInt},
		types.Column{Name: "text", Kind: types.KindString},
		types.Column{Name: "title", Kind: types.KindString},
		types.Column{Name: "document", Kind: types.KindString},
	)
}

// zoomRows flattens zoom results into tuples of zoomResultSchema.
func zoomRows(results []ZoomRowResult) []*exec.Row {
	var out []*exec.Row
	for _, r := range results {
		for _, a := range r.Annotations {
			out = append(out, &exec.Row{Tuple: types.Tuple{
				types.NewInt(int64(a.ID)),
				types.NewString(a.Author),
				types.NewInt(a.Created),
				types.NewString(a.Text),
				types.NewString(a.Title),
				types.NewString(a.Document),
			}})
		}
	}
	return out
}
