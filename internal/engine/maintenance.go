package engine

import (
	"sync"
	"time"

	"insightnotes/internal/annotation"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/metrics"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// Degraded summary maintenance — the engine half of overload protection.
//
// Under normal load an ingested annotation updates every linked summary
// instance synchronously, inside the statement. Under overload (an explicit
// SetDegraded call, or the EWMA of synchronous maintenance latency crossing
// Config.MaintenanceLatencyThreshold) the engine keeps the cheap durable
// part of ingestion — raw annotation store plus WAL record — synchronous,
// and defers summary maintenance to a bounded FIFO queue drained by a
// single background catch-up worker. Affected summaries are stale until
// the worker catches up; readers see the stale (but internally consistent)
// envelopes instead of queueing behind maintenance.
//
// Deferred tasks carry fully resolved targets and the instance set captured
// at ingest time, and the worker shares the summarize-once digest cache
// with the synchronous path, so catch-up converges to exactly the state
// synchronous maintenance would have produced. The state machine per
// summary is fresh → stale (tasks queued) → catching-up (worker draining)
// → fresh (queue empty).
//
// Durability does not depend on the queue: snapshots persist raw
// annotations only and recovery replays maintenance synchronously, so a
// crash with a non-empty queue recovers to the fully-caught-up state.

const (
	// defaultMaintQueueDepth bounds the deferred-maintenance queue when
	// Config.MaintenanceQueueDepth is zero. A full queue blocks ingestion
	// (backpressure) rather than growing without bound.
	defaultMaintQueueDepth = 1024
	// maintEWMAAlpha weights the latest synchronous maintenance latency in
	// the moving average that drives automatic degradation.
	maintEWMAAlpha = 0.2
)

// maintTarget is one resolved attachment scope of a deferred task: the
// rows and columns of one table, plus the summary instances linked to the
// table when the annotation committed. Instances are captured at enqueue
// time so later LINK/UNLINK changes do not rewrite history: catch-up
// applies exactly what synchronous maintenance would have.
type maintTarget struct {
	table     string
	rows      []types.RowID
	cols      annotation.ColSet
	instances []*summary.Instance
}

// maintTask is one deferred unit of summary maintenance: one ingested
// annotation (id and timestamp already assigned) and its resolved targets.
type maintTask struct {
	ann     annotation.Annotation
	targets []maintTarget
}

// maintenance owns the degraded-mode state: the bounded task queue, the
// lazily started catch-up worker, the manual and latency-triggered
// degradation flags, and per-instance staleness accounting.
type maintenance struct {
	db *DB

	mu   sync.Mutex
	cond *sync.Cond

	queue    []maintTask
	applying bool // worker is mid-apply (its task is off the queue)
	started  bool // worker goroutine launched
	closed   bool
	crashed  bool // worker killed by failpoint; queue frozen

	manual bool    // SetDegraded(true)
	auto   bool    // latency-triggered
	ewma   float64 // EWMA of synchronous maintenance latency, seconds

	capacity  int
	threshold float64 // seconds; <= 0 disables auto-degradation

	// stale counts pending deferred updates per instance name; it feeds
	// the insightnotes_summary_stale_updates gauge vector.
	stale    map[string]int
	staleVec *metrics.GaugeVec

	deferredN int64
	appliedN  int64

	done chan struct{}
}

func newMaintenance(db *DB, depth int, threshold time.Duration) *maintenance {
	if depth <= 0 {
		depth = defaultMaintQueueDepth
	}
	m := &maintenance{
		db:        db,
		capacity:  depth,
		threshold: threshold.Seconds(),
		stale:     make(map[string]int),
		done:      make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// registerMetrics exposes the degradation state on the engine registry.
func (m *maintenance) registerMetrics(reg *metrics.Registry) {
	reg.GaugeFunc(metrics.NameMaintenancePendingTasks,
		"Deferred summary-maintenance tasks awaiting catch-up.",
		func() float64 { return float64(m.pending()) })
	reg.GaugeFunc(metrics.NameMaintenanceDegraded,
		"1 while the engine defers summary maintenance, 0 when fresh.",
		func() float64 {
			if m.degraded() {
				return 1
			}
			return 0
		})
	reg.CounterFunc(metrics.NameMaintenanceDeferredTotal,
		"Summary-maintenance tasks deferred to the catch-up worker.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.deferredN)
		})
	reg.CounterFunc(metrics.NameMaintenanceAppliedTotal,
		"Deferred summary-maintenance tasks applied by the catch-up worker.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.appliedN)
		})
	m.staleVec = reg.GaugeVec(metrics.NameSummaryStaleUpdatesTotal,
		"Pending deferred updates per summary instance (0 = fresh).", "instance")
}

// maintain routes one unit of summary maintenance: deferred to the
// catch-up queue when the engine is degraded (or ordering requires it),
// applied synchronously otherwise. Callers hold the exclusive statement
// lock.
func (db *DB) maintain(t maintTask) {
	m := db.maint
	if m != nil && m.deferTask(t) {
		return
	}
	start := time.Now()
	db.applyMaintenanceTask(t)
	if m != nil {
		m.observeSync(time.Since(start))
	}
}

// maintainBatch routes a whole ingest batch of maintenance work: one
// queue append under one lock acquisition when the engine is degraded,
// synchronous application otherwise. The per-task latency (not the batch
// total) feeds the degradation EWMA, so a large healthy batch does not
// read as overload. Callers hold the exclusive statement lock.
func (db *DB) maintainBatch(tasks []maintTask) {
	if len(tasks) == 0 {
		return
	}
	m := db.maint
	if m != nil && m.deferBatch(tasks) {
		return
	}
	start := time.Now()
	for _, t := range tasks {
		db.applyMaintenanceTask(t)
	}
	if m != nil {
		m.observeSync(time.Since(start) / time.Duration(len(tasks)))
	}
}

// applyMaintenanceTask updates every captured instance's summary objects
// for one annotation — the single maintenance routine shared by the
// synchronous path and the catch-up worker, so both produce identical
// envelopes (digest cache included). db.mu serializes summarization and
// the digest cache; each envelope write additionally takes its stripe
// lock, so concurrent scans block only on the one stripe being updated.
func (db *DB) applyMaintenanceTask(t maintTask) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, tg := range t.targets {
		for _, in := range tg.instances {
			if db.cfg.DisableSummarizeOnce || !in.Props.SummarizeOnce() {
				// Without the invariant guarantee (or under the E5
				// ablation) the annotation is summarized per target tuple.
				for _, row := range tg.rows {
					d := in.Summarize(t.ann)
					db.envs.update(tg.table, row, func(env *summary.Envelope) {
						env.Add(in, d, tg.cols)
					})
				}
				continue
			}
			d := db.digestFor(in, t.ann)
			for _, row := range tg.rows {
				db.envs.update(tg.table, row, func(env *summary.Envelope) {
					env.Add(in, d, tg.cols)
				})
			}
		}
	}
}

// deferTask queues t when degraded mode (or the ordering invariant: once
// anything is queued or being applied, everything after it must queue too)
// demands it, and reports whether it did. A full queue blocks the caller —
// backpressure — until the worker frees a slot; the worker takes only
// db.mu, never the statement lock, so the wait always makes progress.
func (m *maintenance) deferTask(t maintTask) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if !(m.manual || m.auto || m.crashed || len(m.queue) > 0 || m.applying) {
		return false
	}
	// A crashed worker (failpoint kill mid-catch-up) never drains the
	// queue; skip backpressure so the dying process doesn't hang — the
	// summaries are rebuilt from raw annotations at recovery anyway.
	for len(m.queue) >= m.capacity && !m.closed && !m.crashed {
		m.cond.Wait()
	}
	if m.closed {
		return false
	}
	m.queue = append(m.queue, t)
	m.deferredN++
	m.bumpStaleLocked(t, 1)
	if !m.started && !m.crashed {
		m.started = true
		go m.worker()
	}
	m.cond.Broadcast()
	return true
}

// deferBatch queues a whole ingest batch under one lock acquisition when
// degraded mode (or the ordering invariant) demands it, reporting whether
// it did. Backpressure waits for one free slot, then appends the whole
// batch — the queue may transiently exceed capacity by len(tasks)-1, a
// bounded overshoot accepted so a batch is never split across the
// degradation boundary (its tasks either all defer or all apply
// synchronously, keeping ingest order intact).
func (m *maintenance) deferBatch(tasks []maintTask) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if !(m.manual || m.auto || m.crashed || len(m.queue) > 0 || m.applying) {
		return false
	}
	for len(m.queue) >= m.capacity && !m.closed && !m.crashed {
		m.cond.Wait()
	}
	if m.closed {
		return false
	}
	m.queue = append(m.queue, tasks...)
	m.deferredN += int64(len(tasks))
	for _, t := range tasks {
		m.bumpStaleLocked(t, 1)
	}
	if !m.started && !m.crashed {
		m.started = true
		go m.worker()
	}
	m.cond.Broadcast()
	return true
}

// bumpStaleLocked adjusts the per-instance pending-update counts for one
// task by delta (±1) and mirrors them into the staleness gauge vector.
// Requires m.mu.
func (m *maintenance) bumpStaleLocked(t maintTask, delta int) {
	for _, tg := range t.targets {
		for _, in := range tg.instances {
			m.stale[in.Name] += delta
			m.staleVec.With(in.Name).Set(float64(m.stale[in.Name]))
		}
	}
}

// worker is the catch-up loop: it drains the queue FIFO (one goroutine,
// so deferred maintenance applies in ingest order) and exits when the
// engine closes with an empty queue — or immediately when the failpoint
// simulates a kill.
func (m *maintenance) worker() {
	defer close(m.done)
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.mu.Unlock()
			return // closed and drained
		}
		t := m.queue[0]
		m.queue = m.queue[1:]
		m.applying = true
		m.mu.Unlock()

		if err := failpoint.Eval(failpoint.MaintenanceApply); err != nil {
			// The process "died" mid-catch-up: freeze the queue (the task
			// goes back so pending counts stay honest) and stop. Recovery
			// rebuilds summaries synchronously from the raw annotations.
			m.mu.Lock()
			m.queue = append([]maintTask{t}, m.queue...)
			m.applying = false
			m.crashed = true
			m.cond.Broadcast()
			m.mu.Unlock()
			return
		}
		m.db.applyMaintenanceTask(t)

		m.mu.Lock()
		m.applying = false
		m.appliedN++
		m.bumpStaleLocked(t, -1)
		if len(m.queue) == 0 {
			// Caught up: latency-triggered degradation ends here, and the
			// stale latency average with it. Manual degradation persists
			// until SetDegraded(false).
			m.auto = false
			m.ewma = 0
		}
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// drain blocks until every deferred task has been applied — the barrier in
// front of mutations that read or rewrite the summary store (deletes,
// drops, link changes, retraining, rebuilds). Callers hold the exclusive
// statement lock; the worker needs only db.mu and envelope stripe locks,
// never the statement lock, so progress is guaranteed.
// A crashed worker or a closed engine returns immediately: those tasks can
// never apply.
func (m *maintenance) drain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for (len(m.queue) > 0 || m.applying) && !m.crashed && !m.closed {
		m.cond.Wait()
	}
}

// observeSync feeds one synchronous maintenance latency into the EWMA and
// flips the engine into degraded mode when it crosses the threshold.
func (m *maintenance) observeSync(d time.Duration) {
	if m.threshold <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := d.Seconds()
	if m.ewma == 0 {
		m.ewma = s
	} else {
		m.ewma = (1-maintEWMAAlpha)*m.ewma + maintEWMAAlpha*s
	}
	if m.ewma > m.threshold {
		m.auto = true
	}
}

// degraded reports whether the next annotation would defer.
func (m *maintenance) degraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.manual || m.auto || m.crashed || len(m.queue) > 0 || m.applying
}

// pending counts tasks not yet applied (queued plus in flight).
func (m *maintenance) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.queue)
	if m.applying {
		n++
	}
	return n
}

// setManual flips operator-forced degradation. Turning it off does not
// snap summaries fresh: the queue drains in order first (the ordering
// invariant in deferTask), then new annotations apply synchronously again.
func (m *maintenance) setManual(on bool) {
	m.mu.Lock()
	m.manual = on
	m.cond.Broadcast()
	m.mu.Unlock()
}

// close stops the catch-up worker. The worker finishes the queue first
// (unless it crashed), so a clean Close leaves summaries fresh.
func (m *maintenance) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	started := m.started
	m.cond.Broadcast()
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

// MaintenanceStats is a point-in-time snapshot of the degraded-maintenance
// state, surfaced by stats_detail and tests.
type MaintenanceStats struct {
	// Pending is the number of deferred tasks not yet applied.
	Pending int
	// Deferred and Applied are lifetime task counts.
	Deferred int64
	Applied  int64
	// Degraded reports whether the next annotation would defer.
	Degraded bool
	// StaleByInstance maps instance name to its pending update count
	// (instances at 0 are included once they have ever been stale).
	StaleByInstance map[string]int
}

// MaintenanceStats snapshots the degraded-maintenance state.
func (db *DB) MaintenanceStats() MaintenanceStats {
	m := db.maint
	if m == nil {
		return MaintenanceStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MaintenanceStats{
		Pending:         len(m.queue),
		Deferred:        m.deferredN,
		Applied:         m.appliedN,
		Degraded:        m.manual || m.auto || m.crashed || len(m.queue) > 0 || m.applying,
		StaleByInstance: make(map[string]int, len(m.stale)),
	}
	if m.applying {
		st.Pending++
	}
	for k, v := range m.stale {
		st.StaleByInstance[k] = v
	}
	return st
}

// SetDegraded forces (or releases) degraded summary maintenance: while
// set, annotation ingestion persists the raw annotation and WAL record
// synchronously but defers summary updates to the background catch-up
// worker. Exposed for operators (and the overload tests); the server also
// degrades automatically via Config.MaintenanceLatencyThreshold.
func (db *DB) SetDegraded(on bool) {
	if db.maint != nil {
		db.maint.setManual(on)
	}
}

// WaitMaintenanceIdle blocks until no deferred maintenance is pending —
// the catch-up worker has drained the queue (or can never: crashed or
// closed). Primarily for tests and controlled drains.
func (db *DB) WaitMaintenanceIdle() {
	if db.maint != nil {
		db.maint.drain()
	}
}

// drainMaintenance is the internal barrier used by statements that read
// or rewrite the summary store. Callers hold the exclusive statement lock.
func (db *DB) drainMaintenance() {
	if db.maint != nil {
		db.maint.drain()
	}
}
