package engine

import (
	"sync"

	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// envStripes is the stripe count of the summary store's lock. Power of two
// so the stripe pick is a mask; 32 stripes keep parallel-scan workers on
// distinct locks with high probability without bloating the DB struct.
const envStripes = 32

// envStore is the striped summary store: the maintained per-tuple summary
// envelopes of every annotated tuple, sharded N ways by (table, row) so
// parallel scan workers fetching envelopes do not serialize on one
// RWMutex, and so the background catch-up worker blocks readers only on
// the stripe it is updating.
//
// Locking: each stripe guards its own table→row→envelope maps AND the
// envelopes within them — an envelope is only read or mutated while its
// stripe lock is held, which is why readers receive clones. Writers that
// also need the digest cache or instance models take db.mu first; the
// ordering is always db.mu → stripe, never the reverse.
type envStore struct {
	stripes [envStripes]envStripe
}

type envStripe struct {
	mu sync.RWMutex
	m  map[string]map[types.RowID]*summary.Envelope
}

func newEnvStore() *envStore {
	s := &envStore{}
	for i := range s.stripes {
		s.stripes[i].m = make(map[string]map[types.RowID]*summary.Envelope)
	}
	return s
}

// stripeFor hashes (table, row) to a stripe — FNV-1a over the table name
// mixed with the row id, so consecutive rows of one table spread across
// stripes.
func (s *envStore) stripeFor(table string, row types.RowID) *envStripe {
	h := uint64(14695981039346656037)
	for i := 0; i < len(table); i++ {
		h ^= uint64(table[i])
		h *= 1099511628211
	}
	h ^= uint64(row)
	h *= 1099511628211
	return &s.stripes[h%envStripes]
}

// clone returns a private copy of the stored envelope of a tuple (nil when
// unannotated), taken under the stripe lock so readers never observe a
// mid-update envelope.
func (s *envStore) clone(table string, row types.RowID) *summary.Envelope {
	st := s.stripeFor(table, row)
	st.mu.RLock()
	defer st.mu.RUnlock()
	env := st.m[table][row]
	if env == nil {
		return nil
	}
	return env.Clone()
}

// update applies fn to the stored envelope of a tuple, creating an empty
// envelope first when the tuple has none. fn runs under the stripe lock.
func (s *envStore) update(table string, row types.RowID, fn func(env *summary.Envelope)) {
	st := s.stripeFor(table, row)
	st.mu.Lock()
	defer st.mu.Unlock()
	rows, ok := st.m[table]
	if !ok {
		rows = make(map[types.RowID]*summary.Envelope)
		st.m[table] = rows
	}
	env, ok := rows[row]
	if !ok {
		env = summary.NewEnvelope()
		rows[row] = env
	}
	fn(env)
}

// mutate applies fn to the stored envelope of a tuple when one exists; a
// true return drops the (now empty) envelope. fn runs under the stripe
// lock.
func (s *envStore) mutate(table string, row types.RowID, fn func(env *summary.Envelope) (drop bool)) {
	st := s.stripeFor(table, row)
	st.mu.Lock()
	defer st.mu.Unlock()
	env := st.m[table][row]
	if env == nil {
		return
	}
	if fn(env) {
		delete(st.m[table], row)
	}
}

// mutateTable applies fn to every stored envelope of a table; a true
// return drops that envelope. Used by link changes that rewrite a whole
// table's summaries.
func (s *envStore) mutateTable(table string, fn func(row types.RowID, env *summary.Envelope) (drop bool)) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for row, env := range st.m[table] {
			if fn(row, env) {
				delete(st.m[table], row)
			}
		}
		st.mu.Unlock()
	}
}

// deleteRow drops the stored envelope of a tuple.
func (s *envStore) deleteRow(table string, row types.RowID) {
	st := s.stripeFor(table, row)
	st.mu.Lock()
	delete(st.m[table], row)
	st.mu.Unlock()
}

// dropTable drops every stored envelope of a table.
func (s *envStore) dropTable(table string) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		delete(st.m, table)
		st.mu.Unlock()
	}
}

// tableBytes sums the approximate envelope sizes of one table.
func (s *envStore) tableBytes(table string) int64 {
	var n int64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for _, env := range st.m[table] {
			n += int64(env.ApproxBytes())
		}
		st.mu.RUnlock()
	}
	return n
}

// count is the number of stored envelopes across all tables.
func (s *envStore) count() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for _, rows := range st.m {
			n += len(rows)
		}
		st.mu.RUnlock()
	}
	return n
}

// totalBytes sums the approximate envelope sizes across all tables.
func (s *envStore) totalBytes() int64 {
	var n int64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for _, rows := range st.m {
			for _, env := range rows {
				n += int64(env.ApproxBytes())
			}
		}
		st.mu.RUnlock()
	}
	return n
}
