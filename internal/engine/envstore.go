package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"insightnotes/internal/annotation"
	"insightnotes/internal/storage"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// envStripes is the stripe count of the summary store's lock. Power of two
// so the stripe pick is a mask; 32 stripes keep parallel-scan workers on
// distinct locks with high probability without bloating the DB struct.
const envStripes = 32

// envStore is the striped summary store: the maintained per-tuple summary
// envelopes of every annotated tuple, sharded N ways by (table, row) so
// parallel scan workers fetching envelopes do not serialize on one
// RWMutex, and so the background catch-up worker blocks readers only on
// the stripe it is updating.
//
// Two storage structures back the in-memory maps:
//
//   - heap holds the persistent form of every envelope (coverage map plus
//     per-instance member lists) as one record per annotated tuple, written
//     through on every mutation. The live summary objects themselves stay
//     in memory — they are derived state, rebuilt from the raw annotations
//     on recovery — but the heap form pages envelope metadata through the
//     buffer pool like every other store. An envelope whose persistent
//     form outgrows a page (storage.ErrRecordTooLarge) degrades to
//     memory-only, which only loses the paging, not the envelope.
//
//   - instIdx is a B+tree keyed (instance name, table) → row, one entry
//     per summary object held by an envelope. Unlink and drop-instance
//     maintenance use it to touch exactly the envelopes that carry the
//     instance instead of sweeping every stripe's table map.
//
// Locking: each stripe guards its own table→row→envelope maps AND the
// envelopes within them — an envelope is only read or mutated while its
// stripe lock is held, which is why readers receive clones. The heap and
// the B+tree have their own internal locks and are only called from under
// a stripe lock (leaf order, no cycles). Writers that also need the digest
// cache or instance models take db.mu first; the ordering is always
// db.mu → stripe, never the reverse.
type envStore struct {
	heap    *storage.HeapFile
	instIdx *storage.BTree
	stripes [envStripes]envStripe
}

type envStripe struct {
	mu sync.RWMutex
	m  map[string]map[types.RowID]*summary.Envelope
	// rids tracks the heap record of each envelope's persistent form. A
	// present envelope missing here is memory-only (oversize record).
	rids map[string]map[types.RowID]storage.RID
}

func newEnvStore(pool *storage.BufferPool) *envStore {
	s := &envStore{
		heap:    storage.NewHeapFile(pool),
		instIdx: storage.NewBTree(),
	}
	for i := range s.stripes {
		s.stripes[i].m = make(map[string]map[types.RowID]*summary.Envelope)
		s.stripes[i].rids = make(map[string]map[types.RowID]storage.RID)
	}
	return s
}

// stripeFor hashes (table, row) to a stripe — FNV-1a over the table name
// mixed with the row id, so consecutive rows of one table spread across
// stripes.
func (s *envStore) stripeFor(table string, row types.RowID) *envStripe {
	h := uint64(14695981039346656037)
	for i := 0; i < len(table); i++ {
		h ^= uint64(table[i])
		h *= 1099511628211
	}
	h ^= uint64(row)
	h *= 1099511628211
	return &s.stripes[h%envStripes]
}

// persistEnvelope is the heap-record form of one envelope: its identity,
// the coverage map, and the member list of each summary object. The
// objects' model state (classifier counts, cluster centroids, snippets) is
// derived from the raw annotations and is not persisted here.
type persistEnvelope struct {
	Table   string                              `json:"table"`
	Row     types.RowID                         `json:"row"`
	Cover   map[annotation.ID]annotation.ColSet `json:"cover"`
	Objects map[string][]annotation.ID          `json:"objects"`
}

func encodeEnvelope(table string, row types.RowID, env *summary.Envelope) []byte {
	rec := persistEnvelope{
		Table:   table,
		Row:     row,
		Cover:   env.Cover,
		Objects: make(map[string][]annotation.ID, len(env.Objects)),
	}
	for name, obj := range env.Objects {
		rec.Objects[name] = obj.Members()
	}
	data, _ := json.Marshal(rec)
	return data
}

// instKey is the B+tree key of one (instance, table) index entry.
func instKey(instance, table string) []byte {
	return storage.EncodeCompositeKey(nil, types.NewString(instance), types.NewString(table))
}

// instanceSet snapshots the instance names an envelope currently holds.
func instanceSet(env *summary.Envelope) map[string]bool {
	if env == nil || len(env.Objects) == 0 {
		return nil
	}
	out := make(map[string]bool, len(env.Objects))
	for name := range env.Objects {
		out[name] = true
	}
	return out
}

// reindex reconciles the instance index after a mutation: entries for
// instances the envelope gained are inserted, entries for instances it
// lost are deleted. A nil env drops every before entry.
func (s *envStore) reindex(table string, row types.RowID, before map[string]bool, env *summary.Envelope) {
	after := instanceSet(env)
	for name := range after {
		if !before[name] {
			s.instIdx.Insert(instKey(name, table), uint64(row))
		}
	}
	for name := range before {
		if !after[name] {
			s.instIdx.Delete(instKey(name, table), uint64(row))
		}
	}
}

// persist writes the envelope's persistent form through to the heap,
// updating in place when a record exists. Called with the stripe lock
// held. An envelope too large for a page drops its heap backing and stays
// memory-only.
func (s *envStore) persist(st *envStripe, table string, row types.RowID, env *summary.Envelope) {
	rec := encodeEnvelope(table, row, env)
	if rid, ok := st.rids[table][row]; ok {
		nrid, err := s.heap.Update(rid, rec)
		if err == nil {
			st.rids[table][row] = nrid
			return
		}
		s.heap.Delete(rid)
		delete(st.rids[table], row)
		if errors.Is(err, storage.ErrRecordTooLarge) {
			return
		}
	}
	rid, err := s.heap.Insert(rec)
	if err != nil {
		return // oversize: memory-only
	}
	rids, ok := st.rids[table]
	if !ok {
		rids = make(map[types.RowID]storage.RID)
		st.rids[table] = rids
	}
	rids[row] = rid
}

// unpersist deletes the envelope's heap record. Called with the stripe
// lock held.
func (s *envStore) unpersist(st *envStripe, table string, row types.RowID) {
	if rid, ok := st.rids[table][row]; ok {
		s.heap.Delete(rid)
		delete(st.rids[table], row)
	}
}

// clone returns a private copy of the stored envelope of a tuple (nil when
// unannotated), taken under the stripe lock so readers never observe a
// mid-update envelope.
func (s *envStore) clone(table string, row types.RowID) *summary.Envelope {
	st := s.stripeFor(table, row)
	st.mu.RLock()
	defer st.mu.RUnlock()
	env := st.m[table][row]
	if env == nil {
		return nil
	}
	return env.Clone()
}

// update applies fn to the stored envelope of a tuple, creating an empty
// envelope first when the tuple has none. fn runs under the stripe lock;
// the persistent form and the instance index are maintained after fn
// returns.
func (s *envStore) update(table string, row types.RowID, fn func(env *summary.Envelope)) {
	st := s.stripeFor(table, row)
	st.mu.Lock()
	defer st.mu.Unlock()
	rows, ok := st.m[table]
	if !ok {
		rows = make(map[types.RowID]*summary.Envelope)
		st.m[table] = rows
	}
	env, ok := rows[row]
	if !ok {
		env = summary.NewEnvelope()
		rows[row] = env
	}
	before := instanceSet(env)
	fn(env)
	s.reindex(table, row, before, env)
	s.persist(st, table, row, env)
}

// mutate applies fn to the stored envelope of a tuple when one exists; a
// true return drops the (now empty) envelope. fn runs under the stripe
// lock; the persistent form and the instance index are maintained after
// fn returns.
func (s *envStore) mutate(table string, row types.RowID, fn func(env *summary.Envelope) (drop bool)) {
	st := s.stripeFor(table, row)
	st.mu.Lock()
	defer st.mu.Unlock()
	env := st.m[table][row]
	if env == nil {
		return
	}
	before := instanceSet(env)
	if fn(env) {
		delete(st.m[table], row)
		s.reindex(table, row, before, nil)
		s.unpersist(st, table, row)
		return
	}
	s.reindex(table, row, before, env)
	s.persist(st, table, row, env)
}

// mutateInstance applies fn to exactly the envelopes of table that hold an
// object of the named instance, resolved through the instance index
// instead of a full stripe sweep; a true return drops that envelope.
func (s *envStore) mutateInstance(table, instance string, fn func(row types.RowID, env *summary.Envelope) (drop bool)) {
	key := instKey(instance, table)
	var rows []types.RowID
	s.instIdx.Scan(key, storage.KeySuccessorExact(key), func(_ []byte, v uint64) bool {
		rows = append(rows, types.RowID(v))
		return true
	})
	for _, row := range rows {
		s.mutate(table, row, func(env *summary.Envelope) bool { return fn(row, env) })
	}
}

// rowsForInstance returns the rows of table whose envelopes hold an object
// of the named instance, in index order — the read side of the instance
// index, for inspection and tests.
func (s *envStore) rowsForInstance(table, instance string) []types.RowID {
	key := instKey(instance, table)
	var rows []types.RowID
	s.instIdx.Scan(key, storage.KeySuccessorExact(key), func(_ []byte, v uint64) bool {
		rows = append(rows, types.RowID(v))
		return true
	})
	return rows
}

// deleteRow drops the stored envelope of a tuple.
func (s *envStore) deleteRow(table string, row types.RowID) {
	st := s.stripeFor(table, row)
	st.mu.Lock()
	if env := st.m[table][row]; env != nil {
		s.reindex(table, row, instanceSet(env), nil)
		s.unpersist(st, table, row)
	}
	delete(st.m[table], row)
	st.mu.Unlock()
}

// dropTable drops every stored envelope of a table.
func (s *envStore) dropTable(table string) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for row, env := range st.m[table] {
			s.reindex(table, row, instanceSet(env), nil)
			s.unpersist(st, table, row)
		}
		delete(st.m, table)
		delete(st.rids, table)
		st.mu.Unlock()
	}
}

// verifyPage checks one envelope-heap page: structural invariants, then
// for up to sample records (sample <= 0 checks all) that the record
// decodes and the owning stripe maps the tuple back to exactly this
// record.
func (s *envStore) verifyPage(pid storage.PageID, sample int) error {
	return s.heap.ViewPage(pid, func(pg *storage.Page) error {
		if err := pg.Verify(); err != nil {
			return err
		}
		checked := 0
		var verr error
		rerr := pg.Records(func(slot uint16, data []byte) bool {
			if sample > 0 && checked >= sample {
				return false
			}
			checked++
			var rec persistEnvelope
			if err := json.Unmarshal(data, &rec); err != nil {
				verr = fmt.Errorf("engine: envelope page %d slot %d: %w", pid, slot, err)
				return false
			}
			st := s.stripeFor(rec.Table, rec.Row)
			st.mu.RLock()
			rid, ok := st.rids[rec.Table][rec.Row]
			st.mu.RUnlock()
			if !ok || rid != (storage.RID{Page: pid, Slot: slot}) {
				verr = fmt.Errorf("engine: envelope page %d slot %d: (%s, %d) not mapped to this record", pid, slot, rec.Table, rec.Row)
				return false
			}
			return true
		})
		if rerr != nil {
			return rerr
		}
		return verr
	})
}

// repairPage rebuilds envelope-heap page pid from the live in-memory
// envelopes — envelopes are derived state held in the stripes, so a
// corrupt envelope page is always locally repairable.
func (s *envStore) repairPage(pid storage.PageID) error {
	var recs []storage.SlotRecord
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for table, rids := range st.rids {
			for row, rid := range rids {
				if rid.Page != pid {
					continue
				}
				env := st.m[table][row]
				if env == nil {
					st.mu.RUnlock()
					return fmt.Errorf("engine: envelope (%s, %d) has a heap record but no live envelope", table, row)
				}
				recs = append(recs, storage.SlotRecord{Slot: rid.Slot, Data: encodeEnvelope(table, row, env)})
			}
		}
		st.mu.RUnlock()
	}
	return s.heap.RepairPage(pid, recs)
}

// heapPages returns the envelope heap's page ids, the scrubber's sweep
// list for the summary store.
func (s *envStore) heapPages() []storage.PageID { return s.heap.Pages() }

// tableBytes sums the approximate envelope sizes of one table.
func (s *envStore) tableBytes(table string) int64 {
	var n int64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for _, env := range st.m[table] {
			n += int64(env.ApproxBytes())
		}
		st.mu.RUnlock()
	}
	return n
}

// count is the number of stored envelopes across all tables.
func (s *envStore) count() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for _, rows := range st.m {
			n += len(rows)
		}
		st.mu.RUnlock()
	}
	return n
}

// totalBytes sums the approximate envelope sizes across all tables.
func (s *envStore) totalBytes() int64 {
	var n int64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for _, rows := range st.m {
			for _, env := range rows {
				n += int64(env.ApproxBytes())
			}
		}
		st.mu.RUnlock()
	}
	return n
}
